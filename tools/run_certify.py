#!/usr/bin/env python
"""CI gate: verify every shipped table certificate, fail on any finding.

The proof-carrying-tables twin of ``tools/run_lint.py``: every frozen
data module in ``data_float32/`` and ``data_posit32/`` ships with a
``<name>.cert.json`` certificate (reduced-interval endpoints as exact
rationals, the LP-pinning sample, and the LP vertex witness), and this
gate re-checks all of them with the independent exact-rational verifier
(``repro.analysis.certify.verify`` — no shared code with the solve
path, no oracle, no floating-point trust beyond the hex codec).

A failure means a table and its proof disagree: either the tables were
regenerated without ``--emit``-ing fresh certificates, or the frozen
data was corrupted.  Findings are CE301–CE308; see
``python -m repro certify --help``.

Usage::

    PYTHONPATH=src python tools/run_certify.py           # gate (exit 1)
    PYTHONPATH=src python tools/run_certify.py --format json
    PYTHONPATH=src python tools/run_certify.py --emit    # refreeze

All arguments are forwarded to ``python -m repro certify``; the repo
root is pinned to this checkout so the gate works from any cwd.
"""

from __future__ import annotations

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def main(argv: list[str] | None = None) -> int:
    from repro.analysis.cli import certify_main

    args = list(sys.argv[1:] if argv is None else argv)
    if "--root" not in args:
        args += ["--root", str(REPO)]
    return certify_main(args)


if __name__ == "__main__":
    sys.exit(main())
