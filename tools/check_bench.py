#!/usr/bin/env python
"""CI gate: run the quick benchmark suite and fail on performance drift.

The performance twin of ``tools/run_lint.py`` / ``tools/check_genstats.py``:
executes the ``quick`` suite from the benchmark registry
(:mod:`repro.obs.bench`), then compares the fresh record against the
committed ``BENCH_*.json`` trajectory.  The build fails when

* any benchmark errors or misses a declared floor (exit 1), or
* any tracked metric drifts beyond its k·MAD envelope with the
  relative-change floor (exit 1) — the same detector as
  ``python -m repro bench compare``.

The gate never appends to the committed trajectory (CI machines would
pollute the history with their own noise); record-keeping runs append
explicitly with ``python -m repro bench run``.

Usage::

    PYTHONPATH=src python tools/check_bench.py             # gate (exit 1)
    PYTHONPATH=src python tools/check_bench.py --suite gen
    PYTHONPATH=src python tools/check_bench.py --record out.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def main(argv: list[str] | None = None) -> int:
    from repro.obs import bench as B

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", default="quick",
                        help="suite to gate on (default: quick)")
    parser.add_argument("--k-mad", type=float, default=B.DEFAULT_K_MAD)
    # the gate measures fresh (possibly on a different machine than the
    # committed trajectory), so it tolerates more relative noise than
    # `bench compare` does between records of one host's own history;
    # a genuine 2x regression still clears the 50% floor easily
    parser.add_argument("--rel-floor", type=float, default=0.5)
    parser.add_argument("--window", type=int, default=B.DEFAULT_WINDOW)
    parser.add_argument("--record", metavar="PATH",
                        help="also write the fresh record to PATH (JSON)")
    args = parser.parse_args(argv)

    B.discover(REPO / "benchmarks")
    benches = B.select(suite=args.suite)
    results, record = B.run_selected(benches, suite_label=args.suite)
    print(B.render_run(results,
                       title=f"check_bench: suite={args.suite} "
                             f"sha={record['sha']}"))

    failed = False
    for r in results:
        if not r.ok:
            failed = True
            print(f"ERROR {r.name} failed:\n{r.error}", file=sys.stderr)
        for f in r.floor_failures:
            failed = True
            print(f"FLOOR {r.name}: {f}", file=sys.stderr)

    if args.record:
        pathlib.Path(args.record).write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n")

    history = B.load_history(REPO)
    if not history:
        print("check_bench: no committed BENCH_*.json trajectory — "
              "floors gated, drift not compared", file=sys.stderr)
        return 1 if failed else 0
    regs = B.compare(history, candidate=record, k_mad=args.k_mad,
                     rel_floor=args.rel_floor, window=args.window)
    print(B.render_compare(regs, len(history),
                           title="drift vs committed trajectory"))
    return 1 if (failed or regs) else 0


if __name__ == "__main__":
    sys.exit(main())
