#!/usr/bin/env python
"""Generate the shipped posit32 library (tools entry point).

Runs the sampled RLIBM-32 pipeline for the eight posit32 functions and
freezes the results into src/repro/libm/data_posit32/.
"""

import argparse
import pathlib
import sys

from repro.libm.genlib import generate_library
from repro.libm.runtime import POSIT32_FUNCTIONS
from repro.parallel import parse_workers
from repro.posit.format import POSIT32


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--functions", nargs="*", default=list(POSIT32_FUNCTIONS))
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--scale", type=int, default=1,
                        help="divide sample budgets by this factor")
    parser.add_argument("--workers", default=None, metavar="N|auto",
                        help="parallel worker processes (default: serial; "
                             "results are identical)")
    parser.add_argument("--checkpoint", type=pathlib.Path, metavar="DIR",
                        help="resume a killed run from this directory")
    parser.add_argument("--adversarial", type=pathlib.Path, metavar="DIR",
                        nargs="?", const=pathlib.Path("tests/data/adversarial"),
                        help="fold the committed adversarial corpus inputs "
                             "for posit32 into the generation constraints")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent
                        / "src" / "repro" / "libm" / "data_posit32")
    args = parser.parse_args(argv)
    extra = None
    if args.adversarial is not None:
        from repro.eval.adversarial import corpus_inputs

        extra = corpus_inputs(args.adversarial, "posit32")
    generate_library(args.functions, POSIT32, args.out,
                     quick=args.quick, seed=args.seed, scale=args.scale,
                     workers=parse_workers(args.workers),
                     checkpoint=args.checkpoint, extra_inputs=extra)
    return 0


if __name__ == "__main__":
    sys.exit(main())
