#!/usr/bin/env python
"""CI gate: replay the committed adversarial corpora, fail on any miss.

The runtime twin of ``tools/run_certify.py``: where the certificate
gate proves the frozen tables still match their LP-derived proofs, this
gate proves the shipped *runtime* still produces the frozen correctly
rounded result on every committed hostile input — through the scalar,
batch, and instrumented paths (and the process-pool path when
``--workers`` > 1).  No oracle runs here; the corpus files are the
authority, so the gate stays fast enough for every CI run.

A failure means either a table regressed or a corpus is stale; re-mine
consciously with ``python -m repro adversarial mine`` (and regenerate
the affected tables with ``tools/generate_*.py --adversarial``) rather
than editing corpus files by hand.

Usage::

    PYTHONPATH=src python tools/run_adversarial.py            # gate
    PYTHONPATH=src python tools/run_adversarial.py --workers 2

Exit status 1 on any schema finding, missing corpus, or replay miss.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: Every shipped (function, target) must have a committed corpus; a
#: deleted corpus file must fail the gate, not silently shrink it.
def _expected_pairs() -> set[tuple[str, str]]:
    from repro.api import functions

    return ({(f, "float32") for f in functions("float32")}
            | {(f, "posit32") for f in functions("posit32")})


def main(argv: list[str] | None = None) -> int:
    from repro.eval.adversarial import (CorpusError, audit_corpus_dir,
                                        default_corpus_dir, list_corpora,
                                        render_audits)
    from repro.parallel import parse_workers

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", type=pathlib.Path,
                        default=default_corpus_dir(REPO))
    parser.add_argument("--workers", default=None, metavar="N|auto",
                        help=">1 adds the process-pool replay path")
    args = parser.parse_args(argv)

    have = {(f, t) for f, t, _ in list_corpora(args.dir)}
    missing = sorted(_expected_pairs() - have)
    if missing:
        for f, t in missing:
            print(f"adversarial gate: missing corpus {f}.{t}.json")
        return 1

    try:
        audits = audit_corpus_dir(args.dir,
                                  workers=parse_workers(args.workers))
    except CorpusError as e:
        print(f"adversarial gate: {e}")
        return 1
    sys.stdout.write(render_audits(audits))
    return 0 if audits and all(a.ok for a in audits) else 1


if __name__ == "__main__":
    sys.exit(main())
