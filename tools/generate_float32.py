#!/usr/bin/env python
"""Generate the shipped float32 library (tools entry point).

Runs the sampled RLIBM-32 pipeline for the ten float32 functions and
freezes the results into src/repro/libm/data_float32/.  Use --quick for
a fast smoke run (reduced sample sizes), --functions to select a subset.

This is a thin argv shim over
:func:`repro.api.generate.generate_library`, the blessed
generation-time entry point.
"""

import argparse
import pathlib
import sys

from repro.api import functions
from repro.api.generate import generate_library


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--functions", nargs="*",
                        default=list(functions("float32")))
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--scale", type=int, default=1,
                        help="divide sample budgets by this factor")
    parser.add_argument("--workers", default=None, metavar="N|auto",
                        help="parallel worker processes (default: serial; "
                             "results are identical)")
    parser.add_argument("--checkpoint", type=pathlib.Path, metavar="DIR",
                        help="resume a killed run from this directory")
    parser.add_argument("--adversarial", type=pathlib.Path, metavar="DIR",
                        nargs="?", const=pathlib.Path("tests/data/adversarial"),
                        help="fold the committed adversarial corpus inputs "
                             "for float32 into the generation constraints")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="output data package (default: the in-tree "
                             "src/repro/libm/data_float32)")
    args = parser.parse_args(argv)
    generate_library(args.functions, "float32", args.out,
                     quick=args.quick, seed=args.seed, scale=args.scale,
                     workers=args.workers, checkpoint=args.checkpoint,
                     adversarial=args.adversarial)
    return 0


if __name__ == "__main__":
    sys.exit(main())
