#!/usr/bin/env python
"""CI gate: run fplint + tablecheck, fail the build on any finding.

The static-analysis twin of ``tools/check_genstats.py``: where that
script catches *generation-effort* drift, this one catches source-level
invariant breakage (float-safety lint rules FP101–FP108, including the
``math.*``-transcendental ban FP102 over the runtime, range-reduction
and vectorized ``src/repro/batch/`` paths, and the swallowed-exception
and determinism rules FP106/FP107 over the persistent generation cache
``src/repro/cache/``) and structural corruption of
the frozen coefficient tables (TC201–TC208) before it can reach
exhaustive validation.

Usage::

    PYTHONPATH=src python tools/run_lint.py              # gate (exit 1)
    PYTHONPATH=src python tools/run_lint.py --format json
    PYTHONPATH=src python tools/run_lint.py --write-baseline  # refreeze

All arguments are forwarded to ``python -m repro lint``; the repo root
is pinned to this checkout so the gate works from any cwd.
"""

from __future__ import annotations

import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def main(argv: list[str] | None = None) -> int:
    from repro.analysis.cli import certify_main, main as lint_main

    args = list(sys.argv[1:] if argv is None else argv)
    if "--root" not in args:
        args += ["--root", str(REPO)]
    # the gate is strict about baseline hygiene: stale grandfathered
    # entries fail the build until --prune-baseline drops them
    maintenance = any(a in ("--write-baseline", "--prune-baseline",
                            "--fix") for a in args)
    if "--fail-stale" not in args and not maintenance:
        args += ["--fail-stale"]
    rc = lint_main(args)
    # the certificate, adversarial, and serving gates ride along:
    # shipped tables must agree with their proofs, reproduce the frozen
    # hostile-input corpora, AND answer bit-identically through the
    # multi-process service whenever the lint gate runs (all skipped
    # for baseline maintenance and --fix invocations, which exit before
    # reporting)
    if maintenance:
        return rc
    certify_rc = certify_main(["--root", str(REPO)])
    adversarial_rc = _tool_main("run_adversarial", [])
    serve_rc = _tool_main("run_serve_smoke", [])
    return rc or certify_rc or adversarial_rc or serve_rc


def _tool_main(name: str, argv: list[str]) -> int:
    # loaded by path: tools/ is not a package and may be off sys.path
    # (tests import these gates the same way)
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        name, REPO / "tools" / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.main(argv)


if __name__ == "__main__":
    sys.exit(main())
