#!/usr/bin/env python
"""CI gate: boot the serving layer, replay one hostile corpus through it.

The serving twin of ``tools/run_adversarial.py``: where that gate
proves the in-process runtime still reproduces every frozen corpus,
this one proves the *service* path — shared-memory arena publication,
fork workers, unix-socket framing, coalescing — answers bit-identically
to the scalar library on the nastiest committed inputs, then shuts down
cleanly.  One corpus keeps it cheap enough to chain into every
``tools/run_lint.py`` run; the exhaustive serving differential lives in
``tests/test_serve.py`` (``-m serve``).

Usage::

    PYTHONPATH=src python tools/run_serve_smoke.py
    PYTHONPATH=src python tools/run_serve_smoke.py --corpus ln.float32

Exit status 1 on any mismatch, boot failure, or a shutdown that takes
longer than the deadline (default 10 s for the whole run).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

DEFAULT_CORPUS = "exp.float32"


def main(argv: list[str] | None = None) -> int:
    import numpy as np

    from repro.eval.adversarial import corpus_path, default_corpus_dir, \
        load_corpus
    from repro.serve import serve

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--corpus", default=DEFAULT_CORPUS,
                        metavar="FN.TARGET",
                        help=f"committed corpus to replay "
                             f"(default: {DEFAULT_CORPUS})")
    parser.add_argument("--dir", type=pathlib.Path,
                        default=default_corpus_dir(REPO))
    parser.add_argument("--deadline", type=float, default=10.0,
                        help="whole-run wall-clock budget in seconds")
    args = parser.parse_args(argv)

    function, _, target = args.corpus.partition(".")
    path = corpus_path(args.dir, function, target or "float32")
    if not path.is_file():
        print(f"serve smoke: no corpus at {path}")
        return 1
    corpus = load_corpus(path)
    x = np.array([e.x_bits for e in corpus], dtype=np.uint64)
    want = np.array([e.want_bits for e in corpus], dtype=np.uint64)

    t0 = time.perf_counter()
    with serve([corpus.function], targets=(corpus.target,),
               workers=2) as svc:
        with svc.connect(corpus.function, corpus.target) as client:
            if not client.ping():
                print("serve smoke: ping failed")
                return 1
            got = client.evaluate_bits_from_bits(x)
        svc.close()
    elapsed = time.perf_counter() - t0

    bad = np.nonzero(got != want)[0]
    if bad.size:
        i = int(bad[0])
        print(f"serve smoke: {corpus.function}.{corpus.target} "
              f"FAILED — {bad.size}/{len(corpus)} replies diverge "
              f"(first: x={x[i]:#x} want={want[i]:#x} got={got[i]:#x})")
        return 1
    if elapsed > args.deadline:
        print(f"serve smoke: replay was bit-identical but took "
              f"{elapsed:.1f}s (> {args.deadline:.0f}s deadline)")
        return 1
    print(f"serve smoke: {corpus.function}.{corpus.target} "
          f"{len(corpus)} hostile inputs bit-identical through the "
          f"service, clean shutdown, {elapsed:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
