#!/usr/bin/env python
"""Generation-effort regression check against a frozen baseline trace.

Replays the smallest deterministic slice of the pipeline — exhaustive
float8 ``exp2`` generation (no sampling, no RNG) — with tracing enabled,
then compares the pipeline-effort statistics (CEG iteration counts,
largest CEG sample, LP solve counts and sizes, exact-simplex fallbacks,
split attempts) against the committed baseline
``genlogs/trace_float8_exp2.jsonl``.  A drift beyond the tolerance means
a change to Algorithms 2–4 or the LP front end altered how hard the
generator works — which is exactly the kind of silent regression the
observability layer exists to catch.

The comparison is tolerant of *new* trace content by construction:
:func:`repro.obs.report.summarize` skips unknown event kinds, unknown
point-event names, and extra metrics counters, so instrumentation added
after the baseline was frozen (cache hit/miss counters, LP memo events,
…) cannot fail the check — only drift in the effort metrics below can.

Usage::

    PYTHONPATH=src python tools/check_genstats.py            # check
    PYTHONPATH=src python tools/check_genstats.py --rebase   # refreeze

Exit status 0 when every metric is within tolerance, 1 on drift.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

BASELINE = REPO / "genlogs" / "trace_float8_exp2.jsonl"

#: (metric key, relative tolerance, absolute slack).  CEG/LP effort on
#: an exhaustive tiny format is deterministic modulo scipy/HiGHS version
#: drift, so the tolerances are loose enough to survive a solver bump
#: but tight enough to flag an algorithmic change.
CHECKS = (
    ("ceg_rounds", 0.5, 2),
    ("ceg_max_sample", 0.5, 4),
    ("ceg_calls", 0.5, 1),
    ("lp_solves", 0.5, 3),
    ("lp_max_rows", 0.5, 4),
    ("lp_exact", 1.0, 2),
    ("splits", 0.5, 2),
    ("split_max_bits", 0.0, 1),
)

FN = "exp2"


def _run_traced(path: pathlib.Path) -> None:
    from repro import obs
    from repro.core import FunctionSpec, all_values, generate
    from repro.fp.formats import FLOAT8
    from repro.rangereduction import reduction_for

    obs.enable(path)
    try:
        rr = reduction_for(FN, FLOAT8)
        generate(FunctionSpec(FN, FLOAT8, rr), list(all_values(FLOAT8)))
    finally:
        obs.disable()


def _stats(path: pathlib.Path) -> dict:
    from repro.obs.report import load_trace, summarize

    per_fn = summarize(load_trace(path))["functions"]
    if FN not in per_fn:
        raise SystemExit(f"{path}: no 'generate' span for {FN!r} in trace")
    return per_fn[FN]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--baseline", type=pathlib.Path, default=BASELINE)
    ap.add_argument("--rebase", action="store_true",
                    help="regenerate the committed baseline trace")
    args = ap.parse_args(argv)

    if args.rebase:
        _run_traced(args.baseline)
        print(f"baseline rewritten: {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"missing baseline {args.baseline}; run with --rebase first",
              file=sys.stderr)
        return 1

    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as tf:
        fresh_path = pathlib.Path(tf.name)
    try:
        _run_traced(fresh_path)
        want = _stats(args.baseline)
        got = _stats(fresh_path)
    finally:
        fresh_path.unlink(missing_ok=True)

    drifted = []
    print(f"{'metric':18s} {'baseline':>9s} {'current':>9s} {'allowed':>16s}")
    for key, rel, slack in CHECKS:
        w, g = int(want.get(key, 0)), int(got.get(key, 0))
        allowed = max(rel * w, slack)
        ok = abs(g - w) <= allowed
        print(f"{key:18s} {w:>9d} {g:>9d} {f'±{allowed:.0f}':>16s}"
              + ("" if ok else "  DRIFT"))
        if not ok:
            drifted.append(key)
    if drifted:
        print(f"\ngeneration-effort drift in: {', '.join(drifted)}\n"
              "If intentional (algorithm change), refreeze with --rebase.",
              file=sys.stderr)
        return 1
    print("\nok: generation effort within tolerance of the frozen baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
