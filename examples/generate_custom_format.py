#!/usr/bin/env python
"""Generate a correctly rounded library for a custom format, end to end.

Run:  python examples/generate_custom_format.py

This walks the whole RLIBM-32 pipeline for bfloat16 log2 — the kind of
16-bit target the original RLIBM handled — and for a custom 1-5-8
"research" format, then *proves* correctness by exhaustive validation
(every input checked against the oracle), which is feasible for 16-bit
formats in seconds.

It also prints the generated artifacts: the piecewise polynomial, its
bit-pattern sub-domain indexing, and the per-step statistics, so you can
see exactly what the generator built.
"""

import time

from repro.core import FunctionSpec, all_values, generate, validate
from repro.fp.formats import BFLOAT16, FloatFormat
from repro.rangereduction import reduction_for


def run(fmt, fn_name: str) -> None:
    print(f"=== {fn_name} for {fmt} ===")
    t0 = time.perf_counter()
    rr = reduction_for(fn_name, fmt)
    spec = FunctionSpec(fn_name, fmt, rr)
    inputs = list(all_values(fmt))
    fn = generate(spec, inputs)
    dt = time.perf_counter() - t0

    st = fn.stats
    print(f"  inputs: {st.input_count} ({st.special_count} special-cased)")
    print(f"  unique reduced inputs: {st.reduced_count}")
    for name, info in st.per_fn.items():
        print(f"  reduced function {name}: {info['npolys']} polynomial(s), "
              f"degree {info['degree']}, {info['terms']} terms")
    print(f"  generation time: {dt:.1f}s "
          f"(oracle share {st.oracle_time_s / st.gen_time_s:.0%})")

    for name, af in fn.approx.items():
        side = af.pos or af.neg
        print(f"  {name} piecewise table: 2**{side.index_bits} sub-domains, "
              f"index = (bits(r) >> {side.shift}) & "
              f"{(1 << side.index_bits) - 1}")
        poly = side.polys[0]
        terms = " + ".join(f"{c:.17g}*r^{e}"
                           for e, c in zip(poly.exponents, poly.coefficients))
        print(f"  sub-domain 0 polynomial: {terms}")

    t0 = time.perf_counter()
    bad = validate(fn, inputs)
    print(f"  exhaustive validation: {len(bad)} mismatches over "
          f"{len(inputs)} inputs ({time.perf_counter() - t0:.1f}s)")
    assert not bad, "generation must be correctly rounded everywhere"
    print()


def main() -> None:
    run(BFLOAT16, "log2")
    # a custom format: 1 sign, 5 exponent, 8 mantissa bits
    run(FloatFormat(5, 8, "custom-1-5-8"), "exp")


if __name__ == "__main__":
    main()
