#!/usr/bin/env python
"""Section 2 of the paper, executed: the sinpi(x) pipeline step by step.

Run:  python examples/sinpi_walkthrough.py

Reproduces the overview example: two float32 inputs that map to the same
reduced input R, their rounding intervals, the deduced reduced intervals
for sinpi(R) and cospi(R) (Algorithm 2's simultaneous widening), the
bit-pattern sub-domain index of R, and finally the output compensation
that turns polynomial values back into sinpi(x).
"""

from repro import api
from repro.core.generator import target_rounding_interval
from repro.core.reduced import reduced_intervals
from repro.fp.bits import double_to_bits
from repro.fp.float32 import f32_round
from repro.fp.formats import FLOAT32
from repro.oracle import default_oracle as orc
from repro.rangereduction import SinPiReduction


def main() -> None:
    rr = SinPiReduction(FLOAT32)

    # the paper's two example inputs (float32 values)
    x1 = f32_round(1.95312686264514923095703125e-3)
    x2 = f32_round(2.148437686264514923095703125e-2)
    print("Step 1: rounding intervals")
    pairs = []
    for x in (x1, x2):
        y_bits = orc.round_to_bits("sinpi", x, FLOAT32)
        iv = target_rounding_interval(FLOAT32, y_bits)
        pairs.append((x, iv))
        print(f"  x = {x!r}")
        print(f"    correctly rounded sinpi(x) = "
              f"{FLOAT32.to_double(y_bits)!r}")
        print(f"    rounding interval in double: [{iv.lo!r}, {iv.hi!r}]")

    print("\nStep 2: range reduction -> both inputs share one reduced R")
    r1, r2 = rr.reduce(x1), rr.reduce(x2)
    print(f"  x1 -> R = {r1.r!r} (table index N={r1.ctx[0]})")
    print(f"  x2 -> R = {r2.r!r} (table index N={r2.ctx[0]})")
    assert r1.r == r2.r

    print("\nStep 2b: reduced intervals (Algorithm 2, simultaneous "
          "widening over sinpi(R) and cospi(R))")
    rset = reduced_intervals(pairs, rr)
    for name in rr.fn_names:
        c = rset.constraints[name][0]
        print(f"  {name}(R) must land in [{c.lo!r}, {c.hi!r}]")

    print("\nStep 3: bit-pattern sub-domain indexing of R")
    print(f"  R as a double bit pattern: {double_to_bits(r1.r):#018x}")
    g = api.load("sinpi", target="float32").fn
    af = g.approx["sinpi"]
    side = af.pos
    print(f"  shipped sinpi(R) table: 2**{side.index_bits} sub-domain(s); "
          f"index = (bits >> {side.shift}) & {(1 << side.index_bits) - 1} "
          f"= {side.index_of(r1.r)}")
    poly = side.polys[side.index_of(r1.r)]
    print(f"  polynomial there: exponents {poly.exponents}")
    print(f"  coefficients {poly.coefficients}")

    print("\nStep 4: evaluate + output compensation")
    vs = g.approx['sinpi'](r1.r)
    vc = g.approx['cospi'](r1.r)
    print(f"  sinpi(R) ~ {vs!r}, cospi(R) ~ {vc!r}")
    for x in (x1, x2):
        red = rr.reduce(x)
        y = rr.compensate([vs, vc], red.ctx)
        final = f32_round(y)
        want = FLOAT32.to_double(orc.round_to_bits("sinpi", x, FLOAT32))
        print(f"  sinpi({x!r}) = {final!r} "
              f"[{'correctly rounded' if final == want else 'WRONG'}]")


if __name__ == "__main__":
    main()
