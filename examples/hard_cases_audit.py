#!/usr/bin/env python
"""Hunting wrong results in conventional libraries (a mini Table 1).

Run:  python examples/hard_cases_audit.py

The motivation the paper opens with: mainstream math libraries do not
produce correctly rounded results for all inputs.  This example mines
*hard cases* — inputs whose exact result grazes a float32 rounding
boundary — and shows them defeating the mini-max baseline stand-ins
while RLIBM-32 stays correct, then prints a compact correctness table.
"""

import random

from repro import api
from repro.baselines import correctness_baselines
from repro.core.generator import target_bits
from repro.core.sampling import sample_values
from repro.eval.correctness import audit_function, build_pool, render_rows
from repro.eval.hardcases import boundary_distance, mine_hard_cases
from repro.fp.formats import FLOAT32
from repro.oracle import default_oracle as orc


def main() -> None:
    fn_name = "exp"
    print(f"Mining hard cases for float32 {fn_name}...")
    cands = sample_values(FLOAT32, 4000, random.Random(5), -80.0, 80.0)
    hard = mine_hard_cases(fn_name, FLOAT32, cands, 5)
    for x in hard:
        d = boundary_distance(fn_name, x, FLOAT32)
        print(f"  x = {x!r}: exact {fn_name}(x) sits {d:.2e} interval-widths "
              "from a rounding boundary")

    print("\nDo the libraries survive them?")
    rl = api.load(fn_name, target="float32").fn
    libs = correctness_baselines()
    for x in hard:
        want = orc.round_to_bits(fn_name, x, FLOAT32)
        got_rl = rl.evaluate_bits(x)
        verdicts = [f"RLIBM-32:{'ok' if got_rl == want else 'WRONG'}"]
        for name in ("glibc float", "intel double", "crlibm"):
            lib = libs[name]
            if not lib.supports(fn_name):
                continue
            got = target_bits(FLOAT32, lib.call(fn_name, x))
            verdicts.append(f"{name}:{'ok' if got == want else 'WRONG'}")
        print(f"  x={x!r}: " + "  ".join(verdicts))

    print("\nCompact correctness audit (one function, small pool):")
    pool = build_pool(fn_name, FLOAT32, n_random=800, n_hard=80,
                      hard_candidates=2500)
    row = audit_function(fn_name, FLOAT32, rl, libs, pool)
    print(render_rows([row], f"mini Table 1 ({fn_name} only)"))


if __name__ == "__main__":
    main()
