#!/usr/bin/env python
"""Posits from first principles + the correctly rounded posit32 library.

Run:  python examples/posit_playground.py

Shows the posit codec this project implements from scratch (regime /
exponent / fraction decoding, tapered precision, saturation instead of
overflow) and why repurposing a double-precision library for posit32 —
the only option before RLIBM-32 — silently breaks at the extremes.
"""

import math
from fractions import Fraction

from repro.posit.format import POSIT8, POSIT32


def show_pattern(fmt, bits: int) -> None:
    val = fmt.to_fraction(bits)
    print(f"  {bits:0{fmt.nbits // 4}x}  ->  {float(val)!r:24s} "
          f"(= {val})")


def main() -> None:
    print("== posit8 (es=0): every pattern decodable by hand ==")
    for bits in (0x40, 0x48, 0x50, 0x60, 0x7F, 0x01, 0xC0):
        show_pattern(POSIT8, bits)

    print("\n== posit32 (es=2): tapered precision ==")
    one = POSIT32.from_double(1.0)
    print(f"  around 1.0 the step is 2**-27: "
          f"{POSIT32.to_double(POSIT32.next_up(one)) - 1.0!r}")
    big = POSIT32.from_double(1e30)
    step = (POSIT32.to_double(POSIT32.next_up(big))
            - POSIT32.to_double(big))
    print(f"  around 1e30 the step is {step!r} "
          "(precision tapers off with magnitude)")
    print(f"  maxpos = 2**120 = {float(POSIT32.maxpos)!r}; "
          "beyond it everything saturates:")
    print(f"  posit32(1e300) = {POSIT32.round_double(1e300)!r}")
    print(f"  posit32(1e-300) = {POSIT32.round_double(1e-300)!r} "
          "(never rounds to 0)")

    print("\n== why repurposed double libraries fail (Table 2) ==")
    x = 200.0
    d = math.exp(x)     # double library result
    print(f"  exp({x}) in double = {d!r}")
    print(f"  rounded to posit32: {POSIT32.round_double(d)!r}")
    try:
        d2 = math.exp(800.0)
    except OverflowError:
        d2 = math.inf
    print(f"  exp(800.0) in double overflows to {d2!r} -> posit32 NaR, "
          "but the correct posit32 answer is maxpos:")

    from repro import api

    try:
        pexp = api.load("exp", target="posit32")
        pln = api.load("ln", target="posit32")
        nar = POSIT32.to_double(POSIT32.nar_bits)   # NaR decodes to NaN
        print(f"  RLIBM-32 exp(800.0) = {pexp(800.0)!r}")
        print(f"  RLIBM-32 exp(-800.0) = {pexp(-800.0)!r} (minpos)")
        print(f"  RLIBM-32 ln(2**120) = {pln(float(POSIT32.maxpos))!r}")
        print(f"  RLIBM-32 exp_bits(NaR) = "
              f"{pexp.evaluate_bits(nar):#010x} (NaR in, NaR out)")
    except LookupError:
        print("  (generate the posit32 tables first: "
              "tools/generate_posit32.py)")


if __name__ == "__main__":
    main()
