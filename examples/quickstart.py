#!/usr/bin/env python
"""Quickstart: using the correctly rounded 32-bit math libraries.

Run:  python examples/quickstart.py

The float32 API takes and returns Python floats holding exact binary32
values; the posit32 API additionally offers a raw bit-pattern interface.
Every result is correctly rounded: it equals the real-number result of
the function rounded once to the 32-bit target.
"""

import math

from repro.libm import float32 as rl
from repro.fp.float32 import f32_round, f32_to_bits


def main() -> None:
    print("== RLIBM-32 float32 library ==")
    for expr, got, want in [
        ("log2(8)", rl.log2(8.0), 3.0),
        ("exp(1)", rl.exp(1.0), f32_round(math.e)),
        ("sinpi(0.5)", rl.sinpi(0.5), 1.0),
        ("cospi(1.5)", rl.cospi(1.5), 0.0),
        ("exp10(-2)", rl.exp10(-2.0), f32_round(0.01)),
        ("sinh(3)", rl.sinh(3.0), f32_round(math.sinh(3.0))),
    ]:
        status = "ok" if got == want else "MISMATCH"
        print(f"  {expr:12s} = {got!r:25s} [{status}]")

    print("\nSpecial cases follow IEEE conventions:")
    print(f"  ln(0)    = {rl.ln(0.0)!r}")
    print(f"  ln(-1)   = {rl.ln(-1.0)!r}")
    print(f"  exp(-inf)= {rl.exp(-math.inf)!r}")
    print(f"  exp(89)  = {rl.exp(89.0)!r}  (float32 overflow)")

    print("\nBit-level access (binary32 patterns):")
    print(f"  log10_bits(1000) = {rl.log10_bits(1000.0):#010x}"
          f"  (== 3.0f: {f32_to_bits(3.0):#010x})")

    # Where correct rounding matters: a value whose exponential sits
    # extremely close to a float32 rounding boundary.  A 1-ulp slip in a
    # conventional library flips the last bit.
    x = f32_round(0.49868873)
    print("\nA hard input: exp({!r})".format(x))
    print(f"  correctly rounded: {rl.exp(x)!r}")
    print(f"  naive float32 computation: {f32_round(math.exp(x))!r} "
          "(happens to agree here — but no library that rounds twice can "
          "promise it for every input; RLIBM-32 can)")

    try:
        from repro.libm import posit32 as rp
        print("\n== RLIBM-32 posit32 library ==")
        print(f"  exp(1)    = {rp.exp(1.0)!r}")
        print(f"  ln(2)     = {rp.ln(2.0)!r}")
        print(f"  exp(200)  = {rp.exp(200.0)!r}  "
              "(saturates to maxpos = 2**120: posits never overflow)")
        print(f"  exp(-200) = {rp.exp(-200.0)!r}  (minpos, never 0)")
    except LookupError:
        print("\n(posit32 tables not generated yet; "
              "run tools/generate_posit32.py)")


if __name__ == "__main__":
    main()
