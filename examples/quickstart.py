#!/usr/bin/env python
"""Quickstart: using the correctly rounded 32-bit math libraries.

Run:  python examples/quickstart.py

``repro.api`` is the public entry point: ``api.load(fn, target)``
returns a Library handle whose scalar calls take and return Python
floats holding exact binary32/posit32 values, with a raw bit-pattern
interface and a numpy-vectorized batch path alongside.  Every result
is correctly rounded: it equals the real-number result of the function
rounded once to the 32-bit target.
"""

import math

from repro import api
from repro.fp.float32 import f32_round, f32_to_bits


def main() -> None:
    fl = {name: api.load(name, target="float32")
          for name in api.functions("float32")}

    print("== RLIBM-32 float32 library ==")
    for expr, got, want in [
        ("log2(8)", fl["log2"](8.0), 3.0),
        ("exp(1)", fl["exp"](1.0), f32_round(math.e)),
        ("sinpi(0.5)", fl["sinpi"](0.5), 1.0),
        ("cospi(1.5)", fl["cospi"](1.5), 0.0),
        ("exp10(-2)", fl["exp10"](-2.0), f32_round(0.01)),
        ("sinh(3)", fl["sinh"](3.0), f32_round(math.sinh(3.0))),
    ]:
        status = "ok" if got == want else "MISMATCH"
        print(f"  {expr:12s} = {got!r:25s} [{status}]")

    print("\nSpecial cases follow IEEE conventions:")
    print(f"  ln(0)    = {fl['ln'](0.0)!r}")
    print(f"  ln(-1)   = {fl['ln'](-1.0)!r}")
    print(f"  exp(-inf)= {fl['exp'](-math.inf)!r}")
    print(f"  exp(89)  = {fl['exp'](89.0)!r}  (float32 overflow)")

    print("\nBit-level access (binary32 patterns):")
    print(f"  log10.evaluate_bits(1000) = "
          f"{fl['log10'].evaluate_bits(1000.0):#010x}"
          f"  (== 3.0f: {f32_to_bits(3.0):#010x})")

    # Where correct rounding matters: a value whose exponential sits
    # extremely close to a float32 rounding boundary.  A 1-ulp slip in a
    # conventional library flips the last bit.
    x = f32_round(0.49868873)
    print("\nA hard input: exp({!r})".format(x))
    print(f"  correctly rounded: {fl['exp'](x)!r}")
    print(f"  naive float32 computation: {f32_round(math.exp(x))!r} "
          "(happens to agree here — but no library that rounds twice can "
          "promise it for every input; RLIBM-32 can)")

    try:
        import numpy as np

        xs = np.linspace(-10.0, 10.0, 5)
        print("\nVectorized batch evaluation (bit-identical to scalar):")
        print(f"  exp.evaluate_batch({xs.tolist()})")
        print(f"    = {fl['exp'].evaluate_batch(xs).tolist()}")
    except ImportError:
        pass

    try:
        pexp = api.load("exp", target="posit32")
        pln = api.load("ln", target="posit32")
        print("\n== RLIBM-32 posit32 library ==")
        print(f"  exp(1)    = {pexp(1.0)!r}")
        print(f"  ln(2)     = {pln(2.0)!r}")
        print(f"  exp(200)  = {pexp(200.0)!r}  "
              "(saturates to maxpos = 2**120: posits never overflow)")
        print(f"  exp(-200) = {pexp(-200.0)!r}  (minpos, never 0)")
    except LookupError:
        print("\n(posit32 tables not generated yet; "
              "run tools/generate_posit32.py)")


if __name__ == "__main__":
    main()
