"""Tests for the polynomial-fitting LP front end (repro.lp.solver)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp.solver import LinearConstraint, fit_coefficients


def _exp_constraints(width, n=60, lo=-0.01, hi=0.01):
    out = []
    for i in range(n):
        r = lo + (hi - lo) * i / (n - 1)
        v = math.exp(r)
        out.append(LinearConstraint(r, v - width, v + width))
    return out


def _check_exact(coeffs, exponents, constraints):
    for c in constraints:
        p = sum(Fraction(cf) * Fraction(c.r) ** e
                for cf, e in zip(coeffs, exponents))
        assert Fraction(c.lo) <= p <= Fraction(c.hi), c


class TestFeasible:
    def test_cubic_fits_loose_exp(self):
        cs = _exp_constraints(1e-9)
        res = fit_coefficients(cs, (0, 1, 2, 3))
        assert res.feasible
        _check_exact(res.coefficients, (0, 1, 2, 3), cs)

    def test_margin_positive(self):
        res = fit_coefficients(_exp_constraints(1e-8), (0, 1, 2, 3))
        assert res.margin is not None and res.margin > 0.5

    def test_empty_constraints(self):
        res = fit_coefficients([], (0, 1))
        assert res.feasible and res.coefficients == [0.0, 0.0]

    def test_single_point(self):
        res = fit_coefficients([LinearConstraint(0.5, 1.0, 2.0)], (0,))
        assert res.feasible
        assert 1.0 <= res.coefficients[0] <= 2.0

    def test_odd_structure(self):
        # fit sin-like odd data with odd exponents only
        cs = [LinearConstraint(r, math.sin(r) - 1e-9, math.sin(r) + 1e-9)
              for r in [i / 1000 for i in range(-9, 10)]]
        res = fit_coefficients(cs, (1, 3))
        assert res.feasible
        _check_exact(res.coefficients, (1, 3), cs)

    def test_no_exponents_rejected(self):
        with pytest.raises(ValueError):
            fit_coefficients(_exp_constraints(1e-9), ())


class TestScaling:
    def test_tiny_magnitudes(self):
        # sinpi-style: values around 1e-38 with relative widths 5e-3
        cs = []
        for i in range(1, 50):
            r = i * 1e-39
            v = math.pi * r
            cs.append(LinearConstraint(r, v * (1 - 5e-3), v * (1 + 5e-3)))
        res = fit_coefficients(cs, (1, 3, 5, 7))
        assert res.feasible
        _check_exact(res.coefficients, (1, 3, 5, 7), cs)

    def test_underflowing_columns_pinned_to_zero(self):
        cs = [LinearConstraint(i * 1e-60, math.pi * i * 1e-60 * 0.999,
                               math.pi * i * 1e-60 * 1.001)
              for i in range(1, 30)]
        res = fit_coefficients(cs, (1, 3, 5, 7))
        assert res.feasible
        # r**7 ~ 1e-420 underflows: its coefficient must be exactly 0
        assert res.coefficients[3] == 0.0
        _check_exact(res.coefficients, (1, 3, 5, 7), cs)

    def test_ulp_thin_intervals_iterative_refinement(self):
        # mixed widths: a few constraints 1e-11 relative (below HiGHS's
        # feasibility tolerance) among ordinary ones
        cs = []
        for i in range(80):
            r = 0.002 + i * 1e-5
            v = math.log2(1 + r)
            w = 5e-14 if i % 17 == 0 else 5e-10
            cs.append(LinearConstraint(r, v - w, v + w))
        res = fit_coefficients(cs, (1, 2, 3, 4))
        assert res.feasible
        _check_exact(res.coefficients, (1, 2, 3, 4), cs)


class TestInfeasible:
    def test_degree_too_low(self):
        cs = _exp_constraints(1e-12)
        res = fit_coefficients(cs, (0, 1, 2, 3))
        assert not res.feasible  # Remez bound for deg-3 here is ~4e-12

    def test_contradictory_points(self):
        cs = [LinearConstraint(0.5, 1.0, 1.1), LinearConstraint(0.5, 2.0, 2.1)]
        res = fit_coefficients(cs, (0, 1, 2))
        assert not res.feasible


class TestExactBackend:
    def test_matches_fast_backend_feasibility(self):
        cs = _exp_constraints(1e-9, n=24)
        fast = fit_coefficients(cs, (0, 1, 2, 3))
        exact = fit_coefficients(cs, (0, 1, 2, 3), exact=True)
        assert fast.feasible and exact.feasible
        assert exact.backend == "exact"
        _check_exact(exact.coefficients, (0, 1, 2, 3), cs)

    def test_exact_infeasible(self):
        cs = [LinearConstraint(0.5, 1.0, 1.1), LinearConstraint(0.5, 2.0, 2.1)]
        assert not fit_coefficients(cs, (0,), exact=True).feasible

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=10, deadline=None)
    def test_backends_agree_randomized(self, seed):
        import random
        rng = random.Random(seed)
        cs = []
        for _ in range(12):
            r = rng.uniform(-0.1, 0.1)
            v = math.exp(r)
            w = 10 ** rng.uniform(-10, -6)
            cs.append(LinearConstraint(r, v - w, v + w))
        fast = fit_coefficients(cs, (0, 1, 2, 3, 4))
        exact = fit_coefficients(cs, (0, 1, 2, 3, 4), exact=True)
        assert fast.feasible == exact.feasible
