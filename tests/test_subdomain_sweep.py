"""Tests for the Figure 5 sweep machinery (repro.eval.subdomains)."""

import pytest

from repro.eval.subdomains import SweepPoint, render_sweep, subdomain_sweep


class TestSweepPoint:
    def test_speedup(self):
        p = SweepPoint(2, 500.0, 4, 5, 0)
        assert p.speedup_over(1000.0) == 2.0


class TestRender:
    def test_marks_degree_drops(self):
        pts = [SweepPoint(0, 1000.0, 6, 7, 0),
               SweepPoint(1, 1050.0, 6, 7, 0),
               SweepPoint(2, 800.0, 4, 5, 0)]
        text = render_sweep("log2", pts)
        assert "*degree drop*" in text
        assert text.count("*degree drop*") == 1
        assert "1.25x" in text  # 1000/800

    def test_flags_validation_failures(self):
        pts = [SweepPoint(0, 1000.0, 6, 7, 0),
               SweepPoint(1, 900.0, 6, 7, 3)]
        text = render_sweep("log10", pts)
        assert "FAIL" in text


@pytest.mark.slow
class TestSweepEndToEnd:
    def test_small_sweep_runs(self):
        points = subdomain_sweep("log2", max_bits=2, n_inputs=1200)
        assert len(points) == 3
        assert all(p.mismatches == 0 for p in points)
        assert points[-1].max_degree <= points[0].max_degree
