"""Shared fixtures: small-format generated functions, reused across tests.

The full pipeline runs in well under a second per function on the tiny
float8/posit8 formats, but several test modules exercise the same
generated functions, so they are built once per session here.
"""

from __future__ import annotations

import pytest

from repro.core import FunctionSpec, all_values, generate
from repro.fp.formats import FLOAT8
from repro.posit.format import POSIT8
from repro.rangereduction import reduction_for


def _gen(name, fmt):
    rr = reduction_for(name, fmt)
    return generate(FunctionSpec(name, fmt, rr), list(all_values(fmt)))


@pytest.fixture(scope="session")
def float8_exp():
    """exp generated exhaustively for the float8 test format."""
    return _gen("exp", FLOAT8)


@pytest.fixture(scope="session")
def float8_log2():
    """log2 generated exhaustively for the float8 test format."""
    return _gen("log2", FLOAT8)


@pytest.fixture(scope="session")
def float8_sinpi():
    """sinpi generated exhaustively for the float8 test format."""
    return _gen("sinpi", FLOAT8)


@pytest.fixture(scope="session")
def posit8_exp():
    """exp generated exhaustively for posit8."""
    return _gen("exp", POSIT8)
