"""Tests for the target-format dispatch layer (repro.core.intervals)."""

import pytest

from repro.core.intervals import target_is_special, target_rounding_interval
from repro.fp.formats import FLOAT8, FLOAT32
from repro.fp.rounding import rounding_interval
from repro.posit.format import POSIT8, posit_rounding_interval


class TestDispatch:
    def test_float_dispatch(self):
        bits = FLOAT32.from_double(1.5)
        assert target_rounding_interval(FLOAT32, bits) == \
            rounding_interval(FLOAT32, bits)

    def test_posit_dispatch(self):
        bits = POSIT8.from_double(1.5)
        assert target_rounding_interval(POSIT8, bits) == \
            posit_rounding_interval(POSIT8, bits)

    def test_special_detection_float(self):
        assert target_is_special(FLOAT32, FLOAT32.nan_bits)
        assert not target_is_special(FLOAT32, FLOAT32.inf_bits)
        assert not target_is_special(FLOAT32, 0)

    def test_special_detection_posit(self):
        assert target_is_special(POSIT8, POSIT8.nar_bits)
        assert not target_is_special(POSIT8, 0)
        assert not target_is_special(POSIT8, POSIT8.maxpos_bits)

    def test_shared_format_api(self):
        # both format families expose the pipeline's required surface
        for fmt in (FLOAT8, POSIT8):
            bits = fmt.from_double(1.0)
            assert fmt.to_double(bits) == 1.0
            assert fmt.round_double(1.0) == 1.0
            iv = target_rounding_interval(fmt, bits)
            assert 1.0 in iv
