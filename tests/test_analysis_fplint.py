"""Rule-by-rule fixtures for the fplint engine.

Every rule gets (at least) a positive snippet that must fire and the
same snippet with a ``# fplint: disable=FPxxx`` suppression that must
not; scoping tests pin down where each rule does *not* apply.
"""

from __future__ import annotations

import pytest

from repro.analysis import RULES, lint_source

pytestmark = pytest.mark.lint

#: Paths that put a snippet inside each rule's scope.
CORE = "src/repro/core/fake.py"
LIBM = "src/repro/libm/fake.py"
RR = "src/repro/rangereduction/fake.py"


def codes(src: str, path: str) -> list[str]:
    return [f.rule for f in lint_source(src, path)]


def only(src: str, path: str, rule: str) -> list[str]:
    """Findings for one rule (FP108 fires on every header-less snippet)."""
    return [c for c in codes(src, path) if c == rule]


HEADER = "from __future__ import annotations\n"


class TestFP100:
    def test_syntax_error_is_a_finding(self):
        assert codes("def f(:\n", CORE) == ["FP100"]


class TestFP101:
    def test_float_equality_fires(self):
        src = HEADER + "def f(x: float):\n    return x == 1.5\n"
        assert only(src, LIBM, "FP101")

    def test_not_equal_fires(self):
        src = HEADER + "def f(x: float):\n    return 0.0 != x\n"
        assert only(src, LIBM, "FP101")

    def test_math_call_comparand_fires(self):
        src = HEADER + "import math\nok = math.sqrt(2.0) == y\n"
        assert only(src, LIBM, "FP101")

    def test_int_comparison_clean(self):
        src = HEADER + "def f(n):\n    return n == 1\n"
        assert not only(src, LIBM, "FP101")

    def test_ordering_comparison_clean(self):
        src = HEADER + "def f(x: float):\n    return x < 1.5\n"
        assert not only(src, LIBM, "FP101")

    def test_suppressed(self):
        src = HEADER + ("def f(x: float):\n"
                        "    return x == 1.5  # fplint: disable=FP101\n")
        assert not only(src, LIBM, "FP101")

    def test_exact_comparison_modules_exempt(self):
        src = HEADER + "def f(x: float):\n    return x == 1.5\n"
        for path in ("src/repro/fp/bits.py", "src/repro/oracle/fns.py",
                     "src/repro/rangereduction/exp.py"):
            assert not only(src, path, "FP101")


class TestFP102:
    def test_transcendental_fires(self):
        src = HEADER + "import math\ny = math.exp(1.0)\n"
        assert only(src, RR, "FP102")

    def test_structural_math_clean(self):
        src = HEADER + ("import math\n"
                        "a = math.ldexp(1.0, 3)\n"
                        "b = math.isnan(0.0)\n"
                        "c = math.frexp(1.5)\n")
        assert not only(src, RR, "FP102")

    def test_out_of_scope_clean(self):
        src = HEADER + "import math\ny = math.exp(1.0)\n"
        assert not only(src, "src/repro/oracle/fns.py", "FP102")

    def test_suppressed(self):
        src = HEADER + ("import math\n"
                        "y = math.exp(1.0)  # fplint: disable=FP102\n")
        assert not only(src, RR, "FP102")


class TestFP103:
    def test_overprecise_literal_fires(self):
        # written decimal is not the double the program gets
        src = HEADER + "c = 0.16553125613051173123456789\n"
        assert only(src, CORE, "FP103")

    def test_truncating_literal_fires(self):
        src = HEADER + "c = 88.722839355468751\n"  # parses to ...75
        assert only(src, CORE, "FP103")

    def test_overflowing_literal_fires(self):
        src = HEADER + "c = 1e999\n"
        assert only(src, CORE, "FP103")

    def test_shortest_repr_clean(self):
        src = HEADER + ("a = 0.1\nb = 1.5e-7\nc = 0.16553125613051173\n"
                        "d = 2.0\ne = 1e10\n")
        assert not only(src, CORE, "FP103")

    def test_trailing_zeros_clean(self):
        # same decimal value, just written longer — round-trips exactly
        src = HEADER + "a = 0.5000\n"
        assert not only(src, CORE, "FP103")

    def test_suppressed(self):
        src = HEADER + "c = 88.722839355468751  # fplint: disable=FP103\n"
        assert not only(src, CORE, "FP103")


class TestFP104:
    def test_int_literal_with_float_param_fires(self):
        src = HEADER + "def f(x: float):\n    return x * 2 + 1.0\n"
        assert only(src, RR, "FP104")

    def test_int_literal_with_tracked_float_fires(self):
        src = HEADER + ("def f(x: float):\n"
                        "    y = x * 0.5\n"
                        "    return y + 1\n")
        assert only(src, RR, "FP104")

    def test_pure_int_arithmetic_clean(self):
        src = HEADER + ("import math\n"
                        "def f(x: float):\n"
                        "    m, e2 = math.frexp(x)\n"
                        "    e = e2 - 1\n"
                        "    return e\n")
        assert not only(src, RR, "FP104")

    def test_index_context_clean(self):
        src = HEADER + ("def f(x: float, tab):\n"
                        "    j = int(x * 64.0)\n"
                        "    return tab[j + 1]\n")
        assert not only(src, RR, "FP104")

    def test_out_of_scope_clean(self):
        src = HEADER + "def f(x: float):\n    return x * 2\n"
        assert not only(src, "src/repro/eval/fake.py", "FP104")

    def test_suppressed(self):
        src = HEADER + ("def f(x: float):\n"
                        "    return x * 2  # fplint: disable=FP104\n")
        assert not only(src, RR, "FP104")


class TestFP105:
    def test_subscript_assignment_fires(self):
        src = HEADER + "DATA['approx'] = {}\n"
        assert only(src, LIBM, "FP105")

    def test_attribute_chain_fires(self):
        src = HEADER + "mod.DATA['rr_state']['_c'] = 0.5\n"
        assert only(src, LIBM, "FP105")

    def test_mutating_method_fires(self):
        src = HEADER + "mod.DATA.update({})\n"
        assert only(src, LIBM, "FP105")

    def test_nested_list_mutation_fires(self):
        src = HEADER + "DATA['approx']['exp']['polys'].append(p)\n"
        assert only(src, LIBM, "FP105")

    def test_del_fires(self):
        src = HEADER + "del DATA['stats']\n"
        assert only(src, LIBM, "FP105")

    def test_reading_clean(self):
        src = HEADER + "st = mod.DATA['stats']\nx = DATA.get('approx')\n"
        assert not only(src, LIBM, "FP105")

    def test_other_names_clean(self):
        src = HEADER + "cfg['a'] = 1\ncfg.update({})\n"
        assert not only(src, LIBM, "FP105")

    def test_suppressed(self):
        src = HEADER + "DATA['x'] = 1  # fplint: disable=FP105\n"
        assert not only(src, LIBM, "FP105")


class TestFP106:
    def test_bare_except_fires(self):
        src = HEADER + ("try:\n    f()\nexcept:\n    raise\n")
        assert only(src, CORE, "FP106")

    def test_swallowed_fires(self):
        src = HEADER + ("try:\n    f()\nexcept ValueError:\n    pass\n")
        assert only(src, CORE, "FP106")

    def test_handled_clean(self):
        src = HEADER + ("try:\n    f()\nexcept ValueError as e:\n"
                        "    log(e)\n")
        assert not only(src, CORE, "FP106")

    def test_out_of_scope_clean(self):
        src = HEADER + ("try:\n    f()\nexcept ValueError:\n    pass\n")
        assert not only(src, LIBM, "FP106")

    def test_suppressed(self):
        src = HEADER + ("try:\n    f()\n"
                        "except ValueError:  # fplint: disable=FP106\n"
                        "    pass\n")
        assert not only(src, CORE, "FP106")


class TestFP107:
    def test_global_rng_fires(self):
        src = HEADER + "import random\nrandom.shuffle(xs)\n"
        assert only(src, CORE, "FP107")

    def test_global_rng_import_fires(self):
        src = HEADER + "from random import shuffle\n"
        assert only(src, CORE, "FP107")

    def test_wall_clock_fires(self):
        src = HEADER + "import time\nseed = time.time()\n"
        assert only(src, CORE, "FP107")

    def test_set_iteration_fires(self):
        src = HEADER + "for x in set(names):\n    use(x)\n"
        assert only(src, CORE, "FP107")

    def test_seeded_rng_clean(self):
        src = HEADER + ("import random\nimport time\n"
                        "rng = random.Random(2021)\n"
                        "v = rng.random()\n"
                        "t0 = time.perf_counter()\n"
                        "for x in sorted(set(names)):\n    use(x)\n")
        assert not only(src, CORE, "FP107")

    def test_suppressed(self):
        src = HEADER + ("import random\n"
                        "random.shuffle(xs)  # fplint: disable=FP107\n")
        assert not only(src, CORE, "FP107")


class TestFP108:
    def test_missing_future_import_fires(self):
        assert only("x = 1\n", CORE, "FP108")

    def test_present_clean(self):
        assert not only(HEADER + "x = 1\n", CORE, "FP108")

    def test_generated_data_modules_exempt(self):
        path = "src/repro/libm/data_float32/exp.py"
        assert not only("DATA = {}\n", path, "FP108")

    def test_suppressed(self):
        src = "x = 1  # fplint: disable=FP108\n"
        # the module-level finding lands on line 1
        assert not only(src, CORE, "FP108")


class TestInfrastructure:
    def test_every_rule_has_fixit_hint(self):
        for rule in RULES.values():
            assert rule.hint, rule.code
            assert rule.severity in ("error", "warning")

    def test_multi_code_suppression(self):
        src = HEADER + ("import math\n"
                        "y = math.exp(2.0) == x"
                        "  # fplint: disable=FP101, FP102\n")
        assert codes(src, LIBM) == []

    def test_findings_carry_location_and_hint(self):
        src = HEADER + "DATA['x'] = 1\n"
        (f,) = lint_source(src, LIBM)
        assert (f.rule, f.line) == ("FP105", 2)
        assert f.hint and f.path == LIBM
        assert "path" in f.to_dict() and f.key.count(":") == 2


class TestApplyFixes:
    """The mechanical --fix path for the FIXABLE rules (FP103, FP108)."""

    def test_fp103_rewrites_to_shortest_repr(self):
        from repro.analysis.fplint import apply_fixes

        src = HEADER + "c = 88.722839355468751\nd = 0.5\n"
        out, fixed = apply_fixes(src, CORE)
        assert "c = 88.72283935546875\n" in out
        assert "d = 0.5\n" in out  # already shortest: untouched
        assert [f.rule for f in fixed] == ["FP103"]
        # the result lints clean for the fixable rules
        assert not [f for f in lint_source(out, CORE)
                    if f.rule in ("FP103", "FP108")]

    def test_fp103_overflowing_literal_left_alone(self):
        from repro.analysis.fplint import apply_fixes

        src = HEADER + "c = 1e999\n"
        out, fixed = apply_fixes(src, CORE)
        assert out == src and fixed == []

    def test_fp108_inserted_after_docstring(self):
        from repro.analysis.fplint import apply_fixes

        src = '"""Doc."""\n\nx = 1\n'
        out, fixed = apply_fixes(src, CORE)
        assert out.splitlines()[:4] == [
            '"""Doc."""', "", "from __future__ import annotations", ""]
        assert [f.rule for f in fixed] == ["FP108"]

    def test_fp108_inserted_at_top_without_docstring(self):
        from repro.analysis.fplint import apply_fixes

        out, fixed = apply_fixes("x = 1\n", CORE)
        assert out.startswith("from __future__ import annotations\n")
        assert [f.rule for f in fixed] == ["FP108"]

    def test_suppressions_respected(self):
        from repro.analysis.fplint import apply_fixes

        src = HEADER + "c = 88.722839355468751  # fplint: disable=FP103\n"
        out, fixed = apply_fixes(src, CORE)
        assert out == src and fixed == []

    def test_multiple_literals_one_line(self):
        from repro.analysis.fplint import apply_fixes

        src = HEADER + "c = (88.722839355468751, 0.1000000000000000001)\n"
        out, fixed = apply_fixes(src, CORE)
        assert "c = (88.72283935546875, 0.1)\n" in out
        assert [f.rule for f in fixed] == ["FP103", "FP103"]


class TestFixPaths:
    def _tree(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        bad = pkg / "bad.py"
        bad.write_text(HEADER + "c = 88.722839355468751\n")
        return bad

    def test_dry_run_leaves_files_and_returns_diff(self, tmp_path):
        from repro.analysis.fplint import fix_paths

        bad = self._tree(tmp_path)
        before = bad.read_text()
        fixed, diffs = fix_paths([bad], tmp_path, dry_run=True)
        assert bad.read_text() == before
        assert [f.rule for f in fixed] == ["FP103"]
        (diff,) = diffs.values()
        assert "-c = 88.722839355468751" in diff
        assert "+c = 88.72283935546875" in diff

    def test_write_mode_rewrites_in_place(self, tmp_path):
        from repro.analysis.fplint import fix_paths

        bad = self._tree(tmp_path)
        fixed, diffs = fix_paths([bad], tmp_path, dry_run=False)
        assert "c = 88.72283935546875\n" in bad.read_text()
        assert len(fixed) == 1 and len(diffs) == 1
        # second pass: nothing left to fix
        assert fix_paths([bad], tmp_path, dry_run=False) == ([], {})
