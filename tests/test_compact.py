"""Tests for the compact frozen-table layout (repro.libm.compact).

The compact codec carries every double as its 64-bit pattern, so its
one hard contract is *bit identity*: ``decode(encode(data))`` must
reproduce the legacy ``DATA`` dict exactly, a compact-loaded function
must agree with the dict-loaded one on every output bit, and the
evaluation-side views it primes (frozen gathered columns, rr tables)
must never change a result — only where it is computed from.
"""

import base64
import importlib
import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.reduce import FrozenGather
from repro.libm import compact
from repro.libm.compact import (CompactError, decode, decode_module, encode,
                                function_from_compact, render_compact)
from repro.libm.serialize import (_deep_equal, function_from_dict,
                                  function_to_dict)

SHIPPED = [("float32", f) for f in ("ln", "log2", "log10", "exp", "exp2",
                                    "exp10", "sinh", "cosh", "sinpi",
                                    "cospi")] + \
          [("posit32", f) for f in ("ln", "log2", "log10", "exp", "exp2",
                                    "exp10", "sinh", "cosh")]


def _shipped_module(target: str, name: str):
    return importlib.import_module(f"repro.libm.data_{target}.{name}")


# ---------------------------------------------------------------------------
# generic skeleton codec


finite_floats = st.floats(allow_nan=False, width=64)
any_floats = st.floats(width=64)  # nan/inf included: the pool stores bits
leaf = st.one_of(any_floats, st.integers(-2**40, 2**40),
                 st.text(max_size=8), st.booleans(), st.none())
skeleton = st.recursive(
    leaf,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(
            st.text(min_size=1, max_size=6).filter(
                lambda s: not s.startswith("@")),
            inner, max_size=4)),
    max_leaves=24)


class TestSkeletonCodec:
    @given(st.dictionaries(st.sampled_from("abcdef"), skeleton, max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_round_trip_is_bit_identical(self, data):
        assert _deep_equal(decode(encode(data)), data)

    def test_specials_survive(self):
        data = {"v": (math.inf, -math.inf, math.nan, 0.0, -0.0, 5e-324)}
        out = decode(encode(data))
        assert _deep_equal(out, data)
        # -0.0 and subnormals by bit pattern, not just value
        for got, want in zip(out["v"], data["v"]):
            assert struct.pack("<d", got) == struct.pack("<d", want)

    def test_tuple_vs_list_distinction(self):
        data = {"t": (1.0, 2.0), "l": [1.0, 2.0]}
        out = decode(encode(data))
        assert type(out["t"]) is tuple and type(out["l"]) is list

    def test_at_keys_rejected_at_encode(self):
        with pytest.raises(ValueError, match="@"):
            encode({"x": {"@f": 1}})

    def test_float_subclass_rejected(self):
        class Sneaky(float):
            pass

        with pytest.raises(ValueError):
            encode({"x": Sneaky(1.5)})

    def test_pool_deduplicates_identical_vectors(self):
        data = {"a": (1.5, 2.5, 3.5), "b": (1.5, 2.5, 3.5),
                "c": [1.5, 2.5, 3.5]}
        comp = encode(data)
        assert comp["pool_len"] == 3
        assert _deep_equal(decode(comp), data)


class TestBlobValidation:
    def _good(self):
        return encode({"x": 1.25, "v": (0.5, 0.75)})

    def test_version_mismatch(self):
        comp = self._good()
        comp["version"] = 99
        with pytest.raises(CompactError, match="version"):
            decode(comp)

    def test_torn_pool(self):
        comp = self._good()
        raw = base64.b64decode(comp["pool"])
        comp["pool"] = base64.b64encode(raw[:-3]).decode("ascii")
        with pytest.raises(CompactError):
            decode(comp)

    def test_pool_len_mismatch(self):
        comp = self._good()
        comp["pool_len"] += 1
        with pytest.raises(CompactError, match="pool_len"):
            decode(comp)

    def test_reference_outside_pool(self):
        comp = encode({"x": 1.25})
        comp["data"]["x"] = {"@f": 10_000}
        with pytest.raises(CompactError, match="outside"):
            decode(comp)

    def test_malformed_marker(self):
        comp = encode({"x": 1.25})
        comp["data"]["x"] = {"@f": 0, "extra": 1}
        with pytest.raises(CompactError, match="marker"):
            decode(comp)

    def test_pool_is_read_only(self):
        dec = decode_module(encode({"v": (1.0, 2.0, 3.0)}))
        with pytest.raises(ValueError):
            dec.pool[0] = 9.0


# ---------------------------------------------------------------------------
# piecewise sides: packing decision, dedup, frozen views


class TestSidePacking:
    def _side(self, polys, bits=None, shift=52):
        import math as m

        bits = bits if bits is not None else m.frexp(len(polys))[1] - 1
        assert 1 << bits == len(polys)
        return {"index_bits": bits, "shift": shift, "polys": polys}

    def _encode_side(self, side):
        data = {"approx": {"f": {"neg": None, "pos": side}}}
        comp = encode(data)
        return comp, comp["data"]["approx"]["f"]["pos"]

    def test_shared_prefix_side_is_packed(self):
        side = self._side([((0, 1, 2), (1.0, 2.0, 3.0)),
                           ((0, 1), (4.0, 5.0)),
                           ((0, 1, 2), (6.0, 7.0, 8.0)),
                           ((0,), (9.0,))])
        comp, node = self._encode_side(side)
        assert node["@pp"]["mode"] == "packed"
        assert _deep_equal(
            decode(comp)["approx"]["f"]["pos"], side)

    def test_zero_top_coefficient_forces_raw(self):
        # a shorter row ending in 0.0 is exactly the case padding may
        # not fold (0.0*u + c flips a signed zero); the codec must make
        # the same call as repro.batch.kernels.padded_tables
        from repro.batch.kernels import padded_tables
        from repro.libm.serialize import _piecewise_from_dict

        side = self._side([((0, 1, 2), (1.0, 2.0, 3.0)),
                           ((0, 1), (4.0, 0.0))])
        comp, node = self._encode_side(side)
        assert node["@pp"]["mode"] == "raw"
        assert padded_tables(_piecewise_from_dict(side).polys) is None
        assert _deep_equal(decode(comp)["approx"]["f"]["pos"], side)

    def test_packed_decision_agrees_with_padded_tables(self):
        # the two independent decision procedures must agree on every
        # shipped side: packed <=> padded_tables succeeds
        from repro.batch.kernels import padded_tables
        from repro.libm.serialize import _piecewise_from_dict

        for target, name in SHIPPED:
            mod = _shipped_module(target, name)
            comp = mod.COMPACT
            for fn_name, sides in comp["data"]["approx"].items():
                for side_name, node in sides.items():
                    if not (isinstance(node, dict) and "@pp" in node):
                        continue
                    legacy = decode(comp)["approx"][fn_name][side_name]
                    pp = _piecewise_from_dict(legacy)
                    packed = node["@pp"]["mode"] == "packed"
                    padded = (pp.index_bits > 0
                              and padded_tables(pp.polys) is not None)
                    assert packed == padded, (target, name, fn_name,
                                              side_name)

    def test_dedup_is_bit_exact(self):
        # 0.0 and -0.0 coefficients must NOT merge
        side = self._side([((0, 1), (1.0, 0.0)),
                           ((0, 1), (1.0, -0.0))])
        comp, node = self._encode_side(side)
        out = decode(comp)["approx"]["f"]["pos"]
        c0, c1 = out["polys"][0][1][1], out["polys"][1][1][1]
        assert struct.pack("<d", c0) != struct.pack("<d", c1)
        assert _deep_equal(out, side)

    def test_duplicate_slots_share_one_unique(self):
        row = ((0, 1, 2), (1.5, 2.5, 3.5))
        side = self._side([row, row, row, ((0, 1, 2), (4.0, 5.0, 6.0))])
        comp, node = self._encode_side(side)
        pp = node["@pp"]
        assert pp["cols"][2] == 2  # nuniq
        assert "index" in pp or "index_b64" in pp
        assert _deep_equal(decode(comp)["approx"]["f"]["pos"], side)

    def test_frozen_gather_attached_for_packed_sides(self):
        side = self._side([((0, 1, 2), (1.0, 2.0, 3.0)),
                           ((0, 1, 2), (4.0, 5.0, 6.0))])
        comp, _node = self._encode_side(side)
        dec = decode_module(comp)
        fz = dec.frozen[("f", "pos")]
        assert isinstance(fz, FrozenGather)
        assert fz.cols.shape == (3, 2)
        assert fz.cols.base is not None  # zero-copy view into the pool


# ---------------------------------------------------------------------------
# shipped modules: the real contract


class TestShippedModules:
    @pytest.mark.parametrize("target,name", SHIPPED)
    def test_lazy_data_matches_compact_decode(self, target, name):
        mod = _shipped_module(target, name)
        assert _deep_equal(mod.DATA, decode(mod.COMPACT))

    @pytest.mark.parametrize("target,name", SHIPPED)
    def test_render_round_trips(self, target, name):
        # render_compact self-verifies (AST scan + exec + bit compare);
        # re-render the shipped dict and prove the verifier stays green
        mod = _shipped_module(target, name)
        assert "COMPACT" in render_compact(mod.DATA)

    def test_compact_function_bit_identical_scalar(self):
        # stratified scalar differential: compact-loaded vs dict-loaded
        rng = np.random.default_rng(2021)
        for target, name in [("float32", "sinh"), ("float32", "exp"),
                             ("posit32", "log2")]:
            mod = _shipped_module(target, name)
            via_compact = function_from_compact(mod.COMPACT)
            via_dict = function_from_dict(mod.DATA)
            if target == "float32":
                xs = np.concatenate([
                    rng.uniform(-10, 10, 200),
                    rng.uniform(-1e-3, 1e-3, 100),
                    [0.0, -0.0, 1.0, -1.0, math.inf, -math.inf, math.nan],
                ])
            else:
                xs = np.concatenate([rng.uniform(0.01, 100, 300),
                                     [1.0, 2.0, 0.5]])
            for x in xs:
                x = float(x)
                a = via_compact.evaluate_bits(x)
                b = via_dict.evaluate_bits(x)
                assert a == b, (target, name, x)

    def test_compact_function_bit_identical_batch(self):
        from repro.batch.engine import BatchFunction

        rng = np.random.default_rng(7)
        for target, name in [("float32", "cosh"), ("posit32", "exp10")]:
            mod = _shipped_module(target, name)
            bf_c = BatchFunction(function_from_compact(mod.COMPACT))
            bf_d = BatchFunction(function_from_dict(mod.DATA))
            if target == "float32":
                xs = rng.uniform(-80, 80, 50_000)
                xs[::97] = -0.0
                xs[1::97] = 0.0
                xs[2::997] = np.nan
            else:
                xs = rng.uniform(1e-6, 1e6, 50_000)
            got = bf_c.evaluate_bits_many(xs)
            want = bf_d.evaluate_bits_many(xs)
            assert (got == want).all(), (target, name)

    def test_frozen_views_prime_the_batch_caches(self):
        from repro.batch.reduce import table

        mod = _shipped_module("float32", "sinh")
        fn = function_from_compact(mod.COMPACT)
        dec = decode_module(mod.COMPACT)
        rr = fn.spec.rr
        for attr, (off, n) in dec.rr_vectors.items():
            arr = table(rr, attr)
            assert not arr.flags.writeable  # primed view, not a copy
            assert np.array_equal(arr, dec.pool[off:off + n])
        assert dec.frozen  # sinh carries packed sides
        for (fn_name, side_name), fz in dec.frozen.items():
            af = fn.approx[fn_name]
            pp = af.neg if side_name == "neg" else af.pos
            got = pp.__dict__["_frozen"]
            assert isinstance(got, FrozenGather)
            assert got.cols.tobytes() == fz.cols.tobytes()

    @pytest.mark.parametrize("target,name", SHIPPED)
    def test_certificates_still_verify(self, target, name):
        # certify smoke on every shipped cert against the compact DATA
        import json
        from pathlib import Path

        from repro.analysis.certify.verify import verify_certificate

        mod = _shipped_module(target, name)
        cert_path = Path(mod.__file__).with_suffix("").with_suffix("") \
            .parent / f"{name}.cert.json"
        cert = json.loads(cert_path.read_text())
        findings = verify_certificate(cert, mod.DATA, str(cert_path))
        assert findings == []


# ---------------------------------------------------------------------------
# tablecheck TC210


class TestTC210:
    def test_shipped_modules_pass(self):
        from repro.analysis.tablecheck import run_tablecheck

        n, findings = run_tablecheck()
        assert n == 18
        assert findings == []

    def test_torn_pool_is_flagged(self, tmp_path):
        from repro.analysis.tablecheck import (_Checker, _check_compact,
                                               load_module_from_path)

        mod = _shipped_module("float32", "exp")
        src = render_compact(mod.DATA)
        # drop one full pool line: still valid python and valid base64,
        # but the pool no longer holds pool_len doubles — a torn blob
        lines = src.splitlines(keepends=True)
        pool_lines = [i for i, l in enumerate(lines)
                      if l.startswith('    "')]
        del lines[pool_lines[len(pool_lines) // 2]]
        p = tmp_path / "exp.py"
        p.write_text("".join(lines))
        tampered = load_module_from_path(p)
        c = _Checker(str(p))
        _check_compact(c, tampered)
        assert any(f.rule == "TC210" for f in c.findings)

    def test_stale_hybrid_module_is_flagged(self, tmp_path):
        from repro.analysis.tablecheck import (_Checker, _check_compact,
                                               load_module_from_path)

        mod = _shipped_module("float32", "ln")
        src = render_compact(mod.DATA)
        # a literal DATA left beside COMPACT that disagrees with it
        src += "\nDATA = {'stale': True}\n"
        p = tmp_path / "ln.py"
        p.write_text(src)
        c = _Checker(str(p))
        _check_compact(c, load_module_from_path(p))
        assert any(f.rule == "TC210" for f in c.findings)


# ---------------------------------------------------------------------------
# kernel equivalence: specialized / merged vs generic


@pytest.mark.batch
class TestKernelEquivalence:
    def _lanes(self, rng, pp):
        # raw double bit patterns that exercise every sub-domain slot,
        # plus the sign/zero/NaN hazards
        r = rng.uniform(-2.0, 2.0, 4096)
        r[::31] = 0.0
        r[1::31] = -0.0
        r[2::311] = np.nan
        return r

    def test_specialized_matches_generic_on_shipped_sides(self):
        from repro.batch.kernels import gathered_kernel

        rng = np.random.default_rng(11)
        checked = 0
        for target, name in SHIPPED:
            dec = decode_module(_shipped_module(target, name).COMPACT)
            for key, fz in dec.frozen.items():
                r = self._lanes(rng, None)
                fast = gathered_kernel(fz.shift, fz.index_bits, fz.start,
                                       fz.stride, list(fz.cols), fz.index,
                                       specialize=True)
                slow = gathered_kernel(fz.shift, fz.index_bits, fz.start,
                                       fz.stride, list(fz.cols), fz.index,
                                       specialize=False)
                a, b = fast(r), slow(r)
                assert a.tobytes() == b.tobytes(), (target, name, key)
                checked += 1
        assert checked >= 10

    def test_merged_matches_sign_dispatch_on_shipped_tables(self):
        from repro.batch.kernels import (compile_piecewise, merged_kernel,
                                         merged_sign_tables)
        from repro.libm.runtime import load_function

        rng = np.random.default_rng(13)
        merged_seen = 0
        for target, name in [("float32", "sinh"), ("float32", "cosh"),
                             ("float32", "exp"), ("posit32", "exp2")]:
            fn = load_function(name, target)
            for fn_name in fn.spec.rr.fn_names:
                af = fn.approx[fn_name]
                m = merged_sign_tables(af)
                if m is None:
                    continue
                merged_seen += 1
                fast = merged_kernel(*m)
                neg = compile_piecewise(af.neg) if af.neg else None
                pos = compile_piecewise(af.pos) if af.pos else None
                r = self._lanes(rng, None)
                want = np.empty_like(r)
                mask = r < 0.0  # -0.0 and NaN land on pos, like scalar
                want[mask] = neg(r[mask])
                want[~mask] = pos(r[~mask])
                assert fast(r).tobytes() == want.tobytes(), (target, name,
                                                             fn_name)
        assert merged_seen >= 2
