"""Tests for the shipped float32 library (frozen tables + public API)."""

import math
import random

import pytest

from repro.core.sampling import boundary_values, sample_values
from repro.fp.float32 import f32_round, f32_to_bits
from repro.fp.formats import FLOAT32
from repro.libm import float32 as rl
from repro.libm.runtime import (FLOAT32_FUNCTIONS, available,
                                load_function as load)
from repro.oracle import default_oracle as orc


def _have_data() -> bool:
    return set(available("float32")) == set(FLOAT32_FUNCTIONS)


pytestmark = pytest.mark.skipif(
    not _have_data(), reason="float32 tables not generated")


class TestLoader:
    def test_available_lists_all_ten(self):
        assert set(available("float32")) == set(FLOAT32_FUNCTIONS)

    def test_load_caches(self):
        assert load("exp", "float32") is load("exp", "float32")

    def test_unknown_target(self):
        with pytest.raises(ValueError):
            load("exp", "float128")

    def test_loading_is_oracle_free(self):
        g = load("ln", "float32")
        # evaluating must not touch the LP solver or mpmath oracle:
        # frozen tables only.  (Indirect check: it is fast and pure.)
        assert g.evaluate(2.0) == f32_round(math.log(2.0))


class TestKnownValues:
    def test_exact_values(self):
        assert rl.log2(8.0) == 3.0
        assert rl.log10(1000.0) == 3.0
        assert rl.ln(1.0) == 0.0
        assert rl.exp2(10.0) == 1024.0
        assert rl.exp(0.0) == 1.0
        assert rl.sinpi(0.5) == 1.0
        assert rl.sinpi(1.0) == 0.0
        assert rl.cospi(1.0) == -1.0
        assert rl.cosh(0.0) == 1.0

    def test_specials(self):
        assert rl.ln(0.0) == -math.inf
        assert math.isnan(rl.ln(-5.0))
        assert rl.exp(120.0) == math.inf
        assert rl.exp(-120.0) == 0.0
        assert rl.sinh(100.0) == math.inf
        assert rl.sinh(-100.0) == -math.inf
        assert rl.cosh(-100.0) == math.inf
        assert math.isnan(rl.sinpi(math.inf))
        assert rl.cospi(2.0 ** 25) == 1.0

    def test_input_rounded_to_float32_first(self):
        # 1/3 is not a float32 value; the API rounds it first
        assert rl.cospi(1 / 3) == rl.cospi(f32_round(1 / 3))

    def test_bits_api(self):
        assert rl.log2_bits(8.0) == f32_to_bits(3.0)
        assert rl.exp_bits(1000.0) == 0x7F800000


@pytest.mark.parametrize("fn_name", FLOAT32_FUNCTIONS)
def test_sampled_against_oracle(fn_name):
    """Fresh random sample (unseen seed) checked against the oracle."""
    from repro.rangereduction.domains import sampling_domain
    from repro.rangereduction import reduction_for

    rr = reduction_for(fn_name, FLOAT32)
    lo, hi = sampling_domain(fn_name, FLOAT32, rr)
    xs = sample_values(FLOAT32, 400, random.Random(123456), lo, hi)
    g = load(fn_name, "float32")
    wrong = 0
    for x in xs:
        s = rr.special(x)
        want = (f32_to_bits(s) if s is not None
                else orc.round_to_bits(fn_name, x, FLOAT32))
        if g.evaluate_bits(x) != want:
            wrong += 1
    assert wrong == 0, f"{fn_name}: {wrong}/{len(xs)} wrong"


@pytest.mark.parametrize("fn_name", ["exp", "log2", "sinpi"])
def test_boundary_neighbourhoods(fn_name):
    from repro.rangereduction.domains import boundary_centers, sampling_domain
    from repro.rangereduction import reduction_for

    rr = reduction_for(fn_name, FLOAT32)
    lo, hi = sampling_domain(fn_name, FLOAT32, rr)
    xs = boundary_values(FLOAT32, boundary_centers(fn_name, rr, lo, hi), 24)
    g = load(fn_name, "float32")
    for x in xs:
        s = rr.special(x)
        want = (f32_to_bits(s) if s is not None
                else orc.round_to_bits(fn_name, x, FLOAT32))
        assert g.evaluate_bits(x) == want, x


class TestSymmetries:
    def test_sinpi_odd(self):
        for x in (0.1, 0.75, 12.265625, 1e-20):
            a, b = rl.sinpi(x), rl.sinpi(-x)
            assert a == -b or (a == 0.0 and b == 0.0)

    def test_cospi_even(self):
        for x in (0.1, 0.75, 12.265625, 1e-20):
            assert rl.cospi(x) == rl.cospi(-x)

    def test_sinh_odd_cosh_even(self):
        for x in (0.5, 3.25, 80.0):
            assert rl.sinh(x) == -rl.sinh(-x)
            assert rl.cosh(x) == rl.cosh(-x)

    def test_exp_log_near_inverse(self):
        for x in (0.5, 1.0, 7.25):
            y = rl.ln(rl.exp(x))
            assert abs(y - x) <= 4 * math.ulp(x) + 1e-6
