"""Tests for the posit codec (repro.posit.format)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.fp.bits import next_double, prev_double
from repro.posit.format import (POSIT8, POSIT16, POSIT32, PositFormat,
                                posit_rounding_interval)


class TestParameters:
    def test_posit32(self):
        assert POSIT32.useed == 16
        assert POSIT32.maxpos == Fraction(2) ** 120
        assert POSIT32.minpos == Fraction(1, 2 ** 120)
        assert POSIT32.nar_bits == 0x80000000

    def test_posit16(self):
        assert POSIT16.useed == 4
        assert POSIT16.maxpos == Fraction(2) ** 28

    def test_posit8(self):
        assert POSIT8.useed == 2
        assert POSIT8.maxpos == Fraction(2) ** 6

    def test_invalid(self):
        with pytest.raises(ValueError):
            PositFormat(2, 0)


class TestDecode:
    def test_zero_and_nar(self):
        assert POSIT32.to_fraction(0) == 0
        assert math.isnan(POSIT32.to_double(POSIT32.nar_bits))
        with pytest.raises(ValueError):
            POSIT32.to_fraction(POSIT32.nar_bits)

    def test_one(self):
        assert POSIT32.to_fraction(0x40000000) == 1
        assert POSIT16.to_fraction(0x4000) == 1
        assert POSIT8.to_fraction(0x40) == 1

    def test_maxpos_minpos(self):
        assert POSIT32.to_fraction(POSIT32.maxpos_bits) == POSIT32.maxpos
        assert POSIT32.to_fraction(1) == POSIT32.minpos

    def test_negative_two_complement(self):
        one = 0x40000000
        minus_one = (-one) & POSIT32.mask
        assert POSIT32.to_fraction(minus_one) == -1

    def test_posit8_known_values(self):
        # posit8 es=0: 0x60 = 2, 0x50 = 1.5, 0x48 = 1.25
        assert POSIT8.to_fraction(0x60) == 2
        assert POSIT8.to_fraction(0x50) == Fraction(3, 2)

    def test_exponent_padding(self):
        # posit32 pattern with regime run leaving fewer than es bits:
        # 0b0111...10 style extremes decode without error
        for bits in (0x7FFFFFFE, 0x7FFFFFFF, 0x00000003):
            v = POSIT32.to_fraction(bits)
            assert v > 0


class TestEncode:
    def test_exhaustive_round_trip_posit8(self):
        for bits in POSIT8.enumerate_all():
            if POSIT8.is_zero(bits):
                continue
            v = POSIT8.to_fraction(bits)
            assert POSIT8.from_fraction(v) == bits

    def test_exhaustive_round_trip_posit16(self):
        for bits in POSIT16.enumerate_all():
            if POSIT16.is_zero(bits):
                continue
            assert POSIT16.from_fraction(POSIT16.to_fraction(bits)) == bits

    def test_saturation(self):
        assert POSIT32.from_fraction(Fraction(2) ** 500) == POSIT32.maxpos_bits
        assert POSIT32.from_fraction(Fraction(1, 2 ** 500)) == POSIT32.minpos_bits
        assert POSIT32.from_fraction(-(Fraction(2) ** 500)) == \
            (-POSIT32.maxpos_bits) & POSIT32.mask

    def test_nonfinite_to_nar(self):
        assert POSIT32.from_double(math.inf) == POSIT32.nar_bits
        assert POSIT32.from_double(math.nan) == POSIT32.nar_bits

    def test_tie_to_even_pattern(self):
        # exact midpoint between two adjacent posit values -> even pattern
        a = POSIT8.to_fraction(0x48)
        b = POSIT8.to_fraction(0x49)
        mid = (a + b) / 2
        assert POSIT8.from_fraction(mid) == 0x48  # 0x48 is even

    @given(st.integers(min_value=-(2 ** 31 - 1), max_value=2 ** 31 - 1))
    @settings(max_examples=300)
    def test_posit32_round_trip_random(self, n):
        bits = POSIT32.from_ordinal(n)
        if POSIT32.is_zero(bits):
            return
        v = POSIT32.to_fraction(bits)
        assert POSIT32.from_fraction(v) == bits
        # every posit32 value is exactly representable in double
        assert Fraction(float(v)) == v


class TestOrdering:
    def test_value_order_is_ordinal_order_posit8(self):
        vals = [POSIT8.to_fraction(b) for b in POSIT8.enumerate_all()]
        assert vals == sorted(vals)

    def test_next_up_down(self):
        one = POSIT32.from_fraction(Fraction(1))
        up = POSIT32.next_up(one)
        assert POSIT32.to_fraction(up) - 1 == Fraction(1, 2 ** 27)
        assert POSIT32.next_down(up) == one

    def test_saturating_neighbours(self):
        assert POSIT32.next_up(POSIT32.maxpos_bits) == POSIT32.maxpos_bits
        neg_max = (-POSIT32.maxpos_bits) & POSIT32.mask
        assert POSIT32.next_down(neg_max) == neg_max


class TestPositRoundingInterval:
    def test_exhaustive_posit8(self):
        for bits in POSIT8.enumerate_all():
            iv = posit_rounding_interval(POSIT8, bits)
            val = POSIT8.to_double(bits)
            assert POSIT8.from_double(val) == bits
            # infinite endpoints mean "saturates"; probe a huge finite double
            lo = -1e300 if iv.lo == -math.inf else iv.lo
            hi = 1e300 if iv.hi == math.inf else iv.hi
            assert POSIT8.from_double(lo) == bits
            assert POSIT8.from_double(hi) == bits
            if iv.lo not in (0.0, -math.inf):
                assert POSIT8.from_double(prev_double(iv.lo)) != bits
            if iv.hi not in (0.0, math.inf):
                assert POSIT8.from_double(next_double(iv.hi)) != bits

    def test_zero_is_exact_point(self):
        iv = posit_rounding_interval(POSIT32, 0)
        assert iv.lo == 0.0 == iv.hi

    def test_maxpos_saturates_above(self):
        iv = posit_rounding_interval(POSIT32, POSIT32.maxpos_bits)
        assert iv.hi == math.inf
        assert 1e308 in iv

    def test_minpos_extends_to_tiniest_double(self):
        iv = posit_rounding_interval(POSIT32, POSIT32.minpos_bits)
        assert iv.lo == 5e-324

    def test_nar_rejected(self):
        with pytest.raises(ValueError):
            posit_rounding_interval(POSIT32, POSIT32.nar_bits)
