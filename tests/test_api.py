"""The ``repro.api`` facade and the entry-point consistency contract.

The facade is the one import user code needs (README "Public API"):
``api.load`` returns a :class:`repro.api.Library` exposing the scalar
and batch evaluators, ``api.functions``/``api.targets`` enumerate what
is shipped, ``Library.instrumented()`` opts into runtime metrics.  The
legacy entry points stay alive behind deprecation warnings.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import api
from repro.core.generator import GeneratedFunction
from repro.libm import runtime
from repro.obs import metrics


class TestFacade:
    def test_load_returns_library(self):
        lib = api.load("exp", target="float32")
        assert isinstance(lib, api.Library)
        assert lib.name == "exp" and lib.target == "float32"
        assert isinstance(lib.fn, GeneratedFunction)

    def test_scalar_and_call(self):
        lib = api.load("exp", target="float32")
        assert lib.evaluate(0.0) == 1.0
        assert lib(0.0) == 1.0                     # __call__ alias
        assert lib.evaluate_bits(0.0) == lib.fn.evaluate_bits(0.0)

    def test_batch_matches_scalar(self):
        lib = api.load("log2", target="float32")
        xs = np.array([0.5, 1.0, 2.0, 10.0])
        vals = lib.evaluate_batch(xs)
        bits = lib.evaluate_bits_batch(xs)
        for x, v, b in zip(xs.tolist(), vals.tolist(), bits.tolist()):
            assert v == lib.evaluate(x)
            assert b == lib.evaluate_bits(x)

    def test_batch_accepts_lists(self):
        lib = api.load("exp", target="float32")
        assert lib.evaluate_batch([0.0, 1.0])[0] == 1.0

    def test_functions_and_targets(self):
        assert api.functions("float32") == runtime.FLOAT32_FUNCTIONS
        assert api.functions("posit32") == runtime.POSIT32_FUNCTIONS
        assert "sinpi" not in api.functions("posit32")
        assert {"float32", "posit32"} <= set(api.targets())

    def test_unknown_function_raises(self):
        with pytest.raises(LookupError):
            api.load("tanh", target="float32")
        with pytest.raises(ValueError):
            api.load("exp", target="float128")

    def test_instrumented(self):
        lib = api.load("exp", target="float32").instrumented()
        assert isinstance(lib, api.Library)
        before = metrics.counter("libm.exp.calls").value
        lib.evaluate(1.0)
        assert metrics.counter("libm.exp.calls").value == before + 1
        # the shared cached function is untouched
        assert api.load("exp", target="float32").fn is not lib.fn

    def test_stats_exposed(self):
        lib = api.load("exp", target="float32")
        assert lib.stats is lib.fn.stats


class TestDeprecatedEntryPoints:
    def test_runtime_load_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="repro.api.load"):
            fn = runtime.load("exp", "float32")
        assert fn is runtime.load_function("exp", "float32")

    def test_load_function_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            runtime.load_function("exp", "float32")

    def test_checkpoint_dir_alias_warns(self, tmp_path):
        from repro.fp.formats import FLOAT8
        from repro.libm.genlib import generate_library

        with pytest.warns(DeprecationWarning, match="checkpoint="):
            generate_library(["exp"], FLOAT8, tmp_path / "out",
                             quick=True, log=lambda *a: None,
                             checkpoint_dir=tmp_path / "ck")
        assert (tmp_path / "out" / "exp.py").exists()


class TestReload:
    def test_reload_picks_up_fresh_data(self, monkeypatch):
        fn = runtime.load_function("exp", "float32")
        # a stale cache entry keeps returning the same object ...
        assert runtime.load_function("exp", "float32") is fn
        # ... until reload purges both module and function caches
        fresh = runtime.reload_function("exp", "float32")
        assert fresh is not fn
        assert fresh.evaluate_bits(1.0) == fn.evaluate_bits(1.0)
        assert runtime.load_function("exp", "float32") is fresh

    def test_api_reload(self):
        a = api.load("exp", target="float32")
        b = api.reload("exp", target="float32")
        assert b.fn is not a.fn
        assert b.evaluate_bits(2.5) == a.evaluate_bits(2.5)
