"""Proof-carrying tables: the exact-rational verifier and its certificates.

Four layers, mirroring the trusted-checker boundary in DESIGN.md:

* the checker's re-derived primitives (`round_frac_to_double`,
  `emulate_poly`) differentially against the implementations they must
  agree with but may not import at check time;
* the LP vertex witness round trip (solve -> encode -> re-check) and its
  tamper sensitivity;
* the certificate schema and the shipped certificates themselves (a
  quick per-format smoke stays tier-1; the full 18-module sweep is
  behind the ``certify`` marker);
* the three ISSUE-mandated mutation tests: each corruption of a shipped
  table/certificate pair must be caught with the *precise* CE code.
"""

from __future__ import annotations

import copy
import importlib
import importlib.util
import json
import math
import random
from fractions import Fraction
from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.certify import runner
from repro.analysis.certify.emit import (_witness_dict,
                                         certificate_from_capture)
from repro.analysis.certify.format import (FORMAT_VERSION, certificate_path,
                                           frac_from_str, frac_to_str,
                                           hex_to_float, load_certificate,
                                           schema_errors, table_key)
from repro.analysis.certify.verify import (CODES, _check_witness, _Reporter,
                                           emulate_poly,
                                           round_frac_to_double,
                                           verify_certificate)
from repro.core import FunctionSpec, all_values, generate
from repro.core.polynomials import Polynomial
from repro.fp.bits import double_to_bits, fraction_to_double
from repro.fp.formats import FLOAT8
from repro.libm.serialize import function_to_dict
from repro.lp.solver import LinearConstraint, certificate_witness
from repro.rangereduction import reduction_for


def _same_double(a: float, b: float) -> bool:
    return double_to_bits(a) == double_to_bits(b)


# ---------------------------------------------------------------------------
# round_frac_to_double: the checker's independent RN64
# ---------------------------------------------------------------------------

class TestRoundFracToDouble:
    def test_exact_values_round_trip(self):
        for v in (0.0, 1.0, -1.0, 0.5, 2.0 ** -1022, 2.0 ** 1023,
                  5e-324, -5e-324, 1.5, math.pi.hex() and math.pi):
            assert _same_double(round_frac_to_double(Fraction(v)), v)

    def test_ties_to_even_at_2_53(self):
        # 2**53 + 1 is a midpoint; even significand wins
        assert round_frac_to_double(Fraction(2 ** 53 + 1)) == float(2 ** 53)
        assert round_frac_to_double(Fraction(2 ** 53 + 3)) == float(2 ** 53 + 4)
        assert round_frac_to_double(Fraction(-(2 ** 53 + 1))) == -float(2 ** 53)

    def test_subnormal_boundary(self):
        tiny = Fraction(1, 2 ** 1074)          # smallest subnormal
        assert round_frac_to_double(tiny) == 5e-324
        # half of it is a midpoint against zero: even (zero) wins
        assert round_frac_to_double(tiny / 2) == 0.0
        assert round_frac_to_double(3 * tiny / 2) == 2 * 5e-324
        assert round_frac_to_double(-tiny / 2) == 0.0

    def test_overflow_midpoint(self):
        mid = Fraction(2 ** 1024 - 2 ** 970)   # IEEE overflow threshold
        below = mid - 1
        assert round_frac_to_double(below) == math.ldexp(2 ** 53 - 1, 971)
        assert round_frac_to_double(mid) == math.inf
        assert round_frac_to_double(-mid) == -math.inf

    def test_differential_against_fp_bits(self):
        rng = random.Random(20210621)
        for _ in range(400):
            num = rng.randint(-10 ** 12, 10 ** 12)
            den = rng.randint(1, 10 ** 12)
            q = Fraction(num, den) * Fraction(2) ** rng.randint(-80, 80)
            assert _same_double(round_frac_to_double(q),
                                fraction_to_double(q))

    def test_differential_near_doubles(self):
        # perturbed doubles land between representables: the hard case
        rng = random.Random(7)
        for _ in range(300):
            x = math.ldexp(rng.random() + 0.5,
                           rng.randint(-1030, 1020))
            q = Fraction(x) * (1 + Fraction(rng.randint(-3, 3), 2 ** 55))
            assert _same_double(round_frac_to_double(q),
                                fraction_to_double(q))


# ---------------------------------------------------------------------------
# emulate_poly: the checker's independent Horner order
# ---------------------------------------------------------------------------

class TestEmulatePoly:
    @staticmethod
    def _random_poly(rng, regular: bool) -> tuple[tuple[int, ...],
                                                  tuple[float, ...]]:
        n = rng.randint(1, 6)
        if regular:
            start = rng.randint(0, 2)
            stride = rng.randint(1, 3)
            exps = tuple(start + stride * i for i in range(n))
        else:
            exps = (0, 1, 3, 4, 7)[:max(n, 3)]
        coeffs = tuple(rng.uniform(-2.0, 2.0) for _ in exps)
        return exps, coeffs

    @pytest.mark.parametrize("regular", [True, False])
    def test_differential_against_runtime(self, regular):
        rng = random.Random(42 + regular)
        for _ in range(200):
            exps, coeffs = self._random_poly(rng, regular)
            p = Polynomial(exps, coeffs)
            r = rng.uniform(-1.0, 1.0) * 2.0 ** rng.randint(-8, 2)
            assert _same_double(emulate_poly(exps, coeffs, r), p(r))

    def test_shipped_slot_is_bit_identical(self):
        mod = importlib.import_module("repro.libm.data_float32.exp2")
        pp = mod.DATA["approx"]["exp2"]["pos"]
        exps, coeffs = pp["polys"][0]
        p = Polynomial(tuple(exps), tuple(coeffs))
        for i in range(50):
            r = math.ldexp(1 + i / 50, -9)
            assert _same_double(emulate_poly(exps, coeffs, r), p(r))

    def test_overflow_returns_nonfinite(self):
        v = emulate_poly((0, 1), (1e308, 1e308), 10.0)
        assert not math.isfinite(v)


# ---------------------------------------------------------------------------
# LP vertex witness: round trip and tamper sensitivity
# ---------------------------------------------------------------------------

def _toy_witness():
    cons = [LinearConstraint(0.25, 0.20, 0.30),
            LinearConstraint(0.50, 0.45, 0.60),
            LinearConstraint(0.75, 0.70, 0.85)]
    exps = (0, 1)
    wit = certificate_witness(cons, exps)
    assert wit is not None
    points = [{"r": c.r.hex(), "lo": frac_to_str(Fraction(c.lo)),
               "hi": frac_to_str(Fraction(c.hi))} for c in cons]
    return _witness_dict(wit, [0, 1, 2]), points, exps


def _witness_findings(wd, points, exps):
    rep = _Reporter("toy.cert.json")
    _check_witness(rep, "w", wd, points, exps)
    return [f.rule for f in rep.findings]


class TestWitness:
    def test_round_trip_verifies(self):
        wd, points, exps = _toy_witness()
        assert Fraction(0) <= frac_from_str(wd["delta"]) <= Fraction(1)
        assert _witness_findings(wd, points, exps) == []

    def test_tampered_delta_is_caught(self):
        wd, points, exps = _toy_witness()
        delta = frac_from_str(wd["delta"])
        wd["delta"] = frac_to_str(delta + Fraction(1, 100))
        rules = _witness_findings(wd, points, exps)
        assert rules and set(rules) <= {"CE306", "CE307"}

    def test_widened_active_interval_breaks_strong_duality(self):
        wd, points, exps = _toy_witness()
        # pick a row with a nonzero lo multiplier: its lo row is active
        j = next(i for i, y in enumerate(wd["duals_lo"])
                 if frac_from_str(y) > 0)
        lo = frac_from_str(points[j]["lo"])
        hi = frac_from_str(points[j]["hi"])
        delta = frac_from_str(wd["delta"])
        eps = (hi - lo) * (1 - delta) / 4
        points[j]["lo"] = frac_to_str(lo - eps)
        assert _witness_findings(wd, points, exps) == ["CE307"]

    def test_negative_dual_is_caught(self):
        wd, points, exps = _toy_witness()
        wd["duals_lo"][0] = frac_to_str(
            -frac_from_str(wd["duals_lo"][0]) - 1)
        assert "CE307" in _witness_findings(wd, points, exps)


# ---------------------------------------------------------------------------
# schema
# ---------------------------------------------------------------------------

def _shipped(modname: str):
    mod = importlib.import_module(modname)
    data = copy.deepcopy(mod.DATA)
    cpath = certificate_path(mod.__file__)
    return data, load_certificate(cpath), str(cpath)


class TestSchema:
    def test_shipped_certificate_is_well_formed(self):
        _, cert, _ = _shipped("repro.libm.data_float32.exp2")
        assert schema_errors(cert) == []

    def test_unknown_version_is_ce302(self):
        data, cert, path = _shipped("repro.libm.data_float32.exp2")
        cert["format_version"] = FORMAT_VERSION + 1
        findings = verify_certificate(cert, data, path)
        assert {f.rule for f in findings} == {"CE302"}

    def test_wrong_key_set_is_ce302(self):
        data, cert, path = _shipped("repro.libm.data_float32.exp2")
        cert["extra"] = 1
        assert {f.rule for f in verify_certificate(cert, data, path)} \
            == {"CE302"}

    def test_bad_hex_double_is_ce302(self):
        data, cert, path = _shipped("repro.libm.data_float32.exp2")
        table = next(iter(cert["tables"].values()))
        table["slots"][0]["coefficients"][0] = "not-a-hex"
        assert {f.rule for f in verify_certificate(cert, data, path)} \
            == {"CE302"}

    def test_codes_cover_the_documented_range(self):
        assert sorted(CODES) == [f"CE30{i}" for i in range(1, 9)]


# ---------------------------------------------------------------------------
# shipped certificates
# ---------------------------------------------------------------------------

class TestShippedCertificates:
    def test_quick_per_format_smoke(self):
        # one module per shipped format: pure rational arithmetic, fast
        n, findings = runner.check_all(only=("exp2",))
        assert findings == []
        assert n == 2  # float32 + posit32

    @pytest.mark.certify
    def test_full_sweep_all_modules(self):
        n, findings = runner.check_all()
        assert findings == []
        assert n == 18

    @pytest.mark.certify
    def test_post_hoc_emission_round_trip(self, tmp_path):
        # oracle-backed: re-emit one module at reduced sweep and re-check
        from repro.analysis.certify.emit import certificate_for_data

        data, _, _ = _shipped("repro.libm.data_float32.log2")
        cert, stats = certificate_for_data(data, sweep=4000)
        assert schema_errors(cert) == []
        assert verify_certificate(cert, data, "log2.cert.json") == []
        assert stats.certified >= 1 and stats.points >= stats.certified


# ---------------------------------------------------------------------------
# the three mutation tests (ISSUE acceptance criteria)
# ---------------------------------------------------------------------------

class TestMutations:
    def test_flipped_coefficient_bit_is_ce303(self):
        from repro.fp.bits import bits_to_double

        data, cert, path = _shipped("repro.libm.data_float32.exp2")
        pp = data["approx"]["exp2"]["pos"]
        exps, coeffs = pp["polys"][0]
        coeffs = list(coeffs)
        coeffs[0] = bits_to_double(double_to_bits(coeffs[0]) ^ 1)
        pp["polys"][0] = (exps, tuple(coeffs))
        findings = verify_certificate(cert, data, path)
        assert {f.rule for f in findings} == {"CE303"}
        assert any("coefficient [0]" in f.message for f in findings)

    def test_dropped_subdomain_is_ce308(self):
        # pick any shipped table with more than one sub-domain slot
        for modname, _, _ in runner.iter_data_modules():
            data, cert, path = _shipped(modname)
            for key, table in cert["tables"].items():
                if len(table["slots"]) > 1:
                    dropped = table["slots"].pop()
                    findings = verify_certificate(cert, data, path)
                    assert {f.rule for f in findings} == {"CE308"}
                    assert any(f"sub-domain {dropped['index']}" in f.message
                               for f in findings)
                    return
        pytest.fail("no shipped table with more than one sub-domain")

    def test_widened_active_interval_is_ce307(self):
        # scan shipped certificates for a certified slot whose margin is
        # strictly below the cap and whose witness uses a lo multiplier:
        # complementary slackness makes that lo row active, so widening
        # the interval must break strong duality (CE307) while leaving
        # containment (CE305) and primal feasibility (CE306) intact
        for modname, _, _ in runner.iter_data_modules():
            data, cert, path = _shipped(modname)
            for table in cert["tables"].values():
                for slot in table["slots"]:
                    if slot["status"] != "certified":
                        continue
                    wit = slot["witness"]
                    delta = frac_from_str(wit["delta"])
                    if not delta < 1:
                        continue
                    j = next((i for i, y in enumerate(wit["duals_lo"])
                              if frac_from_str(y) > 0), None)
                    if j is None:
                        continue
                    pt = slot["points"][wit["rows"][j]]
                    lo = frac_from_str(pt["lo"])
                    hi = frac_from_str(pt["hi"])
                    eps = (hi - lo) * (1 - delta) / 4
                    pt["lo"] = frac_to_str(lo - eps)
                    findings = verify_certificate(cert, data, path)
                    assert {f.rule for f in findings} == {"CE307"}, \
                        f"{modname}: {[f.render() for f in findings]}"
                    assert any("dual" in f.message for f in findings)
                    return
        pytest.fail("no certified slot with delta < 1 and a lo multiplier")


# ---------------------------------------------------------------------------
# capture-based emission from a live generation run (FLOAT8: cheap)
# ---------------------------------------------------------------------------

class TestCaptureEmission:
    def test_generate_capture_certifies_cleanly(self):
        rr = reduction_for("exp2", FLOAT8)
        spec = FunctionSpec("exp2", FLOAT8, rr)
        capture: dict = {}
        fn = generate(spec, list(all_values(FLOAT8)), capture=capture)
        assert capture, "generation captured no LP-pinning samples"
        data = function_to_dict(fn)
        cert, stats = certificate_from_capture(data, capture)
        assert schema_errors(cert) == []
        assert verify_certificate(cert, data, "float8_exp2.cert.json") == []
        assert stats.certified >= 1
        # capture keys carry the "<fn>:<side>" labels of real tables
        assert all(lbl.rsplit(":", 1)[1] in ("neg", "pos")
                   for lbl, _ in capture)

    def test_render_certificate_prescreens_tampered_data(self):
        from repro.libm.serialize import render_certificate

        rr = reduction_for("exp2", FLOAT8)
        spec = FunctionSpec("exp2", FLOAT8, rr)
        capture: dict = {}
        fn = generate(spec, list(all_values(FLOAT8)), capture=capture)
        data = function_to_dict(fn)
        text, stats = render_certificate(data, capture)
        assert json.loads(text)["format_version"] == FORMAT_VERSION
        assert stats.certified >= 1
        # a table corrupted before freezing cannot pick up a valid proof:
        # the pre-screen drops every captured point the broken polynomial
        # misses, so damaged slots degrade to unconstrained instead of
        # shipping a certificate the checker would reject
        bad = copy.deepcopy(data)
        for sides in bad["approx"].values():
            for side in ("neg", "pos"):
                pp = sides.get(side)
                if not (pp and pp["polys"]):
                    continue
                # shift every polynomial by a constant far outside any
                # float rounding interval
                pp["polys"] = [
                    (tuple(exps),
                     tuple(c + 64.0 if e == min(exps) else c
                           for e, c in zip(exps, coeffs)))
                    for exps, coeffs in pp["polys"]]
        text2, stats2 = render_certificate(bad, capture)
        assert stats2.dropped_points > 0
        assert stats2.certified < stats.certified
        cert2 = json.loads(text2)
        assert verify_certificate(cert2, bad, "bad") == []


# ---------------------------------------------------------------------------
# CLI and CI gate
# ---------------------------------------------------------------------------

class TestCertifyCLI:
    def test_smoke_exit_zero(self, capsys):
        assert repro_main(["certify", "--only", "exp2"]) == 0
        out = capsys.readouterr().out
        assert "certify: clean (2 data modules checked" in out

    def test_json_format(self, capsys):
        assert repro_main(["certify", "--only", "exp2",
                           "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["findings"] == []
        assert report["data_modules_checked"] == 2

    def test_emit_and_check_are_exclusive(self, capsys):
        assert repro_main(["certify", "--emit", "--check"]) == 2

    def test_missing_certificate_is_ce301(self, tmp_path, capsys):
        src = Path(importlib.import_module(
            "repro.libm.data_float32.exp2").__file__)
        orphan = tmp_path / "orphanmod.py"
        orphan.write_text(src.read_text())
        rc = repro_main(["certify", "--table", str(orphan),
                         "--only", "orphanmod", "--format", "json"])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in report["findings"]] == ["CE301"]
        assert report["data_modules_checked"] == 1

    def test_check_findings_exit_one(self, tmp_path, capsys):
        # a stale certificate next to a modified module must fail
        src = Path(importlib.import_module(
            "repro.libm.data_float32.exp2").__file__)
        mod = tmp_path / "stalemod.py"
        mod.write_text(src.read_text().replace(
            "'function': 'exp2'", "'function': 'exp2x'", 1))
        cert = json.loads(certificate_path(src).read_text())
        (tmp_path / "stalemod.cert.json").write_text(json.dumps(cert))
        rc = repro_main(["certify", "--table", str(mod),
                         "--only", "stalemod", "--format", "json"])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert any(f["rule"] == "CE303" for f in report["findings"])

    @pytest.mark.certify
    def test_tools_run_certify_gate(self):
        spec = importlib.util.spec_from_file_location(
            "run_certify_gate",
            Path(__file__).parent.parent / "tools" / "run_certify.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert mod.main([]) == 0
