"""A deliberately corrupted frozen-data module (tablecheck fixture).

Every block below violates one invariant the static verifier encodes;
``tests/test_analysis_tablecheck.py`` asserts each corresponding rule
fires.  Never import this from library code.
"""

import math

inf = math.inf
nan = math.nan

DATA = {
    'approx': {
        # wrong reduced-function name (rr_state says fn_names=('exp',))
        'expp': {
            'neg': {
                'index_bits': 2,
                'shift': 60,
                # TC203: 3 slots for 2**2 = 4 sub-domains
                'polys': [((0, 1), (1.0, 0.5)),
                          ((0, 1), (1.0, 0.25)),
                          # TC204: 2 exponents vs 1 coefficient
                          ((0, 1), (1.0,))],
            },
            'pos': {
                # TC203: shift + index_bits = 70 > 64
                'index_bits': 10,
                'shift': 60,
                'polys': [((0,), (float('nan'),))] * 1024,  # TC205: NaN
            },
        },
    },
    'function': 'exp',
    'rr_kind': 'fourier',  # TC202: not a known range reduction
    'rr_state': {
        '_c': nan,  # TC206: NaN rr constant
        'exponents': ((0, 1),),
        'fn_names': ('exp',),
        'name': 'exp',
    },
    'stats': {
        'gen_time_s': -1.0,  # TC207: negative counter
        'oracle_time_s': 0.0,
        'input_count': 10,
        'special_count': 2,
        'reduced_count': 8,
        'per_fn': {},
    },
    'target': 'float32',
}
