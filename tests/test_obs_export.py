"""OpenMetrics / JSONL export (repro.obs.export).

The headline contract: ``parse_openmetrics(render_openmetrics(snap))``
equals ``snap`` for every snapshot the metrics registry can produce —
counters, gauges, and both histogram kinds (including the ``neg``
log2 bucket, which has no finite ``le`` bound and is why the export
keeps native bucket labels).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import metrics
from repro.obs.export import (append_snapshot_jsonl, load_snapshot_jsonl,
                              merge_many, parse_openmetrics,
                              render_openmetrics, sanitize_name)

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _clean_metrics():
    metrics.reset()
    yield
    metrics.reset()


def _full_snapshot() -> dict:
    """A registry snapshot exercising every instrument family."""
    metrics.counter("lp.solves").inc(17)
    metrics.counter("cache.hit").inc(3)
    metrics.gauge("batch.bench.speedup").set(11.375)
    metrics.gauge("profile.wall_s").set(0.125)
    h = metrics.histogram("lp.rows", kind="log2")
    h.observe(100)
    h.observe(1000)
    h.observe(-1.0)   # the 'neg' bucket: no finite le bound exists
    h.observe(0.0)
    e = metrics.histogram("subdomain.index", kind="exact")
    e.observe(3)
    e.observe(3)
    e.observe(7)
    return metrics.snapshot()


class TestRoundTrip:
    def test_full_snapshot_round_trips(self):
        snap = _full_snapshot()
        text = render_openmetrics(snap)
        assert text.endswith("# EOF\n")
        back = parse_openmetrics(text)
        assert back == snap

    def test_empty_snapshot(self):
        snap = metrics.snapshot()
        back = parse_openmetrics(render_openmetrics(snap))
        assert back["counters"] == {}
        assert back["histograms"] == {}

    def test_colliding_names_stay_distinct(self):
        # 'a.b' and 'a_b' sanitize to the same family; the name label
        # keeps them separate through the round trip
        metrics.counter("a.b").inc(1)
        metrics.counter("a_b").inc(2)
        snap = metrics.snapshot()
        back = parse_openmetrics(render_openmetrics(snap))
        assert back["counters"] == {"a.b": 1, "a_b": 2}

    def test_label_escaping(self):
        metrics.gauge('weird "name"\npath').set(1.5)
        snap = metrics.snapshot()
        back = parse_openmetrics(render_openmetrics(snap))
        assert back == snap
        assert back["gauges"]['weird "name"\npath'] == 1.5

    def test_float_precision_survives(self):
        metrics.gauge("g").set(0.1 + 0.2)   # not exactly 0.3
        snap = metrics.snapshot()
        back = parse_openmetrics(render_openmetrics(snap))
        assert back["gauges"]["g"] == snap["gauges"]["g"]


class TestFormat:
    def test_counter_total_suffix_and_type_lines(self):
        metrics.counter("lp.solves").inc(4)
        text = render_openmetrics(metrics.snapshot())
        assert "# TYPE repro_lp_solves counter" in text
        assert 'repro_lp_solves_total{name="lp.solves"} 4' in text

    def test_histogram_samples(self):
        metrics.histogram("lp.rows").observe(100)
        text = render_openmetrics(metrics.snapshot())
        assert "# TYPE repro_lp_rows histogram" in text
        assert 'repro_lp_rows_bucket{name="lp.rows",kind="log2",b="6"} 1' \
            in text
        assert 'repro_lp_rows_count{name="lp.rows",kind="log2"} 1' in text

    def test_sanitize_name(self):
        assert sanitize_name("lp.solves") == "repro_lp_solves"
        assert sanitize_name("a b-c", prefix="") == "a_b_c"
        # a leading digit is illegal without a prefix
        assert sanitize_name("9x", prefix="").startswith("_")

    def test_parse_rejects_unnamed_sample(self):
        with pytest.raises(ValueError, match="name label"):
            parse_openmetrics('# TYPE x gauge\nx{foo="1"} 2\n# EOF\n')

    def test_parse_rejects_untyped_family(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_openmetrics('mystery{name="m"} 2\n# EOF\n')


class TestJsonl:
    def test_append_and_load(self, tmp_path):
        p = tmp_path / "snaps.jsonl"
        snap = _full_snapshot()
        append_snapshot_jsonl(p, snap, ts=1.0, host="ci", suite="quick")
        append_snapshot_jsonl(p, snap, ts=2.0, host="ci", suite="quick")
        records = load_snapshot_jsonl(p)
        assert [r["ts"] for r in records] == [1.0, 2.0]
        assert records[0]["host"] == "ci"
        assert records[0]["snapshot"] == snap

    def test_append_to_open_file(self):
        buf = io.StringIO()
        append_snapshot_jsonl(buf, {"counters": {}, "gauges": {},
                                    "histograms": {}}, ts=3.5)
        rec = json.loads(buf.getvalue())
        assert rec["ts"] == 3.5

    def test_load_rejects_garbage(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"ts": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad snapshot line"):
            load_snapshot_jsonl(p)


class TestMergeMany:
    def test_counters_add_gauges_last_write_wins(self):
        a = {"counters": {"c": 1}, "gauges": {"g": 1.0}, "histograms": {}}
        b = {"counters": {"c": 2}, "gauges": {"g": 5.0}, "histograms": {}}
        out = merge_many([a, b])
        assert out["counters"] == {"c": 3}
        assert out["gauges"] == {"g": 5.0}

    def test_histogram_buckets_add(self):
        h = {"kind": "log2", "count": 1, "sum": 100.0, "buckets": {"6": 1}}
        out = merge_many([{"histograms": {"h": h}},
                          {"histograms": {"h": dict(h)}}])
        assert out["histograms"]["h"]["count"] == 2
        assert out["histograms"]["h"]["buckets"] == {"6": 2}
