"""Tests for piecewise polynomials, Algorithm 3 (repro.core.piecewise)."""

import math

import pytest

from repro.core.cegpoly import CEGConfig
from repro.core.piecewise import (ApproxFunc, PiecewiseConfig,
                                  PiecewisePolynomial, gen_approx_func,
                                  gen_piecewise)
from repro.core.polynomials import Polynomial
from repro.lp.solver import LinearConstraint


def _band(f, width, lo, hi, n=4000):
    cs = []
    for i in range(n):
        r = lo + (hi - lo) * i / (n - 1)
        v = f(r)
        cs.append(LinearConstraint(r, v - width, v + width))
    cs.sort(key=lambda c: c.r)
    return cs


def _ok(pp, cs):
    return all(c.lo <= pp(c.r) <= c.hi for c in cs)


class TestPiecewisePolynomial:
    def test_lookup_and_eval(self):
        p0 = Polynomial((0,), (1.0,))
        p1 = Polynomial((0,), (2.0,))
        # one index bit right below the top exponent bits of ~[0.25, 1)
        from repro.core.splitting import split_domain
        cs = [LinearConstraint(r, 0, 1) for r in (0.26, 0.3, 0.6, 0.9)]
        sp = split_domain(cs, 1)
        pp = PiecewisePolynomial(sp.index_bits, sp.shift, (p0, p1))
        for c in cs:
            assert pp(c.r) in (1.0, 2.0)

    def test_stats_properties(self):
        pp = PiecewisePolynomial(1, 50, (Polynomial((0, 1), (1.0, 2.0)),
                                         Polynomial((0,), (3.0,))))
        assert pp.max_degree == 1
        assert pp.max_terms == 2
        assert pp.npolys == 2


class TestGenPiecewise:
    def test_single_poly_when_feasible(self):
        cs = _band(math.exp, 1e-9, 0.0, 0.005)
        pp = gen_piecewise(cs, (0, 1, 2, 3, 4))
        assert pp is not None
        assert pp.index_bits == 0
        assert _ok(pp, cs)

    def test_splits_when_degree_too_low(self):
        # degree 1 over [0, 0.01] has a Remez error of ~6e-6, far above
        # the 1e-7 band, so a single polynomial cannot work; the widest
        # bit-pattern sub-domain at 2**8 splits (~1e-3, set by the binade
        # structure) brings the bound to ~6e-8, under the band
        cs = _band(math.exp, 1e-7, 0.0, 0.01)
        pp = gen_piecewise(cs, (0, 1), PiecewiseConfig(max_index_bits=8))
        assert pp is not None
        assert pp.index_bits > 0
        assert _ok(pp, cs)

    def test_forced_split_count(self):
        cs = _band(math.exp, 1e-9, 0.001, 0.005)
        cfg = PiecewiseConfig(start_index_bits=3, max_index_bits=3)
        pp = gen_piecewise(cs, (0, 1, 2, 3, 4), cfg)
        assert pp is not None
        assert pp.index_bits == 3
        assert len(pp.polys) == 8
        assert _ok(pp, cs)

    def test_budget_exhaustion_returns_none(self):
        # constant polynomial cannot satisfy tight exp anywhere
        cs = _band(math.exp, 1e-13, 0.001, 0.01, n=800)
        pp = gen_piecewise(cs, (0,), PiecewiseConfig(max_index_bits=2))
        assert pp is None

    def test_empty_subdomains_inherit_neighbours(self):
        # two far-apart clusters leave middle sub-domains empty
        cs = (_band(math.exp, 1e-9, 0.001, 0.00101, n=50)
              + _band(math.exp, 1e-9, 0.009, 0.00901, n=50))
        cs.sort(key=lambda c: c.r)
        cfg = PiecewiseConfig(start_index_bits=4, max_index_bits=4)
        pp = gen_piecewise(cs, (0, 1, 2, 3), cfg)
        assert pp is not None
        assert len(pp.polys) == 16          # all slots defined
        assert _ok(pp, cs)


class TestGenApproxFunc:
    def test_sign_split(self):
        cs = _band(math.exp, 1e-9, -0.005, 0.005)
        af = gen_approx_func("exp", cs, (0, 1, 2, 3, 4))
        assert af is not None
        assert af.neg is not None and af.pos is not None
        assert _ok(af, cs)

    def test_positive_only(self):
        cs = _band(math.log1p, 1e-9, 0.0, 0.0078)
        af = gen_approx_func("log1p", cs, (1, 2, 3, 4))
        assert af is not None
        assert af.neg is None
        assert _ok(af, cs)

    def test_missing_side_raises(self):
        cs = _band(math.exp, 1e-9, 0.001, 0.005)
        af = gen_approx_func("exp", cs, (0, 1, 2, 3))
        with pytest.raises(ValueError):
            af(-0.001)

    def test_infeasible_returns_none(self):
        cs = _band(math.exp, 1e-13, -0.01, 0.01, n=500)
        af = gen_approx_func("exp", cs, (0,),
                             PiecewiseConfig(max_index_bits=1))
        assert af is None

    def test_stats(self):
        cs = _band(math.exp, 1e-9, -0.004, 0.004)
        af = gen_approx_func("exp", cs, (0, 1, 2, 3, 4))
        assert af.npolys >= 2
        assert af.max_degree <= 4
        assert af.max_terms <= 5
