"""Differential proofs for the bit-identical fast paths.

Every performance shortcut in the pipeline ships with a slow reference
implementation and a module toggle; these tests run both sides over
exhaustive small-format input sets plus stratified float32 hard cases
and assert exact equality — the fast paths are *proven or fallen back
from*, never trusted.

Covered here: the 2Sum-proven rounding-interval midpoints
(``FAST_INTERVALS``), the ldexp/bit-pattern format conversions
(``FAST_CONVERT``), the hoisted-ordinal corner walk (``FAST_WALK``),
the oracle's integer fast-certification and adaptive Ziv precision, and
the ``clear_cache``/``cache_info`` contract they rely on.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

import repro.core.reduced as reduced_mod
import repro.fp.formats as formats_mod
import repro.fp.rounding as rounding_mod
from repro.core import all_values
from repro.core.intervals import target_rounding_interval
from repro.core.reduced import reduced_intervals
from repro.fp.bits import bits_to_double, double_to_bits
from repro.fp.formats import (BFLOAT16, FLOAT8, FLOAT16, FLOAT32, FLOAT64,
                              FloatFormat)
from repro.fp.rounding import _rounding_interval_exact, rounding_interval
from repro.oracle.mpmath_oracle import Oracle
from repro.posit.format import POSIT8
from repro.rangereduction import reduction_for

pytestmark = pytest.mark.cache


@pytest.fixture
def restore_toggles():
    yield
    rounding_mod.FAST_INTERVALS = True
    formats_mod.FAST_CONVERT = True
    reduced_mod.FAST_WALK = True


def _all_patterns(fmt):
    return range(1 << (fmt.ebits + fmt.mbits + 1))


def _float32_strata(rng, n=4000):
    """Bit patterns biased toward the proofs' hard edges: subnormal and
    binade boundaries, the largest finite values, and odd/even ties."""
    top = FLOAT32.inf_bits
    hard = []
    min_normal_bits = FLOAT32.from_double(float(FLOAT32.min_normal))
    for base in (0, min_normal_bits, top - 1, top,
                 FLOAT32.from_double(1.0), FLOAT32.from_double(2.0)):
        for d in range(-4, 5):
            b = base + d
            if 0 <= b <= top:
                hard.append(b)
                hard.append(b | FLOAT32.sign_mask)
    rand = [rng.getrandbits(32) for _ in range(n)]
    return hard + rand


class TestRoundingIntervalFastPath:
    def _compare(self, fmt, patterns):
        for y_bits in patterns:
            if fmt.is_nan(y_bits):
                continue
            assert rounding_interval(fmt, y_bits) == \
                _rounding_interval_exact(fmt, y_bits), hex(y_bits)

    def test_float8_exhaustive(self):
        self._compare(FLOAT8, _all_patterns(FLOAT8))

    def test_small_formats_exhaustive(self):
        fmt = FloatFormat(4, 3)
        self._compare(fmt, _all_patterns(fmt))

    def test_bfloat16_sampled(self):
        rng = random.Random(11)
        pats = [rng.getrandbits(16) for _ in range(2000)]
        pats += list(range(64)) + list(range(BFLOAT16.inf_bits - 32,
                                             BFLOAT16.inf_bits))
        self._compare(BFLOAT16, pats)

    def test_float16_sampled(self):
        rng = random.Random(12)
        pats = [rng.getrandbits(16) for _ in range(2000)]
        self._compare(FLOAT16, pats)

    def test_float32_hard_cases(self):
        self._compare(FLOAT32, _float32_strata(random.Random(13)))

    def test_toggle_really_disables(self, restore_toggles, monkeypatch):
        calls = []
        orig = rounding_mod._rounding_interval_exact
        monkeypatch.setattr(rounding_mod, "_rounding_interval_exact",
                            lambda f, b: calls.append(b) or orig(f, b))
        rounding_mod.FAST_INTERVALS = False
        rounding_interval(FLOAT8, 0x35)
        assert calls  # exact path taken when the fast path is off


class TestConvertFastPath:
    def _roundtrip(self, fmt, patterns, restore):
        fast, slow = [], []
        formats_mod.FAST_CONVERT = True
        for b in patterns:
            fast.append(double_to_bits(fmt.to_double(b)))
        formats_mod.FAST_CONVERT = False
        for b in patterns:
            slow.append(double_to_bits(fmt.to_double(b)))
        assert fast == slow

    def test_to_double_small_formats(self, restore_toggles):
        for fmt in (FLOAT8, BFLOAT16, FloatFormat(5, 2)):
            pats = [b for b in _all_patterns(fmt) if not fmt.is_nan(b)]
            self._roundtrip(fmt, pats, restore_toggles)

    def test_to_double_float64_patterns(self, restore_toggles):
        rng = random.Random(21)
        pats = [rng.getrandbits(64) for _ in range(5000)]
        pats += [0, 1, 0x8000000000000000, FLOAT64.inf_bits,
                 FLOAT64.inf_bits - 1]
        pats = [b for b in pats if not FLOAT64.is_nan(b)]
        self._roundtrip(FLOAT64, pats, restore_toggles)

    def test_from_fraction_binary64(self, restore_toggles):
        rng = random.Random(22)
        cases = []
        for _ in range(2000):
            num = rng.getrandbits(96) - (1 << 95)
            den = rng.getrandbits(64) + 1
            cases.append(Fraction(num, den))
        # exact doubles, halves of subnormals, and the overflow midpoint
        cases += [Fraction(0), Fraction(1, 1 << 1080),
                  Fraction(bits_to_double(1)) / 2,
                  Fraction(2) ** 1024 * (2 - Fraction(1, 1 << 53)),
                  -Fraction(2) ** 1024]
        fast, slow = [], []
        formats_mod.FAST_CONVERT = True
        for q in cases:
            fast.append(FLOAT64.from_fraction(q))
        formats_mod.FAST_CONVERT = False
        for q in cases:
            slow.append(FLOAT64.from_fraction(q))
        assert fast == slow


class TestWalkFastPath:
    def test_walk_identical_to_reference(self, restore_toggles):
        oracle = Oracle()
        rr = reduction_for("exp2", FLOAT8)
        pairs = []
        for x in all_values(FLOAT8):
            if rr.special(x) is not None:
                continue
            y_bits = oracle.round_to_bits("exp2", x, FLOAT8)
            pairs.append((x, target_rounding_interval(FLOAT8, y_bits)))

        def snapshot():
            rcs = reduced_intervals(pairs, rr, oracle)
            return {fn: [(c.r, c.lo, c.hi) for c in cs]
                    for fn, cs in rcs.constraints.items()}

        reduced_mod.FAST_WALK = True
        fast = snapshot()
        reduced_mod.FAST_WALK = False
        ref = snapshot()
        assert fast == ref


class TestOracleFastCertify:
    def _bits(self, oracle, name, fmt, xs):
        return [oracle.round_to_bits(name, x, fmt) for x in xs]

    def test_float8_exhaustive(self):
        fast = Oracle(fast_certify=True, adaptive_prec=False)
        slow = Oracle(fast_certify=False, adaptive_prec=False)
        for name in ("exp2", "log2", "sinpi"):
            rr = reduction_for(name, FLOAT8)
            xs = [x for x in all_values(FLOAT8) if rr.special(x) is None]
            assert self._bits(fast, name, FLOAT8, xs) == \
                self._bits(slow, name, FLOAT8, xs)
        info = fast.cache_info()
        assert info["fast_certified"] > 0  # the fast path actually fired

    def test_posit8_exhaustive(self):
        fast = Oracle(fast_certify=True)
        slow = Oracle(fast_certify=False)
        rr = reduction_for("exp", POSIT8)
        xs = [x for x in all_values(POSIT8) if rr.special(x) is None]
        assert self._bits(fast, "exp", POSIT8, xs) == \
            self._bits(slow, "exp", POSIT8, xs)

    def test_float32_sampled(self):
        rng = random.Random(31)
        fast = Oracle(fast_certify=True, adaptive_prec=True)
        slow = Oracle(fast_certify=False, adaptive_prec=False)
        for name, lo, hi in (("log2", 0.001, 1000.0), ("exp", -80.0, 80.0)):
            rr = reduction_for(name, FLOAT32)
            xs = []
            while len(xs) < 150:
                x = FLOAT32.to_double(rng.getrandbits(32))
                if lo <= x <= hi and rr.special(x) is None:
                    xs.append(x)
            # exact-hook ties: the hardest cases of the table maker's
            # dilemma (integral results certify only via the hook)
            xs += [x for x in (1.0, 2.0, 4.0, 512.0) if name == "log2"]
            assert self._bits(fast, name, FLOAT32, xs) == \
                self._bits(slow, name, FLOAT32, xs)


class TestOracleCacheState:
    def test_clear_cache_resets_ziv_state(self):
        oracle = Oracle()
        oracle.round_to_bits("exp2", 0.75, FLOAT8)
        oracle._prec_start["exp2"] = 512
        oracle._prec_streak["exp2"] = 7
        oracle.clear_cache()
        info = oracle.cache_info()
        assert info["bits_entries"] == 0
        assert info["start_prec"] == {}
        assert oracle._prec_streak == {}
        assert info["calls"] == 0 and info["certified"] == 0

    def test_cache_info_counters(self):
        oracle = Oracle()
        oracle.round_to_bits("exp2", 0.75, FLOAT8)
        oracle.round_to_bits("exp2", 0.75, FLOAT8)
        info = oracle.cache_info()
        assert info["calls"] == 2
        assert info["mem_hits"] == 1
        assert info["store"] == "none"
        assert info["bits_entries"] == 1

    def test_adaptive_prec_is_bit_invisible(self):
        adaptive = Oracle(adaptive_prec=True, start_prec=64)
        plain = Oracle(adaptive_prec=False, start_prec=64)
        rr = reduction_for("exp", FLOAT32)
        rng = random.Random(41)
        xs = []
        while len(xs) < 80:
            x = FLOAT32.to_double(rng.getrandbits(32))
            if -80.0 <= x <= 80.0 and rr.special(x) is None:
                xs.append(x)
        a = [adaptive.round_to_bits("exp", x, FLOAT32) for x in xs]
        b = [plain.round_to_bits("exp", x, FLOAT32) for x in xs]
        assert a == b
