"""Tests for counterexample guided polynomial generation (Algorithm 4)."""

import math

import numpy as np
import pytest

from repro.core.cegpoly import CEGConfig, CEGFailure, gen_polynomial
from repro.core.polynomials import Polynomial
from repro.lp.solver import LinearConstraint


def _exp_band(width, n=5000, lo=-0.005, hi=0.005):
    cs = []
    for i in range(n):
        r = lo + (hi - lo) * i / (n - 1)
        v = math.exp(r)
        cs.append(LinearConstraint(r, v - width, v + width))
    return cs


def _satisfies_all(poly, cs):
    return all(c.lo <= poly(c.r) <= c.hi for c in cs)


class TestGenPolynomial:
    def test_large_constraint_set_with_small_sample(self):
        cs = _exp_band(1e-10)
        cfg = CEGConfig(initial_sample=20)
        res = gen_polynomial(cs, (0, 1, 2, 3, 4), cfg)
        assert isinstance(res, Polynomial)
        assert _satisfies_all(res, cs)

    def test_empty_constraints(self):
        res = gen_polynomial([], (0, 1))
        assert isinstance(res, Polynomial)

    def test_degree_lowering(self):
        # a very loose band is satisfiable by a low-degree prefix
        cs = _exp_band(1e-3, n=500)
        res = gen_polynomial(cs, (0, 1, 2, 3, 4, 5))
        assert isinstance(res, Polynomial)
        assert res.terms <= 3
        assert _satisfies_all(res, cs)

    def test_degree_lowering_disabled(self):
        cs = _exp_band(1e-3, n=500)
        cfg = CEGConfig(lower_degree=False)
        res = gen_polynomial(cs, (0, 1, 2, 3, 4, 5), cfg)
        assert isinstance(res, Polynomial)
        assert res.terms == 6

    def test_infeasible_degree(self):
        # degree-1 cannot track exp to 1e-10 over this domain
        cs = _exp_band(1e-10, n=800)
        res = gen_polynomial(cs, (0, 1))
        assert isinstance(res, CEGFailure)

    def test_sample_threshold_failure(self):
        cs = _exp_band(1e-10, n=2000)
        cfg = CEGConfig(initial_sample=4, max_sample=8, counterexample_cap=4)
        res = gen_polynomial(cs, (0, 1), cfg)
        assert isinstance(res, CEGFailure)
        assert res.reason in ("sample-threshold", "lp-infeasible",
                              "round-limit", "stuck")

    def test_counterexamples_are_added(self):
        # tight band, tiny initial sample: must iterate to success
        cs = _exp_band(3e-11, n=3000)
        cfg = CEGConfig(initial_sample=6, highly_constrained=0)
        res = gen_polynomial(cs, (0, 1, 2, 3, 4), cfg)
        assert isinstance(res, Polynomial)
        assert _satisfies_all(res, cs)

    def test_odd_structure_preserved(self):
        cs = []
        for i in range(-300, 301):
            if i == 0:
                continue
            r = i / 300 * 0.002
            v = math.sin(math.pi * r)
            w = abs(v) * 1e-7 + 1e-12
            cs.append(LinearConstraint(r, v - w, v + w))
        cs.sort(key=lambda c: c.r)
        res = gen_polynomial(cs, (1, 3, 5))
        assert isinstance(res, Polynomial)
        assert set(res.exponents) <= {1, 3, 5}
        assert _satisfies_all(res, cs)

    def test_singleton_interval(self):
        # an exactly-pinned point plus a loose band around it
        cs = _exp_band(1e-8, n=200)
        cs.append(LinearConstraint(0.0, 1.0, 1.0))
        cs.sort(key=lambda c: c.r)
        res = gen_polynomial(cs, (0, 1, 2, 3))
        assert isinstance(res, Polynomial)
        assert res(0.0) == 1.0

    def test_failure_is_falsy(self):
        assert not CEGFailure("lp-infeasible")
