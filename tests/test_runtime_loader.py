"""The frozen-data loader: cache API and missing-vs-broken modules."""

from __future__ import annotations

import importlib

import pytest

from repro.libm import runtime


@pytest.fixture()
def fresh_cache():
    runtime.clear_cache()
    yield
    runtime.clear_cache()


class TestClearCache:
    def test_cache_reuse_and_clear(self, fresh_cache):
        a = runtime.load_function("exp", "float32")
        assert runtime.load_function("exp", "float32") is a
        runtime.clear_cache()
        b = runtime.load_function("exp", "float32")
        assert b is not a
        # both rebuilt from the same frozen data
        assert b.evaluate(1.0) == a.evaluate(1.0)


class TestAvailable:
    def test_shipped_sets(self):
        assert runtime.available("float32") == \
            list(runtime.FLOAT32_FUNCTIONS)
        assert runtime.available("posit32") == \
            list(runtime.POSIT32_FUNCTIONS)

    def test_never_generated_target_is_empty(self):
        # data_float16 does not ship; the whole package is missing, and
        # that must read as "not generated", not as an import error
        assert runtime.available("float16") == []

    def test_missing_load_raises_lookup(self):
        with pytest.raises(LookupError, match="no frozen data"):
            runtime.load_function("sinpi", "float16")

    def test_unknown_target_raises_value(self):
        with pytest.raises(ValueError, match="unknown target"):
            runtime.load_function("exp", "float99")


MOD = "repro.libm.data_float32.exp"


@pytest.fixture()
def break_exp_module(monkeypatch):
    """Make the exp data module raise ``exc`` on import."""

    real = importlib.import_module

    def install(exc):
        def fake(name, *args, **kwargs):
            if name == MOD:
                raise exc
            return real(name, *args, **kwargs)

        monkeypatch.setattr(importlib, "import_module", fake)

    return install


class TestBrokenModules:
    def test_broken_module_propagates_from_available(
            self, break_exp_module):
        break_exp_module(ImportError("corrupt freeze: no scipy"))
        with pytest.raises(ImportError, match="corrupt freeze"):
            runtime.available("float32")

    def test_missing_dependency_propagates(self, break_exp_module):
        # ModuleNotFoundError for a *different* module means the data
        # module exists but is broken — it must not look "not shipped"
        err = ModuleNotFoundError("No module named 'nump'", name="nump")
        break_exp_module(err)
        with pytest.raises(ModuleNotFoundError, match="nump"):
            runtime.available("float32")

    def test_genuinely_missing_module_is_not_shipped(
            self, break_exp_module, fresh_cache):
        err = ModuleNotFoundError(f"No module named '{MOD}'", name=MOD)
        break_exp_module(err)
        assert "exp" not in runtime.available("float32")
        with pytest.raises(LookupError, match="no frozen data"):
            runtime.load_function("exp", "float32")

    def test_recovers_once_import_works_again(self, fresh_cache):
        assert "exp" in runtime.available("float32")
        assert runtime.load_function("exp", "float32").evaluate(0.0) == 1.0
