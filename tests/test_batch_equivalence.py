"""Differential batch-vs-scalar equivalence of the vectorized engine.

The contract under test (DESIGN.md, "Scalar/batch bit-identity"):
``evaluate_many`` / ``evaluate_bits_many`` must return, for every
element, exactly the bits the scalar ``evaluate`` / ``evaluate_bits``
produce — same special cases, same reduction, same Horner, same
compensation, same final rounding.

Covered here:

* exhaustively over the session-scoped float8/posit8 fixtures and over
  a bfloat16 ``exp2`` generated in-test (every finite value plus
  NaN/inf — the 16-bit target of the issue, exercising the generic
  IEEE bit-algorithm rounding kernels);
* stratified sampling plus mined hard cases for the shipped float32
  and posit32 libraries (every function, no oracle needed);
* input-handling edge cases: empty arrays, NaN/Inf propagation, 2-D
  and non-contiguous inputs, dtype rejection.
"""

from __future__ import annotations

import random
import warnings

import numpy as np
import pytest

from repro.core import FunctionSpec, all_values, generate
from repro.eval.hardcases import mine_hard_cases
from repro.fp.formats import BFLOAT16, FLOAT32, FLOAT8
from repro.libm.runtime import (FLOAT32_FUNCTIONS, POSIT32_FUNCTIONS,
                                load_function)
from repro.posit.format import POSIT32
from repro.rangereduction import reduction_for

pytestmark = pytest.mark.batch

#: Values every sweep includes: zeros, infinities, NaN, huge/tiny
#: magnitudes, the sinpi/cospi integer thresholds, overflow territory.
SPECIAL = [0.0, -0.0, float("inf"), float("-inf"), float("nan"),
           1e30, -1e30, 2.0 ** 23, 2.0 ** 23 + 2.0, 2.0 ** 24,
           88.7, -87.3, 1e-40, -1e-45, 0.5, 1.0, -1.0, 3.75e8]


def assert_bit_identical(fn, xs):
    """Both batch entry points against their scalar twins, elementwise."""
    xs = np.asarray(xs, dtype=np.float64)
    with warnings.catch_warnings():
        warnings.simplefilter("error")       # no stray FP warnings either
        got_bits = fn.evaluate_bits_many(xs)
        got_vals = fn.evaluate_many(xs)
    for x, gb, gv in zip(xs.tolist(), got_bits.tolist(), got_vals.tolist()):
        assert fn.evaluate_bits(x) == gb, f"bits mismatch at x={x!r}"
        sv = fn.evaluate(x)
        assert np.float64(sv).tobytes() == np.float64(gv).tobytes(), \
            f"value mismatch at x={x!r}: scalar {sv!r}, batch {gv!r}"


class TestExhaustiveSmallFormats:
    """Every representable input of the tiny formats, plus non-finites."""

    def _sweep(self, fn, fmt):
        xs = list(all_values(fmt)) + SPECIAL
        assert_bit_identical(fn, xs)

    def test_float8_exp(self, float8_exp):
        self._sweep(float8_exp, FLOAT8)

    def test_float8_log2(self, float8_log2):
        self._sweep(float8_log2, FLOAT8)

    def test_float8_sinpi(self, float8_sinpi):
        self._sweep(float8_sinpi, FLOAT8)

    def test_posit8_exp(self, posit8_exp):
        from repro.posit.format import POSIT8

        self._sweep(posit8_exp, POSIT8)


class TestExhaustiveBfloat16:
    """A 16-bit generated target, swept exhaustively (no oracle needed:
    the differential check compares the two implementations, not the
    truth)."""

    def test_exp2_every_value(self):
        rr = reduction_for("exp2", BFLOAT16)
        vals = list(all_values(BFLOAT16))
        inputs = vals[::16]
        inputs += [v for v in vals
                   if rr.special(v) is None and abs(v) < 16.0][::4]
        fn = generate(FunctionSpec("exp2", BFLOAT16, rr), inputs)
        assert_bit_identical(fn, vals + SPECIAL)


def _stratified(fmt_lo, fmt_hi, seed):
    rng = random.Random(seed)
    out = []
    for lo, hi in ((fmt_lo, fmt_hi), (-1.0, 1.0), (-1e-3, 1e-3)):
        out += [rng.uniform(lo, hi) for _ in range(400)]
    return out


@pytest.mark.parametrize("fn_name", FLOAT32_FUNCTIONS)
def test_float32_stratified(fn_name):
    fn = load_function(fn_name, "float32")
    xs = _stratified(-100.0, 100.0, hash(fn_name) % 1000)
    if fn_name in ("ln", "log2", "log10"):
        xs += [abs(x) * s for x in xs[:300] for s in (1e-8, 1e8)]
    assert_bit_identical(fn, xs + SPECIAL)


@pytest.mark.parametrize("fn_name", POSIT32_FUNCTIONS)
def test_posit32_stratified(fn_name):
    fn = load_function(fn_name, "posit32")
    xs = _stratified(-30.0, 30.0, hash(fn_name) % 1000)
    if fn_name in ("ln", "log2", "log10"):
        xs += [abs(x) * s for x in xs[:300] for s in (1e-4, 1e4)]
    assert_bit_identical(fn, xs + SPECIAL)


class TestHardCases:
    """Mined hard cases — inputs whose exact result grazes a rounding
    boundary — must agree too (they stress the deepest Horner/rounding
    interplay)."""

    def test_float32_exp_hard(self):
        fn = load_function("exp", "float32")
        rng = random.Random(11)
        cands = [rng.uniform(-80.0, 80.0) for _ in range(150)]
        hard = mine_hard_cases("exp", FLOAT32, cands, 8)
        assert hard
        assert_bit_identical(fn, hard)

    def test_posit32_exp_hard(self):
        fn = load_function("exp", "posit32")
        rng = random.Random(12)
        cands = [rng.uniform(-20.0, 20.0) for _ in range(150)]
        hard = mine_hard_cases("exp", POSIT32, cands, 8)
        assert hard
        assert_bit_identical(fn, hard)


class TestInputHandling:
    """Shape, dtype and memory-layout behaviour of the batch API."""

    @pytest.fixture(scope="class")
    def exp32(self):
        return load_function("exp", "float32")

    def test_empty(self, exp32):
        out = exp32.evaluate_many(np.array([], dtype=np.float64))
        assert out.shape == (0,) and out.dtype == np.float64
        bits = exp32.evaluate_bits_many(np.array([], dtype=np.float64))
        assert bits.shape == (0,) and bits.dtype == np.uint64

    def test_nan_inf_propagation(self, exp32):
        out = exp32.evaluate_many(
            np.array([np.nan, np.inf, -np.inf], dtype=np.float64))
        assert np.isnan(out[0])
        assert out[1] == np.inf and out[2] == 0.0

    def test_2d_shape_preserved(self, exp32):
        xs = np.array([[0.5, 1.0, -1.0], [2.0, np.nan, -700.0]])
        out = exp32.evaluate_many(xs)
        assert out.shape == xs.shape
        flat = exp32.evaluate_many(xs.reshape(-1))
        assert np.array_equal(out.reshape(-1), flat, equal_nan=True)

    def test_non_contiguous(self, exp32):
        base = np.linspace(-5.0, 5.0, 101)
        strided = base[::2]
        assert not strided.flags.c_contiguous or strided.size == 0
        out = exp32.evaluate_many(strided)
        want = exp32.evaluate_many(np.ascontiguousarray(strided))
        assert np.array_equal(out, want)

    def test_list_input_ok(self, exp32):
        out = exp32.evaluate_many([0.0, 1.0])
        assert out[0] == 1.0

    def test_dtype_rejection(self, exp32):
        with pytest.raises(TypeError, match="float64"):
            exp32.evaluate_many(np.array([1.0, 2.0], dtype=np.float32))
        with pytest.raises(TypeError, match="float64"):
            exp32.evaluate_many(np.array([1, 2]))
        with pytest.raises(TypeError, match="float64"):
            exp32.evaluate_bits_many(np.array(["a"]))

    def test_batch_is_cached(self, exp32):
        assert exp32.batch is exp32.batch
