"""Tests for the adversarial corpus subsystem (mine, freeze, replay).

The fast tier mines corpora for the tiny float8/posit8 session fixtures
(sub-second) and replays the *committed* float32/posit32 corpora
through every evaluation path; the oracle-heavy full re-mine of the
shipped formats hides behind the ``adversarial`` marker.
"""

import json

import pytest

from repro.eval.adversarial import (CORPUS_VERSION, Corpus, CorpusEntry,
                                    CorpusError, audit_corpus,
                                    audit_corpus_dir, corpus_inputs,
                                    corpus_path, default_corpus_dir,
                                    list_corpora, load_corpus, mine_corpus,
                                    render_audits, save_corpus, schema_errors)
from repro.eval.adversarial.generators import (boundary_ordinal_candidates,
                                               graze_candidates, input_value,
                                               random_candidates,
                                               seam_candidates,
                                               special_frontier_candidates)
from repro.fp.formats import FLOAT8, FLOAT32
from repro.libm.runtime import available
from repro.posit.format import POSIT8

needs_float32 = pytest.mark.skipif(
    len(available("float32")) < 10, reason="float32 tables not generated")
needs_posit32 = pytest.mark.skipif(
    len(available("posit32")) < 8, reason="posit32 tables not generated")

COMMITTED = default_corpus_dir(".")


def _corpus(entries=None):
    entries = entries or [CorpusEntry(0x3c, 0x3d, 0.25, "random"),
                          CorpusEntry(0x81, 0x00, 0.5, "special")]
    return Corpus("exp", "float8", entries)


class TestCorpusCodec:
    def test_entry_round_trip(self):
        e = CorpusEntry(0xdeadbeef, 0x7f800000, 1.2681649789067737e-18,
                        "graze")
        assert CorpusEntry.from_json(e.to_json()) == e

    def test_save_load_round_trip(self, tmp_path):
        c = _corpus()
        path = save_corpus(c, tmp_path)
        assert path == corpus_path(tmp_path, "exp", "float8")
        back = load_corpus(path)
        assert back.function == "exp" and back.target == "float8"
        assert back.entries == c.entries

    def test_distance_survives_exactly(self, tmp_path):
        # repr round-trip: the frozen distance is the mined distance
        d = 2.220446049250313e-16
        c = _corpus([CorpusEntry(1, 2, d, "graze")])
        assert load_corpus(save_corpus(c, tmp_path)).entries[0].distance == d

    def test_list_corpora(self, tmp_path):
        save_corpus(_corpus(), tmp_path)
        save_corpus(Corpus("ln", "posit8", _corpus().entries), tmp_path)
        (tmp_path / "README.json").write_text("{}")   # not fn.target.json
        got = list_corpora(tmp_path)
        assert [(f, t) for f, t, _ in got] == [
            ("exp", "float8"), ("ln", "posit8")]

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(CorpusError, match="cannot read"):
            load_corpus(tmp_path / "nope.float8.json")

    def test_load_invalid_json_raises(self, tmp_path):
        p = tmp_path / "exp.float8.json"
        p.write_text("{not json")
        with pytest.raises(CorpusError, match="not valid JSON"):
            load_corpus(p)


class TestSchema:
    def test_valid_document(self):
        assert schema_errors(_corpus().to_json()) == []

    def test_not_an_object(self):
        assert schema_errors([1, 2]) != []

    def test_unknown_version(self):
        doc = _corpus().to_json()
        doc["corpus_version"] = CORPUS_VERSION + 1
        assert any("corpus_version" in e for e in schema_errors(doc))

    def test_missing_and_extra_keys(self):
        doc = _corpus().to_json()
        del doc["target"]
        assert schema_errors(doc)
        doc = _corpus().to_json()
        doc["bonus"] = 1
        assert schema_errors(doc)

    def test_bad_hex(self):
        doc = _corpus().to_json()
        doc["entries"][0]["x"] = "3c"          # no 0x prefix
        assert any("hex" in e for e in schema_errors(doc))
        doc["entries"][0]["x"] = "0xzz"
        assert any("hex" in e for e in schema_errors(doc))

    def test_distance_out_of_range(self):
        doc = _corpus().to_json()
        doc["entries"][0]["d"] = "0.75"
        assert any("outside" in e for e in schema_errors(doc))

    def test_unknown_source_tag(self):
        doc = _corpus().to_json()
        doc["entries"][0]["src"] = "fuzzer"
        assert any("source tag" in e for e in schema_errors(doc))

    def test_duplicate_inputs(self):
        e = CorpusEntry(0x3c, 0x3d, 0.25, "random")
        doc = Corpus("exp", "float8", [e, e]).to_json()
        assert any("duplicate" in e_ for e_ in schema_errors(doc))

    def test_empty_entries(self):
        doc = _corpus().to_json()
        doc["entries"] = []
        assert any("non-empty" in e for e in schema_errors(doc))


class TestGenerators:
    def test_input_value_negative_zero(self):
        bits = FLOAT32.sign_mask
        x = input_value(FLOAT32, bits)
        assert x == 0.0 and str(x) == "-0.0"

    def test_input_value_plain(self):
        assert input_value(FLOAT8, FLOAT8.from_double(1.5)) == 1.5

    def test_special_frontier_has_nonfinite_float_patterns(self, float8_exp):
        rr = float8_exp.spec.rr
        xs = special_frontier_candidates("exp", FLOAT8, rr)
        assert any(x != x for x in xs)           # nan
        assert float("inf") in xs and float("-inf") in xs

    def test_special_frontier_posit(self, posit8_exp):
        rr = posit8_exp.spec.rr
        xs = special_frontier_candidates("exp", POSIT8, rr)
        assert 0.0 in xs and any(x != x for x in xs)   # zero and NaR

    def test_boundary_candidates_posit_regimes(self, posit8_exp):
        rr = posit8_exp.spec.rr
        xs = boundary_ordinal_candidates("exp", POSIT8, rr)
        u = float(POSIT8.useed)
        assert any(abs(x - u) / u < 0.5 for x in xs if x > 0)

    def test_seam_candidates_straddle_index_change(self, float8_log2):
        rr = float8_log2.spec.rr
        xs = seam_candidates("log2", FLOAT8, rr, float8_log2.approx)
        assert xs, "a piecewise table must have at least one seam"

    def test_random_candidates_deterministic(self, float8_exp):
        rr = float8_exp.spec.rr
        a = random_candidates("exp", FLOAT8, rr, count=40, seed=3)
        b = random_candidates("exp", FLOAT8, rr, count=40, seed=3)
        assert a == b
        assert a != random_candidates("exp", FLOAT8, rr, count=40, seed=4)

    def test_graze_candidates_stay_in_domain(self, float8_exp):
        rr = float8_exp.spec.rr
        xs = graze_candidates("exp", FLOAT8, rr, count=8, seed=5)
        for x in xs:
            assert rr.special(x) is None or True   # representable doubles
            assert FLOAT8.to_double(FLOAT8.from_double(x)) == x


class TestMine:
    def test_mine_float8_corpus(self, float8_exp):
        c = mine_corpus("exp", "float8", fn=float8_exp)
        assert c.function == "exp" and c.target == "float8"
        assert len(c) > 0
        assert schema_errors(c.to_json()) == []
        # ranked: distances ascend
        ds = [e.distance for e in c]
        assert ds == sorted(ds)

    def test_mine_deterministic(self, float8_exp):
        a = mine_corpus("exp", "float8", fn=float8_exp)
        b = mine_corpus("exp", "float8", fn=float8_exp)
        assert a.to_json() == b.to_json()

    def test_mined_corpus_replays_clean(self, float8_exp):
        # an exhaustively generated table must pass its own fresh corpus
        c = mine_corpus("exp", "float8", fn=float8_exp)
        audit = audit_corpus(c, fn=float8_exp)
        assert audit.ok, [str(f) for f in audit.failures]
        assert audit.paths == ("scalar", "batch", "instrumented")

    def test_corpus_inputs_reads_back(self, float8_exp, tmp_path):
        c = mine_corpus("exp", "float8", fn=float8_exp)
        save_corpus(c, tmp_path)
        got = corpus_inputs(tmp_path, "float8")
        assert set(got) == {"exp"}
        assert len(got["exp"]) == len(c)


class TestAudit:
    def test_tamper_detection(self, float8_exp, tmp_path):
        # flip one expected bit pattern: every path must report it
        c = mine_corpus("exp", "float8", fn=float8_exp)
        e = next(e for e in c if e.distance < 0.5)
        bad = CorpusEntry(e.x_bits, e.want_bits ^ 1, e.distance, e.source)
        tampered = Corpus(c.function, c.target,
                          [bad if x is e else x for x in c.entries])
        audit = audit_corpus(tampered, fn=float8_exp)
        assert not audit.ok
        assert {f.path for f in audit.failures} == {
            "scalar", "batch", "instrumented"}
        assert all(f.x_bits == e.x_bits for f in audit.failures)

    def test_audit_dir_and_render(self, float8_exp, tmp_path):
        save_corpus(mine_corpus("exp", "float8", fn=float8_exp), tmp_path)
        audits = audit_corpus_dir(tmp_path,
                                  loader=lambda f, t: float8_exp)
        assert len(audits) == 1 and audits[0].ok
        text = render_audits(audits)
        assert "exp.float8" in text and "ok" in text

    def test_audit_dir_propagates_schema_failure(self, tmp_path):
        p = tmp_path / "exp.float8.json"
        p.write_text(json.dumps({"corpus_version": 99}))
        with pytest.raises(CorpusError):
            audit_corpus_dir(tmp_path)

    @pytest.mark.parallel
    def test_parallel_path_agrees(self, float8_exp):
        c = mine_corpus("exp", "float8", fn=float8_exp)
        audit = audit_corpus(c, fn=float8_exp, workers=2)
        assert audit.paths == ("scalar", "batch", "instrumented", "parallel")
        assert audit.ok, [str(f) for f in audit.failures]


class TestCommittedCorpora:
    """The frozen corpora are part of the shipped library's contract."""

    def test_all_shipped_pairs_have_corpora(self):
        have = {(f, t) for f, t, _ in list_corpora(COMMITTED)}
        for f in available("float32"):
            assert (f, "float32") in have
        for f in available("posit32"):
            assert (f, "posit32") in have

    def test_committed_corpora_pass_schema(self):
        for _, _, path in list_corpora(COMMITTED):
            doc = json.loads(path.read_text())
            assert schema_errors(doc) == [], path

    @needs_float32
    def test_committed_float32_corpora_replay_clean(self):
        audits = audit_corpus_dir(COMMITTED, target="float32")
        assert audits
        bad = [str(f) for a in audits for f in a.failures]
        assert not bad, bad

    @needs_posit32
    def test_committed_posit32_corpora_replay_clean(self):
        audits = audit_corpus_dir(COMMITTED, target="posit32")
        assert audits
        bad = [str(f) for a in audits for f in a.failures]
        assert not bad, bad


class TestCLI:
    @needs_float32
    def test_check_mode(self, tmp_path, capsys):
        from repro.__main__ import main

        save_corpus(load_corpus(corpus_path(COMMITTED, "exp", "float32")),
                    tmp_path)
        rc = main(["adversarial", "check", "--dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0 and "exp.float32" in out

    @needs_float32
    def test_check_mode_fails_on_tamper(self, tmp_path, capsys):
        from repro.__main__ import main

        c = load_corpus(corpus_path(COMMITTED, "exp", "float32"))
        e = c.entries[0]
        c.entries[0] = CorpusEntry(e.x_bits, e.want_bits ^ 1, e.distance,
                                   e.source)
        save_corpus(c, tmp_path)
        assert main(["adversarial", "check", "--dir", str(tmp_path)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_mode_empty_dir_fails(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["adversarial", "check", "--dir", str(tmp_path)]) == 1

    @needs_float32
    @pytest.mark.adversarial
    def test_mine_mode_full_float32(self, tmp_path, capsys):
        from repro.__main__ import main

        rc = main(["adversarial", "mine", "--dir", str(tmp_path),
                   "--target", "float32"])
        assert rc == 0
        assert len(list_corpora(tmp_path)) == len(available("float32"))
        assert main(["adversarial", "check", "--dir", str(tmp_path),
                     "--target", "float32"]) == 0


class TestGate:
    @needs_float32
    @needs_posit32
    def test_tools_run_adversarial_gate(self):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "run_adversarial",
            pathlib.Path(__file__).parent.parent / "tools"
            / "run_adversarial.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert mod.main([]) == 0

    def test_gate_reports_missing_corpus(self, tmp_path, capsys):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "run_adversarial",
            pathlib.Path(__file__).parent.parent / "tools"
            / "run_adversarial.py")
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        assert mod.main(["--dir", str(tmp_path)]) == 1
        assert "missing corpus" in capsys.readouterr().out
