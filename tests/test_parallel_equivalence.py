"""Differential suite: parallel execution is bit-identical to serial.

The parallel executor's whole contract (DESIGN.md, "Parallel
execution") is that ``workers=N`` is a pure wall-clock knob: mismatch
lists, wrong-counts, frozen data modules, and merged metrics must equal
the serial run's exactly.  These tests hold that equality over the
small formats where the full pipeline runs in seconds, including the
degenerate shapes (empty pool, single chunk, more workers than work).
"""

from __future__ import annotations

import math

import pytest

from tests.parallel_utils import QUIET, TINY, data_modulo_timing

from repro.baselines import correctness_baselines, posit_baselines
from repro.core.sampling import all_values
from repro.core.validate import validate
from repro.eval.correctness import audit_function, build_pool
from repro.fp.formats import FLOAT8
from repro.libm.genlib import generate_library
from repro.libm.serialize import function_from_dict, function_to_dict
from repro.obs import metrics
from repro.posit.format import POSIT8

pytestmark = pytest.mark.parallel


def _broken_copy(fn):
    """A deterministically wrong variant of ``fn`` (one coefficient
    perturbed), so mismatch-list equality is tested on non-empty lists."""
    data = function_to_dict(fn)
    name = next(iter(data["approx"]))
    side = "pos" if data["approx"][name]["pos"] is not None else "neg"
    exps, coeffs = data["approx"][name][side]["polys"][0]
    coeffs = (coeffs[0] + 0.125,) + tuple(coeffs[1:])
    data["approx"][name][side]["polys"][0] = (exps, coeffs)
    return function_from_dict(data)


class TestValidateEquivalence:
    def test_clean_function_all_inputs(self, float8_exp):
        xs = list(all_values(FLOAT8))
        assert validate(float8_exp, xs, workers=2) == validate(float8_exp, xs)

    def test_posit8(self, posit8_exp):
        xs = list(all_values(POSIT8))
        assert validate(posit8_exp, xs, workers=2) == validate(posit8_exp, xs)

    def test_nonempty_mismatch_list_and_order(self, float8_exp):
        bad_fn = _broken_copy(float8_exp)
        xs = list(all_values(FLOAT8))
        serial = validate(bad_fn, xs)
        assert serial, "perturbed function must actually mismatch"
        for workers in (2, 3):
            assert validate(bad_fn, xs, workers=workers) == serial

    def test_limit_truncates_to_serial_prefix(self, float8_exp):
        bad_fn = _broken_copy(float8_exp)
        xs = list(all_values(FLOAT8))
        serial = validate(bad_fn, xs, limit=3)
        assert len(serial) == 3
        assert validate(bad_fn, xs, limit=3, workers=2) == serial

    def test_empty_pool(self, float8_exp):
        assert validate(float8_exp, [], workers=2) == []

    def test_single_chunk(self, float8_exp):
        xs = list(all_values(FLOAT8))[:40]
        assert (validate(float8_exp, xs, workers=2, chunk_size=10_000)
                == validate(float8_exp, xs))

    def test_more_workers_than_inputs(self, float8_exp):
        bad_fn = _broken_copy(float8_exp)
        xs = list(all_values(FLOAT8))[60:75]
        assert validate(bad_fn, xs, workers=8) == validate(bad_fn, xs)


class TestAuditEquivalence:
    def _pool(self, fmt):
        return build_pool("exp", fmt, n_random=60, n_hard=8,
                          hard_candidates=60)

    def test_float8_row(self, float8_exp):
        libs = correctness_baselines()
        # warm the lazy closure caches first: pickling a *used* baseline
        # is exactly what a real parallel audit does
        for lib in libs.values():
            if lib.supports("exp"):
                lib.call("exp", 0.5)
        pool = self._pool(FLOAT8)
        serial = audit_function("exp", FLOAT8, float8_exp, libs, pool)
        par = audit_function("exp", FLOAT8, float8_exp, libs, pool, workers=2)
        assert par.wrong == serial.wrong
        assert list(par.wrong) == list(serial.wrong)
        assert par.pool_size == serial.pool_size

    def test_posit8_row_keeps_na_pattern(self, posit8_exp):
        libs = posit_baselines()
        pool = build_pool("exp", POSIT8, n_random=40, n_hard=4,
                          hard_candidates=40)
        serial = audit_function("exp", POSIT8, posit8_exp, libs, pool)
        par = audit_function("exp", POSIT8, posit8_exp, libs, pool, workers=2)
        assert par.wrong == serial.wrong
        assert list(par.wrong) == list(serial.wrong)

    def test_wrong_counts_nonzero_somewhere(self, float8_exp):
        # the broken function must be counted wrong identically
        bad_fn = _broken_copy(float8_exp)
        pool = self._pool(FLOAT8)
        serial = audit_function("exp", FLOAT8, bad_fn, {}, pool)
        assert serial.wrong["RLIBM-32"] > 0
        par = audit_function("exp", FLOAT8, bad_fn, {}, pool, workers=2)
        assert par.wrong == serial.wrong

    def test_empty_pool(self, float8_exp):
        serial = audit_function("exp", FLOAT8, float8_exp, {}, [])
        par = audit_function("exp", FLOAT8, float8_exp, {}, [], workers=2)
        assert par.wrong == serial.wrong
        assert par.pool_size == 0


class TestGenerateLibraryEquivalence:
    NAMES = ["ln", "log2"]

    def test_parallel_library_identical(self, tmp_path):
        generate_library(self.NAMES, FLOAT8, tmp_path / "serial",
                         settings=TINY, log=QUIET)
        generate_library(self.NAMES, FLOAT8, tmp_path / "parallel",
                         settings=TINY, log=QUIET, workers=2)
        for name in self.NAMES:
            serial = data_modulo_timing(tmp_path / "serial" / f"{name}.py")
            par = data_modulo_timing(tmp_path / "parallel" / f"{name}.py")
            assert par == serial, f"{name}: parallel generation diverged"
            # the timing-free comparison must still cover real content
            assert serial["approx"] and serial["rr_state"]


class TestMetricsMergeLaws:
    def test_absorb_matches_merge(self):
        a = {"counters": {"x": 3}, "gauges": {"g": 1.5},
             "histograms": {"h": {"kind": "log2", "count": 2, "sum": 6.0,
                                  "buckets": {"1": 1, "2": 1}}}}
        metrics.reset()
        before = metrics.snapshot()
        metrics.absorb(a)
        metrics.absorb(a)
        merged = metrics.merge(metrics.merge(before, a), a)
        got = metrics.snapshot()
        assert got["counters"]["x"] == merged["counters"]["x"] == 6
        assert got["gauges"]["g"] == 1.5
        assert (got["histograms"]["h"]["buckets"]
                == merged["histograms"]["h"]["buckets"])
        metrics.reset()

    def test_absorb_rejects_kind_mismatch(self):
        metrics.reset()
        metrics.histogram("clash", "exact").observe(1)
        with pytest.raises(ValueError):
            metrics.absorb({"histograms": {"clash": {
                "kind": "log2", "count": 1, "sum": 1.0, "buckets": {"0": 1}}}})
        metrics.reset()

    def test_parallel_validate_preserves_counters(self, float8_exp):
        """Worker-side metric activity must land in the parent registry."""
        xs = list(all_values(FLOAT8))
        metrics.reset()
        validate(float8_exp, xs)
        serial_snap = metrics.snapshot()
        metrics.reset()
        validate(float8_exp, xs, workers=2)
        par_snap = metrics.snapshot()
        assert par_snap["counters"] == serial_snap["counters"]
        metrics.reset()


def test_build_pool_returns_copies():
    """Mutating a pool must not poison the memoized copy."""
    a = build_pool("exp", FLOAT8, n_random=30, n_hard=4, hard_candidates=30)
    a.append(math.inf)
    b = build_pool("exp", FLOAT8, n_random=30, n_hard=4, hard_candidates=30)
    assert math.inf not in b
