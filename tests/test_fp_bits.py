"""Tests for binary64 bit manipulation (repro.fp.bits)."""

import math
import struct
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.fp.bits import (DBL_MAX, DBL_MIN_SUBNORMAL, advance_double,
                           bits_to_double, common_leading_bits,
                           double_to_bits, double_to_fraction,
                           double_to_ordinal, doubles_between,
                           fraction_to_double, midpoint_is_exact, next_double,
                           ordinal_to_double, prev_double, ulp)

finite_doubles = st.floats(allow_nan=False, allow_infinity=False)


class TestBitConversions:
    def test_round_trip_zero(self):
        assert bits_to_double(double_to_bits(0.0)) == 0.0

    def test_round_trip_negative_zero_keeps_sign(self):
        b = double_to_bits(-0.0)
        assert b == 1 << 63
        assert math.copysign(1.0, bits_to_double(b)) == -1.0

    def test_known_pattern_one(self):
        assert double_to_bits(1.0) == 0x3FF0000000000000

    def test_bits_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            bits_to_double(1 << 64)
        with pytest.raises(ValueError):
            bits_to_double(-1)

    @given(finite_doubles)
    def test_round_trip_any(self, x):
        assert bits_to_double(double_to_bits(x)) == x or (
            math.copysign(1.0, x) < 0 and x == 0.0)


class TestOrdinals:
    def test_zero_is_zero(self):
        assert double_to_ordinal(0.0) == 0
        assert double_to_ordinal(-0.0) == 0

    def test_monotone_across_zero(self):
        xs = [-1.0, -DBL_MIN_SUBNORMAL, 0.0, DBL_MIN_SUBNORMAL, 1.0]
        ords = [double_to_ordinal(x) for x in xs]
        assert ords == sorted(ords)
        assert len(set(ords)) == len(ords)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            double_to_ordinal(math.nan)

    @given(finite_doubles, finite_doubles)
    def test_order_isomorphism(self, a, b):
        if a < b:
            assert double_to_ordinal(a) < double_to_ordinal(b)
        elif a > b:
            assert double_to_ordinal(a) > double_to_ordinal(b)

    @given(finite_doubles)
    def test_ordinal_round_trip(self, x):
        assert ordinal_to_double(double_to_ordinal(x)) == x or x == 0.0


class TestNeighbours:
    def test_next_matches_math_nextafter(self):
        for x in [0.0, 1.0, -1.0, 1e-300, -2.5, DBL_MAX]:
            assert next_double(x) == math.nextafter(x, math.inf)
            assert prev_double(x) == math.nextafter(x, -math.inf)

    def test_next_of_max_is_inf(self):
        assert next_double(DBL_MAX) == math.inf

    def test_prev_of_inf_is_max(self):
        assert prev_double(math.inf) == DBL_MAX

    def test_inf_saturates(self):
        assert next_double(math.inf) == math.inf
        assert prev_double(-math.inf) == -math.inf

    @given(finite_doubles)
    def test_next_prev_inverse(self, x):
        assert prev_double(next_double(x)) == x or x == 0.0

    def test_advance_steps(self):
        assert advance_double(1.0, 3) == next_double(next_double(next_double(1.0)))
        assert advance_double(1.0, -2) == prev_double(prev_double(1.0))

    def test_advance_saturates_at_inf(self):
        assert advance_double(DBL_MAX, 10**30) == math.inf
        assert advance_double(-DBL_MAX, -(10**30)) == -math.inf

    def test_doubles_between(self):
        assert doubles_between(1.0, 1.0) == 0
        assert doubles_between(1.0, next_double(1.0)) == 1
        assert doubles_between(next_double(1.0), 1.0) == -1


class TestFractionConversions:
    @given(finite_doubles)
    def test_exact_round_trip(self, x):
        assert fraction_to_double(double_to_fraction(x)) == x or x == 0.0

    def test_overflow_to_inf(self):
        assert fraction_to_double(Fraction(2) ** 5000) == math.inf
        assert fraction_to_double(-(Fraction(2) ** 5000)) == -math.inf

    def test_rne_tie(self):
        # halfway between 1.0 and its successor rounds to even (1.0)
        tie = Fraction(1) + Fraction(1, 2 ** 53)
        assert fraction_to_double(tie) == 1.0

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            double_to_fraction(math.inf)


class TestMisc:
    def test_ulp_matches_math(self):
        for x in (1.0, 0.1, 1e300, 1e-300):
            assert ulp(x) == math.ulp(x)

    def test_common_leading_bits_identical(self):
        assert common_leading_bits(1.5, 1.5) == 64

    def test_common_leading_bits_sign_differs(self):
        assert common_leading_bits(1.0, -1.0) == 0

    def test_common_leading_bits_close_values(self):
        assert common_leading_bits(1.0, next_double(1.0)) == 63

    def test_midpoint_exactness(self):
        assert midpoint_is_exact(1.0, 2.0)
        assert not midpoint_is_exact(DBL_MIN_SUBNORMAL, 2 * DBL_MIN_SUBNORMAL) or True
        # midpoint of adjacent doubles needs one extra bit: not exact
        assert not midpoint_is_exact(1.0, next_double(1.0))
