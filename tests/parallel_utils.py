"""Shared helpers for the parallel-execution test suites."""

from __future__ import annotations

import pathlib

from repro.libm.genlib import GenSettings

__all__ = ["TINY", "QUIET", "data_modulo_timing", "TIMING_KEYS"]

#: Tiny budgets: the full sampled pipeline per function in well under a
#: second on the 8-bit formats.
TINY = GenSettings(base=600, validation=300, hard_candidates=200,
                   hard_keep=40, boundary_radius=8, max_index_bits=4,
                   rounds=4, clean_rounds=1, final_check=100)


def QUIET(*args) -> None:
    """A log sink that drops everything."""


#: Stats keys that carry wall times — the only fields allowed to differ
#: between two runs of the same generation.
TIMING_KEYS = ("gen_time_s", "oracle_time_s", "phase_s", "total_time_s")


def data_modulo_timing(path: pathlib.Path) -> dict:
    """A frozen module's DATA dict with wall-time stats removed.

    Everything else — coefficients, range-reduction state, input/
    special/reduced counts, per-fn table shapes, folded-counterexample
    and final-check tallies — must be bit-identical across serial,
    parallel, and resumed runs.
    """
    from repro.libm.compact import decode

    ns: dict = {}
    exec(compile(path.read_text(), str(path), "exec"), ns)
    # compact layout: a plain exec exposes COMPACT, not the lazily
    # decoded DATA (PEP 562 only fires on real module objects)
    data = decode(ns["COMPACT"]) if "COMPACT" in ns else ns["DATA"]
    for key in TIMING_KEYS:
        data["stats"].pop(key, None)
    return data
