"""The cache must never change a generated bit.

Every layer of the generation cache — the on-disk oracle/walk store, the
LP solution memo, the per-invocation CEG warm start, and the proven
float fast paths — carries the same contract: results are bit-identical
to the uncached pipeline.  These tests enforce it end to end by running
``generate_validated`` with the cache off, cold, pre-warmed, and shared
with a 4-worker pool, and asserting the serialized coefficient tables
are byte-identical modulo wall-clock timings.
"""

from __future__ import annotations

import pytest

from tests.parallel_utils import TIMING_KEYS

from repro import cache
from repro.cache import SegmentStore
from repro.core import FunctionSpec, all_values
from repro.core.piecewise import PiecewiseConfig
from repro.core.validate import generate_validated
from repro.fp.formats import FLOAT8
from repro.libm.serialize import function_to_dict
from repro.lp.solver import clear_solution_cache
from repro.oracle.mpmath_oracle import Oracle
from repro.posit.format import POSIT8
from repro.rangereduction import reduction_for

pytestmark = pytest.mark.cache


def _spec(name, fmt):
    return FunctionSpec(name, fmt, reduction_for(name, fmt),
                        PiecewiseConfig(max_index_bits=4))


def _run(name, fmt, oracle, workers=None):
    """One generate_validated run: sparse inputs + exhaustive validation,
    so the outer loop genuinely folds counterexamples back."""
    clear_solution_cache()
    pool = list(all_values(fmt))
    spec = _spec(name, fmt)
    fn, added = generate_validated(spec, pool[::8], pool, oracle=oracle,
                                   max_rounds=8, workers=workers)
    d = function_to_dict(fn)
    for key in TIMING_KEYS:
        d["stats"].pop(key, None)
    return d, added


@pytest.mark.parametrize("name,fmt", [("exp2", FLOAT8), ("log2", FLOAT8),
                                      ("exp", POSIT8)])
def test_tables_identical_cache_off_cold_warm(name, fmt, tmp_path):
    baseline, base_added = _run(name, fmt, Oracle(store=None))

    root = tmp_path / "store"
    cold_store = SegmentStore(root)
    cold, cold_added = _run(name, fmt, Oracle(store=cold_store))
    cold_store.flush()

    warm_oracle = Oracle(store=SegmentStore(root))
    warm, warm_added = _run(name, fmt, warm_oracle)

    assert cold == baseline
    assert warm == baseline
    assert cold_added == base_added == warm_added
    info = warm_oracle.cache_info()
    assert info["store_hits"] > 0  # the warm pass really used the disk


def test_tables_identical_serial_vs_workers(tmp_path):
    baseline, _ = _run("exp2", FLOAT8, Oracle(store=None))

    # process-wide store, inherited by the fork pool: workers publish
    # shard-local segments at task end, the parent merges them after
    cache.configure(tmp_path / "shared")
    try:
        shared, _ = _run("exp2", FLOAT8, Oracle(), workers=4)
    finally:
        cache.deactivate()
    assert shared == baseline

    # the pool run populated the store; a serial rerun over it must
    # still produce the same bits
    rerun, _ = _run("exp2", FLOAT8,
                    Oracle(store=SegmentStore(tmp_path / "shared")))
    assert rerun == baseline
    store = SegmentStore(tmp_path / "shared")
    assert store.verify() == []
    assert any(st["records"] > 0 for st in store.stats().values())


def test_prewarmed_store_only_serves_canonical_bits(tmp_path):
    """A store warmed by one run serves a *different* run of the same
    function without drift (fresh Oracle, fresh LP memo, fresh warm
    state — only the disk carries over)."""
    root = tmp_path / "store"
    _run("exp2", FLOAT8, Oracle(store=SegmentStore(root)))
    a, _ = _run("exp2", FLOAT8, Oracle(store=SegmentStore(root)))
    b, _ = _run("exp2", FLOAT8, Oracle(store=None))
    assert a == b
