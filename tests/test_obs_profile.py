"""Sampling profiler + phase attribution (repro.obs.profile).

Pins the opt-in discipline (the shared no-op bracket when no profiler
is active — the same contract obs.events keeps for spans), the phase
accounting arithmetic, the thread/signal samplers, gauge publication,
and — under the ``bench`` marker, outside tier-1 — the <5% overhead
budget on the batch-throughput workload.
"""

from __future__ import annotations

import time

import pytest

from repro.obs import metrics
from repro.obs import profile as P

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _no_active_profiler():
    metrics.reset()
    yield
    if P.active() is not None:
        P.stop()
    metrics.reset()


class TestPhaseBrackets:
    def test_noop_when_inactive(self):
        # hot-path guarantee: one shared object, no allocation
        assert P.phase("reduce") is P.NOOP_PHASE
        assert P.phase("horner") is P.NOOP_PHASE
        with P.phase("anything"):
            pass

    def test_phase_accumulates(self):
        with P.Profiler(interval=0) as prof:
            for _ in range(3):
                with P.phase("reduce"):
                    pass
            with P.phase("horner"):
                time.sleep(0.002)
        assert prof.phase_calls == {"reduce": 3, "horner": 1}
        assert prof.phase_ns["horner"] >= 2_000_000
        assert prof.phase_ns["reduce"] >= 0
        assert prof.stack == []

    def test_nested_phases_stack(self):
        with P.Profiler(interval=0) as prof:
            with P.phase("outer"):
                assert prof.stack == ["outer"]
                with P.phase("inner"):
                    assert prof.stack == ["outer", "inner"]
                assert prof.stack == ["outer"]
        assert prof.phase_calls == {"outer": 1, "inner": 1}

    def test_batch_engine_is_bracketed(self):
        # the pipeline stages of DESIGN.md's batch engine must show up
        import numpy as np
        from repro.libm.runtime import load_function
        g = load_function("exp", "float32")
        xs = np.linspace(-1.0, 1.0, 64)
        with P.Profiler(interval=0) as prof:
            g.evaluate_many(xs)
        assert {"special", "reduce", "horner", "compensate",
                "round"} <= set(prof.phase_ns)


class TestSampler:
    def test_thread_sampler_collects(self):
        with P.Profiler(interval=0.002) as prof:
            with P.phase("busy"):
                t_end = time.perf_counter() + 0.05
                while time.perf_counter() < t_end:
                    pass
        assert prof.n_samples >= 3
        assert prof.samples.get("busy", 0) >= 1
        assert prof.wall_s > 0.04
        # the sampler thread is gone after stop()
        assert prof._thread is None

    def test_signal_mode_works_or_falls_back(self):
        with P.Profiler(interval=0.002, mode="signal") as prof:
            t_end = time.perf_counter() + 0.03
            while time.perf_counter() < t_end:
                pass
        assert prof.n_samples >= 1

    def test_interval_zero_disables_sampler(self):
        with P.Profiler(interval=0) as prof:
            with P.phase("p"):
                pass
        assert prof.n_samples == 0
        assert prof._thread is None


class TestLifecycle:
    def test_single_active_enforced(self):
        p1 = P.Profiler(interval=0).start()
        try:
            with pytest.raises(RuntimeError, match="already active"):
                P.Profiler(interval=0).start()
        finally:
            p1.stop()
        assert P.active() is None

    def test_stop_foreign_profiler_rejected(self):
        p1 = P.Profiler(interval=0).start()
        try:
            with pytest.raises(RuntimeError):
                P.Profiler(interval=0).stop()
        finally:
            p1.stop()

    def test_module_level_start_stop(self):
        p = P.start(interval=0)
        assert P.active() is p
        assert P.stop() is p
        assert P.active() is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            P.Profiler(mode="quantum")

    def test_configure_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "0.5,thread")
        p = P.configure_from_env()
        assert p is not None and p.interval == 0.5
        p.stop()
        monkeypatch.delenv("REPRO_PROFILE")
        assert P.configure_from_env() is None


class TestResults:
    def test_publish_gauges(self):
        with P.Profiler(interval=0.002) as prof:
            with P.phase("work"):
                time.sleep(0.02)
        prof.publish_gauges()
        snap = metrics.snapshot()
        assert snap["gauges"]["profile.phase.work_s"] > 0
        assert snap["gauges"]["profile.wall_s"] > 0
        assert snap["gauges"]["profile.n_samples"] >= 1

    def test_report_renders(self):
        with P.Profiler(interval=0.002) as prof:
            with P.phase("alpha"):
                time.sleep(0.01)
        text = prof.report(title="unit profile")
        assert "unit profile" in text
        assert "alpha" in text

    def test_report_without_phases(self):
        with P.Profiler(interval=0) as prof:
            pass
        assert "no phase brackets" in prof.report()


@pytest.mark.bench
class TestOverheadBudget:
    def test_profiler_overhead_under_5_percent(self):
        """The <5% instrumentation budget (DESIGN.md) on the
        batch-throughput workload: phase brackets are per-batch and the
        sampler is interval-bounded, so an active profiler must not
        meaningfully slow ``evaluate_many``."""
        import numpy as np
        from repro.libm.runtime import load_function
        from repro.obs.timing import measure

        g = load_function("exp", "float32")
        rng = np.random.default_rng(7)
        xs = rng.uniform(-80.0, 80.0, 200_000).astype(
            np.float32).astype(np.float64)
        g.evaluate_many(xs[:8])

        def workload():
            g.evaluate_many(xs)

        base = measure(workload, repeats=9, warmup=2)
        prof = P.Profiler(interval=0.005)
        with prof:
            with_prof = measure(workload, repeats=9, warmup=2)
        overhead = with_prof.median / base.median - 1.0
        assert overhead < 0.05, (
            f"profiler overhead {overhead:.1%} exceeds the 5% budget "
            f"(base {base.median:.0f}ns, profiled {with_prof.median:.0f}ns)")
