"""Tests for the exact rational simplex (repro.lp.rational_simplex)."""

from fractions import Fraction as F

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp.rational_simplex import LPStatus, solve_lp_exact


class TestBasics:
    def test_simple_max(self):
        # max x + y st x + y <= 4, x - y <= 2  -> objective 4
        res = solve_lp_exact([[1, 1], [1, -1]], [4, 2], [1, 1])
        assert res.ok and res.objective == 4

    def test_vertex_solution(self):
        # max x st x + y <= 4, x - y <= 2 -> x=3, y=1
        res = solve_lp_exact([[1, 1], [1, -1]], [4, 2], [1, 0])
        assert res.ok and res.objective == 3
        assert res.x == [F(3), F(1)]

    def test_infeasible(self):
        res = solve_lp_exact([[1], [-1]], [2, -3], [1])
        assert res.status == LPStatus.INFEASIBLE
        assert res.x is None

    def test_unbounded(self):
        res = solve_lp_exact([[-1]], [0], [1])
        assert res.status == LPStatus.UNBOUNDED

    def test_negative_rhs_phase1(self):
        # x >= 1, y >= 1, x + y <= 5, max x + y = 5
        res = solve_lp_exact([[-1, 0], [0, -1], [1, 1]], [-1, -1, 5], [1, 1])
        assert res.ok and res.objective == 5

    def test_free_variables_negative_optimum(self):
        # max -x st x >= 3  ->  x = 3, objective -3
        res = solve_lp_exact([[-1]], [-3], [-1])
        assert res.ok and res.objective == -3 and res.x == [F(3)]

    def test_exact_fractions(self):
        # answer is exactly 1/3, which floats cannot represent
        res = solve_lp_exact([[3]], [1], [1])
        assert res.ok and res.x == [F(1, 3)]

    def test_degenerate_constraints(self):
        # duplicated constraints should not break Bland's rule
        rows = [[1, 1]] * 5 + [[1, -1]]
        res = solve_lp_exact(rows, [4] * 5 + [2], [1, 0])
        assert res.ok and res.objective == 3

    def test_zero_objective_feasibility(self):
        res = solve_lp_exact([[1], [-1]], [2, 0], [0])
        assert res.ok and res.objective == 0

    def test_inconsistent_width_rejected(self):
        with pytest.raises(ValueError):
            solve_lp_exact([[1, 2], [1]], [1, 1], [1, 0])


class TestRandomizedAgainstScipy:
    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=25, deadline=None)
    def test_matches_highs(self, seed):
        import random

        import numpy as np
        from scipy.optimize import linprog

        rng = random.Random(seed)
        n = rng.randint(1, 3)
        m = rng.randint(n + 1, 6)
        a = [[F(rng.randint(-5, 5)) for _ in range(n)] for _ in range(m)]
        b = [F(rng.randint(0, 8)) for _ in range(m)]
        c = [F(rng.randint(-3, 3)) for _ in range(n)]
        ours = solve_lp_exact(a, b, c)
        ref = linprog([-float(v) for v in c],
                      A_ub=np.array(a, dtype=float),
                      b_ub=np.array(b, dtype=float),
                      bounds=[(None, None)] * n, method="highs")
        if ours.ok:
            assert ref.status == 0, (ours, ref.status)
            assert abs(float(ours.objective) - (-ref.fun)) < 1e-7
        elif ours.status == LPStatus.INFEASIBLE:
            assert ref.status == 2
        else:
            # all b >= 0 here, so x = 0 is always feasible and "unbounded"
            # is the only alternative; HiGHS sometimes reports such models
            # as infeasible (unbounded-or-infeasible ambiguity), so accept
            # either non-optimal status.
            assert ref.status in (2, 3, 4)
