"""Hardened timing discipline (repro.obs.timing).

The trajectory store's regression detection leans on every timing
result carrying a dispersion estimate; these tests pin the statistical
helpers (MAD, outlier rejection) and the measurement loop's contracts
(warmup runs, GC state restored, per-item scaling).
"""

from __future__ import annotations

import gc

import pytest

from repro.eval.timing import time_batch, time_scalar
from repro.obs.timing import (MAD_SIGMA_SCALE, TimingResult, mad, measure,
                              measure_ns, reject_outliers, summarize)

pytestmark = pytest.mark.obs


class TestStatistics:
    def test_mad_basic(self):
        assert mad([1.0, 2.0, 3.0]) == 1.0
        assert mad([5.0]) == 0.0
        assert mad([]) == 0.0

    def test_mad_explicit_center(self):
        assert mad([1.0, 2.0, 3.0], center=1.0) == 1.0

    def test_reject_outliers_drops_spike(self):
        samples = [10.0, 11.0, 10.5, 9.5, 10.2, 1000.0]
        kept = reject_outliers(samples)
        assert 1000.0 not in kept
        assert len(kept) == 5

    def test_reject_outliers_keeps_small_samples(self):
        # <3 samples: no dispersion estimate, nothing is rejected
        assert reject_outliers([1.0, 100.0]) == [1.0, 100.0]

    def test_reject_outliers_zero_spread(self):
        # a perfectly quiet run must not reject everything
        assert reject_outliers([5.0] * 10) == [5.0] * 10

    def test_summarize(self):
        r = summarize([10.0, 11.0, 10.5, 9.5, 10.2, 1000.0])
        assert isinstance(r, TimingResult)
        assert 9.5 <= r.median <= 11.0
        assert r.n == 5
        assert r.mad <= 1.0

    def test_summarize_empty(self):
        assert summarize([]) == TimingResult(0.0, 0.0, 0)

    def test_mad_sigma_scale(self):
        assert 1.48 < MAD_SIGMA_SCALE < 1.49


class TestMeasure:
    def test_measure_ns_positive_and_counts(self):
        calls = []
        r = measure_ns(lambda: calls.append(1), repeats=5, warmup=2)
        assert r.median > 0
        # warmup passes ran untimed but ran
        assert len(calls) == 7
        assert 1 <= r.n <= 5

    def test_measure_rejects_bad_args(self):
        with pytest.raises(ValueError):
            measure_ns(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure(lambda: None, per=0)

    def test_gc_state_restored(self):
        assert gc.isenabled()
        seen = []
        measure_ns(lambda: seen.append(gc.isenabled()), repeats=2, warmup=0)
        # the collector was off inside the timed region...
        assert not any(seen)
        # ...and back on afterwards
        assert gc.isenabled()

    def test_gc_left_alone_when_disabled(self):
        gc.disable()
        try:
            measure_ns(lambda: None, repeats=1)
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_per_scales_result(self):
        slow = measure(lambda: sum(range(1000)), repeats=3, per=1)
        scaled = measure(lambda: sum(range(1000)), repeats=3, per=1000)
        assert scaled.median < slow.median


class TestEvalTimingFacade:
    """repro.eval.timing.time_scalar/time_batch return TimingResult."""

    def test_time_scalar(self):
        r = time_scalar(lambda x: x * x, [0.1, 0.2, 0.3] * 10, repeats=3)
        assert isinstance(r, TimingResult)
        assert r.median > 0

    def test_time_batch(self):
        r = time_batch(lambda xs: [x + 1 for x in xs], [0.5] * 30,
                       repeats=3)
        assert isinstance(r, TimingResult)
        assert r.median > 0
