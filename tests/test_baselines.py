"""Tests for the baseline libraries and the Remez substrate."""

import math

import numpy as np
import pytest

from repro.baselines import (CRLibmLike, Float32Libm, MinimaxLibm, SystemLibm,
                             correctness_baselines, posit_baselines, remez,
                             timing_baselines)
from repro.baselines.minimax_libm import reduced_minimax
from repro.fp.float32 import f32_round, f32_to_bits
from repro.fp.formats import FLOAT32
from repro.oracle import default_oracle as orc


class TestRemez:
    def test_error_decreases_with_degree(self):
        errs = [remez(math.exp, -0.01, 0.01, d).max_error for d in (1, 2, 3)]
        assert errs[0] > errs[1] > errs[2]

    def test_equioscillation_quality(self):
        # the mini-max error for exp deg-2 over [-a, a] is about
        # a**3 / (4 * 3!) * max|f'''|; check the right ballpark
        a = 0.01
        res = remez(math.exp, -a, a, 2)
        predicted = a ** 3 / 24
        assert res.max_error < 4 * predicted

    def test_noise_floor_degrees(self):
        # degrees past the double noise floor stay sane
        res = remez(math.log1p, 0.0, 1 / 128, 9)
        assert res.max_error < 1e-15

    def test_polynomial_matches_function(self):
        res = remez(math.sin, -0.1, 0.1, 5)
        for x in np.linspace(-0.1, 0.1, 17):
            assert abs(res.poly(float(x)) - math.sin(float(x))) <= \
                res.max_error * 1.01 + 1e-18

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            remez(math.exp, 1.0, 0.0, 3)

    def test_reduced_minimax_cached(self):
        assert reduced_minimax("exp", 4) is reduced_minimax("exp", 4)


class TestSupportMatrix:
    """The N/A pattern of Table 1 must be reflected exactly."""

    def test_glibc_has_no_sinpi(self):
        libs = correctness_baselines()
        assert not libs["glibc float"].supports("sinpi")
        assert not libs["glibc double"].supports("cospi")
        assert libs["glibc float"].supports("exp10")

    def test_crlibm_has_no_exp2_exp10(self):
        cr = CRLibmLike()
        assert not cr.supports("exp2")
        assert not cr.supports("exp10")
        assert cr.supports("sinpi")

    def test_metalibm_set(self):
        libs = correctness_baselines()
        assert libs["metalibm float"].supports("exp")
        assert libs["metalibm float"].supports("cosh")
        assert not libs["metalibm float"].supports("ln")

    def test_intel_has_all_ten(self):
        libs = correctness_baselines()
        for fn in ("ln", "log2", "log10", "exp", "exp2", "exp10",
                   "sinh", "cosh", "sinpi", "cospi"):
            assert libs["intel float"].supports(fn)
            assert libs["intel double"].supports(fn)

    def test_unsupported_call_raises(self):
        with pytest.raises(KeyError):
            SystemLibm().call("sinpi", 0.5)


class TestAccuracyEnvelopes:
    @pytest.mark.parametrize("fn,x", [
        ("exp", 1.5), ("ln", 7.25), ("log2", 9.5), ("sinh", 2.25),
        ("cosh", -1.125), ("exp2", 5.3), ("exp10", 2.75), ("log10", 42.0),
    ])
    def test_double_baselines_close_to_truth(self, fn, x):
        want = orc.round_to_double(fn, x)
        for lib in (MinimaxLibm("m", {fn: 8}), SystemLibm()):
            got = lib.call(fn, x)
            assert abs(got - want) <= 4 * math.ulp(want), lib.name

    def test_float_baseline_correct_after_rounding_mostly(self):
        lib = Float32Libm("f", {"exp": 4})
        ok = 0
        for i in range(200):
            x = f32_round(-5.0 + i * 0.05)   # library inputs are float32
            if f32_to_bits(lib.call("exp", x)) == orc.round_to_bits(
                    "exp", x, FLOAT32):
                ok += 1
        # float32 arithmetic: right more often than not, but far from
        # always (that is the point of Table 1's float columns)
        assert 100 < ok < 200

    def test_crlibm_is_correct_to_double(self):
        cr = CRLibmLike()
        for x in (0.3, 1.7, 55.0):
            assert cr.call("exp", x) == orc.round_to_double("exp", x)

    def test_system_libm_overflow(self):
        lib = SystemLibm()
        assert lib.call("exp", 1000.0) == math.inf
        assert lib.call("sinh", -1000.0) == -math.inf
        assert lib.call("exp10", 400.0) == math.inf

    def test_limit_cases_routed(self):
        lib = MinimaxLibm("m", {"ln": 6})
        assert lib.call("ln", 0.0) == -math.inf
        assert math.isnan(lib.call("ln", -2.0))
        assert lib.call("ln", math.inf) == math.inf

    def test_tiny_input_shortcuts(self):
        intel = MinimaxLibm("m", {"sinpi": 8, "sinh": 8, "cosh": 8,
                                  "cospi": 8})
        assert intel.call("sinh", 1e-30) == 1e-30
        assert intel.call("cosh", 1e-30) == 1.0
        assert intel.call("cospi", 1e-30) == 1.0
        assert abs(intel.call("sinpi", 1e-30) - math.pi * 1e-30) < 1e-44


class TestRegistries:
    def test_all_lineups_construct(self):
        for lineup in (correctness_baselines(), timing_baselines(),
                       posit_baselines()):
            assert lineup
            for name, lib in lineup.items():
                assert lib.functions

    def test_batch_default(self):
        lib = MinimaxLibm("m", {"exp": 6})
        xs = [0.1, 0.2, 0.3]
        out = lib.batch("exp", xs)
        assert out.shape == (3,)
        assert out[1] == lib.call("exp", 0.2)
