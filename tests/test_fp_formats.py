"""Tests for parametric IEEE formats (repro.fp.formats)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.fp.formats import (BFLOAT16, FLOAT8, FLOAT16, FLOAT32, FLOAT64,
                              FloatFormat, round_fraction_to_int_rne)

FORMATS = [FLOAT8, FLOAT16, BFLOAT16, FLOAT32]


class TestRoundToIntRNE:
    @pytest.mark.parametrize("q,want", [
        (Fraction(1, 2), 0), (Fraction(3, 2), 2), (Fraction(5, 2), 2),
        (Fraction(-1, 2), 0), (Fraction(-3, 2), -2),
        (Fraction(1, 4), 0), (Fraction(3, 4), 1), (Fraction(7, 3), 2),
        (Fraction(5), 5),
    ])
    def test_cases(self, q, want):
        assert round_fraction_to_int_rne(q) == want

    @given(st.fractions())
    def test_within_half(self, q):
        n = round_fraction_to_int_rne(q)
        assert abs(q - n) <= Fraction(1, 2)


class TestParameters:
    def test_float32_parameters(self):
        assert FLOAT32.nbits == 32
        assert FLOAT32.bias == 127
        assert FLOAT32.emax == 127
        assert FLOAT32.emin == -126
        assert FLOAT32.inf_bits == 0x7F800000
        assert float(FLOAT32.max_value) == 3.4028234663852886e38
        assert float(FLOAT32.min_subnormal) == 1.401298464324817e-45

    def test_float64_is_double(self):
        assert FLOAT64.nbits == 64
        assert FLOAT64.bias == 1023
        assert float(FLOAT64.max_value) == 1.7976931348623157e308

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FloatFormat(1, 3)
        with pytest.raises(ValueError):
            FloatFormat(12, 60)


class TestClassification:
    def test_float32_specials(self):
        assert FLOAT32.is_inf(0x7F800000)
        assert FLOAT32.is_inf(0xFF800000)
        assert FLOAT32.is_nan(0x7FC00000)
        assert not FLOAT32.is_nan(0x7F800000)
        assert FLOAT32.is_zero(0x00000000)
        assert FLOAT32.is_zero(0x80000000)
        assert FLOAT32.is_subnormal(0x00000001)
        assert not FLOAT32.is_subnormal(0x00800000)

    def test_sign(self):
        assert FLOAT32.sign_of(0x80000000) == -1
        assert FLOAT32.sign_of(0) == 1


class TestDecodeEncode:
    def test_one(self):
        assert FLOAT32.to_fraction(0x3F800000) == 1
        assert FLOAT32.from_fraction(Fraction(1)) == 0x3F800000

    def test_subnormal_decode(self):
        assert FLOAT32.to_fraction(1) == Fraction(1, 2 ** 149)

    def test_overflow_to_inf(self):
        assert FLOAT32.from_fraction(Fraction(2) ** 200) == 0x7F800000
        assert FLOAT32.from_fraction(-(Fraction(2) ** 200)) == 0xFF800000

    def test_underflow_to_zero(self):
        assert FLOAT32.from_fraction(Fraction(1, 2 ** 200)) == 0
        assert FLOAT32.from_fraction(-Fraction(1, 2 ** 200)) == 0x80000000

    def test_tie_to_even_at_subnormal_boundary(self):
        # exactly half the smallest subnormal rounds to (even) zero
        assert FLOAT32.from_fraction(Fraction(1, 2 ** 150)) == 0

    def test_carry_into_next_exponent(self):
        # largest value below 2.0 plus just over half an ulp rounds to 2.0
        q = Fraction(2) - Fraction(1, 2 ** 25)
        assert FLOAT32.to_fraction(FLOAT32.from_fraction(q)) == 2

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_exhaustive_round_trip_float8_like(self, fmt):
        if fmt.nbits > 16:
            pytest.skip("exhaustive only for small formats")
        for bits in fmt.enumerate_finite():
            q = fmt.to_fraction(bits)
            back = fmt.from_fraction(q)
            if fmt.is_zero(bits):
                assert fmt.is_zero(back)
            else:
                assert back == bits

    def test_from_double_specials(self):
        assert FLOAT32.from_double(math.nan) == FLOAT32.nan_bits
        assert FLOAT32.from_double(math.inf) == FLOAT32.inf_bits
        assert FLOAT32.from_double(-math.inf) == 0xFF800000
        assert FLOAT32.from_double(-0.0) == 0x80000000

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_float32_values_fixed_points(self, x):
        # every binary32 value rounds to itself
        bits = FLOAT32.from_double(x)
        assert FLOAT32.to_double(bits) == x or x == 0.0


class TestOrdinalsAndEnumeration:
    def test_ordinal_monotone_float8(self):
        vals = [FLOAT8.to_fraction(b) for b in FLOAT8.enumerate_finite()]
        assert vals == sorted(vals)

    def test_next_up_down(self):
        one = FLOAT32.from_double(1.0)
        up = FLOAT32.next_up(one)
        assert FLOAT32.to_double(up) == 1.0000001192092896
        assert FLOAT32.next_down(up) == one

    def test_next_up_saturates_at_inf(self):
        assert FLOAT32.next_up(FLOAT32.inf_bits) == FLOAT32.inf_bits

    def test_enumerate_range(self):
        vals = [FLOAT8.to_double(b) for b in FLOAT8.enumerate_range(1.0, 2.0)]
        assert vals[0] == 1.0 and vals[-1] == 2.0
        assert all(1.0 <= v <= 2.0 for v in vals)
        assert vals == sorted(vals)

    def test_finite_count_float8(self):
        assert len(list(FLOAT8.enumerate_finite())) == FLOAT8.finite_count - 1
        # (both zeros collapse onto ordinal 0, hence the -1)


class TestAgainstNumpy:
    def test_float16_matches_numpy(self):
        import numpy as np
        for x in [0.1, 1.00048828125, 65504.1, 6.1e-5, -3.14159, 2.0 ** -25]:
            ours = FLOAT16.round_double(x)
            theirs = float(np.float16(x))
            assert ours == theirs, x

    def test_float32_matches_numpy(self):
        import numpy as np
        for x in [0.1, 1.0000000596046448, 3.4028235e38, 1e-45, -2.718281828]:
            assert FLOAT32.round_double(x) == float(np.float32(x)), x
