"""Fault injection: worker failures and killed-run resume.

A parallel run may die half-way — a worker raising, the process killed
between shards — and the executor/checkpoint layer must (a) surface
worker exceptions promptly with the original traceback, never hanging
or silently dropping a shard, and (b) resume a killed
``generate_library`` run to the *identical* final library.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from tests.parallel_utils import QUIET, TINY, data_modulo_timing

from repro.fp.formats import FLOAT8
from repro.libm import genlib
from repro.libm.genlib import generate_library
from repro.parallel import Checkpoint, CheckpointMismatch, ShardError, run_tasks

pytestmark = pytest.mark.parallel

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _square(payload):
    return payload * payload


def _boom(payload):
    if payload == "bad":
        raise ValueError("boom-marker-5309")
    return payload


class TestWorkerFailure:
    def test_raises_shard_error_with_original_traceback(self):
        with pytest.raises(ShardError) as exc_info:
            run_tasks(_boom, ["ok", "bad", "ok"], workers=2, label="faulty")
        msg = str(exc_info.value)
        assert "ValueError: boom-marker-5309" in msg
        assert "in _boom" in msg          # the worker-side frame survives
        assert exc_info.value.index == 1  # the failing shard is named
        assert "faulty" in msg

    def test_serial_path_raises_natively(self):
        # workers=1 runs in-process: the original exception, untranslated
        with pytest.raises(ValueError, match="boom-marker-5309"):
            run_tasks(_boom, ["bad"], workers=1)

    def test_completed_results_reported_before_failure(self):
        payloads = ["a", "b", "bad"]
        seen = {}
        with pytest.raises(ShardError):
            run_tasks(_boom, payloads, workers=2,
                      on_result=lambda i, r: seen.__setitem__(i, r))
        for i, r in seen.items():
            assert r == payloads[i]
        assert 2 not in seen  # the failed shard never reports a result

    def test_no_shard_dropped_on_success(self):
        results = run_tasks(_square, list(range(23)), workers=3)
        assert results == [i * i for i in range(23)]


class TestCheckpoint:
    def test_atomic_save_and_load(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck")
        ckpt.save("exp", {"source": "DATA = 1\n"})
        assert ckpt.load("exp") == {"source": "DATA = 1\n"}
        assert ckpt.done("exp") and not ckpt.done("ln")
        assert list(ckpt.keys()) == ["exp"]
        assert not list((tmp_path / "ck").glob("*.tmp"))

    def test_torn_file_reads_as_absent(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck")
        ckpt.save("exp", {"source": "x"})
        (tmp_path / "ck" / "exp.json").write_text('{"source": "x')  # torn
        assert ckpt.load("exp") is None
        assert list(ckpt.keys()) == []

    def test_manifest_mismatch_refuses_resume(self, tmp_path):
        Checkpoint(tmp_path / "ck", manifest={"target": "float8", "seed": 1})
        Checkpoint(tmp_path / "ck", manifest={"target": "float8", "seed": 1})
        with pytest.raises(CheckpointMismatch):
            Checkpoint(tmp_path / "ck",
                       manifest={"target": "float8", "seed": 2})

    def test_rejects_pathy_keys(self, tmp_path):
        ckpt = Checkpoint(tmp_path / "ck")
        for bad in ("", "a/b", "..", ".hidden"):
            with pytest.raises(ValueError):
                ckpt.save(bad, {})


class TestKilledRunResume:
    NAMES = ["ln", "log2"]

    def test_serial_resume_identical_library(self, tmp_path, monkeypatch):
        ck = tmp_path / "ckpt"
        real = genlib.generate_one

        def flaky(name, *args, **kwargs):
            if name == "log2":
                raise ValueError("injected-kill-log2")
            return real(name, *args, **kwargs)

        monkeypatch.setattr(genlib, "generate_one", flaky)
        with pytest.raises(ValueError, match="injected-kill-log2"):
            generate_library(self.NAMES, FLOAT8, tmp_path / "dead",
                             settings=TINY, log=QUIET, checkpoint=ck)
        ckpt = Checkpoint(ck)
        assert ckpt.done("ln") and not ckpt.done("log2")

        monkeypatch.undo()
        generate_library(self.NAMES, FLOAT8, tmp_path / "resumed",
                         settings=TINY, log=QUIET, checkpoint=ck)
        generate_library(self.NAMES, FLOAT8, tmp_path / "fresh",
                         settings=TINY, log=QUIET)
        for name in self.NAMES:
            resumed = data_modulo_timing(tmp_path / "resumed" / f"{name}.py")
            fresh = data_modulo_timing(tmp_path / "fresh" / f"{name}.py")
            assert resumed == fresh, f"{name}: resume diverged from fresh run"

    @pytest.mark.skipif(not _HAS_FORK,
                        reason="monkeypatched fault needs fork inheritance")
    def test_parallel_worker_failure_keeps_finished_checkpoints(
            self, tmp_path, monkeypatch):
        ck = tmp_path / "ckpt"
        real = genlib.generate_one

        def flaky(name, *args, **kwargs):
            if name == "log2":
                # fail only after the sibling's checkpoint lands, so the
                # "finished shards survive a failed run" claim is
                # deterministic rather than a completion-order race
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline:
                    if Checkpoint(ck).done("ln"):
                        break
                    time.sleep(0.02)
                raise ValueError("injected-kill-log2")
            return real(name, *args, **kwargs)

        monkeypatch.setattr(genlib, "generate_one", flaky)
        with pytest.raises(ShardError, match="injected-kill-log2"):
            generate_library(self.NAMES, FLOAT8, tmp_path / "dead",
                             settings=TINY, log=QUIET, workers=2,
                             checkpoint=ck)
        # the sibling shard that finished was checkpointed, not dropped
        assert Checkpoint(ck).done("ln")

        monkeypatch.undo()
        generate_library(self.NAMES, FLOAT8, tmp_path / "resumed",
                         settings=TINY, log=QUIET, workers=2,
                         checkpoint=ck)
        generate_library(self.NAMES, FLOAT8, tmp_path / "fresh",
                         settings=TINY, log=QUIET)
        for name in self.NAMES:
            resumed = data_modulo_timing(tmp_path / "resumed" / f"{name}.py")
            fresh = data_modulo_timing(tmp_path / "fresh" / f"{name}.py")
            assert resumed == fresh

    def test_mismatched_checkpoint_refused(self, tmp_path):
        ck = tmp_path / "ckpt"
        generate_library(["ln"], FLOAT8, tmp_path / "out", settings=TINY,
                         log=QUIET, checkpoint=ck, seed=2021)
        with pytest.raises(CheckpointMismatch):
            generate_library(["ln"], FLOAT8, tmp_path / "out2", settings=TINY,
                             log=QUIET, checkpoint=ck, seed=2022)
