"""Tests for the binary32 emulation details of the float baselines."""

import math
from fractions import Fraction

import pytest

from repro.baselines.float_libm import Float32Libm, _horner32, _split_constant
from repro.fp.float32 import f32_round


class TestSplitConstant:
    def test_sum_reconstructs(self):
        # hi + lo reproduces c to about float32-squared accuracy: lo is
        # ~2**-12 of c and carries its own 2**-24 relative rounding
        c = math.log(2) / 64.0
        hi, lo = _split_constant(c)
        assert abs((hi + lo) - c) <= abs(c) * 2 ** -30

    def test_hi_has_short_mantissa(self):
        hi, _ = _split_constant(math.log(2) / 64.0, keep_bits=11)
        # hi must be a float32 value whose low 12 mantissa bits are zero
        from repro.fp.float32 import f32_to_bits
        assert f32_to_bits(hi) & 0xFFF == 0

    def test_product_with_k_exact_in_float32(self):
        hi, _ = _split_constant(math.log(2) / 64.0, keep_bits=11)
        for k in (1, 7, 100, 1000, 4095):
            prod = k * Fraction(hi)
            assert Fraction(f32_round(float(prod))) == prod, k


class TestHorner32:
    def test_every_step_is_float32(self):
        coeffs = (f32_round(1.0), f32_round(0.5), f32_round(1 / 6))
        r = f32_round(0.01)
        v = _horner32(coeffs, r)
        assert f32_round(v) == v  # result is a float32 value

    def test_matches_manual_sequence(self):
        coeffs = (f32_round(2.0), f32_round(3.0))
        r = f32_round(0.5)
        want = f32_round(f32_round(3.0 * 0.5) + 2.0)
        assert _horner32(coeffs, r) == want


class TestFloat32LibmBehaviour:
    def test_results_are_float32_values(self):
        lib = Float32Libm("f", {"exp": 4, "ln": 3, "sinh": 4})
        for fn, x in [("exp", 1.5), ("ln", 42.0), ("sinh", -2.25)]:
            v = lib.call(fn, x)
            assert f32_round(v) == v, (fn, x)

    def test_moderate_accuracy(self):
        # wrong results happen (that is the point), but the library stays
        # within a few float32 ulps of the truth on normal inputs
        lib = Float32Libm("f", {"exp": 4})
        for i in range(50):
            x = -5.0 + i * 0.21
            got = lib.call("exp", x)
            want = math.exp(x)
            assert abs(got - want) <= 8 * 2 ** -24 * want, x

    def test_exp_argument_clamp(self):
        lib = Float32Libm("f", {"exp": 4})
        assert lib.call("exp", 1e30) == math.inf
        assert lib.call("exp", -1e30) == 0.0

    def test_sinh_saturates(self):
        lib = Float32Libm("f", {"sinh": 4, "cosh": 4})
        assert lib.call("sinh", 95.0) == math.inf
        assert lib.call("sinh", -95.0) == -math.inf
        assert lib.call("cosh", -95.0) == math.inf

    def test_sincospi_large_inputs(self):
        lib = Float32Libm("f", {"sinpi": 4, "cospi": 4})
        assert lib.call("sinpi", 2.0 ** 24) == 0.0
        assert lib.call("cospi", 2.0 ** 23 + 1.0) == -1.0
        assert lib.call("cospi", 2.0 ** 25) == 1.0
