"""Shape of the ``repro.api`` package after the serving/generation split.

The facade became a package in the serving-layer redesign: the
serving-time surface (``load``/``reload``/``functions``/``targets``/
``available``/``Library`` plus the lazy service entry points ``serve``/
``connect``/``ServiceClient``) lives in ``repro.api`` itself, the
generation-time surface in ``repro.api.generate``.  These tests freeze
that shape: every re-export resolves, the lazy attributes stay lazy
(an ``api.load`` user never pays for asyncio/shared-memory imports or
the oracle), and the legacy entry points keep warning.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro import api

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestPackageShape:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_serving_surface(self):
        assert {"Library", "load", "reload", "functions", "available",
                "targets", "serve", "connect",
                "ServiceClient"} <= set(api.__all__)
        assert callable(api.serve) and callable(api.connect)

    def test_service_client_is_the_serve_one(self):
        from repro.serve.client import ServiceClient

        assert api.ServiceClient is ServiceClient

    def test_generate_submodule(self):
        from repro.api.generate import generate_library

        assert api.generate.generate_library is generate_library

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            api.does_not_exist

    def test_import_api_does_not_import_serving_or_generation(self):
        """The lazy split is the point: ``import repro.api`` must not
        drag in the service stack or the generation pipeline."""
        code = (
            "import sys, repro.api\n"
            "bad = [m for m in sys.modules\n"
            "       if m.startswith(('repro.serve', 'repro.api.generate',\n"
            "                        'repro.core.lpsolver', 'asyncio'))]\n"
            "assert not bad, bad\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(_REPO, "src")
        subprocess.run([sys.executable, "-c", code], env=env, check=True)


class TestLegacyEntryPoints:
    def test_runtime_reload_alias_warns(self):
        from repro.libm import runtime

        with pytest.warns(DeprecationWarning, match="repro.api.reload"):
            fn = runtime.reload("exp", "float32")
        assert fn.evaluate(0.0) == 1.0

    def test_runtime_load_alias_warns(self):
        from repro.libm import runtime

        with pytest.warns(DeprecationWarning, match="repro.api.load"):
            runtime.load("exp", "float32")

    def test_facade_load_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            api.load("exp", target="float32")
