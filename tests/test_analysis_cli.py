"""The ``python -m repro lint`` / ``repro-lint`` CLI and baseline flow."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.analysis.cli import main as lint_main

pytestmark = pytest.mark.lint

REPO = Path(__file__).resolve().parent.parent
CORRUPT = REPO / "tests" / "data" / "corrupt_table.py"


def test_repo_is_clean_via_module_cli(capsys):
    """The acceptance criterion: repo at HEAD lints clean, exit 0."""
    assert repro_main(["lint", "--root", str(REPO)]) == 0
    assert "clean" in capsys.readouterr().out


def test_json_format(capsys):
    rc = lint_main(["--root", str(REPO), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["data_modules_checked"] == 18


def test_corrupt_table_fails(capsys):
    rc = lint_main(["--root", str(REPO), "--no-fplint",
                    "--table", str(CORRUPT), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["ok"] is False
    assert any(f["rule"].startswith("TC") for f in payload["findings"])


def _write_bad_module(root: Path) -> Path:
    pkg = root / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    bad = pkg / "bad.py"
    bad.write_text("from __future__ import annotations\n"
                   "import random\nrandom.shuffle([1])\n")
    return bad


class TestBaselineFlow:
    def test_grandfather_then_regress(self, tmp_path, capsys):
        bad = _write_bad_module(tmp_path)
        args = ["--root", str(tmp_path), "--no-tablecheck", str(bad)]
        assert lint_main(args) == 1  # fresh violation fails

        assert lint_main([*args, "--write-baseline"]) == 0
        baseline = tmp_path / "tools" / "fplint_baseline.json"
        assert baseline.exists()
        capsys.readouterr()

        assert lint_main(args) == 0  # grandfathered
        out = capsys.readouterr().out
        assert "1 baselined" in out

        # a *new* violation on another line still fails
        bad.write_text(bad.read_text() + "random.choice([1])\n")
        assert lint_main(args) == 1

    def test_stale_entries_reported(self, tmp_path, capsys):
        bad = _write_bad_module(tmp_path)
        args = ["--root", str(tmp_path), "--no-tablecheck", str(bad)]
        lint_main([*args, "--write-baseline"])
        bad.write_text("from __future__ import annotations\n")  # fixed
        capsys.readouterr()
        assert lint_main(args) == 0
        assert "stale baseline" in capsys.readouterr().out

    def test_no_baseline_flag(self, tmp_path, capsys):
        bad = _write_bad_module(tmp_path)
        args = ["--root", str(tmp_path), "--no-tablecheck", str(bad)]
        lint_main([*args, "--write-baseline"])
        capsys.readouterr()
        assert lint_main([*args, "--no-baseline"]) == 1


def test_text_report_shape(tmp_path, capsys):
    bad = _write_bad_module(tmp_path)
    rc = lint_main(["--root", str(tmp_path), "--no-tablecheck", str(bad)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "FP107" in out and "hint:" in out
    # the per-rule summary table comes from obs.report.format_table
    assert "rule" in out and "count" in out


def test_tools_run_lint_gate():
    """The CI gate mirrors the CLI: import it and run its main()."""
    import importlib.util
    spec = importlib.util.spec_from_file_location(
        "run_lint", REPO / "tools" / "run_lint.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert mod.main([]) == 0


class TestFixCLI:
    def _bad_literal(self, root: Path) -> Path:
        pkg = root / "src" / "repro" / "core"
        pkg.mkdir(parents=True)
        bad = pkg / "lit.py"
        bad.write_text("from __future__ import annotations\n"
                       "c = 88.722839355468751\n")
        return bad

    def test_fix_dry_run_prints_diff(self, tmp_path, capsys):
        bad = self._bad_literal(tmp_path)
        before = bad.read_text()
        rc = lint_main(["--root", str(tmp_path), "--fix", "--dry-run",
                        str(bad)])
        out = capsys.readouterr().out
        assert rc == 0
        assert bad.read_text() == before
        assert "+c = 88.72283935546875" in out
        assert "would fix 1 finding in 1 file" in out

    def test_fix_rewrites_and_lints_clean(self, tmp_path, capsys):
        bad = self._bad_literal(tmp_path)
        rc = lint_main(["--root", str(tmp_path), "--fix", str(bad)])
        assert rc == 0
        assert "fixed 1 finding in 1 file" in capsys.readouterr().out
        assert lint_main(["--root", str(tmp_path), "--no-tablecheck",
                          str(bad)]) == 0


class TestBaselineMaintenanceCLI:
    def test_prune_baseline_drops_stale_entries(self, tmp_path, capsys):
        bad = _write_bad_module(tmp_path)
        args = ["--root", str(tmp_path), "--no-tablecheck", str(bad)]
        lint_main([*args, "--write-baseline"])
        bad.write_text("from __future__ import annotations\n")  # fixed
        capsys.readouterr()
        # stale entries fail only when the gate's strict flag is on
        assert lint_main([*args, "--fail-stale"]) == 1
        assert "stale baseline" in capsys.readouterr().err
        assert lint_main([*args, "--prune-baseline"]) == 0
        out = capsys.readouterr().out
        assert "baseline pruned" in out and "stale" in out
        baseline = json.loads(
            (tmp_path / "tools" / "fplint_baseline.json").read_text())
        assert baseline == {}
        # once pruned, the strict gate passes again
        assert lint_main([*args, "--fail-stale"]) == 0

    def test_prune_keeps_live_entries(self, tmp_path, capsys):
        bad = _write_bad_module(tmp_path)
        args = ["--root", str(tmp_path), "--no-tablecheck", str(bad)]
        lint_main([*args, "--write-baseline"])
        capsys.readouterr()
        assert lint_main([*args, "--prune-baseline"]) == 0
        baseline = json.loads(
            (tmp_path / "tools" / "fplint_baseline.json").read_text())
        assert baseline  # still-firing findings stay grandfathered

    def test_prune_baseline_unit_missing_file(self, tmp_path):
        from repro.analysis.baseline import prune_baseline

        assert prune_baseline(tmp_path / "nope.json", []) == (0, 0)
