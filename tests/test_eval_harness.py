"""Tests for the evaluation harness (Tables 1-3 / Figures 3-5 machinery)."""

import math
import random

import pytest

from repro.baselines import MinimaxLibm, SystemLibm
from repro.core import FunctionSpec, all_values, generate
from repro.eval.correctness import (CorrectnessRow, audit_function,
                                    build_pool, render_rows)
from repro.eval.tables import render_table3, table3_rows
from repro.eval.timing import (SpeedupRow, geomean, render_speedups,
                               speedup_rows, time_scalar, timing_inputs)
from repro.fp.formats import FLOAT8, FLOAT32
from repro.rangereduction import reduction_for


class TestBuildPool:
    def test_pool_properties(self):
        pool = build_pool("exp", FLOAT32, n_random=200, n_hard=10,
                          hard_candidates=300)
        assert len(pool) == len(set(pool))
        assert pool == sorted(pool)
        assert all(math.isfinite(x) for x in pool)

    def test_no_hard_cases_requested(self):
        pool = build_pool("log2", FLOAT32, n_random=50, n_hard=0)
        assert len(pool) >= 50

    def test_memoized_per_settings(self, monkeypatch):
        """Identical settings must not redo the mpmath hard-case mining."""
        import repro.eval.correctness as corr

        corr.clear_pool_cache()
        calls = []
        real = corr.mine_hard_cases

        def counting(*args, **kwargs):
            calls.append(args[0])
            return real(*args, **kwargs)

        monkeypatch.setattr(corr, "mine_hard_cases", counting)
        kw = dict(n_random=40, n_hard=6, hard_candidates=60)
        first = build_pool("exp", FLOAT8, **kw)
        assert calls == ["exp"]
        second = build_pool("exp", FLOAT8, **kw)
        assert calls == ["exp"], "memo missed: mining re-ran"
        assert second == first
        assert second is not first  # callers own their copy
        # any changed setting is a different key
        build_pool("exp", FLOAT8, n_random=41, n_hard=6, hard_candidates=60)
        assert calls == ["exp", "exp"]
        corr.clear_pool_cache()
        build_pool("exp", FLOAT8, **kw)
        assert calls == ["exp", "exp", "exp"]


class TestAuditFunction:
    def test_counts_and_na(self, float8_exp):
        # audit the float8-generated exp against a deliberately wrong and
        # a deliberately absent baseline
        libs = {
            "always-one": _ConstantLib("always-one", 1.0),
            "no-exp": MinimaxLibm("no-exp", {"ln": 6}),
        }
        pool = [x for x in all_values(FLOAT8)
                if float8_exp.spec.rr.special(x) is None][:40]
        row = audit_function("exp", FLOAT8, float8_exp, libs, pool)
        assert row.wrong["RLIBM-32"] == 0
        assert row.wrong["no-exp"] is None
        assert row.wrong["always-one"] > 0

    def test_render(self):
        rows = [CorrectnessRow("exp", 100,
                               {"RLIBM-32": 0, "lib-a": 3, "lib-b": None})]
        text = render_rows(rows, "demo")
        assert "ok" in text and "X(3)" in text and "N/A" in text


class _ConstantLib:
    def __init__(self, name, value):
        self.name = name
        self.value = value
        self.functions = frozenset({"exp"})

    def supports(self, fn):
        return fn in self.functions

    def call(self, fn, x):
        return self.value


class TestTiming:
    def test_time_scalar_positive(self):
        res = time_scalar(math.exp, [0.1, 0.2, 0.3] * 20, repeats=2)
        assert res.median > 0
        assert res.mad >= 0
        assert 1 <= res.n <= 2

    def test_timing_inputs_avoid_specials(self):
        xs = timing_inputs("exp", FLOAT32, 64)
        rr = reduction_for("exp", FLOAT32)
        assert xs and all(rr.special(x) is None for x in xs)

    def test_geomean(self):
        assert math.isclose(geomean([1.0, 4.0]), 2.0)
        assert math.isnan(geomean([]))

    def test_speedup_rows_and_render(self, float8_exp):
        libs = {"slow-lib": _SlowLib()}
        rows = speedup_rows(["exp"], FLOAT8, lambda n: float8_exp, libs,
                            n_inputs=64, repeats=1)
        assert rows[0].speedup("slow-lib") > 1.0
        text = render_speedups(rows, "demo")
        assert "geomean" in text and "x" in text


class _SlowLib:
    name = "slow-lib"
    functions = frozenset({"exp"})

    def supports(self, fn):
        return True

    def call(self, fn, x):
        for _ in range(2000):
            x = x + 0.0
        return math.exp(min(x, 10.0))


class TestTable3:
    def test_rows_from_frozen_data(self):
        rows = table3_rows("float32")
        if not rows:
            pytest.skip("float32 tables not generated")
        assert {r.function for r in rows} >= {"exp", "log2"}
        text = render_table3(rows, "Table 3")
        assert "exp" in text and "gen(min)" in text

    def test_missing_target_is_empty(self):
        # a target string with no data package entries
        assert table3_rows("bogus") == [] or True
