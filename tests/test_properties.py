"""Cross-module property-based tests (hypothesis) on pipeline invariants.

These pin down the algebraic facts the pipeline's correctness argument
rests on: rounding is monotone and idempotent, rounding intervals tile
the real line, reduction/compensation is the identity up to the reduced
function, and generated piecewise polynomials stay inside their
constraints.
"""

import math
from fractions import Fraction

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.intervals import target_rounding_interval
from repro.fp.bits import next_double
from repro.fp.formats import FLOAT8, FLOAT16, FLOAT32
from repro.posit.format import POSIT8, POSIT16

f32 = st.floats(allow_nan=False, allow_infinity=False, width=32)
finite = st.floats(allow_nan=False, allow_infinity=False)


class TestRoundingProperties:
    @given(finite)
    @settings(max_examples=200)
    def test_rounding_idempotent(self, x):
        for fmt in (FLOAT8, FLOAT16, FLOAT32, POSIT8, POSIT16):
            once = fmt.round_double(x)
            assert fmt.round_double(once) == once or (
                once == 0.0 and fmt.round_double(once) == 0.0)

    @given(finite, finite)
    @settings(max_examples=200)
    def test_rounding_monotone(self, a, b):
        a, b = min(a, b), max(a, b)
        for fmt in (FLOAT16, FLOAT32, POSIT16):
            ra, rb = fmt.round_double(a), fmt.round_double(b)
            assert ra <= rb

    @given(finite)
    @settings(max_examples=150)
    def test_rounding_never_skips_a_value(self, x):
        """|round(x) - x| can never exceed the local value spacing."""
        fmt = FLOAT16
        bits = fmt.from_double(x)
        if fmt.is_inf(bits) or fmt.is_zero(bits):
            return
        v = fmt.to_fraction(bits)
        up = fmt.to_fraction(fmt.next_up(bits)) if \
            fmt.is_finite(fmt.next_up(bits)) else None
        dn = fmt.to_fraction(fmt.next_down(bits)) if \
            fmt.is_finite(fmt.next_down(bits)) else None
        q = Fraction(x)
        if up is not None and dn is not None:
            assert dn <= q <= up or abs(q - v) <= max(up - v, v - dn)


class TestIntervalTiling:
    """Adjacent rounding intervals must tile the doubles with no gap and
    no overlap — otherwise some polynomial output would round ambiguously
    or unreachably."""

    @pytest.mark.parametrize("fmt", [FLOAT8, POSIT8])
    def test_exhaustive_tiling(self, fmt):
        prev_hi = None
        limit = (fmt.inf_bits - 1) if fmt is FLOAT8 else fmt.maxpos_bits
        for n in range(-limit, limit + 1):
            bits = fmt.from_ordinal(n)
            iv = target_rounding_interval(fmt, bits)
            if prev_hi is not None:
                if iv.lo == 0.0 == iv.hi or prev_hi == 0.0:
                    # posit zero is a point interval; neighbours touch it
                    assert iv.lo >= prev_hi
                else:
                    assert iv.lo == next_double(prev_hi), (fmt, n)
            prev_hi = iv.hi

    @given(st.integers(min_value=-(2 ** 31 - 2 ** 23 - 2),
                       max_value=2 ** 31 - 2 ** 23 - 2))
    @settings(max_examples=150)
    def test_float32_adjacent_intervals(self, n):
        a = target_rounding_interval(FLOAT32, FLOAT32.from_ordinal(n))
        b = target_rounding_interval(FLOAT32, FLOAT32.from_ordinal(n + 1))
        assert b.lo == next_double(a.hi)


class TestReductionIdentities:
    @given(st.floats(min_value=-100.0, max_value=88.0, width=32))
    @settings(max_examples=150, deadline=None)
    def test_exp_identity(self, x):
        from repro.rangereduction import reduction_for
        rr = reduction_for("exp", FLOAT32)
        assume(rr.special(x) is None)
        red = rr.reduce(x)
        y = rr.compensate([math.exp(red.r)], red.ctx)
        assert math.isclose(y, math.exp(x), rel_tol=1e-9)

    @given(st.floats(min_value=2.0 ** -120, max_value=2.0 ** 120, width=32))
    @settings(max_examples=150, deadline=None)
    def test_ln_identity(self, x):
        from repro.rangereduction import reduction_for
        rr = reduction_for("ln", FLOAT32)
        assume(rr.special(x) is None)
        red = rr.reduce(x)
        y = rr.compensate([math.log1p(red.r)], red.ctx)
        assert math.isclose(y, math.log(x), rel_tol=1e-9, abs_tol=1e-12)

    @given(st.floats(min_value=-(2.0 ** 22), max_value=2.0 ** 22, width=32))
    @settings(max_examples=150, deadline=None)
    def test_sinpi_reduction_in_range(self, x):
        from repro.rangereduction import reduction_for
        rr = reduction_for("sinpi", FLOAT32)
        assume(rr.special(x) is None)
        red = rr.reduce(x)
        assert 0.0 <= red.r <= 1 / 512


class TestGeneratedPolynomialInvariants:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_float8_exp_matches_oracle_everywhere(self, seed):
        # random probing beyond the exhaustive tests (re-rounded doubles)
        import random

        from repro.core.validate import reference_bits
        from repro.core import FunctionSpec, all_values, generate
        # reuse one generated function via module-level cache
        global _F8EXP
        try:
            fn = _F8EXP
        except NameError:
            from repro.rangereduction import reduction_for
            fn = generate(FunctionSpec("exp", FLOAT8,
                                       reduction_for("exp", FLOAT8)),
                          list(all_values(FLOAT8)))
            _F8EXP = fn
        rng = random.Random(seed)
        x = FLOAT8.to_double(FLOAT8.from_double(rng.uniform(-20, 20)))
        assert fn.evaluate_bits(x) == reference_bits(fn.spec, x)


class TestShardProperties:
    """Exact-cover and seed-distinctness laws of repro.parallel.shards.

    Deliberately hypothesis-free (seeded random sweeps): these laws are
    what parallel/serial bit-equality rests on, so the cases themselves
    must be reproducible run to run.
    """

    def test_chunks_cover_every_index_exactly_once(self):
        import random

        from repro.parallel import plan_chunks

        rng = random.Random(2021)
        cases = [(0, 1, None), (1, 1, None), (1, 8, None), (7, 3, 2)]
        cases += [(rng.randrange(0, 5000), rng.randrange(1, 33),
                   rng.choice([None, rng.randrange(1, 700)]))
                  for _ in range(300)]
        for n, workers, chunk_size in cases:
            chunks = plan_chunks(n, workers, chunk_size)
            covered = [i for a, b in chunks for i in range(a, b)]
            assert covered == list(range(n)), (n, workers, chunk_size)
            assert all(a < b for a, b in chunks), "empty chunk"
            if chunk_size is None and n:
                sizes = [b - a for a, b in chunks]
                assert max(sizes) - min(sizes) <= 1, "unbalanced plan"

    def test_shards_match_chunks_and_carry_distinct_seeds(self):
        import random

        from repro.parallel import plan_chunks, plan_shards

        rng = random.Random(77)
        for _ in range(60):
            n = rng.randrange(0, 3000)
            workers = rng.randrange(1, 17)
            base = rng.randrange(0, 2 ** 32)
            shards = plan_shards(n, workers, base_seed=base)
            assert [(s.start, s.stop) for s in shards] \
                == plan_chunks(n, workers)
            assert [s.index for s in shards] == list(range(len(shards)))
            seeds = [s.seed for s in shards]
            assert len(set(seeds)) == len(seeds), "shard seed collision"

    def test_shard_seed_pairwise_distinct_and_stable(self):
        from repro.parallel import shard_seed

        for base in (0, 1, 7, 2021, 2 ** 31):
            seeds = [shard_seed(base, i) for i in range(5000)]
            assert len(set(seeds)) == len(seeds)
        # pinned: the mixing function is part of the reproducibility
        # contract — changing it silently would change every sharded
        # RNG stream across platforms
        assert shard_seed(2021, 0) == 14194592968292288002
        assert shard_seed(0, 0) == shard_seed(0, 0)
        assert shard_seed(0, 1) != shard_seed(1, 0)

    def test_empty_and_degenerate_plans(self):
        from repro.parallel import plan_chunks, plan_shards

        assert plan_chunks(0, 4) == []
        assert plan_shards(0, 4) == []
        assert plan_chunks(3, 100) == [(0, 1), (1, 2), (2, 3)]
        assert plan_chunks(5, 1, chunk_size=100) == [(0, 5)]
        import pytest

        with pytest.raises(ValueError):
            plan_chunks(-1, 2)
        with pytest.raises(ValueError):
            plan_chunks(5, 2, chunk_size=0)


class TestDifferentialEvaluation:
    """Scalar, batch-engine, and corpus replays agree bit-exactly.

    The bit-identity claim between ``evaluate_bits`` and the vectorized
    ``evaluate_bits_many`` is load-bearing for the adversarial audit
    (all replay paths must agree before a corpus failure means
    anything), so it gets its own property: arbitrary bit patterns,
    including specials, evaluated both ways.
    """

    @given(st.lists(st.integers(min_value=0, max_value=0xff),
                    min_size=1, max_size=48, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_float8_paths_agree_on_any_patterns(self, float8_exp, patterns):
        import numpy as np

        from repro.eval.adversarial.generators import input_value

        xs = [input_value(FLOAT8, b) for b in patterns]
        scalar = [float8_exp.evaluate_bits(x) for x in xs]
        batch = float8_exp.evaluate_bits_many(
            np.array(xs, dtype=np.float64)).tolist()
        assert scalar == batch

    @given(st.lists(st.integers(min_value=0, max_value=0xff),
                    min_size=1, max_size=48, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_posit8_paths_agree_on_any_patterns(self, posit8_exp, patterns):
        import numpy as np

        from repro.eval.adversarial.generators import input_value

        xs = [input_value(POSIT8, b) for b in patterns]
        scalar = [posit8_exp.evaluate_bits(x) for x in xs]
        batch = posit8_exp.evaluate_bits_many(
            np.array(xs, dtype=np.float64)).tolist()
        assert scalar == batch

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_committed_corpus_draws_replay_identically(self, data):
        """Random draws from the committed adversarial corpora: every
        path reproduces the frozen expected bits."""
        import numpy as np

        from repro.eval.adversarial import default_corpus_dir, list_corpora, \
            load_corpus
        from repro.eval.adversarial.generators import input_value
        from repro.libm.runtime import load_function
        from repro.libm.serialize import TARGETS_BY_NAME

        corpora = list_corpora(default_corpus_dir("."))
        assume(corpora)
        fn_name, target, path = data.draw(st.sampled_from(corpora))
        corpus = load_corpus(path)
        entries = data.draw(st.lists(st.sampled_from(corpus.entries),
                                     min_size=1, max_size=16, unique=True))
        fn = load_function(fn_name, target)
        fmt = TARGETS_BY_NAME[target]
        xs = [input_value(fmt, e.x_bits) for e in entries]
        scalar = [fn.evaluate_bits(x) for x in xs]
        batch = fn.evaluate_bits_many(np.array(xs, dtype=np.float64)).tolist()
        assert scalar == batch
        assert scalar == [e.want_bits for e in entries]
