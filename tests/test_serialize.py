"""Tests for freezing/thawing generated functions (repro.libm.serialize)."""

import math

import pytest

from repro.core import all_values
from repro.fp.formats import FLOAT8
from repro.libm.compact import decode
from repro.libm.serialize import (TARGETS_BY_NAME, function_from_dict,
                                  function_to_dict, render_module,
                                  render_module_legacy)
from repro.posit.format import POSIT8


def _exec_data(src: str) -> dict:
    """The frozen dict a rendered module carries, whichever the layout.

    A plain ``exec`` exposes ``COMPACT``, not the lazily decoded
    ``DATA`` — PEP 562 module ``__getattr__`` only fires on real module
    objects; legacy renderings expose the literal ``DATA`` directly.
    """
    ns: dict = {}
    exec(compile(src, "<generated>", "exec"), ns)
    return decode(ns["COMPACT"]) if "COMPACT" in ns else ns["DATA"]


class TestTargetsRegistry:
    def test_names_round_trip(self):
        for name, fmt in TARGETS_BY_NAME.items():
            assert str(fmt) == name


class TestRoundTrip:
    def test_float8_exp(self, float8_exp):
        data = function_to_dict(float8_exp)
        clone = function_from_dict(data)
        for x in all_values(FLOAT8):
            assert clone.evaluate_bits(x) == float8_exp.evaluate_bits(x)

    def test_two_function_reduction(self, float8_sinpi):
        data = function_to_dict(float8_sinpi)
        clone = function_from_dict(data)
        for x in all_values(FLOAT8):
            assert clone.evaluate_bits(x) == float8_sinpi.evaluate_bits(x)

    def test_posit_target(self, posit8_exp):
        data = function_to_dict(posit8_exp)
        clone = function_from_dict(data)
        for x in all_values(POSIT8):
            assert clone.evaluate_bits(x) == posit8_exp.evaluate_bits(x)

    def test_stats_preserved(self, float8_exp):
        data = function_to_dict(float8_exp)
        clone = function_from_dict(data)
        assert clone.stats.input_count == float8_exp.stats.input_count
        assert clone.stats.per_fn == float8_exp.stats.per_fn


class TestRenderModule:
    """render_module now emits the compact layout; same observable deal."""

    def test_renders_valid_python(self, float8_exp):
        data = function_to_dict(float8_exp)
        clone = function_from_dict(_exec_data(render_module(data)))
        for x in all_values(FLOAT8):
            assert clone.evaluate_bits(x) == float8_exp.evaluate_bits(x)

    def test_infinities_survive_rendering(self, float8_exp):
        # exp thresholds involve inf results; the pool must carry them
        src = render_module(function_to_dict(float8_exp))
        clone = function_from_dict(_exec_data(src))
        assert clone.evaluate(math.inf) == math.inf

    def test_docstring_mentions_function(self, float8_log2):
        src = render_module(function_to_dict(float8_log2))
        assert "log2" in src.splitlines()[0]

    def test_no_float_literals_in_source(self, float8_exp):
        # the whole point of the layout: nothing floaty to parse
        import ast

        src = render_module(function_to_dict(float8_exp))
        for node in ast.walk(ast.parse(src)):
            assert not (isinstance(node, ast.Constant)
                        and isinstance(node.value, float)), ast.dump(node)

    def test_compact_decode_is_bit_identical(self, float8_exp):
        from repro.libm.serialize import _deep_equal

        data = function_to_dict(float8_exp)
        assert _deep_equal(_exec_data(render_module(data)), data)

    def test_legacy_rendering_still_available(self, float8_exp):
        data = function_to_dict(float8_exp)
        src = render_module_legacy(data)
        assert "COMPACT" not in src
        clone = function_from_dict(_exec_data(src))
        for x in all_values(FLOAT8):
            assert clone.evaluate_bits(x) == float8_exp.evaluate_bits(x)


class TestFreezeGuard:
    """Both renderers verify their own output before returning it."""

    def test_good_data_passes_the_guard(self, float8_exp):
        # the guard runs inside render_module; no exception == verified
        assert render_module(function_to_dict(float8_exp))

    def test_lossy_repr_rejected_by_legacy(self, float8_exp):
        class LossyFloat(float):
            """A float whose repr silently drops precision."""

            def __repr__(self):
                return "0.1"

        data = function_to_dict(float8_exp)
        data["rr_state"]["_c"] = LossyFloat(0.25)
        with pytest.raises(ValueError, match="round-trip"):
            render_module_legacy(data)

    def test_float_subclass_rejected_by_compact(self, float8_exp):
        # the compact codec packs bit patterns, so a lying repr cannot
        # corrupt it — instead the encoder's strict typing refuses the
        # subclass outright (it must never guess at exotic semantics)
        class LossyFloat(float):
            def __repr__(self):
                return "0.1"

        data = function_to_dict(float8_exp)
        data["rr_state"]["_c"] = LossyFloat(0.25)
        with pytest.raises(ValueError):
            render_module(data)

    def test_structure_loss_rejected(self, float8_exp):
        class Shapeshifter(dict):
            """pprint renders the repr, which lies about the content."""

            def __repr__(self):
                return "{}"

        data = function_to_dict(float8_exp)
        data["stats"] = Shapeshifter(data["stats"])
        with pytest.raises(ValueError):
            render_module(data)
        with pytest.raises(ValueError, match="round-trip"):
            render_module_legacy(data)

    def test_shipped_tables_satisfy_the_guard(self):
        # the guards must never fire on data the pipeline actually froze
        import importlib

        for name in ("exp", "sinpi"):
            mod = importlib.import_module(f"repro.libm.data_float32.{name}")
            assert render_module(mod.DATA)
            assert render_module_legacy(mod.DATA)
