"""Observability across the fork boundary (satellite of PR 6).

Two contracts the telemetry subsystem leans on:

* **Counter conservation** — metrics incremented inside worker
  processes are absorbed back into the parent, so a 4-worker run's
  counters equal the serial run's exactly (gauges last-write-win and
  the executor's own utilization gauges ride alongside without
  breaking the equality).
* **Trace isolation** — workers detach the inherited trace sink
  (:func:`repro.obs.events.detach`), so a traced parallel run produces
  a single well-formed JSONL stream with no interleaved or torn lines
  from the children.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import metrics
from repro.parallel.executor import run_tasks

pytestmark = pytest.mark.parallel


def _counting_task(payload: int) -> int:
    """Module-level (picklable) task: bumps counters proportional to
    the payload, touches a histogram and a span."""
    metrics.counter("fork.calls").inc()
    metrics.counter("fork.items").inc(payload)
    metrics.histogram("fork.sizes").observe(float(payload))
    with obs.span("fork.work", payload=payload):
        obs.event("fork.tick", payload=payload)
    return payload * 2


PAYLOADS = [1, 2, 3, 4, 5, 6, 7, 8]


@pytest.fixture(autouse=True)
def _clean():
    obs.disable()
    metrics.reset()
    yield
    obs.disable()
    metrics.reset()


class TestCounterConservation:
    def test_four_workers_equal_serial_counters(self):
        results_serial = run_tasks(_counting_task, PAYLOADS, workers=1)
        serial = metrics.snapshot()

        metrics.reset()
        results_par = run_tasks(_counting_task, PAYLOADS, workers=4)
        parallel = metrics.snapshot()

        assert results_par == results_serial == [p * 2 for p in PAYLOADS]
        # the executor's utilization instruments are gauges/histograms
        # only, so the counter equality holds exactly
        assert parallel["counters"] == serial["counters"]
        assert parallel["counters"]["fork.calls"] == len(PAYLOADS)
        assert parallel["counters"]["fork.items"] == sum(PAYLOADS)

    def test_task_histograms_absorbed(self):
        run_tasks(_counting_task, PAYLOADS, workers=4)
        snap = metrics.snapshot()
        h = snap["histograms"]["fork.sizes"]
        assert h["count"] == len(PAYLOADS)
        assert h["sum"] == float(sum(PAYLOADS))

    def test_pool_gauges_published(self):
        run_tasks(_counting_task, PAYLOADS, workers=4)
        gauges = metrics.snapshot()["gauges"]
        assert gauges["parallel.pool.workers"] == 4.0
        assert gauges["parallel.pool.busy_s"] >= 0.0
        assert gauges["parallel.pool.wall_s"] > 0.0
        assert 0.0 <= gauges["parallel.pool.utilization"] <= 1.0
        # per-shard wall times landed in the executor's histogram
        assert metrics.snapshot()["histograms"]["parallel.shard_s"][
            "count"] == len(PAYLOADS)

    def test_serial_run_has_no_pool_gauges(self):
        run_tasks(_counting_task, PAYLOADS, workers=1)
        assert "parallel.pool.workers" not in [
            n for n, v in metrics.snapshot()["gauges"].items() if v]


class TestTraceIsolation:
    def test_parallel_trace_is_well_formed(self, tmp_path):
        p = tmp_path / "par.jsonl"
        obs.enable(p)
        run_tasks(_counting_task, PAYLOADS, workers=4)
        obs.disable()

        lines = p.read_text().splitlines()
        events = [json.loads(line) for line in lines]  # every line parses
        metas = [e for e in events if e["ev"] == "meta"]
        assert len(metas) == 1  # workers detached: no duplicate headers
        # the parent's span + one shard point per task are all present
        run_spans = [e for e in events
                     if e["ev"] == "span" and e["name"] == "parallel.run"]
        assert len(run_spans) == 1
        shards = [e for e in events
                  if e["ev"] == "point" and e["name"] == "parallel.shard"]
        assert len(shards) == len(PAYLOADS)
        assert all("shard_s" in s for s in shards)
        assert sorted(s["index"] for s in shards) == list(range(
            len(PAYLOADS)))
        # the workers' fork.work spans were detached, not interleaved
        assert not any(e.get("name") == "fork.work" for e in events)

    def test_serial_trace_keeps_task_spans(self, tmp_path):
        p = tmp_path / "serial.jsonl"
        obs.enable(p)
        run_tasks(_counting_task, PAYLOADS[:3], workers=1)
        obs.disable()
        events = [json.loads(line) for line in p.read_text().splitlines()]
        work = [e for e in events if e.get("name") == "fork.work"]
        assert len(work) == 3
