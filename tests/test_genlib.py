"""Tests for the 32-bit generation driver (repro.libm.genlib)."""

import math
import pathlib

import pytest

from repro.core import all_values, validate
from repro.fp.formats import FLOAT8, FLOAT32
from repro.libm.genlib import GEN_SETTINGS, GenSettings, generate_library, generate_one
from repro.libm.serialize import function_from_dict
from repro.posit.format import POSIT8
from repro.rangereduction import reduction_for
from repro.rangereduction.domains import boundary_centers, sampling_domain


def _tiny_settings():
    return GenSettings(base=2000, validation=500, hard_candidates=300,
                       hard_keep=30, boundary_radius=16, max_index_bits=6,
                       rounds=8, clean_rounds=1, final_check=400)


class TestSettings:
    def test_all_ten_functions_configured(self):
        assert set(GEN_SETTINGS) == {"ln", "log2", "log10", "exp", "exp2",
                                     "exp10", "sinh", "cosh", "sinpi",
                                     "cospi"}


class TestDomains:
    def test_log_domain_positive(self):
        rr = reduction_for("ln", FLOAT32)
        lo, hi = sampling_domain("ln", FLOAT32, rr)
        assert 0 < lo < hi

    def test_exp_domain_uses_thresholds(self):
        rr = reduction_for("exp", FLOAT32)
        lo, hi = sampling_domain("exp", FLOAT32, rr)
        assert lo == rr._lo_thr and hi == rr._hi_thr

    def test_posit_log_domain(self):
        rr = reduction_for("ln", POSIT8)
        lo, hi = sampling_domain("ln", POSIT8, rr)
        assert lo == float(POSIT8.minpos) and hi == float(POSIT8.maxpos)

    def test_centers_within_domain(self):
        rr = reduction_for("sinpi", FLOAT32)
        lo, hi = sampling_domain("sinpi", FLOAT32, rr)
        for c in boundary_centers("sinpi", rr, lo, hi):
            assert lo <= c <= hi


class TestGenerateOne:
    def test_small_format_end_to_end(self):
        logs = []
        fn, extra = generate_one("exp", FLOAT8, settings=_tiny_settings(),
                                 log=logs.append)
        assert extra["final_check"]["misses"] == 0
        assert validate(fn, all_values(FLOAT8)) == []
        assert any("generated" in line for line in logs)

    def test_quick_divides_budgets(self):
        fn, extra = generate_one("log2", FLOAT8, quick=True,
                                 settings=_tiny_settings(), log=lambda s: None)
        assert extra["final_check"]["n"] <= 400


class TestGenerateLibrary:
    def test_writes_loadable_modules(self, tmp_path):
        generate_library(["exp2"], FLOAT8, tmp_path,
                         seed=5, log=lambda s: None)
        path = tmp_path / "exp2.py"
        assert path.exists()
        # compact layout: a plain exec exposes COMPACT, not the lazily
        # decoded DATA (PEP 562 only fires on real module objects)
        from repro.libm.compact import decode

        ns = {}
        exec(compile(path.read_text(), str(path), "exec"), ns)
        data = decode(ns["COMPACT"])
        fn = function_from_dict(data)
        assert fn.evaluate(2.0) == 4.0
        assert "final_check" in data["stats"]
