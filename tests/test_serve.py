"""The serving layer: wire protocol, arena, coalescing, and the service.

The trust boundary under test (DESIGN.md, "Serving"): the service
answers **bit-identically to the scalar path** for every input, the
shared-memory arena is immutable and hash-pinned after publication,
and overload degrades by *refusing* work (``STATUS_SHED``), never by
answering wrong.

Tier-1 covers the composable pieces in-process: protocol framing
round-trips, arena publish/attach/verify, coalescer flush triggers
(size / deadline / drain), and admission-control budgets.  The
fork-heavy end-to-end suite — a real service with real workers, the
stratified differential against :class:`repro.api.Library`, the replay
of every committed adversarial corpus through the socket, worker
crash+restart, and deterministic shedding — is marked ``serve`` and
excluded from tier-1 by ``addopts`` (run it with ``-m serve``).
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import time

import numpy as np
import pytest

from repro import api
from repro.obs import metrics
from repro.serve import protocol, tables
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import Coalescer


# ---------------------------------------------------------------------------
# protocol


class TestProtocol:
    def test_request_round_trip_all_ops(self):
        cases = [
            (protocol.OP_EVAL, np.array([0.5, -1.25], dtype=np.float64)),
            (protocol.OP_EVAL_BITS, np.array([2.0], dtype=np.float64)),
            (protocol.OP_EVAL_FROM_BITS,
             np.array([0x3F800000, 0x7F800000], dtype=np.uint64)),
            (protocol.OP_PING, np.empty(0, dtype=np.float64)),
        ]
        for op, data in cases:
            payload = protocol.pack_request(7, op, "exp", "float32", data)
            req = protocol.unpack_request(payload)
            assert (req.req_id, req.op) == (7, op)
            assert (req.function, req.target) == ("exp", "float32")
            assert req.data.dtype == protocol.request_dtype(op)
            assert req.data.tobytes() == data.tobytes()

    def test_reply_round_trip(self):
        out = np.array([0x42, 0x43], dtype=np.uint64)
        rep = protocol.unpack_reply(
            protocol.pack_reply(9, protocol.STATUS_OK, out),
            protocol.OP_EVAL_BITS)
        assert rep.req_id == 9 and rep.status == protocol.STATUS_OK
        assert rep.data.tobytes() == out.tobytes()

        shed = protocol.unpack_reply(
            protocol.pack_reply(3, protocol.STATUS_SHED),
            protocol.OP_EVAL)
        assert shed.status == protocol.STATUS_SHED and shed.data.size == 0

        err = protocol.unpack_reply(
            protocol.pack_reply(4, protocol.STATUS_ERROR,
                                error="no such function"),
            protocol.OP_EVAL)
        assert err.status == protocol.STATUS_ERROR
        assert "no such function" in err.error

    def test_malformed_frames_raise(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_request(b"\x00")          # shorter than header
        with pytest.raises(protocol.ProtocolError):
            protocol.unpack_request(protocol.pack_request(
                1, protocol.OP_PING, "f", "t",
                np.empty(0, dtype=np.float64))[:-1] + b"\xff" * 8)
        with pytest.raises(protocol.ProtocolError):
            protocol.pack_request(1, protocol.OP_EVAL, "x" * 300, "t",
                                  np.empty(0, dtype=np.float64))

    def test_blocking_frames_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = protocol.pack_request(
                11, protocol.OP_EVAL, "ln", "float32",
                np.array([1.0, 2.0], dtype=np.float64))
            protocol.send_frame(a, payload)
            assert protocol.recv_frame(b) == payload
            with pytest.raises(protocol.ProtocolError):
                protocol.send_frame(a, b"x" * (protocol.MAX_FRAME + 1))
        finally:
            a.close()
            b.close()

    def test_async_read_frame_eof_returns_none(self):
        async def run():
            a, b = socket.socketpair()
            reader, writer = await asyncio.open_connection(sock=b)
            try:
                protocol.send_frame(a, b"hello")
                a.close()  # peer vanishes after one frame
                assert await protocol.read_frame(reader) == b"hello"
                assert await protocol.read_frame(reader) is None
            finally:
                writer.close()

        asyncio.run(run())


# ---------------------------------------------------------------------------
# shared-memory arena


class TestArena:
    def test_publish_attach_bit_identical(self):
        lib = api.load("exp", target="float32")
        xs = np.linspace(-40.0, 40.0, 4096)
        with tables.publish([("exp", "float32")]) as pub:
            arena = tables.attach(pub.name, expect_hash=pub.content_hash)
            try:
                bf = arena.batch_function(tables.arena_key("exp", "float32"))
                assert bf.evaluate_bits_many(xs).tobytes() == \
                    lib.evaluate_bits_batch(xs).tobytes()
                assert bf.evaluate_many(xs).tobytes() == \
                    lib.evaluate_batch(xs).tobytes()
            finally:
                arena.close()

    def test_attach_is_read_only(self):
        with tables.publish([("exp", "float32")]) as pub:
            arena = tables.attach(pub.name)
            try:
                key = tables.arena_key("exp", "float32")
                arena.batch_function(key)
                with pytest.raises(ValueError):
                    arena._arena[0] = 1.0
            finally:
                arena.close()

    def test_hash_pin_rejects_other_arena(self):
        with tables.publish([("exp", "float32")]) as pub:
            with pytest.raises(tables.ArenaError, match="expected"):
                tables.attach(pub.name, expect_hash="0" * 64)

    def test_torn_write_fails_content_hash(self):
        with tables.publish([("exp", "float32")]) as pub:
            pub.shm.buf[-8:] = b"\xff" * 8      # scribble on the arena
            with pytest.raises(tables.ArenaError, match="content hash"):
                tables.attach(pub.name)

    def test_attach_unknown_name(self):
        with pytest.raises(tables.ArenaError, match="no shared-memory"):
            tables.attach("rlserve-does-not-exist")

    def test_decoder_matches_input_value(self):
        from repro.eval.adversarial.generators import input_value
        from repro.posit.format import POSIT32

        with tables.publish([("exp", "posit32")]) as pub:
            arena = tables.attach(pub.name)
            try:
                dec = arena.decoder(tables.arena_key("exp", "posit32"))
                bits = np.array([0, 1, 0x40000000, 0x80000000, 0xFFFFFFFF],
                                dtype=np.uint64)
                got = dec(bits)
                for b, g in zip(bits.tolist(), got.tolist()):
                    assert np.float64(input_value(POSIT32, b)).tobytes() \
                        == np.float64(g).tobytes()
            finally:
                arena.close()


# ---------------------------------------------------------------------------
# coalescer


def _run_coalescer(body):
    """Drive a Coalescer with a recording fake dispatch on a fresh loop."""
    batches: list[np.ndarray] = []

    async def dispatch(key, op, data):
        batches.append(data)
        return data * 2.0

    async def main():
        co = Coalescer(dispatch, max_batch=8, max_delay_s=0.01)
        return await body(co)

    return asyncio.run(main()), batches


class TestCoalescer:
    def test_size_trigger_concatenates_and_slices(self):
        before = metrics.counter("serve.coalesce.flush.size").value

        async def body(co):
            f1 = co.submit("k", protocol.OP_EVAL,
                           np.array([1.0, 2.0, 3.0]))
            f2 = co.submit("k", protocol.OP_EVAL,
                           np.array([4.0, 5.0, 6.0, 7.0, 8.0]))
            return await asyncio.gather(f1, f2)

        (r1, r2), batches = _run_coalescer(body)
        assert len(batches) == 1 and len(batches[0]) == 8  # one big batch
        assert r1.tolist() == [2.0, 4.0, 6.0]
        assert r2.tolist() == [8.0, 10.0, 12.0, 14.0, 16.0]
        assert metrics.counter("serve.coalesce.flush.size").value > before

    def test_deadline_trigger_flushes_partial_batch(self):
        before = metrics.counter("serve.coalesce.flush.deadline").value

        async def body(co):
            fut = co.submit("k", protocol.OP_EVAL, np.array([1.5]))
            return await asyncio.wait_for(fut, timeout=2.0)

        out, batches = _run_coalescer(body)
        assert out.tolist() == [3.0] and len(batches[0]) == 1
        assert metrics.counter("serve.coalesce.flush.deadline").value > before

    def test_drain_flushes_without_waiting(self):
        async def body(co):
            fut = co.submit("k", protocol.OP_EVAL, np.array([2.0]))
            await co.drain()
            assert fut.done()               # no deadline wait needed
            return fut.result()

        out, _ = _run_coalescer(body)
        assert out.tolist() == [4.0]

    def test_separate_keys_never_share_a_batch(self):
        async def body(co):
            fa = co.submit("a", protocol.OP_EVAL, np.array([1.0]))
            fb = co.submit("b", protocol.OP_EVAL, np.array([10.0]))
            await co.drain()
            return await asyncio.gather(fa, fb)

        (ra, rb), batches = _run_coalescer(body)
        assert len(batches) == 2
        assert ra.tolist() == [2.0] and rb.tolist() == [20.0]

    def test_dispatch_failure_fails_every_request(self):
        async def dispatch(key, op, data):
            raise RuntimeError("worker exploded")

        async def main():
            co = Coalescer(dispatch, max_batch=8, max_delay_s=0.001)
            f1 = co.submit("k", protocol.OP_EVAL, np.array([1.0]))
            f2 = co.submit("k", protocol.OP_EVAL, np.array([2.0]))
            await co.drain()
            for fut in (f1, f2):
                with pytest.raises(RuntimeError, match="worker exploded"):
                    await fut

        asyncio.run(main())


# ---------------------------------------------------------------------------
# admission control


class TestAdmission:
    def test_lane_budget_sheds_then_recovers(self):
        adm = AdmissionController(max_pending_evals=100,
                                  max_client_inflight=10)
        assert adm.admit(1, 60)
        assert not adm.admit(2, 60)          # 120 > 100: shed
        adm.release(1, 60)
        assert adm.admit(2, 60)              # budget returned

    def test_client_inflight_cap(self):
        adm = AdmissionController(max_pending_evals=10_000,
                                  max_client_inflight=2)
        before = metrics.counter("serve.shed.client_cap").value
        assert adm.admit(7, 1) and adm.admit(7, 1)
        assert not adm.admit(7, 1)           # third in-flight: shed
        assert adm.admit(8, 1)               # other clients unaffected
        assert metrics.counter("serve.shed.client_cap").value == before + 1
        adm.release(7, 1)
        assert adm.admit(7, 1)

    def test_forget_drops_disconnected_client(self):
        adm = AdmissionController(max_client_inflight=1)
        assert adm.admit(5, 1)
        adm.forget(5)
        assert adm.admit(5, 1)


# ---------------------------------------------------------------------------
# the real service (fork-heavy: -m serve)


def _random_bits_inputs(n, seed):
    """float64 inputs drawn from random float32 bit patterns — covers
    every special class (NaN, infinities, denormals, out-of-domain)."""
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 1 << 32, n, dtype=np.uint64).astype(np.uint32)
    with np.errstate(invalid="ignore"):      # signaling NaNs in the draw
        return bits.view(np.float32).astype(np.float64)


@pytest.fixture(scope="module")
def svc_all():
    """One service publishing every shipped (function, target) pair."""
    from repro.serve import serve

    svc = serve(None, targets=("float32", "posit32"), workers=2)
    yield svc
    t0 = time.perf_counter()
    svc.close()
    assert time.perf_counter() - t0 < 10.0, "shutdown blew the deadline"


@pytest.mark.serve
class TestServiceEndToEnd:
    def test_ping(self, svc_all):
        with svc_all.connect("exp") as client:
            assert client.ping()

    @pytest.mark.parametrize("fn_name", ["exp", "log2", "sinh", "cospi"])
    def test_float32_stratified_bit_identical(self, svc_all, fn_name):
        lib = api.load(fn_name, target="float32")
        xs = _random_bits_inputs(2000, seed=hash(fn_name) % 1000)
        with svc_all.connect(fn_name, "float32") as client:
            got_bits = client.evaluate_bits_batch(xs)
            got_vals = client.evaluate_batch(xs)
        assert got_bits.tobytes() == lib.evaluate_bits_batch(xs).tobytes()
        assert got_vals.tobytes() == lib.evaluate_batch(xs).tobytes()

    @pytest.mark.parametrize("fn_name", ["exp", "log10", "cosh"])
    def test_posit32_stratified_bit_identical(self, svc_all, fn_name):
        lib = api.load(fn_name, target="posit32")
        rng = np.random.default_rng(hash(fn_name) % 1000)
        xs = rng.uniform(-30.0, 30.0, 2000)
        with svc_all.connect(fn_name, "posit32") as client:
            got = client.evaluate_bits_batch(xs)
        assert got.tobytes() == lib.evaluate_bits_batch(xs).tobytes()

    def test_all_adversarial_corpora_replay(self, svc_all):
        """Every committed hostile input, through the socket, bit-exact."""
        from repro.eval.adversarial import default_corpus_dir, \
            list_corpora, load_corpus

        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        corpora = list_corpora(default_corpus_dir(repo))
        assert len(corpora) >= 18
        for function, target, path in corpora:
            corpus = load_corpus(path)
            x = np.array([e.x_bits for e in corpus], dtype=np.uint64)
            want = np.array([e.want_bits for e in corpus], dtype=np.uint64)
            with svc_all.connect(function, target) as client:
                got = client.evaluate_bits_from_bits(x)
            bad = np.nonzero(got != want)[0]
            assert bad.size == 0, (
                f"{function}.{target}: {bad.size}/{len(corpus)} serving "
                f"replies diverge from the frozen corpus")

    def test_unknown_function_is_an_error_not_a_hang(self, svc_all):
        from repro.serve import ServiceClient, ServiceError

        with ServiceClient("tanh", "float32",
                           address=svc_all.address) as client:
            with pytest.raises(ServiceError):
                client.evaluate_batch(np.array([1.0]))

    def test_doubles_path_matches_bits_path(self, svc_all):
        lib = api.load("ln", target="float32")
        xs = np.array([0.5, 1.0, 2.718281828459045, 1e30, -1.0])
        with svc_all.connect("ln") as client:
            vals = client.evaluate_batch(xs)
        assert vals.tobytes() == lib.evaluate_batch(xs).tobytes()


@pytest.mark.serve
class TestServiceFailureModes:
    def test_worker_crash_is_contained(self):
        """SIGKILL a worker mid-service: the pool re-forks, the retried
        request still answers bit-identically against the same arena."""
        from repro.serve import serve

        lib = api.load("exp", target="float32")
        xs = np.linspace(-10.0, 10.0, 512)
        crashes = metrics.counter("serve.worker.crashes")
        before = crashes.value
        with serve(["exp"], targets=("float32",), workers=2) as svc:
            with svc.connect("exp") as client:
                first = client.evaluate_bits_batch(xs)
                victims = list(svc._pool._pool._processes)
                os.kill(victims[0], signal.SIGKILL)
                second = client.evaluate_bits_batch(xs)
        assert first.tobytes() == lib.evaluate_bits_batch(xs).tobytes()
        assert second.tobytes() == first.tobytes()
        assert crashes.value >= before + 1

    def test_saturation_sheds_deterministically(self):
        """A request larger than the lane budget is refused outright;
        the client surfaces ServiceOverloaded after its retries."""
        from repro.serve import ServiceOverloaded, serve

        shed = metrics.counter("serve.shed")
        before = shed.value
        with serve(["exp"], targets=("float32",), workers=1,
                   max_pending_evals=64) as svc:
            with svc.connect("exp", chunk=128, shed_retries=1,
                             shed_backoff_s=0.001) as client:
                with pytest.raises(ServiceOverloaded):
                    client.evaluate_batch(np.zeros(128))
                # within budget still answers correctly after shedding
                assert client.evaluate(0.0) == 1.0
        assert shed.value > before
