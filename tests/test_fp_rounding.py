"""Tests for rounding intervals, Algorithm 1 (repro.fp.rounding)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.fp.bits import next_double, prev_double
from repro.fp.formats import BFLOAT16, FLOAT8, FLOAT16, FLOAT32
from repro.fp.rounding import RoundingInterval, overflow_threshold, rounding_interval


class TestRoundingIntervalObject:
    def test_contains(self):
        iv = RoundingInterval(1.0, 2.0)
        assert 1.0 in iv and 2.0 in iv and 1.5 in iv
        assert 0.999 not in iv and 2.001 not in iv

    def test_intersect(self):
        a = RoundingInterval(0.0, 2.0)
        b = RoundingInterval(1.0, 3.0)
        assert a.intersect(b) == RoundingInterval(1.0, 2.0)

    def test_intersect_disjoint_is_none(self):
        assert RoundingInterval(0.0, 1.0).intersect(
            RoundingInterval(2.0, 3.0)) is None

    def test_width(self):
        assert RoundingInterval(1.0, 3.5).width == 2.5


class TestOverflowThreshold:
    def test_float32_value(self):
        assert overflow_threshold(FLOAT32) == 3.4028235677973366e38

    def test_threshold_rounds_to_inf(self):
        thr = overflow_threshold(FLOAT32)
        assert FLOAT32.round_double(thr) == math.inf
        assert FLOAT32.round_double(prev_double(thr)) == float(FLOAT32.max_value)


def _defining_property(fmt, y_bits):
    """The interval is exactly the preimage of y under RN_T (boundary check)."""
    iv = rounding_interval(fmt, y_bits)
    y_val = fmt.to_double(y_bits)

    def rounds_to_y(v):
        got = fmt.from_double(v)
        if fmt.is_zero(y_bits):
            return fmt.is_zero(got)
        return got == y_bits

    assert rounds_to_y(iv.lo), (y_val, iv)
    assert rounds_to_y(iv.hi), (y_val, iv)
    if iv.lo != -math.inf:
        assert not rounds_to_y(prev_double(iv.lo)), (y_val, iv)
    if iv.hi != math.inf:
        assert not rounds_to_y(next_double(iv.hi)), (y_val, iv)


class TestIntervalCorrectness:
    def test_exhaustive_float8(self):
        for bits in FLOAT8.enumerate_finite():
            _defining_property(FLOAT8, bits)
        _defining_property(FLOAT8, FLOAT8.inf_bits)
        _defining_property(FLOAT8, FLOAT8.inf_bits | FLOAT8.sign_mask)

    @pytest.mark.parametrize("fmt", [FLOAT16, BFLOAT16, FLOAT32])
    def test_interesting_values(self, fmt):
        interesting = [
            0, 1, 2,                                     # zero and subnormals
            (1 << fmt.mbits) - 1, 1 << fmt.mbits,        # subnormal/normal edge
            fmt.from_fraction(1), fmt.from_fraction(1) + 1,
            fmt.inf_bits - 1,                            # largest finite
            fmt.inf_bits,                                # +inf
            fmt.sign_mask | 1, fmt.sign_mask | fmt.from_fraction(1),
            fmt.sign_mask | (fmt.inf_bits - 1),
            fmt.sign_mask | fmt.inf_bits,                # -inf
        ]
        for bits in interesting:
            _defining_property(fmt, bits)

    @given(st.integers(min_value=-(2 ** 31 - 2 ** 23 - 1),
                       max_value=2 ** 31 - 2 ** 23 - 1))
    @settings(max_examples=200)
    def test_float32_random_ordinals(self, n):
        _defining_property(FLOAT32, FLOAT32.from_ordinal(n))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            rounding_interval(FLOAT32, FLOAT32.nan_bits)

    def test_zero_interval_symmetric(self):
        iv = rounding_interval(FLOAT32, 0)
        assert iv.lo == -iv.hi
        assert 0.0 in iv

    def test_even_value_includes_midpoints(self):
        # 1.0 has an even mantissa: both boundary midpoints round to it
        iv = rounding_interval(FLOAT32, FLOAT32.from_double(1.0))
        assert FLOAT32.round_double(iv.lo) == 1.0
        assert FLOAT32.round_double(iv.hi) == 1.0
        # odd neighbour: its interval excludes the shared midpoints, so the
        # two intervals are disjoint yet adjacent
        odd = FLOAT32.from_double(1.0) + 1
        iv2 = rounding_interval(FLOAT32, odd)
        assert iv2.lo == next_double(iv.hi)
