"""Benchmark registry, runner, trajectory store, and regression gate.

These tests drive :mod:`repro.obs.bench` with synthetic benchmarks (the
real ones live in ``benchmarks/`` and are exercised by
``python -m repro bench run``): registration and selection, floor and
gate semantics, error isolation, the append-only trajectory store, and
the k·MAD drift detector — including the acceptance criterion that an
injected 2x slowdown is flagged while ordinary noise is not.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics
from repro.obs import bench as B

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _clean_registry():
    saved = dict(B.REGISTRY)
    B.REGISTRY.clear()
    metrics.reset()
    yield
    B.REGISTRY.clear()
    B.REGISTRY.update(saved)
    metrics.reset()


def _record(ts, benches):
    """A minimal synthetic trajectory record."""
    return {
        "schema": B.SCHEMA_VERSION, "ts": ts, "sha": "abc1234",
        "host": "testhost", "suite": "quick", "env": {},
        "benchmarks": {
            name: {"suite": "quick", "wall_s": m.pop("wall_s", 1.0),
                   "ok": m.pop("ok", True), "gauges": m,
                   "floor_failures": [], "metrics": {}}
            for name, m in benches.items()
        },
    }


class TestRegistry:
    def test_register_and_select(self):
        @B.benchmark("alpha", suite="quick")
        def alpha():
            return {"x": 1.0}

        @B.benchmark("beta", suite="paper", floors={"y": 2.0})
        def beta():
            return {"y": 3.0}

        assert set(B.REGISTRY) == {"alpha", "beta"}
        assert [b.name for b in B.select(suite="quick")] == ["alpha"]
        assert [b.name for b in B.select(suite="all")] == ["alpha", "beta"]
        assert [b.name for b in B.select(names=["beta"])] == ["beta"]
        assert B.suites() == ["paper", "quick"]

    def test_select_unknown(self):
        with pytest.raises(KeyError):
            B.select(names=["nope"])
        with pytest.raises(KeyError):
            B.select(suite="nope")

    def test_reregistration_replaces(self):
        @B.benchmark("dup")
        def one():
            return {"v": 1.0}

        @B.benchmark("dup")
        def two():
            return {"v": 2.0}

        assert B.REGISTRY["dup"].func is two

    def test_gate_controls_floors(self):
        b = B.Benchmark("g", lambda: {}, gate=lambda: False)
        assert not b.floors_apply()
        assert B.Benchmark("g2", lambda: {}).floors_apply()


class TestRunner:
    def test_run_selected_builds_record(self):
        @B.benchmark("ok_bench", suite="quick")
        def ok_bench():
            metrics.counter("side.effect").inc()
            return {"speed": 2.0}

        results, record = B.run_selected(B.select(suite="quick"),
                                         suite_label="quick")
        (r,) = results
        assert r.ok and r.gauges == {"speed": 2.0}
        assert r.wall_s > 0
        assert r.metrics["counters"] == {"side.effect": 1}
        slot = record["benchmarks"]["ok_bench"]
        assert slot["ok"] and slot["gauges"] == {"speed": 2.0}
        assert record["schema"] == B.SCHEMA_VERSION
        assert {"ts", "sha", "host", "suite", "env"} <= set(record)
        assert record["env"].get("cpus", 0) >= 1

    def test_failing_bench_does_not_stop_run(self):
        @B.benchmark("boom", suite="quick")
        def boom():
            raise RuntimeError("kaput")

        @B.benchmark("fine", suite="quick")
        def fine():
            return {"v": 1.0}

        results, record = B.run_selected(B.select(suite="quick"), "quick")
        by_name = {r.name: r for r in results}
        assert not by_name["boom"].ok
        assert "kaput" in by_name["boom"].error
        assert by_name["fine"].ok
        assert "error" in record["benchmarks"]["boom"]

    def test_floor_failure_detected(self):
        @B.benchmark("floored", floors={"speed": 10.0})
        def floored():
            return {"speed": 3.0}

        results, _ = B.run_selected(B.select(suite="all"), "all")
        assert results[0].floor_failures
        assert "below floor" in results[0].floor_failures[0]

    def test_missing_floor_gauge_flagged(self):
        @B.benchmark("nogauge", floors={"speed": 1.0}, gate=lambda: True)
        def nogauge():
            return {}

        results, _ = B.run_selected(B.select(suite="all"), "all")
        assert "gauge missing" in results[0].floor_failures[0]

    def test_gated_floor_skipped(self):
        @B.benchmark("gated", floors={"speed": 10.0}, gate=lambda: False)
        def gated():
            return {"speed": 1.0}

        results, _ = B.run_selected(B.select(suite="all"), "all")
        assert results[0].floor_failures == []

    def test_tracked_metrics_include_wall(self):
        r = B.BenchResult("b", "quick", 1.5, {"g": 2.0}, {})
        assert r.tracked_metrics() == {"wall_s": 1.5, "g": 2.0}


class TestTrajectory:
    def test_append_only_and_load(self, tmp_path):
        p = tmp_path / "BENCH_testhost.json"
        B.append_record(_record(1.0, {"b": {"wall_s": 1.0}}), p)
        B.append_record(_record(2.0, {"b": {"wall_s": 1.1}}), p)
        records = B.load_trajectory(p)
        assert [r["ts"] for r in records] == [1.0, 2.0]
        # append-only: a third append leaves the first two lines intact
        before = p.read_text().splitlines()
        B.append_record(_record(3.0, {"b": {"wall_s": 0.9}}), p)
        assert p.read_text().splitlines()[:2] == before

    def test_load_history_prefers_own_host(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HOST", "me")
        B.append_record(_record(1.0, {"b": {}}),
                        tmp_path / "BENCH_me.json")
        B.append_record(_record(2.0, {"b": {}}),
                        tmp_path / "BENCH_other.json")
        assert len(B.load_history(tmp_path)) == 1

    def test_load_history_merges_foreign_hosts(self, tmp_path, monkeypatch):
        # CI machine with an unknown hostname: all BENCH_*.json anchor
        monkeypatch.setenv("REPRO_BENCH_HOST", "fresh-ci-box")
        B.append_record(_record(2.0, {"b": {}}),
                        tmp_path / "BENCH_a.json")
        B.append_record(_record(1.0, {"b": {}}),
                        tmp_path / "BENCH_b.json")
        records = B.load_history(tmp_path)
        assert [r["ts"] for r in records] == [1.0, 2.0]

    def test_bad_line_raises(self, tmp_path):
        p = tmp_path / "BENCH_x.json"
        p.write_text("{}\nnot json\n")
        with pytest.raises(ValueError, match="bad trajectory line"):
            B.load_trajectory(p)

    def test_host_label_sanitized(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HOST", "we ird/host!")
        assert B.host_label() == "we-ird-host"


class TestDirections:
    @pytest.mark.parametrize("name,want", [
        ("wall_s", "lower"), ("eval_ns", "lower"), ("time_total", "lower"),
        ("speedup", "higher"), ("speedup_4", "higher"),
        ("oracle_hit_rate", "higher"), ("batch_eps", "higher"),
        ("utilization", "higher"),
        ("eval_mad", None), ("functions", None), ("constraints", None),
    ])
    def test_metric_direction(self, name, want):
        assert B.metric_direction(name) == want


class TestCompare:
    def _history(self, walls, speedups):
        return [_record(float(i), {"b": {"wall_s": w, "speedup": s}})
                for i, (w, s) in enumerate(zip(walls, speedups))]

    def test_injected_2x_slowdown_is_flagged(self):
        # acceptance criterion: vs a single committed record, a 2x
        # synthetic slowdown must trip the gate
        history = self._history([1.0, 2.0], [10.0, 10.0])
        regs = B.compare(history)
        assert any(r.metric == "wall_s" and r.direction == "lower"
                   for r in regs)
        assert "above the trailing median" in regs[0].describe()

    def test_noise_within_rel_floor_passes(self):
        history = self._history([1.0, 1.1], [10.0, 9.5])
        assert B.compare(history) == []

    def test_speedup_drop_is_flagged(self):
        history = self._history([1.0] * 4, [10.0, 10.1, 9.9, 4.0])
        regs = B.compare(history)
        assert any(r.metric == "speedup" and r.direction == "higher"
                   for r in regs)

    def test_tight_window_catches_small_drift(self):
        # eight quiet records then +30%: the MAD envelope is tiny, the
        # rel_floor (25%) is what the drift must clear — and it does
        walls = [1.0, 1.01, 0.99, 1.0, 1.02, 0.98, 1.0, 1.01, 1.3]
        history = self._history(walls, [10.0] * 9)
        regs = B.compare(history)
        assert any(r.metric == "wall_s" for r in regs)

    def test_explicit_candidate(self):
        history = self._history([1.0, 1.0], [10.0, 10.0])
        cand = _record(9.0, {"b": {"wall_s": 5.0, "speedup": 10.0}})
        regs = B.compare(history, candidate=cand)
        assert regs and regs[0].value == 5.0
        # with an explicit candidate the full history is the baseline
        assert regs[0].n_history == 2

    def test_new_benchmark_passes(self):
        history = self._history([1.0], [10.0])
        cand = _record(9.0, {"newbie": {"wall_s": 100.0}})
        assert B.compare(history, candidate=cand) == []

    def test_failed_benchmarks_are_skipped(self):
        history = [_record(1.0, {"b": {"wall_s": 1.0}}),
                   _record(2.0, {"b": {"wall_s": 99.0, "ok": False}})]
        assert B.compare(history) == []

    def test_empty_history(self):
        assert B.compare([]) == []

    def test_window_limits_baseline(self):
        # ancient fast records beyond the window must not dominate
        walls = [0.1] * 10 + [1.0] * 8 + [1.05]
        history = self._history(walls, [10.0] * 19)
        assert B.compare(history, window=8) == []


class TestCli:
    def test_compare_exit_codes(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_BENCH_HOST", "testhost")
        root = tmp_path
        p = root / "BENCH_testhost.json"
        B.append_record(_record(1.0, {"b": {"wall_s": 1.0}}), p)
        # one record, nothing to compare against: clean exit
        assert main(["bench", "compare", "--dir", str(root)]) == 0
        B.append_record(_record(2.0, {"b": {"wall_s": 1.02}}), p)
        assert main(["bench", "compare", "--dir", str(root)]) == 0
        B.append_record(_record(3.0, {"b": {"wall_s": 2.1}}), p)
        assert main(["bench", "compare", "--dir", str(root)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_compare_candidate_file(self, tmp_path, monkeypatch):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_BENCH_HOST", "testhost")
        B.append_record(_record(1.0, {"b": {"wall_s": 1.0}}),
                        tmp_path / "BENCH_testhost.json")
        cand = tmp_path / "cand.json"
        cand.write_text(json.dumps(
            _record(2.0, {"b": {"wall_s": 2.0}})))
        assert main(["bench", "compare", "--dir", str(tmp_path),
                     "--candidate", str(cand)]) == 1

    def test_compare_no_records(self, tmp_path, monkeypatch):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_BENCH_HOST", "testhost")
        assert main(["bench", "compare", "--dir", str(tmp_path)]) == 2

    def test_history_renders(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_BENCH_HOST", "testhost")
        p = tmp_path / "BENCH_testhost.json"
        B.append_record(_record(1.0, {"b": {"wall_s": 1.0}}), p)
        assert main(["bench", "history", "--dir", str(tmp_path)]) == 0
        assert "abc1234" in capsys.readouterr().out
        assert main(["bench", "history", "--dir", str(tmp_path),
                     "--benchmark", "b", "--metric", "wall_s"]) == 0

    def test_export_from_trajectory(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_BENCH_HOST", "testhost")
        rec = _record(1.0, {"b": {"wall_s": 1.0}})
        rec["benchmarks"]["b"]["metrics"] = {
            "counters": {"lp.solves": 5}, "gauges": {}, "histograms": {}}
        B.append_record(rec, tmp_path / "BENCH_testhost.json")
        assert main(["bench", "export", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert 'repro_lp_solves_total{name="lp.solves"} 5' in out
        assert out.rstrip().endswith("# EOF")

    def test_report_without_records(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_BENCH_HOST", "testhost")
        (tmp_path / "benchmarks").mkdir()
        assert main(["report", "--dir", str(tmp_path)]) == 0
        assert "no trajectory records" in capsys.readouterr().out

    def test_report_with_records(self, tmp_path, capsys, monkeypatch):
        from repro.__main__ import main
        monkeypatch.setenv("REPRO_BENCH_HOST", "testhost")
        p = tmp_path / "BENCH_testhost.json"
        B.append_record(_record(1.0, {"b": {"wall_s": 1.0}}), p)
        B.append_record(_record(2.0, {"b": {"wall_s": 5.0}}), p)
        assert main(["report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "latest trajectory record" in out
        assert "DRIFT" in out
