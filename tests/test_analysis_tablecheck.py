"""tablecheck: the shipped tables pass, corrupted tables fail."""

from __future__ import annotations

import copy
import importlib
import time
from pathlib import Path

import pytest

from repro.analysis import check_data, run_tablecheck
from repro.analysis.tablecheck import DATA_PACKAGES, check_package
from repro.libm.runtime import FLOAT32_FUNCTIONS, POSIT32_FUNCTIONS

pytestmark = pytest.mark.lint

CORRUPT = Path(__file__).parent / "data" / "corrupt_table.py"


@pytest.fixture()
def exp_data():
    """A mutable deep copy of the shipped float32 exp table."""
    mod = importlib.import_module("repro.libm.data_float32.exp")
    return copy.deepcopy(mod.DATA)


class TestShippedTables:
    def test_all_shipped_modules_pass(self):
        t0 = time.perf_counter()
        n, findings = run_tablecheck()
        elapsed = time.perf_counter() - t0
        assert findings == []
        assert n == len(FLOAT32_FUNCTIONS) + len(POSIT32_FUNCTIONS) == 18
        # acceptance bound from ISSUE 2; typically well under a second
        assert elapsed < 5.0

    def test_per_package_counts(self):
        n32, f32 = check_package(DATA_PACKAGES[0])
        np32, fp32 = check_package(DATA_PACKAGES[1])
        assert (n32, np32) == (10, 8)
        assert f32 == [] and fp32 == []


class TestCorruptedFixture:
    def test_fixture_fails_with_expected_rules(self):
        n, findings = run_tablecheck(packages=(),
                                     extra_paths=(str(CORRUPT),))
        assert n == 1 and findings
        rules = {f.rule for f in findings}
        assert {"TC202", "TC203", "TC204", "TC205",
                "TC206", "TC207"} <= rules

    def test_missing_file_reported(self):
        _, findings = run_tablecheck(packages=(),
                                     extra_paths=("nope/missing.py",))
        assert [f.rule for f in findings] == ["TC201"]


class TestCheckData:
    """Single-invariant corruptions of a real shipped table."""

    def test_clean_copy_passes(self, exp_data):
        assert check_data(exp_data, "exp.py") == []

    def test_unaddressable_slot(self, exp_data):
        exp_data["approx"]["exp"]["pos"]["polys"].append(
            exp_data["approx"]["exp"]["pos"]["polys"][0])
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC203" in rules

    def test_shift_outside_double_layout(self, exp_data):
        exp_data["approx"]["exp"]["neg"]["shift"] = 65
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC203" in rules

    def test_length_mismatch(self, exp_data):
        e, c = exp_data["approx"]["exp"]["neg"]["polys"][0]
        exp_data["approx"]["exp"]["neg"]["polys"][0] = (e, c[:-1])
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC204" in rules

    def test_nonfinite_coefficient(self, exp_data):
        e, c = exp_data["approx"]["exp"]["neg"]["polys"][0]
        exp_data["approx"]["exp"]["neg"]["polys"][0] = \
            (e, (float("inf"),) + c[1:])
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC205" in rules

    def test_non_float_coefficient(self, exp_data):
        e, c = exp_data["approx"]["exp"]["neg"]["polys"][0]
        exp_data["approx"]["exp"]["neg"]["polys"][0] = (e, (1,) + c[1:])
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC205" in rules

    def test_unknown_rr_kind(self, exp_data):
        exp_data["rr_kind"] = "chebyshev"
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC202" in rules

    def test_unknown_target(self, exp_data):
        exp_data["target"] = "float128"
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC202" in rules

    def test_nan_rr_constant(self, exp_data):
        exp_data["rr_state"]["_c"] = float("nan")
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC206" in rules

    def test_inf_threshold_is_legitimate(self, exp_data):
        # _hi_result of float32 exp IS +inf in the shipped table
        assert exp_data["rr_state"]["_hi_result"] == float("inf")
        assert check_data(exp_data, "exp.py") == []

    def test_fn_names_approx_mismatch(self, exp_data):
        exp_data["approx"]["expp"] = exp_data["approx"].pop("exp")
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC206" in rules

    def test_missing_key(self, exp_data):
        del exp_data["rr_state"]
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert rules == {"TC201"}

    def test_stats_negative(self, exp_data):
        exp_data["stats"]["input_count"] = -5
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC207" in rules

    def test_name_expectations(self, exp_data):
        rules = {f.rule for f in check_data(exp_data, "exp.py",
                                            expect_function="ln",
                                            expect_target="posit32")}
        assert "TC201" in rules


class TestTC209Contiguity:
    """TC209: per sign, every reduced function's index field ends at the
    same bit (they index one shared reduced-input population)."""

    @pytest.fixture()
    def cosh_data(self):
        mod = importlib.import_module("repro.libm.data_float32.cosh")
        return copy.deepcopy(mod.DATA)

    def test_shipped_multi_fn_module_is_contiguous(self, cosh_data):
        assert check_data(cosh_data, "cosh.py") == []

    def test_mismatched_field_top_fires(self, cosh_data):
        # cosh pos ends at bit 59+1=60, sinh pos at 58+2=60; nudging one
        # shift breaks the shared-prefix invariant
        cosh_data["approx"]["cosh"]["pos"]["shift"] += 1
        findings = [f for f in check_data(cosh_data, "cosh.py")
                    if f.rule == "TC209"]
        assert findings
        assert "not contiguous" in findings[0].message
        assert "cosh" in findings[0].message

    def test_zero_bit_tables_also_checked(self, cosh_data):
        # index_bits == 0 tables still carry a field top (their shift)
        cosh_data["approx"]["sinh"]["neg"]["shift"] += 1
        rules = {f.rule for f in check_data(cosh_data, "cosh.py")}
        assert "TC209" in rules

    def test_index_field_reaching_sign_bit_fires(self, cosh_data):
        pp = cosh_data["approx"]["cosh"]["pos"]
        pp["index_bits"] = max(pp["index_bits"], 1)
        pp["shift"] = 63  # with index_bits>=1 the field straddles bit 63
        msgs = [f.message for f in check_data(cosh_data, "cosh.py")
                if f.rule == "TC209"]
        assert any("sign bit" in m for m in msgs)

    def test_single_fn_module_cannot_misalign(self, exp_data):
        # one reduced function per side: contiguity is vacuous, so a
        # shift nudge below the sign bit raises no TC209
        next(iter(exp_data["approx"].values()))["pos"]["shift"] += 1
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC209" not in rules
