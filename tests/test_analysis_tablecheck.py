"""tablecheck: the shipped tables pass, corrupted tables fail."""

from __future__ import annotations

import copy
import importlib
import time
from pathlib import Path

import pytest

from repro.analysis import check_data, run_tablecheck
from repro.analysis.tablecheck import DATA_PACKAGES, check_package
from repro.libm.runtime import FLOAT32_FUNCTIONS, POSIT32_FUNCTIONS

pytestmark = pytest.mark.lint

CORRUPT = Path(__file__).parent / "data" / "corrupt_table.py"


@pytest.fixture()
def exp_data():
    """A mutable deep copy of the shipped float32 exp table."""
    mod = importlib.import_module("repro.libm.data_float32.exp")
    return copy.deepcopy(mod.DATA)


class TestShippedTables:
    def test_all_shipped_modules_pass(self):
        t0 = time.perf_counter()
        n, findings = run_tablecheck()
        elapsed = time.perf_counter() - t0
        assert findings == []
        assert n == len(FLOAT32_FUNCTIONS) + len(POSIT32_FUNCTIONS) == 18
        # acceptance bound from ISSUE 2; typically well under a second
        assert elapsed < 5.0

    def test_per_package_counts(self):
        n32, f32 = check_package(DATA_PACKAGES[0])
        np32, fp32 = check_package(DATA_PACKAGES[1])
        assert (n32, np32) == (10, 8)
        assert f32 == [] and fp32 == []


class TestCorruptedFixture:
    def test_fixture_fails_with_expected_rules(self):
        n, findings = run_tablecheck(packages=(),
                                     extra_paths=(str(CORRUPT),))
        assert n == 1 and findings
        rules = {f.rule for f in findings}
        assert {"TC202", "TC203", "TC204", "TC205",
                "TC206", "TC207"} <= rules

    def test_missing_file_reported(self):
        _, findings = run_tablecheck(packages=(),
                                     extra_paths=("nope/missing.py",))
        assert [f.rule for f in findings] == ["TC201"]


class TestCheckData:
    """Single-invariant corruptions of a real shipped table."""

    def test_clean_copy_passes(self, exp_data):
        assert check_data(exp_data, "exp.py") == []

    def test_unaddressable_slot(self, exp_data):
        exp_data["approx"]["exp"]["pos"]["polys"].append(
            exp_data["approx"]["exp"]["pos"]["polys"][0])
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC203" in rules

    def test_shift_outside_double_layout(self, exp_data):
        exp_data["approx"]["exp"]["neg"]["shift"] = 65
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC203" in rules

    def test_length_mismatch(self, exp_data):
        e, c = exp_data["approx"]["exp"]["neg"]["polys"][0]
        exp_data["approx"]["exp"]["neg"]["polys"][0] = (e, c[:-1])
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC204" in rules

    def test_nonfinite_coefficient(self, exp_data):
        e, c = exp_data["approx"]["exp"]["neg"]["polys"][0]
        exp_data["approx"]["exp"]["neg"]["polys"][0] = \
            (e, (float("inf"),) + c[1:])
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC205" in rules

    def test_non_float_coefficient(self, exp_data):
        e, c = exp_data["approx"]["exp"]["neg"]["polys"][0]
        exp_data["approx"]["exp"]["neg"]["polys"][0] = (e, (1,) + c[1:])
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC205" in rules

    def test_unknown_rr_kind(self, exp_data):
        exp_data["rr_kind"] = "chebyshev"
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC202" in rules

    def test_unknown_target(self, exp_data):
        exp_data["target"] = "float128"
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC202" in rules

    def test_nan_rr_constant(self, exp_data):
        exp_data["rr_state"]["_c"] = float("nan")
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC206" in rules

    def test_inf_threshold_is_legitimate(self, exp_data):
        # _hi_result of float32 exp IS +inf in the shipped table
        assert exp_data["rr_state"]["_hi_result"] == float("inf")
        assert check_data(exp_data, "exp.py") == []

    def test_fn_names_approx_mismatch(self, exp_data):
        exp_data["approx"]["expp"] = exp_data["approx"].pop("exp")
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC206" in rules

    def test_missing_key(self, exp_data):
        del exp_data["rr_state"]
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert rules == {"TC201"}

    def test_stats_negative(self, exp_data):
        exp_data["stats"]["input_count"] = -5
        rules = {f.rule for f in check_data(exp_data, "exp.py")}
        assert "TC207" in rules

    def test_name_expectations(self, exp_data):
        rules = {f.rule for f in check_data(exp_data, "exp.py",
                                            expect_function="ln",
                                            expect_target="posit32")}
        assert "TC201" in rules
