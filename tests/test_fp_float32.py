"""Tests for the fast binary32 helpers (repro.fp.float32).

The struct-based fast path must agree with the exact generic FloatFormat
machinery everywhere, including overflow, subnormals and specials.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.fp.float32 import (FLT_MAX, FLT_MIN_SUBNORMAL,
                              FLT_OVERFLOW_THRESHOLD, bits_to_f32,
                              f32_next_down, f32_next_up, f32_round,
                              f32_to_bits)
from repro.fp.formats import FLOAT32
from repro.fp.bits import next_double, prev_double


class TestConstants:
    def test_max_matches_format(self):
        assert FLT_MAX == float(FLOAT32.max_value)

    def test_min_subnormal_matches_format(self):
        assert FLT_MIN_SUBNORMAL == float(FLOAT32.min_subnormal)

    def test_overflow_threshold(self):
        from repro.fp.rounding import overflow_threshold
        assert FLT_OVERFLOW_THRESHOLD == overflow_threshold(FLOAT32)


class TestRound:
    def test_nan(self):
        assert math.isnan(f32_round(math.nan))

    def test_inf(self):
        assert f32_round(math.inf) == math.inf
        assert f32_round(-math.inf) == -math.inf

    def test_overflow_boundary(self):
        assert f32_round(FLT_OVERFLOW_THRESHOLD) == math.inf
        assert f32_round(prev_double(FLT_OVERFLOW_THRESHOLD)) == FLT_MAX
        assert f32_round(-FLT_OVERFLOW_THRESHOLD) == -math.inf

    def test_underflow(self):
        assert f32_round(1e-300) == 0.0
        assert f32_round(FLT_MIN_SUBNORMAL / 2) == 0.0  # tie to even zero
        assert f32_round(next_double(FLT_MIN_SUBNORMAL / 2)) == FLT_MIN_SUBNORMAL

    def test_signed_zero_preserved(self):
        assert math.copysign(1.0, f32_round(-0.0)) == -1.0

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=400)
    def test_agrees_with_generic_format(self, x):
        assert f32_round(x) == FLOAT32.round_double(x) or (
            f32_round(x) == 0.0 and FLOAT32.round_double(x) == 0.0)


class TestBits:
    def test_known(self):
        assert f32_to_bits(1.0) == 0x3F800000
        assert bits_to_f32(0x3F800000) == 1.0
        assert f32_to_bits(-2.0) == 0xC0000000

    def test_nan_bits(self):
        assert f32_to_bits(math.nan) == 0x7FC00000
        assert math.isnan(bits_to_f32(0x7FC00001))

    def test_overflow_bits(self):
        assert f32_to_bits(1e300) == 0x7F800000
        assert f32_to_bits(-1e300) == 0xFF800000
        assert f32_to_bits(prev_double(FLT_OVERFLOW_THRESHOLD)) == 0x7F7FFFFF

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=400)
    def test_agrees_with_generic_bits(self, x):
        assert f32_to_bits(x) == FLOAT32.from_double(x)


class TestNeighbours:
    def test_next_up_basic(self):
        assert f32_next_up(1.0) == 1.0000001192092896
        assert f32_next_down(1.0) == 0.9999999403953552

    def test_across_zero(self):
        assert f32_next_up(-FLT_MIN_SUBNORMAL) == 0.0
        assert f32_next_up(0.0) == FLT_MIN_SUBNORMAL
        assert f32_next_down(0.0) == -FLT_MIN_SUBNORMAL

    def test_at_extremes(self):
        assert f32_next_up(FLT_MAX) == math.inf
        assert f32_next_up(math.inf) == math.inf
        assert f32_next_down(-FLT_MAX) == -math.inf

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=300)
    def test_agrees_with_format_neighbours(self, x):
        bits = FLOAT32.from_double(x)
        if not FLOAT32.is_inf(bits):
            assert f32_next_up(x) == FLOAT32.to_double(FLOAT32.next_up(bits))
            assert f32_next_down(x) == FLOAT32.to_double(FLOAT32.next_down(bits))
