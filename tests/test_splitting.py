"""Tests for bit-pattern domain splitting (repro.core.splitting)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.splitting import split_domain
from repro.fp.bits import double_to_bits
from repro.lp.solver import LinearConstraint


def _cs(rs):
    return [LinearConstraint(r, 0.0, 1.0) for r in rs]


class TestSplitDomain:
    def test_zero_bits_single_group(self):
        sp = split_domain(_cs([0.25, 0.3, 0.4]), 0)
        assert sp.index_bits == 0
        assert len(sp.groups) == 1 and len(sp.groups[0]) == 3

    def test_groups_cover_everything(self):
        rs = [0.001 + i * 1e-5 for i in range(100)]
        sp = split_domain(_cs(rs), 3)
        assert sum(len(g) for g in sp.groups) == 100
        assert len(sp.groups) == 8

    def test_index_formula_matches_grouping(self):
        rs = [0.001 + i * 1.7e-5 for i in range(64)]
        sp = split_domain(_cs(rs), 4)
        for idx, group in enumerate(sp.groups):
            for c in group:
                assert sp.index_of(c.r) == idx

    def test_groups_are_value_contiguous(self):
        rs = sorted(0.0001 * (1 + i) for i in range(200))
        sp = split_domain(_cs(rs), 3)
        seen = []
        for g in sp.groups:
            if g:
                seen.append((g[0].r, g[-1].r))
        # positive doubles: groups in pattern order = value order
        flat = [v for pair in seen for v in pair]
        assert flat == sorted(flat)

    def test_mixed_signs_rejected(self):
        with pytest.raises(ValueError):
            split_domain(_cs([-0.5, 0.5]), 2)

    def test_negative_only_allowed(self):
        sp = split_domain(_cs([-0.5, -0.25, -0.26]), 2)
        assert sum(len(g) for g in sp.groups) == 3

    def test_zero_joins_group_zero(self):
        sp = split_domain(_cs([0.0, 0.25, 0.26, 0.3]), 2)
        zero_groups = [i for i, g in enumerate(sp.groups)
                       if any(c.r == 0.0 for c in g)]
        assert zero_groups == [0]

    def test_only_zero(self):
        sp = split_domain(_cs([0.0]), 4)
        assert sp.index_bits == 0
        assert len(sp.groups[0]) == 1

    def test_index_bits_clamped_to_available(self):
        # identical values share all 64 bits: no index bits available
        sp = split_domain(_cs([0.5, 0.5]), 10)
        assert sp.index_bits == 0

    def test_prefix_matches_common_bits(self):
        rs = [0.5, 0.75]
        sp = split_domain(_cs(rs), 1)
        a, b = (double_to_bits(r) for r in rs)
        assert sp.prefix_bits == 64 - (a ^ b).bit_length()

    @given(st.lists(st.floats(min_value=1e-10, max_value=1e-2), min_size=2,
                    max_size=50),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, rs, n):
        cs = _cs(sorted(set(rs)))
        sp = split_domain(cs, n)
        assert sum(len(g) for g in sp.groups) == len(cs)
        for idx, g in enumerate(sp.groups):
            for c in g:
                assert sp.index_of(c.r) == idx
