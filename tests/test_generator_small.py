"""End-to-end pipeline tests on exhaustively checkable formats.

These are the strongest tests in the suite: they run the whole paper
pipeline — oracle, rounding intervals, Algorithm 2, domain splitting,
counterexample guided LP generation — and then check *every* input of
the format against the oracle, exactly like the paper's all-inputs
validation (Table 1/2, shrunk to formats Python can enumerate).
"""

import math

import pytest

from repro.core import FunctionSpec, all_values, generate, validate
from repro.core.generator import GenerationError
from repro.core.piecewise import PiecewiseConfig
from repro.fp.formats import FLOAT8
from repro.posit.format import POSIT8
from repro.rangereduction import reduction_for


ALL_FLOAT_FUNCTIONS = ("ln", "log2", "log10", "exp", "exp2", "exp10",
                       "sinh", "cosh", "sinpi", "cospi")
POSIT_FUNCTIONS = ("ln", "log2", "log10", "exp", "exp2", "exp10",
                   "sinh", "cosh")


@pytest.mark.parametrize("name", ALL_FLOAT_FUNCTIONS)
def test_float8_exhaustive_correctness(name):
    rr = reduction_for(name, FLOAT8)
    spec = FunctionSpec(name, FLOAT8, rr)
    inputs = list(all_values(FLOAT8))
    fn = generate(spec, inputs)
    assert validate(fn, inputs) == []


@pytest.mark.parametrize("name", POSIT_FUNCTIONS)
def test_posit8_exhaustive_correctness(name):
    rr = reduction_for(name, POSIT8)
    spec = FunctionSpec(name, POSIT8, rr)
    inputs = list(all_values(POSIT8))
    fn = generate(spec, inputs)
    assert validate(fn, inputs) == []


class TestGeneratedFunctionBehaviour:
    def test_special_inputs(self, float8_exp):
        assert float8_exp.evaluate(math.inf) == math.inf
        assert float8_exp.evaluate(-math.inf) == 0.0
        assert math.isnan(float8_exp.evaluate(math.nan))
        assert float8_exp.evaluate(0.0) == 1.0

    def test_log_specials(self, float8_log2):
        assert float8_log2.evaluate(0.0) == -math.inf
        assert math.isnan(float8_log2.evaluate(-1.0))
        assert float8_log2.evaluate(math.inf) == math.inf

    def test_exact_results(self, float8_log2):
        assert float8_log2.evaluate(8.0) == 3.0
        assert float8_log2.evaluate(0.25) == -2.0

    def test_call_is_evaluate(self, float8_exp):
        assert float8_exp(1.0) == float8_exp.evaluate(1.0)

    def test_bits_and_value_consistent(self, float8_exp):
        for x in (0.5, 1.0, 2.5, -3.0):
            bits = float8_exp.evaluate_bits(x)
            assert FLOAT8.to_double(bits) == float8_exp.evaluate(x)

    def test_stats_populated(self, float8_exp):
        st = float8_exp.stats
        assert st.input_count == len(list(all_values(FLOAT8)))
        assert st.special_count > 0
        assert st.reduced_count > 0
        assert "exp" in st.per_fn
        assert st.gen_time_s > 0

    def test_sinpi_odd_symmetry(self, float8_sinpi):
        for x in (0.25, 0.5, 1.25, 3.75):
            a = float8_sinpi.evaluate(x)
            b = float8_sinpi.evaluate(-x)
            assert a == -b or (a == 0.0 and b == 0.0)

    def test_posit_nan_to_nar(self, posit8_exp):
        assert posit8_exp.evaluate_bits(math.nan) == POSIT8.nar_bits

    def test_posit_saturation(self, posit8_exp):
        # exp of large posit8 values saturates to maxpos, never inf
        assert posit8_exp.evaluate(32.0) == float(POSIT8.maxpos)
        assert posit8_exp.evaluate(-32.0) == float(POSIT8.minpos)


class TestGenerationFailure:
    def test_budget_too_small_raises(self):
        rr = reduction_for("exp", FLOAT8, max_degree=0)
        spec = FunctionSpec("exp", FLOAT8, rr,
                            PiecewiseConfig(max_index_bits=0))
        with pytest.raises(GenerationError):
            generate(spec, list(all_values(FLOAT8)))
