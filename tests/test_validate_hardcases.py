"""Tests for validation, the outer CEGIS loop, and hard-case mining."""

import math
import random

import pytest

from repro.core import FunctionSpec, all_values, generate
from repro.core.sampling import sample_values
from repro.core.validate import (Mismatch, generate_validated, reference_bits,
                                 validate)
from repro.eval.hardcases import boundary_distance, mine_hard_cases
from repro.fp.formats import FLOAT8, FLOAT16, FLOAT32
from repro.oracle import default_oracle as orc
from repro.posit.format import POSIT8, POSIT32
from repro.rangereduction import reduction_for


class TestReferenceBits:
    def test_special_layer_wins(self, float8_exp):
        spec = float8_exp.spec
        assert reference_bits(spec, math.inf) == FLOAT8.inf_bits
        assert reference_bits(spec, 0.0) == FLOAT8.from_double(1.0)

    def test_oracle_path(self, float8_exp):
        spec = float8_exp.spec
        assert reference_bits(spec, 1.0) == orc.round_to_bits(
            "exp", 1.0, FLOAT8)


class TestValidate:
    def test_clean_function_validates(self, float8_exp):
        assert validate(float8_exp, all_values(FLOAT8)) == []

    def test_limit_stops_early(self, float8_exp):
        # sabotage: a wrong evaluator via monkeypatched approx
        class Wrong:
            spec = float8_exp.spec

            def evaluate_bits(self, x):
                return 0

        bad = validate(Wrong(), [1.0, 2.0, 3.0], limit=2)
        assert len(bad) == 2
        assert isinstance(bad[0], Mismatch)

    def test_generation_inputs_never_mismatch(self, float8_sinpi):
        # the CEG loop discharges every constraint, so the inputs that
        # participated in generation must validate (invariant the outer
        # loop relies on)
        assert validate(float8_sinpi, all_values(FLOAT8)) == []


class TestGenerateValidated:
    def test_converges_on_small_format(self):
        rr = reduction_for("exp2", FLOAT8)
        spec = FunctionSpec("exp2", FLOAT8, rr)
        inputs = [x for i, x in enumerate(all_values(FLOAT8)) if i % 3 == 0]
        val = list(all_values(FLOAT8))
        fn, added = generate_validated(spec, inputs, val, max_rounds=6)
        assert validate(fn, val) == []

    def test_reports_folded_counterexamples(self):
        rr = reduction_for("exp", FLOAT8)
        spec = FunctionSpec("exp", FLOAT8, rr)
        # sparse inputs likely leave gaps that validation repairs
        inputs = [x for i, x in enumerate(all_values(FLOAT8)) if i % 7 == 0]
        val = list(all_values(FLOAT8))
        fn, added = generate_validated(spec, inputs, val, max_rounds=8)
        assert added >= 0
        assert validate(fn, val) == []


class TestHardCases:
    def test_distance_range(self):
        for x in (0.5, 1.3, 7.7):
            d = boundary_distance("exp", x, FLOAT32)
            assert 0.0 <= d <= 0.5

    def test_exact_results_are_not_hard(self):
        assert boundary_distance("exp2", 3.0, FLOAT32) == 0.5
        assert boundary_distance("sinpi", 0.5, FLOAT32) == 0.5

    def test_overflow_region_not_hard(self):
        # exp(100) rounds to +inf: unbounded interval, distance 0.5
        assert boundary_distance("exp", 100.0, FLOAT32) == 0.5

    def test_mining_orders_by_hardness(self):
        xs = sample_values(FLOAT32, 300, random.Random(3), 0.1, 10.0)
        hard = mine_hard_cases("exp", FLOAT32, xs, 10)
        assert len(hard) == 10
        d_hard = max(boundary_distance("exp", x, FLOAT32) for x in hard)
        rest = [x for x in xs if x not in set(hard)]
        d_rest = min(boundary_distance("exp", x, FLOAT32) for x in rest)
        assert d_hard <= d_rest

    def test_hard_cases_are_actually_hard(self):
        xs = sample_values(FLOAT32, 600, random.Random(9), 0.1, 50.0)
        hard = mine_hard_cases("exp", FLOAT32, xs, 3)
        # the hardest of 600 exp values should graze within ~1e-2 widths
        assert boundary_distance("exp", hard[0], FLOAT32) < 1e-2


class TestPrecisionEscalation:
    """boundary_distance must escalate past a too-coarse first bracket."""

    # exp2 of this double grazes a FLOAT16 rounding boundary at ~2**-59.4
    # — far below what a 64-bit bracket can resolve, so a fixed-precision
    # distance would silently report garbage here
    GRAZE_X = -0.026661379199639502
    GRAZE_D = 1.2681649789067737e-18

    def test_pinned_grazing_input(self):
        d = boundary_distance("exp2", self.GRAZE_X, FLOAT16)
        assert d == self.GRAZE_D
        assert 0.0 < d < 2.0 ** -50

    def test_coarse_start_escalates_to_same_answer(self):
        # a deliberately hopeless 64-bit starting bracket must escalate
        # until it proves the same distance the 256-bit start finds
        d64 = boundary_distance("exp2", self.GRAZE_X, FLOAT16, prec=64)
        assert d64 == self.GRAZE_D

    def test_ordinary_inputs_unaffected_by_start(self):
        for x in (0.5, 1.3, 7.7):
            d64 = boundary_distance("exp", x, FLOAT32, prec=64)
            d256 = boundary_distance("exp", x, FLOAT32, prec=256)
            assert abs(d64 - d256) <= 2.0 ** -19

    def test_max_prec_straddle_reports_tie(self):
        # at max_prec == prec the loop cannot escalate: a bracket that
        # still straddles must come back as an exact tie (0.0), never an
        # arbitrary coarse value
        d = boundary_distance("exp2", self.GRAZE_X, FLOAT16,
                              prec=64, max_prec=64)
        assert d == 0.0


class TestBoundaryDistanceEdges:
    """Edge cases: unbounded intervals, exact results, posit regimes."""

    def test_float_overflow_interval_unbounded(self):
        # rounding interval of +inf is [threshold, inf): never grazeable
        assert boundary_distance("exp", 100.0, FLOAT32) == 0.5
        assert boundary_distance("exp10", 50.0, FLOAT32) == 0.5

    def test_posit_saturation_unbounded(self):
        # posits never overflow: huge results saturate at maxpos, whose
        # rounding interval is unbounded above — distance 0.5 by fiat
        assert boundary_distance("exp", 100.0, POSIT32) == 0.5
        assert boundary_distance("exp", -100.0, POSIT32) == 0.5

    def test_exactly_representable_results(self):
        # the oracle's exact hook: nothing to graze, distance 0.5
        assert boundary_distance("exp2", 3.0, FLOAT32) == 0.5
        assert boundary_distance("log2", 8.0, FLOAT32) == 0.5
        assert boundary_distance("exp2", 2.0, POSIT32) == 0.5

    def test_posit_regime_boundary_results(self):
        # results landing at useed**k regime transitions: tapered
        # precision jumps across the boundary, but the interval is
        # bounded and the distance must stay in [0, 0.5]
        u = float(POSIT32.useed)
        for x in (u, u * u, 1.0 / u):
            d = boundary_distance("ln", x, POSIT32)
            assert 0.0 <= d <= 0.5

    def test_distance_always_in_range_posit8(self):
        for x in sample_values(POSIT8, 60, random.Random(2)):
            if x == 0.0:
                continue
            d = boundary_distance("exp", x, POSIT8)
            assert 0.0 <= d <= 0.5
