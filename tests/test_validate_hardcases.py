"""Tests for validation, the outer CEGIS loop, and hard-case mining."""

import math
import random

import pytest

from repro.core import FunctionSpec, all_values, generate
from repro.core.sampling import sample_values
from repro.core.validate import (Mismatch, generate_validated, reference_bits,
                                 validate)
from repro.eval.hardcases import boundary_distance, mine_hard_cases
from repro.fp.formats import FLOAT8, FLOAT32
from repro.oracle import default_oracle as orc
from repro.rangereduction import reduction_for


class TestReferenceBits:
    def test_special_layer_wins(self, float8_exp):
        spec = float8_exp.spec
        assert reference_bits(spec, math.inf) == FLOAT8.inf_bits
        assert reference_bits(spec, 0.0) == FLOAT8.from_double(1.0)

    def test_oracle_path(self, float8_exp):
        spec = float8_exp.spec
        assert reference_bits(spec, 1.0) == orc.round_to_bits(
            "exp", 1.0, FLOAT8)


class TestValidate:
    def test_clean_function_validates(self, float8_exp):
        assert validate(float8_exp, all_values(FLOAT8)) == []

    def test_limit_stops_early(self, float8_exp):
        # sabotage: a wrong evaluator via monkeypatched approx
        class Wrong:
            spec = float8_exp.spec

            def evaluate_bits(self, x):
                return 0

        bad = validate(Wrong(), [1.0, 2.0, 3.0], limit=2)
        assert len(bad) == 2
        assert isinstance(bad[0], Mismatch)

    def test_generation_inputs_never_mismatch(self, float8_sinpi):
        # the CEG loop discharges every constraint, so the inputs that
        # participated in generation must validate (invariant the outer
        # loop relies on)
        assert validate(float8_sinpi, all_values(FLOAT8)) == []


class TestGenerateValidated:
    def test_converges_on_small_format(self):
        rr = reduction_for("exp2", FLOAT8)
        spec = FunctionSpec("exp2", FLOAT8, rr)
        inputs = [x for i, x in enumerate(all_values(FLOAT8)) if i % 3 == 0]
        val = list(all_values(FLOAT8))
        fn, added = generate_validated(spec, inputs, val, max_rounds=6)
        assert validate(fn, val) == []

    def test_reports_folded_counterexamples(self):
        rr = reduction_for("exp", FLOAT8)
        spec = FunctionSpec("exp", FLOAT8, rr)
        # sparse inputs likely leave gaps that validation repairs
        inputs = [x for i, x in enumerate(all_values(FLOAT8)) if i % 7 == 0]
        val = list(all_values(FLOAT8))
        fn, added = generate_validated(spec, inputs, val, max_rounds=8)
        assert added >= 0
        assert validate(fn, val) == []


class TestHardCases:
    def test_distance_range(self):
        for x in (0.5, 1.3, 7.7):
            d = boundary_distance("exp", x, FLOAT32)
            assert 0.0 <= d <= 0.5

    def test_exact_results_are_not_hard(self):
        assert boundary_distance("exp2", 3.0, FLOAT32) == 0.5
        assert boundary_distance("sinpi", 0.5, FLOAT32) == 0.5

    def test_overflow_region_not_hard(self):
        # exp(100) rounds to +inf: unbounded interval, distance 0.5
        assert boundary_distance("exp", 100.0, FLOAT32) == 0.5

    def test_mining_orders_by_hardness(self):
        xs = sample_values(FLOAT32, 300, random.Random(3), 0.1, 10.0)
        hard = mine_hard_cases("exp", FLOAT32, xs, 10)
        assert len(hard) == 10
        d_hard = max(boundary_distance("exp", x, FLOAT32) for x in hard)
        rest = [x for x in xs if x not in set(hard)]
        d_rest = min(boundary_distance("exp", x, FLOAT32) for x in rest)
        assert d_hard <= d_rest

    def test_hard_cases_are_actually_hard(self):
        xs = sample_values(FLOAT32, 600, random.Random(9), 0.1, 50.0)
        hard = mine_hard_cases("exp", FLOAT32, xs, 3)
        # the hardest of 600 exp values should graze within ~1e-2 widths
        assert boundary_distance("exp", hard[0], FLOAT32) < 1e-2
