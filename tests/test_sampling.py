"""Tests for input samplers (repro.core.sampling)."""

import random

import pytest

from repro.core.sampling import (all_values, boundary_values, ordinal_limit,
                                 sample_values, value_to_ordinal)
from repro.fp.formats import FLOAT8, FLOAT32
from repro.posit.format import POSIT8, POSIT32


class TestOrdinalLimit:
    def test_float(self):
        assert ordinal_limit(FLOAT32) == FLOAT32.inf_bits - 1

    def test_posit(self):
        assert ordinal_limit(POSIT32) == POSIT32.maxpos_bits


class TestAllValues:
    def test_float8_count_and_order(self):
        vals = list(all_values(FLOAT8))
        assert len(vals) == 2 * (FLOAT8.inf_bits - 1) + 1
        assert vals == sorted(vals)

    def test_positive_only(self):
        vals = list(all_values(FLOAT8, include_negative=False))
        assert vals[0] == 0.0
        assert all(v >= 0 for v in vals)

    def test_posit8(self):
        vals = list(all_values(POSIT8))
        assert len(vals) == 255  # all patterns except NaR
        assert vals == sorted(vals)


class TestSampleValues:
    def test_unique_sorted(self):
        xs = sample_values(FLOAT32, 1000, random.Random(1))
        assert xs == sorted(xs)
        assert len(set(xs)) == len(xs)

    def test_range_restriction(self):
        xs = sample_values(FLOAT32, 500, random.Random(2), 1.0, 2.0)
        assert all(1.0 <= x <= 2.0 for x in xs)

    def test_small_span_exhaustive(self):
        xs = sample_values(FLOAT8, 10_000, random.Random(3))
        assert len(xs) == len(list(all_values(FLOAT8)))

    def test_deterministic_with_seed(self):
        a = sample_values(FLOAT32, 100, random.Random(7), -10, 10)
        b = sample_values(FLOAT32, 100, random.Random(7), -10, 10)
        assert a == b

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            sample_values(FLOAT32, 10, random.Random(0), 2.0, 1.0)

    def test_posit_sampling(self):
        xs = sample_values(POSIT32, 200, random.Random(4), 0.5, 2.0)
        assert all(0.5 <= x <= 2.0 for x in xs)
        # every sampled value is an exact posit32 value
        for x in xs:
            assert POSIT32.to_double(POSIT32.from_double(x)) == x


class TestBoundaryValues:
    def test_radius(self):
        xs = boundary_values(FLOAT32, [1.0], radius=4)
        assert len(xs) == 9
        assert 1.0 in xs

    def test_dedup_overlapping_centers(self):
        a = boundary_values(FLOAT32, [1.0], radius=8)
        b = boundary_values(FLOAT32, [1.0, 1.0000001], radius=8)
        assert len(b) <= 2 * len(a)
        assert len(set(b)) == len(b)

    def test_clamps_at_format_edge(self):
        xs = boundary_values(FLOAT8, [1000.0], radius=5)
        assert all(x <= float(FLOAT8.max_value) for x in xs)


class TestValueToOrdinal:
    def test_round_trips(self):
        assert value_to_ordinal(FLOAT32, 1.0) == FLOAT32.to_ordinal(
            FLOAT32.from_double(1.0))
        assert value_to_ordinal(POSIT8, 1.0) == 0x40
