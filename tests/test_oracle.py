"""Tests for the correctly rounded oracle (repro.oracle)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.fp.formats import FLOAT32, FLOAT64
from repro.oracle import FUNCTIONS, Oracle, get_function
from repro.oracle.mpmath_oracle import default_oracle as orc, mpf_to_fraction

import mpmath


class TestRegistry:
    def test_all_ten_plus_reduced_registered(self):
        for name in ("ln", "log2", "log10", "exp", "exp2", "exp10",
                     "sinh", "cosh", "sinpi", "cospi",
                     "log1p", "log2_1p", "log10_1p"):
            assert name in FUNCTIONS

    def test_unknown_function(self):
        with pytest.raises(KeyError):
            get_function("tan")

    def test_parity_flags(self):
        assert get_function("sinpi").odd and not get_function("sinpi").even
        assert get_function("cospi").even
        assert get_function("sinh").odd
        assert get_function("cosh").even


class TestExactHooks:
    @pytest.mark.parametrize("fn,x,want", [
        ("ln", 1.0, 0), ("log2", 8.0, 3), ("log2", 0.25, -2),
        ("log10", 100.0, 2), ("exp", 0.0, 1), ("exp2", 10.0, 1024),
        ("exp2", -3.0, Fraction(1, 8)), ("exp10", 2.0, 100),
        ("exp10", -1.0, Fraction(1, 10)), ("sinh", 0.0, 0),
        ("cosh", 0.0, 1), ("sinpi", 7.0, 0), ("sinpi", 0.5, 1),
        ("sinpi", 1.5, -1), ("sinpi", 2.5, 1), ("cospi", 2.0, 1),
        ("cospi", 3.0, -1), ("cospi", 0.5, 0), ("log1p", 0.0, 0),
        ("log2_1p", 1.0, 1), ("log2_1p", 3.0, 2), ("log10_1p", 9.0, 1),
    ])
    def test_exact_values(self, fn, x, want):
        hook = get_function(fn).exact_hook(Fraction(x))
        assert hook == Fraction(want)

    @pytest.mark.parametrize("fn,x", [
        ("ln", 2.0), ("log2", 3.0), ("log10", 2.0), ("exp", 1.0),
        ("exp2", 0.5), ("sinh", 1.0), ("sinpi", 0.25), ("cospi", 0.25),
    ])
    def test_irrational_points_have_no_hook(self, fn, x):
        assert get_function(fn).exact_hook(Fraction(x)) is None


class TestLimitCases:
    def test_ln_limits(self):
        fn = get_function("ln")
        assert fn.limit_cases(0.0) == -math.inf
        assert math.isnan(fn.limit_cases(-1.0))
        assert fn.limit_cases(math.inf) == math.inf
        assert fn.limit_cases(1.5) is None

    def test_exp_limits(self):
        fn = get_function("exp")
        assert fn.limit_cases(math.inf) == math.inf
        assert fn.limit_cases(-math.inf) == 0.0

    def test_sinpi_limits(self):
        assert math.isnan(get_function("sinpi").limit_cases(math.inf))


class TestMpfToFraction:
    def test_basic(self):
        with mpmath.workprec(60):
            assert mpf_to_fraction(mpmath.mpf("0.5")) == Fraction(1, 2)
            assert mpf_to_fraction(mpmath.mpf(3)) == 3
            assert mpf_to_fraction(-mpmath.mpf("0.75")) == Fraction(-3, 4)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            mpf_to_fraction(mpmath.inf)


class TestRounding:
    def test_against_math_module(self):
        # platform libm is correctly rounded for these on common systems;
        # allow 1 ulp just in case, but require <=.
        for fn, ref in [("ln", math.log), ("exp", math.exp),
                        ("sinh", math.sinh), ("cosh", math.cosh)]:
            for x in (0.5, 1.25, 2.0, 5.5, 10.75, -3.25 if fn in ("exp", "sinh", "cosh") else 0.3):
                got = orc.round_to_double(fn, x)
                assert abs(got - ref(x)) <= math.ulp(ref(x)), (fn, x)

    def test_round_to_float32(self):
        bits = orc.round_to_bits("exp", 1.0, FLOAT32)
        assert FLOAT32.to_double(bits) == 2.7182817459106445

    def test_exact_hook_used(self):
        assert orc.round_to_double("sinpi", 1e6 + 0.5) in (1.0, -1.0)
        assert orc.round_to_double("exp2", 30.0) == 2.0 ** 30

    def test_limit_cases_rejected(self):
        with pytest.raises(ValueError):
            orc.round_to_double("ln", -1.0)
        with pytest.raises(ValueError):
            orc.round_to_double("exp", math.inf)

    def test_caching(self):
        o = Oracle()
        a = o.round_to_bits("exp", 3.5, FLOAT32)
        b = o.round_to_bits("exp", 3.5, FLOAT32)
        assert a == b
        o.clear_cache()
        assert o.round_to_bits("exp", 3.5, FLOAT32) == a

    @given(st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_bracket_contains_true_value(self, x):
        fn = get_function("exp")
        lo, hi, exact = orc.bracket(fn, x, 128)
        with mpmath.workprec(200):
            t = mpf_to_fraction(mpmath.exp(mpmath.mpf(x)))
        assert lo <= t <= hi

    def test_huge_result(self):
        # exp of a large double: result far beyond double range
        bits = orc.round_to_bits("exp", 1000.0, FLOAT64)
        assert FLOAT64.is_inf(bits)

    def test_escalation_on_near_tie(self):
        # a value whose exp is extremely close to a float32 boundary:
        # the oracle must still certify (possibly at higher precision)
        x = 0.4986887276172638
        bits = orc.round_to_bits("exp", x, FLOAT32)
        assert FLOAT32.is_finite(bits)
