"""Persistent segment store: durability, corruption, staleness, concurrency.

The cache's safety contract is "a record read back is exactly a record
some process certified" — so these tests attack every way that could
fail: bit flips (CRC truncation), torn writes (trailing-record
detection), producer version bumps (stale segments ignored, ``gc``
removes them), and two processes appending to the same bucket at once
(private segments + atomic publish mean both survive).
"""

from __future__ import annotations

import struct
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import cache
from repro.__main__ import main as repro_main
from repro.cache import BucketSpec, SegmentStore
from repro.cache.store import MAGIC

pytestmark = pytest.mark.cache

SPEC = BucketSpec("oracle", "exp", "float8", 1, 1)
WALK = BucketSpec("walk", "exp", "float8", 1, 3)


def _segment_paths(root, spec=SPEC):
    return sorted((root / spec.dirname).glob("seg-*.bin"))


class TestRoundtrip:
    def test_put_get_same_store(self, tmp_path):
        store = SegmentStore(tmp_path)
        assert store.get(SPEC, 7) is None
        store.put(SPEC, 7, (42,))
        assert store.get(SPEC, 7) == (42,)

    def test_persists_across_store_objects(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.put(SPEC, 1, (10,))
        store.put(WALK, 1, (3, 4, 128))
        store.flush()
        fresh = SegmentStore(tmp_path)
        assert fresh.get(SPEC, 1) == (10,)
        assert fresh.get(WALK, 1) == (3, 4, 128)

    def test_put_is_idempotent_first_wins(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.put(SPEC, 5, (1,))
        store.put(SPEC, 5, (2,))
        assert store.get(SPEC, 5) == (1,)

    def test_put_wrong_arity_raises(self, tmp_path):
        store = SegmentStore(tmp_path)
        with pytest.raises(ValueError):
            store.put(SPEC, 5, (1, 2))

    def test_u64_extremes_roundtrip(self, tmp_path):
        store = SegmentStore(tmp_path)
        top = (1 << 64) - 1
        store.put(SPEC, top, (top,))
        store.put(SPEC, 0, (0,))
        store.flush()
        fresh = SegmentStore(tmp_path)
        assert fresh.get(SPEC, top) == (top,)
        assert fresh.get(SPEC, 0) == (0,)

    def test_lru_eviction_flushes_pending(self, tmp_path):
        store = SegmentStore(tmp_path, max_buckets=1)
        store.put(SPEC, 9, (90,))
        # loading a second bucket evicts the first; its pending record
        # must be published, not lost
        store.put(WALK, 9, (1, 2, 3))
        fresh = SegmentStore(tmp_path)
        assert fresh.get(SPEC, 9) == (90,)


class TestCorruption:
    def _write_three(self, tmp_path):
        store = SegmentStore(tmp_path)
        for k in (1, 2, 3):
            store.put(SPEC, k, (k * 10,))
        store.flush()
        (path,) = _segment_paths(tmp_path)
        return path

    def test_bitflip_truncates_from_damage(self, tmp_path):
        path = self._write_three(tmp_path)
        blob = bytearray(path.read_bytes())
        # records are sorted by key; flip one byte inside the last one
        rec = SPEC.record_struct.size
        blob[-rec // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        fresh = SegmentStore(tmp_path)
        assert fresh.get(SPEC, 1) == (10,)
        assert fresh.get(SPEC, 2) == (20,)
        assert fresh.get(SPEC, 3) is None  # damaged suffix dropped
        assert any("CRC mismatch" in p for p in fresh.verify())

    def test_torn_trailing_record_detected(self, tmp_path):
        path = self._write_three(tmp_path)
        with open(path, "ab") as fh:
            fh.write(b"\x01\x02\x03")
        fresh = SegmentStore(tmp_path)
        assert fresh.get(SPEC, 3) == (30,)  # complete records still load
        assert any("torn trailing record" in p for p in fresh.verify())

    def test_bad_magic_segment_ignored(self, tmp_path):
        path = self._write_three(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(b"GARBAGE!\n" + blob[len(MAGIC):])
        fresh = SegmentStore(tmp_path)
        assert fresh.get(SPEC, 1) is None
        assert any("bad magic" in p for p in fresh.verify())

    def test_cli_verify_exit_codes(self, tmp_path, capsys):
        path = self._write_three(tmp_path)
        argv = ["cache", "--dir", str(tmp_path), "verify"]
        assert repro_main(argv) == 0
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # break the last record's CRC word
        path.write_bytes(bytes(blob))
        assert repro_main(argv) == 1
        assert "PROBLEM" in capsys.readouterr().out

    def test_cli_requires_a_root(self, monkeypatch, capsys):
        monkeypatch.delenv(cache.ENV_VAR, raising=False)
        assert repro_main(["cache", "verify"]) == 2


class TestStaleVersions:
    def test_bumped_version_misses(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.put(SPEC, 1, (10,))
        store.flush()
        v2 = BucketSpec(SPEC.kind, SPEC.fn, SPEC.fmt, SPEC.version + 1,
                        SPEC.vals)
        fresh = SegmentStore(tmp_path)
        assert fresh.get(v2, 1) is None
        assert fresh.get(SPEC, 1) == (10,)  # old producer still hits

    def test_gc_drops_stale_keeps_live(self, tmp_path):
        store = SegmentStore(tmp_path)
        v2 = BucketSpec(SPEC.kind, SPEC.fn, SPEC.fmt, 2, SPEC.vals)
        store.put(SPEC, 1, (10,))
        store.put(v2, 1, (11,))
        store.put(v2, 2, (22,))
        store.flush()
        res = store.gc({"oracle": 2})
        assert res["records_kept"] == 2
        assert res["buckets_compacted"] == 1
        fresh = SegmentStore(tmp_path)
        assert fresh.get(v2, 1) == (11,)
        assert fresh.get(v2, 2) == (22,)
        assert fresh.get(SPEC, 1) is None
        # one compacted segment remains
        assert len(_segment_paths(tmp_path)) == 1

    def test_gc_removes_corrupt_segments(self, tmp_path):
        store = SegmentStore(tmp_path)
        store.put(SPEC, 1, (10,))
        store.flush()
        (path,) = _segment_paths(tmp_path)
        path.write_bytes(b"not a segment")
        res = store.gc({"oracle": SPEC.version})
        assert res["segments_removed"] == 1
        assert SegmentStore(tmp_path).verify() == []


def _append_worker(args):
    root, lo, hi = args
    store = SegmentStore(root)
    for k in range(lo, hi):
        store.put(SPEC, k, (k + 1000,))
    store.flush()
    return hi - lo


class TestConcurrency:
    def test_two_process_concurrent_append(self, tmp_path):
        with ProcessPoolExecutor(max_workers=2) as pool:
            done = list(pool.map(_append_worker,
                                 [(tmp_path, 0, 50), (tmp_path, 50, 100)]))
        assert done == [50, 50]
        # both workers published private segments; the union survives
        merged = SegmentStore(tmp_path)
        for k in range(100):
            assert merged.get(SPEC, k) == (k + 1000,)
        assert len(_segment_paths(tmp_path)) >= 2
        assert merged.verify() == []

    def test_refresh_sees_other_writers(self, tmp_path):
        reader = SegmentStore(tmp_path)
        assert reader.get(SPEC, 1) is None  # bucket now in the LRU front
        writer = SegmentStore(tmp_path)
        writer.put(SPEC, 1, (10,))
        writer.flush()
        assert reader.get(SPEC, 1) is None  # stale front until refresh
        reader.refresh()
        assert reader.get(SPEC, 1) == (10,)

    def test_same_root_two_stores_unique_segments(self, tmp_path):
        a, b = SegmentStore(tmp_path), SegmentStore(tmp_path)
        a.put(SPEC, 1, (1,))
        b.put(SPEC, 2, (2,))
        a.flush()
        b.flush()
        names = [p.name for p in _segment_paths(tmp_path)]
        assert len(names) == len(set(names)) == 2


class TestProcessWideStore:
    def test_configure_activate_deactivate(self, tmp_path):
        store = cache.configure(tmp_path)
        try:
            assert cache.active_store() is store
            store.put(SPEC, 3, (33,))
            cache.flush_active()
            assert SegmentStore(tmp_path).get(SPEC, 3) == (33,)
        finally:
            cache.deactivate()
        assert cache.active_store() is None


class TestStatsAndCLI:
    def test_stats_counts_records(self, tmp_path):
        store = SegmentStore(tmp_path)
        for k in range(5):
            store.put(SPEC, k, (k,))
        store.put(WALK, 1, (1, 2, 3))
        store.flush()
        st = store.stats()
        assert st[SPEC.dirname]["records"] == 5
        assert st[WALK.dirname]["records"] == 1
        assert st[SPEC.dirname]["segments"] == 1

    def test_cli_stats_and_gc(self, tmp_path, capsys):
        store = SegmentStore(tmp_path)
        store.put(SPEC, 1, (1,))
        store.flush()
        assert repro_main(["cache", "--dir", str(tmp_path), "stats"]) == 0
        assert SPEC.dirname in capsys.readouterr().out
        assert repro_main(["cache", "--dir", str(tmp_path), "gc"]) == 0

    def test_record_struct_layout(self):
        assert SPEC.record_struct.size == 8 + 8 + 4
        assert WALK.record_struct.size == 8 + 3 * 8 + 4
        assert struct.calcsize("<QQI") == SPEC.record_struct.size
