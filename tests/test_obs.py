"""Tests for the observability layer (repro.obs).

Covers the contract the rest of the repo relies on:

* nested spans produce well-formed JSONL with consistent sid/pid/depth,
* counters/gauges/histograms snapshot and merge correctly,
* the disabled path emits nothing, allocates nothing (shared no-op
  object) and records no attributes — the hot-path guarantee,
* the pipeline produces *identical* results with tracing off and on
  (the env-matrix check standing in for a separate CI job),
* the opt-in runtime instrumentation counts calls without perturbing
  the shared cached function.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import metrics
from repro.obs.events import NOOP_SPAN, Span, _Timer
from repro.obs.report import (load_trace, render_metrics, render_summary,
                              render_tree, summarize)

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with tracing disabled and metrics zeroed."""
    obs.disable()
    metrics.reset()
    yield
    obs.disable()
    metrics.reset()


def _read(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestSpans:
    def test_nested_spans_well_formed(self, tmp_path):
        p = tmp_path / "t.jsonl"
        obs.enable(p)
        with obs.span("outer", fn="exp"):
            with obs.span("inner", step=1):
                obs.event("tick", n=7)
            with obs.span("inner", step=2) as sp:
                sp.set(extra="late")
        obs.disable()

        events = _read(p)
        assert events[0]["ev"] == "meta" and events[0]["schema"] == 1
        spans = [e for e in events if e["ev"] == "span"]
        points = [e for e in events if e["ev"] == "point"]
        outer = next(s for s in spans if s["name"] == "outer")
        inners = [s for s in spans if s["name"] == "inner"]
        assert len(inners) == 2
        # children written before the parent, linked by pid, deeper by one
        assert all(s["pid"] == outer["sid"] for s in inners)
        assert all(s["depth"] == outer["depth"] + 1 for s in inners)
        assert outer["dur"] >= max(s["dur"] for s in inners)
        # the point event is parented to the span active at emit time
        assert points[0]["pid"] == inners[0]["sid"]
        assert points[0]["n"] == 7
        # late-set attributes land on the span record
        assert inners[1]["extra"] == "late"
        assert outer["fn"] == "exp"

    def test_every_line_is_json(self, tmp_path):
        p = tmp_path / "t.jsonl"
        obs.enable(p)
        with obs.span("a"):
            obs.event("b", value=float("inf"))  # non-finite must not break
        obs.disable()
        for line in p.read_text().splitlines():
            json.loads(line)  # raises on malformed output

    def test_timed_span_measures_when_disabled(self):
        assert not obs.enabled()
        with obs.timed_span("phase") as sp:
            sum(range(1000))
        assert isinstance(sp, _Timer)
        assert sp.elapsed > 0.0

    def test_timed_span_emits_when_enabled(self, tmp_path):
        p = tmp_path / "t.jsonl"
        obs.enable(p)
        with obs.timed_span("phase", fn="x") as sp:
            pass
        assert isinstance(sp, Span)
        assert sp.elapsed > 0.0
        obs.disable()
        assert any(e.get("name") == "phase" for e in _read(p))

    def test_env_variable_enables(self, tmp_path, monkeypatch):
        p = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(p))
        assert obs.configure_from_env()
        obs.event("hello")
        obs.disable()
        assert any(e.get("name") == "hello" for e in _read(p))


class TestDisabledPath:
    def test_span_is_shared_noop_object(self):
        # THE zero-cost guarantee: one process-wide no-op, no allocation
        assert obs.span("a") is NOOP_SPAN
        assert obs.span("b", fn="log2", huge=list(range(100))) is NOOP_SPAN

    def test_noop_span_records_nothing(self):
        with obs.span("a", key="v") as sp:
            assert sp is NOOP_SPAN
            assert sp.set(more="attrs") is NOOP_SPAN
        assert not hasattr(sp, "attrs")
        assert sp.elapsed == 0.0

    def test_event_is_noop(self):
        assert obs.event("anything", n=1) is None

    def test_disabled_emits_no_file(self, tmp_path):
        p = tmp_path / "t.jsonl"
        with obs.span("a"):
            obs.event("b")
        assert not p.exists()


class TestMetrics:
    def test_counter_and_gauge(self):
        c = metrics.counter("t.c")
        c.inc()
        c.inc(4)
        metrics.gauge("t.g").set(2.5)
        snap = metrics.snapshot()
        assert snap["counters"]["t.c"] == 5
        assert snap["gauges"]["t.g"] == 2.5
        assert metrics.counter("t.c") is c  # registry returns the handle

    def test_log2_histogram(self):
        h = metrics.histogram("t.h")
        for v in (1, 2, 3, 1000, 0):
            h.observe(v)
        snap = metrics.snapshot()["histograms"]["t.h"]
        assert snap["count"] == 5
        assert snap["buckets"] == {"0": 2, "1": 2, "9": 1}
        assert h.mean == pytest.approx(1006 / 5)

    def test_exact_histogram(self):
        h = metrics.histogram("t.e", kind="exact")
        h.observe(3)
        h.observe(3)
        h.observe(7)
        assert metrics.snapshot()["histograms"]["t.e"]["buckets"] == \
            {"3": 2, "7": 1}

    def test_merge(self):
        metrics.counter("m.c").inc(2)
        metrics.histogram("m.h").observe(4)
        a = metrics.snapshot()
        metrics.reset()
        metrics.counter("m.c").inc(3)
        metrics.counter("m.other").inc(1)
        metrics.histogram("m.h").observe(4)
        metrics.histogram("m.h").observe(100)
        b = metrics.snapshot()
        m = metrics.merge(a, b)
        assert m["counters"]["m.c"] == 5
        assert m["counters"]["m.other"] == 1
        h = m["histograms"]["m.h"]
        assert h["count"] == 3
        assert h["sum"] == 108
        assert h["buckets"]["2"] == 2 and h["buckets"]["6"] == 1
        # merge must not alias its inputs
        assert a["counters"]["m.c"] == 2
        assert a["histograms"]["m.h"]["count"] == 1

    def test_merge_kind_mismatch_raises(self):
        a = {"histograms": {"x": {"kind": "log2", "count": 1, "sum": 1,
                                  "buckets": {"0": 1}}}}
        b = {"histograms": {"x": {"kind": "exact", "count": 1, "sum": 1,
                                  "buckets": {"1": 1}}}}
        with pytest.raises(ValueError):
            metrics.merge(a, b)

    def test_reset_keeps_handles_valid(self):
        c = metrics.counter("r.c")
        c.inc(9)
        metrics.reset()
        assert c.value == 0
        c.inc()
        assert metrics.snapshot()["counters"]["r.c"] == 1


def _generate_exp2():
    from repro.core import FunctionSpec, all_values, generate
    from repro.fp.formats import FLOAT8
    from repro.rangereduction import reduction_for

    rr = reduction_for("exp2", FLOAT8)
    return generate(FunctionSpec("exp2", FLOAT8, rr),
                    list(all_values(FLOAT8)))


class TestPipelineEnvMatrix:
    """The tier-1 pipeline must behave identically traced and untraced."""

    @pytest.mark.parametrize("tracing", [False, True],
                             ids=["REPRO_TRACE-off", "REPRO_TRACE-on"])
    def test_generation_same_result(self, tracing, tmp_path, monkeypatch):
        from repro.libm.serialize import function_to_dict

        if tracing:
            monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.jsonl"))
            assert obs.configure_from_env()
        else:
            monkeypatch.delenv("REPRO_TRACE", raising=False)
            assert not obs.enabled()

        fn = _generate_exp2()
        # the no-op path must not leak into results: identical tables
        want = function_to_dict(fn)["approx"]
        obs.disable()
        assert not obs.enabled()
        again = function_to_dict(_generate_exp2())["approx"]
        assert want == again
        # GenStats phase accounting is live in BOTH modes (timed_span)
        assert set(fn.stats.phase_s) == {"oracle", "reduced", "piecewise"}
        assert fn.stats.gen_time_s > 0
        assert fn.stats.oracle_time_s == fn.stats.phase_s["oracle"]

    def test_trace_carries_pipeline_events(self, tmp_path):
        p = tmp_path / "gen.jsonl"
        obs.enable(p)
        _generate_exp2()
        obs.disable()
        names = {e.get("name") for e in _read(p)}
        assert {"generate", "oracle", "reduced", "piecewise", "approxfunc",
                "ceg.round", "ceg.done", "lp.solve",
                "split.attempt"} <= names

    def test_disabled_run_emits_nothing_anywhere(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)  # catch stray default-path writes
        _generate_exp2()
        assert list(tmp_path.iterdir()) == []


class TestReport:
    @pytest.fixture()
    def trace(self, tmp_path):
        p = tmp_path / "gen.jsonl"
        obs.enable(p)
        _generate_exp2()
        obs.disable()
        return p

    def test_summarize(self, trace):
        s = summarize(load_trace(trace))
        exp2 = s["functions"]["exp2"]
        assert exp2["gen_calls"] == 1
        assert exp2["ceg_rounds"] >= 1
        assert exp2["lp_solves"] >= 1
        assert exp2["lp_max_rows"] > 0
        assert set(exp2["phase_s"]) == {"oracle", "reduced", "piecewise"}
        assert s["metrics"]["counters"]["lp.solves"] == exp2["lp_solves"]

    def test_render_summary_and_tree(self, trace):
        events = load_trace(trace)
        text = render_summary(summarize(events))
        assert "exp2" in text and "oracle(s)" in text and "ceg-it" in text
        tree = render_tree(events)
        assert "generate" in tree and "piecewise" in tree
        mtext = render_metrics(summarize(events)["metrics"])
        assert "lp.solves" in mtext

    def test_malformed_trace_raises(self, tmp_path):
        p = tmp_path / "bad.jsonl"
        p.write_text('{"ev": "span"\nnot json\n')
        with pytest.raises(ValueError, match="bad trace line"):
            load_trace(p)


class TestRuntimeInstrument:
    def test_instrument_counts(self, float8_exp):
        from repro.libm.runtime import instrument

        g = instrument(float8_exp, prefix="t.exp")
        g.evaluate(1.0)
        g.evaluate(0.5)
        import math
        g.evaluate(math.inf)  # special-case layer
        snap = metrics.snapshot()
        assert snap["counters"]["t.exp.calls"] == 3
        assert snap["counters"]["t.exp.special"] == 1
        hist = snap["histograms"]["t.exp.exp.subdomain"]
        assert hist["kind"] == "exact"
        assert hist["count"] == 2

    def test_instrument_matches_plain(self, float8_exp):
        from repro.libm.runtime import instrument

        g = instrument(float8_exp, prefix="t.same")
        for x in (0.25, 1.0, 2.0, -3.5):
            assert g.evaluate(x) == float8_exp.evaluate(x)

    def test_shared_object_untouched(self, float8_exp):
        from repro.libm.runtime import instrument

        before = float8_exp.evaluate
        instrument(float8_exp, prefix="t.untouched")
        assert float8_exp.evaluate is before
