"""Tests for the shipped posit32 library (frozen tables + public API)."""

import math
import random

import pytest

from repro.core.sampling import sample_values
from repro.libm.runtime import (POSIT32_FUNCTIONS, available,
                                load_function as load)
from repro.oracle import default_oracle as orc
from repro.posit.format import POSIT32


def _have_data() -> bool:
    return set(available("posit32")) == set(POSIT32_FUNCTIONS)


pytestmark = pytest.mark.skipif(
    not _have_data(), reason="posit32 tables not generated")


class TestKnownValues:
    def test_exact_values(self):
        from repro.libm import posit32 as rp
        assert rp.log2(8.0) == 3.0
        assert rp.exp(0.0) == 1.0
        assert rp.exp2(10.0) == 1024.0
        assert rp.cosh(0.0) == 1.0

    def test_saturation(self):
        from repro.libm import posit32 as rp
        assert rp.exp(800.0) == float(POSIT32.maxpos)
        assert rp.exp(-800.0) == float(POSIT32.minpos)
        assert rp.exp2(500.0) == float(POSIT32.maxpos)
        assert rp.sinh(300.0) == float(POSIT32.maxpos)
        assert rp.sinh(-300.0) == -float(POSIT32.maxpos)
        assert rp.cosh(300.0) == float(POSIT32.maxpos)

    def test_nar_handling(self):
        from repro.libm import posit32 as rp
        assert math.isnan(rp.exp(math.nan))
        assert math.isnan(rp.ln(-1.0))
        assert math.isnan(rp.ln(0.0))  # ln(0) = -inf -> NaR -> NaN value
        assert rp.exp_bits(POSIT32.nar_bits) == POSIT32.nar_bits
        assert rp.ln_bits(POSIT32.from_double(-2.0)) == POSIT32.nar_bits

    def test_bits_api(self):
        from repro.libm import posit32 as rp
        one = POSIT32.from_double(1.0)
        assert rp.ln_bits(one) == 0
        assert POSIT32.to_double(rp.exp_bits(0)) == 1.0


@pytest.mark.parametrize("fn_name", POSIT32_FUNCTIONS)
def test_sampled_against_oracle(fn_name):
    from repro.rangereduction.domains import sampling_domain
    from repro.rangereduction import reduction_for

    rr = reduction_for(fn_name, POSIT32)
    lo, hi = sampling_domain(fn_name, POSIT32, rr)
    xs = sample_values(POSIT32, 250, random.Random(424242), lo, hi)
    g = load(fn_name, "posit32")
    wrong = 0
    for x in xs:
        s = rr.special(x)
        want = (POSIT32.from_double(s) if s is not None
                else orc.round_to_bits(fn_name, x, POSIT32))
        if g.evaluate_bits(x) != want:
            wrong += 1
    assert wrong == 0, f"{fn_name}: {wrong}/{len(xs)} wrong"
