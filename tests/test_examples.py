"""The shipped examples must run cleanly (they double as integration
tests of the public API)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str) -> subprocess.CompletedProcess:
    return subprocess.run([sys.executable, str(EXAMPLES / name)],
                          capture_output=True, text=True, timeout=600)


def test_quickstart_runs():
    proc = _run("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "RLIBM-32 float32 library" in proc.stdout
    assert "MISMATCH" not in proc.stdout


def test_sinpi_walkthrough_runs():
    proc = _run("sinpi_walkthrough.py")
    assert proc.returncode == 0, proc.stderr
    assert "correctly rounded" in proc.stdout
    assert "WRONG" not in proc.stdout


def test_posit_playground_runs():
    proc = _run("posit_playground.py")
    assert proc.returncode == 0, proc.stderr
    assert "tapered precision" in proc.stdout


@pytest.mark.slow
def test_generate_custom_format_runs():
    proc = _run("generate_custom_format.py")
    assert proc.returncode == 0, proc.stderr
    assert "0 mismatches" in proc.stdout
