"""Tests for threshold discovery and range-reduction tables."""

import math

import pytest

from repro.fp.formats import FLOAT32
from repro.oracle import default_oracle as orc
from repro.posit.format import POSIT16
from repro.rangereduction.tables import (exp2_fraction_table, log_table,
                                         log_scale_constant, sinhcosh_tables,
                                         sinpicospi_tables)
from repro.rangereduction.thresholds import (max_finite, ordinal_boundary,
                                             result_equals)


class TestOrdinalBoundary:
    def test_simple_predicate(self):
        last, first = ordinal_boundary(FLOAT32, lambda x: x < 1.5, 1.0, 2.0)
        assert last < 1.5 <= first
        assert FLOAT32.round_double(last) == last
        # adjacent float32 values
        assert FLOAT32.to_ordinal(FLOAT32.from_double(first)) - \
            FLOAT32.to_ordinal(FLOAT32.from_double(last)) == 1

    def test_exp_overflow_boundary(self):
        pred = result_equals("exp", FLOAT32, FLOAT32.inf_bits, orc)
        last_fin, first_inf = ordinal_boundary(
            FLOAT32, lambda x: not pred(x), 1.0, 256.0)
        assert orc.round_to_bits("exp", last_fin, FLOAT32) != FLOAT32.inf_bits
        assert orc.round_to_bits("exp", first_inf, FLOAT32) == FLOAT32.inf_bits
        assert math.isclose(first_inf, 88.72284, rel_tol=1e-6)

    def test_bad_brackets_rejected(self):
        with pytest.raises(ValueError):
            ordinal_boundary(FLOAT32, lambda x: x < 1.5, 2.0, 3.0)
        with pytest.raises(ValueError):
            ordinal_boundary(FLOAT32, lambda x: True, 1.0, 2.0)
        with pytest.raises(ValueError):
            ordinal_boundary(FLOAT32, lambda x: x < 1.5, 1.0, 1.0)

    def test_max_finite(self):
        assert max_finite(FLOAT32) == 3.4028234663852886e38
        assert max_finite(POSIT16) == float(POSIT16.maxpos)


class TestTables:
    def test_exp2_table(self):
        t = exp2_fraction_table(64)
        assert len(t) == 64
        assert t[0] == 1.0
        assert t[32] == math.sqrt(2) or abs(t[32] - math.sqrt(2)) < 1e-15
        assert all(a < b for a, b in zip(t, t[1:]))

    def test_log_tables(self):
        for base, logf in [("ln", math.log), ("log2", math.log2),
                           ("log10", math.log10)]:
            t = log_table(base, 7)
            assert len(t) == 128
            assert t[0] == 0.0
            for j in (1, 64, 127):
                assert math.isclose(t[j], logf(1 + j / 128), rel_tol=1e-15)

    def test_log_scale_constants(self):
        assert log_scale_constant("ln") == 0.6931471805599453
        assert log_scale_constant("log10") == 0.3010299956639812
        assert log_scale_constant("log2") == 1.0

    def test_sinhcosh_tables(self):
        s, c = sinhcosh_tables(128)
        assert len(s) == 129 and len(c) == 129
        assert s[0] == 0.0 and c[0] == 1.0
        assert math.isclose(s[64], math.sinh(1.0), rel_tol=1e-15)
        assert math.isclose(c[64], math.cosh(1.0), rel_tol=1e-15)
        # cosh**2 - sinh**2 == 1 approximately at table nodes
        assert abs(c[100] ** 2 - s[100] ** 2 - 1) < 1e-12

    def test_sinpicospi_tables(self):
        s, c = sinpicospi_tables(256)
        assert len(s) == 257 and len(c) == 257
        assert s[0] == 0.0 and c[0] == 1.0
        assert s[256] == 1.0 and c[256] == 0.0
        # symmetry sinpi(n/512) == cospi((256-n)/512)
        for n in (16, 100, 200):
            assert abs(s[n] - c[256 - n]) < 1e-15

    def test_tables_cached(self):
        assert exp2_fraction_table(64) is exp2_fraction_table(64)
        assert sinpicospi_tables(256) is sinpicospi_tables(256)
