"""Tests for the range reductions: exactness claims, identities, specials."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.fp.formats import FLOAT8, FLOAT32
from repro.posit.format import POSIT16
from repro.rangereduction import (CosPiReduction, ExpReduction, LogReduction,
                                  SinhCoshReduction, SinPiReduction,
                                  reduction_for)
from repro.rangereduction.sinpicospi import _split_table, _split_to_half

f32_values = st.floats(allow_nan=False, allow_infinity=False, width=32)


@pytest.fixture(scope="module")
def rr_log():
    return LogReduction("ln", FLOAT32)


@pytest.fixture(scope="module")
def rr_exp():
    return ExpReduction("exp", FLOAT32)


@pytest.fixture(scope="module")
def rr_sinh():
    return SinhCoshReduction("sinh", FLOAT32)


@pytest.fixture(scope="module")
def rr_sinpi():
    return SinPiReduction(FLOAT32)


@pytest.fixture(scope="module")
def rr_cospi():
    return CosPiReduction(FLOAT32)


class TestFactory:
    def test_all_names(self):
        for name in ("ln", "log2", "log10", "exp", "exp2", "exp10",
                     "sinh", "cosh", "sinpi", "cospi"):
            rr = reduction_for(name, FLOAT8)
            assert rr.name == name

    def test_unknown(self):
        with pytest.raises(ValueError):
            reduction_for("tan", FLOAT8)


class TestLogReduction:
    def test_specials(self, rr_log):
        assert math.isnan(rr_log.special(math.nan))
        assert rr_log.special(0.0) == -math.inf
        assert math.isnan(rr_log.special(-1.0))
        assert rr_log.special(math.inf) == math.inf
        assert rr_log.special(1.5) is None

    @given(f32_values.filter(lambda x: x > 0))
    @settings(max_examples=300)
    def test_decomposition_identity(self, x):
        rr = LogReduction("ln", FLOAT32)
        red = rr.reduce(x)
        e, j = red.ctx
        # x == 2**e * F * (1 + r') where r' is the exact (m-F)/F;
        # check m - F subtraction was exact via reconstruction
        f = 1 + Fraction(j, 128)
        m = Fraction(x) / Fraction(2) ** e
        assert 1 <= m < 2
        assert 0 <= m - f < Fraction(1, 128)
        # the computed r is the double rounding of the exact ratio
        exact_r = (m - f) / f
        assert abs(Fraction(red.r) - exact_r) <= Fraction(2, 2 ** 60)

    def test_r_zero_at_table_points(self, rr_log):
        for j in (0, 1, 64, 127):
            x = float(1 + Fraction(j, 128))
            red = rr_log.reduce(x)
            assert red.r == 0.0
            assert red.ctx == (0, j)

    def test_subnormal_inputs(self, rr_log):
        red = rr_log.reduce(1.401298464324817e-45)  # min float32 subnormal
        e, j = red.ctx
        assert e == -149 and j == 0 and red.r == 0.0

    def test_compensation_monotone(self, rr_log):
        red = rr_log.reduce(3.7)
        lo = rr_log.compensate([0.001], red.ctx)
        hi = rr_log.compensate([0.002], red.ctx)
        assert hi > lo

    def test_log2_pure_exponent(self):
        rr = LogReduction("log2", FLOAT32)
        red = rr.reduce(8.0)
        assert rr.compensate([0.0], red.ctx) == 3.0


class TestExpReduction:
    def test_thresholds_match_known_float32(self, rr_exp):
        # classic float32 expf cut-offs
        assert math.isclose(rr_exp._hi_thr, 88.72284, rel_tol=1e-6)
        assert math.isclose(rr_exp._lo_thr, -103.97209, rel_tol=1e-6)

    def test_specials(self, rr_exp):
        assert rr_exp.special(89.0) == math.inf
        assert rr_exp.special(math.inf) == math.inf
        assert rr_exp.special(-104.0) == 0.0
        assert rr_exp.special(-math.inf) == 0.0
        assert rr_exp.special(0.0) == 1.0
        assert rr_exp.special(1.0) is None
        assert math.isnan(rr_exp.special(math.nan))

    def test_exp2_reduction_exact(self):
        rr = ExpReduction("exp2", FLOAT32)
        for x in (0.75, -13.28125, 100.0078125, 1.1754944e-38):
            red = rr.reduce(x)
            k = round(x * 64.0)
            assert Fraction(red.r) == Fraction(x) - Fraction(k, 64)

    def test_reduced_range(self, rr_exp):
        for x in (-80.0, -1.0, 0.5, 3.3, 88.0):
            red = rr_exp.reduce(x)
            assert abs(red.r) <= math.log(2) / 128 * 1.0001

    def test_compensation_identity(self, rr_exp):
        red = rr_exp.reduce(10.0)
        q, j = red.ctx
        v = math.exp(red.r)
        y = rr_exp.compensate([v], red.ctx)
        assert math.isclose(y, math.exp(10.0), rel_tol=1e-12)

    def test_posit_saturation_special(self):
        rr = ExpReduction("exp", POSIT16)
        big = rr.special(100.0)
        assert big == float(POSIT16.maxpos)
        tiny = rr.special(-100.0)
        assert tiny == float(POSIT16.minpos)

    def test_negative_zero_never_reduced(self, rr_exp):
        red = rr_exp.reduce(1e-40)
        assert math.copysign(1.0, red.r) == 1.0


class TestHardInputCandidates:
    """The dense-band midpoint-preimage enumerations (exp, cospi)."""

    def test_base_default_is_empty(self, rr_log, rr_sinh, rr_sinpi):
        assert rr_log.hard_input_candidates() == []
        assert rr_sinh.hard_input_candidates() == []
        assert rr_sinpi.hard_input_candidates() == []

    def test_posit_targets_exempt(self):
        # posit near-1 precision over-constrains generation; the band
        # enumeration is IEEE-only (see docstring + ROADMAP)
        assert ExpReduction("exp", POSIT16).hard_input_candidates() == []
        assert CosPiReduction(POSIT16).hard_input_candidates() == []

    def test_small_format_band_and_specials(self):
        rr = ExpReduction("exp2", FLOAT8)
        cands = rr.hard_input_candidates()
        for x in cands:
            assert abs(x) < rr._c / 2
            assert rr.special(x) is None
        # deterministic: pure arithmetic, no RNG
        assert cands == rr.hard_input_candidates()

    def test_float32_family_covers_known_misroundings(self, rr_exp):
        # inputs several shipped exp tables rounded wrong before the
        # enumerator existed (found by multi-seed adversarial mining);
        # all graze a midpoint within 3e-5 interval widths, so the
        # enumeration must produce every one of them
        known = [0x3689ffeb, 0x369dffe8, 0x354ffffa, 0x38b79df1,
                 0x395b4a21, 0x3a80edc3, 0xb3c00003, 0xb9369c12]
        cands = rr_exp.hard_input_candidates()
        bits = {FLOAT32.from_double(x) for x in cands}
        missing = [hex(b) for b in known if b not in bits]
        assert not missing, f"enumeration lost known hard inputs: {missing}"
        assert len(cands) <= rr_exp._GRAZE_CAP

    def test_cospi_band_covers_known_misroundings(self):
        # |x| of inputs the shipped cospi/float32 table rounded wrong
        # before the enumerator existed (cospi is even, so positive
        # candidates constrain both signs)
        rr = CosPiReduction(FLOAT32)
        cands = rr.hard_input_candidates()
        bits = {FLOAT32.from_double(x) for x in cands}
        known = [0x3a3998a5, 0x3aa67079, 0x3ac9ed99]
        missing = [hex(b) for b in known if b not in bits]
        assert not missing, f"enumeration lost known hard inputs: {missing}"
        for x in cands:
            assert 0.0 < x < 1.0 / 512.0 + 1.0 / 4096.0
            assert rr.special(x) is None
        assert len(cands) <= rr._GRAZE_CAP
        assert cands == rr.hard_input_candidates()


class TestSinhCoshReduction:
    def test_reduction_exact(self, rr_sinh):
        for x in (0.7, -5.33, 42.015625, 88.0):
            red = rr_sinh.reduce(x)
            k, sgn = red.ctx
            assert Fraction(red.r) == abs(Fraction(x)) - Fraction(k, 64)
            assert abs(red.r) <= 1 / 128

    def test_sign_handling(self, rr_sinh):
        rp = rr_sinh.reduce(1.5)
        rn = rr_sinh.reduce(-1.5)
        assert rp.r == rn.r
        assert rp.ctx[1] == 1.0 and rn.ctx[1] == -1.0

    def test_cosh_even(self):
        rr = SinhCoshReduction("cosh", FLOAT32)
        assert rr.reduce(2.0).ctx == rr.reduce(-2.0).ctx

    def test_identity(self, rr_sinh):
        x = 3.21875
        red = rr_sinh.reduce(x)
        y = rr_sinh.compensate([math.sinh(red.r), math.cosh(red.r)], red.ctx)
        assert math.isclose(y, math.sinh(x), rel_tol=1e-12)

    def test_specials(self, rr_sinh):
        assert rr_sinh.special(0.0) == 0.0
        assert math.copysign(1.0, rr_sinh.special(-0.0)) == -1.0
        assert rr_sinh.special(100.0) == math.inf
        assert rr_sinh.special(-100.0) == -math.inf
        cosh = SinhCoshReduction("cosh", FLOAT32)
        assert cosh.special(-100.0) == math.inf
        assert cosh.special(0.0) == 1.0

    def test_tables_correct(self, rr_sinh):
        assert rr_sinh._sinh_t[0] == 0.0 and rr_sinh._cosh_t[0] == 1.0
        assert math.isclose(rr_sinh._sinh_t[64], math.sinh(1.0), rel_tol=1e-15)


class TestSplitHelpers:
    @given(st.floats(min_value=0, max_value=2 ** 23, allow_nan=False,
                     exclude_max=True))
    @settings(max_examples=300)
    def test_split_to_half_exact(self, ax):
        k, m, l2 = _split_to_half(ax)
        assert 0.0 <= l2 <= 0.5
        assert k in (0, 1) and m in (0, 1)
        # reconstruct |x| mod 2 exactly
        j = Fraction(k) + (Fraction(1) - Fraction(l2) if m else Fraction(l2))
        assert (Fraction(ax) - j) % 2 == 0

    @given(st.floats(min_value=0, max_value=0.5, allow_nan=False))
    @settings(max_examples=300)
    def test_split_table_exact(self, l2):
        n, q = _split_table(l2)
        assert 0 <= n <= 255
        assert 0.0 <= q <= 1 / 512
        assert Fraction(l2) == Fraction(n, 512) + Fraction(q)


class TestSinPiReduction:
    def test_specials(self, rr_sinpi):
        assert math.isnan(rr_sinpi.special(math.inf))
        assert math.isnan(rr_sinpi.special(math.nan))
        assert rr_sinpi.special(0.0) == 0.0
        assert math.copysign(1.0, rr_sinpi.special(-0.0)) == -1.0
        z = rr_sinpi.special(2.0 ** 23)
        assert z == 0.0 and math.copysign(1.0, z) == 1.0
        z = rr_sinpi.special(-(2.0 ** 24))
        assert math.copysign(1.0, z) == -1.0
        assert rr_sinpi.special(0.25) is None

    def test_identity(self, rr_sinpi):
        for x in (0.1, 0.625, 1.3, -2.2, 100.375, 3.5):
            red = rr_sinpi.reduce(x)
            y = rr_sinpi.compensate(
                [math.sin(math.pi * red.r), math.cos(math.pi * red.r)],
                red.ctx)
            assert math.isclose(y, math.sin(math.pi * x), rel_tol=1e-9,
                                abs_tol=1e-12), x

    def test_exact_integer_gives_positive_zero(self, rr_sinpi):
        for x in (-2.0, 2.0, -1.0, 5.0):
            red = rr_sinpi.reduce(x)
            y = rr_sinpi.compensate([0.0, 1.0], red.ctx)
            assert y == 0.0 and math.copysign(1.0, y) == 1.0


class TestCosPiReduction:
    def test_specials(self, rr_cospi):
        assert rr_cospi.special(2.0 ** 24) == 1.0
        assert rr_cospi.special(2.0 ** 23) == 1.0      # 8388608 is even
        assert rr_cospi.special(2.0 ** 23 + 1.0) == -1.0
        assert rr_cospi.special(0.25) is None

    def test_identity(self, rr_cospi):
        for x in (0.1, 0.625, 1.3, -2.2, 100.375, 0.0001, 0.5):
            red = rr_cospi.reduce(x)
            y = rr_cospi.compensate(
                [math.sin(math.pi * red.r), math.cos(math.pi * red.r)],
                red.ctx)
            assert math.isclose(y, math.cos(math.pi * x), rel_tol=1e-9,
                                abs_tol=1e-12), x

    def test_monotonic_reduction_r_exact(self, rr_cospi):
        # for N != 0, R = N'/512 - L' must be exact
        for x in (0.1, 0.2345, 0.499, 1.37):
            red = rr_cospi.reduce(x)
            n, _ = red.ctx
            if n == 0:
                continue
            _, _, l2 = _split_to_half(abs(x))
            assert Fraction(red.r) == Fraction(n, 512) - Fraction(l2)

    def test_table_coefficients_nonnegative(self, rr_cospi):
        # the section-5 rewrite guarantees non-negative table weights
        assert all(v >= 0 for v in rr_cospi._sin_t)
        assert all(v >= 0 for v in rr_cospi._cos_t)
