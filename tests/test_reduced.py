"""Tests for reduced rounding intervals, Algorithm 2 (repro.core.reduced)."""

import math

import pytest

from repro.core.intervals import target_rounding_interval
from repro.core.reduced import max_steps_within, reduced_intervals
from repro.fp.bits import advance_double
from repro.fp.formats import FLOAT8, FLOAT16
from repro.oracle import default_oracle as orc
from repro.rangereduction import RangeReductionError, reduction_for
from repro.rangereduction.base import RangeReduction, Reduced


class TestMaxStepsWithin:
    def test_zero_steps(self):
        assert max_steps_within(lambda k: k == 0) == 0

    def test_exact_boundaries(self):
        for bound in (1, 2, 3, 7, 100, 12345):
            assert max_steps_within(lambda k, b=bound: k <= b) == bound

    def test_huge_bound_caps(self):
        assert max_steps_within(lambda k: True) == 2 ** 62


def _pairs(fn_name, fmt, rr):
    out = []
    for n in range(-(fmt.inf_bits - 1), fmt.inf_bits):
        bits = fmt.from_ordinal(n)
        x = fmt.to_double(bits)
        if rr.special(x) is not None:
            continue
        y = orc.round_to_bits(fn_name, x, fmt)
        out.append((x, target_rounding_interval(fmt, y)))
    return out


class TestReducedIntervals:
    def test_single_function_exp_float8(self):
        rr = reduction_for("exp", FLOAT8)
        pairs = _pairs("exp", FLOAT8, rr)
        rset = reduced_intervals(pairs, rr)
        assert rset.input_count == len(pairs)
        cs = rset.constraints["exp"]
        assert cs == sorted(cs, key=lambda c: c.r)
        assert rset.reduced_count == len(cs)
        # every interval contains the correctly rounded double of exp(r)
        for c in cs:
            v = orc.round_to_double("exp", c.r)
            assert c.lo <= v <= c.hi

    def test_intervals_are_sound(self):
        """Any values inside the reduced intervals must compensate into
        the original rounding intervals (the defining property)."""
        rr = reduction_for("exp", FLOAT8)
        pairs = _pairs("exp", FLOAT8, rr)
        rset = reduced_intervals(pairs, rr)
        by_r = {c.r: c for c in rset.constraints["exp"]}
        for x, iv in pairs:
            red = rr.reduce(x)
            c = by_r[red.r]
            for v in (c.lo, c.hi):
                y = rr.compensate([v], red.ctx)
                assert iv.lo <= y <= iv.hi, (x, v)

    def test_two_function_sinpi_soundness(self):
        rr = reduction_for("sinpi", FLOAT16)
        pairs = _pairs("sinpi", FLOAT16, rr)[: 3000]
        rset = reduced_intervals(pairs, rr)
        assert set(rset.constraints) == {"sinpi", "cospi"}
        by_r = {"sinpi": {c.r: c for c in rset.constraints["sinpi"]},
                "cospi": {c.r: c for c in rset.constraints["cospi"]}}
        for x, iv in pairs:
            red = rr.reduce(x)
            cs = by_r["sinpi"][red.r]
            cc = by_r["cospi"][red.r]
            # the box corners must land inside the rounding interval
            for vs, vc in [(cs.lo, cc.lo), (cs.hi, cc.hi)]:
                y = rr.compensate([vs, vc], red.ctx)
                assert iv.lo <= y <= iv.hi, (x, vs, vc)

    def test_widening_is_maximal_for_exp(self):
        """One more simultaneous step must exit some rounding interval."""
        rr = reduction_for("exp", FLOAT8)
        pairs = _pairs("exp", FLOAT8, rr)
        rset = reduced_intervals(pairs, rr)
        by_r = {}
        for x, iv in pairs:
            by_r.setdefault(rr.reduce(x).r, []).append((x, iv))
        for c in rset.constraints["exp"]:
            below = advance_double(c.lo, -1)
            above = advance_double(c.hi, 1)
            out_below = out_above = False
            for x, iv in by_r[c.r]:
                red = rr.reduce(x)
                if not (iv.lo <= rr.compensate([below], red.ctx) <= iv.hi):
                    out_below = True
                if not (iv.lo <= rr.compensate([above], red.ctx) <= iv.hi):
                    out_above = True
            assert out_below, c
            assert out_above, c

    def test_broken_compensation_raises(self):
        class Broken(RangeReduction):
            name = "exp"
            fn_names = ("exp",)
            exponents = ((0, 1),)

            def special(self, x):
                return None

            def reduce(self, x):
                return Reduced(x / 64.0, ())

            def compensate(self, values, ctx):
                return values[0] * 64.0 + 1000.0   # nowhere near exp(x)

        rr = Broken()
        pairs = _pairs("exp", FLOAT8, reduction_for("exp", FLOAT8))[:5]
        with pytest.raises(RangeReductionError):
            reduced_intervals(pairs, rr)
