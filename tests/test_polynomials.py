"""Tests for polynomial evaluation (repro.core.polynomials)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.polynomials import Polynomial, horner_structure

reasonable = st.floats(min_value=-1e3, max_value=1e3,
                       allow_nan=False, allow_infinity=False)


class TestHornerStructure:
    @pytest.mark.parametrize("exps,want", [
        ((0, 1, 2, 3), (0, 1)),
        ((1, 3, 5), (1, 2)),
        ((0, 2, 4), (0, 2)),
        ((2,), (2, 1)),
        ((3, 4, 5), (3, 1)),
        ((0, 1, 3), None),
        ((1, 0), None),
        ((1, 1, 2), None),
    ])
    def test_detection(self, exps, want):
        assert horner_structure(exps) == want


class TestEvaluation:
    def test_dense(self):
        p = Polynomial((0, 1, 2), (1.0, 2.0, 3.0))
        assert p(2.0) == 1.0 + 2.0 * 2.0 + 3.0 * 4.0

    def test_odd(self):
        p = Polynomial((1, 3), (1.0, -1 / 6))
        r = 0.1
        # Horner: (c1 + r2*c3) * r
        u = r * r
        assert p(r) == (-1 / 6 * u + 1.0) * r

    def test_even(self):
        p = Polynomial((0, 2), (1.0, -0.5))
        r = 0.25
        assert p(r) == -0.5 * (r * r) + 1.0

    def test_irregular_exponents(self):
        p = Polynomial((0, 1, 4), (1.0, 1.0, 2.0))
        assert p(2.0) == 1.0 + 2.0 + 2.0 * 16.0

    def test_single_term(self):
        assert Polynomial((3,), (2.0,))(2.0) == 16.0
        assert Polynomial((0,), (7.0,))(100.0) == 7.0

    def test_degree_terms(self):
        p = Polynomial((1, 3, 5), (1.0, 2.0, 3.0))
        assert p.degree == 5 and p.terms == 3

    def test_prefix(self):
        p = Polynomial((1, 3, 5), (1.0, 2.0, 3.0))
        q = p.prefix(2)
        assert q.exponents == (1, 3) and q.coefficients == (1.0, 2.0)
        with pytest.raises(ValueError):
            p.prefix(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Polynomial((0, 1), (1.0,))
        with pytest.raises(ValueError):
            Polynomial((), ())


class TestVectorizedBitEquality:
    """eval_many must match __call__ bit-for-bit (the generator's Check
    relies on this equivalence)."""

    @pytest.mark.parametrize("exps", [(0, 1, 2, 3), (1, 3, 5, 7), (0, 2, 4),
                                      (0, 1, 4), (2,)])
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_scalar_equals_vector(self, exps, data):
        coeffs = tuple(data.draw(reasonable) for _ in exps)
        rs = [data.draw(reasonable) for _ in range(7)]
        p = Polynomial(exps, coeffs)
        vec = p.eval_many(np.array(rs))
        for r, v in zip(rs, vec):
            s = p(r)
            assert (s == v) or (np.isnan(s) and np.isnan(v))

    def test_tiny_and_huge_inputs(self):
        p = Polynomial((1, 3, 5), (3.14, 2.0, 1.0))
        rs = np.array([1e-300, 1e-45, 5e-324, 1e10])
        vec = p.eval_many(rs)
        for r, v in zip(rs, vec):
            assert p(float(r)) == v or (np.isnan(v) and np.isnan(p(float(r))))
