"""Tests for the command line interface (python -m repro)."""

import pytest

from repro.__main__ import main
from repro.libm.runtime import available


needs_float32 = pytest.mark.skipif(
    len(available("float32")) < 10, reason="float32 tables not generated")


class TestEval:
    @needs_float32
    def test_eval_agrees(self, capsys):
        assert main(["eval", "log2", "8"]) == 0
        out = capsys.readouterr().out
        assert "3.0" in out and "agrees" in out

    @needs_float32
    def test_eval_special(self, capsys):
        assert main(["eval", "exp", "1000", "--target", "float32"]) == 0
        assert "inf" in capsys.readouterr().out


class TestTable3:
    @needs_float32
    def test_table3_prints(self, capsys):
        assert main(["table3", "--target", "float32"]) == 0
        out = capsys.readouterr().out
        assert "sinpi" in out and "gen(min)" in out

    def test_table3_missing_target(self, capsys):
        assert main(["table3", "--target", "float16"]) in (0, 1)


class TestGenerate:
    def test_generate_tiny_format_to_tmp(self, tmp_path, capsys):
        # float8 via the serialize registry: exhaustive in a second
        rc = main(["generate", "--target", "float8",
                   "--functions", "exp2", "--quick",
                   "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "exp2.py").exists()
        assert (tmp_path / "__init__.py").exists()


class TestArgparse:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
