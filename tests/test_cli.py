"""Tests for the command line interface (python -m repro)."""

import pytest

from repro.__main__ import main
from repro.libm.runtime import available


needs_float32 = pytest.mark.skipif(
    len(available("float32")) < 10, reason="float32 tables not generated")


class TestEval:
    @needs_float32
    def test_eval_agrees(self, capsys):
        assert main(["eval", "log2", "8"]) == 0
        out = capsys.readouterr().out
        assert "3.0" in out and "agrees" in out

    @needs_float32
    def test_eval_special(self, capsys):
        assert main(["eval", "exp", "1000", "--target", "float32"]) == 0
        assert "inf" in capsys.readouterr().out


class TestTable3:
    @needs_float32
    def test_table3_prints(self, capsys):
        assert main(["table3", "--target", "float32"]) == 0
        out = capsys.readouterr().out
        assert "sinpi" in out and "gen(min)" in out

    def test_table3_missing_target(self, capsys):
        assert main(["table3", "--target", "float16"]) in (0, 1)


class TestGenerate:
    def test_generate_tiny_format_to_tmp(self, tmp_path, capsys):
        # float8 via the serialize registry: exhaustive in a second
        rc = main(["generate", "--target", "float8",
                   "--functions", "exp2", "--quick",
                   "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "exp2.py").exists()
        assert (tmp_path / "__init__.py").exists()


class TestArgparse:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


@pytest.mark.obs
class TestTraceStats:
    def test_trace_stats_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "gen.jsonl"
        rc = main(["trace", "--out", str(trace), "--",
                   "generate", "--target", "float8",
                   "--functions", "exp2", "--quick",
                   "--out", str(tmp_path / "data")])
        assert rc == 0
        assert trace.exists()
        capsys.readouterr()

        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        # Table-3-style summary: per-phase wall time, CEG iterations,
        # LP sizes — plus the flame tree and the metrics snapshot
        assert "exp2" in out
        assert "oracle(s)" in out and "piece(s)" in out
        assert "ceg-it" in out and "lp-rows" in out
        assert "phase breakdown" in out and "generate" in out
        assert "lp.solves" in out

    def test_trace_without_command_errors(self, tmp_path, capsys):
        assert main(["trace", "--out", str(tmp_path / "t.jsonl")]) == 2
        assert "missing command" in capsys.readouterr().err

    def test_trace_refuses_recursion(self, tmp_path, capsys):
        assert main(["trace", "--out", str(tmp_path / "t.jsonl"),
                     "--", "trace", "--", "table3"]) == 2
        assert "refusing" in capsys.readouterr().err

    def test_stats_on_traced_eval(self, tmp_path, capsys):
        # tracing a command with no generation spans still renders
        trace = tmp_path / "t.jsonl"
        rc = main(["trace", "--out", str(trace), "--",
                   "table3", "--target", "float16"])
        assert rc in (0, 1)
        capsys.readouterr()
        assert main(["stats", str(trace), "--no-tree"]) == 0
        assert "no generation spans" in capsys.readouterr().out
