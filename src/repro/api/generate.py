"""The blessed *generation-time* entry point.

The serving surface (:mod:`repro.api`) never touches the oracle or the
LP solver; everything that *creates* frozen coefficient tables funnels
through this module instead::

    from repro.api import generate

    generate.generate_library(
        ["exp", "ln"], target="bfloat16",
        out_dir="src/repro/libm/data_bfloat16",
        workers="auto", checkpoint="ckpt/",
        adversarial="tests/data/adversarial")

This is a thin, documented wrapper over
:func:`repro.libm.genlib.generate_library` that resolves target names,
parses the ``workers`` knob, and folds committed adversarial corpora
into the generation constraints the way ``tools/generate_*.py
--adversarial`` does — the one place the generation-time options are
spelled once for the CLI, the tools, and programmatic callers alike.
"""

from __future__ import annotations

import pathlib
from typing import Any

__all__ = ["default_out_dir", "generate_library"]


def default_out_dir(target: str) -> pathlib.Path:
    """The in-tree frozen-data package for ``target``."""
    return (pathlib.Path(__file__).resolve().parent.parent / "libm"
            / f"data_{target}")


def generate_library(
    functions: list[str] | None = None,
    target: str = "float32",
    out_dir: str | pathlib.Path | None = None,
    *,
    quick: bool = False,
    seed: int = 2021,
    scale: int = 1,
    workers: int | str | None = None,
    checkpoint: str | pathlib.Path | None = None,
    adversarial: str | pathlib.Path | None = None,
    **kwargs: Any,
) -> pathlib.Path:
    """Generate + freeze correctly rounded tables for ``target``.

    ``functions`` defaults to the target's full function set;
    ``out_dir`` to the in-tree data package (regenerating the shipped
    library in place).  ``workers`` accepts an int, ``"auto"`` or None
    (serial — results are bit-identical either way); ``checkpoint``
    makes the run resumable; ``adversarial`` names a corpus directory
    whose committed hostile inputs are folded into the generation
    constraints (:func:`repro.eval.adversarial.corpus_inputs`).
    Remaining keyword arguments pass through to
    :func:`repro.libm.genlib.generate_library`.  Returns the directory
    the data modules were written to.
    """
    from repro.libm import genlib, runtime
    from repro.libm.serialize import TARGETS_BY_NAME
    from repro.parallel import parse_workers

    if target not in TARGETS_BY_NAME:
        raise ValueError(f"unknown target {target!r}; "
                         f"expected one of {sorted(TARGETS_BY_NAME)}")
    fmt = TARGETS_BY_NAME[target]
    names = list(functions) if functions else list(
        runtime.functions_for(target))
    out = pathlib.Path(out_dir) if out_dir is not None \
        else default_out_dir(target)

    extra = None
    if adversarial is not None:
        from repro.eval.adversarial import corpus_inputs

        extra = corpus_inputs(adversarial, target)

    genlib.generate_library(
        names, fmt, out, quick=quick, seed=seed, scale=scale,
        workers=parse_workers(workers) if isinstance(workers, str)
        else workers,
        checkpoint=checkpoint, extra_inputs=extra, **kwargs)
    return out
