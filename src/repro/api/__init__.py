"""The public *serving-time* entry point of the reproduction.

Everything a user of the generated libraries needs is reachable from
this one package::

    from repro import api

    exp = api.load("exp", target="float32")
    exp.evaluate(1.5)                     # scalar, correctly rounded
    exp.evaluate_batch(xs)                # numpy float64 array in/out
    api.functions("posit32")              # what is available
    api.targets()                         # known target formats

:func:`load` returns a :class:`Library` handle wrapping the runnable
:class:`~repro.core.generator.GeneratedFunction`.  The batch methods
run the numpy-vectorized engine (:mod:`repro.batch`), which is
bit-identical to the scalar path for every input — see DESIGN.md,
"Scalar/batch bit-identity".

For heavy traffic the same surface is served out-of-process:
:func:`serve` starts the multi-process libm service
(:mod:`repro.serve`) and :func:`connect` returns a
:class:`ServiceClient` whose ``evaluate_batch`` / ``evaluate_bits_batch``
match :class:`Library`'s signatures exactly, so callers swap
local↔remote without code changes.

The *generation-time* half of the codebase — running the RLIBM-32
pipeline and freezing new coefficient tables — lives behind
:mod:`repro.api.generate`; nothing in this module ever touches the
oracle or the LP solver.

The older entry points (``repro.libm.runtime.load``,
``repro.libm.float32`` / ``posit32`` wrappers) keep working;
``runtime.load`` and ``runtime.reload`` emit ``DeprecationWarning``s
pointing here.
"""

from __future__ import annotations

from repro.core.generator import GeneratedFunction
from repro.libm import runtime

__all__ = ["Library", "ServiceClient", "available", "connect", "functions",
           "load", "reload", "serve", "targets"]


class Library:
    """Handle for one correctly rounded function on one target format.

    Thin wrapper over a :class:`~repro.core.generator.GeneratedFunction`
    (exposed as :attr:`fn` for low-level access) presenting the scalar
    and batch evaluators under one roof.
    """

    def __init__(self, fn: GeneratedFunction, target: str):
        self.fn = fn
        self.name = fn.name
        self.target = target

    # -- scalar ------------------------------------------------------------

    def evaluate(self, x: float) -> float:
        """f(x) correctly rounded to the target, as a double."""
        return self.fn.evaluate(x)

    def evaluate_bits(self, x: float) -> int:
        """f(x) correctly rounded, as a target bit pattern."""
        return self.fn.evaluate_bits(x)

    __call__ = evaluate

    # -- batch -------------------------------------------------------------

    def evaluate_batch(self, xs):
        """Vectorized :meth:`evaluate`: float64 array in, doubles out.

        Accepts any-shape float64 arrays (or nested lists of floats);
        the result has the same shape.  Bit-identical to calling
        :meth:`evaluate` per element.
        """
        return self.fn.evaluate_many(xs)

    def evaluate_bits_batch(self, xs):
        """Vectorized :meth:`evaluate_bits`: uint64 patterns out."""
        return self.fn.evaluate_bits_many(xs)

    # -- introspection -----------------------------------------------------

    def instrumented(self, prefix: str | None = None) -> "Library":
        """A fresh handle whose *scalar* path records runtime metrics.

        Wraps :func:`repro.libm.runtime.instrument`; the batch path is
        not instrumented (it reports no per-call metrics) and the
        shared cached function stays untouched.  ``prefix`` overrides
        the metric-name prefix (default ``libm.<name>``).
        """
        return Library(runtime.instrument(self.fn, prefix=prefix),
                       self.target)

    @property
    def stats(self):
        """Generation-time statistics of the underlying function."""
        return self.fn.stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Library({self.name!r}, target={self.target!r})"


def load(function: str, target: str = "float32") -> Library:
    """Load one shipped (or generated) function as a :class:`Library`.

    ``function`` is an elementary function name (see :func:`functions`);
    ``target`` one of :func:`targets`.  Raises LookupError when no
    frozen data exists for the pair — ``python -m repro generate
    --target <name>`` creates it.
    """
    return Library(runtime.load_function(function, target), target)


def reload(function: str, target: str = "float32") -> Library:
    """Like :func:`load`, but bypassing caches (fresh frozen data)."""
    return Library(runtime.reload_function(function, target), target)


def functions(target: str = "float32") -> tuple[str, ...]:
    """Function names this target supports (posits lack sinpi/cospi)."""
    return runtime.functions_for(target)


def available(target: str = "float32") -> list[str]:
    """Function names with frozen data actually shipped for ``target``."""
    return runtime.available(target)


def targets() -> tuple[str, ...]:
    """Target formats the loader accepts (shipped: float32, posit32)."""
    return runtime.KNOWN_TARGETS


# -- the serving layer (imported lazily: repro.serve pulls in asyncio,
#    multiprocessing.shared_memory and the worker-pool machinery, none of
#    which an in-process `api.load` user should pay for) ------------------


def serve(*args, **kwargs):
    """Start the multi-process libm service; see :func:`repro.serve.serve`.

    Returns a :class:`repro.serve.ServiceHandle` whose ``address`` a
    :func:`connect` call (in this process or any other) can dial.
    """
    from repro.serve import serve as _serve

    return _serve(*args, **kwargs)


def connect(function: str, target: str = "float32", *, address=None,
            **kwargs) -> "ServiceClient":
    """Dial a running libm service; see :func:`repro.serve.connect`.

    The returned :class:`ServiceClient` mirrors :class:`Library`'s
    ``evaluate`` / ``evaluate_batch`` / ``evaluate_bits_batch``.
    """
    from repro.serve import connect as _connect

    return _connect(function, target, address=address, **kwargs)


def __getattr__(name: str):
    if name == "ServiceClient":
        from repro.serve.client import ServiceClient

        return ServiceClient
    if name == "generate":
        import importlib

        return importlib.import_module("repro.api.generate")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
