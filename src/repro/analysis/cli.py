"""``python -m repro lint`` / ``repro-lint`` — run both analysis engines.

Runs :mod:`repro.analysis.fplint` over the source tree and
:mod:`repro.analysis.tablecheck` over the shipped frozen-data packages,
subtracts the committed baseline, and reports in text or JSON.  Exit
status: 0 clean, 1 findings, 2 on internal/usage errors — the same
contract as the ``tools/run_lint.py`` CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis import baseline as baseline_mod
from repro.analysis import fplint, tablecheck
from repro.analysis.findings import Finding, sort_findings

__all__ = ["add_arguments", "run", "main",
           "add_certify_arguments", "run_certify", "certify_main"]


def find_root(start: Path | None = None) -> Path:
    """The repo root: the nearest ancestor holding ``src/repro``.

    Falls back to the installed package's grandparent so ``repro-lint``
    works from any working directory of a source checkout.
    """
    cur = (start or Path.cwd()).resolve()
    for p in (cur, *cur.parents):
        if (p / "src" / "repro").is_dir():
            return p
    import repro
    return Path(repro.__file__).resolve().parents[2]


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint (default: "
                             f"{', '.join(fplint.DEFAULT_ROOTS)})")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="report format (default: text)")
    parser.add_argument("--baseline", metavar="PATH",
                        default=baseline_mod.DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default: {baseline_mod.DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather the current findings and exit")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="delete stale baseline entries (entries no "
                             "current finding matches) and exit")
    parser.add_argument("--fail-stale", action="store_true",
                        help="exit non-zero when the baseline holds stale "
                             "entries (the CI gate sets this)")
    parser.add_argument("--fix", action="store_true",
                        help="auto-apply the mechanical fix-it hints "
                             f"({', '.join(fplint.FIXABLE)}) and exit")
    parser.add_argument("--dry-run", action="store_true",
                        help="with --fix: print the unified diff instead "
                             "of rewriting files")
    parser.add_argument("--no-tablecheck", action="store_true",
                        help="skip the frozen-table verifier")
    parser.add_argument("--no-fplint", action="store_true",
                        help="skip the source linter")
    parser.add_argument("--table", action="append", default=[],
                        metavar="FILE",
                        help="extra data-module file for tablecheck "
                             "(repeatable)")
    parser.add_argument("--root", help="repo root (default: auto-detected)")


def _render_text(findings: list[Finding], stale: list[str],
                 n_modules: int, elapsed: float, baselined: int) -> str:
    from repro.obs.report import format_table

    out = []
    for f in findings:
        out.append(f.render())
    if findings:
        out.append("")
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        rows = []
        for rule in sorted(by_rule):
            meta = fplint.RULES.get(rule)
            rows.append([rule, by_rule[rule],
                         meta.severity if meta else "error",
                         meta.summary if meta else "tablecheck invariant"])
        out.append(format_table(["rule", "count", "severity", "summary"],
                                rows, aligns="lrll"))
    for key in stale:
        out.append(f"stale baseline entry (already fixed): {key}")
    verdict = "clean" if not findings else \
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    extra = f", {baselined} baselined" if baselined else ""
    out.append(f"fplint+tablecheck: {verdict} "
               f"({n_modules} data modules checked{extra}, "
               f"{elapsed:.2f}s)")
    return "\n".join(out)


def run(args: argparse.Namespace) -> int:
    t0 = time.perf_counter()
    try:
        root = Path(args.root).resolve() if args.root else find_root()
    except Exception as e:
        print(f"lint: cannot locate repo root: {e}", file=sys.stderr)
        return 2

    if args.fix:
        paths = [Path(p) for p in args.paths] or None
        try:
            fixed, diffs = fplint.fix_paths(paths, root,
                                            dry_run=args.dry_run)
        except (OSError, ValueError, SyntaxError) as e:
            print(f"lint: --fix failed: {e}", file=sys.stderr)
            return 2
        if args.dry_run:
            for rel in sorted(diffs):
                print(diffs[rel], end="")
        verb = "would fix" if args.dry_run else "fixed"
        print(f"lint: {verb} {len(fixed)} finding"
              f"{'s' if len(fixed) != 1 else ''} in {len(diffs)} file"
              f"{'s' if len(diffs) != 1 else ''}")
        return 0

    findings: list[Finding] = []
    if not args.no_fplint:
        paths = [Path(p) for p in args.paths] or None
        try:
            findings.extend(fplint.lint_paths(paths, root))
        except (OSError, ValueError) as e:
            print(f"lint: {e}", file=sys.stderr)
            return 2
    n_modules = 0
    if not args.no_tablecheck:
        n_modules, table_findings = tablecheck.run_tablecheck(
            extra_paths=tuple(args.table))
        # report data-module paths relative to the repo root
        for f in table_findings:
            try:
                rel = Path(f.path).resolve().relative_to(root).as_posix()
                f = Finding(rel, f.line, f.col, f.rule, f.severity,
                            f.message, f.hint)
            except ValueError:
                pass
            findings.append(f)
    findings = sort_findings(findings)

    baseline_path = root / args.baseline
    if args.write_baseline:
        n = baseline_mod.write_baseline(baseline_path, findings)
        print(f"baseline written: {baseline_path} ({n} entries)")
        return 0
    if args.prune_baseline:
        kept, pruned = baseline_mod.prune_baseline(baseline_path, findings)
        print(f"baseline pruned: {baseline_path} ({pruned} stale "
              f"entr{'ies' if pruned != 1 else 'y'} removed, {kept} kept)")
        return 0

    stale: list[str] = []
    baselined = 0
    if not args.no_baseline:
        known = baseline_mod.load_baseline(baseline_path)
        total = len(findings)
        findings, stale = baseline_mod.apply_baseline(findings, known)
        baselined = total - len(findings)

    elapsed = time.perf_counter() - t0
    if args.fmt == "json":
        print(json.dumps({
            "ok": not findings,
            "findings": [f.to_dict() for f in findings],
            "stale_baseline": stale,
            "baselined": baselined,
            "data_modules_checked": n_modules,
            "elapsed_s": round(elapsed, 3),
        }, indent=2))
    else:
        print(_render_text(findings, stale, n_modules, elapsed, baselined))
    if findings:
        return 1
    if stale and args.fail_stale:
        print("lint: stale baseline entries remain; run "
              "--prune-baseline to drop them", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__)
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())


# ---------------------------------------------------------------------------
# ``python -m repro certify`` — proof-carrying tables
# ---------------------------------------------------------------------------

def add_certify_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--check", action="store_true",
                        help="verify shipped certificates against their "
                             "data modules (the default action)")
    parser.add_argument("--emit", action="store_true",
                        help="(re)emit certificates for the shipped data "
                             "modules — oracle-backed, slow")
    parser.add_argument("--only", action="append", default=[],
                        metavar="FN",
                        help="restrict to one function (repeatable), "
                             "e.g. --only exp2")
    parser.add_argument("--table", action="append", default=[],
                        metavar="FILE",
                        help="extra data-module file to check against its "
                             "sibling certificate (repeatable)")
    parser.add_argument("--sweep", type=int, default=30_000,
                        help="emission sweep size per module "
                             "(default: 30000)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="report format (default: text)")
    parser.add_argument("--baseline", metavar="PATH",
                        default=baseline_mod.DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default: {baseline_mod.DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--root", help="repo root (default: auto-detected)")


def _render_certify_text(findings: list[Finding], stale: list[str],
                         n_modules: int, elapsed: float,
                         baselined: int) -> str:
    from repro.analysis.certify.verify import CODES
    from repro.obs.report import format_table

    out = [f.render() for f in findings]
    if findings:
        out.append("")
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        rows = [[rule, by_rule[rule], "error",
                 CODES.get(rule, "certificate invariant")]
                for rule in sorted(by_rule)]
        out.append(format_table(["rule", "count", "severity", "summary"],
                                rows, aligns="lrll"))
    for key in stale:
        out.append(f"stale baseline entry (already fixed): {key}")
    verdict = "clean" if not findings else \
        f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    extra = f", {baselined} baselined" if baselined else ""
    out.append(f"certify: {verdict} ({n_modules} data modules "
               f"checked{extra}, {elapsed:.2f}s)")
    return "\n".join(out)


def run_certify(args: argparse.Namespace) -> int:
    from repro.analysis.certify import runner

    t0 = time.perf_counter()
    try:
        root = Path(args.root).resolve() if args.root else find_root()
    except Exception as e:
        print(f"certify: cannot locate repo root: {e}", file=sys.stderr)
        return 2

    if args.emit and args.check:
        print("certify: --emit and --check are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.emit:
        try:
            n = runner.emit_all(only=tuple(args.only), sweep=args.sweep)
        except Exception as e:
            print(f"certify: emission failed: {e}", file=sys.stderr)
            return 2
        print(f"certify: emitted {n} certificates "
              f"({time.perf_counter() - t0:.1f}s)")
        return 0

    n_modules, findings = runner.check_all(extra_paths=tuple(args.table),
                                           only=tuple(args.only))
    # report certificate paths relative to the repo root
    rel_findings = []
    for f in findings:
        try:
            rel = Path(f.path).resolve().relative_to(root).as_posix()
            f = Finding(rel, f.line, f.col, f.rule, f.severity,
                        f.message, f.hint)
        except ValueError:
            pass
        rel_findings.append(f)
    findings = sort_findings(rel_findings)

    stale: list[str] = []
    baselined = 0
    if not args.no_baseline:
        known = baseline_mod.load_baseline(root / args.baseline)
        total = len(findings)
        findings, stale = baseline_mod.apply_baseline(
            findings, {k: v for k, v in known.items()
                       if ":CE3" in k})
        baselined = total - len(findings)

    elapsed = time.perf_counter() - t0
    if args.fmt == "json":
        print(json.dumps({
            "ok": not findings,
            "findings": [f.to_dict() for f in findings],
            "baselined": baselined,
            "data_modules_checked": n_modules,
            "elapsed_s": round(elapsed, 3),
        }, indent=2))
    else:
        print(_render_certify_text(findings, stale, n_modules, elapsed,
                                   baselined))
    return 1 if findings else 0


def certify_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-certify",
        description="verify (or emit) the proof-carrying certificates "
                    "accompanying the shipped coefficient tables")
    add_certify_arguments(parser)
    return run_certify(parser.parse_args(argv))
