"""Proof-carrying tables: certificate emission + independent verification.

RLIBM-32's headline property — the polynomial's double evaluation lands
inside every reduced rounding interval — is far cheaper to *check* than
to *find*.  This package makes shipped tables carry a machine-checkable
certificate of that property:

* :mod:`repro.analysis.certify.format` — the versioned certificate
  schema, exact-rational/hex-double codecs and file I/O (stdlib only).
* :mod:`repro.analysis.certify.emit` — certificate emission: from the
  generation pipeline's captured LP samples, or post hoc from a frozen
  ``DATA`` module via an oracle-backed sweep.
* :mod:`repro.analysis.certify.verify` — the **trusted checker**: an
  independent exact-rational verifier sharing no code with the
  generation/solve path (stdlib + the findings model only).
* :mod:`repro.analysis.certify.runner` — discovery over the shipped
  data packages, obs counters/spans, used by the CLI and the
  ``tools/run_certify.py`` gate.

The trusted-checker boundary and the exact-arithmetic-only rule are
documented in DESIGN.md ("Certified tables").
"""

from __future__ import annotations

from repro.analysis.certify.format import (FORMAT_VERSION, CertificateError,
                                           certificate_path, load_certificate,
                                           save_certificate)
from repro.analysis.certify.verify import verify_certificate

__all__ = ["FORMAT_VERSION", "CertificateError", "certificate_path",
           "load_certificate", "save_certificate", "verify_certificate"]
