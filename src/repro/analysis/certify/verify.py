"""The independent exact-rational certificate verifier (trusted checker).

This module re-establishes the correctness claim of a shipped table from
its certificate **without trusting anything that produced it**: it shares
no code with the generation pipeline, the oracle, or the LP solve path.
Its only imports are the standard library, the certificate codec
(:mod:`repro.analysis.certify.format`) and the findings model.  Every
decision is made in exact integer/rational arithmetic; the only
floating-point operations are constructing doubles from their bit
patterns (exact by definition) — never arithmetic on them.

What is re-derived from scratch here (deliberate duplication — the
point of translation validation is an independent implementation):

* round-to-nearest-ties-even of an exact rational to binary64,
  including subnormals and the overflow-to-infinity midpoint rule;
* the runtime's Horner evaluation order (arithmetic-progression
  exponent structure and the irregular fallback), emulated with one
  exact rounding per double operation;
* the bit-pattern sub-domain lookup (shift + mask);
* LP vertex-witness validity: primal feasibility, dual feasibility and
  strong duality by direct substitution.

Finding codes
-------------

* CE301 — certificate missing or unreadable
* CE302 — certificate malformed (schema/version/encoding)
* CE303 — certificate disagrees with ``DATA`` (coefficients, exponents,
  table geometry, function/target identity)
* CE304 — invalid certificate point (empty interval, wrong sub-domain,
  wrong sign side)
* CE305 — containment failure: the emulated double Horner evaluation of
  the shipped polynomial lands outside the stored rounding interval
* CE306 — LP witness primal infeasibility
* CE307 — LP witness optimality failure (dual infeasible or strong
  duality violated)
* CE308 — coverage gap: a table or sub-domain of ``DATA`` has no
  certificate entry
"""

from __future__ import annotations

import math
import struct
from fractions import Fraction
from typing import Any, Sequence

from repro.analysis.certify.format import (FORMAT_VERSION, frac_from_str,
                                           hex_to_float, schema_errors,
                                           table_key)
from repro.analysis.findings import Finding, Severity, sort_findings

__all__ = ["round_frac_to_double", "emulate_poly", "verify_certificate",
           "CODES"]

#: Rule code -> summary (mirrors fplint.RULES for reporting).
CODES = {
    "CE301": "certificate missing or unreadable",
    "CE302": "certificate malformed",
    "CE303": "certificate disagrees with DATA",
    "CE304": "invalid certificate point",
    "CE305": "interval containment failure",
    "CE306": "LP witness primal infeasibility",
    "CE307": "LP witness optimality failure",
    "CE308": "coverage gap",
}

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")


def _bits(x: float) -> int:
    return _PACK_Q.unpack(_PACK_D.pack(x))[0]


def round_frac_to_double(q: Fraction) -> float:
    """Round an exact rational to binary64, nearest-ties-even.

    Independent of ``Fraction.__float__`` and of ``repro.fp``: pure
    integer arithmetic selects the significand, ``math.ldexp`` (exact
    for integer significands up to 2**53) constructs the result.
    Overflow follows IEEE: magnitudes at or above the
    2**1024 - 2**970 midpoint become infinity.
    """
    if q == 0:
        return 0.0
    neg = q < 0
    if neg:
        q = -q
    n, d = q.numerator, q.denominator
    # e with 2**e <= q < 2**(e+1)
    e = n.bit_length() - d.bit_length()
    if e >= 0:
        if n < d << e:
            e -= 1
    else:
        if n << -e < d:
            e -= 1
    # lsb weight: 2**(e-52) for normals, fixed 2**-1074 in the subnormal
    # range (reduced precision)
    shift = e - 52 if e >= -1022 else -1074
    if shift >= 0:
        num, den = n, d << shift
    else:
        num, den = n << -shift, d
    m, rem = divmod(num, den)
    twice = 2 * rem
    if twice > den or (twice == den and m & 1):
        m += 1
    try:
        v = math.ldexp(float(m), shift)
    except OverflowError:
        v = math.inf
    if math.isinf(v):
        return -math.inf if neg else math.inf
    return -v if neg else v


def _rn(q: Fraction) -> float:
    return round_frac_to_double(q)


def _progression(exponents: Sequence[int]) -> tuple[int, int] | None:
    """(start, stride) when the exponents are an arithmetic progression.

    Re-derived from the documented runtime contract (a single exponent
    counts as stride 1); returns None for irregular sets.
    """
    exps = list(exponents)
    if not exps or sorted(exps) != exps or len(set(exps)) != len(exps):
        return None
    if len(exps) == 1:
        return exps[0], 1
    stride = exps[1] - exps[0]
    if stride <= 0:
        return None
    for a, b in zip(exps, exps[1:]):
        if b - a != stride:
            return None
    return exps[0], stride


def _pow_emulated(r: float, e: int) -> float:
    """``r**e`` by repeated double multiplication, exactly as the runtime.

    ``e == 0`` follows the runtime's ``r*0 + 1.0`` spelling, which is
    exactly 1.0 for every finite r.
    """
    if e == 0:
        return 1.0
    acc = r
    for _ in range(e - 1):
        if not math.isfinite(acc):
            return acc
        acc = _rn(Fraction(acc) * Fraction(r))
    return acc


def emulate_poly(exponents: Sequence[int], coefficients: Sequence[float],
                 r: float) -> float:
    """The runtime's double-precision Horner evaluation, emulated exactly.

    Every double operation of the runtime order is performed as an exact
    rational operation followed by one round-to-double; the result is
    therefore bit-identical to what the shipped library computes.
    Returns a non-finite value when any intermediate overflows.
    """
    cs = list(coefficients)
    struct_ = _progression(exponents)
    if struct_ is None:
        # irregular fallback: left-to-right accumulation from 0.0
        acc = 0.0
        for c, e in zip(cs, exponents):
            p = _pow_emulated(r, e)
            if not math.isfinite(p):
                return p
            t = _rn(Fraction(c) * Fraction(p))
            if not math.isfinite(t):
                return t
            acc = _rn(Fraction(acc) + Fraction(t))
            if not math.isfinite(acc):
                return acc
        return acc
    start, stride = struct_
    acc = cs[-1]
    if len(cs) > 1:
        u = _pow_emulated(r, stride)
        if not math.isfinite(u):
            return u
        for c in reversed(cs[:-1]):
            acc = _rn(Fraction(acc) * Fraction(u))
            if not math.isfinite(acc):
                return acc
            acc = _rn(Fraction(acc) + Fraction(c))
            if not math.isfinite(acc):
                return acc
    if start:
        p = _pow_emulated(r, start)
        if not math.isfinite(p):
            return p
        acc = _rn(Fraction(acc) * Fraction(p))
    return acc


def _slot_index(r: float, shift: int, index_bits: int) -> int:
    return (_bits(r) >> shift) & ((1 << index_bits) - 1)


class _Reporter:
    def __init__(self, path: str):
        self.path = path
        self.findings: list[Finding] = []

    def err(self, rule: str, message: str, hint: str = "") -> None:
        self.findings.append(
            Finding(self.path, 1, 0, rule, Severity.ERROR, message, hint))


def _poly_exact(exponents: Sequence[int], coeffs: Sequence[Fraction],
                r: Fraction) -> Fraction:
    return sum((c * r ** e for c, e in zip(coeffs, exponents)), Fraction(0))


def _check_witness(rep: _Reporter, where: str, wit: dict[str, Any],
                   points: list[dict[str, Any]],
                   exponents: Sequence[int]) -> None:
    """Re-check the LP vertex witness by direct substitution.

    Primal failures report CE306, dual/optimality failures CE307.  The
    LP is the margin formulation over the witness rows: maximize delta
    with P(r_i) in [lo_i + delta*w_i, hi_i - delta*w_i] and delta <= 1,
    where w_i is the interval half-width.
    """
    rows = wit["rows"]
    delta = frac_from_str(wit["delta"])
    coeffs = [frac_from_str(s) for s in wit["coeffs"]]
    y_lo = [frac_from_str(s) for s in wit["duals_lo"]]
    y_hi = [frac_from_str(s) for s in wit["duals_hi"]]
    y_cap = frac_from_str(wit["dual_cap"])
    if len(coeffs) != len(exponents):
        rep.err("CE306", f"{where}: witness has {len(coeffs)} coefficients "
                         f"for {len(exponents)} exponents")
        return

    rfs, los, his, ws = [], [], [], []
    for i in rows:
        pt = points[i]
        rfs.append(Fraction(hex_to_float(pt["r"])))
        lo = frac_from_str(pt["lo"])
        hi = frac_from_str(pt["hi"])
        los.append(lo)
        his.append(hi)
        ws.append((hi - lo) / 2)

    # primal feasibility of the witness polynomial at margin delta
    if delta < 0 or delta > 1:
        rep.err("CE306", f"{where}: witness margin {delta} outside [0, 1]")
        return
    for i, (rf, lo, hi, w) in enumerate(zip(rfs, los, his, ws)):
        p = _poly_exact(exponents, coeffs, rf)
        if p < lo + delta * w or p > hi - delta * w:
            rep.err("CE306",
                    f"{where}: witness polynomial violates row {rows[i]} "
                    f"at margin {delta}")
            return

    # dual feasibility: nonnegative multipliers ...
    if y_cap < 0 or any(y < 0 for y in y_lo) or any(y < 0 for y in y_hi):
        rep.err("CE307", f"{where}: negative dual multiplier")
        return
    # ... each free coefficient column prices to zero ...
    for e in exponents:
        if sum((yu - yl) * rf ** e
               for yl, yu, rf in zip(y_lo, y_hi, rfs)) != 0:
            rep.err("CE307",
                    f"{where}: dual equality fails for exponent {e}")
            return
    # ... and the free delta column prices to its unit cost
    if sum((yl + yu) * w for yl, yu, w in zip(y_lo, y_hi, ws)) + y_cap != 1:
        rep.err("CE307", f"{where}: dual equality fails for the margin "
                         "column")
        return
    # strong duality: the dual objective must equal the primal margin —
    # any widening of an active interval breaks this identity
    dual_obj = sum(hi * yu - lo * yl
                   for lo, hi, yl, yu in zip(los, his, y_lo, y_hi)) + y_cap
    if dual_obj != delta:
        rep.err("CE307",
                f"{where}: strong duality fails (dual objective {dual_obj} "
                f"!= margin {delta}) — an active interval endpoint does "
                "not match the witness")


def _check_slot(rep: _Reporter, where: str, slot: dict[str, Any],
                data_poly: tuple, side: str, shift: int,
                index_bits: int) -> None:
    exps, coeffs = data_poly
    # CE303: certificate <-> DATA identity, bit for bit
    if list(slot["exponents"]) != list(exps):
        rep.err("CE303",
                f"{where}: exponents {slot['exponents']} disagree with "
                f"DATA {list(exps)}",
                hint="re-emit the certificate after regenerating")
        return
    cert_coeffs = [hex_to_float(s) for s in slot["coefficients"]]
    for j, (cc, dc) in enumerate(zip(cert_coeffs, coeffs)):
        if type(dc) is not float or _bits(cc) != _bits(dc):
            rep.err("CE303",
                    f"{where}: coefficient [{j}] {cc!r} disagrees with "
                    f"DATA {dc!r}",
                    hint="the shipped table changed after certification; "
                         "re-emit the certificate")
            return
    if len(cert_coeffs) != len(coeffs):
        rep.err("CE303", f"{where}: {len(cert_coeffs)} coefficients vs "
                         f"{len(coeffs)} in DATA")
        return
    if slot["status"] != "certified":
        return

    points = slot["points"]
    for i, pt in enumerate(points):
        pw = f"{where}.points[{i}]"
        r = hex_to_float(pt["r"])
        lo = frac_from_str(pt["lo"])
        hi = frac_from_str(pt["hi"])
        # CE304: the point must be a valid member of this sub-domain
        if lo > hi:
            rep.err("CE304", f"{pw}: empty interval (lo > hi)")
            continue
        if (side == "neg") != (r < 0.0):
            rep.err("CE304", f"{pw}: r={r!r} is on the wrong sign side")
            continue
        if _slot_index(r, shift, index_bits) != slot["index"]:
            rep.err("CE304",
                    f"{pw}: r={r!r} indexes sub-domain "
                    f"{_slot_index(r, shift, index_bits)}, not "
                    f"{slot['index']}")
            continue
        # CE305: the emulated runtime evaluation must land in [lo, hi]
        v = emulate_poly(exps, cert_coeffs, r)
        if not math.isfinite(v) or not lo <= Fraction(v) <= hi:
            rep.err("CE305",
                    f"{pw}: emulated Horner evaluation {v!r} outside the "
                    f"rounding interval [{pt['lo']}, {pt['hi']}] at "
                    f"r={r!r}")

    _check_witness(rep, f"{where}.witness", slot["witness"], points, exps)


def verify_certificate(cert: Any, data: Any, cert_path: str) -> list[Finding]:
    """All findings from checking one certificate against its ``DATA``.

    ``cert`` is the parsed certificate (or None for a missing file —
    the caller reports CE301 itself when loading fails, this accepts
    only parsed dicts), ``data`` the frozen module's ``DATA`` dict,
    ``cert_path`` the repo-relative path used in findings.
    """
    rep = _Reporter(cert_path)

    for msg in schema_errors(cert):
        rep.err("CE302", msg)
    if rep.findings:
        return sort_findings(rep.findings)

    if not isinstance(data, dict) or "approx" not in data:
        rep.err("CE303", "frozen DATA is missing or malformed; nothing to "
                         "certify against")
        return sort_findings(rep.findings)
    if cert["function"] != data.get("function") \
            or cert["target"] != data.get("target"):
        rep.err("CE303",
                f"certificate is for {cert['function']!r}/"
                f"{cert['target']!r} but DATA is for "
                f"{data.get('function')!r}/{data.get('target')!r}")
        return sort_findings(rep.findings)

    # table coverage, both directions
    data_tables: dict[str, dict] = {}
    for fn, sides in data["approx"].items():
        for side in ("neg", "pos"):
            if sides.get(side) is not None:
                data_tables[table_key(fn, side)] = sides[side]
    for key in sorted(set(data_tables) - set(cert["tables"])):
        rep.err("CE308", f"DATA table {key!r} has no certificate entry",
                hint="re-run certificate emission")
    for key in sorted(set(cert["tables"]) - set(data_tables)):
        rep.err("CE303", f"certificate table {key!r} does not exist in "
                         "DATA")

    for key in sorted(set(cert["tables"]) & set(data_tables)):
        table = cert["tables"][key]
        dt = data_tables[key]
        where = f"tables[{key!r}]"
        bits, shift = table["index_bits"], table["shift"]
        if bits != dt.get("index_bits") or shift != dt.get("shift"):
            rep.err("CE303",
                    f"{where}: geometry (index_bits={bits}, shift={shift}) "
                    f"disagrees with DATA (index_bits="
                    f"{dt.get('index_bits')}, shift={dt.get('shift')})")
            continue
        polys = dt.get("polys", [])
        by_index = {s["index"]: s for s in table["slots"]}
        for idx in range(1 << bits):
            if idx >= len(polys):
                break  # slot count mismatch is tablecheck's TC203
            slot = by_index.get(idx)
            if slot is None:
                rep.err("CE308",
                        f"{where}: sub-domain {idx} has no certificate "
                        "entry",
                        hint="a dropped slot leaves part of the reduced "
                             "domain uncertified; re-emit")
                continue
            _check_slot(rep, f"{where}.slots[index={idx}]", slot,
                        polys[idx], table["side"], shift, bits)

    return sort_findings(rep.findings)
