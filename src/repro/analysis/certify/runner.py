"""Certify-run orchestration over the shipped frozen-data packages.

Walks the same data packages as tablecheck, pairs every data module with
its ``<name>.cert.json``, and runs the trusted checker
(:mod:`repro.analysis.certify.verify`) or the emitter
(:mod:`repro.analysis.certify.emit`) over each.  This is the only
certify module that touches :mod:`repro.obs` — the checker itself stays
stdlib-only — so certify runs show up in ``python -m repro report``
alongside generation and lint telemetry.
"""

from __future__ import annotations

import importlib
import pkgutil
from pathlib import Path
from typing import Iterator

from repro.analysis.certify import emit as emit_mod
from repro.analysis.certify import verify as verify_mod
from repro.analysis.certify.format import (CertificateError,
                                           certificate_path,
                                           load_certificate,
                                           save_certificate)
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.obs import metrics, timed_span

__all__ = ["DATA_PACKAGES", "check_all", "emit_all", "iter_data_modules"]

#: The shipped frozen-data packages, in check order (same as tablecheck).
DATA_PACKAGES = ("repro.libm.data_float32", "repro.libm.data_posit32")

_C_MODULES = metrics.counter("certify.modules")
_C_SLOTS = metrics.counter("certify.slots")
_C_POINTS = metrics.counter("certify.points")
_C_FINDINGS = metrics.counter("certify.findings")
_C_EMITTED = metrics.counter("certify.emitted")


def iter_data_modules(packages: tuple[str, ...] = DATA_PACKAGES) \
        -> Iterator[tuple[str, Path, dict]]:
    """Yield ``(module_name, module_path, DATA)`` for every data module."""
    for pkg_name in packages:
        pkg = importlib.import_module(pkg_name)
        for info in sorted(pkgutil.iter_modules(pkg.__path__),
                           key=lambda i: i.name):
            if info.ispkg:
                continue
            full = f"{pkg_name}.{info.name}"
            mod = importlib.import_module(full)
            yield full, Path(mod.__file__), mod.DATA


def _cert_stats(cert: dict) -> tuple[int, int]:
    """(slots, points) counted from a parsed certificate."""
    slots = points = 0
    for table in cert.get("tables", {}).values():
        for slot in table.get("slots", ()):
            slots += 1
            points += len(slot.get("points", ()))
    return slots, points


def check_all(packages: tuple[str, ...] = DATA_PACKAGES,
              extra_paths: tuple[str, ...] = (),
              only: tuple[str, ...] = ()) -> tuple[int, list[Finding]]:
    """Verify every shipped certificate; ``(module count, findings)``.

    ``extra_paths`` adds standalone data-module files (fixtures, CLI
    args); ``only`` filters by unqualified module name (``exp2``).
    """
    findings: list[Finding] = []
    n = 0
    targets: list[tuple[str, Path, dict]] = list(iter_data_modules(packages))
    for path in extra_paths:
        from repro.analysis.tablecheck import load_module_from_path

        mod = load_module_from_path(path)
        targets.append((Path(path).stem, Path(path), mod.DATA))
    for name, mod_path, data in targets:
        short = name.rsplit(".", 1)[-1]
        if only and short not in only:
            continue
        n += 1
        cpath = certificate_path(mod_path)
        with timed_span("certify.check", module=short):
            _C_MODULES.inc()
            try:
                cert = load_certificate(cpath)
            except CertificateError as e:
                findings.append(Finding(
                    str(cpath), 1, 0, "CE301", Severity.ERROR, str(e),
                    hint="run 'python -m repro certify --emit' to create "
                         "the certificate"))
                _C_FINDINGS.inc()
                continue
            fs = verify_mod.verify_certificate(cert, data, str(cpath))
            slots, points = _cert_stats(cert)
            _C_SLOTS.inc(slots)
            _C_POINTS.inc(points)
            _C_FINDINGS.inc(len(fs))
            findings.extend(fs)
    return n, sort_findings(findings)


def emit_all(packages: tuple[str, ...] = DATA_PACKAGES,
             only: tuple[str, ...] = (), *, sweep: int = 30_000,
             log=print) -> int:
    """(Re)emit certificates for every shipped data module; returns count.

    Emission is oracle-backed and therefore slow-ish (seconds per
    module); the check path never needs it — certificates are committed
    next to their data modules.
    """
    n = 0
    for name, mod_path, data in iter_data_modules(packages):
        short = name.rsplit(".", 1)[-1]
        if only and short not in only:
            continue
        with timed_span("certify.emit", module=short):
            cert, stats = emit_mod.certificate_for_data(data, sweep=sweep)
            cpath = certificate_path(mod_path)
            save_certificate(cpath, cert)
            _C_EMITTED.inc()
        n += 1
        log(f"[{short}] {cpath.name}: {stats.certified}/{stats.slots} "
            f"slots certified, {stats.points} points"
            + (f", {stats.dropped_points} points dropped"
               if stats.dropped_points else "")
            + (f", {stats.dropped_slots} slots uncertifiable"
               if stats.dropped_slots else ""))
    return n
