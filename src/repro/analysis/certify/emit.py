"""Certificate emission — from fresh generation or from frozen tables.

Two producers, one format:

* :func:`certificate_from_capture` packages the LP-pinning samples the
  generation pipeline captured (``capture=`` on
  :func:`repro.core.generator.generate`) into a certificate — the exact
  constraint sets that pinned each sub-domain's polynomial.
* :func:`certificate_for_data` certifies an already-shipped frozen
  ``DATA`` module post hoc: a cheap pure-float sweep maps sampled
  inputs to sub-domain slots, per-slot representatives get the oracle +
  Algorithm-2 interval walk, and the resulting reduced constraints
  become certificate points.

Emission deliberately *may* share code with generation (oracle, range
reduction, the interval walk, the exact LP) — only the checker must
not.  What emission must never do is ship a certificate the checker
would reject, so every candidate point is pre-screened with the
checker's own emulated evaluation (shipped tables were generated from
samples and retain residual misses; those points are dropped and
counted), and every LP witness is self-verified before it is written
(:func:`repro.lp.solver.certificate_witness` re-checks primal/dual
feasibility and strong duality internally).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Sequence

from repro.analysis.certify.format import (FORMAT_VERSION, float_to_hex,
                                           frac_to_str, table_key)
from repro.analysis.certify.verify import emulate_poly
from repro.cache import active_store
from repro.core.intervals import target_rounding_interval
from repro.core.reduced import reduced_intervals
from repro.core.sampling import sample_values
from repro.fp.bits import double_to_bits
from repro.lp.solver import LinearConstraint, LPWitness, certificate_witness
from repro.oracle.mpmath_oracle import Oracle, default_oracle

__all__ = ["EmitStats", "certificate_for_data", "certificate_from_capture"]

#: Certificate points kept per sub-domain slot (endpoints + spread).
_POINTS_PER_SLOT = 5

#: Pivot budget for witness LP solves; a LIMIT means no witness.
_WITNESS_PIVOTS = 4000


@dataclass
class EmitStats:
    """What emission covered (and what it had to leave out)."""

    tables: int = 0
    slots: int = 0
    certified: int = 0
    unconstrained: int = 0
    points: int = 0
    #: candidate points whose emulated evaluation missed the interval
    #: (sampled-generation residue) — dropped, never certified
    dropped_points: int = 0
    #: slots whose every candidate was dropped or whose LP witness could
    #: not be built
    dropped_slots: int = 0
    by_table: dict[str, dict[str, int]] = field(default_factory=dict)


def _spread(items: list, k: int) -> list:
    """Up to ``k`` entries including both endpoints, evenly spaced."""
    n = len(items)
    if n <= k:
        return list(items)
    idx = sorted({round(i * (n - 1) / (k - 1)) for i in range(k)})
    return [items[i] for i in idx]


def _passes_emulation(exponents: Sequence[int],
                      coefficients: Sequence[float],
                      c: LinearConstraint) -> bool:
    """The checker's own containment test, applied pre-emission."""
    v = emulate_poly(exponents, coefficients, c.r)
    return (math.isfinite(v)
            and Fraction(c.lo) <= Fraction(v) <= Fraction(c.hi))


def _witness_dict(wit: LPWitness, rows: list[int]) -> dict[str, Any]:
    return {
        "rows": rows,
        "delta": frac_to_str(wit.delta),
        "coeffs": [frac_to_str(c) for c in wit.coefficients],
        "duals_lo": [frac_to_str(y) for y in wit.duals_lo],
        "duals_hi": [frac_to_str(y) for y in wit.duals_hi],
        "dual_cap": frac_to_str(wit.dual_cap),
        "tight_rows": list(wit.tight_rows),
    }


def _build_slot(index: int, exponents: tuple[int, ...],
                coefficients: tuple[float, ...],
                candidates: list[LinearConstraint],
                stats: EmitStats) -> dict[str, Any]:
    """One certificate slot: screened points + a self-checked witness."""
    base = {
        "index": index,
        "exponents": list(exponents),
        "coefficients": [float_to_hex(c) for c in coefficients],
    }
    pts = sorted(candidates, key=lambda c: c.r)
    kept = [c for c in pts if _passes_emulation(exponents, coefficients, c)]
    stats.dropped_points += len(pts) - len(kept)
    kept = _spread(kept, _POINTS_PER_SLOT)

    witness = None
    while kept:
        wit = certificate_witness(kept, exponents,
                                  max_pivots=_WITNESS_PIVOTS)
        if wit is not None:
            witness = wit
            break
        # the LP over these points admits no nonnegative-margin vertex;
        # retry without the most binding (narrowest) interval
        drop = min(range(len(kept)),
                   key=lambda i: Fraction(kept[i].hi) - Fraction(kept[i].lo))
        kept.pop(drop)

    if not kept or witness is None:
        if candidates:
            stats.dropped_slots += 1
        stats.unconstrained += 1
        return {**base, "status": "unconstrained", "points": [],
                "witness": None}

    stats.certified += 1
    stats.points += len(kept)
    points = [{"r": float_to_hex(c.r),
               "lo": frac_to_str(Fraction(c.lo)),
               "hi": frac_to_str(Fraction(c.hi))} for c in kept]
    return {**base, "status": "certified", "points": points,
            "witness": _witness_dict(witness, list(range(len(kept))))}


def _assemble(function: str, target: str,
              slot_points: dict[tuple[str, str], dict[int, list]],
              tables_geom: dict[tuple[str, str], tuple[int, int, tuple]],
              stats: EmitStats) -> dict[str, Any]:
    """Build the certificate dict from per-slot candidate constraints."""
    tables: dict[str, Any] = {}
    for (fn, side), (index_bits, shift, polys) in sorted(tables_geom.items()):
        key = table_key(fn, side)
        stats.tables += 1
        slots = []
        buckets = slot_points.get((fn, side), {})
        for idx in range(1 << index_bits):
            stats.slots += 1
            exps, coeffs = polys[idx]
            slots.append(_build_slot(idx, tuple(exps), tuple(coeffs),
                                     buckets.get(idx, []), stats))
        tables[key] = {
            "fn": fn, "side": side,
            "index_bits": index_bits, "shift": shift,
            "slots": slots,
        }
        stats.by_table[key] = {
            "slots": 1 << index_bits,
            "certified": sum(1 for s in slots
                             if s["status"] == "certified"),
        }
    return {
        "format_version": FORMAT_VERSION,
        "function": function,
        "target": target,
        "tables": tables,
    }


def _tables_geometry(data: dict[str, Any]) \
        -> dict[tuple[str, str], tuple[int, int, tuple]]:
    """(fn, side) -> (index_bits, shift, polys) for every present table."""
    geom = {}
    for fn, sides in data["approx"].items():
        for side in ("neg", "pos"):
            pp = sides.get(side)
            if pp is not None:
                geom[(fn, side)] = (pp["index_bits"], pp["shift"],
                                    tuple(pp["polys"]))
    return geom


def _bucket(geom: dict[tuple[str, str], tuple[int, int, tuple]],
            constraints: dict[str, list[LinearConstraint]]) \
        -> dict[tuple[str, str], dict[int, list]]:
    """Assign reduced constraints to (fn, side, slot) buckets."""
    out: dict[tuple[str, str], dict[int, list]] = {}
    for fn, cons in constraints.items():
        for c in cons:
            side = "neg" if c.r < 0.0 else "pos"
            g = geom.get((fn, side))
            if g is None:
                continue
            index_bits, shift, _ = g
            idx = (double_to_bits(c.r) >> shift) & ((1 << index_bits) - 1)
            out.setdefault((fn, side), {}).setdefault(idx, []).append(c)
    return out



def certificate_for_data(
    data: dict[str, Any],
    *,
    oracle: Oracle = default_oracle,
    sweep: int = 30_000,
    per_slot_candidates: int = 8,
    seed: int = 2021,
) -> tuple[dict[str, Any], EmitStats]:
    """Certify a frozen ``DATA`` module post hoc.

    Sweeps ``sweep`` ordinal-uniform target inputs through range
    reduction only (pure float, no oracle) to find which sub-domain each
    reduced input lands in, selects up to ``per_slot_candidates`` spread
    representatives per slot, and runs the oracle + Algorithm-2 interval
    walk on the selected inputs only.  Intervals from inputs sharing a
    reduced value are intersected exactly as in generation, so every
    certificate point carries a genuine reduced rounding interval.
    """
    from repro.libm.serialize import TARGETS_BY_NAME, function_from_dict
    from repro.rangereduction.domains import sampling_domain

    fn_obj = function_from_dict(data)
    rr = fn_obj.spec.rr
    fmt = TARGETS_BY_NAME[data["target"]]
    name = data["function"]
    geom = _tables_geometry(data)

    lo, hi = sampling_domain(name, fmt, rr)
    xs = sample_values(fmt, sweep, random.Random(seed), lo, hi)

    # pure-float sweep: reduced input -> slot, one representative x per
    # distinct r per slot
    reps: dict[tuple[str, str, int], dict[float, float]] = {}
    for x in xs:
        if rr.special(x) is not None:
            continue
        r = rr.reduce(x).r
        side = "neg" if r < 0.0 else "pos"
        for (fn, s), (index_bits, shift, _) in geom.items():
            if s != side:
                continue
            idx = (double_to_bits(r) >> shift) & ((1 << index_bits) - 1)
            reps.setdefault((fn, side, idx), {}).setdefault(r, x)

    selected: set[float] = set()
    for bucket in reps.values():
        rs = sorted(bucket)
        selected.update(bucket[r] for r in _spread(rs, per_slot_candidates))
    sel_xs = sorted(selected)

    pairs = [(x, target_rounding_interval(
        fmt, oracle.round_to_bits(name, x, fmt))) for x in sel_xs]
    store = oracle.store if oracle.store is not None else active_store()
    rset = reduced_intervals(pairs, rr, oracle, store=store,
                             fmt_name=str(fmt))

    stats = EmitStats()
    cert = _assemble(name, data["target"],
                     _bucket(geom, rset.constraints), geom, stats)
    return cert, stats


def certificate_from_capture(
    data: dict[str, Any],
    capture: dict[tuple, list[LinearConstraint]],
) -> tuple[dict[str, Any], EmitStats]:
    """Certify from the generation pipeline's captured pinning samples.

    ``capture`` is the dict filled by ``generate(..., capture=...)``:
    ``("<fn>:<side>", group_index) -> final LP sample`` for every
    generated sub-domain.  The sample constraints are exactly the
    reduced intervals that pinned the shipped polynomial, so they become
    the certificate points directly — no sweep, no fresh oracle calls.
    """
    geom = _tables_geometry(data)
    slot_points: dict[tuple[str, str], dict[int, list]] = {}
    for (label, idx), sample in capture.items():
        fn, _, side = label.rpartition(":")
        if (fn, side) not in geom:
            continue
        slot_points.setdefault((fn, side), {})[idx] = list(sample)
    stats = EmitStats()
    cert = _assemble(data["function"], data["target"], slot_points, geom,
                     stats)
    return cert, stats
