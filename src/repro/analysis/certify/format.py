"""The certificate file format (versioned, exact, stdlib-only).

A certificate accompanies one frozen data module as ``<name>.cert.json``
in the same package directory.  It records, per piecewise table
(``"<fn>:<side>"``) and per sub-domain slot:

* the slot's monomial exponents and coefficients (hex doubles, which the
  verifier cross-checks bit-for-bit against ``DATA``),
* certificate *points*: reduced inputs (hex doubles) with their reduced
  rounding-interval endpoints as exact rationals (``"p/q"`` strings),
* an LP vertex *witness*: exact-rational coefficients and margin plus
  the dual multipliers proving the margin optimal (strong duality is
  re-checkable by direct substitution).

Everything numeric is stored losslessly: doubles as ``float.hex()``
strings, rationals as ``"numerator/denominator"`` decimal strings.  No
value in a certificate requires floating-point parsing beyond the exact
hex-double codec.

This module is inside the trusted-checker boundary (see DESIGN.md): it
imports nothing from the generation or solve paths.  Bump
:data:`FORMAT_VERSION` on any schema change — the verifier rejects
unknown versions rather than guessing.
"""

from __future__ import annotations

import json
import math
from fractions import Fraction
from pathlib import Path
from typing import Any

__all__ = ["FORMAT_VERSION", "CertificateError", "certificate_path",
           "frac_to_str", "frac_from_str", "hex_to_float", "float_to_hex",
           "load_certificate", "save_certificate", "schema_errors",
           "table_key"]

#: Schema version this tree reads and writes.
FORMAT_VERSION = 1

_CERT_KEYS = frozenset({"format_version", "function", "target", "tables"})
_TABLE_KEYS = frozenset({"fn", "side", "index_bits", "shift", "slots"})
_SLOT_KEYS = frozenset({"index", "exponents", "coefficients", "status",
                        "points", "witness"})
_POINT_KEYS = frozenset({"r", "lo", "hi"})
_WITNESS_KEYS = frozenset({"rows", "delta", "coeffs", "duals_lo",
                           "duals_hi", "dual_cap", "tight_rows"})


class CertificateError(Exception):
    """A certificate file is missing, unreadable, or not JSON."""


def certificate_path(module_path: str | Path) -> Path:
    """The certificate path for a data module: ``exp2.py`` -> ``exp2.cert.json``."""
    p = Path(module_path)
    return p.with_name(p.stem + ".cert.json")


def table_key(fn: str, side: str) -> str:
    """Canonical table identifier inside a certificate."""
    return f"{fn}:{side}"


def frac_to_str(q: Fraction) -> str:
    """Lossless decimal rational encoding, always ``p/q``."""
    return f"{q.numerator}/{q.denominator}"


def frac_from_str(s: str) -> Fraction:
    """Parse a ``p/q`` string exactly (integer arithmetic only)."""
    num, _, den = s.partition("/")
    return Fraction(int(num), int(den))


def float_to_hex(v: float) -> str:
    """Lossless hex encoding of a finite double."""
    if not math.isfinite(v):
        raise ValueError(f"cannot certify non-finite double {v!r}")
    return v.hex()


def hex_to_float(s: str) -> float:
    """Exact inverse of :func:`float_to_hex` (rejects non-finite)."""
    v = float.fromhex(s)
    if not math.isfinite(v):
        raise ValueError(f"non-finite hex double {s!r}")
    return v


def load_certificate(path: str | Path) -> dict[str, Any]:
    """Read a certificate file; :class:`CertificateError` on any failure."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as e:
        raise CertificateError(f"cannot read certificate: {e}") from e
    try:
        cert = json.loads(text)
    except ValueError as e:
        raise CertificateError(f"certificate is not valid JSON: {e}") from e
    if not isinstance(cert, dict):
        raise CertificateError("certificate top level must be an object")
    return cert


def save_certificate(path: str | Path, cert: dict[str, Any]) -> None:
    """Write a certificate with stable formatting (diff-friendly)."""
    Path(path).write_text(
        json.dumps(cert, indent=1, sort_keys=True) + "\n")


def _is_int(v: Any) -> bool:
    return type(v) is int


def _check_frac(errors: list[str], where: str, v: Any) -> None:
    if not isinstance(v, str):
        errors.append(f"{where}: rational must be a 'p/q' string, got "
                      f"{type(v).__name__}")
        return
    try:
        frac_from_str(v)
    except (ValueError, ZeroDivisionError) as e:
        errors.append(f"{where}: bad rational {v!r} ({e})")


def _check_hex(errors: list[str], where: str, v: Any) -> None:
    if not isinstance(v, str):
        errors.append(f"{where}: double must be a hex string, got "
                      f"{type(v).__name__}")
        return
    try:
        hex_to_float(v)
    except ValueError as e:
        errors.append(f"{where}: bad hex double {v!r} ({e})")


def _check_frac_list(errors: list[str], where: str, v: Any) -> None:
    if not isinstance(v, list):
        errors.append(f"{where}: expected a list of rationals")
        return
    for i, item in enumerate(v):
        _check_frac(errors, f"{where}[{i}]", item)


def _schema_errors_witness(errors: list[str], where: str, wit: Any,
                           npoints: int) -> None:
    if not isinstance(wit, dict) or set(wit) != _WITNESS_KEYS:
        errors.append(f"{where}: witness keys must be "
                      f"{sorted(_WITNESS_KEYS)}")
        return
    rows = wit["rows"]
    if not isinstance(rows, list) or not rows \
            or any(not _is_int(i) for i in rows):
        errors.append(f"{where}.rows: expected a non-empty int list")
    elif sorted(set(rows)) != rows or rows[0] < 0 or rows[-1] >= npoints:
        errors.append(f"{where}.rows: must be strictly increasing indices "
                      f"into the slot's {npoints} points")
    _check_frac(errors, f"{where}.delta", wit["delta"])
    _check_frac(errors, f"{where}.dual_cap", wit["dual_cap"])
    for key in ("coeffs", "duals_lo", "duals_hi"):
        _check_frac_list(errors, f"{where}.{key}", wit[key])
    if isinstance(rows, list):
        for key in ("duals_lo", "duals_hi"):
            if isinstance(wit[key], list) and len(wit[key]) != len(rows):
                errors.append(f"{where}.{key}: {len(wit[key])} duals for "
                              f"{len(rows)} witness rows")
    tight = wit["tight_rows"]
    if not isinstance(tight, list) or any(not isinstance(t, str)
                                          for t in tight):
        errors.append(f"{where}.tight_rows: expected a list of row tags")


def _schema_errors_slot(errors: list[str], where: str, slot: Any) -> None:
    if not isinstance(slot, dict) or set(slot) != _SLOT_KEYS:
        errors.append(f"{where}: slot keys must be {sorted(_SLOT_KEYS)}")
        return
    if not _is_int(slot["index"]) or slot["index"] < 0:
        errors.append(f"{where}.index: expected a non-negative int")
    exps = slot["exponents"]
    if not isinstance(exps, list) or not exps \
            or any(not _is_int(e) or e < 0 for e in exps):
        errors.append(f"{where}.exponents: expected non-negative ints")
    coeffs = slot["coefficients"]
    if not isinstance(coeffs, list):
        errors.append(f"{where}.coefficients: expected a list")
        coeffs = []
    for i, c in enumerate(coeffs):
        _check_hex(errors, f"{where}.coefficients[{i}]", c)
    if isinstance(exps, list) and len(coeffs) != len(exps):
        errors.append(f"{where}: {len(exps)} exponents vs {len(coeffs)} "
                      "coefficients")
    points = slot["points"]
    if not isinstance(points, list):
        errors.append(f"{where}.points: expected a list")
        points = []
    for i, pt in enumerate(points):
        pw = f"{where}.points[{i}]"
        if not isinstance(pt, dict) or set(pt) != _POINT_KEYS:
            errors.append(f"{pw}: point keys must be {sorted(_POINT_KEYS)}")
            continue
        _check_hex(errors, f"{pw}.r", pt["r"])
        _check_frac(errors, f"{pw}.lo", pt["lo"])
        _check_frac(errors, f"{pw}.hi", pt["hi"])
    status = slot["status"]
    if status not in ("certified", "unconstrained"):
        errors.append(f"{where}.status: {status!r} is neither 'certified' "
                      "nor 'unconstrained'")
    elif status == "certified":
        if not points:
            errors.append(f"{where}: certified slot with no points")
        if slot["witness"] is None:
            errors.append(f"{where}: certified slot with no witness")
        else:
            _schema_errors_witness(errors, f"{where}.witness",
                                   slot["witness"], len(points))
    else:
        if points or slot["witness"] is not None:
            errors.append(f"{where}: unconstrained slot must carry no "
                          "points or witness")


def schema_errors(cert: Any) -> list[str]:
    """Structural problems with a parsed certificate (empty = well-formed).

    Purely local validation: types, key sets, parsability of every
    encoded number, and intra-slot consistency.  Anything relating the
    certificate to ``DATA`` or to arithmetic truth is the verifier's
    job, not the schema's.
    """
    errors: list[str] = []
    if not isinstance(cert, dict):
        return ["certificate top level must be an object"]
    if set(cert) != _CERT_KEYS:
        return [f"certificate keys must be {sorted(_CERT_KEYS)}"]
    if cert["format_version"] != FORMAT_VERSION:
        errors.append(f"format_version {cert['format_version']!r} not "
                      f"supported (expected {FORMAT_VERSION})")
        return errors
    if not isinstance(cert["function"], str) \
            or not isinstance(cert["target"], str):
        errors.append("function/target must be strings")
    tables = cert["tables"]
    if not isinstance(tables, dict):
        return errors + ["tables must be an object"]
    for key, table in tables.items():
        where = f"tables[{key!r}]"
        if not isinstance(table, dict) or set(table) != _TABLE_KEYS:
            errors.append(f"{where}: table keys must be "
                          f"{sorted(_TABLE_KEYS)}")
            continue
        if not isinstance(table["fn"], str) \
                or table["side"] not in ("neg", "pos"):
            errors.append(f"{where}: bad fn/side")
        elif key != table_key(table["fn"], table["side"]):
            errors.append(f"{where}: key disagrees with fn/side "
                          f"{table['fn']!r}/{table['side']!r}")
        bits, shift = table["index_bits"], table["shift"]
        if not _is_int(bits) or not _is_int(shift) or bits < 0 \
                or shift < 0 or shift + bits > 64:
            errors.append(f"{where}: bad index_bits/shift "
                          f"({bits!r}, {shift!r})")
            continue
        slots = table["slots"]
        if not isinstance(slots, list):
            errors.append(f"{where}.slots: expected a list")
            continue
        seen: set[int] = set()
        for i, slot in enumerate(slots):
            _schema_errors_slot(errors, f"{where}.slots[{i}]", slot)
            idx = slot.get("index") if isinstance(slot, dict) else None
            if _is_int(idx):
                if idx in seen:
                    errors.append(f"{where}.slots[{i}]: duplicate slot "
                                  f"index {idx}")
                elif not 0 <= idx < (1 << bits):
                    errors.append(f"{where}.slots[{i}]: slot index {idx} "
                                  f"outside 2**{bits} sub-domains")
                seen.add(idx)
    return errors
