"""tablecheck — static verifier for the frozen coefficient data modules.

Imports every ``repro.libm.data_float32/*`` and ``data_posit32/*``
module and checks the structural invariants the runtime silently relies
on — *without* running the generation pipeline, the oracle or the LP
solver.  A table that passes tablecheck may still be numerically wrong
(that is what exhaustive validation is for); a table that fails it will
definitely misbehave at runtime: an unaddressable sub-domain slot, a
NaN coefficient, a range-reduction class that no longer exists.

Invariants checked (rule codes TC2xx)
-------------------------------------

* TC201 — module/DATA shape: ``DATA`` dict present with the exact keys
  ``function, target, rr_kind, rr_state, approx, stats``; the module
  name matches ``DATA['function']`` and the package matches the target.
* TC202 — resolvability: ``target`` in ``serialize.TARGETS_BY_NAME``,
  ``rr_kind`` in ``serialize._RR_CLASSES``.
* TC203 — sub-domain addressability: each piecewise table has exactly
  ``2**index_bits`` polynomial slots, and ``(shift, index_bits)`` select
  bits that exist in the binary64 pattern (``0 <= shift``,
  ``shift + index_bits <= 64``) so every shift+mask lookup is defined.
* TC204 — polynomial structure: non-empty strictly increasing
  non-negative integer exponents, term count equal to coefficient count.
* TC205 — coefficients: every one a finite ``float`` that round-trips
  exactly through ``repr`` (the freezing format's contract).
* TC206 — rr_state: literal-only value types, required keys present,
  ``fn_names`` agreeing with the ``approx`` table, every float constant
  an exactly representable double (finite or ``inf``; NaN never valid —
  it would poison range reduction through every comparison).
* TC207 — stats: the GenStats counters present, numeric, non-negative.
* TC208 — reconstruction: ``serialize.function_from_dict`` rebuilds a
  runnable object from the frozen dict.
* TC209 — sub-domain contiguity: within one module and sign, every
  reduced function indexes the *same* reduced input, so all their index
  fields must end at the same bit (``shift + index_bits`` equal across
  tables — adjacent sub-domain bounds then meet exactly at one common
  bit boundary, leaving no gap and no overlap), and an index field of a
  sign-split table must never reach the sign bit
  (``shift + index_bits <= 63`` when ``index_bits >= 1``).
* TC210 — compact-layout fidelity: a module shipping a ``COMPACT``
  blob (:mod:`repro.libm.compact`) must decode cleanly, the decode
  must be the dict the module actually exposes as ``DATA``, and that
  dict must survive the *legacy* literal rendering round-trip
  (``render_module_legacy`` execs its own output and compares bit for
  bit) — so a torn pool, a stale hybrid module, or a codec regression
  is caught statically, without trusting the compact codec to verify
  itself.
"""

from __future__ import annotations

import importlib
import importlib.util
import math
import pkgutil
from pathlib import Path
from types import ModuleType
from typing import Any

from repro.analysis.findings import Finding, Severity, sort_findings

__all__ = ["DATA_PACKAGES", "check_data", "check_module", "check_package",
           "run_tablecheck", "load_module_from_path"]

#: The shipped frozen-data packages, in check order.
DATA_PACKAGES = ("repro.libm.data_float32", "repro.libm.data_posit32")

_DATA_KEYS = frozenset(
    {"function", "target", "rr_kind", "rr_state", "approx", "stats"})
_STATS_KEYS = ("gen_time_s", "oracle_time_s", "input_count",
               "special_count", "reduced_count", "per_fn")
_RR_STATE_KEYS = ("name", "fn_names", "exponents")
_LITERAL_TYPES = (float, int, str, bool, tuple, list, dict, type(None))


class _Checker:
    def __init__(self, path: str):
        self.path = path
        self.findings: list[Finding] = []

    def err(self, rule: str, message: str, hint: str = "") -> None:
        self.findings.append(
            Finding(self.path, 1, 0, rule, Severity.ERROR, message, hint))


def _check_float(c: _Checker, rule: str, where: str, v: Any,
                 allow_inf: bool = False) -> None:
    if type(v) is not float:
        c.err(rule, f"{where}: expected float, got {type(v).__name__} "
                    f"({v!r})")
        return
    if math.isnan(v):
        c.err(rule, f"{where}: NaN is never a valid frozen constant")
        return
    if math.isinf(v):
        if not allow_inf:
            c.err(rule, f"{where}: non-finite coefficient {v!r}")
        return
    # the exact comparison IS the invariant being verified here
    if float(repr(v)) != v:  # fplint: disable=FP101
        c.err(rule, f"{where}: {v!r} does not repr-round-trip")


def _check_piecewise(c: _Checker, where: str, pp: Any) -> None:
    if pp is None:
        return
    if not isinstance(pp, dict) or not {"index_bits", "shift",
                                        "polys"} <= set(pp):
        c.err("TC203", f"{where}: malformed piecewise dict")
        return
    bits, shift, polys = pp["index_bits"], pp["shift"], pp["polys"]
    if type(bits) is not int or type(shift) is not int:
        c.err("TC203", f"{where}: index_bits/shift must be ints")
        return
    if bits < 0 or shift < 0 or shift + bits > 64:
        c.err("TC203",
              f"{where}: (shift={shift}, index_bits={bits}) selects bits "
              "outside the 64-bit double pattern")
    if not isinstance(polys, (list, tuple)):
        c.err("TC203", f"{where}: polys must be a sequence")
        return
    if len(polys) != 1 << max(bits, 0):
        c.err("TC203",
              f"{where}: {len(polys)} polynomial slots for "
              f"2**{bits} = {1 << max(bits, 0)} sub-domains — some "
              "shift+mask lookups would be unaddressable",
              hint="regenerate the table; every index must resolve")
    for i, poly in enumerate(polys):
        pw = f"{where}.polys[{i}]"
        if not (isinstance(poly, (list, tuple)) and len(poly) == 2):
            c.err("TC204", f"{pw}: expected (exponents, coefficients) pair")
            continue
        exps, coeffs = poly
        if not isinstance(exps, (list, tuple)) \
                or not isinstance(coeffs, (list, tuple)):
            c.err("TC204", f"{pw}: exponents/coefficients must be tuples")
            continue
        if not exps:
            c.err("TC204", f"{pw}: empty polynomial")
        if len(exps) != len(coeffs):
            c.err("TC204",
                  f"{pw}: {len(exps)} exponents vs {len(coeffs)} "
                  "coefficients")
        if any(type(e) is not int or e < 0 for e in exps):
            c.err("TC204", f"{pw}: exponents must be non-negative ints")
        elif list(exps) != sorted(set(exps)):
            c.err("TC204",
                  f"{pw}: exponents {tuple(exps)} not strictly increasing")
        for j, coeff in enumerate(coeffs):
            _check_float(c, "TC205", f"{pw}.c[{j}]", coeff)


def _check_contiguity(c: _Checker, approx: dict) -> None:
    """TC209: per sign, the sub-domain fields of all tables meet exactly."""
    for side in ("neg", "pos"):
        tops: dict[str, int] = {}
        for name in sorted(approx):
            sides = approx[name]
            if not isinstance(sides, dict):
                continue
            pp = sides.get(side)
            if not isinstance(pp, dict):
                continue
            bits, shift = pp.get("index_bits"), pp.get("shift")
            if type(bits) is not int or type(shift) is not int \
                    or bits < 0 or shift < 0:
                continue  # malformed geometry is TC203's report
            top = shift + bits
            if bits >= 1 and top > 63:
                c.err("TC209",
                      f"approx[{name!r}].{side}: index field (shift="
                      f"{shift}, index_bits={bits}) reaches the sign bit; "
                      "sub-domains would straddle the neg/pos split",
                      hint="same-sign tables must index below bit 63")
            tops[name] = top
        if len(set(tops.values())) > 1:
            detail = ", ".join(f"{n}: ends at bit {t}"
                               for n, t in sorted(tops.items()))
            c.err("TC209",
                  f"{side} sub-domain tables are not contiguous across "
                  f"reduced functions: index fields end at different bits "
                  f"({detail})",
                  hint="every reduced function indexes the same reduced "
                       "input; adjacent sub-domain bounds must meet at "
                       "one common bit boundary (equal shift+index_bits)")


def _check_rr_state_value(c: _Checker, where: str, v: Any) -> None:
    if isinstance(v, (tuple, list)):
        for i, item in enumerate(v):
            _check_rr_state_value(c, f"{where}[{i}]", item)
    elif isinstance(v, dict):
        for k, item in v.items():
            _check_rr_state_value(c, f"{where}[{k!r}]", item)
    elif isinstance(v, float):
        # thresholds/results may legitimately be +-inf (overflow results)
        _check_float(c, "TC206", where, v, allow_inf=True)
    elif not isinstance(v, _LITERAL_TYPES):
        c.err("TC206",
              f"{where}: non-literal type {type(v).__name__} cannot have "
              "been frozen faithfully")


def check_data(data: Any, path: str,
               expect_function: str | None = None,
               expect_target: str | None = None) -> list[Finding]:
    """All structural findings for one frozen DATA dict."""
    from repro.libm.serialize import _RR_CLASSES, TARGETS_BY_NAME

    c = _Checker(path)
    if not isinstance(data, dict):
        c.err("TC201", f"DATA is {type(data).__name__}, not dict")
        return c.findings
    missing = _DATA_KEYS - set(data)
    extra = set(data) - _DATA_KEYS
    if missing:
        c.err("TC201", f"DATA missing keys {sorted(missing)}")
    if extra:
        c.err("TC201", f"DATA has unknown keys {sorted(extra)}")
    if missing:
        return c.findings

    fn, target = data["function"], data["target"]
    if expect_function is not None and fn != expect_function:
        c.err("TC201",
              f"DATA['function'] is {fn!r} but the module is named "
              f"{expect_function!r}")
    if expect_target is not None and target != expect_target:
        c.err("TC201",
              f"DATA['target'] is {target!r} but the module lives in the "
              f"{expect_target!r} package")
    if target not in TARGETS_BY_NAME:
        c.err("TC202", f"unknown target {target!r}",
              hint=f"known: {sorted(TARGETS_BY_NAME)}")
    if data["rr_kind"] not in _RR_CLASSES:
        c.err("TC202", f"rr_kind {data['rr_kind']!r} not resolvable",
              hint=f"known: {sorted(_RR_CLASSES)}")

    approx = data["approx"]
    if not isinstance(approx, dict) or not approx:
        c.err("TC201", "DATA['approx'] must be a non-empty dict")
        approx = {}
    for name, sides in approx.items():
        if not isinstance(sides, dict) or set(sides) != {"neg", "pos"}:
            c.err("TC203", f"approx[{name!r}]: expected neg/pos dict")
            continue
        if sides["neg"] is None and sides["pos"] is None:
            c.err("TC203", f"approx[{name!r}]: both sides absent")
        for side in ("neg", "pos"):
            _check_piecewise(c, f"approx[{name!r}].{side}", sides[side])
    _check_contiguity(c, approx)

    st = data["rr_state"]
    if not isinstance(st, dict):
        c.err("TC206", "DATA['rr_state'] must be a dict")
    else:
        for key in _RR_STATE_KEYS:
            if key not in st:
                c.err("TC206", f"rr_state missing {key!r}")
        fn_names = st.get("fn_names")
        if isinstance(fn_names, (tuple, list)) and approx \
                and set(fn_names) != set(approx):
            c.err("TC206",
                  f"rr_state fn_names {tuple(fn_names)} disagree with "
                  f"approx table {tuple(sorted(approx))}")
        for k, v in st.items():
            _check_rr_state_value(c, f"rr_state[{k!r}]", v)

    stats = data["stats"]
    if not isinstance(stats, dict):
        c.err("TC207", "DATA['stats'] must be a dict")
    else:
        for key in _STATS_KEYS:
            if key not in stats:
                c.err("TC207", f"stats missing {key!r}")
            elif key != "per_fn":
                v = stats[key]
                if not isinstance(v, (int, float)) or isinstance(v, bool) \
                        or v < 0:
                    c.err("TC207", f"stats[{key!r}] = {v!r} must be a "
                                   "non-negative number")

    if not c.findings:
        from repro.libm.serialize import function_from_dict
        try:
            function_from_dict(data)
        except Exception as e:
            c.err("TC208",
                  f"function_from_dict failed to rebuild the function: "
                  f"{type(e).__name__}: {e}")
    return c.findings


def _check_compact(c: _Checker, mod: ModuleType) -> None:
    """TC210: a COMPACT blob must decode to exactly what DATA exposes,
    and the decode must survive the legacy literal rendering round-trip.
    """
    comp = mod.__dict__.get("COMPACT")  # plain lookup: no PEP 562 decode
    if comp is None:
        return  # legacy-rendered module; nothing compact to verify
    from repro.libm import compact
    from repro.libm.serialize import _deep_equal, render_module_legacy
    try:
        decoded = compact.decode(comp)
    except Exception as e:
        c.err("TC210", f"COMPACT blob fails to decode: "
                       f"{type(e).__name__}: {e}",
              "the pool or skeleton is torn; regenerate the module")
        return
    if not _deep_equal(decoded, mod.DATA):
        c.err("TC210", "module DATA differs from its own COMPACT decode",
              "stale hybrid module (literal DATA left beside COMPACT); "
              "regenerate the module")
    try:
        render_module_legacy(decoded)
    except Exception as e:
        c.err("TC210", f"decoded compact data fails the legacy rendering "
                       f"round-trip: {type(e).__name__}: {e}",
              "a decoded double does not repr-round-trip or structure "
              "was lost; regenerate the module")


def check_module(mod: ModuleType) -> list[Finding]:
    """Check one imported data module (expects a module-level ``DATA``)."""
    path = getattr(mod, "__file__", None) or mod.__name__
    short = mod.__name__.rsplit(".", 1)[-1]
    pkg = mod.__name__.rsplit(".", 2)[-2] if "." in mod.__name__ else ""
    target = pkg.removeprefix("data_") if pkg.startswith("data_") else None
    if not hasattr(mod, "DATA"):
        return [Finding(path, 1, 0, "TC201", Severity.ERROR,
                        "module has no DATA constant", "")]
    findings = check_data(mod.DATA, path, expect_function=short,
                          expect_target=target)
    c = _Checker(path)
    _check_compact(c, mod)
    return findings + c.findings


def load_module_from_path(path: str | Path) -> ModuleType:
    """Import a data module straight from a file (for fixtures/CLI args)."""
    p = Path(path)
    spec = importlib.util.spec_from_file_location(p.stem, p)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {p}")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def check_package(pkg_name: str) -> tuple[int, list[Finding]]:
    """Check every data module of one package; (module count, findings)."""
    findings: list[Finding] = []
    try:
        pkg = importlib.import_module(pkg_name)
    except Exception as e:
        return 0, [Finding(pkg_name, 1, 0, "TC201", Severity.ERROR,
                           f"cannot import package: {e}", "")]
    n = 0
    for info in sorted(pkgutil.iter_modules(pkg.__path__),
                       key=lambda i: i.name):
        if info.ispkg:
            continue
        n += 1
        full = f"{pkg_name}.{info.name}"
        try:
            mod = importlib.import_module(full)
        except Exception as e:
            findings.append(Finding(full, 1, 0, "TC201", Severity.ERROR,
                                    f"cannot import module: "
                                    f"{type(e).__name__}: {e}", ""))
            continue
        findings.extend(check_module(mod))
    return n, findings


def run_tablecheck(packages: tuple[str, ...] = DATA_PACKAGES,
                   extra_paths: tuple[str, ...] = ()) -> \
        tuple[int, list[Finding]]:
    """Check all shipped data packages (+ any extra module files)."""
    total = 0
    findings: list[Finding] = []
    for pkg in packages:
        n, fs = check_package(pkg)
        total += n
        findings.extend(fs)
    for path in extra_paths:
        total += 1
        try:
            mod = load_module_from_path(path)
        except Exception as e:
            findings.append(Finding(str(path), 1, 0, "TC201",
                                    Severity.ERROR,
                                    f"cannot import module: "
                                    f"{type(e).__name__}: {e}", ""))
            continue
        if not hasattr(mod, "DATA"):
            findings.append(Finding(str(path), 1, 0, "TC201",
                                    Severity.ERROR,
                                    "module has no DATA constant", ""))
        else:
            # standalone files carry no package context; skip name checks
            findings.extend(check_data(mod.DATA, str(path)))
            c = _Checker(str(path))
            _check_compact(c, mod)
            findings.extend(c.findings)
    return total, sort_findings(findings)
