"""The common finding model shared by fplint and tablecheck.

Both engines report :class:`Finding` records: a rule code, a severity,
a location and a human message plus a fix-it hint.  Findings order by
location so reports are stable, and serialize to plain dicts for the
``--format json`` CLI path and the baseline file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["Finding", "Severity", "sort_findings"]


class Severity:
    """Finding severities, ordered from most to least severe."""

    ERROR = "error"
    WARNING = "warning"

    #: Rank used for sorting (errors first).
    ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Finding:
    """One diagnostic from a static-analysis engine."""

    #: Repo-relative posix path of the offending file.
    path: str
    #: 1-based line (0 for whole-module findings located nowhere).
    line: int
    #: 0-based column.
    col: int
    #: Rule code: ``FP1xx`` (fplint) or ``TC2xx`` (tablecheck).
    rule: str
    #: ``error`` or ``warning``.
    severity: str
    #: What is wrong, concretely.
    message: str
    #: How to fix it (or how to suppress it when intentional).
    hint: str = field(default="", compare=False)

    @property
    def key(self) -> str:
        """Baseline identity: path, rule and line (columns drift freely)."""
        return f"{self.path}:{self.rule}:{self.line}"

    def to_dict(self) -> dict[str, Any]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "severity": self.severity,
                "message": self.message, "hint": self.hint}

    def render(self) -> str:
        loc = f"{self.path}:{self.line}:{self.col + 1}"
        out = f"{loc}: {self.rule} [{self.severity}] {self.message}"
        if self.hint:
            out += f"\n    hint: {self.hint}"
        return out


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Stable report order: by file, line, column, then rule code."""
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.col, f.rule))
