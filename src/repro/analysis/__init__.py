"""Static analysis for the RLIBM-32 reproduction.

Two engines guard the invariants the generated library's correctness
rests on:

* :mod:`repro.analysis.fplint` — an AST linter with codebase-specific
  floating-point-safety rules (FP101–FP108).
* :mod:`repro.analysis.tablecheck` — a static verifier for the frozen
  coefficient data modules (TC201–TC208).

Run both with ``python -m repro lint`` (or the ``repro-lint`` script);
:mod:`repro.analysis.baseline` grandfathers historical findings.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.fplint import (DEFAULT_ROOTS, RULES, Rule, lint_file,
                                   lint_paths, lint_source)
from repro.analysis.tablecheck import (DATA_PACKAGES, check_data,
                                       check_module, check_package,
                                       run_tablecheck)

__all__ = [
    "Finding", "Severity", "sort_findings",
    "DEFAULT_ROOTS", "RULES", "Rule", "lint_file", "lint_paths",
    "lint_source",
    "DATA_PACKAGES", "check_data", "check_module", "check_package",
    "run_tablecheck",
]
