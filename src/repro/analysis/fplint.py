"""fplint — AST-based floating-point-safety linter for this codebase.

The generated library is only correct while a set of invariants holds in
the *source*: range reduction and output compensation stay in exact
double arithmetic, coefficient literals round-trip through ``repr``,
frozen ``DATA`` tables are never mutated, the generation pipeline is
deterministic.  Nothing enforces those invariants at runtime — they fail
silently, and only exhaustive validation (hours for float32) would
notice.  This module checks them at commit time with stdlib ``ast``
only.

Rules
-----

========  ========  ==========================================================
code      severity  checks
========  ========  ==========================================================
FP100     error     file does not parse (reported, never crashes the run)
FP101     error     ``==``/``!=`` on float-valued expressions outside the
                    modules whose contract *is* exact comparison
FP102     error     ``math.*`` transcendental calls in runtime /
                    range-reduction paths (must use the oracle or tables)
FP103     error     float literals that are not exactly the shortest
                    ``repr`` of the double they produce (silent rounding)
FP104     warning   int literals mixed into float arithmetic in Horner /
                    output-compensation hot paths (implicit promotion)
FP105     error     mutation of a frozen ``DATA`` table
FP106     error     bare ``except:`` or swallowed exceptions in core/
FP107     error     nondeterminism in the generation pipeline (global RNG,
                    wall clock, hash-ordered set iteration)
FP108     warning   module in src/ missing ``from __future__ import
                    annotations``
FP109     error     direct import of ``repro.libm.runtime`` outside the
                    sanctioned layers (``repro/api``, ``repro/serve``,
                    ``repro/libm``, ``repro/eval``)
========  ========  ==========================================================

Any finding can be suppressed for one line with a trailing
``# fplint: disable=FP101`` (comma-separate several codes); grandfathered
findings live in the committed baseline (see :mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import ast
import math
import os
import re
from dataclasses import dataclass
from decimal import Decimal, InvalidOperation
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.analysis.findings import Finding, Severity, sort_findings

__all__ = ["Rule", "RULES", "DEFAULT_ROOTS", "FIXABLE", "lint_source",
           "lint_file", "lint_paths", "apply_fixes", "fix_paths"]

#: Roots (repo-relative) that ``lint_paths`` walks by default.
#: benchmarks/ and examples/ are walked for the layering rule (FP109)
#: only — every other rule's ``applies`` scope keeps it out of them.
DEFAULT_ROOTS = ("src/repro", "tools", "benchmarks", "examples")

_DISABLE_RE = re.compile(r"#\s*fplint:\s*disable=([A-Z0-9,\s]+)")

#: ``math`` functions whose results are approximations of transcendental
#: functions — the exact values the library exists to *replace*.
_TRANSCENDENTAL = frozenset({
    "exp", "expm1", "exp2", "log", "log1p", "log2", "log10", "pow",
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
    "sinh", "cosh", "tanh", "asinh", "acosh", "atanh",
    "erf", "erfc", "gamma", "lgamma", "cbrt",
})

#: ``math`` members usable in float-typed expressions (heuristic input).
_MATH_FLOAT_NAMES = _TRANSCENDENTAL | frozenset({
    "sqrt", "hypot", "fabs", "copysign", "fmod", "remainder", "ldexp",
    "fsum", "dist", "nextafter", "ulp", "floor", "ceil",
    "inf", "nan", "pi", "e", "tau",
})

#: ``random`` module-level functions that use the hidden global RNG.
_GLOBAL_RNG = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "betavariate", "expovariate", "seed", "getrandbits", "randbytes",
})

#: list/dict methods that mutate in place (FP105 on DATA chains).
_MUTATORS = frozenset({
    "update", "pop", "popitem", "clear", "setdefault", "__setitem__",
    "append", "extend", "insert", "remove", "sort", "reverse",
})


@dataclass(frozen=True)
class Rule:
    """Static description of one fplint rule (used for docs and scoping)."""

    code: str
    summary: str
    severity: str
    hint: str
    #: Repo-relative posix path prefixes the rule applies to.
    applies: tuple[str, ...]
    #: Prefixes exempt even when inside ``applies`` (domain contracts).
    excludes: tuple[str, ...] = ()

    def in_scope(self, path: str) -> bool:
        if not any(path == p or path.startswith(p + "/")
                   for p in self.applies):
            return False
        return not any(path.startswith(e) for e in self.excludes)


_DATA_PKGS = ("src/repro/libm/data_float32/", "src/repro/libm/data_posit32/")

RULES: dict[str, Rule] = {r.code: r for r in (
    Rule("FP100", "file must parse", Severity.ERROR,
         "fix the syntax error", ("src/repro", "tools")),
    Rule("FP101", "float equality comparison", Severity.ERROR,
         "compare bit patterns, use an explicit tolerance, or suppress "
         "where exact-value comparison is the contract",
         ("src/repro",),
         # formats, posits, oracles, range reduction, the batch engine
         # and baselines compare exact special-case values by design
         ("src/repro/fp/", "src/repro/posit/", "src/repro/oracle/",
          "src/repro/rangereduction/", "src/repro/baselines/",
          "src/repro/batch/")),
    Rule("FP102", "math.* transcendental in runtime/range-reduction path",
         Severity.ERROR,
         "route through repro.oracle (generation time) or the frozen "
         "tables (runtime); math.* is not correctly rounded",
         ("src/repro/libm", "src/repro/rangereduction", "src/repro/batch"),
         _DATA_PKGS),
    Rule("FP103", "float literal does not repr-round-trip", Severity.ERROR,
         "rewrite the literal as repr(value) so the written decimal is "
         "exactly the double the program uses",
         ("src/repro", "tools")),
    Rule("FP104", "int/float mixing in hot-path arithmetic", Severity.WARNING,
         "write the float form (e.g. 0.0 instead of 0) so the promotion "
         "is visible and the emitted straight-line code stays uniform",
         ("src/repro/core/polynomials.py", "src/repro/rangereduction",
          "src/repro/libm/float32.py", "src/repro/libm/posit32.py",
          "src/repro/libm/runtime.py")),
    Rule("FP105", "mutation of a frozen DATA table", Severity.ERROR,
         "frozen data modules are immutable by contract; deep-copy before "
         "editing, or regenerate with tools/generate_*.py",
         ("src/repro", "tools")),
    Rule("FP106", "bare or swallowed exception in core/", Severity.ERROR,
         "catch the narrowest exception and handle or re-raise it; the "
         "pipeline must fail loudly",
         ("src/repro/core", "src/repro/cache", "src/repro/obs/bench.py",
          "src/repro/obs/export.py", "src/repro/obs/profile.py",
          "src/repro/obs/timing.py"),
         # the store CLI prints problems rather than raising by design
         ("src/repro/cache/cli.py",)),
    Rule("FP107", "nondeterminism in the generation pipeline", Severity.ERROR,
         "use a seeded random.Random instance, perf_counter for durations "
         "only, and sorted() before iterating sets",
         # timing/profile measure durations and must stay on the
         # monotonic clock; bench/export are exempt — trajectory and
         # snapshot records timestamp themselves with wall time by design
         ("src/repro/core", "src/repro/cache", "src/repro/libm/genlib.py",
          "src/repro/lp", "src/repro/obs/profile.py",
          "src/repro/obs/timing.py", "tools")),
    Rule("FP108", "missing 'from __future__ import annotations'",
         Severity.WARNING,
         "add the import as the first statement after the docstring",
         ("src/repro",),
         _DATA_PKGS),
    Rule("FP109", "direct import of repro.libm.runtime", Severity.ERROR,
         "route through repro.api (load / reload / functions / available) "
         "— the runtime loader is an internal layer behind the facade",
         ("src/repro", "tools", "benchmarks", "examples"),
         # the facade and the service own the loader; the libm package
         # *is* the loader; the eval layer differentially audits the
         # low-level path against the facade by design
         ("src/repro/api/", "src/repro/serve/", "src/repro/libm/",
          "src/repro/eval/")),
)}


# --------------------------------------------------------------------------
# expression heuristics


_NO_NAMES: frozenset[str] = frozenset()


def _is_float_expr(node: ast.expr,
                   float_names: frozenset[str] | set[str] = _NO_NAMES) \
        -> bool:
    """Conservatively: is this expression definitely float-valued?

    ``float_names`` are local names known to hold doubles (``x: float``
    parameters and names assigned from float expressions).
    """
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Name):
        return node.id in float_names
    if isinstance(node, ast.UnaryOp):
        return _is_float_expr(node.operand, float_names)
    if isinstance(node, ast.BinOp):
        return (_is_float_expr(node.left, float_names)
                or _is_float_expr(node.right, float_names))
    if isinstance(node, ast.IfExp):
        return (_is_float_expr(node.body, float_names)
                or _is_float_expr(node.orelse, float_names))
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Name) and f.id == "float":
            return True
        if (isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name)
                and f.value.id == "math" and f.attr in _MATH_FLOAT_NAMES):
            return True
        return False
    if isinstance(node, ast.Attribute):
        return (isinstance(node.value, ast.Name) and node.value.id == "math"
                and node.attr in _MATH_FLOAT_NAMES)
    return False


def _is_int_literal(node: ast.expr) -> bool:
    return (isinstance(node, ast.Constant)
            and type(node.value) is int)


def _chain_hits_data(node: ast.expr) -> bool:
    """Does this value chain (a.b["c"].d ...) pass through a DATA name?"""
    while True:
        if isinstance(node, ast.Name):
            return node.id == "DATA"
        if isinstance(node, ast.Attribute):
            if node.attr == "DATA":
                return True
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return False


def _sig_text(lines: Sequence[str], node: ast.Constant) -> str | None:
    """Source text of a (single-line) numeric literal token."""
    if node.lineno != getattr(node, "end_lineno", node.lineno):
        return None
    try:
        line = lines[node.lineno - 1]
    except IndexError:
        return None
    return line[node.col_offset:node.end_col_offset]


# --------------------------------------------------------------------------
# the per-file linter


class _FileLinter:
    def __init__(self, src: str, path: str, rules: Iterable[Rule]):
        self.src = src
        self.path = path
        self.lines = src.splitlines()
        self.rules = {r.code for r in rules if r.in_scope(path)}
        self.findings: list[Finding] = []
        #: node ids inside integer contexts (indices, range(), bit ops) —
        #: int literals there are *supposed* to be ints (FP104).
        self._int_ctx: set[int] = set()

    def add(self, code: str, node: ast.AST | None, message: str) -> None:
        if code not in self.rules:
            return
        rule = RULES[code]
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        self.findings.append(Finding(self.path, line, col, code,
                                     rule.severity, message, rule.hint))

    # -- driver ------------------------------------------------------------

    def run(self) -> list[Finding]:
        if not self.rules:
            return []
        try:
            tree = ast.parse(self.src, filename=self.path)
        except SyntaxError as e:
            line = e.lineno or 1
            self.findings.append(Finding(
                self.path, line, (e.offset or 1) - 1, "FP100",
                Severity.ERROR, f"syntax error: {e.msg}",
                RULES["FP100"].hint))
            return self.findings
        self._mark_int_contexts(tree)
        self._check_fp108(tree)
        self._check_fp104_pass(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Compare):
                self._check_fp101(node)
            elif isinstance(node, ast.Call):
                self._check_fp102(node)
                self._check_fp105_call(node)
                self._check_fp107_call(node)
            elif isinstance(node, ast.Constant):
                self._check_fp103(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign,
                                   ast.Delete)):
                self._check_fp105_stmt(node)
            elif isinstance(node, ast.ExceptHandler):
                self._check_fp106(node)
            elif isinstance(node, (ast.For, ast.ImportFrom)):
                self._check_fp107_stmt(node)
                if isinstance(node, ast.ImportFrom):
                    self._check_fp109(node)
            elif isinstance(node, ast.Import):
                self._check_fp109(node)
        return self._suppress(self.findings)

    def _suppress(self, findings: list[Finding]) -> list[Finding]:
        kept = []
        for f in findings:
            line = self.lines[f.line - 1] if 0 < f.line <= len(self.lines) \
                else ""
            m = _DISABLE_RE.search(line)
            if m and f.rule in {c.strip() for c in m.group(1).split(",")}:
                continue
            kept.append(f)
        return kept

    # -- rules -------------------------------------------------------------

    def _check_fp101(self, node: ast.Compare) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        if any(_is_float_expr(e) for e in [node.left, *node.comparators]):
            self.add("FP101", node,
                     "equality comparison on a float-valued expression")

    def _check_fp102(self, node: ast.Call) -> None:
        f = node.func
        if (isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name)
                and f.value.id == "math" and f.attr in _TRANSCENDENTAL):
            self.add("FP102", node,
                     f"math.{f.attr}() in a runtime/range-reduction path "
                     "is not correctly rounded")

    def _check_fp103(self, node: ast.Constant) -> None:
        if not isinstance(node.value, float):
            return
        text = _sig_text(self.lines, node)
        if text is None:
            return
        text = text.strip().lower().replace("_", "")
        if not text or text[0] not in "0123456789.":
            return  # not a literal token (e.g. folded docstring constant)
        v = node.value
        if not math.isfinite(v):
            self.add("FP103", node,
                     f"literal {text!r} overflows to {v!r}; it cannot "
                     "round-trip through repr")
            return
        try:
            written = Decimal(text)
        except InvalidOperation:
            return
        if written != Decimal(repr(v)):
            self.add("FP103", node,
                     f"literal {text!r} is not the double it denotes; "
                     f"the value actually used is {v!r}")

    def _check_fp104_pass(self, tree: ast.Module) -> None:
        """Int literals mixed with known-float operands, per function.

        Known-float names: parameters annotated ``float`` plus names
        assigned from definitely-float expressions.  Pure int arithmetic
        (loop counters, exponent math) therefore never fires.
        """
        if "FP104" not in self.rules:
            return
        seen: set[int] = set()
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            a = fn.args
            floats = {arg.arg for arg in
                      (*a.posonlyargs, *a.args, *a.kwonlyargs)
                      if isinstance(arg.annotation, ast.Name)
                      and arg.annotation.id == "float"}
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and _is_float_expr(node.value, floats):
                    floats.add(node.targets[0].id)
            for node in ast.walk(fn):
                if not isinstance(node, ast.BinOp) or id(node) in seen \
                        or id(node) in self._int_ctx:
                    continue
                if not isinstance(node.op,
                                  (ast.Add, ast.Sub, ast.Mult, ast.Div)):
                    continue
                seen.add(id(node))
                for lit, other in ((node.left, node.right),
                                   (node.right, node.left)):
                    if _is_int_literal(lit) \
                            and _is_float_expr(other, floats):
                        self.add("FP104", node,
                                 f"int literal {lit.value!r} promoted "
                                 "implicitly in hot-path float arithmetic")
                        break

    def _check_fp105_stmt(self, node: ast.stmt) -> None:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for t in targets:
            if isinstance(t, (ast.Subscript, ast.Attribute)) \
                    and _chain_hits_data(t.value):
                self.add("FP105", node,
                         "assignment into a frozen DATA table")

    def _check_fp105_call(self, node: ast.Call) -> None:
        f = node.func
        if (isinstance(f, ast.Attribute) and f.attr in _MUTATORS
                and _chain_hits_data(f.value)):
            self.add("FP105", node,
                     f".{f.attr}() mutates a frozen DATA table")

    def _check_fp106(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.add("FP106", node, "bare 'except:' hides real failures")
            return
        body = node.body
        swallowed = all(
            isinstance(s, ast.Pass)
            or (isinstance(s, ast.Expr) and isinstance(s.value, ast.Constant)
                and s.value.value is Ellipsis)
            for s in body)
        if swallowed:
            self.add("FP106", node, "exception swallowed without handling")

    def _check_fp107_call(self, node: ast.Call) -> None:
        f = node.func
        if not isinstance(f, ast.Attribute) or not isinstance(f.value,
                                                              ast.Name):
            return
        mod, attr = f.value.id, f.attr
        if mod == "random" and attr in _GLOBAL_RNG:
            self.add("FP107", node,
                     f"random.{attr}() uses the hidden global RNG; "
                     "results depend on interpreter-wide state")
        elif mod == "time" and attr in ("time", "time_ns"):
            self.add("FP107", node,
                     f"time.{attr}() is wall clock; generation decisions "
                     "must not depend on it")
        elif mod == "os" and attr == "urandom":
            self.add("FP107", node, "os.urandom() is nondeterministic")
        elif mod == "uuid" and attr.startswith("uuid"):
            self.add("FP107", node, f"uuid.{attr}() is nondeterministic")

    def _check_fp107_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                bad = sorted(a.name for a in node.names
                             if a.name in _GLOBAL_RNG)
                if bad:
                    self.add("FP107", node,
                             f"importing global-RNG functions {bad} from "
                             "random")
            return
        # for-loop over a set expression: hash-order (PYTHONHASHSEED)
        it = node.iter
        is_set = (isinstance(it, (ast.Set, ast.SetComp))
                  or (isinstance(it, ast.Call)
                      and isinstance(it.func, ast.Name)
                      and it.func.id in ("set", "frozenset")))
        if is_set:
            self.add("FP107", node.iter,
                     "iterating a set is hash-order dependent")

    def _check_fp109(self, node: ast.stmt) -> None:
        """Layering: only api/serve (and libm itself) touch the loader."""
        _RUNTIME = "repro.libm.runtime"
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == _RUNTIME \
                        or alias.name.startswith(_RUNTIME + "."):
                    self.add("FP109", node,
                             f"direct import of {alias.name}")
            return
        mod = node.module or ""
        if node.level:  # relative import: resolved inside repro.libm,
            return      # which the rule's excludes already exempt
        if mod == _RUNTIME or mod.startswith(_RUNTIME + "."):
            self.add("FP109", node, f"direct import from {mod}")
        elif mod == "repro.libm" and any(a.name == "runtime"
                                         for a in node.names):
            self.add("FP109", node,
                     "direct import of runtime from repro.libm")

    def _check_fp108(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, ast.ImportFrom) \
                    and stmt.module == "__future__" \
                    and any(a.name == "annotations" for a in stmt.names):
                return
        self.add("FP108", None,
                 "module lacks 'from __future__ import annotations'")

    # -- int-context marking (FP104) ---------------------------------------

    def _mark_int_contexts(self, tree: ast.Module) -> None:
        if "FP104" not in self.rules:
            return
        int_roots: list[ast.AST] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Subscript):
                int_roots.append(node.slice)
            elif isinstance(node, ast.Call) and isinstance(node.func,
                                                           ast.Name) \
                    and node.func.id in ("range", "len", "divmod", "int",
                                         "round", "min", "max", "enumerate"):
                int_roots.extend(node.args)
            elif isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr,
                              ast.BitXor, ast.FloorDiv, ast.Mod)):
                int_roots.extend((node.left, node.right))
        for root in int_roots:
            for sub in ast.walk(root):
                self._int_ctx.add(id(sub))


# --------------------------------------------------------------------------
# public entry points


def lint_source(src: str, path: str,
                rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one in-memory module; ``path`` decides which rules apply."""
    return sort_findings(
        _FileLinter(src, path, rules or RULES.values()).run())


def lint_file(filename: str | os.PathLike, root: str | os.PathLike) -> \
        list[Finding]:
    """Lint one file, reporting paths relative to the repo ``root``."""
    p = Path(filename)
    rel = p.resolve().relative_to(Path(root).resolve()).as_posix()
    return lint_source(p.read_text(encoding="utf-8"), rel)


def _iter_py(paths: Iterable[Path]) -> Iterable[Path]:
    for p in paths:
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py")
                              if "__pycache__" not in q.parts)
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Sequence[str | os.PathLike] | None = None,
               root: str | os.PathLike = ".") -> list[Finding]:
    """Lint files/directories (default: :data:`DEFAULT_ROOTS`)."""
    rootp = Path(root).resolve()
    if paths is None:
        paths = [rootp / r for r in DEFAULT_ROOTS]
    out: list[Finding] = []
    for f in _iter_py([Path(p) for p in paths]):
        out.extend(lint_file(f, rootp))
    return sort_findings(out)


# --------------------------------------------------------------------------
# --fix: mechanical application of fix-it hints


#: Rules whose hints are mechanical enough to auto-apply.
FIXABLE = ("FP103", "FP108")


def apply_fixes(src: str, path: str) -> tuple[str, list[Finding]]:
    """Apply the fix-it hints for :data:`FIXABLE` findings in one module.

    Returns ``(new source, findings fixed)``.  Only findings the linter
    would actually report are touched (suppressed and baselined-out
    call sites are the caller's concern — this operates pre-baseline,
    like the linter itself).  Fixes are purely mechanical:

    * FP103 — rewrite the float literal as ``repr(value)``, the shortest
      decimal that round-trips to the same double.  Literals that
      overflow to infinity have no repr form and are left alone.
    * FP108 — insert ``from __future__ import annotations`` directly
      after the module docstring (or at the top when there is none).
    """
    findings = [f for f in lint_source(src, path) if f.rule in FIXABLE]
    if not findings:
        return src, []
    lines = src.splitlines()
    tree = ast.parse(src)

    fixed: list[Finding] = []
    locs = {(f.line, f.col): f for f in findings if f.rule == "FP103"}
    edits: list[tuple[int, int, int, str]] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Constant)
                and isinstance(node.value, float)):
            continue
        f = locs.get((node.lineno, node.col_offset))
        if f is None or node.lineno != getattr(node, "end_lineno",
                                               node.lineno) \
                or not math.isfinite(node.value):
            continue
        edits.append((node.lineno, node.col_offset, node.end_col_offset,
                      repr(node.value)))
        fixed.append(f)
    # bottom-up, right-to-left so earlier spans keep their offsets
    for lineno, col, end, rep in sorted(edits, reverse=True):
        line = lines[lineno - 1]
        lines[lineno - 1] = line[:col] + rep + line[end:]

    fp108 = next((f for f in findings if f.rule == "FP108"), None)
    if fp108 is not None:
        doc = tree.body[0] if (tree.body
                               and isinstance(tree.body[0], ast.Expr)
                               and isinstance(tree.body[0].value,
                                              ast.Constant)
                               and isinstance(tree.body[0].value.value,
                                              str)) else None
        if doc is not None:
            at = doc.end_lineno
            lines[at:at] = ["", "from __future__ import annotations"]
        else:
            lines[0:0] = ["from __future__ import annotations", ""]
        fixed.append(fp108)

    out = "\n".join(lines)
    if src.endswith("\n"):
        out += "\n"
    return out, sort_findings(fixed)


def fix_paths(paths: Sequence[str | os.PathLike] | None = None,
              root: str | os.PathLike = ".", *, dry_run: bool = False) \
        -> tuple[list[Finding], dict[str, str]]:
    """Apply :func:`apply_fixes` across files/directories.

    Returns ``(findings fixed, {repo-relative path: unified diff})``.
    With ``dry_run`` nothing is written; otherwise every fixed file is
    rewritten in place.
    """
    import difflib

    rootp = Path(root).resolve()
    if paths is None:
        paths = [rootp / r for r in DEFAULT_ROOTS]
    all_fixed: list[Finding] = []
    diffs: dict[str, str] = {}
    for p in _iter_py([Path(q) for q in paths]):
        rel = p.resolve().relative_to(rootp).as_posix()
        src = p.read_text(encoding="utf-8")
        new, fixed = apply_fixes(src, rel)
        if not fixed or new == src:
            continue
        all_fixed.extend(fixed)
        diffs[rel] = "".join(difflib.unified_diff(
            src.splitlines(keepends=True), new.splitlines(keepends=True),
            fromfile=f"a/{rel}", tofile=f"b/{rel}"))
        if not dry_run:
            p.write_text(new, encoding="utf-8")
    return sort_findings(all_fixed), diffs
