"""Baseline files: grandfathering pre-existing lint findings.

A baseline is a JSON file mapping finding keys (``path:rule:line``) to
their messages.  ``python -m repro lint`` subtracts baselined findings
from its report, so a rule can be introduced (or tightened) without
first fixing every historical violation — new violations still fail.
``--write-baseline`` regenerates the file from the current findings;
an entry that no longer matches anything is reported as stale so the
baseline only ever shrinks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding

__all__ = ["DEFAULT_BASELINE", "load_baseline", "write_baseline",
           "apply_baseline", "prune_baseline"]

#: Repo-relative location of the committed baseline.
DEFAULT_BASELINE = "tools/fplint_baseline.json"


def load_baseline(path: str | Path) -> dict[str, str]:
    """Key → message mapping; empty when the file does not exist."""
    p = Path(path)
    if not p.exists():
        return {}
    data = json.loads(p.read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError(f"{p}: baseline must be a JSON object")
    return {str(k): str(v) for k, v in data.items()}


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Write the findings as the new baseline; returns the entry count."""
    entries = {f.key: f.message for f in findings}
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(
        json.dumps(entries, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return len(entries)


def prune_baseline(path: str | Path,
                   findings: Iterable[Finding]) -> tuple[int, int]:
    """Drop baseline entries no current finding matches.

    Returns ``(entries kept, entries pruned)``.  The baseline-only-ever-
    shrinks contract, mechanised: a grandfathered finding that has since
    been fixed must not linger as a free pass for a future regression at
    the same location.  A missing or empty baseline file is left alone.
    """
    p = Path(path)
    known = load_baseline(p)
    if not known:
        return 0, 0
    live = {f.key for f in findings}
    kept = {k: v for k, v in known.items() if k in live}
    pruned = len(known) - len(kept)
    if pruned:
        p.write_text(json.dumps(kept, indent=2, sort_keys=True) + "\n",
                     encoding="utf-8")
    return len(kept), pruned


def apply_baseline(findings: Iterable[Finding],
                   baseline: dict[str, str]) -> \
        tuple[list[Finding], list[str]]:
    """(new findings, stale baseline keys no finding matched)."""
    matched: set[str] = set()
    fresh: list[Finding] = []
    for f in findings:
        if f.key in baseline:
            matched.add(f.key)
        else:
            fresh.append(f)
    stale = sorted(set(baseline) - matched)
    return fresh, stale
