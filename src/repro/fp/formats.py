"""Parametric IEEE-754-style binary floating point formats.

RLIBM-32 targets the 32-bit ``float`` type, but the whole pipeline is
generic in the target representation T.  This module implements T as a
parametric IEEE format ``FloatFormat(ebits, mbits)`` with:

* exact decoding of a bit pattern to a :class:`fractions.Fraction`,
* correctly rounded encoding (round-to-nearest, ties-to-even) from an
  exact rational, including subnormals and overflow to infinity,
* a monotonic *ordinal* numbering of the values, giving neighbour queries
  and exhaustive enumeration (used for the paper's "all inputs" loops on
  formats small enough to enumerate in Python),
* classification helpers.

Every value of every format with ``mbits <= 52`` and ``ebits <= 11`` is
exactly representable in the working type H = binary64, which the pipeline
relies on (the paper evaluates everything in double).

Instances provided: :data:`FLOAT32`, :data:`BFLOAT16`, :data:`FLOAT16`,
:data:`FLOAT8` (a tiny 1-4-3 format used to exercise the full generator
exhaustively in seconds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

from repro.fp.bits import bits_to_double, double_to_bits, fraction_to_double

__all__ = [
    "FloatFormat",
    "FLOAT64",
    "FLOAT32",
    "BFLOAT16",
    "FLOAT16",
    "FLOAT8",
    "round_fraction_to_int_rne",
]


#: Module switch for the ldexp/bit-pattern decode and binary64 encode
#: shortcuts; set False to re-time (or differentially test against) the
#: all-``Fraction`` baseline.  Both paths are bit-identical.
FAST_CONVERT = True


def round_fraction_to_int_rne(q: Fraction) -> int:
    """Round an exact rational to the nearest integer, ties to even."""
    floor = q.numerator // q.denominator
    rem = q - floor
    twice = 2 * rem
    if twice > 1:
        return floor + 1
    if twice < 1:
        return floor
    # exact tie: choose the even neighbour
    return floor + (floor & 1)


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-style binary format with a sign bit.

    Parameters
    ----------
    ebits:
        Number of exponent bits.
    mbits:
        Number of stored mantissa (fraction) bits.
    name:
        Human readable name used in reports.
    """

    ebits: int
    mbits: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.ebits < 2 or self.mbits < 1:
            raise ValueError("need ebits >= 2 and mbits >= 1")
        if self.ebits + self.mbits + 1 > 64:
            raise ValueError("formats wider than 64 bits are not supported")

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------
    @property
    def nbits(self) -> int:
        """Total width in bits including the sign."""
        return 1 + self.ebits + self.mbits

    @property
    def bias(self) -> int:
        """Exponent bias."""
        return (1 << (self.ebits - 1)) - 1

    @property
    def emax(self) -> int:
        """Largest unbiased exponent of a finite value."""
        return self.bias

    @property
    def emin(self) -> int:
        """Smallest unbiased exponent of a normal value."""
        return 1 - self.bias

    @property
    def exp_mask(self) -> int:
        return (1 << self.ebits) - 1

    @property
    def mant_mask(self) -> int:
        return (1 << self.mbits) - 1

    @property
    def sign_mask(self) -> int:
        return 1 << (self.ebits + self.mbits)

    @property
    def max_value(self) -> Fraction:
        """Largest finite value, exactly."""
        return Fraction(2) ** self.emax * (2 - Fraction(1, 1 << self.mbits))

    @property
    def min_subnormal(self) -> Fraction:
        """Smallest positive value, exactly."""
        return Fraction(2) ** (self.emin - self.mbits)

    @property
    def min_normal(self) -> Fraction:
        """Smallest positive normal value, exactly."""
        return Fraction(2) ** self.emin

    @property
    def inf_bits(self) -> int:
        """Bit pattern of +infinity."""
        return self.exp_mask << self.mbits

    @property
    def nan_bits(self) -> int:
        """Bit pattern of a canonical quiet NaN."""
        return self.inf_bits | (1 << (self.mbits - 1))

    @property
    def finite_count(self) -> int:
        """Number of finite bit patterns (both signs, both zeros)."""
        return 2 * (self.inf_bits)

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def is_nan(self, bits: int) -> bool:
        return (bits & ~self.sign_mask) > self.inf_bits

    def is_inf(self, bits: int) -> bool:
        return (bits & ~self.sign_mask) == self.inf_bits

    def is_finite(self, bits: int) -> bool:
        return (bits & ~self.sign_mask) < self.inf_bits

    def is_zero(self, bits: int) -> bool:
        return (bits & ~self.sign_mask) == 0

    def is_subnormal(self, bits: int) -> bool:
        mag = bits & ~self.sign_mask
        return 0 < mag < (1 << self.mbits)

    def sign_of(self, bits: int) -> int:
        """-1 for negative patterns (including -0), +1 otherwise."""
        return -1 if bits & self.sign_mask else 1

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def to_fraction(self, bits: int) -> Fraction:
        """Exact value of a finite bit pattern."""
        if not self.is_finite(bits):
            raise ValueError(f"pattern {bits:#x} is not finite in {self}")
        sign = -1 if bits & self.sign_mask else 1
        e = (bits >> self.mbits) & self.exp_mask
        m = bits & self.mant_mask
        if e == 0:
            val = Fraction(m, 1 << self.mbits) * Fraction(2) ** self.emin
        else:
            val = (1 + Fraction(m, 1 << self.mbits)) * Fraction(2) ** (e - self.bias)
        return sign * val

    def to_double(self, bits: int) -> float:
        """Value of a bit pattern as a double (exact for mbits <= 52).

        Infinities and NaN map to the corresponding double specials.
        """
        if self.is_nan(bits):
            return math.nan
        if self.is_inf(bits):
            return -math.inf if bits & self.sign_mask else math.inf
        if FAST_CONVERT and self.mbits <= 52 and self.ebits <= 11:
            # every finite value is exact in binary64 (module contract),
            # so decode by bit algebra / ldexp instead of Fractions
            if self.mbits == 52 and self.ebits == 11:
                if bits == 0x8000000000000000:
                    return 0.0  # -0 pattern decodes to +0.0, as before
                return bits_to_double(bits)
            m = bits & self.mant_mask
            e = (bits >> self.mbits) & self.exp_mask
            if e == 0:
                if m == 0:
                    return 0.0  # both zeros decode to +0.0, as before
                v = math.ldexp(m, self.emin - self.mbits)
            else:
                v = math.ldexp((1 << self.mbits) | m,
                               e - self.bias - self.mbits)
            return -v if bits & self.sign_mask else v
        return fraction_to_double(self.to_fraction(bits))

    # ------------------------------------------------------------------
    # Encode (correct rounding, RNE)
    # ------------------------------------------------------------------
    def from_fraction(self, q: Fraction) -> int:
        """Round an exact rational to this format; returns a bit pattern.

        Implements round-to-nearest, ties-to-even, with overflow to
        infinity and gradual underflow to subnormals / zero, i.e. the
        rounding function RN_T of the paper.
        """
        if q == 0:
            return 0
        if FAST_CONVERT and self.mbits == 52 and self.ebits == 11:
            # binary64 target: CPython's Fraction -> float conversion is
            # exactly RN_H (ties-to-even, overflow to inf), so the
            # pattern of float(q) is the generic algorithm's answer
            d = fraction_to_double(q)
            if math.isinf(d):
                return (self.sign_mask | self.inf_bits) if d < 0 \
                    else self.inf_bits
            return double_to_bits(d)
        sign_bits = self.sign_mask if q < 0 else 0
        a = -q if q < 0 else q

        # Unbiased exponent of a: e such that 2**e <= a < 2**(e+1).
        e = a.numerator.bit_length() - a.denominator.bit_length()
        if Fraction(2) ** e > a:
            e -= 1

        if e < self.emin:
            # Subnormal candidate: fixed scale 2**(emin - mbits).
            scaled = a / (Fraction(2) ** (self.emin - self.mbits))
            n = round_fraction_to_int_rne(scaled)
            if n == 0:
                return sign_bits  # underflow to (signed) zero
            if n >= (1 << self.mbits):
                # rounded up into the smallest normal
                return sign_bits | (1 << self.mbits)
            return sign_bits | n

        # Normal candidate: significand in [2**mbits, 2**(mbits+1)).
        scaled = a / (Fraction(2) ** (e - self.mbits))
        n = round_fraction_to_int_rne(scaled)
        if n == (1 << (self.mbits + 1)):
            n >>= 1
            e += 1
        if e > self.emax:
            return sign_bits | self.inf_bits
        biased = e + self.bias
        return sign_bits | (biased << self.mbits) | (n & self.mant_mask)

    def from_double(self, x: float) -> int:
        """Round a double to this format (bit pattern)."""
        if math.isnan(x):
            return self.nan_bits
        if math.isinf(x):
            return (self.sign_mask if x < 0 else 0) | self.inf_bits
        if x == 0.0:
            return self.sign_mask if math.copysign(1.0, x) < 0 else 0
        return self.from_fraction(Fraction(x))

    def round_double(self, x: float) -> float:
        """Round a double to this format and return it as a double."""
        return self.to_double(self.from_double(x))

    # ------------------------------------------------------------------
    # Ordinals, neighbours, enumeration
    # ------------------------------------------------------------------
    def to_ordinal(self, bits: int) -> int:
        """Monotonic integer ordering of non-NaN patterns (zeros -> 0)."""
        if self.is_nan(bits):
            raise ValueError("NaN has no ordinal")
        mag = bits & ~self.sign_mask
        return -mag if bits & self.sign_mask else mag

    def from_ordinal(self, n: int) -> int:
        """Inverse of :meth:`to_ordinal`."""
        if n < 0:
            return self.sign_mask | (-n)
        return n

    def next_up(self, bits: int) -> int:
        """Smallest value strictly greater than ``bits`` (pattern)."""
        n = self.to_ordinal(bits)
        if n >= self.inf_bits:
            return self.from_ordinal(self.inf_bits)
        return self.from_ordinal(n + 1)

    def next_down(self, bits: int) -> int:
        """Largest value strictly less than ``bits`` (pattern)."""
        n = self.to_ordinal(bits)
        if n <= -self.inf_bits:
            return self.from_ordinal(-self.inf_bits)
        return self.from_ordinal(n - 1)

    def enumerate_finite(self, include_negative: bool = True) -> Iterator[int]:
        """Yield every finite bit pattern (value order, ascending)."""
        start = -(self.inf_bits - 1) if include_negative else 0
        for n in range(start, self.inf_bits):
            yield self.from_ordinal(n)

    def enumerate_range(self, lo: float, hi: float) -> Iterator[int]:
        """Yield finite patterns whose value lies in [lo, hi] (ascending)."""
        lo_bits = self.from_fraction(Fraction(lo)) if lo != 0 else 0
        # make sure we start at a value >= lo
        if self.to_double(lo_bits) < lo:
            lo_bits = self.next_up(lo_bits)
        n = self.to_ordinal(lo_bits)
        while n < self.inf_bits:
            bits = self.from_ordinal(n)
            if self.to_double(bits) > hi:
                return
            yield bits
            n += 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"binary(e={self.ebits},m={self.mbits})"


#: IEEE-754 binary64 — the working representation H itself, as a format.
FLOAT64 = FloatFormat(11, 52, "float64")
#: IEEE-754 binary32, the paper's "float" target.
FLOAT32 = FloatFormat(8, 23, "float32")
#: bfloat16 (used by the original 16-bit RLIBM work).
BFLOAT16 = FloatFormat(8, 7, "bfloat16")
#: IEEE-754 binary16.
FLOAT16 = FloatFormat(5, 10, "float16")
#: Tiny 1-4-3 test format; 240 finite values, exhaustively checkable.
FLOAT8 = FloatFormat(4, 3, "float8")
