"""Bit-level manipulation of IEEE-754 binary64 ("double") values.

The RLIBM-32 pipeline performs all internal computation in the working
precision H = binary64, which in CPython is exactly the built-in ``float``.
This module provides the bit-pattern utilities the paper relies on:

* conversions between a double and its 64-bit pattern,
* a *monotonic ordinal* encoding so that walking doubles in value order is
  integer arithmetic (used by Algorithm 2's simultaneous interval widening
  and by the bit-pattern domain splitting of Algorithm 3),
* neighbour queries (``next_double`` / ``prev_double``, the paper's
  ``GetNext`` / ``GetPrev``),
* ulp and exact midpoint helpers used when computing rounding intervals.

Everything here is exact: no operation introduces rounding error.
"""

from __future__ import annotations

import math
import struct
from fractions import Fraction

__all__ = [
    "DBL_MAX",
    "DBL_MIN_SUBNORMAL",
    "double_to_bits",
    "bits_to_double",
    "double_to_ordinal",
    "ordinal_to_double",
    "next_double",
    "prev_double",
    "doubles_between",
    "advance_double",
    "ulp",
    "double_to_fraction",
    "fraction_to_double",
    "is_finite_double",
    "common_leading_bits",
    "midpoint_is_exact",
]

#: Largest finite double.
DBL_MAX = struct.unpack("<d", struct.pack("<Q", 0x7FEFFFFFFFFFFFFF))[0]
#: Smallest positive (subnormal) double, 2**-1074.
DBL_MIN_SUBNORMAL = struct.unpack("<d", struct.pack("<Q", 0x0000000000000001))[0]

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")

_SIGN_BIT = 1 << 63


def double_to_bits(x: float) -> int:
    """Return the 64-bit IEEE-754 pattern of ``x`` as an unsigned int."""
    return _PACK_Q.unpack(_PACK_D.pack(x))[0]


def bits_to_double(bits: int) -> float:
    """Return the double whose IEEE-754 pattern is ``bits`` (unsigned)."""
    if not 0 <= bits <= 0xFFFFFFFFFFFFFFFF:
        raise ValueError(f"bit pattern out of range: {bits:#x}")
    return _PACK_D.unpack(_PACK_Q.pack(bits))[0]


def double_to_ordinal(x: float) -> int:
    """Map a double to an integer that is monotonic in the value order.

    Negative doubles map to negative ordinals; -0.0 and +0.0 map to 0
    and ... no: -0.0 maps to 0 and +0.0 maps to 0 as well would lose
    information, so -0.0 maps to -0's own slot: we use the standard
    two's-complement folding where ordinal(-0.0) == 0 - 2**63 is avoided
    by treating the sign bit specially:

    * ``x >= +0.0`` -> its bit pattern (0 .. 2**63-1),
    * ``x <  -0.0`` -> ``-(pattern without sign bit)``.

    ``ordinal(-0.0) == 0 == ordinal(+0.0)``; both zeros round-trip to +0.0.
    NaNs are rejected.
    """
    if math.isnan(x):
        raise ValueError("NaN has no ordinal")
    bits = double_to_bits(x)
    if bits & _SIGN_BIT:
        return -(bits ^ _SIGN_BIT)
    return bits


def ordinal_to_double(n: int) -> float:
    """Inverse of :func:`double_to_ordinal` (zeros map to +0.0)."""
    if n < 0:
        return bits_to_double((-n) | _SIGN_BIT)
    return bits_to_double(n)


_ORD_INF = double_to_ordinal(math.inf)


def next_double(x: float) -> float:
    """The smallest double strictly greater than ``x`` (paper's GetNext)."""
    if math.isnan(x):
        return x
    if x == math.inf:
        return x
    return ordinal_to_double(double_to_ordinal(x) + 1)


def prev_double(x: float) -> float:
    """The largest double strictly less than ``x`` (paper's GetPrev)."""
    if math.isnan(x):
        return x
    if x == -math.inf:
        return x
    return ordinal_to_double(double_to_ordinal(x) - 1)


def advance_double(x: float, steps: int) -> float:
    """Move ``steps`` representable doubles away from ``x`` (either sign).

    Saturates at +/-inf rather than wrapping.
    """
    n = double_to_ordinal(x) + steps
    if n > _ORD_INF:
        n = _ORD_INF
    elif n < -_ORD_INF:
        n = -_ORD_INF
    return ordinal_to_double(n)


def doubles_between(lo: float, hi: float) -> int:
    """Number of representable-double steps from ``lo`` to ``hi``."""
    return double_to_ordinal(hi) - double_to_ordinal(lo)


def ulp(x: float) -> float:
    """Unit in the last place of ``x`` (gap to the next double away from 0)."""
    return math.ulp(x)


def is_finite_double(x: float) -> bool:
    """True for finite doubles (not NaN, not +/-inf)."""
    return math.isfinite(x)


def double_to_fraction(x: float) -> Fraction:
    """Exact rational value of a finite double."""
    if not math.isfinite(x):
        raise ValueError(f"not finite: {x!r}")
    return Fraction(x)


def fraction_to_double(q: Fraction) -> float:
    """Round an exact rational to the nearest double (ties to even).

    CPython's ``Fraction.__float__`` performs correctly rounded conversion
    (round-to-nearest, ties-to-even) including graceful overflow to inf,
    so we delegate to it but keep this named entry point so call sites
    document intent.
    """
    try:
        return float(q)
    except OverflowError:
        return math.inf if q > 0 else -math.inf


def common_leading_bits(a: float, b: float) -> int:
    """Number of identical leading bits in the 64-bit patterns of a and b.

    Used by SplitDomain (Algorithm 3): the sub-domain index of a reduced
    input is read from the first bits *after* the common prefix of the
    smallest and largest reduced inputs.
    """
    xa = double_to_bits(a)
    xb = double_to_bits(b)
    diff = xa ^ xb
    if diff == 0:
        return 64
    return 64 - diff.bit_length()


def midpoint_is_exact(a: float, b: float) -> bool:
    """True if (a+b)/2 is exactly representable as a double."""
    mid2 = Fraction(a) + Fraction(b)
    mid = mid2 / 2
    return Fraction(fraction_to_double(mid)) == mid
