"""Rounding intervals (Algorithm 1, ``RoundingInterval``).

Given a correctly rounded result ``y`` in the target representation T, the
*rounding interval* is the set of values in the working representation
H = binary64 that round to ``y`` under round-to-nearest-ties-to-even.  If a
polynomial approximation lands anywhere inside this interval, the final
rounding step produces the correct answer — this is the central object of
the RLIBM approach.

The paper computes the interval by searching for the smallest/largest
``v in H`` with ``RN_T(v) = y``; it notes the search "can be efficiently
implemented ... by leveraging the properties of T and H".  We do the
latter: for IEEE-style targets whose values (and neighbour midpoints) are
exactly representable in H, the interval boundaries are the midpoints
between ``y`` and its T-neighbours, inclusive exactly when ``y``'s mantissa
is even (ties go to even).  All arithmetic is exact.

Two implementations produce the boundaries:

* the original exact path decodes neighbours to ``Fraction`` and divides
  (``_rounding_interval_exact``), raising when a midpoint is not
  representable in H;
* the fast path computes the midpoint in double arithmetic and *proves*
  it exact with the 2Sum error-free transformation — the midpoint is
  accepted only when the addition provably lost nothing and halving is
  provably exact.  Whenever the proof fails, the exact path decides, so
  the two are bit-identical by construction (``FAST_INTERVALS`` flips
  the fast path off for baseline timing and differential tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.fp.bits import fraction_to_double, next_double, prev_double
from repro.fp.formats import FloatFormat

__all__ = ["RoundingInterval", "rounding_interval", "overflow_threshold"]

#: Module switch for the proven-exact double midpoint path; set False to
#: re-time (or differentially test against) the pure-Fraction baseline.
FAST_INTERVALS = True


@dataclass(frozen=True)
class RoundingInterval:
    """A closed interval ``[lo, hi]`` of doubles, with the target value.

    ``lo`` and ``hi`` are doubles; every double ``v`` with
    ``lo <= v <= hi`` rounds to the target value in T.
    """

    lo: float
    hi: float

    def __contains__(self, v: float) -> bool:
        return self.lo <= v <= self.hi

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def intersect(self, other: "RoundingInterval") -> "RoundingInterval | None":
        """Common sub-interval, or None if the intervals are disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return RoundingInterval(lo, hi)


_THRESHOLD_CACHE: dict[tuple[int, int], float] = {}


def overflow_threshold(fmt: FloatFormat) -> float:
    """Smallest positive double that rounds to +infinity in ``fmt``.

    This is the midpoint between the largest finite value and the next
    power of two; the tie rounds away from the (odd, all-ones mantissa)
    maximum, i.e. overflows.
    """
    key = (fmt.ebits, fmt.mbits)
    d = _THRESHOLD_CACHE.get(key)
    if d is not None:
        return d
    b = Fraction(2) ** fmt.emax * (2 - Fraction(1, 1 << (fmt.mbits + 1)))
    d = fraction_to_double(b)
    if Fraction(d) != b:  # pragma: no cover - holds for all supported fmts
        raise ValueError(f"overflow threshold of {fmt} not exact in double")
    _THRESHOLD_CACHE[key] = d
    return d


def _exact_midpoint(a: Fraction, b: Fraction) -> float:
    mid = (a + b) / 2
    d = fraction_to_double(mid)
    if Fraction(d) != mid:
        raise ValueError("midpoint not exactly representable in double; "
                         "target format too wide for H = binary64")
    return d


def _proven_midpoint(a: float, b: float) -> float | None:
    """``(a+b)/2`` as a double, provably exact — else None.

    2Sum (Knuth): for ``s = a + b`` the quantity
    ``err = (a - (s - t)) + (b - t)`` with ``t = s - a`` is the *exact*
    rounding error of the addition, so ``err == 0`` proves ``s`` exact
    (an overflowing ``s`` makes ``err`` NaN, failing the proof).  The
    halving ``m = 0.5 * s`` is exact iff doubling it restores ``s``
    (doubling a double is exact below overflow).
    """
    s = a + b
    t = s - a
    err = (a - (s - t)) + (b - t)
    if err != 0.0:
        return None
    m = 0.5 * s
    if m + m != s:
        return None
    return m


def rounding_interval(fmt: FloatFormat, y_bits: int) -> RoundingInterval:
    """Closed interval of doubles rounding to the value of ``y_bits``.

    Handles zeros (the two signed zeros share the symmetric interval
    around 0), subnormal/normal boundaries, the largest finite value and
    infinities.  NaN has no rounding interval.
    """
    if (not FAST_INTERVALS or fmt.mbits > 52 or fmt.ebits > 11
            or fmt.is_inf(y_bits) or fmt.is_zero(y_bits)
            or fmt.is_nan(y_bits)):
        return _rounding_interval_exact(fmt, y_bits)

    y = fmt.to_double(y_bits)  # exact: mbits <= 52, ebits <= 11
    even = (y_bits & 1) == 0

    up_bits = fmt.next_up(y_bits)
    if fmt.is_inf(up_bits):
        hi = prev_double(overflow_threshold(fmt))  # the tie overflows
    else:
        m = _proven_midpoint(y, fmt.to_double(up_bits))
        if m is None:
            return _rounding_interval_exact(fmt, y_bits)
        hi = m if even else prev_double(m)

    dn_bits = fmt.next_down(y_bits)
    if fmt.is_inf(dn_bits):
        lo = next_double(-overflow_threshold(fmt))
    else:
        m = _proven_midpoint(fmt.to_double(dn_bits), y)
        if m is None:
            return _rounding_interval_exact(fmt, y_bits)
        lo = m if even else next_double(m)

    return RoundingInterval(lo, hi)


def _rounding_interval_exact(fmt: FloatFormat, y_bits: int) -> RoundingInterval:
    """The original all-``Fraction`` boundary computation."""
    if fmt.is_nan(y_bits):
        raise ValueError("NaN has no rounding interval")

    if fmt.is_inf(y_bits):
        thr = overflow_threshold(fmt)
        if fmt.sign_of(y_bits) > 0:
            return RoundingInterval(thr, math.inf)
        return RoundingInterval(-math.inf, -thr)

    if fmt.is_zero(y_bits):
        # Ties at +/- (min_subnormal / 2) round to the (even) zero.
        half = fraction_to_double(fmt.min_subnormal / 2)
        return RoundingInterval(-half, half)

    y_val = fmt.to_fraction(y_bits)
    even = (y_bits & 1) == 0

    # Upper boundary: midpoint with the next value up (or the overflow
    # threshold when the neighbour is +infinity).
    up_bits = fmt.next_up(y_bits)
    if fmt.is_inf(up_bits):
        hi_mid = overflow_threshold(fmt)
        hi = prev_double(hi_mid)  # the tie itself overflows
    else:
        hi_mid = _exact_midpoint(y_val, fmt.to_fraction(up_bits))
        hi = hi_mid if even else prev_double(hi_mid)

    # Lower boundary: midpoint with the next value down (or the negative
    # overflow threshold when the neighbour is -infinity).
    dn_bits = fmt.next_down(y_bits)
    if fmt.is_inf(dn_bits):
        lo_mid = -overflow_threshold(fmt)
        lo = next_double(lo_mid)
    else:
        lo_mid = _exact_midpoint(fmt.to_fraction(dn_bits), y_val)
        lo = lo_mid if even else next_double(lo_mid)

    return RoundingInterval(lo, hi)
