"""Floating point substrate: bit tricks, parametric formats, rounding intervals."""

from __future__ import annotations

from repro.fp.bits import (
    advance_double,
    bits_to_double,
    common_leading_bits,
    double_to_bits,
    double_to_ordinal,
    doubles_between,
    next_double,
    ordinal_to_double,
    prev_double,
    ulp,
)
from repro.fp.float32 import bits_to_f32, f32_round, f32_to_bits
from repro.fp.formats import BFLOAT16, FLOAT8, FLOAT16, FLOAT32, FloatFormat
from repro.fp.rounding import RoundingInterval, overflow_threshold, rounding_interval

__all__ = [
    "advance_double", "bits_to_double", "common_leading_bits", "double_to_bits",
    "double_to_ordinal", "doubles_between", "next_double", "ordinal_to_double",
    "prev_double", "ulp", "bits_to_f32", "f32_round", "f32_to_bits",
    "BFLOAT16", "FLOAT8", "FLOAT16", "FLOAT32", "FloatFormat",
    "RoundingInterval", "overflow_threshold", "rounding_interval",
]
