"""Fast binary32 helpers used on the hot path of the generated library.

The generic :class:`repro.fp.formats.FloatFormat` machinery is exact but
works through :class:`fractions.Fraction`; the runtime math library needs
the double->float32 rounding step and bit access to be cheap, so this
module provides ``struct``-based versions specialised to binary32.  The
semantics are identical to ``FLOAT32.round_double`` / ``to_double`` /
``from_double`` (tests assert the agreement exhaustively on samples).
"""

from __future__ import annotations

import math
import struct

__all__ = [
    "FLT_MAX",
    "FLT_MIN_SUBNORMAL",
    "FLT_OVERFLOW_THRESHOLD",
    "f32_round",
    "f32_to_bits",
    "bits_to_f32",
    "f32_from_bits_value",
    "f32_next_up",
    "f32_next_down",
]

_PACK_F = struct.Struct("<f")
_PACK_I = struct.Struct("<I")

#: Largest finite float32, as a double.
FLT_MAX = 3.4028234663852886e38
#: Smallest positive float32 subnormal (2**-149), as a double.
FLT_MIN_SUBNORMAL = 1.401298464324817e-45
#: Smallest positive double that rounds to +inf in float32:
#: 2**127 * (2 - 2**-24).
FLT_OVERFLOW_THRESHOLD = 3.4028235677973366e38


def f32_round(x: float) -> float:
    """Round a double to binary32 (RNE) and return it as a double.

    This is the final rounding step RN_T of every generated function.
    """
    if x != x:  # NaN
        return x
    if x > FLT_MAX:
        return math.inf if x >= FLT_OVERFLOW_THRESHOLD else FLT_MAX
    if x < -FLT_MAX:
        return -math.inf if x <= -FLT_OVERFLOW_THRESHOLD else -FLT_MAX
    # C double->float conversion rounds to nearest-even per IEEE-754.
    return _PACK_F.unpack(_PACK_F.pack(x))[0]


def f32_to_bits(x: float) -> int:
    """Bit pattern of a double after rounding it to binary32."""
    if x != x:
        return 0x7FC00000
    if x > FLT_MAX:
        return 0x7F800000 if x >= FLT_OVERFLOW_THRESHOLD else 0x7F7FFFFF
    if x < -FLT_MAX:
        return 0xFF800000 if x <= -FLT_OVERFLOW_THRESHOLD else 0xFF7FFFFF
    return _PACK_I.unpack(_PACK_F.pack(x))[0]


def bits_to_f32(bits: int) -> float:
    """Double value of a binary32 bit pattern (exact; NaN for NaN)."""
    return _PACK_F.unpack(_PACK_I.pack(bits & 0xFFFFFFFF))[0]


def f32_from_bits_value(bits: int) -> float:
    """Alias of :func:`bits_to_f32`, named for call-site clarity."""
    return bits_to_f32(bits)


def f32_next_up(x: float) -> float:
    """Smallest float32 value strictly greater than float32(x)."""
    bits = f32_to_bits(x)
    if bits == 0x7F800000:  # +inf
        return math.inf
    if bits & 0x80000000:
        # nextUp(-0) is the smallest positive subnormal (IEEE 754 nextUp)
        bits = 1 if bits == 0x80000000 else bits - 1
    else:
        bits += 1
    return bits_to_f32(bits)


def f32_next_down(x: float) -> float:
    """Largest float32 value strictly less than float32(x)."""
    bits = f32_to_bits(x)
    if bits == 0xFF800000:  # -inf
        return -math.inf
    if bits & 0x80000000:
        bits += 1
    else:
        bits = 0x80000001 if bits == 0 else bits - 1
    return bits_to_f32(bits)
