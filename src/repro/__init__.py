"""RLIBM-32 reproduction: correctly rounded 32-bit math libraries.

Public entry points:

* ``repro.libm.float32`` / ``repro.libm.posit32`` — the shipped correctly
  rounded libraries (value and bit-pattern APIs);
* ``repro.core`` — the generation pipeline (rounding intervals, reduced
  intervals, piecewise CEG polynomial generation, validation);
* ``repro.fp`` / ``repro.posit`` — the number-format substrates;
* ``repro.oracle`` — the correctly rounded oracle;
* ``repro.lp`` — exact rational and HiGHS-backed LP solving;
* ``repro.rangereduction`` — per-function range reductions;
* ``repro.baselines`` / ``repro.eval`` — comparison libraries and the
  table/figure harness.

See README.md for a guided tour and DESIGN.md for the paper mapping.
"""

from __future__ import annotations

from repro.core.generator import FunctionSpec, GeneratedFunction, generate
from repro.core.validate import generate_validated, validate
from repro.fp.formats import BFLOAT16, FLOAT8, FLOAT16, FLOAT32, FLOAT64, FloatFormat
from repro.posit.format import POSIT8, POSIT16, POSIT32, PositFormat
from repro.rangereduction import reduction_for

__version__ = "1.0.0"

__all__ = [
    "FunctionSpec", "GeneratedFunction", "generate", "generate_validated",
    "validate", "BFLOAT16", "FLOAT8", "FLOAT16", "FLOAT32", "FLOAT64",
    "FloatFormat", "POSIT8", "POSIT16", "POSIT32", "PositFormat",
    "reduction_for", "__version__",
]
