"""Posit arithmetic substrate (posit8/16/32 codecs and rounding intervals)."""

from __future__ import annotations

from repro.posit.format import POSIT8, POSIT16, POSIT32, PositFormat, posit_rounding_interval

__all__ = ["POSIT8", "POSIT16", "POSIT32", "PositFormat", "posit_rounding_interval"]
