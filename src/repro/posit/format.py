"""Posit arithmetic substrate: a from-scratch posit(n, es) codec.

The paper's second target representation is posit32 (n = 32, es = 2), a
tapered-precision type with no overflow/underflow: magnitudes beyond
``maxpos`` saturate to ``maxpos`` and non-zero magnitudes below ``minpos``
round to ``minpos`` (never to zero).  The paper notes this saturating
behaviour is exactly why repurposed double libraries produce millions of
wrong posit results for exponential/hyperbolic functions (Table 2).

This module implements:

* exact decoding of a posit bit pattern (regime / exponent / fraction) to
  a :class:`fractions.Fraction`,
* correctly rounded encoding from an exact rational with round-to-nearest,
  ties to the pattern with even last bit, and posit saturation semantics,
* monotone ordinal ordering (posit patterns order like two's-complement
  integers), neighbours, enumeration,
* the rounding-interval computation for posit targets (Algorithm 1 for
  T = posit).

Every posit32 value is exactly representable in binary64 (as the paper
relies on), which tests assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator

from repro.fp.bits import DBL_MIN_SUBNORMAL, fraction_to_double, next_double, prev_double
from repro.fp.rounding import RoundingInterval

__all__ = ["PositFormat", "POSIT8", "POSIT16", "POSIT32", "posit_rounding_interval"]


@dataclass(frozen=True)
class PositFormat:
    """A posit format with ``nbits`` total bits and ``es`` exponent bits."""

    nbits: int
    es: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.nbits < 3:
            raise ValueError("posits need at least 3 bits")
        if self.es < 0:
            raise ValueError("es must be non-negative")
        # float views of the extremes for the hot encode path (both are
        # powers of two, hence exact as doubles for nbits <= 32)
        object.__setattr__(self, "_maxpos_f", float(self.maxpos))
        object.__setattr__(self, "_minpos_f", float(self.minpos))

    # ------------------------------------------------------------------
    # Derived parameters
    # ------------------------------------------------------------------
    @property
    def useed(self) -> int:
        """Regime scale factor 2**(2**es)."""
        return 1 << (1 << self.es)

    @property
    def nar_bits(self) -> int:
        """Bit pattern of NaR (not-a-real)."""
        return 1 << (self.nbits - 1)

    @property
    def sign_mask(self) -> int:
        return 1 << (self.nbits - 1)

    @property
    def mask(self) -> int:
        return (1 << self.nbits) - 1

    @property
    def maxpos_bits(self) -> int:
        return (1 << (self.nbits - 1)) - 1

    @property
    def minpos_bits(self) -> int:
        return 1

    @property
    def maxpos(self) -> Fraction:
        """Largest representable value: useed**(nbits-2)."""
        return Fraction(self.useed) ** (self.nbits - 2)

    @property
    def minpos(self) -> Fraction:
        """Smallest positive representable value."""
        return 1 / self.maxpos

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def is_nar(self, bits: int) -> bool:
        return (bits & self.mask) == self.nar_bits

    def is_zero(self, bits: int) -> bool:
        return (bits & self.mask) == 0

    def sign_of(self, bits: int) -> int:
        return -1 if bits & self.sign_mask else 1

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def _decode_positive(self, body: int) -> Fraction:
        """Value of a positive posit given its pattern (sign bit clear)."""
        width = self.nbits - 1
        first = (body >> (width - 1)) & 1
        # length of the run of bits equal to `first`
        run = 0
        for i in range(width - 1, -1, -1):
            if ((body >> i) & 1) == first:
                run += 1
            else:
                break
        k = run - 1 if first == 1 else -run
        # bits after the regime run and its terminating bit
        rem_width = width - run - 1
        if rem_width < 0:
            rem_width = 0
        rem = body & ((1 << rem_width) - 1)
        # exponent: up to `es` bits, implicitly zero-padded on the right
        if rem_width >= self.es:
            e = rem >> (rem_width - self.es)
            frac_width = rem_width - self.es
            frac = rem & ((1 << frac_width) - 1)
        else:
            e = rem << (self.es - rem_width)
            frac_width = 0
            frac = 0
        scale = k * (1 << self.es) + e
        sig = 1 + (Fraction(frac, 1 << frac_width) if frac_width else 0)
        return sig * Fraction(2) ** scale

    def to_fraction(self, bits: int) -> Fraction:
        """Exact value of a non-NaR pattern."""
        bits &= self.mask
        if bits == 0:
            return Fraction(0)
        if bits == self.nar_bits:
            raise ValueError("NaR has no rational value")
        if bits & self.sign_mask:
            return -self._decode_positive((-bits) & self.mask)
        return self._decode_positive(bits)

    def to_double(self, bits: int) -> float:
        """Value of a pattern as a double (NaR maps to NaN)."""
        bits &= self.mask
        if bits == self.nar_bits:
            return math.nan
        return fraction_to_double(self.to_fraction(bits))

    # ------------------------------------------------------------------
    # Encode (correct rounding with posit saturation)
    # ------------------------------------------------------------------
    def _encode_positive(self, q: Fraction) -> int:
        """Round a positive rational to a positive posit pattern.

        Posit rounding is defined on the *encoding*: write the value as an
        unbounded bit string (regime || exponent || fraction) and round it
        to nbits with round-to-nearest, ties-to-even.  Within one
        regime/exponent block this equals value-nearest rounding, but
        where a long regime truncates the exponent bits the boundaries
        become geometric — e.g. the posit16 cut between 2**26 and 2**28
        sits at 2**27, not at their arithmetic mean.
        """
        if q >= self.maxpos:
            return self.maxpos_bits
        if q <= self.minpos:
            return self.minpos_bits
        # s = floor(log2(q)); m = q / 2**s in [1, 2)
        s = q.numerator.bit_length() - q.denominator.bit_length()
        if Fraction(2) ** s > q:
            s -= 1
        m = q / Fraction(2) ** s
        k, e = divmod(s, 1 << self.es)
        if k >= 0:
            regime_val = (1 << (k + 2)) - 2
            regime_width = k + 2
        else:
            regime_val = 1
            regime_width = 1 - k
        avail = self.nbits - 1
        d = avail - regime_width  # bits left for exponent+fraction
        # The es+fraction tail encodes w = e + (m-1) in [0, 2**es) with
        # binary weight; keep its top d bits and round the remainder.
        w = e + (m - 1)
        scaled = w * Fraction(2) ** (d - self.es)
        c = scaled.numerator // scaled.denominator
        rem = scaled - c
        head = (regime_val << d) | c
        half = Fraction(1, 2)
        if rem > half or (rem == half and head & 1):
            head += 1
        if head >= (1 << avail):
            return self.maxpos_bits
        return head

    def from_fraction(self, q: Fraction) -> int:
        """Round an exact rational to this posit format (bit pattern)."""
        if q == 0:
            return 0
        if q > 0:
            return self._encode_positive(q)
        return (-self._encode_positive(-q)) & self.mask

    def _encode_positive_double(self, x: float) -> int:
        """Fast positive-double encoder: build the unbounded posit bit
        string (regime || exponent || 52 fraction bits) and round it to
        nbits with round-to-nearest, ties-to-even.

        For posits, adjacent patterns differ by exactly the fraction-LSB
        weight of the lower pattern's block, so RNE on the bit string *is*
        RNE on the value (ties to the even pattern); a carry out of the
        fraction correctly walks into the exponent/regime.  Tests check
        agreement with the exact rational encoder exhaustively for
        posit8/16 and on random posit32 patterns.
        """
        m, s2 = math.frexp(x)
        s = s2 - 1
        sig = int(m * 9007199254740992.0)  # m * 2**53, exact
        frac52 = sig - (1 << 52)
        k, e = divmod(s, 1 << self.es)
        if k >= 0:
            regime_val = (1 << (k + 2)) - 2      # k+1 ones then a zero
            regime_width = k + 2
        else:
            regime_val = 1                       # -k zeros then a one
            regime_width = 1 - k
        full = (regime_val << (self.es + 52)) | (e << 52) | frac52
        width = regime_width + self.es + 52
        avail = self.nbits - 1
        if width <= avail:
            return full << (avail - width)
        shift = width - avail
        head = full >> shift
        rem = full & ((1 << shift) - 1)
        half = 1 << (shift - 1)
        if rem > half or (rem == half and head & 1):
            head += 1
        if head >= (1 << avail):
            return self.maxpos_bits
        if head == 0:  # pragma: no cover - prevented by the minpos clamp
            return self.minpos_bits
        return head

    def from_double(self, x: float) -> int:
        """Round a double to this posit format (NaN/inf map to NaR)."""
        if math.isnan(x) or math.isinf(x):
            return self.nar_bits
        if x == 0.0:
            return 0
        a = abs(x)
        if a >= self._maxpos_f:
            bits = self.maxpos_bits
        elif a <= self._minpos_f:
            bits = self.minpos_bits
        else:
            bits = self._encode_positive_double(a)
        return bits if x > 0 else (-bits) & self.mask

    def round_double(self, x: float) -> float:
        """Round a double through this posit format, back to a double."""
        return self.to_double(self.from_double(x))

    # ------------------------------------------------------------------
    # Ordinals, neighbours, enumeration
    # ------------------------------------------------------------------
    def to_ordinal(self, bits: int) -> int:
        """Signed two's-complement view; monotone in value (NaR rejected)."""
        bits &= self.mask
        if bits == self.nar_bits:
            raise ValueError("NaR has no ordinal")
        if bits & self.sign_mask:
            return bits - (1 << self.nbits)
        return bits

    def from_ordinal(self, n: int) -> int:
        return n & self.mask

    def next_up(self, bits: int) -> int:
        """Next larger posit value (saturates at maxpos)."""
        n = self.to_ordinal(bits)
        if n >= self.maxpos_bits:
            return self.maxpos_bits
        return self.from_ordinal(n + 1)

    def next_down(self, bits: int) -> int:
        """Next smaller posit value (saturates at -maxpos)."""
        n = self.to_ordinal(bits)
        if n <= -(self.maxpos_bits):
            return self.from_ordinal(-self.maxpos_bits)
        return self.from_ordinal(n - 1)

    def enumerate_all(self, include_negative: bool = True) -> Iterator[int]:
        """Yield every non-NaR pattern in ascending value order."""
        start = -self.maxpos_bits if include_negative else 0
        for n in range(start, self.maxpos_bits + 1):
            yield self.from_ordinal(n)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name or f"posit{self.nbits}(es={self.es})"


def _tie_value(fmt: PositFormat, below_bits: int) -> float:
    """Exact rounding boundary between pattern ``below`` and its successor.

    Appending a 1-bit to a posit pattern yields the (nbits+1)-bit posit
    that encodes exactly the rounding tie between the pattern and the
    next one — this is where the bit-string RNE flips.  In ordinal terms:
    the extended format's ordinal 2*ord + 1.
    """
    ext = PositFormat(fmt.nbits + 1, fmt.es)
    mid = ext.to_fraction(ext.from_ordinal(2 * fmt.to_ordinal(below_bits) + 1))
    d = fraction_to_double(mid)
    if Fraction(d) != mid:
        raise ValueError("posit tie value not exactly representable in double")
    return d


def posit_rounding_interval(fmt: PositFormat, y_bits: int) -> RoundingInterval:
    """Closed double interval rounding to posit value ``y_bits``.

    Boundaries are the bit-string rounding ties (see :meth:`PositFormat.
    _encode_positive`); the tie itself belongs to the pattern with even
    last bit.  Posit semantics differ from IEEE at the edges: only an
    exact 0 rounds to 0 (so its interval is the single point 0), every
    tiny positive double rounds to minpos, and everything above the top
    tie — including +inf as an "overflowed double" — saturates to maxpos.
    """
    y_bits &= fmt.mask
    if fmt.is_nar(y_bits):
        raise ValueError("NaR has no rounding interval")
    if fmt.is_zero(y_bits):
        return RoundingInterval(0.0, 0.0)

    even = (y_bits & 1) == 0

    up_bits = fmt.next_up(y_bits)
    if up_bits == y_bits:  # y is maxpos: saturation above
        hi = math.inf
    elif fmt.is_zero(up_bits):  # y is the largest negative value (-minpos)
        hi = -DBL_MIN_SUBNORMAL
    else:
        mid = _tie_value(fmt, y_bits)
        hi = mid if even else prev_double(mid)

    dn_bits = fmt.next_down(y_bits)
    if dn_bits == y_bits:  # y is -maxpos: saturation below
        lo = -math.inf
    elif fmt.is_zero(dn_bits):  # y is minpos
        lo = DBL_MIN_SUBNORMAL
    else:
        mid = _tie_value(fmt, dn_bits)
        lo = mid if even else next_double(mid)

    return RoundingInterval(lo, hi)


#: The paper's posit32 target (es = 2).
POSIT32 = PositFormat(32, 2, "posit32")
#: posit16 with es = 1 (as used by the 16-bit RLIBM predecessors).
POSIT16 = PositFormat(16, 1, "posit16")
#: posit8 with es = 0; tiny, exhaustively checkable in milliseconds.
POSIT8 = PositFormat(8, 0, "posit8")
