"""The public entry point of the reproduction.

Everything a user of the generated libraries needs is reachable from
this one module::

    from repro import api

    exp = api.load("exp", target="float32")
    exp.evaluate(1.5)                     # scalar, correctly rounded
    exp.evaluate_batch(xs)                # numpy float64 array in/out
    api.functions("posit32")              # what is available
    api.targets()                         # known target formats

:func:`load` returns a :class:`Library` handle wrapping the runnable
:class:`~repro.core.generator.GeneratedFunction`.  The batch methods
run the numpy-vectorized engine (:mod:`repro.batch`), which is
bit-identical to the scalar path for every input — see DESIGN.md,
"Scalar/batch bit-identity".

The older entry points (``repro.libm.runtime.load``,
``repro.libm.float32`` / ``posit32`` wrappers) keep working;
``runtime.load`` emits a :class:`DeprecationWarning` pointing here.
"""

from __future__ import annotations

from repro.core.generator import GeneratedFunction
from repro.libm import runtime

__all__ = ["Library", "load", "functions", "targets", "reload"]


class Library:
    """Handle for one correctly rounded function on one target format.

    Thin wrapper over a :class:`~repro.core.generator.GeneratedFunction`
    (exposed as :attr:`fn` for low-level access) presenting the scalar
    and batch evaluators under one roof.
    """

    def __init__(self, fn: GeneratedFunction, target: str):
        self.fn = fn
        self.name = fn.name
        self.target = target

    # -- scalar ------------------------------------------------------------

    def evaluate(self, x: float) -> float:
        """f(x) correctly rounded to the target, as a double."""
        return self.fn.evaluate(x)

    def evaluate_bits(self, x: float) -> int:
        """f(x) correctly rounded, as a target bit pattern."""
        return self.fn.evaluate_bits(x)

    __call__ = evaluate

    # -- batch -------------------------------------------------------------

    def evaluate_batch(self, xs):
        """Vectorized :meth:`evaluate`: float64 array in, doubles out.

        Accepts any-shape float64 arrays (or nested lists of floats);
        the result has the same shape.  Bit-identical to calling
        :meth:`evaluate` per element.
        """
        return self.fn.evaluate_many(xs)

    def evaluate_bits_batch(self, xs):
        """Vectorized :meth:`evaluate_bits`: uint64 patterns out."""
        return self.fn.evaluate_bits_many(xs)

    # -- introspection -----------------------------------------------------

    def instrumented(self) -> "Library":
        """A fresh handle whose *scalar* path records runtime metrics.

        Wraps :func:`repro.libm.runtime.instrument`; the batch path is
        not instrumented (it reports no per-call metrics) and the
        shared cached function stays untouched.
        """
        return Library(runtime.instrument(self.fn), self.target)

    @property
    def stats(self):
        """Generation-time statistics of the underlying function."""
        return self.fn.stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Library({self.name!r}, target={self.target!r})"


def load(function: str, target: str = "float32") -> Library:
    """Load one shipped (or generated) function as a :class:`Library`.

    ``function`` is an elementary function name (see :func:`functions`);
    ``target`` one of :func:`targets`.  Raises LookupError when no
    frozen data exists for the pair — ``python -m repro generate
    --target <name>`` creates it.
    """
    return Library(runtime.load_function(function, target), target)


def reload(function: str, target: str = "float32") -> Library:
    """Like :func:`load`, but bypassing caches (fresh frozen data)."""
    return Library(runtime.reload(function, target), target)


def functions(target: str = "float32") -> tuple[str, ...]:
    """Function names this target supports (posits lack sinpi/cospi)."""
    return runtime.functions_for(target)


def targets() -> tuple[str, ...]:
    """Target formats the loader accepts (shipped: float32, posit32)."""
    return runtime.KNOWN_TARGETS
