"""Single-precision library stand-ins (glibc/Intel/Metalibm *float* rows).

These emulate libraries whose whole pipeline runs in binary32: every
constant, table entry, polynomial coefficient and arithmetic operation is
rounded to float32 (``f32_round`` after each op reproduces IEEE binary32
arithmetic exactly, since each double operation result rounded to float32
equals the float32 operation when the operands are float32 values —
binary32 results fit with slack inside binary64).

With only ~24 bits carried through range reduction, polynomial evaluation
and output compensation, the accumulated error routinely reaches a few
ulps — these stand-ins are wrong on a large fraction of inputs, matching
Table 1's float columns (X(1.7E5)..X(3.0E7)).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.baselines.base import BaselineLibrary, limit_case
from repro.baselines.minimax_libm import reduced_minimax
from repro.fp.float32 import f32_round as R
from repro.rangereduction.tables import (exp2_fraction_table, log_scale_constant,
                                         log_table, sinhcosh_tables,
                                         sinpicospi_tables)
from repro.rangereduction.sinpicospi import _split_table, _split_to_half

__all__ = ["Float32Libm"]

_FLT_BIG = 3.4e38


def _poly32(fn_name: str, degree: int) -> tuple[float, ...]:
    """Mini-max coefficients rounded to float32 (as doubles)."""
    poly = reduced_minimax(fn_name, degree)
    return tuple(R(c) for c in poly.coefficients)


def _horner32(coeffs: tuple[float, ...], r: float) -> float:
    acc = coeffs[-1]
    for c in reversed(coeffs[:-1]):
        acc = R(R(acc * r) + c)
    return acc


def _split_constant(c: float, keep_bits: int = 11) -> tuple[float, float]:
    """Cody-Waite split: c_hi with few mantissa bits (so k*c_hi is exact
    in binary32 for the k range of the reduction) plus a small c_lo.

    Real float libraries use exactly this trick to keep the reduced input
    accurate despite binary32 arithmetic.
    """
    from repro.fp.float32 import bits_to_f32, f32_to_bits
    bits = f32_to_bits(c)
    bits &= ~((1 << (23 - keep_bits)) - 1)
    c_hi = bits_to_f32(bits)
    c_lo = R(c - c_hi)
    return c_hi, c_lo


class Float32Libm(BaselineLibrary):
    """A library computing everything in emulated binary32."""

    def __init__(self, name: str, profile: dict[str, int]):
        self.name = name
        self.functions = frozenset(profile)
        self._profile = dict(profile)
        self._impl: dict[str, Callable[[float], float]] = {}

    def call(self, fn_name: str, x: float) -> float:
        if fn_name not in self.functions:
            raise KeyError(f"{self.name} has no {fn_name} (N/A)")
        lim = limit_case(fn_name, x)
        if lim is not None:
            return lim
        impl = self._impl.get(fn_name)
        if impl is None:
            impl = self._build(fn_name)
            self._impl[fn_name] = impl
        return impl(x)

    def _build(self, fn_name: str) -> Callable[[float], float]:
        if fn_name in ("ln", "log2", "log10"):
            return self._build_log(fn_name)
        if fn_name in ("exp", "exp2", "exp10"):
            return self._build_exp(fn_name)
        if fn_name in ("sinh", "cosh"):
            return self._build_sinhcosh(fn_name)
        return self._build_sincospi(fn_name)

    def _build_log(self, fn_name: str) -> Callable[[float], float]:
        tab = tuple(R(v) for v in log_table(fn_name, 7))
        coeffs = _poly32(fn_name, self._profile[fn_name])
        pure = fn_name == "log2"
        s_hi, s_lo = _split_constant(log_scale_constant(fn_name))

        def impl(x: float) -> float:
            m, e2 = math.frexp(x)
            e = e2 - 1
            m = m * 2.0                      # exact in binary32 too
            j = int((m - 1.0) * 128.0)
            f = 1.0 + j / 128.0
            r = R((m - f) / f)
            p = _horner32(coeffs, r)
            if pure:
                return R(R(e + tab[j]) + p)
            # e*s_hi is exact (|e| <= 149 fits next to the short mantissa)
            return R(R(e * s_hi + tab[j]) + R(p + R(e * s_lo)))

        return impl

    def _build_exp(self, fn_name: str) -> Callable[[float], float]:
        tab = tuple(R(v) for v in exp2_fraction_table(64))
        coeffs = _poly32(fn_name, self._profile[fn_name])
        if fn_name == "exp":
            c_inv, c = R(64.0 / math.log(2)), math.log(2) / 64.0
        elif fn_name == "exp2":
            c_inv, c = 64.0, 1.0 / 64.0
        else:
            c_inv, c = R(64.0 / (math.log10(2))), math.log10(2) / 64.0
        c_hi, c_lo = _split_constant(c)

        def impl(x: float) -> float:
            # argument clamp, as the real float implementations do
            if x > 256.0:
                return math.inf
            if x < -256.0:
                return 0.0
            k = round(R(x * c_inv))
            r = R(R(x - R(k * c_hi)) - R(k * c_lo))
            q, j = divmod(k, 64)
            p = _horner32(coeffs, r)
            try:
                return R(math.ldexp(R(tab[j] * p), q))
            except OverflowError:  # pragma: no cover
                return math.inf

        return impl

    def _build_sinhcosh(self, fn_name: str) -> Callable[[float], float]:
        kmax = int(round(90.0 * 64))
        sinh_d, cosh_d = sinhcosh_tables(kmax)
        sinh_t = tuple(R(min(v, _FLT_BIG)) for v in sinh_d)
        cosh_t = tuple(R(min(v, _FLT_BIG)) for v in cosh_d)
        ps = _poly32("sinh", self._profile[fn_name])
        pc = _poly32("cosh", self._profile[fn_name])
        is_sinh = fn_name == "sinh"

        def impl(x: float) -> float:
            s = abs(x)
            if s >= 90.0:
                return math.copysign(math.inf, x) if is_sinh else math.inf
            if s < 2.0 ** -13:        # real float libraries shortcut tiny x
                return x if is_sinh else 1.0
            k = round(s * 64.0)
            r = s - k / 64.0
            vs = _horner32(ps, r)
            vc = _horner32(pc, r)
            if is_sinh:
                y = R(R(sinh_t[k] * vc) + R(cosh_t[k] * vs))
                return math.copysign(y, x)
            return R(R(cosh_t[k] * vc) + R(sinh_t[k] * vs))

        return impl

    def _build_sincospi(self, fn_name: str) -> Callable[[float], float]:
        sin_d, cos_d = sinpicospi_tables(256)
        sin_t = tuple(R(v) for v in sin_d)
        cos_t = tuple(R(v) for v in cos_d)
        ps = _poly32("sinpi", self._profile[fn_name])
        pc = _poly32("cospi", self._profile[fn_name])
        is_sin = fn_name == "sinpi"

        pi32 = R(math.pi)

        def impl(x: float) -> float:
            ax = abs(x)
            if ax >= 2.0 ** 23:
                if is_sin:
                    return math.copysign(0.0, x)
                if ax >= 2.0 ** 24:
                    return 1.0
                return 1.0 if int(ax) % 2 == 0 else -1.0
            if ax < 2.0 ** -13:       # tiny-input shortcut, float precision
                return R(pi32 * x) if is_sin else 1.0
            k, m, l2 = _split_to_half(ax)
            n, q = _split_table(l2)
            vs = _horner32(ps, q)
            vc = _horner32(pc, q)
            if is_sin:
                sgn = -1.0 if ((x < 0.0) != (k == 1)) else 1.0
                return sgn * R(R(sin_t[n] * vc) + R(cos_t[n] * vs)) + 0.0
            sgn = -1.0 if (k + m) % 2 else 1.0
            return sgn * R(R(cos_t[n] * vc) - R(sin_t[n] * vs)) + 0.0

        return impl
