"""The platform C math library as a baseline (glibc's double libm).

CPython's ``math`` module calls straight into the platform libm, so this
baseline *is* the real "glibc double" column of Table 1 (on a glibc
system): convert the float32 input to double, call the double function,
round back to float32.  The paper shows this double-rounding pipeline is
wrong on a handful of inputs for ln/log10/exp2/sinh even though the
double functions themselves are accurate to well under an ulp.

glibc provides no sinpi/cospi (Table 1 marks them N/A); exp10 is mapped
to ``pow(10, x)`` as C code commonly does.
"""

from __future__ import annotations

import math

from repro.baselines.base import BaselineLibrary, limit_case

__all__ = ["SystemLibm"]


def _exp10(x: float) -> float:
    return math.pow(10.0, x)


_IMPL = {
    "ln": math.log,
    "log2": math.log2,
    "log10": math.log10,
    "exp": math.exp,
    "exp2": math.exp2,
    "exp10": _exp10,
    "sinh": math.sinh,
    "cosh": math.cosh,
}


class SystemLibm(BaselineLibrary):
    """Platform libm (via the math module), double precision."""

    functions = frozenset(_IMPL)

    def __init__(self, name: str = "glibc double (platform libm)"):
        self.name = name

    def call(self, fn_name: str, x: float) -> float:
        if fn_name not in self.functions:
            raise KeyError(f"{self.name} has no {fn_name} (N/A)")
        lim = limit_case(fn_name, x)
        if lim is not None:
            return lim
        try:
            return _IMPL[fn_name](x)
        except OverflowError:
            return math.copysign(math.inf, x) if fn_name == "sinh" else math.inf
        except ValueError:  # pragma: no cover - domain guarded by limit_case
            return math.nan
