"""Baseline math libraries: Remez mini-max substrate + library stand-ins."""

from __future__ import annotations

from repro.baselines.base import BaselineLibrary, limit_case
from repro.baselines.crlibm_like import CRLibmLike
from repro.baselines.float_libm import Float32Libm
from repro.baselines.minimax_libm import MinimaxLibm, reduced_minimax
from repro.baselines.registry import (ALL_FUNCTIONS, GLIBC_FUNCTIONS,
                                      METALIBM_FUNCTIONS, POSIT_FUNCTIONS,
                                      correctness_baselines, posit_baselines,
                                      timing_baselines)
from repro.baselines.remez import RemezResult, remez
from repro.baselines.system_libm import SystemLibm

__all__ = [
    "BaselineLibrary", "limit_case", "CRLibmLike", "Float32Libm",
    "MinimaxLibm", "reduced_minimax", "SystemLibm",
    "ALL_FUNCTIONS", "GLIBC_FUNCTIONS", "METALIBM_FUNCTIONS", "POSIT_FUNCTIONS",
    "correctness_baselines", "posit_baselines", "timing_baselines",
    "RemezResult", "remez",
]
