"""Common interface of the baseline math libraries.

Table 1/2 and Figures 3/4 compare RLIBM-32 against glibc, Intel libm,
CR-LIBM and Metalibm.  Those binaries are reimplemented here as
*stand-ins* sharing one interface: ``call(fn, x)`` produces the library's
double-precision result for a float32/posit32 input ``x``; the evaluation
harness performs the final rounding to the target representation, exactly
like the paper's methodology of "convert the float input into double, use
the double function, and round the result back to float".

Each stand-in mirrors its original's characteristic *accuracy envelope*
(mini-max polynomial degrees, float32 vs double arithmetic, correct
rounding to double with double-rounding artefacts) and *cost envelope*
(polynomial degree + table traffic), as documented in DESIGN.md.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

from repro.oracle.functions import get_function

__all__ = ["BaselineLibrary", "limit_case"]


def limit_case(fn_name: str, x: float) -> float | None:
    """Shared special-case layer: NaN/inf propagation and domain errors."""
    fn = get_function(fn_name)
    lim = fn.limit_cases(x)
    if lim is not None:
        return lim
    if not fn.in_domain(x):
        return math.nan
    if fn_name in ("ln", "log2", "log10") and x == 0.0:
        return -math.inf
    return None


class BaselineLibrary(ABC):
    """One comparison library: a set of elementary functions in double."""

    #: Display name used in the report tables.
    name: str
    #: Function names this library provides (others are the paper's N/A).
    functions: frozenset[str]

    def supports(self, fn_name: str) -> bool:
        return fn_name in self.functions

    def __getstate__(self) -> dict:
        """Pickle support for the parallel audit workers.

        ``_impl`` is a lazily built cache of local closures (table +
        polynomial evaluators) that cannot pickle; it is dropped here
        and rebuilt on first ``call`` in the worker, deterministically,
        from the pickled profile/tables.
        """
        state = dict(self.__dict__)
        state.pop("_impl", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_impl", {})

    @abstractmethod
    def call(self, fn_name: str, x: float) -> float:
        """The library's double result for input x (before T-rounding)."""

    def batch(self, fn_name: str, xs: Iterable[float]) -> np.ndarray:
        """Array-at-a-time evaluation; default loops over :meth:`call`.

        Overridden by the vectorization-flavoured stand-ins used for the
        paper's section 4.3 vectorization comparison.
        """
        return np.array([self.call(fn_name, float(x)) for x in xs])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
