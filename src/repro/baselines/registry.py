"""The baseline line-up for every table and figure.

The support matrix mirrors Table 1/2's N/A pattern:

* glibc ships no sinpi/cospi;
* CR-LIBM ships no exp2/exp10;
* Metalibm provides exp/exp2/cosh;
* Intel's libm covers all ten functions.

Two line-ups are exposed:

* :func:`correctness_baselines` — the most *honest* accuracy emulation of
  each library (real platform libm for "glibc double"; emulated binary32
  arithmetic for the float rows; mini-max doubles for Intel/Metalibm;
  correctly rounded double for CR-LIBM).  Used for Tables 1 and 2.
* :func:`timing_baselines` — stand-ins on a matched substrate (everything
  pure-Python double arithmetic) so that measured time reflects each
  design's *cost model* — single mini-max polynomial degree + table
  traffic versus RLIBM's piecewise low degree — rather than the constant
  factors of emulating binary32 in Python.  Used for Figures 3 and 4;
  see EXPERIMENTS.md for the methodology note.
"""

from __future__ import annotations

from repro.baselines.base import BaselineLibrary
from repro.baselines.crlibm_like import CRLibmLike
from repro.baselines.float_libm import Float32Libm
from repro.baselines.minimax_libm import MinimaxLibm
from repro.baselines.system_libm import SystemLibm

__all__ = [
    "GLIBC_FUNCTIONS", "ALL_FUNCTIONS", "METALIBM_FUNCTIONS",
    "POSIT_FUNCTIONS", "correctness_baselines", "timing_baselines",
    "posit_baselines",
]

GLIBC_FUNCTIONS = ("ln", "log2", "log10", "exp", "exp2", "exp10",
                   "sinh", "cosh")
ALL_FUNCTIONS = GLIBC_FUNCTIONS + ("sinpi", "cospi")
METALIBM_FUNCTIONS = ("exp", "exp2", "cosh")
#: The eight posit32 functions of Table 2.
POSIT_FUNCTIONS = GLIBC_FUNCTIONS

# Degree profiles model each library's accuracy/effort point.  Float
# libraries target ~2**-28 polynomial error (binary32 arithmetic is the
# real error source); double libraries target well below 2**-52.
_GLIBC_FLOAT = {fn: 3 for fn in GLIBC_FUNCTIONS}
_INTEL_FLOAT = {fn: 4 for fn in ALL_FUNCTIONS}
_METALIBM_FLOAT = {fn: 2 for fn in METALIBM_FUNCTIONS}
_GLIBC_DOUBLE = {fn: 6 for fn in GLIBC_FUNCTIONS}
_INTEL_DOUBLE = {fn: 8 for fn in ALL_FUNCTIONS}
_METALIBM_DOUBLE = {fn: 3 for fn in METALIBM_FUNCTIONS}


def correctness_baselines() -> dict[str, BaselineLibrary]:
    """Baselines for Table 1 (honest accuracy emulation)."""
    return {
        "glibc float": Float32Libm("glibc float", _GLIBC_FLOAT),
        "glibc double": SystemLibm(),
        "intel float": Float32Libm("intel float", _INTEL_FLOAT),
        "intel double": MinimaxLibm("intel double", _INTEL_DOUBLE),
        "crlibm": CRLibmLike(),
        "metalibm float": Float32Libm("metalibm float", _METALIBM_FLOAT),
        "metalibm double": MinimaxLibm("metalibm double", _METALIBM_DOUBLE),
    }


def timing_baselines() -> dict[str, BaselineLibrary]:
    """Baselines for Figures 3/4 (matched pure-Python substrate).

    The CR-LIBM stand-in runs with an *uncached* oracle: a memoized one
    would time as dictionary lookups instead of the quick/accurate-phase
    evaluation whose cost Figure 3(c) measures.
    """
    from repro.oracle.mpmath_oracle import Oracle
    return {
        "glibc float": MinimaxLibm("glibc float (cost model)", _GLIBC_FLOAT),
        "glibc double": MinimaxLibm("glibc double (cost model)", _GLIBC_DOUBLE),
        "intel float": MinimaxLibm("intel float (cost model)", _INTEL_FLOAT),
        "intel double": MinimaxLibm("intel double (cost model)", _INTEL_DOUBLE),
        "crlibm": CRLibmLike(oracle=Oracle(cache=False)),
        "metalibm float": MinimaxLibm("metalibm float (cost model)",
                                      _METALIBM_FLOAT),
        "metalibm double": MinimaxLibm("metalibm double (cost model)",
                                       _METALIBM_DOUBLE),
    }


def posit_baselines(timing: bool = False) -> dict[str, BaselineLibrary]:
    """Repurposed double libraries for Table 2 / Figure 4.

    With ``timing=True`` the glibc stand-in uses the cost-model
    implementation (the platform libm's C speed is not comparable to the
    pure-Python substrate) and CR-LIBM's oracle is uncached.
    """
    if timing:
        from repro.oracle.mpmath_oracle import Oracle
        return {
            "glibc double": MinimaxLibm("glibc double (cost model)",
                                        _GLIBC_DOUBLE),
            "intel double": MinimaxLibm("intel double", _INTEL_DOUBLE),
            "crlibm": CRLibmLike(oracle=Oracle(cache=False)),
        }
    return {
        "glibc double": SystemLibm(),
        "intel double": MinimaxLibm("intel double", _INTEL_DOUBLE),
        "crlibm": CRLibmLike(),
    }
