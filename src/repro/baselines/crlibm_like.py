"""CR-LIBM stand-in: correctly rounded *to double*, then re-rounded.

CR-LIBM guarantees correct rounding to binary64.  Using it for float32
means rounding twice — real value -> double -> float — and double
rounding produces wrong float32 results precisely when the real value
lies on the far side of a double that is itself a float32 rounding
boundary midpoint (Table 1's CR-LIBM column: X(5), X(1), X(2)...).

This stand-in obtains the correctly rounded double from the oracle using
the same Ziv-style evaluate-then-verify-then-escalate structure CR-LIBM's
quick/accurate phases implement, which also gives it the cost profile the
paper measures: about 2x slower than RLIBM-32 (Figure 3c).

CR-LIBM ships ln/log2/log10/exp/sinh/cosh/sinpi/cospi but not exp2/exp10
(Table 1 marks them N/A).
"""

from __future__ import annotations

from repro.baselines.base import BaselineLibrary, limit_case
from repro.oracle.mpmath_oracle import Oracle, default_oracle

__all__ = ["CRLibmLike"]


class CRLibmLike(BaselineLibrary):
    """Correct rounding to binary64 via Ziv evaluation."""

    functions = frozenset(
        {"ln", "log2", "log10", "exp", "sinh", "cosh", "sinpi", "cospi"})

    def __init__(self, name: str = "CR-LIBM (double, correctly rounded)",
                 oracle: Oracle | None = None):
        self.name = name
        # An unshared oracle: timing runs must not be contaminated by
        # results the generator already cached.
        self._oracle = oracle if oracle is not None else Oracle()

    def call(self, fn_name: str, x: float) -> float:
        if fn_name not in self.functions:
            raise KeyError(f"{self.name} has no {fn_name} (N/A)")
        lim = limit_case(fn_name, x)
        if lim is not None:
            return lim
        return self._oracle.round_to_double(fn_name, x)
