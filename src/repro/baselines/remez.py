"""Remez exchange: mini-max polynomial approximation (from scratch).

The libraries RLIBM-32 compares against (glibc, Intel, CR-LIBM, Metalibm)
are all built on *mini-max* polynomials — polynomials minimizing the
maximum error against the real function, per the Chebyshev alternation
theorem (paper section 1).  This module implements the Remez exchange
algorithm on a dense grid:

1. start from Chebyshev-extrema reference points,
2. solve the linear system  P(x_i) + (-1)**i E = f(x_i)  for the
   coefficients and the levelled error E,
3. evaluate the error on the grid and exchange the reference for the
   alternating local extrema (one per sign-change segment),
4. repeat until the levelled error matches the observed maximum.

It is used to build every baseline library stand-in; the contrast between
these mini-max approximations (accurate against the *real* value) and the
RLIBM polynomials (accurate against the *correctly rounded* value) is the
paper's central point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.polynomials import Polynomial

__all__ = ["RemezResult", "remez"]


@dataclass
class RemezResult:
    """A mini-max polynomial and its observed maximum error."""

    poly: Polynomial
    max_error: float
    converged: bool
    iterations: int


def _solve_reference(f_vals: np.ndarray, xs: np.ndarray, degree: int,
                     scale: float) -> tuple[np.ndarray, float]:
    """Solve P(x_i) + (-1)**i E = f(x_i) on the reference points."""
    n = degree + 2
    a = np.empty((n, n))
    for j in range(degree + 1):
        a[:, j] = (xs / scale) ** j
    a[:, degree + 1] = [(-1.0) ** i for i in range(n)]
    sol = np.linalg.solve(a, f_vals)
    coeffs = sol[: degree + 1] / np.array([scale ** j
                                           for j in range(degree + 1)])
    return coeffs, float(abs(sol[degree + 1]))


def _alternating_extrema(err: np.ndarray, need: int) -> np.ndarray | None:
    """Pick one max-|err| point per same-sign run; need >= `need` of them."""
    signs = np.sign(err)
    # collapse zero signs onto the previous sign to keep runs contiguous
    for i in range(1, len(signs)):
        if signs[i] == 0:
            signs[i] = signs[i - 1]
    picks: list[int] = []
    start = 0
    for i in range(1, len(err) + 1):
        if i == len(err) or signs[i] != signs[start]:
            seg = np.argmax(np.abs(err[start:i])) + start
            picks.append(int(seg))
            start = i
    if len(picks) < need:
        return None
    if len(picks) > need:
        # keep the `need` consecutive picks with the largest smallest error
        best = None
        best_score = -1.0
        for k in range(len(picks) - need + 1):
            window = picks[k: k + need]
            score = min(abs(err[i]) for i in window)
            if score > best_score:
                best_score = score
                best = window
        picks = best  # type: ignore[assignment]
    return np.array(picks)


def remez(
    f: Callable[[float], float],
    a: float,
    b: float,
    degree: int,
    grid: int = 4096,
    max_iter: int = 40,
    tol: float = 1e-3,
) -> RemezResult:
    """Mini-max polynomial of the given degree for f on [a, b].

    ``tol`` is the relative agreement required between the levelled error
    and the observed maximum error for convergence.
    """
    if b <= a:
        raise ValueError("need a < b")
    # Chebyshev-distributed grid avoids endpoint starvation.
    k = np.arange(grid)
    xs_grid = 0.5 * (a + b) + 0.5 * (b - a) * np.cos(np.pi * (grid - 1 - k) / (grid - 1))
    f_grid = np.array([f(float(x)) for x in xs_grid])
    scale = max(abs(a), abs(b)) or 1.0

    n_ref = degree + 2
    ref_idx = np.linspace(0, grid - 1, num=n_ref, dtype=int)

    # The exchange destabilizes once the levelled error drops below the
    # double-precision evaluation noise of f; accept such fits as done.
    noise_floor = 4e-16 * float(np.max(np.abs(f_grid)) or 1.0)

    best_coeffs = np.zeros(degree + 1)
    best_err = float("inf")
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        xs = xs_grid[ref_idx]
        fv = f_grid[ref_idx]
        try:
            coeffs, lev_err = _solve_reference(fv, xs, degree, scale)
        except np.linalg.LinAlgError:
            break
        poly_vals = np.full(grid, coeffs[degree])
        for j in range(degree - 1, -1, -1):
            poly_vals = poly_vals * xs_grid + coeffs[j]
        err = f_grid - poly_vals
        max_err = float(np.max(np.abs(err)))
        if max_err < best_err:
            best_err = max_err
            best_coeffs = coeffs
        if max_err <= noise_floor:
            converged = True
            break
        if lev_err > 0 and abs(max_err - lev_err) <= tol * max_err:
            converged = True
            break
        new_ref = _alternating_extrema(err, n_ref)
        if new_ref is None:
            break
        ref_idx = new_ref

    poly = Polynomial(tuple(range(degree + 1)),
                      tuple(float(c) for c in best_coeffs))
    return RemezResult(poly, best_err, converged, it)
