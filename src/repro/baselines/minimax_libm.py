"""Double-precision mini-max library stand-ins (glibc/Intel/Metalibm style).

Each function uses the classic table-driven range reduction (the same
family our RLIBM pipeline uses — that part of library design is shared
heritage) but approximates the *real value* of the reduced function with
a single Remez mini-max polynomial of a per-profile degree, evaluated in
double.  This is precisely the design the paper contrasts against: even
with a mini-max error far below half an ulp of float32, such libraries
return the wrong result whenever the true value lies extremely close to a
rounding boundary (Table 1's X(1)..X(5) entries for the double variants),
and the single high-degree polynomial costs more than RLIBM's piecewise
low-degree ones (Figure 3).

Degree profiles model each library's accuracy/effort point; see
:mod:`repro.baselines.registry`.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable

from repro.baselines.base import BaselineLibrary, limit_case
from repro.baselines.remez import remez
from repro.core.polynomials import Polynomial
from repro.rangereduction.tables import (exp2_fraction_table, log_scale_constant,
                                         log_table, sinhcosh_tables,
                                         sinpicospi_tables)
from repro.rangereduction.sinpicospi import _split_table, _split_to_half

__all__ = ["MinimaxLibm", "reduced_minimax"]

_LN2_64 = math.log(2) / 64.0
_LOG10_2_64 = math.log10(2) / 64.0
#: Largest |x| the sinh/cosh tables cover (beyond float32 overflow).
_SINHCOSH_MAX = 90.0


@lru_cache(maxsize=None)
def reduced_minimax(fn_name: str, degree: int) -> Polynomial:
    """Mini-max polynomial of the reduced function for ``fn_name``."""
    specs: dict[str, tuple[Callable[[float], float], float, float]] = {
        "ln": (math.log1p, 0.0, 1.0 / 128.0),
        "log2": (lambda r: math.log1p(r) / math.log(2), 0.0, 1.0 / 128.0),
        "log10": (lambda r: math.log1p(r) / math.log(10), 0.0, 1.0 / 128.0),
        "exp": (math.exp, -_LN2_64 / 2, _LN2_64 / 2),
        "exp2": (math.exp2, -1.0 / 128.0, 1.0 / 128.0),
        "exp10": (lambda r: 10.0 ** r, -_LOG10_2_64 / 2, _LOG10_2_64 / 2),
        "sinh": (math.sinh, -1.0 / 128.0, 1.0 / 128.0),
        "cosh": (math.cosh, -1.0 / 128.0, 1.0 / 128.0),
        "sinpi": (lambda r: math.sin(math.pi * r), 0.0, 1.0 / 512.0),
        "cospi": (lambda r: math.cos(math.pi * r), 0.0, 1.0 / 512.0),
    }
    f, a, b = specs[fn_name]
    return remez(f, a, b, degree).poly


class MinimaxLibm(BaselineLibrary):
    """A double-precision table + mini-max polynomial library."""

    def __init__(self, name: str, profile: dict[str, int]):
        self.name = name
        self.functions = frozenset(profile)
        self._profile = dict(profile)
        self._impl: dict[str, Callable[[float], float]] = {}

    def _poly(self, fn_name: str) -> Polynomial:
        return reduced_minimax(fn_name, self._profile[fn_name])

    # ------------------------------------------------------------------
    def call(self, fn_name: str, x: float) -> float:
        if fn_name not in self.functions:
            raise KeyError(f"{self.name} has no {fn_name} (N/A)")
        lim = limit_case(fn_name, x)
        if lim is not None:
            return lim
        impl = self._impl.get(fn_name)
        if impl is None:
            impl = self._build(fn_name)
            self._impl[fn_name] = impl
        return impl(x)

    # ------------------------------------------------------------------
    def _build(self, fn_name: str) -> Callable[[float], float]:
        if fn_name in ("ln", "log2", "log10"):
            return self._build_log(fn_name)
        if fn_name in ("exp", "exp2", "exp10"):
            return self._build_exp(fn_name)
        if fn_name in ("sinh", "cosh"):
            return self._build_sinhcosh(fn_name)
        return self._build_sincospi(fn_name)

    def _build_log(self, fn_name: str) -> Callable[[float], float]:
        tab = log_table(fn_name, 7)
        poly = self._poly(fn_name).compiled
        scale = 1.0 if fn_name == "log2" else log_scale_constant(fn_name)

        def impl(x: float) -> float:
            m, e2 = math.frexp(x)
            e = e2 - 1
            m = m * 2.0
            j = int((m - 1.0) * 128.0)
            f = 1.0 + j / 128.0
            r = (m - f) / f
            return (e * scale + tab[j]) + poly(r)

        return impl

    def _build_exp(self, fn_name: str) -> Callable[[float], float]:
        tab = exp2_fraction_table(64)
        poly = self._poly(fn_name).compiled
        if fn_name == "exp":
            c_inv, c = 64.0 / math.log(2), _LN2_64
        elif fn_name == "exp2":
            c_inv, c = 64.0, 1.0 / 64.0
        else:
            c_inv, c = 1.0 / _LOG10_2_64, _LOG10_2_64

        def impl(x: float) -> float:
            k = round(x * c_inv)
            r = x - k * c
            q, j = divmod(k, 64)
            try:
                return math.ldexp(tab[j] * poly(r), q)
            except OverflowError:  # pragma: no cover - double overflow
                return math.inf

        return impl

    def _build_sinhcosh(self, fn_name: str) -> Callable[[float], float]:
        kmax = int(round(_SINHCOSH_MAX * 64))
        sinh_t, cosh_t = sinhcosh_tables(kmax)
        ps = reduced_minimax("sinh", self._profile[fn_name]).compiled
        pc = reduced_minimax("cosh", self._profile[fn_name]).compiled
        is_sinh = fn_name == "sinh"

        def impl(x: float) -> float:
            s = abs(x)
            if s >= _SINHCOSH_MAX:
                big = math.inf
                return math.copysign(big, x) if is_sinh else big
            if s < 2.0 ** -20:        # tiny-input shortcut, as libm does
                return x if is_sinh else 1.0
            k = round(s * 64.0)
            r = s - k / 64.0
            if is_sinh:
                y = sinh_t[k] * pc(r) + cosh_t[k] * ps(r)
                return math.copysign(y, x)
            return cosh_t[k] * pc(r) + sinh_t[k] * ps(r)

        return impl

    def _build_sincospi(self, fn_name: str) -> Callable[[float], float]:
        sin_t, cos_t = sinpicospi_tables(256)
        ps = reduced_minimax("sinpi", self._profile[fn_name]).compiled
        pc = reduced_minimax("cospi", self._profile[fn_name]).compiled
        is_sin = fn_name == "sinpi"

        def impl(x: float) -> float:
            ax = abs(x)
            if ax >= 2.0 ** 23:
                if is_sin:
                    return math.copysign(0.0, x)
                if ax >= 2.0 ** 24:
                    return 1.0
                return 1.0 if int(ax) % 2 == 0 else -1.0
            if ax < 2.0 ** -20:       # tiny-input shortcut, as libm does
                return math.pi * x if is_sin else 1.0
            k, m, l2 = _split_to_half(ax)
            n, q = _split_table(l2)
            if is_sin:
                sgn = -1.0 if ((x < 0.0) != (k == 1)) else 1.0
                return sgn * (sin_t[n] * pc(q) + cos_t[n] * ps(q)) + 0.0
            sgn = -1.0 if (k + m) % 2 else 1.0
            # classic (non-monotonic) identity, as mainstream libraries use
            return sgn * (cos_t[n] * pc(q) - sin_t[n] * ps(q)) + 0.0

        return impl
