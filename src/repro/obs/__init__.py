"""Observability for the RLIBM-32 pipeline: tracing, metrics, reports.

Three small modules, one contract:

* :mod:`repro.obs.events` — structured JSONL phase spans and point
  events; a process-global sink enabled via ``REPRO_TRACE=path.jsonl``
  or :func:`enable`, and a *shared no-op* fast path when disabled.
* :mod:`repro.obs.metrics` — named counters/gauges/histograms with
  ``snapshot()``/``merge()`` for diffable benchmark sidecars.
* :mod:`repro.obs.report` — render a trace into a Table-3-style summary
  and a flame-style phase breakdown (``python -m repro stats``).

Plus the performance-telemetry layer grown on top of them:

* :mod:`repro.obs.timing` — hardened measurement (``perf_counter_ns``,
  warmup, GC pinning, median/MAD outlier rejection) returning
  ``(median, mad, n)`` :class:`~repro.obs.timing.TimingResult`\\ s.
* :mod:`repro.obs.bench` — the benchmark registry, runner, and the
  append-only ``BENCH_<host>.json`` trajectory store with k·MAD
  regression detection (``python -m repro bench``).
* :mod:`repro.obs.export` — OpenMetrics/Prometheus text rendering and
  JSONL snapshot streaming for the metrics registry.
* :mod:`repro.obs.profile` — opt-in sampling profiler with pipeline
  phase attribution (``repro.obs.profile.phase``); feeds
  ``python -m repro report``.

The full vertical slice is instrumented: the generator's phases
(Algorithm 1), reduced-interval deduction (Algorithm 2), domain
splitting (Algorithm 3), the CEG/LP loop (Algorithm 4), and — strictly
opt-in, to keep the shipped hot path untouched — the libm runtime via
:func:`repro.libm.runtime.instrument`.
"""

from __future__ import annotations

from repro.obs.events import (NOOP_SPAN, configure_from_env, detach, disable,
                              enable, enabled, event, span, timed_span)
from repro.obs import metrics

__all__ = ["span", "timed_span", "event", "enable", "disable", "detach",
           "enabled", "configure_from_env", "NOOP_SPAN", "metrics"]

# repro.obs.bench / export / profile / timing are imported lazily by
# their users — pulling the registry machinery in here would put it on
# the import path of every instrumented hot module.
