"""Named counters, gauges, and histograms with snapshot/merge.

The pipeline keeps *aggregate* statistics out-of-band of the JSONL
trace: LP rows sampled, constraint violations per CEG round, refinement
iterations, special-case vs. polynomial-path hits, per-sub-domain
evaluation counts.  Unlike spans, metrics are always live — a bare
``Counter.inc`` is one attribute add — so instrumented code does not
need to guard them; the truly per-call runtime paths (``evaluate()``)
stay uninstrumented unless explicitly wrapped
(:func:`repro.libm.runtime.instrument`).

Instruments
-----------

* :class:`Counter` — monotonically increasing int (``inc``).
* :class:`Gauge` — last-write-wins value (``set``).
* :class:`Histogram` — ``kind="log2"`` buckets observations by power of
  two (right for sample sizes and LP row counts spanning decades);
  ``kind="exact"`` buckets by exact value (right for small discrete
  domains like sub-domain indices).

``snapshot()`` returns a plain JSON-able dict; ``merge(a, b)`` combines
two snapshots (counters and histogram buckets add, gauges last-write
wins) so per-shard or per-process snapshots can be reduced.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "counter", "gauge", "histogram",
           "snapshot", "merge", "absorb", "reset"]


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v


def _log2_bucket(v: float) -> str:
    """Power-of-two bucket label: '' holds v <= 0, 'k' holds [2**k, 2**(k+1))."""
    if v <= 0:
        return "neg" if v < 0 else "0"
    return str(math.frexp(v)[1] - 1)


class Histogram:
    """Log-scale (or exact-value) bucketed distribution."""

    __slots__ = ("name", "kind", "count", "total", "buckets")

    def __init__(self, name: str, kind: str = "log2"):
        if kind not in ("log2", "exact"):
            raise ValueError(f"unknown histogram kind {kind!r}")
        self.name = name
        self.kind = kind
        self.count = 0
        self.total = 0.0
        self.buckets: dict[str, int] = {}

    def observe(self, v: float, n: int = 1) -> None:
        self.count += n
        self.total += v * n
        key = str(v) if self.kind == "exact" else _log2_bucket(v)
        self.buckets[key] = self.buckets.get(key, 0) + n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


_counters: dict[str, Counter] = {}
_gauges: dict[str, Gauge] = {}
_histograms: dict[str, Histogram] = {}


def counter(name: str) -> Counter:
    """Get or create the named counter."""
    c = _counters.get(name)
    if c is None:
        c = _counters[name] = Counter(name)
    return c


def gauge(name: str) -> Gauge:
    """Get or create the named gauge."""
    g = _gauges.get(name)
    if g is None:
        g = _gauges[name] = Gauge(name)
    return g


def histogram(name: str, kind: str = "log2") -> Histogram:
    """Get or create the named histogram (kind fixed at first creation)."""
    h = _histograms.get(name)
    if h is None:
        h = _histograms[name] = Histogram(name, kind)
    return h


def snapshot() -> dict[str, Any]:
    """JSON-able view of every registered instrument with activity."""
    return {
        "counters": {n: c.value for n, c in sorted(_counters.items())
                     if c.value},
        "gauges": {n: g.value for n, g in sorted(_gauges.items())},
        "histograms": {
            n: {"kind": h.kind, "count": h.count, "sum": h.total,
                "buckets": dict(sorted(h.buckets.items()))}
            for n, h in sorted(_histograms.items()) if h.count
        },
    }


def merge(a: dict[str, Any], b: dict[str, Any]) -> dict[str, Any]:
    """Combine two snapshots: counters/histograms add, gauges b-wins."""
    out: dict[str, Any] = {
        "counters": dict(a.get("counters", {})),
        "gauges": dict(a.get("gauges", {})),
        "histograms": {n: {"kind": h["kind"], "count": h["count"],
                           "sum": h["sum"], "buckets": dict(h["buckets"])}
                       for n, h in a.get("histograms", {}).items()},
    }
    for n, v in b.get("counters", {}).items():
        out["counters"][n] = out["counters"].get(n, 0) + v
    out["gauges"].update(b.get("gauges", {}))
    for n, h in b.get("histograms", {}).items():
        slot = out["histograms"].get(n)
        if slot is None:
            out["histograms"][n] = {"kind": h["kind"], "count": h["count"],
                                    "sum": h["sum"],
                                    "buckets": dict(h["buckets"])}
            continue
        if slot["kind"] != h["kind"]:
            raise ValueError(f"histogram {n!r}: kind mismatch "
                             f"({slot['kind']} vs {h['kind']})")
        slot["count"] += h["count"]
        slot["sum"] += h["sum"]
        for k, c in h["buckets"].items():
            slot["buckets"][k] = slot["buckets"].get(k, 0) + c
    return out


def absorb(snap: dict[str, Any]) -> None:
    """Fold a snapshot into the *live* registry (same laws as merge).

    The parallel executor collects one snapshot per worker shard and
    absorbs each into the parent process, so a parallel run's final
    ``snapshot()`` equals the serial run's: counters and histogram
    buckets add, gauges last-write-win.
    """
    for n, v in snap.get("counters", {}).items():
        counter(n).inc(v)
    for n, v in snap.get("gauges", {}).items():
        gauge(n).set(v)
    for n, h in snap.get("histograms", {}).items():
        slot = histogram(n, h["kind"])
        if slot.kind != h["kind"]:
            raise ValueError(f"histogram {n!r}: kind mismatch "
                             f"({slot.kind} vs {h['kind']})")
        slot.count += h["count"]
        slot.total += h["sum"]
        for k, c in h["buckets"].items():
            slot.buckets[k] = slot.buckets.get(k, 0) + c


def reset() -> None:
    """Zero every instrument (handles are kept valid)."""
    for c in _counters.values():
        c.value = 0
    for g in _gauges.values():
        g.value = 0.0
    for h in _histograms.values():
        h.count = 0
        h.total = 0.0
        h.buckets.clear()
