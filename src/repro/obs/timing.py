"""Hardened wall-clock measurement: warmup, GC pinning, robust statistics.

Every benchmark in this repository ultimately reduces to "time a
callable N times and report a stable number".  Before this module each
bench rolled its own ``perf_counter`` loop and reported a bare median —
fine for eyeballing a table once, too fragile for an append-only
trajectory store that flags drift of a few k·MAD (``repro.obs.bench``).
The hardening applied here:

* **clock** — ``time.perf_counter_ns``: monotonic, highest resolution
  the platform offers, integer nanoseconds (no float accumulation).
* **warmup** — a configurable number of untimed passes first, so
  lazy-compiled kernels, cold caches, and allocator warm-up never land
  in the recorded samples.
* **GC pinning** — the collector is disabled around the timed region
  (and restored to its prior state), so a generational collection
  triggered by unrelated allocations cannot poison a sample.
* **outlier rejection** — samples further than ``k_mad`` scaled MADs
  from the median are dropped (scheduler preemptions, CPU-frequency
  excursions), and the median/MAD are recomputed over the survivors.

Results are a :class:`TimingResult` ``(median, mad, n)`` — the median
and the median-absolute-deviation of the surviving samples plus how
many survived — never a bare float: a trajectory record without a
dispersion estimate cannot support statistical regression detection.
"""

from __future__ import annotations

import gc
import statistics
import time
from typing import Callable, NamedTuple, Sequence

__all__ = ["TimingResult", "mad", "reject_outliers", "measure",
           "measure_ns"]

#: 1 MAD of a normal distribution ~= 0.6745 sigma; the scale factor
#: turns a MAD threshold into (approximately) a sigma threshold.
MAD_SIGMA_SCALE = 1.4826


class TimingResult(NamedTuple):
    """Robust timing summary: median, MAD, and surviving sample count.

    ``median`` and ``mad`` carry whatever unit the samples had
    (nanoseconds per call for the :mod:`repro.eval.timing` helpers).
    Comparisons and rendering usually want just the ``median``;
    regression detection wants all three.
    """

    median: float
    mad: float
    n: int


def mad(samples: Sequence[float], center: float | None = None) -> float:
    """Median absolute deviation around ``center`` (default: median)."""
    if not samples:
        return 0.0
    c = statistics.median(samples) if center is None else center
    return statistics.median([abs(s - c) for s in samples])


def reject_outliers(samples: Sequence[float],
                    k_mad: float = 3.0) -> list[float]:
    """Drop samples further than ``k_mad`` scaled MADs from the median.

    With fewer than three samples (or a zero MAD, i.e. a perfectly
    quiet run) every sample is kept — there is no dispersion estimate
    to reject against.
    """
    kept = list(samples)
    if len(kept) < 3:
        return kept
    med = statistics.median(kept)
    spread = mad(kept, med) * MAD_SIGMA_SCALE
    if spread <= 0.0:
        return kept
    limit = k_mad * spread
    return [s for s in kept if abs(s - med) <= limit]


def summarize(samples: Sequence[float], k_mad: float = 3.0) -> TimingResult:
    """Outlier-rejected ``(median, mad, n)`` over raw samples."""
    kept = reject_outliers(samples, k_mad)
    if not kept:
        return TimingResult(0.0, 0.0, 0)
    med = statistics.median(kept)
    return TimingResult(med, mad(kept, med), len(kept))


def measure_ns(fn: Callable[[], object], repeats: int = 5,
               warmup: int = 1, k_mad: float = 3.0,
               pin_gc: bool = True) -> TimingResult:
    """Time ``fn()`` ``repeats`` times; robust nanoseconds per call.

    Runs ``warmup`` untimed passes, disables the garbage collector for
    the timed region (restoring its prior state afterwards), records
    one integer-nanosecond sample per repeat, and returns the
    outlier-rejected :class:`TimingResult`.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    was_enabled = gc.isenabled()
    if pin_gc and was_enabled:
        gc.disable()
    try:
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter_ns()
            fn()
            samples.append(float(time.perf_counter_ns() - t0))
    finally:
        if pin_gc and was_enabled:
            gc.enable()
    return summarize(samples, k_mad)


def measure(fn: Callable[[], object], repeats: int = 5, warmup: int = 1,
            k_mad: float = 3.0, pin_gc: bool = True,
            per: int = 1) -> TimingResult:
    """Like :func:`measure_ns` but scaled: ns per *item*.

    ``per`` is how many logical items one ``fn()`` call processes (the
    length of the input list for a scalar loop, the batch size for an
    array call); median and MAD are divided by it so results from
    different batch sizes land in the same unit.
    """
    if per < 1:
        raise ValueError("per must be >= 1")
    r = measure_ns(fn, repeats=repeats, warmup=warmup, k_mad=k_mad,
                   pin_gc=pin_gc)
    return TimingResult(r.median / per, r.mad / per, r.n)
