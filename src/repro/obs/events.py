"""Structured JSONL trace emitter with nested phase spans.

The generation pipeline and the libm runtime emit *events* — nested
phase spans (``with span("cegpoly", fn="log2"):``) and point events
(``event("ceg.round", violations=17)``) — into a process-global sink.
The sink writes one JSON object per line (JSONL), which
:mod:`repro.obs.report` renders into Table-3-style summaries and a
flame-style phase breakdown.

Cost model
----------

Tracing is **disabled by default** and the disabled path is engineered
to be (almost) free: :func:`span` performs one module-global load and an
``is None`` test, then returns the process-wide shared no-op span
object; :func:`event` is the same test and a return.  No allocation, no
attribute formatting, no clock read happens on the disabled path, so
per-call and per-iteration hot paths (``evaluate()``, the CEG inner
loop) can be instrumented unconditionally.

Phase-level timing that must be measured even when tracing is off (the
:class:`~repro.core.generator.GenStats` wall times) uses
:func:`timed_span`, which always reads ``time.perf_counter()`` but only
*emits* when a sink is installed.

Enabling
--------

* environment: ``REPRO_TRACE=/path/to/trace.jsonl`` (read at import),
* API: :func:`enable` / :func:`disable`,
* CLI: ``python -m repro trace --out t.jsonl -- <command...>``.

Event schema (one JSON object per line)
---------------------------------------

* ``{"ev": "meta", "schema": 1, "clock": "perf_counter"}`` — first line.
* ``{"ev": "span", "name": ..., "sid": ..., "pid": ..., "depth": ...,
  "t": <start offset s>, "dur": <seconds>, **attrs}`` — written when the
  span *exits*, so children precede parents in the file; consumers
  rebuild the tree from ``sid``/``pid``.
* ``{"ev": "point", "name": ..., "pid": <enclosing span>, "t": ...,
  **attrs}`` — instantaneous events (CEG rounds, LP solves, bench rows).
* ``{"ev": "metrics", ...snapshot}`` — the
  :func:`repro.obs.metrics.snapshot` appended by :func:`disable`.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from typing import Any, IO

__all__ = ["span", "timed_span", "event", "enable", "disable", "detach",
           "enabled", "configure_from_env", "NOOP_SPAN", "SCHEMA_VERSION"]

SCHEMA_VERSION = 1


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled.

    There is exactly one instance per process (:data:`NOOP_SPAN`); tests
    assert identity on it to guarantee the disabled path allocates
    nothing and records no attributes.
    """

    __slots__ = ()
    elapsed = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _Timer:
    """Always-on wall timer with the span interface but no emission."""

    __slots__ = ("_t0", "elapsed")

    def __enter__(self) -> "_Timer":
        self.elapsed = 0.0
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.elapsed = time.perf_counter() - self._t0
        return False

    def set(self, **attrs: Any) -> "_Timer":
        return self


class _Sink:
    """An open trace file plus the span stack and id allocator."""

    __slots__ = ("fh", "path", "t0", "stack", "ids", "_owns")

    def __init__(self, fh: IO[str], path: str | None, owns: bool):
        self.fh = fh
        self.path = path
        self._owns = owns
        self.t0 = time.perf_counter()
        self.stack: list[int] = []
        self.ids = itertools.count(1)

    def now(self) -> float:
        return time.perf_counter() - self.t0

    def write(self, obj: dict[str, Any]) -> None:
        self.fh.write(json.dumps(obj, separators=(",", ":"),
                                 default=str) + "\n")

    def close(self) -> None:
        try:
            self.fh.flush()
        except ValueError:  # already closed
            pass
        if self._owns:
            self.fh.close()


_sink: _Sink | None = None


class Span:
    """A live traced span; records begin/end with monotonic timing."""

    __slots__ = ("_sink", "name", "attrs", "sid", "pid", "depth", "_t0",
                 "elapsed")

    def __init__(self, sink: _Sink, name: str, attrs: dict[str, Any]):
        self._sink = sink
        self.name = name
        self.attrs = attrs
        self.elapsed = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        s = self._sink
        self.sid = next(s.ids)
        self.pid = s.stack[-1] if s.stack else 0
        self.depth = len(s.stack)
        s.stack.append(self.sid)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        t1 = time.perf_counter()
        self.elapsed = t1 - self._t0
        s = self._sink
        if s.stack and s.stack[-1] == self.sid:
            s.stack.pop()
        if _sink is s:  # sink may have been swapped mid-span
            rec: dict[str, Any] = {
                "ev": "span", "name": self.name, "sid": self.sid,
                "pid": self.pid, "depth": self.depth,
                "t": round(self._t0 - s.t0, 9),
                "dur": round(self.elapsed, 9),
            }
            if exc_type is not None:
                rec["error"] = getattr(exc_type, "__name__", str(exc_type))
            if self.attrs:
                rec.update(self.attrs)
            s.write(rec)
        return False


def span(name: str, **attrs: Any):
    """A traced phase span — the process-shared no-op when disabled.

    Use for hot/per-iteration paths: the disabled cost is one global
    load and an identity return.  ``.elapsed`` is only meaningful on the
    enabled path; use :func:`timed_span` when the caller needs the wall
    time regardless of tracing.
    """
    s = _sink
    if s is None:
        return NOOP_SPAN
    return Span(s, name, attrs)


def timed_span(name: str, **attrs: Any):
    """A span that *always* measures wall time (``time.perf_counter``).

    Emits a trace event only when tracing is enabled, but ``.elapsed``
    is valid either way — this is what :mod:`repro.core.generator` uses
    to fill :class:`~repro.core.generator.GenStats` phase times.
    """
    s = _sink
    if s is None:
        return _Timer()
    return Span(s, name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit an instantaneous point event (no-op when disabled)."""
    s = _sink
    if s is None:
        return
    rec: dict[str, Any] = {
        "ev": "point", "name": name,
        "pid": s.stack[-1] if s.stack else 0,
        "t": round(s.now(), 9),
    }
    if attrs:
        rec.update(attrs)
    s.write(rec)


def enabled() -> bool:
    """True when a trace sink is installed."""
    return _sink is not None


def enable(target: str | os.PathLike | IO[str],
           reset_metrics: bool = True) -> None:
    """Install the process-global trace sink.

    ``target`` is a path (opened line-buffered for writing) or an open
    text file object.  Metrics are reset by default so a trace carries
    only its own run's counters.
    """
    global _sink
    if _sink is not None:
        disable()
    if hasattr(target, "write"):
        sink = _Sink(target, getattr(target, "name", None), owns=False)
    else:
        path = os.fspath(target)
        sink = _Sink(open(path, "w", buffering=1), path, owns=True)
    sink.write({"ev": "meta", "schema": SCHEMA_VERSION,
                "clock": "perf_counter", "pid": os.getpid()})
    if reset_metrics:
        from repro.obs import metrics
        metrics.reset()
    _sink = sink


def disable(write_metrics: bool = True) -> None:
    """Remove the sink; optionally append the final metrics snapshot."""
    global _sink
    s = _sink
    if s is None:
        return
    if write_metrics:
        from repro.obs import metrics
        snap = metrics.snapshot()
        if any(snap.values()):
            s.write({"ev": "metrics", **snap})
    _sink = None
    s.close()


def detach() -> None:
    """Drop the sink without flushing or closing its file.

    For forked worker processes: they inherit the parent's ``_sink``
    (and its file descriptor), and both closing it and writing spans to
    it would corrupt the parent's trace.  Detaching makes the child's
    tracing a no-op while the parent keeps the file; the executor
    returns per-shard metrics snapshots instead.
    """
    global _sink
    _sink = None


def configure_from_env() -> bool:
    """Honor ``REPRO_TRACE=path.jsonl``; returns True when enabled.

    Registers an atexit hook so env-configured runs that never call
    :func:`disable` still append the final metrics snapshot.
    """
    path = os.environ.get("REPRO_TRACE")
    if path:
        import atexit
        enable(path)
        atexit.register(disable)
        return True
    return False


configure_from_env()
