"""Benchmark registry, runner, and append-only performance trajectory.

The paper's evaluation is entirely quantitative (Table 1/2 correctness,
Figure 3/4 speedups, Table 3 generation effort); this module makes the
reproduction's own performance claims equally durable.  Three pieces:

* **Registry** — benchmarks declare themselves with
  ``@benchmark("batch_throughput", suite="quick", floors={...})``.
  The decorated function is a plain zero-argument callable returning a
  ``{gauge_name: value}`` dict, so the same body serves the pytest
  wrapper in ``benchmarks/bench_*.py`` *and* the CLI runner
  (``python -m repro bench run``).  :func:`discover` imports every
  ``benchmarks/bench_*.py`` to populate the registry.
* **Runner** — each benchmark executes with a reset metrics registry
  and hardened timing (:mod:`repro.obs.timing` discipline for micro
  benches; a single monotonic wall clock for macro benches), floors are
  checked (optionally behind a ``gate`` predicate — e.g. the parallel
  scaling floor only applies where 4 CPUs exist), and the per-benchmark
  gauges + full metrics snapshot land in one structured record.
* **Trajectory store** — records append to ``BENCH_<host>.json`` at the
  repo root, one JSON object per line, *append-only* (see DESIGN.md:
  history is never rewritten; a bad record is superseded by appending,
  not edited).  Each record carries the git SHA, timestamp, environment
  fingerprint, per-benchmark gauges and metrics.  :func:`compare`
  flags any tracked metric drifting more than ``k``·MAD (with a
  relative-change floor) from its trailing window — exit-code gated for
  CI via ``tools/check_bench.py``.
"""

from __future__ import annotations

import importlib.util
import json
import math
import os
import pathlib
import platform
import re
import statistics
import subprocess
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.obs import metrics
from repro.obs.timing import MAD_SIGMA_SCALE, mad

__all__ = ["benchmark", "Benchmark", "BenchResult", "Regression",
           "REGISTRY", "discover", "run_selected", "select", "suites",
           "emit_report", "default_root", "host_label", "trajectory_path",
           "append_record", "load_trajectory", "load_history",
           "compare", "metric_direction", "git_sha", "OUT_DIR_NAME"]

SCHEMA_VERSION = 1
OUT_DIR_NAME = "benchmarks/out"

#: Default regression-detection knobs: a metric regresses when it moves
#: against its direction by more than max(K_MAD scaled MADs of the
#: trailing window, REL_FLOOR of the window median).  The relative
#: floor keeps single-sample windows (MAD 0) meaningful and absorbs
#: ordinary scheduler noise; 4 MADs ~= 2.7 sigma.
DEFAULT_K_MAD = 4.0
DEFAULT_REL_FLOOR = 0.25
DEFAULT_WINDOW = 8


# --------------------------------------------------------------------------
# registry


@dataclass(frozen=True)
class Benchmark:
    """A registered benchmark: metadata + the measurement callable."""

    name: str
    func: Callable[[], dict[str, float] | None]
    suite: str = "full"
    #: gauge-name -> minimum acceptable value (checked after each run).
    floors: dict[str, float] = field(default_factory=dict)
    #: optional predicate; floors are enforced only when it returns True
    #: (e.g. the parallel-scaling floor needs >= 4 CPUs).
    gate: Callable[[], bool] | None = None
    doc: str = ""

    def floors_apply(self) -> bool:
        return self.gate is None or bool(self.gate())


REGISTRY: dict[str, Benchmark] = {}


def benchmark(name: str, suite: str = "full",
              floors: dict[str, float] | None = None,
              gate: Callable[[], bool] | None = None):
    """Register a benchmark; returns the function unchanged.

    The function must be a zero-argument callable returning a flat
    ``{gauge: float}`` dict (or ``None``).  Re-registration under the
    same name replaces the entry (modules may be re-imported by pytest
    and the CLI in one process).
    """

    def deco(func):
        REGISTRY[name] = Benchmark(
            name=name, func=func, suite=suite, floors=dict(floors or {}),
            gate=gate, doc=(func.__doc__ or "").strip().splitlines()[0]
            if func.__doc__ else "")
        return func

    return deco


def default_root() -> pathlib.Path:
    """The repository root: env override, pyproject walk-up, or source."""
    env = os.environ.get("REPRO_BENCH_ROOT")
    if env:
        return pathlib.Path(env)
    cur = pathlib.Path.cwd()
    for cand in (cur, *cur.parents):
        if (cand / "pyproject.toml").exists() \
                and (cand / "benchmarks").is_dir():
            return cand
    return pathlib.Path(__file__).resolve().parents[3]


def discover(bench_dir: str | os.PathLike | None = None) -> dict[str, Benchmark]:
    """Import every ``benchmarks/bench_*.py`` to populate the registry."""
    d = pathlib.Path(bench_dir) if bench_dir is not None \
        else default_root() / "benchmarks"
    if not d.is_dir():
        raise FileNotFoundError(f"benchmark directory not found: {d}")
    path = str(d.resolve())
    if path not in sys.path:
        # bench modules do `from conftest import emit`
        sys.path.insert(0, path)
    for f in sorted(d.glob("bench_*.py")):
        mod_name = f.stem
        if mod_name in sys.modules:
            continue
        spec = importlib.util.spec_from_file_location(mod_name, f)
        if spec is None or spec.loader is None:
            raise ImportError(f"cannot load benchmark module {f}")
        module = importlib.util.module_from_spec(spec)
        sys.modules[mod_name] = module
        spec.loader.exec_module(module)
    return REGISTRY


def suites() -> list[str]:
    return sorted({b.suite for b in REGISTRY.values()})


def select(suite: str | None = None,
           names: Sequence[str] | None = None) -> list[Benchmark]:
    """Benchmarks matching a suite (``all`` = everything) or name list."""
    if names:
        missing = [n for n in names if n not in REGISTRY]
        if missing:
            raise KeyError(f"unknown benchmark(s) {missing}; "
                           f"known: {sorted(REGISTRY)}")
        return [REGISTRY[n] for n in names]
    out = [b for n, b in sorted(REGISTRY.items())
           if suite in (None, "all", b.suite)]
    if not out:
        raise KeyError(f"no benchmarks in suite {suite!r}; "
                       f"suites: {suites()}")
    return out


# --------------------------------------------------------------------------
# report emission (shared with benchmarks/conftest.py)


def emit_report(name: str, text: str,
                out_dir: str | os.PathLike | None = None) -> None:
    """Print a report block, persist it, and attach a metrics sidecar."""
    d = pathlib.Path(out_dir) if out_dir is not None \
        else default_root() / OUT_DIR_NAME
    d.mkdir(parents=True, exist_ok=True)
    print()
    print(text)
    (d / name).write_text(text)
    snap = metrics.snapshot()
    if any(snap.values()):
        stem = name.rsplit(".", 1)[0]
        (d / f"{stem}.metrics.json").write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n")


# --------------------------------------------------------------------------
# runner


@dataclass
class BenchResult:
    """One benchmark execution inside a run."""

    name: str
    suite: str
    wall_s: float
    gauges: dict[str, float]
    metrics: dict[str, Any]
    ok: bool = True
    error: str | None = None
    floor_failures: list[str] = field(default_factory=list)

    def tracked_metrics(self) -> dict[str, float]:
        """The metrics the trajectory compares: wall time + gauges."""
        out = {"wall_s": self.wall_s}
        out.update(self.gauges)
        return out


def git_sha(root: pathlib.Path | None = None) -> str:
    """Short HEAD SHA of the repo, or 'unknown' outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root or default_root()), capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def host_label() -> str:
    """Filesystem-safe host identifier for the trajectory filename."""
    env = os.environ.get("REPRO_BENCH_HOST")
    raw = env if env else platform.node()
    clean = re.sub(r"[^A-Za-z0-9_.-]", "-", raw).strip("-.")
    return clean or "unknown"


def _env_fingerprint() -> dict[str, Any]:
    import numpy
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:
        cpus = os.cpu_count() or 1
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": cpus,
        "numpy": numpy.__version__,
    }


def run_selected(benches: Sequence[Benchmark],
                 suite_label: str = "custom",
                 profile: float | None = None) -> tuple[list[BenchResult],
                                                        dict[str, Any]]:
    """Execute benchmarks and build a trajectory record.

    Each benchmark runs with a freshly reset metrics registry so its
    snapshot is self-contained.  A failing benchmark is recorded
    (``ok=False`` with the traceback) and the run continues — a broken
    bench must never silence the others' trajectory points.  When
    ``profile`` is set, a :class:`repro.obs.profile.Profiler` with that
    sampling interval wraps each benchmark and its phase/sample gauges
    join the snapshot.
    """
    from repro.obs.profile import Profiler

    results: list[BenchResult] = []
    for b in benches:
        metrics.reset()
        prof = Profiler(interval=profile).start() if profile else None
        t0 = time.perf_counter_ns()
        gauges: dict[str, float] = {}
        ok, err = True, None
        try:
            out = b.func()
            if out:
                gauges = {str(k): float(v) for k, v in out.items()}
        except Exception:
            ok, err = False, traceback.format_exc()
        wall_s = (time.perf_counter_ns() - t0) / 1e9
        if prof is not None:
            prof.stop()
            prof.publish_gauges()
        res = BenchResult(name=b.name, suite=b.suite, wall_s=wall_s,
                          gauges=gauges, metrics=metrics.snapshot(),
                          ok=ok, error=err)
        if ok and b.floors and b.floors_apply():
            for key, floor in sorted(b.floors.items()):
                got = gauges.get(key)
                if got is None:
                    res.floor_failures.append(
                        f"{key}: floor {floor:g} but gauge missing")
                elif got < floor:
                    res.floor_failures.append(
                        f"{key}: {got:g} below floor {floor:g}")
        results.append(res)
    record = {
        "schema": SCHEMA_VERSION,
        "ts": time.time(),
        "sha": git_sha(),
        "host": host_label(),
        "suite": suite_label,
        "env": _env_fingerprint(),
        "benchmarks": {
            r.name: {
                "suite": r.suite, "wall_s": r.wall_s, "ok": r.ok,
                "gauges": r.gauges, "floor_failures": r.floor_failures,
                **({"error": r.error} if r.error else {}),
                "metrics": r.metrics,
            } for r in results
        },
    }
    return results, record


# --------------------------------------------------------------------------
# trajectory store (append-only JSONL in BENCH_<host>.json)


def trajectory_path(root: str | os.PathLike | None = None,
                    host: str | None = None) -> pathlib.Path:
    r = pathlib.Path(root) if root is not None else default_root()
    return r / f"BENCH_{host or host_label()}.json"


def append_record(record: dict[str, Any],
                  path: str | os.PathLike) -> None:
    """Append one record; the file is never rewritten (DESIGN.md)."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "a") as fh:
        fh.write(json.dumps(record, separators=(",", ":"),
                            sort_keys=True) + "\n")


def load_trajectory(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Records of one trajectory file, oldest first (append order)."""
    records = []
    with open(os.fspath(path)) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(
                    f"{path}:{lineno}: bad trajectory line: {e}") from e
    return records


def load_history(root: str | os.PathLike | None = None,
                 host: str | None = None) -> list[dict[str, Any]]:
    """All known records, sorted by timestamp.

    Prefers the current host's ``BENCH_<host>.json``; when that file
    does not exist (CI machines have unstable hostnames) every
    ``BENCH_*.json`` at the root is merged, so a committed trajectory
    seeded on another machine still anchors the comparison.
    """
    r = pathlib.Path(root) if root is not None else default_root()
    own = trajectory_path(r, host)
    paths = [own] if own.exists() else sorted(r.glob("BENCH_*.json"))
    records: list[dict[str, Any]] = []
    for p in paths:
        records.extend(load_trajectory(p))
    records.sort(key=lambda rec: rec.get("ts", 0.0))
    return records


# --------------------------------------------------------------------------
# regression detection


def metric_direction(name: str) -> str | None:
    """'lower'/'higher' = which way is better; None = not compared."""
    n = name.lower()
    if ("speedup" in n or "hit_rate" in n or "throughput" in n
            or "utilization" in n or n.endswith("_eps") or n == "eps"):
        return "higher"
    if (n.endswith("_s") or n.endswith("_ns") or n.endswith("_seconds")
            or "time" in n):
        return "lower"
    return None


@dataclass(frozen=True)
class Regression:
    """One metric that drifted beyond its statistical envelope."""

    benchmark: str
    metric: str
    value: float
    baseline: float
    threshold: float
    direction: str
    n_history: int

    def describe(self) -> str:
        arrow = "above" if self.direction == "lower" else "below"
        return (f"{self.benchmark}.{self.metric}: {self.value:g} is "
                f"{arrow} the trailing median {self.baseline:g} by more "
                f"than {self.threshold:g} "
                f"(window of {self.n_history})")


def _bench_metrics(record: dict[str, Any],
                   name: str) -> dict[str, float] | None:
    slot = record.get("benchmarks", {}).get(name)
    if slot is None or not slot.get("ok", True):
        return None
    out = {"wall_s": slot.get("wall_s", 0.0)}
    out.update(slot.get("gauges", {}))
    return out


def compare(history: Sequence[dict[str, Any]],
            candidate: dict[str, Any] | None = None,
            k_mad: float = DEFAULT_K_MAD,
            rel_floor: float = DEFAULT_REL_FLOOR,
            window: int = DEFAULT_WINDOW) -> list[Regression]:
    """Flag candidate metrics drifting beyond the trailing window.

    ``candidate`` defaults to the newest record in ``history`` (which
    is then excluded from its own baseline).  Only metrics with a known
    direction (:func:`metric_direction`) participate; a metric with no
    prior observations is new and passes by definition.
    """
    records = list(history)
    if candidate is None:
        if not records:
            return []
        candidate = records[-1]
        records = records[:-1]
    out: list[Regression] = []
    for bench_name, slot in sorted(candidate.get("benchmarks", {}).items()):
        if not slot.get("ok", True):
            continue
        cand = _bench_metrics(candidate, bench_name) or {}
        for metric_name, value in sorted(cand.items()):
            direction = metric_direction(metric_name)
            if direction is None or not isinstance(value, (int, float)) \
                    or not math.isfinite(value):
                continue
            past = []
            for rec in reversed(records):
                m = _bench_metrics(rec, bench_name)
                if m is None:
                    continue
                prev = m.get(metric_name)
                if isinstance(prev, (int, float)) and math.isfinite(prev):
                    past.append(float(prev))
                if len(past) >= window:
                    break
            if not past:
                continue
            med = statistics.median(past)
            spread = mad(past, med) * MAD_SIGMA_SCALE
            threshold = max(k_mad * spread, rel_floor * abs(med))
            if threshold <= 0.0:
                continue
            if direction == "lower" and value > med + threshold:
                out.append(Regression(bench_name, metric_name, float(value),
                                      med, threshold, direction, len(past)))
            elif direction == "higher" and value < med - threshold:
                out.append(Regression(bench_name, metric_name, float(value),
                                      med, threshold, direction, len(past)))
    return out


# --------------------------------------------------------------------------
# rendering


def _iso(ts: float) -> str:
    import datetime
    return datetime.datetime.fromtimestamp(
        ts, tz=datetime.timezone.utc).strftime("%Y-%m-%d %H:%M:%SZ")


def render_run(results: Sequence[BenchResult],
               title: str = "benchmark run") -> str:
    from repro.obs.report import format_table
    rows = []
    for r in results:
        status = "ok" if r.ok else "ERROR"
        if r.floor_failures:
            status = "FLOOR"
        key_gauges = ", ".join(
            f"{k.rsplit('.', 1)[-1]}={v:g}"
            for k, v in sorted(r.gauges.items())[:4])
        rows.append([r.name, r.suite, f"{r.wall_s:.2f}", status,
                     key_gauges])
    return format_table(["benchmark", "suite", "wall(s)", "status",
                         "gauges"], rows, title=title,
                        aligns="llrll")


def render_compare(regressions: Sequence[Regression],
                   n_history: int, title: str = "trajectory compare") -> str:
    if not regressions:
        return (f"{title}\nno regressions: every tracked metric is inside "
                f"its k*MAD envelope ({n_history} prior record(s))\n")
    lines = [title]
    lines += ["  REGRESSION " + r.describe() for r in regressions]
    return "\n".join(lines) + "\n"


def render_history(records: Sequence[dict[str, Any]],
                   bench_name: str | None = None,
                   metric: str | None = None) -> str:
    from repro.obs.report import format_table
    if not records:
        return "trajectory history\n(no records)\n"
    if bench_name and metric:
        rows = []
        for rec in records:
            m = _bench_metrics(rec, bench_name)
            if m is None or metric not in m:
                continue
            rows.append([_iso(rec.get("ts", 0.0)), rec.get("sha", "?"),
                         rec.get("suite", "?"), f"{m[metric]:g}"])
        return format_table(["when", "sha", "suite", metric], rows,
                            title=f"history: {bench_name}.{metric}",
                            aligns="lllr")
    rows = []
    for rec in records:
        benches = rec.get("benchmarks", {})
        n_ok = sum(1 for b in benches.values() if b.get("ok", True))
        rows.append([_iso(rec.get("ts", 0.0)), rec.get("sha", "?"),
                     rec.get("suite", "?"), rec.get("host", "?"),
                     f"{n_ok}/{len(benches)}"])
    return format_table(["when", "sha", "suite", "host", "ok"], rows,
                        title="trajectory history")


def render_list(registry: dict[str, Benchmark] | None = None) -> str:
    from repro.obs.report import format_table
    reg = registry if registry is not None else REGISTRY
    rows = []
    for name, b in sorted(reg.items()):
        floors = ", ".join(f"{k}>={v:g}" for k, v in sorted(b.floors.items()))
        if floors and b.gate is not None:
            floors += " (gated)"
        rows.append([name, b.suite, floors or "-", b.doc])
    return format_table(["benchmark", "suite", "floors", "description"],
                        rows, title="registered benchmarks",
                        aligns="llll")
