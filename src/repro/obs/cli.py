"""CLI for the performance-telemetry layer: ``repro bench`` / ``repro report``.

``bench`` drives the registry + trajectory store in
:mod:`repro.obs.bench`:

* ``bench list`` — discovered benchmarks, suites, floors;
* ``bench run --suite quick`` — execute, print the run table, append a
  record to ``BENCH_<host>.json`` (``--no-append`` / ``--record`` for
  CI runs that must not touch the committed trajectory);
* ``bench compare`` — statistical regression gate: non-zero exit when
  any tracked metric drifted > k·MAD (with a relative floor) from its
  trailing window;
* ``bench history`` — the trajectory as a table, optionally one
  ``--benchmark/--metric`` series;
* ``bench export`` — the newest record's metrics (or the
  ``benchmarks/out/*.metrics.json`` sidecars) in OpenMetrics text.

``report`` is the unified health summary: newest trajectory record with
drift status, cache/oracle hit-rate and worker-utilization panels from
the benchmark sidecars, and profiler phase gauges when present.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

from repro.obs import bench as B


# --------------------------------------------------------------------------
# `repro bench`


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="bench_cmd", required=True)

    p = sub.add_parser("list", help="discovered benchmarks and suites")
    p.add_argument("--dir", default=None, metavar="ROOT",
                   help="repo root holding benchmarks/ (default: auto)")
    p.set_defaults(bench_fn=_cmd_list)

    p = sub.add_parser("run", help="run a suite and append a trajectory "
                                   "record")
    p.add_argument("--suite", default="quick",
                   help="suite to run (quick|gen|paper|scaling|all); "
                        "default quick")
    p.add_argument("--only", nargs="*", metavar="NAME",
                   help="run exactly these benchmarks (overrides --suite)")
    p.add_argument("--dir", default=None, metavar="ROOT")
    p.add_argument("--no-append", action="store_true",
                   help="do not append to the BENCH_<host>.json trajectory")
    p.add_argument("--record", metavar="PATH",
                   help="also write the run's record to PATH (JSON)")
    p.add_argument("--profile", nargs="?", const=0.005, default=None,
                   type=float, metavar="INTERVAL",
                   help="wrap each benchmark in the sampling profiler")
    p.add_argument("--export-openmetrics", metavar="PATH",
                   help="write the run's merged metrics as OpenMetrics text")
    p.set_defaults(bench_fn=_cmd_run)

    p = sub.add_parser("compare", help="flag metrics drifting from their "
                                       "trailing window (CI gate)")
    p.add_argument("--dir", default=None, metavar="ROOT")
    p.add_argument("--candidate", metavar="PATH",
                   help="compare this record file instead of the newest "
                        "trajectory record")
    p.add_argument("--k-mad", type=float, default=B.DEFAULT_K_MAD)
    p.add_argument("--rel-floor", type=float, default=B.DEFAULT_REL_FLOOR)
    p.add_argument("--window", type=int, default=B.DEFAULT_WINDOW)
    p.set_defaults(bench_fn=_cmd_compare)

    p = sub.add_parser("history", help="render the trajectory store")
    p.add_argument("--dir", default=None, metavar="ROOT")
    p.add_argument("--benchmark", metavar="NAME")
    p.add_argument("--metric", metavar="METRIC")
    p.set_defaults(bench_fn=_cmd_history)

    p = sub.add_parser("export", help="OpenMetrics text of recorded metrics")
    p.add_argument("--dir", default=None, metavar="ROOT")
    p.add_argument("--out", metavar="PATH",
                   help="write to PATH instead of stdout")
    p.add_argument("--sidecars", action="store_true",
                   help="merge benchmarks/out/*.metrics.json instead of "
                        "the newest trajectory record")
    p.set_defaults(bench_fn=_cmd_export)


def run_bench(args: argparse.Namespace) -> int:
    return args.bench_fn(args)


def _root(args: argparse.Namespace) -> pathlib.Path:
    return pathlib.Path(args.dir) if args.dir else B.default_root()


def _cmd_list(args: argparse.Namespace) -> int:
    B.discover(_root(args) / "benchmarks")
    print(B.render_list())
    print(f"suites: {', '.join(B.suites())}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    root = _root(args)
    B.discover(root / "benchmarks")
    try:
        benches = B.select(suite=None if args.only else args.suite,
                           names=args.only)
    except KeyError as e:
        print(f"bench run: {e.args[0]}", file=sys.stderr)
        return 2
    label = "custom" if args.only else args.suite
    results, record = B.run_selected(benches, suite_label=label,
                                     profile=args.profile)
    print(B.render_run(results, title=f"benchmark run: suite={label} "
                                      f"sha={record['sha']}"))
    failed = False
    for r in results:
        if not r.ok:
            failed = True
            print(f"ERROR {r.name} failed:\n{r.error}", file=sys.stderr)
        for f in r.floor_failures:
            failed = True
            print(f"FLOOR {r.name}: {f}", file=sys.stderr)
    if args.record:
        pathlib.Path(args.record).write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"record written to {args.record}", file=sys.stderr)
    if not args.no_append:
        path = B.trajectory_path(root)
        B.append_record(record, path)
        print(f"trajectory record appended to {path}", file=sys.stderr)
    if args.export_openmetrics:
        from repro.obs.export import merge_many, render_openmetrics
        merged = merge_many(r.metrics for r in results)
        pathlib.Path(args.export_openmetrics).write_text(
            render_openmetrics(merged))
        print(f"OpenMetrics written to {args.export_openmetrics}",
              file=sys.stderr)
    return 1 if failed else 0


def _cmd_compare(args: argparse.Namespace) -> int:
    root = _root(args)
    try:
        history = B.load_history(root)
    except (OSError, ValueError) as e:
        print(f"bench compare: {e}", file=sys.stderr)
        return 2
    candidate = None
    if args.candidate:
        try:
            with open(args.candidate) as fh:
                candidate = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench compare: bad candidate: {e}", file=sys.stderr)
            return 2
    if not history and candidate is None:
        print("bench compare: no trajectory records found "
              f"(looked for BENCH_*.json under {root})", file=sys.stderr)
        return 2
    n_prior = len(history) - (0 if candidate is not None else 1)
    regs = B.compare(history, candidate, k_mad=args.k_mad,
                     rel_floor=args.rel_floor, window=args.window)
    print(B.render_compare(regs, max(n_prior, 0)))
    return 1 if regs else 0


def _cmd_history(args: argparse.Namespace) -> int:
    try:
        records = B.load_history(_root(args))
    except (OSError, ValueError) as e:
        print(f"bench history: {e}", file=sys.stderr)
        return 2
    if bool(args.benchmark) != bool(args.metric):
        print("bench history: --benchmark and --metric go together",
              file=sys.stderr)
        return 2
    print(B.render_history(records, args.benchmark, args.metric))
    return 0


def _latest_record_metrics(root: pathlib.Path) -> dict[str, Any]:
    from repro.obs.export import merge_many
    records = B.load_history(root)
    if not records:
        return {}
    latest = records[-1]
    return merge_many(
        slot.get("metrics", {})
        for slot in latest.get("benchmarks", {}).values())


def _sidecar_metrics(root: pathlib.Path) -> dict[str, Any]:
    from repro.obs.export import merge_many
    out_dir = root / B.OUT_DIR_NAME
    snaps = []
    for p in sorted(out_dir.glob("*.metrics.json")):
        try:
            snaps.append(json.loads(p.read_text()))
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping sidecar {p.name}: {e}",
                  file=sys.stderr)
    return merge_many(snaps)


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.obs.export import render_openmetrics
    root = _root(args)
    snap = (_sidecar_metrics(root) if args.sidecars
            else _latest_record_metrics(root))
    if not snap or not any(snap.values()):
        print("bench export: no recorded metrics found", file=sys.stderr)
        return 2
    text = render_openmetrics(snap)
    if args.out:
        pathlib.Path(args.out).write_text(text)
        print(f"OpenMetrics written to {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


# --------------------------------------------------------------------------
# `repro report`


def add_report_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dir", default=None, metavar="ROOT",
                        help="repo root (default: auto-detected)")
    parser.add_argument("--window", type=int, default=B.DEFAULT_WINDOW)
    parser.add_argument("--no-panels", action="store_true",
                        help="skip the sidecar-derived hit-rate/"
                             "utilization panels")


def _gauge_panel(gauges: dict[str, float], patterns: tuple[str, ...],
                 title: str) -> str | None:
    from repro.obs.report import format_table
    rows = [[n, f"{v:g}"] for n, v in sorted(gauges.items())
            if any(p in n for p in patterns)]
    if not rows:
        return None
    return format_table(["gauge", "value"], rows, title=title, aligns="lr")


def run_report(args: argparse.Namespace) -> int:
    root = pathlib.Path(args.dir) if args.dir else B.default_root()
    parts: list[str] = []

    # -- trajectory health ---------------------------------------------
    try:
        records = B.load_history(root)
    except (OSError, ValueError) as e:
        print(f"report: {e}", file=sys.stderr)
        return 2
    if records:
        latest = records[-1]
        from repro.obs.report import format_table
        rows = []
        regs = B.compare(records, window=args.window)
        flagged = {(r.benchmark, r.metric) for r in regs}
        for name, slot in sorted(latest.get("benchmarks", {}).items()):
            status = "ok" if slot.get("ok", True) else "ERROR"
            if slot.get("floor_failures"):
                status = "FLOOR"
            if any(b == name for b, _ in flagged):
                status = "DRIFT"
            gauges = slot.get("gauges", {})
            key = ", ".join(f"{k.rsplit('.', 1)[-1]}={v:g}"
                            for k, v in sorted(gauges.items())[:4])
            rows.append([name, f"{slot.get('wall_s', 0.0):.2f}", status,
                         key])
        parts.append(format_table(
            ["benchmark", "wall(s)", "status", "gauges"], rows,
            title=f"latest trajectory record — sha {latest.get('sha', '?')}"
                  f", suite {latest.get('suite', '?')}, "
                  f"host {latest.get('host', '?')}",
            aligns="lrll"))
        parts.append(B.render_compare(regs, max(len(records) - 1, 0),
                                      title="drift vs trailing window"))
    else:
        parts.append("no trajectory records yet — run "
                     "`python -m repro bench run --suite quick`\n")

    # -- hit-rate / utilization / profile panels ------------------------
    if not args.no_panels:
        merged = _sidecar_metrics(root)
        gauges = merged.get("gauges", {}) if merged else {}
        counters = merged.get("counters", {}) if merged else {}
        panel = _gauge_panel(gauges, ("hit_rate", "fast_certified"),
                             "cache / oracle")
        if panel:
            parts.append(panel)
        hits, misses = counters.get("cache.hit", 0), counters.get(
            "cache.miss", 0)
        if hits or misses:
            parts.append(f"cache store counters: {hits} hits / "
                         f"{misses} misses "
                         f"({hits / (hits + misses):.1%} hit rate)\n")
        panel = _gauge_panel(gauges, ("parallel.pool.", "speedup"),
                             "parallel executor")
        if panel:
            parts.append(panel)
        prof = {n: v for n, v in gauges.items()
                if n.startswith("profile.")}
        if prof:
            phase_ns = {n.split("profile.phase.", 1)[1].rsplit("_s", 1)[0]:
                        int(v * 1e9) for n, v in prof.items()
                        if n.startswith("profile.phase.")}
            if phase_ns:
                from repro.obs.profile import render_phase_report
                parts.append(render_phase_report(
                    {"phase_ns": phase_ns,
                     "wall_s": prof.get("profile.wall_s", 0.0)},
                    title="profiler phases (from sidecars)"))

    print("\n".join(parts))
    return 0
