"""Opt-in low-overhead profiler with pipeline-phase attribution.

Two complementary mechanisms, both strictly opt-in (the shipped hot
paths pay one module-global ``is None`` test when profiling is off,
the same discipline as :mod:`repro.obs.events`):

* **Phase accounting** — instrumented code brackets its pipeline
  stages with ``with profile.phase("reduce"):``.  When a profiler is
  active each bracket adds an integer-nanosecond delta into a per-phase
  accumulator, giving *deterministic* wall-time attribution for the
  batch engine's stages (``special → reduce → horner → compensate →
  round``) at a cost of two clock reads per stage per *batch* (never
  per element).  When no profiler is active, :func:`phase` returns the
  shared no-op context manager.
* **Sampling** — a daemon thread (or, opportunistically, a SIGALRM
  timer via ``mode="signal"``) wakes every ``interval`` seconds and
  records (a) the phase currently on top of the phase stack and (b)
  the code location at the top of the main thread's stack.  Sampling
  sees the time *between* phase brackets too — the "where did the rest
  go" signal phase accounting cannot give — at an overhead bounded by
  the sample rate, not by the workload.

The combined report (:meth:`Profiler.report`) and the published gauges
(``profile.phase.<name>_s``, ``profile.samples.<phase>``) feed
``python -m repro report``.  The instrumentation budget is <5% end to
end on the batch-throughput workload; ``tests/test_obs_profile.py``
asserts it.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any

__all__ = ["Profiler", "phase", "active", "start", "stop", "NOOP_PHASE",
           "render_phase_report"]


class _NoopPhase:
    """Shared do-nothing phase bracket used while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopPhase":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NOOP_PHASE = _NoopPhase()

_active: "Profiler | None" = None


class _PhaseSpan:
    """A live phase bracket: pushes on the stack, accumulates ns."""

    __slots__ = ("_prof", "name", "_t0")

    def __init__(self, prof: "Profiler", name: str):
        self._prof = prof
        self.name = name

    def __enter__(self) -> "_PhaseSpan":
        p = self._prof
        p.stack.append(self.name)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        dt = time.perf_counter_ns() - self._t0
        p = self._prof
        if p.stack and p.stack[-1] == self.name:
            p.stack.pop()
        p.phase_ns[self.name] = p.phase_ns.get(self.name, 0) + dt
        p.phase_calls[self.name] = p.phase_calls.get(self.name, 0) + 1
        return False


def phase(name: str):
    """Bracket a pipeline stage; the shared no-op when profiling is off."""
    p = _active
    if p is None:
        return NOOP_PHASE
    return _PhaseSpan(p, name)


class Profiler:
    """Sampling profiler + phase accountant.

    ``interval`` is the sampling period in seconds (0 disables the
    sampler entirely — phase accounting still works).  ``mode`` is
    ``"thread"`` (portable default) or ``"signal"`` (SIGALRM; main
    thread only, falls back to the thread sampler if the itimer cannot
    be installed).
    """

    def __init__(self, interval: float = 0.005, mode: str = "thread"):
        if mode not in ("thread", "signal"):
            raise ValueError(f"unknown profiler mode {mode!r}")
        self.interval = interval
        self.mode = mode
        self.stack: list[str] = []
        self.phase_ns: dict[str, int] = {}
        self.phase_calls: dict[str, int] = {}
        self.samples: dict[str, int] = {}
        self.locations: dict[str, int] = {}
        self.n_samples = 0
        self._t_started = 0.0
        self.wall_s = 0.0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._main_ident = threading.main_thread().ident
        self._signal_installed = False

    # -- sampling -------------------------------------------------------

    def _take_sample(self) -> None:
        self.n_samples += 1
        top = self.stack[-1] if self.stack else "(no phase)"
        self.samples[top] = self.samples.get(top, 0) + 1
        frame = sys._current_frames().get(self._main_ident)
        if frame is not None:
            code = frame.f_code
            loc = f"{code.co_filename.rsplit('/', 1)[-1]}:{code.co_name}"
            self.locations[loc] = self.locations.get(loc, 0) + 1

    def _sampler_loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._take_sample()

    def _on_alarm(self, signum: int, frame: Any) -> None:
        self.n_samples += 1
        top = self.stack[-1] if self.stack else "(no phase)"
        self.samples[top] = self.samples.get(top, 0) + 1
        if frame is not None:
            code = frame.f_code
            loc = f"{code.co_filename.rsplit('/', 1)[-1]}:{code.co_name}"
            self.locations[loc] = self.locations.get(loc, 0) + 1

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "Profiler":
        global _active
        if _active is not None:
            raise RuntimeError("a profiler is already active")
        self._t_started = time.perf_counter()
        self._stop.clear()
        if self.interval and self.mode == "signal":
            self._signal_installed = self._try_install_signal()
        if self.interval and not self._signal_installed:
            self._thread = threading.Thread(
                target=self._sampler_loop, name="repro-profiler",
                daemon=True)
            self._thread.start()
        _active = self
        return self

    def _try_install_signal(self) -> bool:
        if threading.current_thread() is not threading.main_thread():
            return False
        import signal
        try:
            self._prev_handler = signal.signal(signal.SIGALRM,
                                               self._on_alarm)
            signal.setitimer(signal.ITIMER_REAL, self.interval,
                             self.interval)
        except (ValueError, OSError, AttributeError):
            return False
        return True

    def stop(self) -> "Profiler":
        global _active
        if _active is not self:
            raise RuntimeError("this profiler is not the active one")
        self.wall_s += time.perf_counter() - self._t_started
        if self._signal_installed:
            import signal
            signal.setitimer(signal.ITIMER_REAL, 0.0, 0.0)
            signal.signal(signal.SIGALRM, self._prev_handler)
            self._signal_installed = False
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        _active = None
        return self

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    # -- results --------------------------------------------------------

    def publish_gauges(self) -> None:
        """Write phase times and sample shares into the metrics registry."""
        from repro.obs import metrics
        for name, ns in self.phase_ns.items():
            metrics.gauge(f"profile.phase.{name}_s").set(ns / 1e9)
        total = self.n_samples
        if total:
            for name, count in self.samples.items():
                metrics.gauge(f"profile.samples.{name}").set(count / total)
        metrics.gauge("profile.wall_s").set(self.wall_s)
        metrics.gauge("profile.n_samples").set(float(total))

    def report(self, title: str = "profile") -> str:
        return render_phase_report(
            {"phase_ns": dict(self.phase_ns),
             "phase_calls": dict(self.phase_calls),
             "samples": dict(self.samples),
             "locations": dict(self.locations),
             "n_samples": self.n_samples, "wall_s": self.wall_s},
            title=title)


def render_phase_report(data: dict[str, Any],
                        title: str = "profile") -> str:
    """Render phase accounting + sample attribution as tables."""
    from repro.obs.report import format_table
    phase_ns = data.get("phase_ns", {})
    wall_s = data.get("wall_s", 0.0)
    parts = []
    if phase_ns:
        total_ns = sum(phase_ns.values())
        rows = []
        for name in sorted(phase_ns, key=phase_ns.get, reverse=True):
            ns = phase_ns[name]
            calls = data.get("phase_calls", {}).get(name, 0)
            rows.append([name, calls, f"{ns / 1e9:.4f}",
                         f"{100.0 * ns / total_ns:.1f}%" if total_ns
                         else "0.0%"])
        foot = (f"wall {wall_s:.3f}s, phases cover "
                f"{100.0 * total_ns / 1e9 / wall_s:.1f}% of it"
                if wall_s > 0 else None)
        parts.append(format_table(["phase", "calls", "time(s)", "share"],
                                  rows, title=title, footer=foot))
    else:
        parts.append(f"{title}\n(no phase brackets hit)\n")
    n = data.get("n_samples", 0)
    samples = data.get("samples", {})
    if n and samples:
        rows = [[name, count, f"{100.0 * count / n:.1f}%"]
                for name, count in sorted(samples.items(),
                                          key=lambda kv: -kv[1])]
        parts.append(format_table(["sampled phase", "samples", "share"],
                                  rows, title=f"{title}: sampler "
                                              f"({n} samples)"))
        locs = data.get("locations", {})
        rows = [[loc, count, f"{100.0 * count / n:.1f}%"]
                for loc, count in sorted(locs.items(),
                                         key=lambda kv: -kv[1])[:12]]
        if rows:
            parts.append(format_table(["location", "samples", "share"],
                                      rows,
                                      title=f"{title}: hottest locations"))
    return "\n".join(parts)


def active() -> "Profiler | None":
    """The currently active profiler, if any."""
    return _active


def start(interval: float = 0.005, mode: str = "thread") -> Profiler:
    """Create and start a profiler (module-level convenience)."""
    return Profiler(interval=interval, mode=mode).start()


def stop() -> Profiler:
    """Stop the active profiler and return it."""
    p = _active
    if p is None:
        raise RuntimeError("no active profiler")
    return p.stop()


def configure_from_env() -> "Profiler | None":
    """Honor ``REPRO_PROFILE=interval[,mode]`` (e.g. ``0.005,thread``)."""
    spec = os.environ.get("REPRO_PROFILE")
    if not spec:
        return None
    parts = spec.split(",")
    try:
        interval = float(parts[0]) if parts[0] else 0.005
    except ValueError:
        interval = 0.005
    mode = parts[1].strip() if len(parts) > 1 else "thread"
    return start(interval=interval, mode=mode)
