"""Render a JSONL trace into Table-3-style and flame-style reports.

Consumes the event stream written by :mod:`repro.obs.events`:

* :func:`summarize` — per-function generation statistics in the shape of
  the paper's Table 3, extended with the counters the extended tech
  report (DCS-TR-754) tracks: per-phase wall time, CEG iteration counts
  and final sample sizes, LP solve counts/sizes and exact-simplex
  fallbacks, split decisions.
* :func:`render_tree` — an aggregated flame-style phase breakdown
  (spans grouped by call path, with total/self time and call counts).

Span records are written at span *exit*, so children precede parents in
the file; everything here therefore indexes the full stream before
resolving parent chains.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Sequence

__all__ = ["load_trace", "summarize", "render_summary", "render_tree",
           "render_metrics", "format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str | None = None, footer: str | None = None,
                 aligns: str | None = None) -> str:
    """Monospace table with auto-sized columns.

    ``aligns`` is one ``l``/``r`` per column (default: first column left,
    the rest right — the shape of every report in this package).  Shared
    by the trace reports here and the ``repro lint`` summaries.
    """
    srows = [[str(c) for c in row] for row in rows]
    widths = [max(len(str(h)), *(len(r[i]) for r in srows))
              if srows else len(str(h)) for i, h in enumerate(headers)]
    aligns = aligns or "l" + "r" * (len(widths) - 1)

    def fmt(cells: Sequence[str]) -> str:
        return " ".join(
            c.ljust(w) if a == "l" else c.rjust(w)
            for c, w, a in zip(cells, widths, aligns)).rstrip()

    header = fmt([str(h) for h in headers])
    lines = ([title] if title else []) + [header, "-" * len(header)]
    lines.extend(fmt(r) for r in srows)
    if footer:
        lines += ["", footer]
    return "\n".join(lines) + "\n"

#: Span names that constitute the generator's phase accounting.
PHASES = ("oracle", "reduced", "piecewise")


def load_trace(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Parse a JSONL trace; raises ValueError on a malformed line."""
    events = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: bad trace line: {e}") from e
    return events


def _span_index(events: Iterable[dict]) -> dict[int, dict]:
    return {e["sid"]: e for e in events if e.get("ev") == "span"}


def _owner_fn(rec: dict, spans: dict[int, dict]) -> str | None:
    """The ``fn`` attribute of the nearest enclosing span, if any."""
    seen = set()
    cur: dict | None = rec
    while cur is not None:
        fn = cur.get("fn")
        if fn is not None:
            return fn
        pid = cur.get("pid", 0)
        if pid in seen:  # defensive: malformed trace
            return None
        seen.add(pid)
        cur = spans.get(pid)
    return None


def _fn_slot(per_fn: dict[str, dict], fn: str) -> dict:
    slot = per_fn.get(fn)
    if slot is None:
        slot = per_fn[fn] = {
            "gen_s": 0.0, "gen_calls": 0,
            "phase_s": {},
            "ceg_rounds": 0, "ceg_violations": 0, "ceg_max_sample": 0,
            "ceg_calls": 0, "ceg_failures": 0,
            "lp_solves": 0, "lp_max_rows": 0, "lp_max_cols": 0,
            "lp_exact": 0, "lp_infeasible": 0,
            "splits": 0, "split_max_bits": 0,
        }
    return slot


def summarize(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate a trace into per-function pipeline statistics."""
    spans = _span_index(events)
    per_fn: dict[str, dict] = {}
    metrics_snap: dict | None = None
    total_s = 0.0

    for e in events:
        ev = e.get("ev")
        if ev == "metrics":
            metrics_snap = {k: v for k, v in e.items() if k != "ev"}
            continue
        if ev not in ("span", "point"):
            continue
        name = e.get("name", "")
        fn = _owner_fn(e, spans)
        if ev == "span":
            if name == "generate":
                slot = _fn_slot(per_fn, fn or "?")
                slot["gen_s"] += e.get("dur", 0.0)
                slot["gen_calls"] += 1
                total_s = max(total_s, e.get("t", 0.0) + e.get("dur", 0.0))
            elif name in PHASES and fn is not None:
                ph = _fn_slot(per_fn, fn)["phase_s"]
                ph[name] = ph.get(name, 0.0) + e.get("dur", 0.0)
            continue
        # point events
        if fn is None:
            continue
        slot = _fn_slot(per_fn, fn)
        if name == "ceg.round":
            slot["ceg_rounds"] += 1
            slot["ceg_violations"] += int(e.get("violations", 0))
            slot["ceg_max_sample"] = max(slot["ceg_max_sample"],
                                         int(e.get("sample", 0)))
        elif name == "ceg.done":
            slot["ceg_calls"] += 1
            if not e.get("ok", True):
                slot["ceg_failures"] += 1
            slot["ceg_max_sample"] = max(slot["ceg_max_sample"],
                                         int(e.get("sample", 0)))
        elif name == "lp.solve":
            slot["lp_solves"] += 1
            slot["lp_max_rows"] = max(slot["lp_max_rows"],
                                      int(e.get("rows", 0)))
            slot["lp_max_cols"] = max(slot["lp_max_cols"],
                                      int(e.get("cols", 0)))
            if e.get("backend") == "exact":
                slot["lp_exact"] += 1
            if not e.get("feasible", True):
                slot["lp_infeasible"] += 1
        elif name == "split.attempt":
            slot["splits"] += 1
            slot["split_max_bits"] = max(slot["split_max_bits"],
                                         int(e.get("index_bits", 0)))

    return {"functions": per_fn, "metrics": metrics_snap,
            "total_s": total_s}


def render_summary(summary: dict[str, Any],
                   title: str = "trace summary") -> str:
    """Table-3-style per-function report from a trace summary."""
    per_fn = summary["functions"]
    if not per_fn:
        return f"{title}\n(no generation spans in trace)\n"
    rows = []
    for fn in sorted(per_fn):
        s = per_fn[fn]
        ph = s["phase_s"]
        rows.append([fn, f"{s['gen_s']:.2f}",
                     f"{ph.get('oracle', 0.0):.2f}",
                     f"{ph.get('reduced', 0.0):.2f}",
                     f"{ph.get('piecewise', 0.0):.2f}",
                     s["ceg_rounds"], s["ceg_max_sample"], s["lp_solves"],
                     s["lp_max_rows"], s["lp_exact"]])
    return format_table(
        ["f(x)", "gen(s)", "oracle(s)", "reduce(s)", "piece(s)", "ceg-it",
         "sample", "lp-calls", "lp-rows", "exact"], rows, title=title,
        footer="(gen = wall time of the generate() span; ceg-it = counter-"
               "example rounds; sample = largest CEG sample; lp-rows = "
               "largest LP constraint matrix; exact = rational-simplex "
               "fallbacks)")


def render_tree(events: list[dict[str, Any]],
                title: str = "phase breakdown") -> str:
    """Aggregated flame-style view: spans grouped by call path."""
    spans = [e for e in events if e.get("ev") == "span"]
    if not spans:
        return f"{title}\n(no spans)\n"
    by_sid = {e["sid"]: e for e in spans}

    def path_of(e: dict) -> tuple[str, ...]:
        names: list[str] = []
        cur: dict | None = e
        guard = 0
        while cur is not None and guard < 128:
            names.append(cur["name"])
            cur = by_sid.get(cur.get("pid", 0))
            guard += 1
        return tuple(reversed(names))

    agg: dict[tuple[str, ...], dict[str, float]] = {}
    child_time: dict[tuple[str, ...], float] = {}
    for e in spans:
        p = path_of(e)
        slot = agg.setdefault(p, {"dur": 0.0, "count": 0})
        slot["dur"] += e.get("dur", 0.0)
        slot["count"] += 1
        if len(p) > 1:
            child_time[p[:-1]] = child_time.get(p[:-1], 0.0) + e.get("dur", 0.0)

    total = sum(v["dur"] for p, v in agg.items() if len(p) == 1) or 1.0
    out = [title, f"{'span':44s} {'calls':>7s} {'total(s)':>9s} "
                  f"{'self(s)':>9s} {'%':>6s}"]
    for p in sorted(agg, key=lambda p: (p[:1], -agg[p]["dur"] if len(p) == 1
                                        else 0, p)):
        v = agg[p]
        self_s = v["dur"] - child_time.get(p, 0.0)
        label = "  " * (len(p) - 1) + p[-1]
        out.append(f"{label:44s} {int(v['count']):>7d} {v['dur']:>9.3f} "
                   f"{max(self_s, 0.0):>9.3f} {100 * v['dur'] / total:>5.1f}%")
    return "\n".join(out) + "\n"


def render_metrics(snap: dict[str, Any] | None,
                   title: str = "metrics") -> str:
    """Flat rendering of a metrics snapshot (counters + histograms)."""
    if not snap or not any(snap.get(k) for k in
                           ("counters", "gauges", "histograms")):
        return f"{title}\n(no metrics recorded)\n"
    out = [title]
    for name, v in snap.get("counters", {}).items():
        out.append(f"  {name:40s} {v:>12d}")
    for name, v in snap.get("gauges", {}).items():
        out.append(f"  {name:40s} {v:>12g}")
    for name, h in snap.get("histograms", {}).items():
        mean = h["sum"] / h["count"] if h["count"] else 0.0
        out.append(f"  {name:40s} n={h['count']} mean={mean:.1f} "
                   f"({h['kind']} buckets: "
                   + ", ".join(f"{k}:{c}" for k, c in h["buckets"].items())
                   + ")")
    return "\n".join(out) + "\n"
