"""Metrics export: OpenMetrics/Prometheus text format and JSONL streams.

The :mod:`repro.obs.metrics` registry already feeds the benchmark
``*.metrics.json`` sidecars; this module gives the same snapshots two
wire formats the ROADMAP's serving layer can consume directly:

* :func:`render_openmetrics` — the Prometheus/OpenMetrics text
  exposition format, one family per instrument, terminated by
  ``# EOF``.  Dotted repro metric names (``lp.solves``) become
  sanitized family names (``repro_lp_solves``) and the *exact* original
  name rides along as a ``name`` label, so the export is lossless even
  if two dotted names sanitize to the same family.
* :func:`parse_openmetrics` — the inverse, back to a snapshot dict.
  ``parse(render(snap)) == snap`` for every snapshot the registry can
  produce (the round-trip is pinned by ``tests/test_obs_export.py``).
* :func:`append_snapshot_jsonl` / :func:`load_snapshot_jsonl` — an
  append-only JSONL stream of timestamped snapshots, the same
  record-per-line discipline as the trace files and the benchmark
  trajectory store.

Histograms keep their native buckets (``kind="log2"`` power-of-two or
``kind="exact"`` discrete) as a ``b`` label on ``*_bucket`` samples
rather than being coerced into cumulative ``le`` buckets: the log2
buckets have no faithful finite ``le`` bound for the ``neg`` bucket,
and the serving layer's scraper gets ``_count``/``_sum`` plus exact
bucket counts either way.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, IO, Iterable

__all__ = ["render_openmetrics", "parse_openmetrics",
           "append_snapshot_jsonl", "load_snapshot_jsonl",
           "sanitize_name"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str, prefix: str = "repro") -> str:
    """A legal Prometheus metric family name for a dotted repro name."""
    out = _SANITIZE.sub("_", name)
    if prefix:
        out = f"{prefix}_{out}"
    if not _NAME_OK.match(out):
        out = "_" + out
    return out


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        c = value[i]
        if c == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _fmt_value(v: float | int) -> str:
    """Render a sample value; integers stay integral for lossless parse."""
    if isinstance(v, bool):  # pragma: no cover - defensive
        return str(int(v))
    if isinstance(v, int):
        return str(v)
    return repr(v)


def render_openmetrics(snap: dict[str, Any], prefix: str = "repro") -> str:
    """Serialize a metrics snapshot to OpenMetrics text exposition.

    ``snap`` is a :func:`repro.obs.metrics.snapshot` dict.  Counters
    gain the conventional ``_total`` suffix, histograms emit
    ``_bucket``/``_count``/``_sum`` samples; every sample carries the
    original dotted name as a ``name`` label.
    """
    lines: list[str] = []
    for name, value in snap.get("counters", {}).items():
        fam = sanitize_name(name, prefix)
        lines.append(f"# TYPE {fam} counter")
        lines.append(f"{fam}_total{{name=\"{_escape_label(name)}\"}} "
                     f"{_fmt_value(value)}")
    for name, value in snap.get("gauges", {}).items():
        fam = sanitize_name(name, prefix)
        lines.append(f"# TYPE {fam} gauge")
        lines.append(f"{fam}{{name=\"{_escape_label(name)}\"}} "
                     f"{_fmt_value(value)}")
    for name, h in snap.get("histograms", {}).items():
        fam = sanitize_name(name, prefix)
        lines.append(f"# TYPE {fam} histogram")
        esc = _escape_label(name)
        kind = h.get("kind", "log2")
        for bucket, count in h.get("buckets", {}).items():
            lines.append(
                f"{fam}_bucket{{name=\"{esc}\",kind=\"{kind}\","
                f"b=\"{_escape_label(str(bucket))}\"}} {_fmt_value(count)}")
        lines.append(f"{fam}_count{{name=\"{esc}\",kind=\"{kind}\"}} "
                     f"{_fmt_value(h.get('count', 0))}")
        lines.append(f"{fam}_sum{{name=\"{esc}\",kind=\"{kind}\"}} "
                     f"{_fmt_value(h.get('sum', 0.0))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<family>[a-zA-Z_:][a-zA-Z0-9_:]*)\{(?P<labels>[^}]*)\}\s+"
    r"(?P<value>\S+)$")
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]'
                    r'|\\.)*)"')


def _parse_labels(text: str) -> dict[str, str]:
    return {m.group("key"): _unescape_label(m.group("val"))
            for m in _LABEL.finditer(text)}


def _parse_value(text: str) -> float | int:
    try:
        return int(text)
    except ValueError:
        return float(text)


def parse_openmetrics(text: str) -> dict[str, Any]:
    """Parse OpenMetrics text produced by :func:`render_openmetrics`.

    Returns a snapshot-shaped dict; unknown families (no ``name``
    label) are rejected loudly — this is a round-trip validator, not a
    general scraper.
    """
    types: dict[str, str] = {}
    snap: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: unparseable sample: {raw!r}")
        family, labels = m.group("family"), _parse_labels(m.group("labels"))
        value = _parse_value(m.group("value"))
        name = labels.get("name")
        if name is None:
            raise ValueError(f"line {lineno}: sample without name label")
        if family.endswith("_total") and types.get(family[:-6]) == "counter":
            snap["counters"][name] = value
            continue
        base, suffix = family, None
        for suf in ("_bucket", "_count", "_sum"):
            if family.endswith(suf) and types.get(family[:-len(suf)]) \
                    == "histogram":
                base, suffix = family[:-len(suf)], suf
                break
        if suffix is not None:
            slot = snap["histograms"].setdefault(
                name, {"kind": labels.get("kind", "log2"), "count": 0,
                       "sum": 0.0, "buckets": {}})
            if suffix == "_bucket":
                slot["buckets"][labels["b"]] = value
            elif suffix == "_count":
                slot["count"] = value
            else:
                slot["sum"] = float(value)
            continue
        if types.get(family) == "gauge":
            snap["gauges"][name] = float(value)
            continue
        raise ValueError(f"line {lineno}: family {family!r} has no TYPE")
    return snap


def append_snapshot_jsonl(target: str | os.PathLike | IO[str],
                          snap: dict[str, Any], ts: float | None = None,
                          **labels: Any) -> None:
    """Append one timestamped snapshot record to a JSONL stream.

    ``target`` is a path (opened in append mode) or an open text file.
    Extra keyword labels (host, suite, sha, ...) land at the record's
    top level next to ``ts`` and ``snapshot``.
    """
    if ts is None:
        import time
        ts = time.time()
    rec = {"ts": ts, **labels, "snapshot": snap}
    line = json.dumps(rec, separators=(",", ":"), sort_keys=True) + "\n"
    if hasattr(target, "write"):
        target.write(line)
    else:
        with open(os.fspath(target), "a") as fh:
            fh.write(line)


def load_snapshot_jsonl(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Read back a JSONL snapshot stream (malformed lines raise)."""
    records = []
    with open(os.fspath(path)) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(
                    f"{path}:{lineno}: bad snapshot line: {e}") from e
    return records


def merge_many(snaps: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold several snapshots into one (counters/histograms add)."""
    from repro.obs import metrics
    out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snaps:
        out = metrics.merge(out, snap)
    return out
