"""Algorithm 1: rounding intervals for any supported target representation.

The pipeline is generic in the target T — IEEE-style formats and posits
share the encode/decode API but differ in how rounding intervals behave
at the edges (posits saturate instead of overflowing).  This module
provides the single dispatch point the generator uses.
"""

from __future__ import annotations

from typing import Union

from repro.fp.formats import FloatFormat
from repro.fp.rounding import RoundingInterval, rounding_interval
from repro.posit.format import PositFormat, posit_rounding_interval

__all__ = ["TargetFormat", "target_rounding_interval", "target_is_special"]

TargetFormat = Union[FloatFormat, PositFormat]


def target_rounding_interval(fmt: TargetFormat, y_bits: int) -> RoundingInterval:
    """Rounding interval of a target value (Algorithm 1's RoundingInterval)."""
    if isinstance(fmt, PositFormat):
        return posit_rounding_interval(fmt, y_bits)
    return rounding_interval(fmt, y_bits)


def target_is_special(fmt: TargetFormat, bits: int) -> bool:
    """True for patterns with no rounding interval (NaN / NaR)."""
    if isinstance(fmt, PositFormat):
        return fmt.is_nar(bits)
    return fmt.is_nan(bits)
