"""Input samplers over target representations.

The paper samples inputs "proportional to the number of representable
values in a given input domain".  For a binary representation that is
exactly *uniform sampling over ordinals* (the monotone integer numbering
of the values), which these helpers implement for both IEEE formats and
posits.  Exhaustive enumeration is provided for the small formats used to
run the pipeline end-to-end in tests, and boundary enumeration densifies
the neighbourhoods of special-case thresholds where the 32-bit sampled
pipeline needs certainty.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from repro.core.intervals import TargetFormat
from repro.fp.formats import FloatFormat
from repro.posit.format import PositFormat

__all__ = [
    "ordinal_limit",
    "all_values",
    "sample_values",
    "boundary_values",
    "value_to_ordinal",
]


def ordinal_limit(fmt: TargetFormat) -> int:
    """Largest ordinal of a finite, non-special value (symmetric range)."""
    if isinstance(fmt, PositFormat):
        return fmt.maxpos_bits
    assert isinstance(fmt, FloatFormat)
    return fmt.inf_bits - 1


def value_to_ordinal(fmt: TargetFormat, x: float) -> int:
    """Ordinal of the format value nearest to the double ``x``."""
    return fmt.to_ordinal(fmt.from_double(x))


def all_values(fmt: TargetFormat, include_negative: bool = True) -> Iterator[float]:
    """Every finite (non-NaR) value of the format, ascending, as doubles."""
    limit = ordinal_limit(fmt)
    start = -limit if include_negative else 0
    for n in range(start, limit + 1):
        yield fmt.to_double(fmt.from_ordinal(n))


def sample_values(
    fmt: TargetFormat,
    count: int,
    rng: random.Random,
    lo: float | None = None,
    hi: float | None = None,
) -> list[float]:
    """Sorted unique values, uniform over ordinals of [lo, hi].

    ``lo``/``hi`` are doubles; they default to the format's full finite
    range.  Sampling ordinals uniformly is the paper's
    representable-value-proportional sampling.
    """
    limit = ordinal_limit(fmt)
    olo = -limit if lo is None else value_to_ordinal(fmt, lo)
    ohi = limit if hi is None else value_to_ordinal(fmt, hi)
    if olo > ohi:
        raise ValueError("empty sampling range")
    span = ohi - olo + 1
    if count >= span:
        ordinals: Iterable[int] = range(olo, ohi + 1)
    else:
        ordinals = sorted({rng.randrange(olo, ohi + 1) for _ in range(count)})
    return [fmt.to_double(fmt.from_ordinal(n)) for n in ordinals]


def boundary_values(
    fmt: TargetFormat,
    centers: Sequence[float],
    radius: int = 64,
) -> list[float]:
    """All values within ``radius`` ordinals of each center (deduplicated).

    Used to exhaustively cover the neighbourhoods of special-case
    thresholds (overflow cut-offs, domain edges, tiny-input shortcuts).
    """
    limit = ordinal_limit(fmt)
    seen: set[int] = set()
    for c in centers:
        n0 = value_to_ordinal(fmt, c)
        for n in range(max(-limit, n0 - radius), min(limit, n0 + radius) + 1):
            seen.add(n)
    return [fmt.to_double(fmt.from_ordinal(n)) for n in sorted(seen)]
