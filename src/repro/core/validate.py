"""Validation of generated functions against the oracle.

The final step of the paper's pipeline is validating the generated
piecewise polynomials over the whole input domain.  For formats small
enough to enumerate, :func:`validate` checks every input exhaustively.
For the 32-bit targets — where a pure-Python sweep of 2**32 inputs is
impractical — the sampled pipeline runs an *outer* counterexample loop
(:func:`generate_validated`): generate from the current input set,
validate against a (fresh, larger) validation set, feed any mismatching
inputs back into generation, repeat.  Inputs that participated in
generation can never mismatch (the CEG loop discharges their constraints
and monotone output compensation preserves interval membership), so the
loop only ever adds genuinely new counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.generator import (FunctionSpec, GeneratedFunction, generate,
                                  target_bits)
from repro.oracle.mpmath_oracle import Oracle, default_oracle

__all__ = ["Mismatch", "reference_bits", "validate", "generate_validated"]


@dataclass(frozen=True)
class Mismatch:
    """One wrongly rounded input."""

    x: float
    got_bits: int
    want_bits: int


def reference_bits(spec: FunctionSpec, x: float,
                   oracle: Oracle = default_oracle) -> int:
    """The correct T result for ``x``: special-case layer, else oracle."""
    s = spec.rr.special(x)
    if s is not None:
        return target_bits(spec.target, s)
    return oracle.round_to_bits(spec.name, x, spec.target)


def validate(
    fn: GeneratedFunction,
    inputs: Iterable[float],
    oracle: Oracle = default_oracle,
    limit: int | None = None,
) -> list[Mismatch]:
    """Compare the generated function to the oracle on every input.

    Returns at most ``limit`` mismatches (None = all).
    """
    bad: list[Mismatch] = []
    for x in inputs:
        got = fn.evaluate_bits(x)
        want = reference_bits(fn.spec, x, oracle)
        if got != want:
            bad.append(Mismatch(x, got, want))
            if limit is not None and len(bad) >= limit:
                break
    return bad


def generate_validated(
    spec: FunctionSpec,
    inputs: Sequence[float],
    validation_inputs: Sequence[float] | Callable[[int], Sequence[float]] = (),
    oracle: Oracle = default_oracle,
    max_rounds: int = 4,
    clean_rounds: int = 1,
) -> tuple[GeneratedFunction, int]:
    """Outer counterexample loop for sampled (32-bit) generation.

    ``validation_inputs`` is either a fixed sequence or a factory called
    with the round number — the factory variant draws *fresh* samples
    every round, so acceptance requires ``clean_rounds`` consecutive
    rounds with no mismatch on inputs the generator has never seen
    (re-validating against one fixed set would stop at the first set it
    happens to satisfy).

    Returns the generated function and the number of counterexamples
    that had to be folded back into the input set.  Raises if validation
    still finds mismatches after ``max_rounds``.
    """
    factory = (validation_inputs if callable(validation_inputs)
               else lambda _round: validation_inputs)
    work = list(inputs)
    added = 0
    clean = 0
    fn: GeneratedFunction | None = None
    for round_no in range(max_rounds):
        if fn is None:
            fn = generate(spec, work, oracle)
        bad = validate(fn, factory(round_no), oracle)
        if not bad:
            clean += 1
            if clean >= clean_rounds:
                return fn, added
            continue
        clean = 0
        work.extend(m.x for m in bad)
        added += len(bad)
        fn = None
    if fn is not None and clean > 0:
        return fn, added
    raise RuntimeError(
        f"{spec.name}: validation still failing after {max_rounds} "
        f"generation rounds ({added} counterexamples added)")
