"""Validation of generated functions against the oracle.

The final step of the paper's pipeline is validating the generated
piecewise polynomials over the whole input domain.  For formats small
enough to enumerate, :func:`validate` checks every input exhaustively.
For the 32-bit targets — where a pure-Python sweep of 2**32 inputs is
impractical — the sampled pipeline runs an *outer* counterexample loop
(:func:`generate_validated`): generate from the current input set,
validate against a (fresh, larger) validation set, feed any mismatching
inputs back into generation, repeat.  Inputs that participated in
generation can never mismatch (the CEG loop discharges their constraints
and monotone output compensation preserves interval membership), so the
loop only ever adds genuinely new counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.core.cegpoly import CEGWarmState
from repro.core.generator import (FunctionSpec, GeneratedFunction, generate,
                                  target_bits)
from repro.oracle.mpmath_oracle import Oracle, default_oracle

__all__ = ["Mismatch", "reference_bits", "validate", "generate_validated"]


@dataclass(frozen=True)
class Mismatch:
    """One wrongly rounded input."""

    x: float
    got_bits: int
    want_bits: int


def reference_bits(spec: FunctionSpec, x: float,
                   oracle: Oracle = default_oracle) -> int:
    """The correct T result for ``x``: special-case layer, else oracle."""
    s = spec.rr.special(x)
    if s is not None:
        return target_bits(spec.target, s)
    return oracle.round_to_bits(spec.name, x, spec.target)


def _evaluate_bits_all(fn, xs: list[float]) -> list[int]:
    """Every input's generated-function bits, batched when possible.

    The vectorized engine (:mod:`repro.batch`) is bit-identical to
    ``evaluate_bits`` per element, so using it here changes nothing but
    wall-clock; objects without a batch path (test doubles) fall back to
    the scalar loop.
    """
    many = getattr(fn, "evaluate_bits_many", None)
    if many is None or not xs:
        return [fn.evaluate_bits(x) for x in xs]
    import numpy as np

    return many(np.array(xs, dtype=np.float64)).tolist()


def validate(
    fn: GeneratedFunction,
    inputs: Iterable[float],
    *,
    oracle: Oracle = default_oracle,
    limit: int | None = None,
    workers: int | str | None = None,
    chunk_size: int | None = None,
    reuse_pool: bool = False,
) -> list[Mismatch]:
    """Compare the generated function to the oracle on every input.

    Returns at most ``limit`` mismatches (None = all).  With
    ``workers`` > 1 the input pool is chunked across a process pool
    (:mod:`repro.parallel`); chunks preserve input order and merge at
    the barrier, so the mismatch list is bit-identical to the serial
    one — ``limit`` then truncates the merged list, which is the same
    prefix the serial early-exit produces.  ``reuse_pool`` draws the
    workers from :func:`repro.parallel.executor.shared_pool`, so
    back-to-back validations fork once.
    """
    from repro.parallel.shards import resolve_workers

    n_workers = resolve_workers(workers)
    if n_workers > 1:
        return _validate_parallel(fn, list(inputs), oracle, limit,
                                  n_workers, chunk_size, reuse_pool)
    xs = list(inputs)
    bad: list[Mismatch] = []
    for x, got in zip(xs, _evaluate_bits_all(fn, xs)):
        want = reference_bits(fn.spec, x, oracle)
        if got != want:
            bad.append(Mismatch(x, got, want))
            if limit is not None and len(bad) >= limit:
                break
    return bad


def _validate_chunk(payload: tuple) -> list[Mismatch]:
    """Worker task: rebuild the function from frozen data, validate a
    chunk serially."""
    data, xs, oracle = payload
    from repro.libm.serialize import function_from_dict

    return validate(function_from_dict(data), xs, oracle=oracle)


def _validate_parallel(
    fn: GeneratedFunction,
    xs: list[float],
    oracle: Oracle,
    limit: int | None,
    n_workers: int,
    chunk_size: int | None,
    reuse_pool: bool = False,
) -> list[Mismatch]:
    """Chunked oracle comparison with ordered counterexample merge.

    The function crosses the process boundary as its frozen-table dict
    (:func:`repro.libm.serialize.function_to_dict`) — the same
    serialization the shipped libraries load from, so the worker-side
    rebuild evaluates bit-identically to ``fn``.
    """
    from repro.libm.serialize import function_to_dict
    from repro.parallel import plan_chunks, run_tasks

    data = function_to_dict(fn)
    payloads = [(data, xs[a:b], oracle)
                for a, b in plan_chunks(len(xs), n_workers, chunk_size)]
    parts = run_tasks(_validate_chunk, payloads, workers=n_workers,
                      label=f"validate:{fn.name}", reuse_pool=reuse_pool)
    bad = [m for part in parts for m in part]
    return bad if limit is None else bad[:limit]


def generate_validated(
    spec: FunctionSpec,
    inputs: Sequence[float],
    validation_inputs: Sequence[float] | Callable[[int], Sequence[float]] = (),
    *,
    oracle: Oracle = default_oracle,
    max_rounds: int = 4,
    clean_rounds: int = 1,
    workers: int | str | None = None,
    capture: dict | None = None,
) -> tuple[GeneratedFunction, int]:
    """Outer counterexample loop for sampled (32-bit) generation.

    ``validation_inputs`` is either a fixed sequence or a factory called
    with the round number — the factory variant draws *fresh* samples
    every round, so acceptance requires ``clean_rounds`` consecutive
    rounds with no mismatch on inputs the generator has never seen
    (re-validating against one fixed set would stop at the first set it
    happens to satisfy).

    ``workers`` parallelizes each round's oracle comparison
    (:func:`validate`); the counterexamples fold back into ``work`` in
    serial order, so the loop's trajectory — and the final function —
    is identical for any worker count (DESIGN.md, shard-merge note).

    ``capture`` optionally collects the accepted function's LP-pinning
    samples (see :func:`repro.core.generator.generate`); each
    regeneration round replaces the previous round's entries, so the
    final contents describe exactly the function returned.

    Returns the generated function and the number of counterexamples
    that had to be folded back into the input set.  Raises if validation
    still finds mismatches after ``max_rounds``.
    """
    factory = (validation_inputs if callable(validation_inputs)
               else lambda _round: validation_inputs)
    work = list(inputs)
    added = 0
    clean = 0
    fn: GeneratedFunction | None = None
    # CEG warm state spans the re-generation rounds of THIS invocation
    # only: each regeneration re-poses almost the same sub-domain
    # problems, so seeding from the previous round's samples skips the
    # counterexample rediscovery.  Scoping it here (rather than globally)
    # keeps every generate_validated call's trajectory a pure function of
    # its arguments — independent of cache state and worker count.
    warm = CEGWarmState()
    for round_no in range(max_rounds):
        if fn is None:
            fn = generate(spec, work, oracle, warm=warm, capture=capture)
        bad = validate(fn, factory(round_no), oracle=oracle, workers=workers)
        if not bad:
            clean += 1
            if clean >= clean_rounds:
                return fn, added
            continue
        clean = 0
        work.extend(m.x for m in bad)
        added += len(bad)
        fn = None
    if fn is not None and clean > 0:
        return fn, added
    raise RuntimeError(
        f"{spec.name}: validation still failing after {max_rounds} "
        f"generation rounds ({added} counterexamples added)")
