"""Bit-pattern based domain splitting (Algorithm 3's SplitDomain).

To make piecewise-polynomial lookup cheap, the paper indexes sub-domains
with bits of the reduced input's binary64 pattern: all reduced inputs of
one sign share a common prefix of leading bits (sign, and high exponent
bits), and the next n bits partition the domain into 2**n contiguous
sub-domains identified with one shift and one mask.

The reduced input 0 is special — its pattern shares no prefix with the
rest (the paper notes the large gap below 2**-32 for sinpi) — but the
index formula maps it to sub-domain 0 deterministically, so its
constraint simply joins that group.  The caller must pass constraints of
a single sign (Algorithm 3 splits negative/non-negative first, exactly
because the sign bit breaks the common prefix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.fp.bits import double_to_bits
from repro.lp.solver import LinearConstraint
from repro.obs import enabled, event, metrics

__all__ = ["DomainSplit", "split_domain"]

_C_CALLS = metrics.counter("split.domain_calls")


@dataclass(frozen=True)
class DomainSplit:
    """A 2**index_bits-way partition of same-sign reduced inputs."""

    #: Leading bits shared by every (non-zero) reduced input pattern.
    prefix_bits: int
    #: Number of index bits n; there are 2**n groups.
    index_bits: int
    #: Right-shift applied to the 64-bit pattern before masking.
    shift: int
    #: Constraints per group, indexed by the n-bit pattern.
    groups: tuple[tuple[LinearConstraint, ...], ...]

    def index_of(self, r: float) -> int:
        """Sub-domain index of a reduced input (two bit operations)."""
        return (double_to_bits(r) >> self.shift) & ((1 << self.index_bits) - 1)


def split_domain(constraints: Sequence[LinearConstraint], index_bits: int) -> DomainSplit:
    """Partition constraints into 2**index_bits bit-pattern groups.

    With ``index_bits == 0`` the result is the single-polynomial case
    (one group, everything in it).
    """
    if index_bits < 0:
        raise ValueError("index_bits must be non-negative")
    nonzero = [double_to_bits(c.r) for c in constraints
               if c.r != 0.0]  # fplint: disable=FP101 (exact zero test)
    if not nonzero:
        # only r == 0 (or nothing): a single trivial group
        return DomainSplit(64, 0, 0, (tuple(constraints),))
    pmin = min(nonzero)
    pmax = max(nonzero)
    if (pmin ^ pmax) & (1 << 63):
        raise ValueError("split_domain requires same-sign reduced inputs; "
                         "separate negative and non-negative first")
    diff = pmin ^ pmax
    prefix = 64 if diff == 0 else 64 - diff.bit_length()
    index_bits = min(index_bits, 64 - prefix)
    shift = 64 - prefix - index_bits
    mask = (1 << index_bits) - 1

    buckets: list[list[LinearConstraint]] = [[] for _ in range(1 << index_bits)]
    for c in constraints:
        idx = (double_to_bits(c.r) >> shift) & mask
        buckets[idx].append(c)
    _C_CALLS.inc()
    if enabled():
        sizes = [len(b) for b in buckets if b]
        event("split.domain", index_bits=index_bits, prefix_bits=prefix,
              shift=shift, populated=len(sizes),
              largest=max(sizes, default=0))
    return DomainSplit(prefix, index_bits, shift,
                       tuple(tuple(b) for b in buckets))
