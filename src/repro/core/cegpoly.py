"""Counterexample guided polynomial generation (Algorithm 4).

A sub-domain can hold millions of reduced constraints — far beyond what
an LP solver accepts — but most constraints are slack.  The paper's
strategy, implemented here:

1. **Sample** the constraints: evenly across the (sorted) reduced inputs,
   always including the end points and the most *highly constrained*
   intervals (narrowest widths).
2. **Solve** an LP for coefficients satisfying the sample
   (:func:`repro.lp.solver.fit_coefficients`).
3. **Search-and-refine** (Section 3.4): LP coefficients are real numbers
   rounded to H, so a sample constraint can fail under the runtime's
   double Horner evaluation even though the LP was satisfied.  Shrink the
   violated side of that sample constraint by one representable double
   and re-solve until the rounded polynomial satisfies the whole sample.
4. **Check** the polynomial against *every* constraint of the sub-domain
   (vectorized, bit-identical to the runtime evaluation) and add violated
   constraints back into the sample as counterexamples; repeat from 2.
5. Give up when the LP is infeasible or the sample exceeds the threshold
   (the paper uses fifty thousand) — the caller then splits the domain
   further.

After success we run a *degree-lowering pass* mirroring the paper's
"GetCoeffsUsingLP generates a polynomial of a lower degree if it is
possible": try proper prefixes of the monomial structure against the
final sample and keep the shortest polynomial that still passes the full
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.fp.bits import (bits_to_double, double_to_bits, next_double,
                           prev_double)
from repro.lp.solver import LinearConstraint, fit_coefficients
from repro.core.polynomials import Polynomial
from repro.obs import enabled, event, metrics

__all__ = ["CEGConfig", "CEGFailure", "CEGWarmState", "gen_polynomial"]

_C_CALLS = metrics.counter("ceg.calls")
_C_ROUNDS = metrics.counter("ceg.rounds")
_C_VIOLATIONS = metrics.counter("ceg.violations")
_C_FAILURES = metrics.counter("ceg.failures")
_C_WARM_SEEDED = metrics.counter("ceg.warm_seeded")
_H_SAMPLE = metrics.histogram("ceg.sample_size")
_H_ROUNDS = metrics.histogram("ceg.rounds_per_call", kind="exact")


@dataclass
class CEGConfig:
    """Tunables of the counterexample guided generation loop."""

    #: Initial evenly-spaced sample size.
    initial_sample: int = 50
    #: Number of narrowest ("highly constrained") intervals always sampled.
    highly_constrained: int = 12
    #: Abort when the sample grows beyond this (paper: fifty thousand).
    max_sample: int = 50_000
    #: Counterexamples admitted to the sample per round (spread evenly).
    counterexample_cap: int = 128
    #: Maximum search-and-refine re-solves per LP round.
    refine_rounds: int = 64
    #: Maximum counterexample rounds.
    max_rounds: int = 64
    #: Use the exact rational LP backend.
    exact_lp: bool = False
    #: Attempt the degree-lowering pass after success.
    lower_degree: bool = True


@dataclass
class CEGFailure:
    """Why a sub-domain could not be approximated at this degree."""

    reason: str
    sample_size: int = 0

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return False


@dataclass
class CEGWarmState:
    """Cross-round memory for counterexample guided generation.

    ``generate_validated`` re-runs the whole pipeline after every
    validation round; the constraint set only gains a few hard-case
    entries each time, so the counterexamples CEG discovered last round
    are almost certainly counterexamples again.  The state records, per
    sub-domain (keyed by the caller, e.g. ``(label:sign, index_bits,
    group)``), the reduced inputs of the final accepted sample;
    :func:`gen_polynomial` seeds its initial sample with whichever of
    them still exist, typically collapsing the rediscovery rounds to one.

    Seeding only adds sample points — the full-check loop still verifies
    every constraint — so a warm start can change how fast CEG converges
    but never lets an invalid polynomial through.  The state is scoped to
    one ``generate_validated`` invocation and never persisted: generation
    results stay independent of any on-disk cache.
    """

    #: warm key -> reduced inputs (double bit patterns) of the last
    #: successful sample for that sub-domain.
    samples: dict[tuple, tuple[int, ...]] = field(default_factory=dict)

    def record(self, key: tuple, sample: Sequence[LinearConstraint]) -> None:
        self.samples[key] = tuple(double_to_bits(c.r) for c in sample)

    def seed_indices(self, key: tuple, rs: np.ndarray) -> list[int]:
        """Indices into the value-sorted ``rs`` whose bit patterns match
        the recorded sample (entries that vanished from the constraint
        set are skipped)."""
        stored = self.samples.get(key)
        if not stored:
            return []
        out = []
        n = len(rs)
        for b in stored:
            v = bits_to_double(b)
            i = int(np.searchsorted(rs, v, side="left"))
            # scan the equal-value window for the exact bit pattern
            # (it has more than one element only for -0.0 vs +0.0)
            while i < n and rs[i] == v:
                if double_to_bits(float(rs[i])) == b:
                    out.append(i)
                    break
                i += 1
        return out


def _initial_sample_indices(n: int, cfg: CEGConfig,
                            widths: np.ndarray) -> list[int]:
    """Even spread + endpoints + the narrowest intervals."""
    take = min(n, cfg.initial_sample)
    idx = set(np.linspace(0, n - 1, num=take, dtype=int).tolist())
    if cfg.highly_constrained and n > take:
        narrow = np.argsort(widths)[: cfg.highly_constrained]
        idx.update(int(i) for i in narrow)
    return sorted(idx)


def _violations(poly: Polynomial, rs: np.ndarray, lo: np.ndarray,
                hi: np.ndarray) -> np.ndarray:
    """Indices of constraints the (rounded, double-Horner) poly violates."""
    vals = poly.eval_many(rs)
    bad = (vals < lo) | (vals > hi) | np.isnan(vals)
    return np.nonzero(bad)[0]


def _fit_rounded(sample: list[LinearConstraint], exponents: Sequence[int],
                 cfg: CEGConfig) -> Polynomial | None:
    """LP fit + search-and-refine until the sample passes in double."""
    work = list(sample)
    for _ in range(cfg.refine_rounds):
        res = fit_coefficients(work, exponents, exact=cfg.exact_lp)
        if not res.feasible or res.coefficients is None:
            return None
        poly = Polynomial(tuple(exponents), tuple(res.coefficients))
        refined = False
        for i, c in enumerate(work):
            v = poly(c.r)
            if v < c.lo:
                nlo = next_double(c.lo)
                if nlo > c.hi:
                    return None
                work[i] = LinearConstraint(c.r, nlo, c.hi)
                refined = True
            elif v > c.hi:
                nhi = prev_double(c.hi)
                if nhi < c.lo:
                    return None
                work[i] = LinearConstraint(c.r, c.lo, nhi)
                refined = True
        if not refined:
            return poly
    return None


def gen_polynomial(
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
    cfg: CEGConfig | None = None,
    *,
    warm: CEGWarmState | None = None,
    warm_key: tuple | None = None,
    capture: dict | None = None,
    capture_key: tuple | None = None,
) -> Polynomial | CEGFailure:
    """Find a polynomial satisfying every constraint, or explain failure.

    ``constraints`` must be sorted by reduced input (callers get this from
    :func:`repro.core.reduced.reduced_intervals`).  When ``warm`` and
    ``warm_key`` are given, the initial sample is seeded from (and the
    final sample recorded into) the warm state for that key.  When
    ``capture`` is given, the final accepted sample — the exact constraint
    set that pinned the LP solution — is stored under ``capture_key`` with
    its *original* (unrefined) rounding intervals, for certificate
    emission.
    """
    cfg = cfg or CEGConfig()
    exponents = tuple(exponents)
    if not constraints:
        return Polynomial(exponents, (0.0,) * len(exponents))

    result = _gen_polynomial(constraints, exponents, cfg,
                             warm=warm, warm_key=warm_key,
                             capture=capture, capture_key=capture_key)
    if isinstance(result, CEGFailure):
        _C_FAILURES.inc()
        _H_SAMPLE.observe(result.sample_size)
        event("ceg.done", ok=False, reason=result.reason,
              sample=result.sample_size, constraints=len(constraints))
    else:
        _H_SAMPLE.observe(result[1])
        event("ceg.done", ok=True, sample=result[1],
              constraints=len(constraints))
        result = result[0]
    return result


def _gen_polynomial(
    constraints: Sequence[LinearConstraint],
    exponents: tuple[int, ...],
    cfg: CEGConfig,
    warm: CEGWarmState | None = None,
    warm_key: tuple | None = None,
    capture: dict | None = None,
    capture_key: tuple | None = None,
) -> tuple[Polynomial, int] | CEGFailure:
    """The CEG loop proper; returns (poly, final sample size) or failure."""
    _C_CALLS.inc()
    trace = enabled()

    rs = np.array([c.r for c in constraints])
    lo = np.array([c.lo for c in constraints])
    hi = np.array([c.hi for c in constraints])
    widths = hi - lo

    sample_idx = set(_initial_sample_indices(len(constraints), cfg, widths))
    if warm is not None and warm_key is not None:
        seeded = warm.seed_indices(warm_key, rs)
        if seeded:
            before = len(sample_idx)
            sample_idx.update(seeded)
            _C_WARM_SEEDED.inc(len(sample_idx) - before)
    sample = [constraints[i] for i in sorted(sample_idx)]

    poly: Polynomial | None = None
    rounds = 0
    for round_no in range(cfg.max_rounds):
        rounds = round_no + 1
        _C_ROUNDS.inc()
        poly = _fit_rounded(sample, exponents, cfg)
        if poly is None:
            _H_ROUNDS.observe(rounds)
            return CEGFailure("lp-infeasible", len(sample))
        bad = _violations(poly, rs, lo, hi)
        _C_VIOLATIONS.inc(int(bad.size))
        if trace:
            event("ceg.round", round=round_no, sample=len(sample),
                  violations=int(bad.size))
        if bad.size == 0:
            break
        if bad.size > cfg.counterexample_cap:
            pick = bad[np.linspace(0, bad.size - 1,
                                   num=cfg.counterexample_cap, dtype=int)]
        else:
            pick = bad
        before = len(sample_idx)
        sample_idx.update(int(i) for i in pick)
        if len(sample_idx) == before:
            # The polynomial keeps violating constraints already sampled:
            # coefficient rounding has made this degree hopeless here.
            _H_ROUNDS.observe(rounds)
            return CEGFailure("stuck", len(sample))
        if len(sample_idx) > cfg.max_sample:
            _H_ROUNDS.observe(rounds)
            return CEGFailure("sample-threshold", len(sample_idx))
        sample = [constraints[i] for i in sorted(sample_idx)]
    else:
        _H_ROUNDS.observe(rounds)
        return CEGFailure("round-limit", len(sample_idx))

    _H_ROUNDS.observe(rounds)
    assert poly is not None
    if warm is not None and warm_key is not None:
        warm.record(warm_key, sample)
    if capture is not None and capture_key is not None:
        capture[capture_key] = tuple(sample)
    if cfg.lower_degree and len(exponents) > 1:
        for nterms in range(1, len(exponents)):
            shorter = _fit_rounded(sample, exponents[:nterms], cfg)
            if shorter is not None and _violations(shorter, rs, lo, hi).size == 0:
                return shorter, len(sample)
    return poly, len(sample)
