"""Polynomial objects with the exact evaluation order of the runtime.

The generated library evaluates polynomials with Horner's method in
double precision (paper section 4.1).  Because the generator must verify
that a candidate polynomial lands inside every (ulp-wide) reduced
interval *as evaluated at runtime*, the check and the runtime must perform
bit-identical sequences of double operations.  This module is that single
source of truth: :meth:`Polynomial.__call__` is the scalar runtime
evaluator, and :meth:`Polynomial.eval_many` is an operation-for-operation
vectorized equivalent used to validate millions of constraints quickly.

Polynomials are described by a tuple of monomial *exponents* so the
odd/even structures of the paper (e.g. the degree-5 odd sinpi polynomial,
``c1*r + c3*r**3 + c5*r**5``) evaluate without the wasted multiplies of a
dense representation:

* exponents in arithmetic progression with stride ``s`` starting at ``e0``
  evaluate as ``r**e0 * horner(r**s)``,
* anything else falls back to an explicit power-sum (never produced by
  our generators, but supported for completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Polynomial", "horner_structure"]


def _pow_small(r, e: int):
    """r**e by repeated multiplication (same order scalar and ndarray)."""
    if e == 0:
        return r * 0 + 1.0
    acc = r
    for _ in range(e - 1):
        acc = acc * r
    return acc


def horner_structure(exponents: Sequence[int]) -> tuple[int, int] | None:
    """Return (start, stride) when exponents form an arithmetic progression.

    A single exponent is treated as progression with stride 1.  Returns
    None for irregular exponent sets.
    """
    exps = list(exponents)
    if not exps or sorted(exps) != exps or len(set(exps)) != len(exps):
        return None
    if len(exps) == 1:
        return exps[0], 1
    stride = exps[1] - exps[0]
    if stride <= 0:
        return None
    for a, b in zip(exps, exps[1:]):
        if b - a != stride:
            return None
    return exps[0], stride


def _compile_source(exponents: tuple[int, ...],
                    coefficients: tuple[float, ...]) -> str:
    """Straight-line Python source for the Horner evaluation.

    RLIBM-32 emits straight-line C for its generated polynomials; we emit
    straight-line Python once per polynomial so the runtime hot path pays
    no interpretation overhead (no loops, no structure dispatch).  The
    emitted expression performs exactly the operation sequence of the
    interpreted evaluator (tests assert bit-equality).
    """
    struct = horner_structure(exponents)
    cs = [repr(c) for c in coefficients]
    if struct is None:
        # irregular exponents: left-to-right accumulation from 0.0,
        # matching the interpreted evaluator for finite r
        body = "0.0"
        for c, e in zip(cs, exponents):
            pw = "*".join(["r"] * e) if e else None
            body = f"({body} + {c}*{pw})" if pw else f"({body} + {c})"
        return f"def _poly(r):\n    return {body}\n"
    start, stride = struct
    lines = ["def _poly(r):"]
    if len(cs) > 1:
        u_expr = "*".join(["r"] * stride)
        lines.append(f"    u = {u_expr}")
        acc = cs[-1]
        for c in reversed(cs[:-1]):
            acc = f"({acc}*u + {c})"
    else:
        acc = cs[0]
    if start:
        rpow = "*".join(["r"] * start)
        acc = f"{acc}*({rpow})" if start > 1 else f"{acc}*r"
    lines.append(f"    return {acc}")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class Polynomial:
    """``sum(c_j * r**e_j)`` with a fixed double-precision Horner order."""

    exponents: tuple[int, ...]
    coefficients: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.exponents) != len(self.coefficients):
            raise ValueError("exponents/coefficients length mismatch")
        if not self.exponents:
            raise ValueError("empty polynomial")

    @property
    def degree(self) -> int:
        return max(self.exponents)

    @property
    def terms(self) -> int:
        return len(self.exponents)

    @property
    def compiled(self):
        """The straight-line evaluator (built once, then cached)."""
        fn = self.__dict__.get("_compiled")
        if fn is None:
            ns: dict = {}
            exec(compile(_compile_source(self.exponents, self.coefficients),
                         "<polynomial>", "exec"), ns)
            fn = ns["_poly"]
            object.__setattr__(self, "_compiled", fn)
        return fn

    def __call__(self, r: float) -> float:
        """Evaluate at a double with the runtime's Horner order."""
        struct = horner_structure(self.exponents)
        cs = self.coefficients
        if struct is None:
            acc = 0.0
            for c, e in zip(cs, self.exponents):
                acc = acc + c * _pow_small(r, e)
            return acc
        start, stride = struct
        u = _pow_small(r, stride) if len(cs) > 1 else 0.0
        acc = cs[-1]
        for c in reversed(cs[:-1]):
            acc = acc * u + c
        if start:
            acc = acc * _pow_small(r, start)
        return acc

    def eval_many(self, rs: np.ndarray) -> np.ndarray:
        """Vectorized evaluation, bit-identical to :meth:`__call__`.

        numpy float64 arithmetic performs the same IEEE double operations
        element-wise (no FMA contraction), so each lane reproduces the
        scalar Horner result exactly; tests assert this.
        """
        rs = np.asarray(rs, dtype=np.float64)
        struct = horner_structure(self.exponents)
        cs = self.coefficients
        if struct is None:
            acc = np.zeros_like(rs)
            for c, e in zip(cs, self.exponents):
                acc = acc + c * _pow_small(rs, e)
            return acc
        start, stride = struct
        u = _pow_small(rs, stride) if len(cs) > 1 else np.zeros_like(rs)
        acc = np.full_like(rs, cs[-1])
        # in-place Horner steps: the same multiply and add per lane as
        # the scalar path, without a temporary per step
        for c in reversed(cs[:-1]):
            acc *= u
            acc += c
        if start:
            acc *= _pow_small(rs, start)
        return acc

    def prefix(self, nterms: int) -> "Polynomial":
        """The polynomial truncated to its first ``nterms`` monomials."""
        if not 1 <= nterms <= len(self.exponents):
            raise ValueError("bad prefix length")
        return Polynomial(self.exponents[:nterms], self.coefficients[:nterms])

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{c!r}*r^{e}" for c, e in zip(self.coefficients, self.exponents)]
        return " + ".join(parts)
