"""The RLIBM-32 pipeline: intervals, reduced intervals, CEG polynomials."""

from __future__ import annotations

from repro.core.cegpoly import CEGConfig, CEGFailure, gen_polynomial
from repro.core.generator import (FunctionSpec, GeneratedFunction, GenerationError,
                                  GenStats, generate)
from repro.core.intervals import TargetFormat, target_rounding_interval
from repro.core.piecewise import (ApproxFunc, PiecewiseConfig, PiecewisePolynomial,
                                  gen_approx_func, gen_piecewise)
from repro.core.polynomials import Polynomial
from repro.core.reduced import ReducedConstraintSet, reduced_intervals
from repro.core.sampling import all_values, boundary_values, sample_values
from repro.core.splitting import DomainSplit, split_domain
from repro.core.validate import Mismatch, generate_validated, validate

__all__ = [
    "CEGConfig", "CEGFailure", "gen_polynomial",
    "FunctionSpec", "GeneratedFunction", "GenerationError", "GenStats", "generate",
    "TargetFormat", "target_rounding_interval",
    "ApproxFunc", "PiecewiseConfig", "PiecewisePolynomial",
    "gen_approx_func", "gen_piecewise",
    "Polynomial", "ReducedConstraintSet", "reduced_intervals",
    "all_values", "boundary_values", "sample_values",
    "DomainSplit", "split_domain",
    "Mismatch", "generate_validated", "validate",
]
