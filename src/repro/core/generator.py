"""The top-level library generator (Algorithm 1, ``CorrectPolys``).

``generate`` drives the whole RLIBM-32 pipeline for one elementary
function and one target representation:

1. the special-case layer filters the inputs that need no approximation;
2. the oracle produces the correctly rounded result for each remaining
   input, and Algorithm 1 turns it into a rounding interval in H;
3. Algorithm 2 pushes the intervals through range reduction into merged
   reduced intervals for every reduced elementary function f_i;
4. Algorithm 3 + 4 synthesize piecewise polynomials per f_i.

The result, :class:`GeneratedFunction`, is a runnable correctly rounded
implementation: ``evaluate(x)`` performs special cases, range reduction,
bit-pattern sub-domain lookup, Horner evaluation, output compensation and
the final rounding to T — the same sequence the shipped
:mod:`repro.libm` functions execute from frozen tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.cache import active_store
from repro.core.cegpoly import CEGWarmState
from repro.core.intervals import TargetFormat, target_rounding_interval
from repro.core.piecewise import ApproxFunc, PiecewiseConfig, gen_approx_func
from repro.core.reduced import ReducedConstraintSet, reduced_intervals
from repro.fp.float32 import f32_round, f32_to_bits
from repro.fp.formats import FLOAT32, FloatFormat
from repro.obs import event, timed_span
from repro.oracle.mpmath_oracle import Oracle, default_oracle
from repro.rangereduction.base import RangeReduction

__all__ = ["FunctionSpec", "GenStats", "GeneratedFunction",
           "GenerationError", "generate", "target_rounder"]


class GenerationError(RuntimeError):
    """Piecewise polynomial generation failed within the budget."""


@dataclass
class FunctionSpec:
    """What to generate: function + target + range reduction + budgets."""

    name: str
    target: TargetFormat
    rr: RangeReduction
    piecewise: PiecewiseConfig = field(default_factory=PiecewiseConfig)


@dataclass
class GenStats:
    """Table-3-style generation statistics.

    All wall times are measured with ``time.perf_counter`` through the
    :func:`repro.obs.timed_span` API, so the same numbers feed this
    struct (→ ``python -m repro table3`` and the frozen data modules)
    and — when ``REPRO_TRACE`` is set — the JSONL trace that
    ``python -m repro stats`` renders.
    """

    gen_time_s: float = 0.0
    oracle_time_s: float = 0.0
    input_count: int = 0
    special_count: int = 0
    reduced_count: int = 0
    #: per reduced function: {"npolys", "index_bits", "degree", "terms"}
    per_fn: dict[str, dict[str, int]] = field(default_factory=dict)
    #: wall time per pipeline phase: "oracle", "reduced", "piecewise"
    phase_s: dict[str, float] = field(default_factory=dict)


def target_rounder(fmt: TargetFormat) -> Callable[[float], float]:
    """Fast final-rounding function RN_T for the runtime hot path."""
    if fmt is FLOAT32:
        return f32_round
    return fmt.round_double


def target_bits(fmt: TargetFormat, v: float) -> int:
    """Bit pattern of the T-rounded double ``v``."""
    if fmt is FLOAT32:
        return f32_to_bits(v)
    return fmt.from_double(v)


class GeneratedFunction:
    """A runnable correctly rounded implementation of one function."""

    def __init__(self, spec: FunctionSpec, approx: dict[str, ApproxFunc],
                 stats: GenStats):
        self.spec = spec
        self.approx = approx
        self.stats = stats
        self._round = target_rounder(spec.target)
        # pre-resolve the per-fn approximations in compensation order
        self._funcs = [approx[name] for name in spec.rr.fn_names]
        self.evaluate = self._build_evaluate()

    def _build_evaluate(self):
        """Pre-bound hot path: special cases, reduce, compiled piecewise
        evaluation, compensate, final rounding — the Python analogue of
        the straight-line C functions RLIBM-32 emits.  Each range
        reduction supplies its own fully inlined variant."""
        compiled = [af.compiled for af in self._funcs]
        evaluate = self.spec.rr.make_fast_evaluate(compiled, self._round)
        evaluate.__doc__ = "f(x) correctly rounded to T, as a double."
        return evaluate

    @property
    def name(self) -> str:
        return self.spec.name

    def evaluate_bits(self, x: float) -> int:
        """f(x) correctly rounded to T, as a T bit pattern."""
        rr = self.spec.rr
        s = rr.special(x)
        if s is not None:
            return target_bits(self.spec.target, s)
        r, ctx = rr.reduce(x)
        vals = tuple(af.compiled(r) for af in self._funcs)
        return target_bits(self.spec.target, rr.compensate(vals, ctx))

    @property
    def batch(self):
        """The vectorized twin of this function (built lazily, cached).

        A :class:`repro.batch.engine.BatchFunction` running the same
        pipeline on float64 arrays, bit-identical per element.
        """
        bf = self.__dict__.get("_batch")
        if bf is None:
            from repro.batch.engine import BatchFunction

            bf = self.__dict__["_batch"] = BatchFunction(self)
        return bf

    def evaluate_many(self, xs):
        """Batch ``evaluate``: float64 array in, rounded doubles out."""
        return self.batch.evaluate_many(xs)

    def evaluate_bits_many(self, xs):
        """Batch ``evaluate_bits``: float64 array in, uint64 patterns out."""
        return self.batch.evaluate_bits_many(xs)

    def __call__(self, x: float) -> float:
        return self.evaluate(x)


def generate(
    spec: FunctionSpec,
    inputs: Iterable[float],
    oracle: Oracle = default_oracle,
    warm: CEGWarmState | None = None,
    capture: dict | None = None,
) -> GeneratedFunction:
    """Run the full pipeline for ``spec`` over the given inputs.

    ``inputs`` are doubles that are exact values of the target format
    (from :mod:`repro.core.sampling`).  ``warm`` optionally carries CEG
    state across repeated generations of the same spec (the
    validate-and-repair loop).  ``capture`` optionally collects every
    generated sub-domain's final LP-pinning constraint sample, keyed
    ``("<fn>:<side>", group_index)`` — the raw material for certificate
    emission (:mod:`repro.analysis.certify`).  Raises
    :class:`~repro.rangereduction.base.RangeReductionError` when output
    compensation cannot reach a rounding interval and
    :class:`GenerationError` when polynomial generation fails within the
    sub-domain budget.
    """
    rr = spec.rr
    stats = GenStats()
    store = oracle.store if oracle.store is not None else active_store()

    with timed_span("generate", fn=spec.name,
                    target=str(spec.target)) as sp_gen:
        with timed_span("oracle", fn=spec.name) as sp:
            pairs: list[tuple[float, object]] = []
            for x in inputs:
                stats.input_count += 1
                if rr.special(x) is not None:
                    stats.special_count += 1
                    continue
                y_bits = oracle.round_to_bits(spec.name, x, spec.target)
                pairs.append(
                    (x, target_rounding_interval(spec.target, y_bits)))
        stats.oracle_time_s = sp.elapsed
        stats.phase_s["oracle"] = sp.elapsed

        with timed_span("reduced", fn=spec.name) as sp:
            rset: ReducedConstraintSet = reduced_intervals(
                pairs, rr, oracle, store=store, fmt_name=str(spec.target))
        stats.reduced_count = rset.reduced_count
        stats.phase_s["reduced"] = sp.elapsed
        event("generate.inputs", fn=spec.name, inputs=stats.input_count,
              special=stats.special_count, reduced=stats.reduced_count)

        with timed_span("piecewise", fn=spec.name) as sp:
            approx: dict[str, ApproxFunc] = {}
            for fn_name in rr.fn_names:
                af = gen_approx_func(fn_name, rset.constraints[fn_name],
                                     rr.exponents_for(fn_name),
                                     spec.piecewise, label=fn_name,
                                     warm=warm, capture=capture)
                if af is None:
                    raise GenerationError(
                        f"{spec.name}/{fn_name}: no piecewise polynomial "
                        f"within 2**{spec.piecewise.max_index_bits} "
                        "sub-domains")
                approx[fn_name] = af
                stats.per_fn[fn_name] = {
                    "npolys": af.npolys,
                    "degree": af.max_degree,
                    "terms": af.max_terms,
                }
        stats.phase_s["piecewise"] = sp.elapsed

    stats.gen_time_s = sp_gen.elapsed
    return GeneratedFunction(spec, approx, stats)
