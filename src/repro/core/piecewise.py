"""Piecewise polynomials and their generation (Algorithm 3).

``GenApproxFunc`` first separates negative from non-negative reduced
inputs (their binary64 patterns share no prefix), then, per sign, tries a
single polynomial and keeps doubling the number of bit-pattern-indexed
sub-domains until every sub-domain admits a polynomial of the requested
structure — or the budget (``max_index_bits``, paper: 2**14 sub-domains)
is exhausted.

The runtime object :class:`PiecewisePolynomial` selects the sub-domain
with one shift and one mask of the reduced input's bit pattern, exactly
as the generated C tables in RLIBM-32 do.  Sub-domains that received no
constraint during generation (possible when the 32-bit pipeline runs on a
sampled input set) inherit the nearest populated neighbour's polynomial,
so every runtime lookup is defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.cegpoly import (CEGConfig, CEGFailure, CEGWarmState,
                                gen_polynomial)
from repro.core.polynomials import Polynomial
from repro.core.splitting import DomainSplit, split_domain
from repro.fp.bits import double_to_bits
from repro.lp.solver import LinearConstraint
from repro.obs import event, metrics, span

_C_SPLIT_ATTEMPTS = metrics.counter("split.attempts")
_H_INDEX_BITS = metrics.histogram("split.index_bits", kind="exact")

__all__ = ["PiecewisePolynomial", "ApproxFunc", "PiecewiseConfig",
           "gen_piecewise", "gen_approx_func"]


@dataclass
class PiecewiseConfig:
    """Budget knobs of Algorithm 3."""

    #: First split attempt (0 = try a single polynomial).
    start_index_bits: int = 0
    #: Largest split; the paper caps sub-domains at 2**14.
    max_index_bits: int = 14
    #: Inner counterexample-guided generation settings.
    ceg: CEGConfig | None = None


@dataclass(frozen=True)
class PiecewisePolynomial:
    """2**index_bits polynomials indexed by reduced-input bit pattern."""

    index_bits: int
    shift: int
    polys: tuple[Polynomial, ...]

    def index_of(self, r: float) -> int:
        """Sub-domain index: shift + mask of the binary64 pattern."""
        return (double_to_bits(r) >> self.shift) & ((1 << self.index_bits) - 1)

    def __call__(self, r: float) -> float:
        return self.polys[self.index_of(r)](r)

    @property
    def compiled(self):
        """Closure with pre-bound tables and straight-line polynomials.

        The runtime hot path of the generated library: one pack, one
        shift, one mask, one table load, one straight-line evaluation —
        mirroring RLIBM-32's generated C.
        """
        fn = self.__dict__.get("_compiled")
        if fn is None:
            if self.index_bits == 0:
                fn = self.polys[0].compiled
            else:
                table = tuple(p.compiled for p in self.polys)
                shift = self.shift
                mask = (1 << self.index_bits) - 1
                bits = double_to_bits

                def fn(r, _t=table, _s=shift, _m=mask, _b=bits):
                    return _t[(_b(r) >> _s) & _m](r)

            object.__setattr__(self, "_compiled", fn)
        return fn

    @property
    def max_degree(self) -> int:
        return max(p.degree for p in self.polys)

    @property
    def max_terms(self) -> int:
        return max(p.terms for p in self.polys)

    @property
    def npolys(self) -> int:
        return len(self.polys)


def _fill_gaps(polys: list[Polynomial | None]) -> list[Polynomial]:
    """Give empty sub-domains the nearest populated neighbour's polynomial."""
    populated = [i for i, p in enumerate(polys) if p is not None]
    if not populated:
        raise ValueError("no populated sub-domain")
    filled: list[Polynomial] = []
    for i, p in enumerate(polys):
        if p is None:
            j = min(populated, key=lambda k: abs(k - i))
            p = polys[j]
        filled.append(p)  # type: ignore[arg-type]
    return filled


def gen_piecewise(
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
    cfg: PiecewiseConfig | None = None,
    label: str = "",
    warm: CEGWarmState | None = None,
    warm_label: str | None = None,
    capture: dict | None = None,
) -> PiecewisePolynomial | None:
    """GenApproxHelper + GenPiecewise for one sign of reduced inputs.

    ``label`` tags trace events with the reduced function being
    approximated; it does not affect generation.  Warm-state keys use
    ``warm_label`` (default ``label``), so callers passing ``warm`` must
    keep it unique per reduced function and sign.  When ``capture`` is
    given, each generated sub-domain's final LP-pinning sample is stored
    under ``(warm_label, group_index)`` — only for the split that
    succeeded, never for abandoned attempts.
    """
    cfg = cfg or PiecewiseConfig()
    ceg = cfg.ceg or CEGConfig()
    wlabel = warm_label if warm_label is not None else label
    n = cfg.start_index_bits
    while n <= cfg.max_index_bits:
        split = split_domain(constraints, n)
        if split.index_bits < n:
            # the domain has no more pattern bits to split on
            n = split.index_bits
        _C_SPLIT_ATTEMPTS.inc()
        attempt: dict | None = {} if capture is not None else None
        polys: list[Polynomial | None] = []
        ok = True
        for group_idx, group in enumerate(split.groups):
            if not group:
                polys.append(None)
                continue
            result = gen_polynomial(
                group, exponents, ceg, warm=warm,
                warm_key=(wlabel, split.index_bits, group_idx),
                capture=attempt, capture_key=(wlabel, group_idx))
            if isinstance(result, CEGFailure):
                ok = False
                break
            polys.append(result)
        event("split.attempt", reduced_fn=label, index_bits=split.index_bits,
              groups=len(split.groups),
              populated=sum(1 for g in split.groups if g), ok=ok)
        if ok:
            if capture is not None and attempt is not None:
                # replace this side's entries wholesale so re-generation
                # (the validate-and-repair loop) never leaves slots from
                # an earlier, differently-split round behind
                for key in [k for k in capture if k[0] == wlabel]:
                    del capture[key]
                capture.update(attempt)
            _H_INDEX_BITS.observe(split.index_bits)
            return PiecewisePolynomial(split.index_bits, split.shift,
                                       tuple(_fill_gaps(polys)))
        if n == cfg.max_index_bits:
            return None
        n += 1
    return None


@dataclass(frozen=True)
class ApproxFunc:
    """Approximation of one reduced elementary function f_i.

    Negative and non-negative reduced inputs get independent piecewise
    polynomials (their bit patterns share no prefix); either side may be
    absent when the range reduction never produces that sign.
    """

    name: str
    neg: PiecewisePolynomial | None
    pos: PiecewisePolynomial | None

    def __call__(self, r: float) -> float:
        side = self.neg if r < 0.0 else self.pos
        if side is None:
            raise ValueError(
                f"{self.name}: no polynomial for sign of r={r!r}")
        return side(r)

    @property
    def compiled(self):
        """Sign-dispatching closure over the compiled piecewise tables."""
        fn = self.__dict__.get("_compiled")
        if fn is None:
            neg = self.neg.compiled if self.neg is not None else None
            pos = self.pos.compiled if self.pos is not None else None
            if neg is None and pos is not None:
                fn = pos
            elif pos is None and neg is not None:
                fn = neg
            else:
                def fn(r, _n=neg, _p=pos):
                    return _n(r) if r < 0.0 else _p(r)

            object.__setattr__(self, "_compiled", fn)
        return fn

    @property
    def npolys(self) -> int:
        return sum(s.npolys for s in (self.neg, self.pos) if s is not None)

    @property
    def max_degree(self) -> int:
        return max(s.max_degree for s in (self.neg, self.pos) if s is not None)

    @property
    def max_terms(self) -> int:
        return max(s.max_terms for s in (self.neg, self.pos) if s is not None)


def gen_approx_func(
    name: str,
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
    cfg: PiecewiseConfig | None = None,
    label: str = "",
    warm: CEGWarmState | None = None,
    capture: dict | None = None,
) -> ApproxFunc | None:
    """GenApproxFunc: split by sign, then generate piecewise polynomials."""
    label = label or name
    neg = [c for c in constraints if c.r < 0.0]
    pos = [c for c in constraints if c.r >= 0.0]
    neg_pp = pos_pp = None
    if neg:
        with span("approxfunc", reduced_fn=label, sign="neg",
                  constraints=len(neg)):
            neg_pp = gen_piecewise(neg, exponents, cfg, label=label,
                                   warm=warm, warm_label=f"{label}:neg",
                                   capture=capture)
        if neg_pp is None:
            return None
    if pos:
        with span("approxfunc", reduced_fn=label, sign="pos",
                  constraints=len(pos)):
            pos_pp = gen_piecewise(pos, exponents, cfg, label=label,
                                   warm=warm, warm_label=f"{label}:pos",
                                   capture=capture)
        if pos_pp is None:
            return None
    return ApproxFunc(name, neg_pp, pos_pp)
