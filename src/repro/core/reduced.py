"""Algorithm 2: reduced rounding intervals.

Range reduction turns the constraint "the final answer for x must land in
its rounding interval" into constraints on the outputs of the reduced
elementary functions f_i.  When output compensation involves *several*
f_i (sinpi/cospi need both sinpi(R) and cospi(R); sinh/cosh need both
sinh(R) and cosh(R)), the freedom available to each f_i is coupled; the
paper's Algorithm 2 deduces it by

1. starting every f_i at its correctly rounded double value v_i,
2. stepping all lower bounds down *simultaneously*, one representable
   double at a time, while output compensation still lands inside the
   rounding interval of x, and
3. doing the same upwards.

Because output compensation is monotonic in each value (all in the same
direction), the predicate "the all-lower corner stays inside [l, h]" is
monotone in the step count, so we implement the walk as the paper
suggests — exponential probing followed by binary search over the number
of representable-double steps — instead of one ulp at a time.

Multiple inputs x can map to the same reduced input r; their per-x reduced
intervals are intersected (Section 3.2).  An empty intersection means the
range reduction cannot support a correct implementation and is reported
as :class:`RangeReductionError`.

Walk cache
----------

For a given range reduction, target format and input x, the walk result is
a pure function of (rr.name, fmt, x): the seed values come from the
(deterministic) oracle, the nudge search and the monotone binary search
are deterministic, and the rounding interval is determined by the format.
``reduced_intervals`` therefore accepts an optional persistent store
(:mod:`repro.cache`) and memoises ``(k_lo, k_hi, nudge)`` per input —
replaying a walk is three integer reads instead of dozens of output
compensation evaluations, and by construction cannot change a bit of the
result.  Bump :data:`_WALK_VERSION` whenever this module, the oracle
certification, or any range reduction changes behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.cache import BucketSpec, SegmentStore
from repro.fp.bits import (advance_double, double_to_bits, double_to_ordinal,
                           ordinal_to_double)
from repro.fp.rounding import RoundingInterval
from repro.lp.solver import LinearConstraint
from repro.obs import metrics
from repro.oracle.mpmath_oracle import Oracle, default_oracle
from repro.rangereduction.base import RangeReduction, RangeReductionError

__all__ = ["ReducedConstraintSet", "reduced_intervals", "max_steps_within",
           "WALK_VERSION"]

#: Upper bound on the widening binary search: 2**62 steps covers the
#: whole double ordinal range.
_MAX_STEP_LOG2 = 62

#: Version key for persisted walk records; see module docstring.
WALK_VERSION = 1

_C_WALK_HITS = metrics.counter("cache.walk_hits")
_C_WALK_MISSES = metrics.counter("cache.walk_misses")


def max_steps_within(predicate: Callable[[int], bool]) -> int:
    """Largest k >= 0 with predicate(k) true, for monotone predicates.

    ``predicate(0)`` must hold.  Uses exponential probing then binary
    search; caps at 2**_MAX_STEP_LOG2.
    """
    if predicate(1) is False:
        return 0
    # exponential phase: find first failing power of two
    hi = 2
    while hi <= (1 << _MAX_STEP_LOG2) and predicate(hi):
        hi <<= 1
    lo = hi >> 1  # known good
    if hi > (1 << _MAX_STEP_LOG2):
        return lo
    while hi - lo > 1:
        mid = (lo + hi) >> 1
        if predicate(mid):
            lo = mid
        else:
            hi = mid
    return lo


#: How far the seed may be nudged when the exact result sits on a
#: rounding boundary (a few OC round-off ulps in practice).
_MAX_NUDGE = 128

_ORD_INF = double_to_ordinal(math.inf)

#: Module switch for the hoisted-ordinal walk; set False to time (or
#: differentially test against) the original per-probe closure.  Both
#: walks evaluate the identical probe sequence.
FAST_WALK = True


def _nudge_into_interval(rr, red, v, iv):
    """Step all components together until compensation lands in iv.

    Returns ``(values, signed_step_count)`` or None when no nudge within
    ``_MAX_NUDGE`` ulps reaches the interval.
    """
    for sign in (-1, 1):
        for k in range(1, _MAX_NUDGE + 1):
            vals = [advance_double(vi, sign * k) for vi in v]
            y = rr.compensate(vals, red.ctx)
            if not math.isnan(y) and iv.lo <= y <= iv.hi:
                return vals, sign * k
    return None


def _walk_extents(rr, ctx, iv, v) -> tuple[int, int]:
    """``(k_lo, k_hi)`` of the simultaneous corner walk from seed ``v``.

    Same monotone predicate as the original per-call closure, with the
    ordinal decomposition of the seed hoisted out of the probe loop
    (``advance_double`` would re-derive it on every evaluation).  The
    clamping matches :func:`repro.fp.bits.advance_double` exactly, so the
    probe sequence — and therefore the result — is unchanged.
    """
    ords = [double_to_ordinal(vi) for vi in v]
    compensate = rr.compensate
    lo_b, hi_b = iv.lo, iv.hi

    def corner_ok(k: int, sign: int) -> bool:
        vals = []
        for o in ords:
            n = o + sign * k
            if n > _ORD_INF:
                n = _ORD_INF
            elif n < -_ORD_INF:
                n = -_ORD_INF
            vals.append(ordinal_to_double(n))
        y = compensate(vals, ctx)
        if math.isnan(y):
            return False
        return lo_b <= y <= hi_b

    k_lo = max_steps_within(lambda k: corner_ok(k, -1))
    k_hi = max_steps_within(lambda k: corner_ok(k, +1))
    return k_lo, k_hi


def _walk_extents_ref(rr, ctx, iv, v) -> tuple[int, int]:
    """Reference walk: ``advance_double`` per probe (pre-optimization)."""

    def corner_ok(k: int, sign: int) -> bool:
        vals = [advance_double(vi, sign * k) for vi in v]
        y = rr.compensate(vals, ctx)
        if math.isnan(y):
            return False
        return iv.lo <= y <= iv.hi

    k_lo = max_steps_within(lambda k: corner_ok(k, -1))
    k_hi = max_steps_within(lambda k: corner_ok(k, +1))
    return k_lo, k_hi


@dataclass
class ReducedConstraintSet:
    """Merged reduced constraints for every reduced elementary function."""

    #: fn_name -> sorted list of constraints (one per unique reduced r).
    constraints: dict[str, list[LinearConstraint]]
    #: Number of (x, interval) pairs processed.
    input_count: int = 0
    #: Number of unique reduced inputs.
    reduced_count: int = 0


def reduced_intervals(
    pairs: Iterable[tuple[float, RoundingInterval]],
    rr: RangeReduction,
    oracle: Oracle = default_oracle,
    *,
    store: SegmentStore | None = None,
    fmt_name: str | None = None,
) -> ReducedConstraintSet:
    """Deduce reduced rounding intervals (Algorithm 2 + merging).

    Parameters
    ----------
    pairs:
        ``(x, rounding_interval_of_f(x))`` for every non-special input.
    rr:
        The range reduction / output compensation under test.
    oracle:
        Correctly rounded oracle used for the initial guesses v_i.
    store, fmt_name:
        When both are given, walk results are memoised in the persistent
        cache under ``(rr.name, fmt_name, x)``; see the module docstring
        for why replaying them is bit-exact.
    """
    fn_names = rr.fn_names
    merged: dict[str, dict[float, tuple[float, float]]] = {
        name: {} for name in fn_names}
    count = 0

    spec = None
    if store is not None and fmt_name is not None:
        spec = BucketSpec("walk", rr.name, fmt_name, WALK_VERSION, 3)

    for x, iv in pairs:
        count += 1
        red = rr.reduce(x)
        r = red.r
        v = [oracle.round_to_double(fn, r) for fn in fn_names]

        cached = store.get(spec, double_to_bits(x)) if spec is not None \
            else None
        if cached is not None:
            _C_WALK_HITS.inc()
            k_lo, k_hi, nudge_rec = cached
            nudge = nudge_rec - _MAX_NUDGE
            if nudge:
                v = [advance_double(vi, nudge) for vi in v]
        else:
            y0 = rr.compensate(v, red.ctx)
            nudge = 0
            if not (iv.lo <= y0 <= iv.hi):
                # The exact result can sit exactly on a rounding boundary
                # (e.g. exp10(2) = 100 landing on a tie), so the double
                # round-off of output compensation can push the seed a
                # couple of ulps outside.  Nudge all components
                # simultaneously along the monotone direction until
                # compensation enters the interval; if a small nudge
                # cannot reach it, the range reduction genuinely loses
                # too much precision.
                nudged = _nudge_into_interval(rr, red, v, iv)
                if nudged is None:
                    raise RangeReductionError(
                        f"{rr.name}: correctly rounded components at "
                        f"x={x!r} (r={r!r}) compensate to {y0!r}, outside "
                        f"{iv}; redesign the range reduction or increase "
                        "the precision of H")
                v, nudge = nudged

            walk = _walk_extents if FAST_WALK else _walk_extents_ref
            k_lo, k_hi = walk(rr, red.ctx, iv, v)
            if spec is not None:
                _C_WALK_MISSES.inc()
                store.put(spec, double_to_bits(x),
                          (k_lo, k_hi, nudge + _MAX_NUDGE))

        for i, fn in enumerate(fn_names):
            lo_i = advance_double(v[i], -k_lo)
            hi_i = advance_double(v[i], k_hi)
            slot = merged[fn].get(r)
            if slot is None:
                merged[fn][r] = (lo_i, hi_i)
            else:
                nlo = max(slot[0], lo_i)
                nhi = min(slot[1], hi_i)
                if nlo > nhi:
                    raise RangeReductionError(
                        f"{rr.name}/{fn}: no common reduced interval at "
                        f"r={r!r} (while processing x={x!r}); the range "
                        "reduction must be redesigned")
                merged[fn][r] = (nlo, nhi)

    out: dict[str, list[LinearConstraint]] = {}
    reduced_count = 0
    for fn in fn_names:
        items = sorted(merged[fn].items())
        out[fn] = [LinearConstraint(r, lo, hi) for r, (lo, hi) in items]
        reduced_count = max(reduced_count, len(items))
    return ReducedConstraintSet(out, input_count=count,
                                reduced_count=reduced_count)
