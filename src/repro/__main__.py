"""Command line interface: ``python -m repro <command>``.

Commands
--------

``eval``      evaluate a shipped correctly rounded function at a point
              and cross-check it against the oracle
``audit``     a mini Table-1 row: wrong-result counts for one function
              across RLIBM-32 and the baseline stand-ins
``generate``  run the generator for a target format and freeze the
              coefficient tables into the library's data packages
``serve``     start the multi-process libm service: shared-memory
              tables, coalesced batches, load shedding (Ctrl-C stops)
``table3``    print the generation statistics of the shipped tables
``trace``     run another repro command with structured tracing enabled
              and write the JSONL trace (``trace -- generate ...``)
``stats``     render a JSONL trace into a Table-3-style summary and a
              flame-style phase breakdown
``lint``      run the floating-point-safety linter (fplint) and the
              frozen-table static verifier (tablecheck)
``certify``   verify (or emit) the proof-carrying certificates that
              accompany the shipped coefficient tables
``cache``     inspect, verify, warm, or compact the persistent
              generation cache (``cache stats|verify|warm|gc``)
``bench``     benchmark registry + append-only performance trajectory
              (``bench run|list|compare|history|export``)
``report``    unified performance health summary: newest trajectory
              record with drift status, cache/oracle hit rates,
              worker utilization, profiler phases
``adversarial``  mine hostile-input corpora for the shipped tables, or
              replay the committed corpora through every evaluation
              path (``adversarial mine|check``)
"""

from __future__ import annotations

import argparse
import sys


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.api import load
    from repro.core.generator import target_bits
    from repro.libm.serialize import TARGETS_BY_NAME
    from repro.oracle import default_oracle as orc
    from repro.rangereduction import reduction_for

    fmt = TARGETS_BY_NAME[args.target]
    x = fmt.to_double(fmt.from_double(args.x))
    g = load(args.function, args.target)
    got = g.evaluate(x)
    got_bits = g.evaluate_bits(x)
    print(f"{args.function}({x!r}) [{args.target}]")
    print(f"  result: {got!r}  bits: {got_bits:#x}")
    rr = reduction_for(args.function, fmt)
    s = rr.special(x)
    want = (target_bits(fmt, s) if s is not None
            else orc.round_to_bits(args.function, x, fmt))
    print(f"  oracle: {'agrees' if want == got_bits else 'DISAGREES'} "
          f"(bits {want:#x})")
    return 0 if want == got_bits else 1


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.api import load
    from repro.baselines import correctness_baselines, posit_baselines
    from repro.eval.correctness import audit_function, build_pool, render_rows
    from repro.libm.serialize import TARGETS_BY_NAME

    from repro.parallel import parse_workers

    fmt = TARGETS_BY_NAME[args.target]
    libs = (posit_baselines() if args.target.startswith("posit")
            else correctness_baselines())
    corpus_dir = None
    if args.adversarial:
        from repro.eval.adversarial import default_corpus_dir

        corpus_dir = default_corpus_dir(".")
    pool = build_pool(args.function, fmt, n_random=args.n,
                      n_hard=args.hard, hard_candidates=4 * args.hard + 100,
                      corpus_dir=corpus_dir)
    rlibm = load(args.function, args.target).fn
    row = audit_function(args.function, fmt, rlibm, libs, pool,
                         workers=parse_workers(args.workers))
    print(render_rows([row], f"audit: {args.function} [{args.target}]"))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.api.generate import generate_library

    generate_library(args.functions or None, args.target,
                     args.out, quick=args.quick, seed=args.seed,
                     workers=args.workers, checkpoint=args.checkpoint)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro import api

    svc = api.serve(args.functions or None, targets=tuple(args.targets),
                    address=args.address, workers=args.workers,
                    max_batch=args.max_batch,
                    max_delay_s=args.max_delay_ms / 1000.0)
    print(f"serving {', '.join(svc.keys)}")
    print(f"  address: {svc.address}")
    print(f"  workers: {args.workers}  tables: {svc.content_hash[:12]}…")
    try:
        signal.pause()
    except KeyboardInterrupt:
        pass
    finally:
        print("shutting down…", file=sys.stderr)
        svc.close()
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.eval.tables import render_table3, table3_rows

    rows = table3_rows(args.target)
    if not rows:
        print(f"no frozen data for target {args.target!r}")
        return 1
    print(render_table3(rows, f"Table 3 ({args.target})"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs

    cmd = list(args.cmd)
    if cmd and cmd[0] == "--":
        cmd = cmd[1:]
    if not cmd:
        print("trace: missing command (usage: trace [--out t.jsonl] "
              "-- <repro command...>)", file=sys.stderr)
        return 2
    if cmd[0] in ("trace", "stats"):
        print(f"trace: refusing to trace {cmd[0]!r}", file=sys.stderr)
        return 2
    obs.enable(args.out)
    try:
        rc = main(cmd)
    finally:
        obs.disable()
    print(f"trace written to {args.out}", file=sys.stderr)
    return rc


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.report import (load_trace, render_metrics, render_summary,
                                  render_tree, summarize)

    try:
        events = load_trace(args.trace)
    except (OSError, ValueError) as e:
        print(f"stats: {e}", file=sys.stderr)
        return 1
    summary = summarize(events)
    print(render_summary(summary, f"trace summary ({args.trace})"))
    if not args.no_tree:
        print(render_tree(events))
    if not args.no_metrics:
        print(render_metrics(summary["metrics"]))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import cli as analysis_cli

    return analysis_cli.run(args)


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.analysis import cli as analysis_cli

    return analysis_cli.run_certify(args)


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import cli as cache_cli

    return cache_cli.run(args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.obs import cli as obs_cli

    return obs_cli.run_bench(args)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import cli as obs_cli

    return obs_cli.run_report(args)


def _cmd_adversarial(args: argparse.Namespace) -> int:
    from repro.eval.adversarial import cli as adversarial_cli

    return adversarial_cli.run(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("eval", help="evaluate a shipped function")
    p.add_argument("function")
    p.add_argument("x", type=float)
    p.add_argument("--target", default="float32")
    p.set_defaults(fn=_cmd_eval)

    p = sub.add_parser("audit", help="mini Table-1 row for one function")
    p.add_argument("function")
    p.add_argument("--target", default="float32")
    p.add_argument("--n", type=int, default=800)
    p.add_argument("--hard", type=int, default=60)
    p.add_argument("--workers", default=None, metavar="N|auto",
                   help="parallelize the audit over a process pool "
                        "(default: serial; results are identical)")
    p.add_argument("--adversarial", action="store_true",
                   help="merge the committed adversarial corpus for this "
                        "function into the audit pool")
    p.set_defaults(fn=_cmd_audit)

    p = sub.add_parser("generate", help="generate + freeze a library")
    p.add_argument("--target", default="bfloat16")
    p.add_argument("--functions", nargs="*")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--seed", type=int, default=2021)
    p.add_argument("--out")
    p.add_argument("--workers", default=None, metavar="N|auto",
                   help="generate functions in parallel worker processes "
                        "(default: serial; results are identical)")
    p.add_argument("--checkpoint", metavar="DIR",
                   help="checkpoint directory: finished functions are "
                        "saved and a restarted run resumes from them")
    p.set_defaults(fn=_cmd_generate)

    p = sub.add_parser("serve",
                       help="start the multi-process libm service "
                            "(unix socket; Ctrl-C to stop)")
    p.add_argument("--functions", nargs="*",
                   help="functions to serve (default: all shipped)")
    p.add_argument("--targets", nargs="*", default=["float32"],
                   help="target formats to serve (default: float32)")
    p.add_argument("--address", default=None,
                   help="unix-socket path (default: a fresh tmp path)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes (default: 2)")
    p.add_argument("--max-batch", type=int, default=65536,
                   help="coalescer flush size in lanes (default: 65536)")
    p.add_argument("--max-delay-ms", type=float, default=2.0,
                   help="coalescer flush deadline (default: 2 ms)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("table3", help="generation statistics")
    p.add_argument("--target", default="float32")
    p.set_defaults(fn=_cmd_table3)

    p = sub.add_parser("trace",
                       help="run a repro command with tracing enabled")
    p.add_argument("--out", default="trace.jsonl",
                   help="JSONL trace path (default: trace.jsonl)")
    p.add_argument("cmd", nargs=argparse.REMAINDER,
                   help="the repro command to run, after '--'")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("stats", help="render a JSONL trace report")
    p.add_argument("trace", help="path to a trace written by 'trace'")
    p.add_argument("--no-tree", action="store_true",
                   help="skip the flame-style phase breakdown")
    p.add_argument("--no-metrics", action="store_true",
                   help="skip the metrics snapshot section")
    p.set_defaults(fn=_cmd_stats)

    p = sub.add_parser("lint",
                       help="floating-point-safety linter + table verifier")
    from repro.analysis.cli import add_arguments as _lint_args
    _lint_args(p)
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("certify",
                       help="verify/emit the proof-carrying table "
                            "certificates")
    from repro.analysis.cli import add_certify_arguments as _certify_args
    _certify_args(p)
    p.set_defaults(fn=_cmd_certify)

    p = sub.add_parser("cache",
                       help="persistent generation cache maintenance")
    from repro.cache.cli import add_arguments as _cache_args
    _cache_args(p)
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser("bench",
                       help="benchmark registry + performance trajectory")
    from repro.obs.cli import add_bench_arguments as _bench_args
    _bench_args(p)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("report",
                       help="performance health summary (trajectory, "
                            "hit rates, utilization, profiler)")
    from repro.obs.cli import add_report_arguments as _report_args
    _report_args(p)
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("adversarial",
                       help="mine or replay the hostile-input corpora "
                            "(adversarial mine|check)")
    from repro.eval.adversarial.cli import add_arguments as _adv_args
    _adv_args(p)
    p.set_defaults(fn=_cmd_adversarial)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
