"""Admission control: bounded queues and explicit load shedding.

A service with no admission control converts overload into unbounded
memory growth and unbounded tail latency.  The frontend consults an
:class:`AdmissionController` before accepting each request; a refused
request is answered with ``STATUS_SHED`` immediately — the client
learns *now* that it must back off, instead of timing out later.

Two independent caps:

* ``max_pending_evals`` — total lanes admitted but not yet answered,
  service-wide.  Bounds the coalescer buffers plus everything queued on
  the worker pool.
* ``max_client_inflight`` — outstanding *requests* per connection, so
  one aggressive pipeliner cannot monopolize the eval budget and starve
  every other client.

The controller is event-loop-confined (no locks); counts move in
``admit`` and ``release`` only, so the gauges always reconcile.
"""

from __future__ import annotations

from repro.obs import metrics

__all__ = ["AdmissionController"]


class AdmissionController:
    """Lane- and request-budget gatekeeper for the frontend."""

    def __init__(self, *, max_pending_evals: int = 4_000_000,
                 max_client_inflight: int = 128):
        self.max_pending_evals = int(max_pending_evals)
        self.max_client_inflight = int(max_client_inflight)
        self._pending = 0
        self._inflight: dict[int, int] = {}
        self._g_pending = metrics.gauge("serve.pending_evals")
        self._c_shed = metrics.counter("serve.shed")
        self._c_shed_client = metrics.counter("serve.shed.client_cap")

    def admit(self, client_id: int, lanes: int) -> bool:
        """True and reserves budget, or False → caller replies SHED."""
        if self._pending + lanes > self.max_pending_evals:
            self._c_shed.inc()
            return False
        if self._inflight.get(client_id, 0) >= self.max_client_inflight:
            self._c_shed.inc()
            self._c_shed_client.inc()
            return False
        self._pending += lanes
        self._inflight[client_id] = self._inflight.get(client_id, 0) + 1
        self._g_pending.set(float(self._pending))
        return True

    def release(self, client_id: int, lanes: int) -> None:
        """Return the budget reserved by a successful ``admit``."""
        self._pending -= lanes
        self._g_pending.set(float(self._pending))
        left = self._inflight.get(client_id, 0) - 1
        if left > 0:
            self._inflight[client_id] = left
        else:
            self._inflight.pop(client_id, None)

    def forget(self, client_id: int) -> None:
        """Drop a disconnected client's request count (lanes released
        individually as their batches complete)."""
        self._inflight.pop(client_id, None)
