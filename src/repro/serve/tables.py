"""Frozen coefficient tables in a shared-memory arena.

The serving layer loads each function's frozen data module **once**, in
the parent process, and publishes the evaluation-relevant tables into a
:class:`multiprocessing.shared_memory.SharedMemory` segment.  Worker
processes :func:`attach` the segment and rebuild runnable
:class:`~repro.batch.engine.BatchFunction` pipelines whose
gathered-Horner kernels read the coefficient columns *in place* —
zero-copy, read-only views straight into the arena.  A worker never
imports ``repro.libm.data_*`` (importing all eighteen shipped modules
costs ~0.7 s and ~90 MB of private RSS per process; attaching the arena
is milliseconds and the pages are shared).

Arena layout::

    [0:8)    magic  b"RLSARENA"
    [8:12)   format version (uint32 LE)
    [12:20)  manifest length M (uint64 LE)
    [20:20+M) pickled manifest (built by this module, never from the wire)
    [...]    8-byte-aligned float64 coefficient arena

The manifest maps ``"fn:target"`` keys to everything a worker needs
*except* the coefficients: the range reduction's kind + frozen state,
and per elementary function a descriptor per sign — either
``mode="gathered"`` (shift/index_bits/Horner structure plus the arena
offset of its padded column block) or ``mode="inline"`` (the raw
piecewise dict, for the rare table the padded gathered form cannot
represent bit-identically; see
:func:`repro.batch.kernels.padded_tables`).

Trust boundary (see DESIGN.md): the arena is *versioned against table
content* — the manifest records a SHA-256 over the descriptors and the
coefficient bytes, and :func:`attach` recomputes and checks it, so a
worker can never silently evaluate against a stale or torn arena.  The
attached views are marked non-writeable; nothing after
:func:`publish` ever mutates the segment.
"""

from __future__ import annotations

import hashlib
import pickle
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Sequence

import numpy as np

from repro.batch.engine import BatchFunction
from repro.batch.kernels import gathered_kernel, padded_tables
from repro.batch.rounding import decode_kernel
from repro.core.piecewise import PiecewisePolynomial
from repro.core.polynomials import Polynomial, horner_structure

__all__ = ["ARENA_VERSION", "ArenaError", "AttachedArena", "PublishedArena",
           "arena_key", "attach", "build_manifest", "publish"]

ARENA_VERSION = 1
_MAGIC = b"RLSARENA"
_HEAD = len(_MAGIC) + 4 + 8  # magic + version + manifest length

#: mappings that could not unmap at close() because exported views were
#: still alive; kept referenced so the finalizer never re-raises
_PINNED_MAPPINGS: list = []


class ArenaError(RuntimeError):
    """The arena is missing, corrupt, or does not match its hash."""


def arena_key(function: str, target: str) -> str:
    """The manifest key of one (function, target) pair."""
    return f"{function}:{target}"


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _side_descriptor(pp: PiecewisePolynomial | None,
                     blocks: list[np.ndarray], offset: int):
    """Descriptor for one sign's piecewise table; appends arena blocks.

    Returns ``(descriptor, new_offset)``.  Gathered mode stores the
    padded column matrix (``nterms`` x ``npolys`` float64, row-major) at
    ``offset``; inline mode embeds the polynomial literals directly in
    the manifest (tiny, and only used where padding is unsound).
    """
    if pp is None:
        return None, offset
    padded = padded_tables(pp.polys) if pp.index_bits else None
    if padded is None:
        desc = {"mode": "inline",
                "index_bits": pp.index_bits, "shift": pp.shift,
                "polys": [(tuple(p.exponents), tuple(p.coefficients))
                          for p in pp.polys]}
        return desc, offset
    start, stride, cols = padded
    block = np.ascontiguousarray(np.stack(cols))  # (nterms, npolys)
    blocks.append(block)
    desc = {"mode": "gathered",
            "shift": pp.shift, "index_bits": pp.index_bits,
            "start": start, "stride": stride,
            "nterms": block.shape[0], "npolys": block.shape[1],
            "offset": offset}
    return desc, offset + block.nbytes


def build_manifest(pairs: Sequence[tuple[str, str]]):
    """Load each (function, target) pair and freeze its serving tables.

    Returns ``(manifest, arena_bytes)``.  This is the only place the
    serving layer touches :mod:`repro.libm.runtime` — it runs once, in
    the publishing process.
    """
    from repro.libm.runtime import load_function
    from repro.libm.serialize import _RR_KIND, _rr_state

    blocks: list[np.ndarray] = []
    entries: dict[str, Any] = {}
    offset = 0
    for function, target in pairs:
        fn = load_function(function, target)
        rr = fn.spec.rr
        fns = []
        for name in rr.fn_names:
            af = fn.approx[name]
            neg, offset = _side_descriptor(af.neg, blocks, offset)
            pos, offset = _side_descriptor(af.pos, blocks, offset)
            fns.append({"name": name, "neg": neg, "pos": pos})
        entries[arena_key(function, target)] = {
            "function": function, "target": target,
            "rr_kind": _RR_KIND[type(rr)], "rr_state": _rr_state(rr),
            "fns": fns,
        }
    arena = b"".join(b.tobytes() for b in blocks)
    manifest = {"version": ARENA_VERSION, "entries": entries,
                "arena_nbytes": len(arena)}
    manifest["content_hash"] = _content_hash(manifest, arena)
    return manifest, arena


def _content_hash(manifest: dict, arena: bytes) -> str:
    """SHA-256 binding the descriptors to the coefficient bytes."""
    h = hashlib.sha256()
    h.update(repr(sorted(
        (k, repr(v)) for k, v in manifest["entries"].items())).encode())
    h.update(arena)
    return h.hexdigest()


class PublishedArena:
    """An owned shared-memory arena; the publisher must :meth:`close` it."""

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict):
        self.shm = shm
        self.name = shm.name
        self.manifest = manifest
        self.content_hash = manifest["content_hash"]

    def close(self) -> None:
        """Detach and unlink the segment (idempotent)."""
        if self.shm is None:
            return
        shm, self.shm = self.shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "PublishedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def publish(pairs: Sequence[tuple[str, str]],
            name: str | None = None) -> PublishedArena:
    """Freeze the pairs' tables into a new shared-memory arena."""
    manifest, arena = build_manifest(pairs)
    blob = pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
    arena_at = _align8(_HEAD + len(blob))
    total = max(1, arena_at + len(arena))
    shm = shared_memory.SharedMemory(
        name=name or f"rlserve-{secrets.token_hex(6)}",
        create=True, size=total)
    buf = shm.buf
    buf[:len(_MAGIC)] = _MAGIC
    buf[len(_MAGIC):len(_MAGIC) + 4] = ARENA_VERSION.to_bytes(4, "little")
    buf[len(_MAGIC) + 4:_HEAD] = len(blob).to_bytes(8, "little")
    buf[_HEAD:_HEAD + len(blob)] = blob
    buf[arena_at:arena_at + len(arena)] = arena
    return PublishedArena(shm, manifest)


class AttachedArena:
    """A read-only view of a published arena in (usually) another process.

    :meth:`batch_function` rebuilds the full batch pipeline for one
    key — range reduction from its pickled state, Horner kernels as
    zero-copy views into the segment — and memoizes it.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict,
                 arena: np.ndarray):
        self.shm = shm
        self.name = shm.name
        self.manifest = manifest
        self.content_hash = manifest["content_hash"]
        self._arena = arena
        self._funcs: dict[str, BatchFunction] = {}
        self._decoders: dict[str, Any] = {}

    def keys(self) -> list[str]:
        """The ``"fn:target"`` keys this arena serves."""
        return sorted(self.manifest["entries"])

    def _cols(self, desc: dict) -> list[np.ndarray]:
        """Read-only per-Horner-step column views for a gathered block."""
        n = desc["nterms"] * desc["npolys"]
        start = desc["offset"] // 8
        block = self._arena[start:start + n].reshape(
            desc["nterms"], desc["npolys"])
        return [block[t] for t in range(desc["nterms"])]

    def _side_kernel(self, desc: dict | None):
        if desc is None:
            return None
        if desc["mode"] == "gathered":
            return gathered_kernel(desc["shift"], desc["index_bits"],
                                   desc["start"], desc["stride"],
                                   self._cols(desc))
        from repro.batch.kernels import compile_piecewise

        polys = tuple(Polynomial(tuple(e), tuple(c))
                      for e, c in desc["polys"])
        return compile_piecewise(PiecewisePolynomial(
            desc["index_bits"], desc["shift"], polys))

    def batch_function(self, key: str) -> BatchFunction:
        """The memoized batch pipeline for ``"fn:target"``."""
        bf = self._funcs.get(key)
        if bf is not None:
            return bf
        from repro.batch.kernels import compile_approx  # noqa: F401 (doc)
        from repro.libm.serialize import TARGETS_BY_NAME, _rr_from_state

        entry = self.manifest["entries"].get(key)
        if entry is None:
            raise ArenaError(f"arena {self.name} does not serve {key!r}")
        target = TARGETS_BY_NAME[entry["target"]]
        rr = _rr_from_state(entry["rr_kind"], dict(entry["rr_state"]),
                            target)
        kernels = []
        for fd in entry["fns"]:
            neg = self._side_kernel(fd["neg"])
            pos = self._side_kernel(fd["pos"])
            kernels.append(_sign_dispatch(neg, pos))
        bf = BatchFunction.from_parts(rr, kernels, target)
        self._funcs[key] = bf
        return bf

    def decoder(self, key: str):
        """Bit-pattern → double decode kernel for the key's target."""
        dec = self._decoders.get(key)
        if dec is None:
            from repro.libm.serialize import TARGETS_BY_NAME

            entry = self.manifest["entries"].get(key)
            if entry is None:
                raise ArenaError(
                    f"arena {self.name} does not serve {key!r}")
            dec = decode_kernel(TARGETS_BY_NAME[entry["target"]])
            self._decoders[key] = dec
        return dec

    def close(self) -> None:
        """Drop the views and detach (idempotent)."""
        if self.shm is None:
            return
        self._funcs.clear()
        self._decoders.clear()
        self._arena = None
        shm, self.shm = self.shm, None
        try:
            shm.close()
        except BufferError:
            # a kernel built from this arena is still alive somewhere;
            # the mapping stays until those references die (or the
            # process exits) — never invalidate memory under a kernel.
            # Pinning the handle also keeps SharedMemory.__del__ from
            # re-raising the same BufferError as an unraisable warning.
            _PINNED_MAPPINGS.append(shm)


def _sign_dispatch(neg, pos):
    """Mirror :func:`repro.batch.kernels.compile_approx`'s sign split."""
    if neg is None:
        return pos
    if pos is None:
        return neg

    def kernel(r: np.ndarray) -> np.ndarray:
        out = np.empty_like(r)
        m = r < 0.0
        if m.any():
            out[m] = neg(r[m])
        m = ~m
        if m.any():
            out[m] = pos(r[m])
        return out

    return kernel


def attach(name: str, expect_hash: str | None = None, *,
           untrack: bool = False) -> AttachedArena:
    """Attach an existing arena read-only and verify its integrity.

    ``expect_hash`` pins the attach to a specific publication — a
    worker handed the publisher's content hash refuses anything else.

    ``untrack=True`` is for attachers that are *not* forked from the
    publisher (a separate interpreter inspecting a running service):
    such a process spawns its own resource-tracker daemon, which would
    unlink — destroy — the arena when the process exits (bpo-38119).
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as e:
        raise ArenaError(f"no shared-memory arena named {name!r}") from e
    # The publisher owns the segment's lifetime.  Workers are forked,
    # so they share the publisher's resource-tracker daemon, where
    # registration is an idempotent set-add: this attach-time register
    # is a no-op and the publisher's unlink clears the single entry.
    # (Unregistering here instead would erase the *publisher's*
    # registration and make its unlink complain.)
    if untrack:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    try:
        buf = bytes(shm.buf[:_HEAD])
        if buf[:len(_MAGIC)] != _MAGIC:
            raise ArenaError(f"segment {name!r} is not a libm arena")
        version = int.from_bytes(buf[len(_MAGIC):len(_MAGIC) + 4], "little")
        if version != ARENA_VERSION:
            raise ArenaError(
                f"arena {name!r} has format version {version}, "
                f"this build reads {ARENA_VERSION}")
        blob_len = int.from_bytes(buf[len(_MAGIC) + 4:_HEAD], "little")
        manifest = pickle.loads(bytes(shm.buf[_HEAD:_HEAD + blob_len]))
        arena_at = _align8(_HEAD + blob_len)
        nbytes = manifest["arena_nbytes"]
        raw = bytes(shm.buf[arena_at:arena_at + nbytes])
        if _content_hash(manifest, raw) != manifest["content_hash"]:
            raise ArenaError(
                f"arena {name!r} fails its content hash (torn write or "
                "stale segment)")
        if expect_hash is not None and \
                manifest["content_hash"] != expect_hash:
            raise ArenaError(
                f"arena {name!r} holds content {manifest['content_hash']:.12s}…, "
                f"expected {expect_hash:.12s}…")
        arena = np.frombuffer(shm.buf, dtype=np.float64,
                              offset=arena_at, count=nbytes // 8)
        arena.flags.writeable = False
    except ArenaError:
        shm.close()
        raise
    except Exception as e:
        shm.close()
        raise ArenaError(f"arena {name!r} is corrupt: {e}") from e
    return AttachedArena(shm, manifest, arena)
