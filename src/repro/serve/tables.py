"""Frozen coefficient tables in a shared-memory arena.

The serving layer loads each function's frozen data module **once**, in
the parent process, and publishes the evaluation-relevant tables into a
:class:`multiprocessing.shared_memory.SharedMemory` segment.  Worker
processes :func:`attach` the segment and rebuild runnable
:class:`~repro.batch.engine.BatchFunction` pipelines whose
gathered-Horner kernels read the coefficient columns *in place* —
zero-copy, read-only views straight into the arena.  A worker never
imports ``repro.libm.data_*``.

Arena layout (format version 2)::

    [0:8)    magic  b"RLSARENA"
    [8:12)   format version (uint32 LE)
    [12:20)  manifest length M (uint64 LE)
    [20:20+M) pickled manifest (built by this module, never from the wire)
    [...]    8-byte-aligned float64 coefficient arena

The float64 arena is **content-addressed**: every block (padded
coefficient columns, range-reduction tables) is deduplicated by its
bytes at publish time, so e.g. ``sinh`` and ``cosh`` — which share
their compensation tables — store them once, across modules.  The
manifest maps ``"fn:target"`` keys to everything a worker needs
*except* the doubles:

* the range reduction's kind + frozen state, with every float-vector
  table lifted out of the pickled state into the arena
  (``rr_vecs``: attr → (byte offset, length)); the attach rebuilds the
  tuples and *primes* the batch table cache
  (:func:`repro.batch.reduce.prime`) with the zero-copy arena views,
  so the hot path never re-converts them;
* per elementary function either one ``mode="merged"`` descriptor
  (both signs folded into a single deduplicated gathered table, see
  :func:`repro.batch.kernels.merged_sign_tables`), or a descriptor per
  sign — ``mode="gathered"`` (shift/index_bits/Horner structure, the
  arena offset of the *unique*-column block, and the slot→unique index
  indirection as little-endian u32 bytes) or ``mode="inline"`` (the
  raw piecewise dict, for the rare table the padded gathered form
  cannot represent bit-identically; see
  :func:`repro.batch.kernels.padded_tables`).

Trust boundary (see DESIGN.md): the arena is *versioned against table
content* — the manifest records a SHA-256 over the descriptors and the
coefficient bytes, and :func:`attach` recomputes and checks it, so a
worker can never silently evaluate against a stale or torn arena.  The
attached views are marked non-writeable; nothing after
:func:`publish` ever mutates the segment.
"""

from __future__ import annotations

import hashlib
import pickle
import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Optional, Sequence

import numpy as np

from repro.batch.engine import BatchFunction
from repro.batch.kernels import (frozen_from_polys, gathered_kernel,
                                 merged_kernel, merged_sign_tables)
from repro.batch.reduce import FrozenGather
from repro.batch.rounding import decode_kernel
from repro.core.piecewise import PiecewisePolynomial
from repro.core.polynomials import Polynomial

__all__ = ["ARENA_VERSION", "ArenaError", "AttachedArena", "PublishedArena",
           "arena_key", "attach", "build_manifest", "publish"]

ARENA_VERSION = 2
_MAGIC = b"RLSARENA"
_HEAD = len(_MAGIC) + 4 + 8  # magic + version + manifest length

#: float-vector rr attributes shorter than this stay pickled in the
#: manifest; longer ones move into the content-addressed arena
_VEC_MIN = 16

#: mappings that could not unmap at close() because exported views were
#: still alive; kept referenced so the finalizer never re-raises
_PINNED_MAPPINGS: list = []


class ArenaError(RuntimeError):
    """The arena is missing, corrupt, or does not match its hash."""


def arena_key(function: str, target: str) -> str:
    """The manifest key of one (function, target) pair."""
    return f"{function}:{target}"


def _align8(n: int) -> int:
    return (n + 7) & ~7


class _BlockPool:
    """Content-addressed float64 block store (dedup by exact bytes)."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self._offsets: dict[bytes, int] = {}
        self.nbytes = 0

    def add(self, arr: np.ndarray) -> int:
        """Byte offset of this block in the arena, storing it once."""
        raw = np.ascontiguousarray(arr, dtype=np.float64).tobytes()
        off = self._offsets.get(raw)
        if off is None:
            off = self.nbytes
            self._offsets[raw] = off
            self._chunks.append(raw)
            self.nbytes += len(raw)
        return off

    def tobytes(self) -> bytes:
        return b"".join(self._chunks)


def _index_bytes(index: Optional[np.ndarray]):
    if index is None:
        return None
    return index.astype("<u4").tobytes()


def _side_descriptor(pp: PiecewisePolynomial | None, pool: _BlockPool):
    """Descriptor for one sign's piecewise table; pools its columns.

    Gathered mode stores the deduplicated padded column matrix
    (``nterms`` x ``nuniq`` float64, row-major) in the arena plus the
    slot→unique indirection in the manifest; inline mode embeds the
    polynomial literals directly (tiny: single-polynomial sides and the
    rare table where padding is unsound).
    """
    if pp is None:
        return None
    fz = pp.__dict__.get("_frozen")
    if not (isinstance(fz, FrozenGather) and fz.index_bits == pp.index_bits
            and fz.shift == pp.shift):
        fz = frozen_from_polys(pp)
    if fz is None:
        return {"mode": "inline",
                "index_bits": pp.index_bits, "shift": pp.shift,
                "polys": [(tuple(p.exponents), tuple(p.coefficients))
                          for p in pp.polys]}
    return {"mode": "gathered",
            "shift": fz.shift, "index_bits": fz.index_bits,
            "start": fz.start, "stride": fz.stride,
            "nterms": fz.cols.shape[0], "nuniq": fz.cols.shape[1],
            "offset": pool.add(fz.cols),
            "index": _index_bytes(fz.index)}


def build_manifest(pairs: Sequence[tuple[str, str]]):
    """Load each (function, target) pair and freeze its serving tables.

    Returns ``(manifest, arena_bytes)``.  This is the only place the
    serving layer touches :mod:`repro.libm.runtime` — it runs once, in
    the publishing process.
    """
    from repro.libm.runtime import load_function
    from repro.libm.serialize import _RR_KIND, _rr_state

    pool = _BlockPool()
    entries: dict[str, Any] = {}
    for function, target in pairs:
        fn = load_function(function, target)
        rr = fn.spec.rr
        fns = []
        for name in rr.fn_names:
            af = fn.approx[name]
            merged = merged_sign_tables(af)
            if merged is not None:
                smin, w, start, stride, grid, index = merged
                fns.append({"name": name, "merged": {
                    "mode": "merged", "smin": smin, "w": w,
                    "start": start, "stride": stride,
                    "nterms": grid.shape[0], "nuniq": grid.shape[1],
                    "offset": pool.add(grid),
                    "index": _index_bytes(index)}})
            else:
                fns.append({"name": name,
                            "neg": _side_descriptor(af.neg, pool),
                            "pos": _side_descriptor(af.pos, pool)})
        state = _rr_state(rr)
        rr_vecs: dict[str, tuple[int, int]] = {}
        for attr in sorted(state):
            v = state[attr]
            if isinstance(v, tuple) and len(v) >= _VEC_MIN \
                    and all(type(x) is float for x in v):
                rr_vecs[attr] = (pool.add(np.array(v, dtype=np.float64)),
                                 len(v))
                del state[attr]
        entries[arena_key(function, target)] = {
            "function": function, "target": target,
            "rr_kind": _RR_KIND[type(rr)], "rr_state": state,
            "rr_vecs": rr_vecs, "fns": fns,
        }
    arena = pool.tobytes()
    manifest = {"version": ARENA_VERSION, "entries": entries,
                "arena_nbytes": len(arena)}
    manifest["content_hash"] = _content_hash(manifest, arena)
    return manifest, arena


def _content_hash(manifest: dict, arena: bytes) -> str:
    """SHA-256 binding the descriptors to the coefficient bytes."""
    h = hashlib.sha256()
    h.update(repr(sorted(
        (k, repr(v)) for k, v in manifest["entries"].items())).encode())
    h.update(arena)
    return h.hexdigest()


class PublishedArena:
    """An owned shared-memory arena; the publisher must :meth:`close` it."""

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict):
        self.shm = shm
        self.name = shm.name
        self.manifest = manifest
        self.content_hash = manifest["content_hash"]

    def close(self) -> None:
        """Detach and unlink the segment (idempotent)."""
        if self.shm is None:
            return
        shm, self.shm = self.shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "PublishedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def publish(pairs: Sequence[tuple[str, str]],
            name: str | None = None) -> PublishedArena:
    """Freeze the pairs' tables into a new shared-memory arena."""
    manifest, arena = build_manifest(pairs)
    blob = pickle.dumps(manifest, protocol=pickle.HIGHEST_PROTOCOL)
    arena_at = _align8(_HEAD + len(blob))
    total = max(1, arena_at + len(arena))
    shm = shared_memory.SharedMemory(
        name=name or f"rlserve-{secrets.token_hex(6)}",
        create=True, size=total)
    buf = shm.buf
    buf[:len(_MAGIC)] = _MAGIC
    buf[len(_MAGIC):len(_MAGIC) + 4] = ARENA_VERSION.to_bytes(4, "little")
    buf[len(_MAGIC) + 4:_HEAD] = len(blob).to_bytes(8, "little")
    buf[_HEAD:_HEAD + len(blob)] = blob
    buf[arena_at:arena_at + len(arena)] = arena
    return PublishedArena(shm, manifest)


class AttachedArena:
    """A read-only view of a published arena in (usually) another process.

    :meth:`batch_function` rebuilds the full batch pipeline for one
    key — range reduction from its pickled state (float-vector tables
    rebuilt from, and primed with, arena views), Horner kernels as
    zero-copy views into the segment — and memoizes it.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict,
                 arena: np.ndarray):
        self.shm = shm
        self.name = shm.name
        self.manifest = manifest
        self.content_hash = manifest["content_hash"]
        self._arena = arena
        self._funcs: dict[str, BatchFunction] = {}
        self._decoders: dict[str, Any] = {}

    def keys(self) -> list[str]:
        """The ``"fn:target"`` keys this arena serves."""
        return sorted(self.manifest["entries"])

    def _block(self, desc: dict) -> np.ndarray:
        """Read-only (nterms, nuniq) column view of one pooled block."""
        n = desc["nterms"] * desc["nuniq"]
        start = desc["offset"] // 8
        return self._arena[start:start + n].reshape(
            desc["nterms"], desc["nuniq"])

    @staticmethod
    def _index(desc: dict) -> Optional[np.ndarray]:
        raw = desc.get("index")
        if raw is None:
            return None
        return np.frombuffer(raw, dtype="<u4").astype(np.intp)

    def _side_kernel(self, desc: dict | None):
        if desc is None:
            return None
        if desc["mode"] == "gathered":
            block = self._block(desc)
            return gathered_kernel(desc["shift"], desc["index_bits"],
                                   desc["start"], desc["stride"],
                                   list(block), self._index(desc))
        from repro.batch.kernels import compile_piecewise

        polys = tuple(Polynomial(tuple(e), tuple(c))
                      for e, c in desc["polys"])
        return compile_piecewise(PiecewisePolynomial(
            desc["index_bits"], desc["shift"], polys))

    def batch_function(self, key: str) -> BatchFunction:
        """The memoized batch pipeline for ``"fn:target"``."""
        bf = self._funcs.get(key)
        if bf is not None:
            return bf
        from repro.batch.reduce import prime
        from repro.libm.serialize import TARGETS_BY_NAME, _rr_from_state

        entry = self.manifest["entries"].get(key)
        if entry is None:
            raise ArenaError(f"arena {self.name} does not serve {key!r}")
        target = TARGETS_BY_NAME[entry["target"]]
        state = dict(entry["rr_state"])
        primed: list[tuple[str, np.ndarray]] = []
        for attr, (off, n) in entry.get("rr_vecs", {}).items():
            view = self._arena[off // 8:off // 8 + n]
            state[attr] = tuple(view.tolist())
            primed.append((attr, view))
        rr = _rr_from_state(entry["rr_kind"], state, target)
        for attr, view in primed:
            prime(rr, attr, view)
        kernels = []
        for fd in entry["fns"]:
            if "merged" in fd:
                desc = fd["merged"]
                kernels.append(merged_kernel(
                    desc["smin"], desc["w"], desc["start"], desc["stride"],
                    self._block(desc), self._index(desc)))
            else:
                neg = self._side_kernel(fd["neg"])
                pos = self._side_kernel(fd["pos"])
                kernels.append(_sign_dispatch(neg, pos))
        bf = BatchFunction.from_parts(rr, kernels, target)
        self._funcs[key] = bf
        return bf

    def decoder(self, key: str):
        """Bit-pattern → double decode kernel for the key's target."""
        dec = self._decoders.get(key)
        if dec is None:
            from repro.libm.serialize import TARGETS_BY_NAME

            entry = self.manifest["entries"].get(key)
            if entry is None:
                raise ArenaError(
                    f"arena {self.name} does not serve {key!r}")
            dec = decode_kernel(TARGETS_BY_NAME[entry["target"]])
            self._decoders[key] = dec
        return dec

    def close(self) -> None:
        """Drop the views and detach (idempotent)."""
        if self.shm is None:
            return
        self._funcs.clear()
        self._decoders.clear()
        self._arena = None
        shm, self.shm = self.shm, None
        try:
            shm.close()
        except BufferError:
            # a kernel built from this arena is still alive somewhere;
            # the mapping stays until those references die (or the
            # process exits) — never invalidate memory under a kernel.
            # Pinning the handle also keeps SharedMemory.__del__ from
            # re-raising the same BufferError as an unraisable warning.
            _PINNED_MAPPINGS.append(shm)


def _sign_dispatch(neg, pos):
    """Mirror :func:`repro.batch.kernels.compile_approx`'s sign split."""
    if neg is None:
        return pos
    if pos is None:
        return neg

    def kernel(r: np.ndarray) -> np.ndarray:
        out = np.empty_like(r)
        m = r < 0.0
        if m.any():
            out[m] = neg(r[m])
        m = ~m
        if m.any():
            out[m] = pos(r[m])
        return out

    return kernel


def attach(name: str, expect_hash: str | None = None, *,
           untrack: bool = False) -> AttachedArena:
    """Attach an existing arena read-only and verify its integrity.

    ``expect_hash`` pins the attach to a specific publication — a
    worker handed the publisher's content hash refuses anything else.

    ``untrack=True`` is for attachers that are *not* forked from the
    publisher (a separate interpreter inspecting a running service):
    such a process spawns its own resource-tracker daemon, which would
    unlink — destroy — the arena when the process exits (bpo-38119).
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as e:
        raise ArenaError(f"no shared-memory arena named {name!r}") from e
    # The publisher owns the segment's lifetime.  Workers are forked,
    # so they share the publisher's resource-tracker daemon, where
    # registration is an idempotent set-add: this attach-time register
    # is a no-op and the publisher's unlink clears the single entry.
    # (Unregistering here instead would erase the *publisher's*
    # registration and make its unlink complain.)
    if untrack:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    try:
        buf = bytes(shm.buf[:_HEAD])
        if buf[:len(_MAGIC)] != _MAGIC:
            raise ArenaError(f"segment {name!r} is not a libm arena")
        version = int.from_bytes(buf[len(_MAGIC):len(_MAGIC) + 4], "little")
        if version != ARENA_VERSION:
            raise ArenaError(
                f"arena {name!r} has format version {version}, "
                f"this build reads {ARENA_VERSION}")
        blob_len = int.from_bytes(buf[len(_MAGIC) + 4:_HEAD], "little")
        manifest = pickle.loads(bytes(shm.buf[_HEAD:_HEAD + blob_len]))
        arena_at = _align8(_HEAD + blob_len)
        nbytes = manifest["arena_nbytes"]
        raw = bytes(shm.buf[arena_at:arena_at + nbytes])
        if _content_hash(manifest, raw) != manifest["content_hash"]:
            raise ArenaError(
                f"arena {name!r} fails its content hash (torn write or "
                "stale segment)")
        if expect_hash is not None and \
                manifest["content_hash"] != expect_hash:
            raise ArenaError(
                f"arena {name!r} holds content {manifest['content_hash']:.12s}…, "
                f"expected {expect_hash:.12s}…")
        arena = np.frombuffer(shm.buf, dtype=np.float64,
                              offset=arena_at, count=nbytes // 8)
        arena.flags.writeable = False
    except ArenaError:
        shm.close()
        raise
    except Exception as e:
        shm.close()
        raise ArenaError(f"arena {name!r} is corrupt: {e}") from e
    return AttachedArena(shm, manifest, arena)
