"""Blocking client for the libm service.

:class:`ServiceClient` mirrors the :class:`repro.api.Library` batch
surface — ``evaluate_batch`` / ``evaluate_bits_batch`` with identical
signatures and shapes — so swapping a local library handle for a
service connection is a one-line change.  Large inputs are split into
``chunk`` -lane requests and *pipelined*: every request is written
before the first reply is read, letting the service coalesce them into
large worker batches.

``STATUS_SHED`` replies are retried with exponential backoff (the
service promises shedding is a statement about load, never about the
input); after ``shed_retries`` refusals :class:`ServiceOverloaded` is
raised with the counts a caller needs to back off meaningfully.
"""

from __future__ import annotations

import socket
import time

import numpy as np

from repro.serve import protocol

__all__ = ["ServiceClient", "ServiceError", "ServiceOverloaded", "connect"]


class ServiceError(RuntimeError):
    """The service answered with STATUS_ERROR."""


class ServiceOverloaded(RuntimeError):
    """The service kept shedding after every retry."""


class ServiceClient:
    """One connection to a running libm service, bound to one function.

    Not thread-safe: one client per thread (connections are cheap).
    """

    def __init__(self, function: str, target: str = "float32", *,
                 address: str, timeout: float = 30.0, chunk: int = 65536,
                 shed_retries: int = 8, shed_backoff_s: float = 0.005):
        self.function = function
        self.target = target
        self.address = address
        self.chunk = int(chunk)
        self.shed_retries = int(shed_retries)
        self.shed_backoff_s = float(shed_backoff_s)
        self._req_seq = 0
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(address)

    # -- the Library-compatible surface ------------------------------------

    def evaluate(self, x: float) -> float:
        """f(x) correctly rounded to the target, as a double."""
        return float(self._run(protocol.OP_EVAL,
                               np.array([x], dtype=np.float64))[0])

    __call__ = evaluate

    def evaluate_batch(self, xs) -> np.ndarray:
        """Vectorized evaluate: float64 array in, doubles out."""
        arr = np.asarray(xs, dtype=np.float64)
        return self._run(protocol.OP_EVAL,
                         arr.reshape(-1)).reshape(arr.shape)

    def evaluate_bits_batch(self, xs) -> np.ndarray:
        """Vectorized evaluate to target bit patterns (uint64)."""
        arr = np.asarray(xs, dtype=np.float64)
        return self._run(protocol.OP_EVAL_BITS,
                         arr.reshape(-1)).reshape(arr.shape)

    def evaluate_bits_from_bits(self, bits) -> np.ndarray:
        """Target bit patterns in, correctly rounded bit patterns out.

        The corpus-replay path: inputs are *input* encodings in the
        target format, decoded service-side exactly like
        :func:`repro.eval.adversarial.generators.input_value`.
        """
        arr = np.asarray(bits, dtype=np.uint64)
        return self._run(protocol.OP_EVAL_FROM_BITS,
                         arr.reshape(-1)).reshape(arr.shape)

    def ping(self) -> bool:
        """Round-trip an empty request (liveness check)."""
        self._req_seq += 1
        rid = self._req_seq
        protocol.send_frame(self._sock, protocol.pack_request(
            rid, protocol.OP_PING, self.function, self.target,
            np.empty(0, dtype=np.float64)))
        rep = protocol.unpack_reply(protocol.recv_frame(self._sock),
                                    protocol.OP_PING)
        return rep.status == protocol.STATUS_OK

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire machinery ----------------------------------------------------

    def _run(self, op: int, flat: np.ndarray) -> np.ndarray:
        """Evaluate a flat array: chunk, pipeline, reassemble, retry SHED."""
        if flat.size == 0:
            return np.empty(0, dtype=protocol.reply_dtype(op))
        chunks = [flat[i:i + self.chunk]
                  for i in range(0, len(flat), self.chunk)]
        results: dict[int, np.ndarray] = {}
        pending = self._send_all(op, chunks, range(len(chunks)))
        shed_round = 0
        while pending:
            shed: list[int] = []
            for _ in range(len(pending)):
                rep = protocol.unpack_reply(
                    protocol.recv_frame(self._sock), op)
                idx = pending.get(rep.req_id)
                if idx is None:
                    raise protocol.ProtocolError(
                        f"reply for unknown request id {rep.req_id}")
                del pending[rep.req_id]
                if rep.status == protocol.STATUS_OK:
                    results[idx] = rep.data
                elif rep.status == protocol.STATUS_SHED:
                    shed.append(idx)
                else:
                    raise ServiceError(rep.error or "service error")
            if shed:
                shed_round += 1
                if shed_round > self.shed_retries:
                    raise ServiceOverloaded(
                        f"service shed {len(shed)} of {len(chunks)} "
                        f"chunks after {self.shed_retries} retries")
                time.sleep(self.shed_backoff_s * (2 ** (shed_round - 1)))
                pending = self._send_all(
                    op, [chunks[i] for i in shed], shed)
        return np.concatenate([results[i] for i in range(len(chunks))]) \
            if len(chunks) > 1 else results[0]

    def _send_all(self, op: int, chunks, indices) -> dict[int, int]:
        """Write one request per chunk; returns req_id → chunk index."""
        pending: dict[int, int] = {}
        for chunk, idx in zip(chunks, indices):
            self._req_seq += 1
            rid = self._req_seq & 0xFFFFFFFF
            protocol.send_frame(self._sock, protocol.pack_request(
                rid, op, self.function, self.target, chunk))
            pending[rid] = idx
        return pending


def connect(function: str, target: str = "float32", *,
            address: str, **kwargs) -> ServiceClient:
    """Dial a running libm service (see :func:`repro.serve.serve`)."""
    return ServiceClient(function, target, address=address, **kwargs)
