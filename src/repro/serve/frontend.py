"""The libm service frontend: asyncio socket server over the worker pool.

:func:`serve` wires the whole serving stack together and returns a
:class:`ServiceHandle`:

1. publish the requested functions' tables into a shared-memory arena
   (:mod:`repro.serve.tables` — the only step that imports frozen data
   modules, and it runs exactly once);
2. fork the worker pool against that arena
   (:mod:`repro.serve.workers`);
3. start an asyncio unix-socket server on a background thread, with a
   :class:`~repro.serve.coalesce.Coalescer` batching requests into the
   pool and an
   :class:`~repro.serve.admission.AdmissionController` shedding load
   past the configured bounds.

Each connection is handled by one task that reads frames and spawns a
task per request, so a client may pipeline: later requests in a
connection coalesce with earlier ones instead of waiting for their
replies.  Writes to a connection are serialized with a per-connection
lock (frames must not interleave).

Every request is timed into the ``serve.request_s`` histogram and its
lane count into ``serve.request.lanes``; together with the coalescer,
admission, and worker-pool instruments this is the service's SLO
surface (drained with :func:`repro.obs.metrics.snapshot`).
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import threading
import time

from repro.obs import metrics
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import Coalescer
from repro.serve.tables import arena_key, publish
from repro.serve.workers import WorkerPool

__all__ = ["ServiceHandle", "serve"]


def default_address() -> str:
    """A fresh unix-socket path in the system temp directory."""
    return os.path.join(tempfile.gettempdir(),
                        f"repro-serve-{os.getpid()}-{os.urandom(4).hex()}.sock")


class _Frontend:
    """Event-loop half of the service; owned by the handle's thread."""

    def __init__(self, keys: set[str], pool: WorkerPool,
                 admission: AdmissionController, *,
                 max_batch: int, max_delay_s: float):
        self.keys = keys
        self.pool = pool
        self.admission = admission
        self.coalescer = Coalescer(pool.run, max_batch=max_batch,
                                   max_delay_s=max_delay_s)
        self.server: asyncio.AbstractServer | None = None
        self._client_seq = 0
        self._connections: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._h_req = metrics.histogram("serve.request_s")
        self._h_lanes = metrics.histogram("serve.request.lanes")
        self._c_req = metrics.counter("serve.requests")
        self._c_err = metrics.counter("serve.errors")

    async def start(self, address: str) -> None:
        self.server = await asyncio.start_unix_server(
            self._handle_connection, path=address)

    async def stop(self) -> None:
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        # server.close() stops *listening*; established connections (and
        # their in-flight request tasks) must be ended explicitly
        for t in list(self._conn_tasks) + list(self._connections):
            t.cancel()
        pending = list(self._conn_tasks) + list(self._connections)
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        await self.coalescer.drain()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._client_seq += 1
        client_id = self._client_seq
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        me = asyncio.current_task()
        if me is not None:
            self._connections.add(me)
        try:
            while True:
                payload = await protocol.read_frame(reader)
                if payload is None:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._handle_request(client_id, payload, writer, lock))
                tasks.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._conn_tasks.discard)
        except protocol.ProtocolError:
            self._c_err.inc()
        except asyncio.CancelledError:
            pass  # service shutdown; fall through to the cleanup
        finally:
            if me is not None:
                self._connections.discard(me)
            for t in list(tasks):
                t.cancel()
            self.admission.forget(client_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_request(self, client_id: int, payload: bytes,
                              writer: asyncio.StreamWriter,
                              lock: asyncio.Lock) -> None:
        t0 = time.perf_counter()
        self._c_req.inc()
        try:
            req = protocol.unpack_request(payload)
        except protocol.ProtocolError as e:
            self._c_err.inc()
            await self._reply(writer, lock, protocol.pack_reply(
                0, protocol.STATUS_ERROR, error=str(e)))
            return
        if req.op == protocol.OP_PING:
            await self._reply(writer, lock, protocol.pack_reply(
                req.req_id, protocol.STATUS_OK))
            return
        key = arena_key(req.function, req.target)
        if key not in self.keys:
            self._c_err.inc()
            await self._reply(writer, lock, protocol.pack_reply(
                req.req_id, protocol.STATUS_ERROR,
                error=f"service does not host {key!r}"))
            return
        lanes = len(req.data)
        if not self.admission.admit(client_id, lanes):
            await self._reply(writer, lock, protocol.pack_reply(
                req.req_id, protocol.STATUS_SHED))
            return
        try:
            # the request's buffer aliases the network frame; the copy
            # decouples batch lifetime from frame lifetime
            result = await self.coalescer.submit(
                key, req.op, req.data.copy())
            reply = protocol.pack_reply(req.req_id, protocol.STATUS_OK,
                                        data=result)
        except Exception as e:
            self._c_err.inc()
            reply = protocol.pack_reply(req.req_id, protocol.STATUS_ERROR,
                                        error=str(e))
        finally:
            self.admission.release(client_id, lanes)
        await self._reply(writer, lock, reply)
        self._h_req.observe(time.perf_counter() - t0)
        self._h_lanes.observe(lanes)

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, lock: asyncio.Lock,
                     payload: bytes) -> None:
        async with lock:
            try:
                protocol.write_frame(writer, payload)
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # client went away; its budget is already released


class ServiceHandle:
    """A running libm service; close it to tear everything down.

    Usable as a context manager.  ``address`` is the unix-socket path
    clients dial; ``content_hash`` identifies the published tables.
    """

    def __init__(self, address: str, arena, pool: WorkerPool,
                 frontend: _Frontend, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.address = address
        self.arena = arena
        self.arena_name = arena.name
        self.content_hash = arena.content_hash
        self.keys = sorted(frontend.keys)
        self._pool = pool
        self._frontend = frontend
        self._loop = loop
        self._thread = thread
        self._closed = False

    def connect(self, function: str, target: str = "float32", **kwargs):
        """A :class:`~repro.serve.client.ServiceClient` for this service."""
        from repro.serve.client import ServiceClient

        return ServiceClient(function, target, address=self.address,
                             **kwargs)

    def close(self, timeout: float = 10.0) -> None:
        """Stop the server, drain, shut the pool, unlink the arena."""
        if self._closed:
            return
        self._closed = True
        stop = asyncio.run_coroutine_threadsafe(self._frontend.stop(),
                                                self._loop)
        try:
            stop.result(timeout)
        except Exception:  # pragma: no cover - drain best-effort
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self._pool.close()
        self.arena.close()
        try:
            os.unlink(self.address)
        except OSError:
            pass

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(functions=None, targets=("float32",), *, address: str | None = None,
          workers: int = 2, max_batch: int = 65536,
          max_delay_s: float = 0.002, max_pending_evals: int = 4_000_000,
          max_client_inflight: int = 128) -> ServiceHandle:
    """Start the multi-process libm service; returns its handle.

    ``functions`` defaults to every function with frozen data for each
    target.  The pairs' tables are published into shared memory once;
    ``workers`` processes attach it and evaluate coalesced batches.
    """
    from repro.libm.runtime import available

    pairs = []
    for target in ([targets] if isinstance(targets, str) else targets):
        names = functions if functions is not None else available(target)
        pairs.extend((fn, target) for fn in names)
    if not pairs:
        raise ValueError("nothing to serve: no (function, target) pairs")

    arena = publish(pairs)
    try:
        pool = WorkerPool(arena.name, arena.content_hash, workers=workers)
    except Exception:
        arena.close()
        raise
    admission = AdmissionController(
        max_pending_evals=max_pending_evals,
        max_client_inflight=max_client_inflight)
    frontend = _Frontend({arena_key(f, t) for f, t in pairs}, pool,
                         admission, max_batch=max_batch,
                         max_delay_s=max_delay_s)
    addr = address or default_address()

    loop = asyncio.new_event_loop()
    ready = threading.Event()
    boot_err: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(frontend.start(addr))
        except BaseException as e:  # pragma: no cover - bad address etc.
            boot_err.append(e)
            ready.set()
            return
        ready.set()
        loop.run_forever()
        # drain callbacks scheduled right before stop(), then close
        loop.run_until_complete(asyncio.sleep(0))
        loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    ready.wait(10.0)
    if boot_err:
        pool.close()
        arena.close()
        raise boot_err[0]
    return ServiceHandle(addr, arena, pool, frontend, loop, thread)
