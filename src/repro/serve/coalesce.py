"""Request coalescing: many small requests, few large worker batches.

The batch engine's throughput comes from amortizing per-batch overhead
over thousands of lanes; a service fed 256-lane requests would waste it
dispatching 256-lane batches.  The :class:`Coalescer` buffers incoming
requests per ``(key, opcode)`` and flushes one concatenated batch to
the worker pool when either

* the buffered lane count reaches ``max_batch`` (**size** trigger),
* the oldest buffered request has waited ``max_delay_s`` (**deadline**
  trigger — bounds the latency a lone request pays for batching), or
* the service is shutting down (**drain** trigger).

Each submitter gets a future resolving to its own slice of the batch
result; a worker failure fails every request in the batch (the client
sees ``STATUS_ERROR``, never a wrong answer).  All bookkeeping runs on
the event loop — no locks.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

import numpy as np

from repro.obs import metrics

__all__ = ["Coalescer"]


class _Buffer:
    __slots__ = ("items", "lanes", "timer")

    def __init__(self):
        self.items: list[tuple[np.ndarray, asyncio.Future]] = []
        self.lanes = 0
        self.timer: asyncio.TimerHandle | None = None


class Coalescer:
    """Deadline- and size-triggered batcher in front of a worker pool.

    ``dispatch`` is an async callable ``(key, op, batch) -> results``
    (normally :meth:`repro.serve.workers.WorkerPool.run`).
    """

    def __init__(self, dispatch: Callable[..., Awaitable[np.ndarray]], *,
                 max_batch: int = 65536, max_delay_s: float = 0.002):
        self._dispatch = dispatch
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self._buffers: dict[tuple[str, int], _Buffer] = {}
        self._tasks: set[asyncio.Task] = set()
        self._h_batch = metrics.histogram("serve.coalesce.batch")

    def pending_lanes(self) -> int:
        """Lanes currently buffered (admission control reads this)."""
        return sum(b.lanes for b in self._buffers.values())

    def submit(self, key: str, op: int,
               data: np.ndarray) -> "asyncio.Future[np.ndarray]":
        """Buffer one request; the future resolves to its result slice."""
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        buf = self._buffers.get((key, op))
        if buf is None:
            buf = self._buffers[(key, op)] = _Buffer()
        buf.items.append((data, fut))
        buf.lanes += len(data)
        if buf.lanes >= self.max_batch:
            metrics.counter("serve.coalesce.flush.size").inc()
            self._flush((key, op))
        elif buf.timer is None:
            buf.timer = loop.call_later(self.max_delay_s,
                                        self._deadline, (key, op))
        return fut

    def _deadline(self, keyop: tuple[str, int]) -> None:
        if keyop in self._buffers:
            metrics.counter("serve.coalesce.flush.deadline").inc()
            self._flush(keyop)

    def _flush(self, keyop: tuple[str, int]) -> None:
        buf = self._buffers.pop(keyop, None)
        if buf is None:
            return
        if buf.timer is not None:
            buf.timer.cancel()
        self._h_batch.observe(buf.lanes)
        task = asyncio.get_running_loop().create_task(
            self._run_batch(keyop, buf.items))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, keyop: tuple[str, int],
                         items: list[tuple[np.ndarray, asyncio.Future]]) \
            -> None:
        key, op = keyop
        batch = items[0][0] if len(items) == 1 else \
            np.concatenate([d for d, _ in items])
        try:
            out = await self._dispatch(key, op, batch)
        except Exception as e:
            for _, fut in items:
                if not fut.done():
                    fut.set_exception(
                        RuntimeError(f"batch evaluation failed: {e}"))
            return
        pos = 0
        for data, fut in items:
            n = len(data)
            if not fut.done():
                fut.set_result(out[pos:pos + n])
            pos += n

    async def drain(self) -> None:
        """Flush every buffer and wait for in-flight batches (shutdown)."""
        for keyop in list(self._buffers):
            metrics.counter("serve.coalesce.flush.drain").inc()
            self._flush(keyop)
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)
