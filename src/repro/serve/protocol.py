"""Wire protocol of the libm service: framed binary batch requests.

One *frame* is a 4-byte little-endian length prefix followed by that
many payload bytes.  A request payload is a fixed header (request id,
opcode, function/target name lengths, lane count) followed by the two
names and the packed input lanes; a reply echoes the request id with a
status byte and the packed output lanes (or a UTF-8 error message).

Lane encodings are dictated by the opcode:

========================  ==============  =================
opcode                    request lanes   reply lanes
========================  ==============  =================
:data:`OP_EVAL`           float64         float64 (doubles)
:data:`OP_EVAL_BITS`      float64         uint64 (target bits)
:data:`OP_EVAL_FROM_BITS` uint64 (bits)   uint64 (target bits)
:data:`OP_PING`           none            none
========================  ==============  =================

``OP_EVAL_FROM_BITS`` exists for bit-exact corpus replay: the *input*
is already a target bit pattern, decoded service-side with
:func:`repro.batch.rounding.decode_kernel` so the client never needs
the format tables.

Everything here is pure ``struct`` + numpy — no serialization library,
no pickling of client-supplied bytes.
"""

from __future__ import annotations

import struct
from typing import NamedTuple

import numpy as np

__all__ = ["OP_EVAL", "OP_EVAL_BITS", "OP_EVAL_FROM_BITS", "OP_PING",
           "STATUS_OK", "STATUS_SHED", "STATUS_ERROR",
           "MAX_FRAME", "MAX_NAME", "ProtocolError", "Request", "Reply",
           "pack_request", "unpack_request", "pack_reply", "unpack_reply",
           "recv_frame", "send_frame", "read_frame", "write_frame",
           "request_dtype", "reply_dtype"]

OP_EVAL = 1            #: doubles in, correctly rounded doubles out
OP_EVAL_BITS = 2       #: doubles in, target bit patterns out
OP_EVAL_FROM_BITS = 3  #: target bit patterns in, target bit patterns out
OP_PING = 4            #: liveness probe; empty reply

STATUS_OK = 0      #: reply carries result lanes
STATUS_SHED = 1    #: admission control refused the request (retryable)
STATUS_ERROR = 2   #: reply carries a UTF-8 error message

#: Hard cap on a frame's payload size — a corrupt length prefix must
#: not make the server allocate gigabytes.  8 MiB fits one million
#: float64 lanes plus the header.
MAX_FRAME = 8 << 20

#: Function/target names are short identifiers.
MAX_NAME = 64

_LEN = struct.Struct("<I")
# req_id, op, fn_len, target_len, lane count
_REQ_HEAD = struct.Struct("<IBBBI")
# req_id, status, lane count
_REP_HEAD = struct.Struct("<IBI")

_OPS = (OP_EVAL, OP_EVAL_BITS, OP_EVAL_FROM_BITS, OP_PING)
_STATUSES = (STATUS_OK, STATUS_SHED, STATUS_ERROR)


class ProtocolError(Exception):
    """A malformed or oversized frame; the connection must be dropped."""


class Request(NamedTuple):
    req_id: int
    op: int
    function: str
    target: str
    data: np.ndarray


class Reply(NamedTuple):
    req_id: int
    status: int
    data: np.ndarray | None
    error: str | None


def request_dtype(op: int) -> np.dtype:
    """The lane dtype a request carries for this opcode."""
    return np.dtype(np.uint64 if op == OP_EVAL_FROM_BITS else np.float64)


def reply_dtype(op: int) -> np.dtype:
    """The lane dtype a reply carries for this opcode."""
    return np.dtype(np.float64 if op == OP_EVAL else np.uint64)


def pack_request(req_id: int, op: int, function: str, target: str,
                 data: np.ndarray) -> bytes:
    """Serialize one request payload (unframed)."""
    fn_b = function.encode("utf-8")
    tg_b = target.encode("utf-8")
    if len(fn_b) > MAX_NAME or len(tg_b) > MAX_NAME:
        raise ProtocolError("function/target name too long")
    lanes = np.ascontiguousarray(data, dtype=request_dtype(op))
    head = _REQ_HEAD.pack(req_id & 0xFFFFFFFF, op, len(fn_b), len(tg_b),
                          lanes.size)
    return head + fn_b + tg_b + lanes.tobytes()


def unpack_request(payload: bytes) -> Request:
    """Parse one request payload; raises :class:`ProtocolError`."""
    if len(payload) < _REQ_HEAD.size:
        raise ProtocolError("request shorter than its header")
    req_id, op, fn_len, tg_len, n = _REQ_HEAD.unpack_from(payload)
    if op not in _OPS:
        raise ProtocolError(f"unknown opcode {op}")
    pos = _REQ_HEAD.size
    try:
        function = payload[pos:pos + fn_len].decode("utf-8")
        pos += fn_len
        target = payload[pos:pos + tg_len].decode("utf-8")
        pos += tg_len
    except UnicodeDecodeError as e:
        raise ProtocolError(f"undecodable function/target name: {e}") from e
    body = payload[pos:]
    if len(body) != n * 8:
        raise ProtocolError(
            f"request declares {n} lanes but carries {len(body)} bytes")
    data = np.frombuffer(body, dtype=request_dtype(op))
    return Request(req_id, op, function, target, data)


def pack_reply(req_id: int, status: int, data: np.ndarray | None = None,
               error: str | None = None) -> bytes:
    """Serialize one reply payload (unframed)."""
    if status == STATUS_ERROR:
        body = (error or "internal error").encode("utf-8")
        return _REP_HEAD.pack(req_id & 0xFFFFFFFF, status, 0) + body
    if data is None:
        return _REP_HEAD.pack(req_id & 0xFFFFFFFF, status, 0)
    lanes = np.ascontiguousarray(data)
    return (_REP_HEAD.pack(req_id & 0xFFFFFFFF, status, lanes.size)
            + lanes.tobytes())


def unpack_reply(payload: bytes, op: int) -> Reply:
    """Parse one reply payload for a request sent with ``op``."""
    if len(payload) < _REP_HEAD.size:
        raise ProtocolError("reply shorter than its header")
    req_id, status, n = _REP_HEAD.unpack_from(payload)
    if status not in _STATUSES:
        raise ProtocolError(f"unknown status {status}")
    body = payload[_REP_HEAD.size:]
    if status == STATUS_ERROR:
        return Reply(req_id, status, None, body.decode("utf-8", "replace"))
    if len(body) != n * 8:
        raise ProtocolError(
            f"reply declares {n} lanes but carries {len(body)} bytes")
    data = np.frombuffer(body, dtype=reply_dtype(op)) if n else \
        np.empty(0, dtype=reply_dtype(op))
    return Reply(req_id, status, data, None)


# -- framing: async (server side) and blocking (client side) ---------------


async def read_frame(reader) -> bytes | None:
    """Read one frame from an asyncio StreamReader; None on clean EOF."""
    try:
        head = await reader.readexactly(_LEN.size)
    except (EOFError, ConnectionError, OSError):
        # IncompleteReadError (mid-frame EOF) subclasses EOFError
        return None
    (size,) = _LEN.unpack(head)
    if size > MAX_FRAME:
        raise ProtocolError(f"frame of {size} bytes exceeds MAX_FRAME")
    return await reader.readexactly(size)


def write_frame(writer, payload: bytes) -> None:
    """Queue one frame on an asyncio StreamWriter (caller drains)."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError("frame exceeds MAX_FRAME")
    writer.write(_LEN.pack(len(payload)) + payload)


def send_frame(sock, payload: bytes) -> None:
    """Write one frame to a blocking socket."""
    if len(payload) > MAX_FRAME:
        raise ProtocolError("frame exceeds MAX_FRAME")
    sock.sendall(_LEN.pack(len(payload)) + payload)


def recv_frame(sock) -> bytes:
    """Read one frame from a blocking socket; raises on EOF."""
    head = _recv_exact(sock, _LEN.size)
    (size,) = _LEN.unpack(head)
    if size > MAX_FRAME:
        raise ProtocolError(f"frame of {size} bytes exceeds MAX_FRAME")
    return _recv_exact(sock, size)


def _recv_exact(sock, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise ConnectionError("libm service closed the connection")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)
