"""Production serving layer: a multi-process libm service.

The in-process API (:mod:`repro.api`) evaluates on the caller's CPU
with the caller's memory; this package serves the same correctly
rounded functions *as a service*::

    from repro import serve

    with serve.serve(["exp"], targets=("float32",), workers=2) as svc:
        client = svc.connect("exp")
        bits = client.evaluate_bits_batch(xs)   # == Library's, bit for bit

Pieces (one module each, composable and individually testable):

* :mod:`~repro.serve.tables` — frozen coefficient tables published once
  into a shared-memory arena; workers attach zero-copy, read-only,
  pinned to a content hash.
* :mod:`~repro.serve.workers` — the process pool evaluating batches
  against the arena, with crash containment and utilization gauges.
* :mod:`~repro.serve.protocol` — the framed binary wire format.
* :mod:`~repro.serve.coalesce` — size/deadline/shutdown-triggered
  batching of many small requests into few large worker batches.
* :mod:`~repro.serve.admission` — bounded queues and explicit SHED
  replies under overload.
* :mod:`~repro.serve.frontend` — the asyncio unix-socket server tying
  it together; :func:`serve` lives there.
* :mod:`~repro.serve.client` — the blocking :class:`ServiceClient`
  mirroring :class:`repro.api.Library`'s batch surface.

The service's trust boundary (DESIGN.md, "Serving"): replies are
bit-identical to the scalar path for every input, the arena is
immutable after publication, and overload degrades by *refusing* work,
never by answering wrong.
"""

from __future__ import annotations

from repro.serve.client import (ServiceClient, ServiceError,
                                ServiceOverloaded, connect)
from repro.serve.frontend import ServiceHandle, serve

__all__ = ["ServiceClient", "ServiceError", "ServiceHandle",
           "ServiceOverloaded", "connect", "serve"]
