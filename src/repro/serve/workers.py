"""The serving layer's worker pool: evaluate batches against the arena.

Workers are plain :class:`concurrent.futures.ProcessPoolExecutor`
processes drawn from :func:`repro.parallel.executor.shared_pool` (one
memoized pool per arena — repeated services and the benchmarks share
the fork, counted by ``workers.pool_reuse``).  Each worker runs
:func:`_init_worker` once: detach the inherited trace sink, reset
metrics, and :func:`~repro.serve.tables.attach` the shared-memory arena
pinned to the publisher's content hash.  After that, every batch is a
pure function of the request bytes and the read-only arena — workers
never import a ``data_*`` module and hold no mutable state beyond
memoized kernels.

Crash containment: a worker that dies mid-batch breaks the pool
(``BrokenProcessPool``).  :meth:`WorkerPool.run` discards the broken
pool, forks a fresh one against the same arena, and retries the batch
once — a single crash costs latency, not availability, and the retry
path is exercised by ``tests/test_serve.py``.
"""

from __future__ import annotations

import asyncio
import time

from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.obs import metrics
from repro.parallel.executor import discard_shared_pool, shared_pool
from repro.serve import tables
from repro.serve.protocol import OP_EVAL, OP_EVAL_BITS, OP_EVAL_FROM_BITS

__all__ = ["WorkerPool", "eval_task"]

# worker-process globals, set once by the pool initializer
_ARENA: tables.AttachedArena | None = None


def _init_worker(arena_name: str, content_hash: str) -> None:
    """Pool initializer: isolate obs state, attach the pinned arena."""
    from repro.obs.events import detach as detach_trace

    detach_trace()
    metrics.reset()
    global _ARENA
    _ARENA = tables.attach(arena_name, expect_hash=content_hash)


def eval_task(key: str, op: int, data: np.ndarray):
    """Evaluate one coalesced batch inside a worker process.

    Returns ``(result_array, busy_seconds)`` — the busy time feeds the
    parent's worker-utilization gauge.
    """
    if _ARENA is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker has no attached arena")
    t0 = time.perf_counter()
    bf = _ARENA.batch_function(key)
    if op == OP_EVAL:
        out = bf.evaluate_many(data)
    elif op == OP_EVAL_BITS:
        out = bf.evaluate_bits_many(data)
    elif op == OP_EVAL_FROM_BITS:
        out = bf.evaluate_bits_many(_ARENA.decoder(key)(data))
    else:
        raise ValueError(f"unknown opcode {op}")
    return out, time.perf_counter() - t0


class WorkerPool:
    """Fixed-size process pool evaluating batches against one arena."""

    def __init__(self, arena_name: str, content_hash: str,
                 workers: int = 2):
        self.arena_name = arena_name
        self.content_hash = content_hash
        self.workers = max(1, int(workers))
        self._kind = f"serve:{arena_name}"
        self._pool = self._make_pool()
        self._busy_s = 0.0
        self._t_start = time.perf_counter()

    def _make_pool(self):
        return shared_pool(self.workers, kind=self._kind,
                           initializer=_init_worker,
                           initargs=(self.arena_name, self.content_hash))

    def _rebuild(self) -> None:
        metrics.counter("serve.worker.crashes").inc()
        discard_shared_pool(self._kind, self.workers, cancel=True)
        self._pool = self._make_pool()

    def _account(self, busy_s: float, lanes: int) -> None:
        self._busy_s += busy_s
        metrics.histogram("serve.dispatch_s").observe(busy_s)
        wall = time.perf_counter() - self._t_start
        if wall > 0.0:
            metrics.gauge("serve.worker.utilization").set(
                self._busy_s / (self.workers * wall))
        metrics.gauge("serve.worker.busy_s").set(self._busy_s)

    async def run(self, key: str, op: int,
                  data: np.ndarray) -> np.ndarray:
        """Evaluate one batch on the pool (retries once after a crash)."""
        loop = asyncio.get_running_loop()
        try:
            out, busy_s = await loop.run_in_executor(
                None, self._call, key, op, data)
        except BrokenProcessPool:
            self._rebuild()
            out, busy_s = await loop.run_in_executor(
                None, self._call, key, op, data)
        self._account(busy_s, len(data))
        return out

    def _call(self, key: str, op: int, data: np.ndarray):
        # runs on the event loop's default thread pool: submit to the
        # process pool and block the *thread* (never the loop) on it
        return self._pool.submit(eval_task, key, op, data).result()

    def run_sync(self, key: str, op: int, data: np.ndarray) -> np.ndarray:
        """Blocking twin of :meth:`run` (tests; synchronous tools)."""
        try:
            out, busy_s = self._call(key, op, data)
        except BrokenProcessPool:
            self._rebuild()
            out, busy_s = self._call(key, op, data)
        self._account(busy_s, len(data))
        return out

    def close(self) -> None:
        """Shut the pool down and drop the memo (idempotent)."""
        discard_shared_pool(self._kind, self.workers, cancel=True)
