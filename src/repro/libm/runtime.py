"""Loading the shipped correctly rounded library from frozen data.

``load("exp", "float32")`` rebuilds the runnable
:class:`~repro.core.generator.GeneratedFunction` from the coefficient
data module the generator tools froze into ``data_float32`` /
``data_posit32``.  Loading touches neither the oracle nor the LP solver —
the runtime path is: special cases, range reduction, shift+mask
sub-domain lookup, Horner, output compensation, final rounding.
"""

from __future__ import annotations

import importlib

from repro.core.generator import GeneratedFunction
from repro.libm.serialize import function_from_dict

__all__ = ["load", "available", "FLOAT32_FUNCTIONS", "POSIT32_FUNCTIONS"]

#: The ten float32 functions of the paper's prototype.
FLOAT32_FUNCTIONS = ("ln", "log2", "log10", "exp", "exp2", "exp10",
                     "sinh", "cosh", "sinpi", "cospi")
#: The eight posit32 functions.
POSIT32_FUNCTIONS = ("ln", "log2", "log10", "exp", "exp2", "exp10",
                     "sinh", "cosh")

#: Targets the loader accepts.  float32/posit32 ship with the repository;
#: the others can be generated in seconds-to-minutes with
#: ``python -m repro generate --target <name>`` (and are validated
#: exhaustively at generation time for the 16-bit formats).
KNOWN_TARGETS = ("float32", "posit32", "bfloat16", "float16", "posit16")
_cache: dict[tuple[str, str], GeneratedFunction] = {}


def functions_for(target: str) -> tuple[str, ...]:
    """The function set of a target (posits lack sinpi/cospi)."""
    return POSIT32_FUNCTIONS if target.startswith("posit") \
        else FLOAT32_FUNCTIONS


def _module_name(target: str, fn_name: str) -> str:
    return f"repro.libm.data_{target}.{fn_name}"


def available(target: str = "float32") -> list[str]:
    """Function names with frozen data for this target."""
    out = []
    for name in functions_for(target):
        try:
            importlib.import_module(_module_name(target, name))
        except ImportError:
            continue
        out.append(name)
    return out


def load(fn_name: str, target: str = "float32") -> GeneratedFunction:
    """The shipped correctly rounded implementation of ``fn_name``."""
    key = (fn_name, target)
    fn = _cache.get(key)
    if fn is None:
        if target not in KNOWN_TARGETS:
            raise ValueError(f"unknown target {target!r}; "
                             f"expected one of {sorted(KNOWN_TARGETS)}")
        try:
            mod = importlib.import_module(_module_name(target, fn_name))
        except ImportError:
            raise LookupError(
                f"no frozen data for {fn_name}/{target}; generate it with "
                f"'python -m repro generate --target {target}'") from None
        fn = function_from_dict(mod.DATA)
        _cache[key] = fn
    return fn
