"""Loading the shipped correctly rounded library from frozen data.

``load_function("exp", "float32")`` rebuilds the runnable
:class:`~repro.core.generator.GeneratedFunction` from the coefficient
data module the generator tools froze into ``data_float32`` /
``data_posit32``.  Loading touches neither the oracle nor the LP solver —
the runtime path is: special cases, range reduction, shift+mask
sub-domain lookup, Horner, output compensation, final rounding.
"""

from __future__ import annotations

import importlib
import sys
import warnings

from repro.core.generator import GeneratedFunction
from repro.libm.serialize import function_from_dict
from repro.obs import metrics

__all__ = ["load", "load_function", "reload", "reload_function", "available",
           "clear_cache", "instrument", "FLOAT32_FUNCTIONS",
           "POSIT32_FUNCTIONS"]

#: The ten float32 functions of the paper's prototype.
FLOAT32_FUNCTIONS = ("ln", "log2", "log10", "exp", "exp2", "exp10",
                     "sinh", "cosh", "sinpi", "cospi")
#: The eight posit32 functions.
POSIT32_FUNCTIONS = ("ln", "log2", "log10", "exp", "exp2", "exp10",
                     "sinh", "cosh")

#: Targets the loader accepts.  float32/posit32 ship with the repository;
#: the others can be generated in seconds-to-minutes with
#: ``python -m repro generate --target <name>`` (and are validated
#: exhaustively at generation time for the 16-bit formats).
KNOWN_TARGETS = ("float32", "posit32", "bfloat16", "float16", "posit16")
_cache: dict[tuple[str, str], GeneratedFunction] = {}


def functions_for(target: str) -> tuple[str, ...]:
    """The function set of a target (posits lack sinpi/cospi)."""
    return POSIT32_FUNCTIONS if target.startswith("posit") \
        else FLOAT32_FUNCTIONS


def _module_name(target: str, fn_name: str) -> str:
    return f"repro.libm.data_{target}.{fn_name}"


def clear_cache() -> None:
    """Drop every cached GeneratedFunction.

    The next :func:`load_function` re-reads the frozen data modules —
    needed after regenerating tables in-place (``python -m repro
    generate``) or when tests monkeypatch a data module.  Note that
    re-reading also requires the *module* to be fresh; :func:`reload`
    bundles the ``sys.modules`` purge with the cache drop for one
    function.
    """
    _cache.clear()


def reload_function(fn_name: str, target: str = "float32") \
        -> GeneratedFunction:
    """Reload one function from its frozen data module, bypassing caches.

    Purges the data module from ``sys.modules`` and drops the cached
    GeneratedFunction, then loads fresh — the dance the
    :func:`clear_cache` docstring used to tell callers to do by hand.
    Use after regenerating a single table in-place, or in tests that
    monkeypatch a data module.  Most callers want the
    :func:`repro.api.reload` facade, which wraps the result in a
    :class:`~repro.api.Library` handle.
    """
    sys.modules.pop(_module_name(target, fn_name), None)
    _cache.pop((fn_name, target), None)
    return load_function(fn_name, target)


def reload(fn_name: str, target: str = "float32") -> GeneratedFunction:
    """Deprecated alias of :func:`reload_function`.

    New code should use :func:`repro.api.reload` (the public facade) or
    :func:`reload_function` (the low-level loader) — the same split
    :func:`load` / :func:`load_function` already has.
    """
    warnings.warn(
        "repro.libm.runtime.reload is deprecated; use repro.api.reload "
        "(facade) or repro.libm.runtime.reload_function (low-level)",
        DeprecationWarning, stacklevel=2)
    return reload_function(fn_name, target)


def _import_data(target: str, fn_name: str):
    """The frozen data module, None when it is genuinely not shipped.

    Distinguishes "module missing" (→ None: the table was simply never
    generated) from "module broken" (an ImportError raised *inside* an
    existing data module — corrupt freeze, renamed dependency), which
    propagates: treating a broken table as not-shipped would silently
    shrink the library.
    """
    name = _module_name(target, fn_name)
    try:
        return importlib.import_module(name)
    except ModuleNotFoundError as e:
        # e.name is the *innermost* missing module: the data module
        # itself, or — for a never-generated target — its package.
        if e.name and (e.name == name or name.startswith(e.name + ".")):
            return None
        raise


def available(target: str = "float32") -> list[str]:
    """Function names with frozen data for this target.

    A data module that exists but fails to import raises (see
    :func:`_import_data`) rather than being reported as unavailable.
    """
    return [name for name in functions_for(target)
            if _import_data(target, name) is not None]


def load_function(fn_name: str, target: str = "float32",
                  instrumented: bool = False) -> GeneratedFunction:
    """The shipped correctly rounded implementation of ``fn_name``.

    This is the low-level loader; most callers want the
    :func:`repro.api.load` facade, which wraps the result in a
    :class:`~repro.api.Library` handle.

    With ``instrumented=True`` the returned (uncached, fresh) object's
    ``evaluate`` is wrapped by :func:`instrument`; the default path
    stays completely untouched — the hot loop pays zero observability
    cost unless a caller opts in.
    """
    key = (fn_name, target)
    fn = _cache.get(key)
    if fn is None:
        if target not in KNOWN_TARGETS:
            raise ValueError(f"unknown target {target!r}; "
                             f"expected one of {sorted(KNOWN_TARGETS)}")
        mod = _import_data(target, fn_name)
        if mod is None:
            raise LookupError(
                f"no frozen data for {fn_name}/{target}; generate it with "
                f"'python -m repro generate --target {target}'")
        comp = getattr(mod, "COMPACT", None)
        if comp is not None:
            # compact frozen layout: decode the pool directly and keep
            # its zero-copy views (frozen gathered columns, primed rr
            # tables) — never materialize the legacy literal dict here
            from repro.libm.compact import function_from_compact

            fn = function_from_compact(comp)
        else:
            fn = function_from_dict(mod.DATA)
        _cache[key] = fn
    if instrumented:
        return instrument(fn)
    return fn


def load(fn_name: str, target: str = "float32",
         instrumented: bool = False) -> GeneratedFunction:
    """Deprecated alias of :func:`load_function`.

    New code should use :func:`repro.api.load` (the public facade) or
    :func:`load_function` (the low-level loader).
    """
    warnings.warn(
        "repro.libm.runtime.load is deprecated; use repro.api.load "
        "(facade) or repro.libm.runtime.load_function (low-level)",
        DeprecationWarning, stacklevel=2)
    return load_function(fn_name, target, instrumented)


def instrument(fn: GeneratedFunction,
               prefix: str | None = None) -> GeneratedFunction:
    """A fresh copy of ``fn`` whose ``evaluate`` records runtime metrics.

    Opt-in profiling for the libm hot path: counts calls and
    special-case-layer hits, and histograms the sub-domain index each
    polynomial-path call lands in (``kind="exact"`` — one bucket per
    sub-domain, the per-sub-domain evaluation counts RLIBM-PROG tracks).
    The wrapper re-runs range reduction to learn the sub-domain, so an
    instrumented function is roughly 2x slower — never use it on the
    default path; the shared/cached object is left untouched.
    """
    g = GeneratedFunction(fn.spec, fn.approx, fn.stats)
    name = prefix or f"libm.{g.name}"
    c_calls = metrics.counter(f"{name}.calls")
    c_special = metrics.counter(f"{name}.special")
    hists = {
        fn_name: metrics.histogram(f"{name}.{fn_name}.subdomain",
                                   kind="exact")
        for fn_name in g.spec.rr.fn_names
    }
    inner = g.evaluate
    rr = g.spec.rr
    approx = g.approx

    def evaluate(x: float) -> float:
        c_calls.inc()
        if rr.special(x) is not None:
            c_special.inc()
        else:
            r = rr.reduce(x).r
            for fn_name, h in hists.items():
                af = approx[fn_name]
                side = af.neg if r < 0.0 else af.pos
                if side is not None:
                    h.observe(side.index_of(r))
        return inner(x)

    evaluate.__doc__ = inner.__doc__
    g.evaluate = evaluate
    return g
