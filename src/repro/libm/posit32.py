"""The RLIBM-32 posit32 math library (public API).

Eight correctly rounded elementary functions for the 32-bit posit type
(es = 2) — the first correctly rounded posit32 functions, per the paper.
Two calling conventions are provided:

* value API (``exp(x)``): ``x`` is a double; it is rounded to posit32
  first, and the result is returned as the double value of the posit32
  answer (every posit32 value is exactly representable in binary64).
  NaN/inf inputs behave as NaR and return NaN.
* bits API (``exp_bits(p)``): ``p`` is a raw 32-bit posit pattern and
  the result is a 32-bit posit pattern (NaR = 0x80000000).
"""

from __future__ import annotations

import math

from repro.libm.runtime import POSIT32_FUNCTIONS, load_function
from repro.posit.format import POSIT32

__all__ = list(POSIT32_FUNCTIONS) + [f"{n}_bits" for n in POSIT32_FUNCTIONS]


def _make(fn_name: str):
    def value(x: float) -> float:
        if math.isnan(x) or math.isinf(x):
            return math.nan
        x = POSIT32.round_double(x)
        return load_function(fn_name, "posit32").evaluate(x)

    def bits(p: int) -> int:
        if POSIT32.is_nar(p):
            return POSIT32.nar_bits
        x = POSIT32.to_double(p)
        return load_function(fn_name, "posit32").evaluate_bits(x)

    value.__name__ = fn_name
    value.__qualname__ = fn_name
    value.__doc__ = (f"Correctly rounded posit32 {fn_name}(x); "
                     "returns the posit32 result as a double.")
    bits.__name__ = f"{fn_name}_bits"
    bits.__qualname__ = f"{fn_name}_bits"
    bits.__doc__ = f"Correctly rounded posit32 {fn_name} on bit patterns."
    return value, bits


for _name in POSIT32_FUNCTIONS:
    _v, _b = _make(_name)
    globals()[_name] = _v
    globals()[f"{_name}_bits"] = _b
del _name, _v, _b
