"""Generated coefficient data for exp (posit32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 91 deduplicated doubles, little-endian, base64
_POOL = (
    "GAAAAAAA8D/18lUAAADwP+3KpPUNAOA/xlO/tYKQxj+Mpb/PgGkYQHCKqRz7iJ1A9Bdi0x+AEUEoDj/kIhpwQQAAQAAAAPA/"
    "BQAAAAAA8D8AAAAAAAAAAISHLwAAAPA/AAAAAAAAAADQbMFo+//fPwAAAAAAAAAAPhZiAHJixT/vOfr+Qi6GP/6CK2VHFVdA"
    "AAAAAAAAcEcAAADEpXJUQAAAAAAAAHA4AAAAxKVyVMAAAAAAAADwP2GAdz6aLPA/dIUV07BZ8D/Im3UYRYfwPw+J+WxYtfA/"
    "otHTMuzj8D9RWxLQARPxP+Atqa6aQvE/e1F9PLhy8T91y2/rW6PxP6q5aDGH1PE/1oxiiDsG8j84YnVuejjyP9184mVFa/I/"
    "4d4f9Z2e8j8LA+SmhdLyPxW3MQr+BvM//xZksgg88z/LqTo3p3HzP/ef5TTbp/M/IjQSTKbe8z8qLvchChb0Py2JYWAITvQ/"
    "0DzBtaKG9D8nKjbV2r/0P6csnXay+fQ/gk+dVis09T/aJ7U2R2/1PylUSN0Hq/U/SCGtFW/n9T+FVTqwfiT2PyUiVYI4YvY/"
    "zTt/Zp6g9j8vGmU8st/2P3Rf7Oh1H/c/yWdCVutf9z+HAetzFKH3P2JOzzbz4vc/E85MmYkl+D/tkkSb2Wj4P9ugKkLlrPg/"
    "NncVma7x+D/lxc2wNzf5P1BO3p+Cffk/kPCjgpHE+T9l5V17Zgz6P10lPrIDVfo/v/15VWue+j+t01qZn+j6P/sVT7iiM/s/"
    "R1778nZ/+z/SwUuQHsz7P5xShd2bGfw/S9FXLvFn/D9pkO/cILf8P3yJB0otB/0/h6T73BhY/T+FMtsD5qn9P1+bezOX/P0/"
    "9j+L5y5Q/j/akKSir6T+PydaYe4b+v4/QEVuW3ZQ/z/YkJ6Bwaf/PwAgD9F2RRlAAEA1Jupz/T8AAMJ5fRXfPwAQSoE67g9A"
    "gNPKqIXhVUA="
)

COMPACT = {
    "version": 1,
    "function": 'exp',
    "target": 'posit32',
    "rr_kind": 'exp',
    "pool_len": 91,
    "pool": _POOL,
    "data": {'approx': {'exp': {'neg': {'@pp': {'index_bits': 0,
                                        'mode': 'raw',
                                        'polys': [[[0, 1, 2, 3, 4, 5, 6, 7], 0, 8]],
                                        'shift': 59}},
                        'pos': {'@pp': {'cols': [8, 4, 2],
                                        'exps': [0, 1, 2, 3],
                                        'index_bits': 1,
                                        'lens': [1, 4],
                                        'mode': 'packed',
                                        'shift': 58,
                                        'start': 0,
                                        'stride': 1}}}},
     'function': 'exp',
     'rr_kind': 'exp',
     'rr_state': {'_c': {'@f': 16},
                  '_c_inv': {'@f': 17},
                  '_hi_result': {'@f': 18},
                  '_hi_thr': {'@f': 19},
                  '_lo_result': {'@f': 20},
                  '_lo_thr': {'@f': 21},
                  '_saturating': True,
                  '_tab': {'@fv': [22, 64]},
                  'exponents': {'@t': [{'@t': [0, 1, 2, 3, 4, 5, 6, 7]}]},
                  'fn_names': {'@t': ['exp']},
                  'name': 'exp'},
     'stats': {'counterexamples_folded': 5,
               'final_check': {'misses': 0, 'n': 19999},
               'gen_time_s': {'@f': 86},
               'input_count': 45959,
               'oracle_time_s': {'@f': 87},
               'per_fn': {'exp': {'degree': 7, 'npolys': 3, 'terms': 8}},
               'phase_s': {'oracle': {'@f': 87}, 'piecewise': {'@f': 88}, 'reduced': {'@f': 89}},
               'reduced_count': 45524,
               'special_count': 386,
               'total_time_s': {'@f': 90}},
     'target': 'posit32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
