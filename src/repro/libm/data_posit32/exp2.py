"""Generated coefficient data for exp2 (posit32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 90 deduplicated doubles, little-endian, base64
_POOL = (
    "HwAAAAAA8D9iHPP+Qi7mP9ip1r29v84/dsaO02BqrD+MbJ3MlSqDPwAAAAAAAPA/XQAAAAAA8D8AAAAAAAAAANZ9/f5CLuY/"
    "AAAAAAAAAAD8qFb+vb/OPwAAAAAAAAAATlMFiiRqrD8AAAAAAAAAAMDdRQSRjoU/AAAAAAAAkD8AAAAAAABQQAAAAAAAAHBH"
    "AAAABACAXUAAAAAAAABwOAAAAAQAgF3AAAAAAAAA8D9hgHc+mizwP3SFFdOwWfA/yJt1GEWH8D8PiflsWLXwP6LR0zLs4/A/"
    "UVsS0AET8T/gLamumkLxP3tRfTy4cvE/dctv61uj8T+quWgxh9TxP9aMYog7BvI/OGJ1bno48j/dfOJlRWvyP+HeH/WdnvI/"
    "CwPkpoXS8j8VtzEK/gbzP/8WZLIIPPM/y6k6N6dx8z/3n+U026fzPyI0Ekym3vM/Ki73IQoW9D8tiWFgCE70P9A8wbWihvQ/"
    "Jyo21dq/9D+nLJ12svn0P4JPnVYrNPU/2ie1Nkdv9T8pVEjdB6v1P0ghrRVv5/U/hVU6sH4k9j8lIlWCOGL2P807f2aeoPY/"
    "LxplPLLf9j90X+zodR/3P8lnQlbrX/c/hwHrcxSh9z9iTs828+L3PxPOTJmJJfg/7ZJEm9lo+D/boCpC5az4PzZ3FZmu8fg/"
    "5cXNsDc3+T9QTt6fgn35P5Dwo4KRxPk/ZeVde2YM+j9dJT6yA1X6P7/9eVVrnvo/rdNamZ/o+j/7FU+4ojP7P0de+/J2f/s/"
    "0sFLkB7M+z+cUoXdmxn8P0vRVy7xZ/w/aZDv3CC3/D98iQdKLQf9P4ek+9wYWP0/hTLbA+ap/T9fm3szl/z9P/Y/i+cuUP4/"
    "2pCkoq+k/j8nWmHuG/r+P0BFblt2UP8/2JCegcGn/z8ATOX+NH8uQABwZJJP3xFAAMD9YWek5j8AxLVZQyUkQKB95B1S9YdA"
)

COMPACT = {
    "version": 1,
    "function": 'exp2',
    "target": 'posit32',
    "rr_kind": 'exp',
    "pool_len": 90,
    "pool": _POOL,
    "data": {'approx': {'exp2': {'neg': {'@pp': {'index_bits': 0,
                                         'mode': 'raw',
                                         'polys': [[[0, 1, 2, 3, 4], 0, 5]],
                                         'shift': 59}},
                         'pos': {'@pp': {'cols': [5, 5, 2],
                                         'exps': [0, 1, 2, 3, 4],
                                         'index_bits': 1,
                                         'lens': [1, 5],
                                         'mode': 'packed',
                                         'shift': 58,
                                         'start': 0,
                                         'stride': 1}}}},
     'function': 'exp2',
     'rr_kind': 'exp',
     'rr_state': {'_c': {'@f': 15},
                  '_c_inv': {'@f': 16},
                  '_hi_result': {'@f': 17},
                  '_hi_thr': {'@f': 18},
                  '_lo_result': {'@f': 19},
                  '_lo_thr': {'@f': 20},
                  '_saturating': True,
                  '_tab': {'@fv': [21, 64]},
                  'exponents': {'@t': [{'@t': [0, 1, 2, 3, 4, 5, 6, 7]}]},
                  'fn_names': {'@t': ['exp2']},
                  'name': 'exp2'},
     'stats': {'counterexamples_folded': 40,
               'final_check': {'misses': 0, 'n': 19999},
               'gen_time_s': {'@f': 85},
               'input_count': 45517,
               'oracle_time_s': {'@f': 86},
               'per_fn': {'exp2': {'degree': 4, 'npolys': 3, 'terms': 5}},
               'phase_s': {'oracle': {'@f': 86}, 'piecewise': {'@f': 87}, 'reduced': {'@f': 88}},
               'reduced_count': 43813,
               'special_count': 387,
               'total_time_s': {'@f': 89}},
     'target': 'posit32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
