"""Generated coefficient data for log2 (posit32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 144 deduplicated doubles, little-endian, base64
_POOL = (
    "C20cZUcV9z9i8fJlRxX3P99VtQH2Cue/5a8ve1EV57980gn1GmmFwCTNC8Kp9N4/AAAAAAAAAAA2tdOvlY7xvwAAAAAAAAAA"
    "Qk/ObH/GVkAAAAAAAAAAAK6i9wrSgbDAAAAAAAAA8D8AAAAAAAAAAFEI77ZQ/oY/KtLChZbnlj8TNBPV0RyhP4f9jnXTuqY/"
    "X6sKufpNrD+bn6KfOOuwP8PxJ90vqrM/FhPJ+vZjtj9bM0ZuoRi5P7qrrUBCyLs/sqV/Eexyvj/kedqMWIzAP3srVZfR3ME/"
    "Gq544ukqwz9N94P5qXbEP4jW+zkawMU/fwLv1EIHxz+zAy/QK0zIP99wfgfdjsk/lOy0LV7Pyj/uTdnNtg3MP3BZMkzuSc0/"
    "TWpO5wuEzj8KaAK5FrzPPwkwsNsKedA/dgvT2gcT0T9w8JGyBazRPzoHDqsHRNI/r5pN/BDb0j/tzaTOJHHTP0kEGztGBtQ/"
    "ixvNS3ia1D+zlkz8vS3VP4jW+zkawNU/p3tn5I9R1j/eDJ3NIeLWPzz7frrScdc/VBwWY6UA2D8msuBynI7YPwkXH4m6G9k/"
    "LyMeOQKo2T9RYH8KdjPaP0kff3kYvto/oYI49+tH2z8xkOfp8tDbP1ZbKa0vWdw/fVg6kqTg3D8P6jLgU2fdP0w2QtQ/7d0/"
    "0lTnoWpy3j8g4ihz1vbeP88Gy2iFet8/m/+Dmnn93z9/mZeL2j/gPz1wf/KcgOA/pjrWAAXB4D/qyFOxEwHhP0TlofrJQOE/"
    "apdyzyiA4T8O0JUeMb/hPyaBDtPj/eE/yCcn1EE84j/4y4UFTHriP9F6P0cDuOI/Jj/rdWj14j+nnLRqfDLjP2KRbfs/b+M/"
    "ZyGg+rOr4z8WcJ832efjP6lqmH6wI+Q/OQeimDpf5D+LG81LeJrkP8TOM1tq1eQ/+agIhxEQ5T+OQ6WMbkrlPzSdmCaChOU/"
    "NRS1DE2+5T+vCR70z/flP0gwVY8LMeY/zIhHjgBq5j8KD1qer6LmP0oZdmoZ2+Y/fGwVmz4T5z9UB07WH0vnP1em3b+9guc/"
    "5AI1+Ri65z8Wz4IhMvHnP3NwvtUJKOg/JnuysKBe6D+L7wZL95ToP747SzsOy+g/zQIAFuYA6T8vq6BtfzbpP/a1rNLaa+k/"
    "UOCw0/ig6T+zEFD92dXpPy0RTNp+Cuo/HxiO8+c+6j/IIC/QFXPqP9MUgPUIp+o/M8gR58Ha6j9syLwmQQ7rP4wAqTSHQes/"
    "2jJVj5R06z9kSZ6zaafrP25+xhwH2us/0118RG0M7D9VoOGinD7sP8fhka6VcOw/FjOp3Fii7D8Hicqg5tPsP5YIJm0/Be0/"
    "1TF/smM27T8P6jLgU2ftPxVmPWQQmO0/bPU/q5nI7T8sr4Yg8PjtP0ABDi4UKe4/ziKIPAZZ7j9zamKzxojuP/uIyvhVuO4/"
    "UKmzcbTn7j8wdtuB4hbvP1UGz4vgRe8/rq/v8K507z8zwncRTqPvP/kqf0y+0e8/AKAc+F2YPUAAEK7DO9L8P8AEpPPNmGZA"
)

COMPACT = {
    "version": 1,
    "function": 'log2',
    "target": 'posit32',
    "rr_kind": 'log',
    "pool_len": 144,
    "pool": _POOL,
    "data": {'approx': {'log2_1p': {'neg': None,
                            'pos': {'@pp': {'cols': [0, 6, 2],
                                            'exps': [1, 2, 3, 4, 5, 6],
                                            'index_bits': 1,
                                            'lens': [3, 6],
                                            'mode': 'packed',
                                            'shift': 56,
                                            'start': 1,
                                            'stride': 1}}}},
     'function': 'log2',
     'rr_kind': 'log',
     'rr_state': {'_entries': 128,
                  '_pure_exponent': True,
                  '_scale': {'@f': 12},
                  '_tab': {'@fv': [13, 128]},
                  'exponents': {'@t': [{'@t': [1, 2, 3, 4, 5, 6]}]},
                  'fn_names': {'@t': ['log2_1p']},
                  'name': 'log2',
                  'table_bits': 7},
     'stats': {'counterexamples_folded': 7,
               'final_check': {'misses': 1, 'n': 10000},
               'gen_time_s': {'@f': 141},
               'input_count': 22489,
               'oracle_time_s': {'@f': 142},
               'per_fn': {'log2_1p': {'degree': 6, 'npolys': 2, 'terms': 6}},
               'reduced_count': 21132,
               'special_count': 192,
               'total_time_s': {'@f': 143}},
     'target': 'posit32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
