"""Generated coefficient data for log10 (posit32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 140 deduplicated doubles, little-endian, base64
_POOL = (
    "vg3sFHvL2z8enhAVe8vbPz05GgFCscu/PqvM13rLy78AAAAAAAAAAFol4J6Th8I/AAAAAAAAAABOWr0Sg6+7v/95n1ATRNM/"
    "AAAAAAAAAAAm7SFy1K9rPw/R/KR2lHs/hDZEUQibhD+QN7GOkF6LP3hsRKiDCpE/4IvLWk9flD/4Hzvfw62XPxDmACv59Zo/"
    "jwW9rAY4nj8AABeoAbqgP0wx/MACVaI/JeSlmRHtoz/aU7PuOIKlP5kqfUKDFKc/9Ee43vqjqD/q7wnWqTCqP4T9jQWauqs/"
    "tKxPFtVBrT8IiLV+ZMauPxaA8MEoJLA/XhaBndLjsD8WGFBFNKKxP0pZ6xVSX7I/GHHEVTAbsz95McU109WzP/tI39E+j7Q/"
    "hT6XMXdHtT/99IpIgP61P8ni8/ZdtLY//SYlChRptz9KpAU9phy4Pw1IhjgYz7g/CaIUlG2AuT/q7wnWqTC6Pwe+FnTQ37o/"
    "mD2r0+SNuz//blxK6jq8P6U9Rh7k5rw/nKlqhtWRvT/+GQ6rwTu+PwTyEKar5L4/kYFGg5aMvz+GtGSgwhnAP7bDpme9bMA/"
    "HMQ3CT2/wD9XE4HwQhHBPxCdrILQYsE/e0/JHuezwT93h+4diATCPzx9XtO0VMI/KrqnjG6kwj8BoMWRtvPCP20JQCWOQsM/"
    "gwtKhPaQwz+F39/m8N7DPwL8439+LMQ/EWQ7faB5xD84M+kHWMbEPz1sKUSmEsU/+BCLUYxexT/6iAlLC6rFP5JcJUck9cU/"
    "u0n8V9g/xj/8t2CLKIrGP2uQ8OoV1MY/gH4rfKEdxz+FnohAzGbHPwSeizWXr8c/oFLZVAP4xz91y0uUEUDIPxnhBebCh8g/"
    "DUiGOBjPyD94Kbp2EhbJP7pFD4iyXMk/XKSFUPmiyT++1MCw5+jJP9LCGIZ+Lso/9CKqqr5zyj/8d2b1qLjKP4C2Izo+/co/"
    "B4irSX9Byz8FMcrxbIXLP0AcXf0Hycs/Jg5hNFEMzD+iAgBcSU/MP8q3njbxkcw/vefpg0nUzD/3M+MAUxbNPz3E7WcOWM0/"
    "R5vacHyZzT8po/TQndrNP4FzDDtzG84/QtODX/1bzj8H+FjsPJzOP6+EMY0y3M4/AUll694bzz8HxAiuQlvPP8Vq93lems8/"
    "1rTd8TLZzz9EeCFb4AvQP/BvyTIEK9A/BJATTgVK0D89Lij642jQP6ynL4Ogh9A/GchWNDum0D89GdNXtMTQP38a5zYM49A/"
    "vWHmGUMB0T+9pTlIWR/RP+GyYghPPdE/kkoAoCRb0T8B7tFT2njRP7iUu2dwltE/e0/JHuez0T/51zK7PtHRP8MNX3537tE/"
    "BWHnqJEL0j9kK5t6jSjSP4b3gjJrRdI/nbfjDiti0j9n60FNzX7SPwm2ZCpSm9I/IuRY4rm30j9+4nOwBNTSP76lVs8y8NI/"
    "X4PweEQM0z9i/IHmOSjTPwDwsyzAmCxAAAClov005j8AYZz/5NxOQA=="
)

COMPACT = {
    "version": 1,
    "function": 'log10',
    "target": 'posit32',
    "rr_kind": 'log',
    "pool_len": 140,
    "pool": _POOL,
    "data": {'approx': {'log10_1p': {'neg': None,
                             'pos': {'@pp': {'cols': [0, 4, 2],
                                             'exps': [1, 2, 3, 4],
                                             'index_bits': 1,
                                             'lens': [2, 4],
                                             'mode': 'packed',
                                             'shift': 56,
                                             'start': 1,
                                             'stride': 1}}}},
     'function': 'log10',
     'rr_kind': 'log',
     'rr_state': {'_entries': 128,
                  '_pure_exponent': False,
                  '_scale': {'@f': 8},
                  '_tab': {'@fv': [9, 128]},
                  'exponents': {'@t': [{'@t': [1, 2, 3, 4, 5, 6]}]},
                  'fn_names': {'@t': ['log10_1p']},
                  'name': 'log10',
                  'table_bits': 7},
     'stats': {'counterexamples_folded': 2,
               'final_check': {'misses': 0, 'n': 6666},
               'gen_time_s': {'@f': 137},
               'input_count': 15567,
               'oracle_time_s': {'@f': 138},
               'per_fn': {'log10_1p': {'degree': 4, 'npolys': 2, 'terms': 4}},
               'reduced_count': 14216,
               'special_count': 192,
               'total_time_s': {'@f': 139}},
     'target': 'posit32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
