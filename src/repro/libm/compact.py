"""Compact frozen-table layout: one base64 pool, no 11k-line literals.

The legacy freezing format (:func:`repro.libm.serialize.render_module`
before this module existed) rendered every double of a generated
function as a Python literal — readable, but the two worst tables
(``data_float32/{sinh,cosh}.py``) weighed ~550 KB / ~11.5k lines each
and dominated import time, cache footprint, and the serving arena.

The compact layout (``COMPACT_VERSION = 1``) keeps the module a plain
Python file but moves every double into one deduplicated *pool*:

* the pool is the concatenation of the unique float vectors of the
  module — coefficient columns, range-reduction tables, scalar
  constants — stored as packed little-endian 64-bit patterns, base64
  text in the source, decoded with one :func:`base64.b64decode` (C-level,
  unlike the pure-Python b85 codec) and one :func:`numpy.frombuffer`
  (no float literals to parse, ever);
* identical sub-domain polynomials are deduplicated: each piecewise
  side stores its *unique* polynomials once plus an index indirection
  mapping the ``2**index_bits`` sub-domain slots onto them;
* sides whose polynomials form a shared monomial prefix (the gathered-
  Horner precondition, see :func:`repro.batch.kernels.padded_tables`)
  are frozen as the *already padded* column matrix (``mode="packed"``),
  so the batch engine and the serving arena reuse the columns as
  zero-copy views instead of re-padding per load;
* everything non-float (ints, strings, structure) stays a small
  literal skeleton in which floats are replaced by pool references.

Decoding is exact by construction: every double travels as its 64-bit
pattern, so ``decode(encode(data))`` reproduces the legacy ``DATA``
dict bit for bit (``tablecheck`` rule TC210 re-proves this for every
shipped module; :func:`render_compact` re-proves it at freeze time
before any file is written).

Skeleton markers (a dict with one ``@``-key; literal dict keys may
never start with ``@``, enforced at encode time):

====================  ==================================================
``{"@f": off}``       the double ``pool[off]``
``{"@fv": [off,n]}``  a tuple of ``n`` doubles starting at ``pool[off]``
``{"@lv": [off,n]}``  the same, as a list
``{"@t": [...]}``     a tuple of decoded items (lists stay plain lists)
``{"@pp": {...}}``    one piecewise side (packed or raw, see above)
====================  ==================================================
"""

from __future__ import annotations

import base64
import struct
from typing import Any, NamedTuple, Optional

import numpy as np

from repro.batch.reduce import FrozenGather
from repro.core.polynomials import horner_structure

__all__ = ["COMPACT_VERSION", "CompactError", "DecodedModule", "decode",
           "decode_module", "encode", "function_from_compact",
           "render_compact"]

COMPACT_VERSION = 1

#: index indirections longer than this are packed as base64 ``<u4``
#: (``index_b64``) instead of a literal int list (``index``)
_INDEX_LITERAL_MAX = 32

_MARKERS = ("@f", "@fv", "@lv", "@t", "@pp")


class CompactError(ValueError):
    """The compact blob is malformed, torn, or version-incompatible."""


# ---------------------------------------------------------------------------
# pool


class _PoolBuilder:
    """Deduplicating append-only store of little-endian doubles."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self._offsets: dict[bytes, int] = {}

    def add_vector(self, values) -> int:
        """Offset (in doubles) of this exact vector, appending once."""
        raw = struct.pack(f"<{len(values)}d", *values)
        off = self._offsets.get(raw)
        if off is None:
            off = len(self._buf) // 8
            self._offsets[raw] = off
            self._buf += raw
        return off

    def add_scalar(self, value: float) -> int:
        return self.add_vector((value,))

    @property
    def ndoubles(self) -> int:
        return len(self._buf) // 8

    def packed(self) -> str:
        return base64.b64encode(bytes(self._buf)).decode("ascii")


def _unpack_pool(comp: dict) -> np.ndarray:
    try:
        raw = base64.b64decode(comp["pool"])
    except Exception as e:
        raise CompactError(f"pool is not valid base64: {e}") from e
    if len(raw) % 8:
        raise CompactError(f"pool holds {len(raw)} bytes, not a multiple "
                           "of 8 (torn blob)")
    pool = np.frombuffer(raw, dtype="<f8")
    if len(pool) != comp.get("pool_len"):
        raise CompactError(
            f"pool holds {len(pool)} doubles but pool_len says "
            f"{comp.get('pool_len')!r} (torn or stale blob)")
    # frombuffer over bytes is already non-writeable; assert, don't trust
    assert not pool.flags.writeable
    return pool


# ---------------------------------------------------------------------------
# generic skeleton codec


def _is_float_vector(v: Any) -> bool:
    return len(v) > 0 and all(type(x) is float for x in v)


def _encode_node(v: Any, pool: _PoolBuilder) -> Any:
    if type(v) is float:
        return {"@f": pool.add_scalar(v)}
    if isinstance(v, bool) or v is None or isinstance(v, (int, str)):
        return v
    if isinstance(v, tuple):
        if _is_float_vector(v):
            return {"@fv": [pool.add_vector(v), len(v)]}
        return {"@t": [_encode_node(x, pool) for x in v]}
    if isinstance(v, list):
        if _is_float_vector(v):
            return {"@lv": [pool.add_vector(v), len(v)]}
        return [_encode_node(x, pool) for x in v]
    if isinstance(v, dict):
        out = {}
        for k, item in v.items():
            if not isinstance(k, str) or k.startswith("@"):
                raise ValueError(
                    f"compact encode: unsupported dict key {k!r} (keys "
                    "must be strings not starting with '@')")
            out[k] = _encode_node(item, pool)
        return out
    raise ValueError(
        f"compact encode: unsupported value type {type(v).__name__}")


def _slice(pool: np.ndarray, off: Any, n: Any, what: str) -> np.ndarray:
    if type(off) is not int or type(n) is not int \
            or off < 0 or n < 0 or off + n > len(pool):
        raise CompactError(f"{what}: pool reference ({off!r}, {n!r}) "
                           f"outside the {len(pool)}-double pool")
    return pool[off:off + n]


def _decode_node(v: Any, pool: np.ndarray) -> Any:
    if isinstance(v, dict):
        marker = [k for k in v if k.startswith("@")]
        if not marker:
            return {k: _decode_node(item, pool) for k, item in v.items()}
        if len(v) != 1 or marker[0] not in _MARKERS:
            raise CompactError(f"malformed skeleton marker {v!r}")
        key, arg = marker[0], v[marker[0]]
        if key == "@f":
            return float(_slice(pool, arg, 1, "@f")[0])
        if key == "@fv":
            return tuple(_slice(pool, arg[0], arg[1], "@fv").tolist())
        if key == "@lv":
            return _slice(pool, arg[0], arg[1], "@lv").tolist()
        if key == "@t":
            return tuple(_decode_node(x, pool) for x in arg)
        return _decode_side(arg, pool)[0]            # "@pp"
    if isinstance(v, list):
        return [_decode_node(x, pool) for x in v]
    return v


# ---------------------------------------------------------------------------
# piecewise sides: dedup + index indirection + frozen padded columns


def _dedup_polys(polys) -> tuple[list, list[int]]:
    """Unique ``(exps, coeffs)`` rows and the slot→unique index map.

    Identity is *bit* identity: two rows merge only when their exponent
    tuples match and every coefficient has the same 64-bit pattern
    (``struct.pack`` keys, so ``0.0`` and ``-0.0`` stay distinct).
    """
    uniq: list = []
    index: list[int] = []
    seen: dict = {}
    for exps, coeffs in polys:
        key = (tuple(exps), struct.pack(f"<{len(coeffs)}d", *coeffs))
        j = seen.get(key)
        if j is None:
            j = seen[key] = len(uniq)
            uniq.append((tuple(exps), tuple(coeffs)))
        index.append(j)
    return uniq, index


def _well_formed_side(pp: Any) -> bool:
    """Is this a legacy piecewise dict the @pp codec can round-trip?"""
    if not (isinstance(pp, dict) and type(pp) is dict
            and set(pp) == {"index_bits", "shift", "polys"}):
        return False
    bits, shift, polys = pp["index_bits"], pp["shift"], pp["polys"]
    if type(bits) is not int or type(shift) is not int or bits < 0 \
            or shift < 0 or type(polys) is not list \
            or len(polys) != 1 << bits:
        return False
    for row in polys:
        if not (type(row) is tuple and len(row) == 2):
            return False
        exps, coeffs = row
        if not (type(exps) is tuple and type(coeffs) is tuple
                and len(exps) == len(coeffs) and len(exps) > 0
                and all(type(e) is int for e in exps)
                and all(type(c) is float for c in coeffs)):
            return False
    return True


def _pack_side(pp: dict, pool: _PoolBuilder) -> dict:
    """The ``@pp`` payload for one well-formed legacy side dict."""
    bits, shift = pp["index_bits"], pp["shift"]
    uniq, index = _dedup_polys(pp["polys"])
    side: dict[str, Any] = {"index_bits": bits, "shift": shift}

    # packed (gathered) mode needs the padded evaluation to be provably
    # bit-identical to the per-polynomial scalar path — the exact
    # conditions of repro.batch.kernels.padded_tables (shared monomial
    # prefix, and no padded row whose own top coefficient is a zero,
    # where 0.0*u + c could flip a zero's sign); test_compact.py holds
    # the two decision procedures in agreement
    ref_exps = max((e for e, _ in uniq), key=len)
    struct_ = horner_structure(ref_exps)
    sound = bits > 0 and struct_ is not None and all(
        e == ref_exps[:len(e)]
        and (len(e) == len(ref_exps)
             or c[-1] != 0.0)  # fplint: disable=FP101 — exact-zero test
        for e, c in uniq)
    if sound:
        start, stride = struct_
        nterms, nuniq = len(ref_exps), len(uniq)
        grid = [0.0] * (nterms * nuniq)
        for i, (_, coeffs) in enumerate(uniq):
            for t, c in enumerate(coeffs):
                grid[t * nuniq + i] = c
        side.update({
            "mode": "packed", "start": start, "stride": stride,
            "exps": list(ref_exps),
            "lens": [len(c) for _, c in uniq],
            "cols": [pool.add_vector(grid), nterms, nuniq],
        })
    else:
        side.update({
            "mode": "raw",
            "polys": [[list(e), pool.add_vector(c), len(c)]
                      for e, c in uniq],
        })
    if index != list(range(len(uniq))):
        if len(index) > _INDEX_LITERAL_MAX:
            raw = np.asarray(index, dtype="<u4").tobytes()
            side["index_b64"] = base64.b64encode(raw).decode("ascii")
        else:
            side["index"] = index
    return side


def _side_index(side: dict, nuniq: int, what: str) -> Optional[np.ndarray]:
    """The decoded slot→unique map as intp, or None for the identity."""
    if "index_b64" in side:
        try:
            raw = base64.b64decode(side["index_b64"])
        except Exception as e:
            raise CompactError(f"{what}: index is not valid base64: "
                               f"{e}") from e
        idx = np.frombuffer(raw, dtype="<u4").astype(np.intp)
    elif "index" in side:
        idx = np.asarray(side["index"], dtype=np.intp)
    else:
        return None
    bits = side["index_bits"]
    if len(idx) != 1 << bits:
        raise CompactError(f"{what}: index has {len(idx)} entries for "
                           f"2**{bits} sub-domains")
    if idx.size and (idx.min() < 0 or idx.max() >= nuniq):
        raise CompactError(f"{what}: index points outside the "
                           f"{nuniq} unique polynomials")
    return idx


def _decode_side(side: Any, pool: np.ndarray) \
        -> tuple[dict, Optional[FrozenGather]]:
    """(legacy side dict, frozen gathered tables or None)."""
    if not isinstance(side, dict) or "mode" not in side:
        raise CompactError(f"malformed @pp payload {side!r}")
    bits, shift = side.get("index_bits"), side.get("shift")
    if type(bits) is not int or type(shift) is not int:
        raise CompactError("@pp payload missing index_bits/shift ints")
    frozen = None
    if side["mode"] == "packed":
        exps = tuple(side["exps"])
        lens = side["lens"]
        off, nterms, nuniq = side["cols"]
        if len(lens) != nuniq or nterms != len(exps):
            raise CompactError("@pp packed payload is inconsistent "
                               "(lens/exps/cols disagree)")
        cols = _slice(pool, off, nterms * nuniq, "@pp cols") \
            .reshape(nterms, nuniq)
        uniq = []
        for i, n in enumerate(lens):
            if not 1 <= n <= nterms:
                raise CompactError(f"@pp packed lens[{i}]={n!r} outside "
                                   f"[1, {nterms}]")
            uniq.append((exps[:n], tuple(cols[:n, i].tolist())))
        idx = _side_index(side, nuniq, "@pp packed")
        start, stride = side["start"], side["stride"]
        frozen = FrozenGather(shift, bits, start, stride, cols, idx)
    elif side["mode"] == "raw":
        uniq = [(tuple(e), tuple(_slice(pool, off, n, "@pp raw").tolist()))
                for e, off, n in side["polys"]]
        idx = _side_index(side, len(uniq), "@pp raw")
    else:
        raise CompactError(f"unknown @pp mode {side['mode']!r}")
    slots = idx.tolist() if idx is not None else range(len(uniq))
    polys = [uniq[j] for j in slots]
    if len(polys) != 1 << bits:
        raise CompactError(f"@pp expands to {len(polys)} slots for "
                           f"2**{bits} sub-domains")
    return {"index_bits": bits, "shift": shift, "polys": polys}, frozen


# ---------------------------------------------------------------------------
# module-level encode / decode


def encode(data: dict) -> dict:
    """The compact literal form of one legacy ``DATA`` dict.

    Pure literals only — ints, strings, bools, lists, dicts, and the
    base64 pool string — so the rendered module parses without building
    a single float object.  Raises :class:`ValueError` on values the
    skeleton codec cannot represent faithfully.
    """
    pool = _PoolBuilder()
    skel: dict[str, Any] = {}
    for key in sorted(data):
        value = data[key]
        if key == "approx" and isinstance(value, dict):
            approx: dict[str, Any] = {}
            for name, sides in value.items():
                if (isinstance(sides, dict) and type(sides) is dict
                        and set(sides) == {"neg", "pos"}):
                    approx[name] = {
                        side: ({"@pp": _pack_side(pp, pool)}
                               if _well_formed_side(pp)
                               else _encode_node(pp, pool))
                        for side, pp in sides.items()
                    }
                else:
                    approx[name] = _encode_node(sides, pool)
            skel[key] = approx
        else:
            skel[key] = _encode_node(value, pool)
    return {
        "version": COMPACT_VERSION,
        "function": data.get("function"),
        "target": data.get("target"),
        "rr_kind": data.get("rr_kind"),
        "pool_len": pool.ndoubles,
        "pool": pool.packed(),
        "data": skel,
    }


class DecodedModule(NamedTuple):
    """One decoded compact module, with its evaluation-ready views."""

    #: the exact legacy DATA dict
    data: dict
    #: the read-only float64 pool every view below aliases
    pool: np.ndarray
    #: rr_state attr → (offset, n) for every float-vector table
    rr_vectors: dict[str, tuple[int, int]]
    #: (fn_name, side) → frozen gathered-Horner tables (packed sides)
    frozen: dict[tuple[str, str], FrozenGather]


def decode_module(comp: dict) -> DecodedModule:
    """Decode a compact blob into the legacy dict plus frozen views."""
    if not isinstance(comp, dict):
        raise CompactError(f"COMPACT is {type(comp).__name__}, not dict")
    if comp.get("version") != COMPACT_VERSION:
        raise CompactError(
            f"compact layout version {comp.get('version')!r}; this build "
            f"reads {COMPACT_VERSION}")
    for key in ("pool", "pool_len", "data"):
        if key not in comp:
            raise CompactError(f"COMPACT missing {key!r}")
    pool = _unpack_pool(comp)
    skel = comp["data"]
    if not isinstance(skel, dict):
        raise CompactError("COMPACT['data'] must be a dict skeleton")

    frozen: dict[tuple[str, str], FrozenGather] = {}
    data: dict[str, Any] = {}
    for key, value in skel.items():
        if key == "approx" and isinstance(value, dict):
            approx: dict[str, Any] = {}
            for name, sides in value.items():
                if isinstance(sides, dict) and set(sides) == {"neg", "pos"}:
                    decoded_sides = {}
                    for side, node in sides.items():
                        if isinstance(node, dict) and set(node) == {"@pp"}:
                            pp, fz = _decode_side(node["@pp"], pool)
                            if fz is not None:
                                frozen[(name, side)] = fz
                            decoded_sides[side] = pp
                        else:
                            decoded_sides[side] = _decode_node(node, pool)
                    approx[name] = decoded_sides
                else:
                    approx[name] = _decode_node(sides, pool)
            data[key] = approx
        else:
            data[key] = _decode_node(value, pool)

    rr_vectors: dict[str, tuple[int, int]] = {}
    rr_skel = skel.get("rr_state")
    if isinstance(rr_skel, dict):
        for attr, node in rr_skel.items():
            if isinstance(node, dict) and set(node) == {"@fv"}:
                off, n = node["@fv"]
                rr_vectors[attr] = (off, n)
    return DecodedModule(data, pool, rr_vectors, frozen)


def decode(comp: dict) -> dict:
    """The exact legacy ``DATA`` dict of a compact blob."""
    return decode_module(comp).data


def function_from_compact(comp: dict):
    """Rebuild a runnable GeneratedFunction straight from a compact blob.

    Beyond :func:`repro.libm.serialize.function_from_dict` on the
    decoded dict, this primes the evaluation-side caches with zero-copy
    views into the pool:

    * every float-vector range-reduction table is
      :func:`~repro.batch.reduce.prime`\\ d, so ``compensate_batch``
      never re-converts the Python tuples;
    * every packed piecewise side carries its
      :class:`~repro.batch.reduce.FrozenGather` in
      ``PiecewisePolynomial.__dict__['_frozen']``, so
      :func:`repro.batch.kernels.compile_piecewise` skips re-padding
      and gathers through the deduplicated column pool.
    """
    from repro.batch.reduce import prime
    from repro.libm.serialize import function_from_dict

    dec = decode_module(comp)
    fn = function_from_dict(dec.data)
    rr = fn.spec.rr
    for attr, (off, n) in dec.rr_vectors.items():
        v = getattr(rr, attr, None)
        if isinstance(v, tuple) and len(v) == n:
            prime(rr, attr, dec.pool[off:off + n])
    for (name, side), fz in dec.frozen.items():
        af = fn.approx.get(name)
        pp = getattr(af, side, None) if af is not None else None
        if pp is not None and pp.index_bits == fz.index_bits \
                and pp.shift == fz.shift:
            pp.__dict__["_frozen"] = fz
    return fn


# ---------------------------------------------------------------------------
# rendering


_CHUNK = 96  # base64 chars per source line


def _verify_compact(source: str, comp: dict, data: dict) -> None:
    """Freeze-time guard: the compact module must re-read losslessly.

    * the rendered source may not contain a single float literal — all
      doubles travel through the pool, so any float constant in the AST
      is a formatting bug;
    * executing the source must reproduce the ``COMPACT`` dict exactly,
      and decoding that must reproduce ``data`` bit for bit.
    """
    import ast

    from repro.libm.serialize import _deep_equal

    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            raise ValueError(
                f"render_compact: float literal at line {node.lineno}; "
                "all doubles must travel through the pool")
    ns: dict[str, Any] = {}
    exec(compile(source, "<render_compact>", "exec"), ns)
    if ns.get("COMPACT") != comp:
        raise ValueError(
            "render_compact: rendered source does not round-trip the "
            "COMPACT blob")
    if not _deep_equal(decode(ns["COMPACT"]), data):
        raise ValueError(
            "render_compact: decoded COMPACT does not reproduce the "
            "frozen data bit-for-bit (structure was lost in encoding)")


def render_compact(data: dict) -> str:
    """Render one legacy ``DATA`` dict as a compact source module.

    The result is verified before it is returned (see
    :func:`_verify_compact`); rendering that would freeze a torn or
    lossy blob raises instead of writing bad data.  The module exposes
    ``DATA`` lazily through PEP 562, so every legacy consumer
    (tablecheck, certify, diffing) keeps reading the dict form.
    """
    import pprint

    comp = encode(data)
    pool_str = comp["pool"]
    chunks = "\n".join(
        f'    "{pool_str[i:i + _CHUNK]}"'
        for i in range(0, len(pool_str), _CHUNK)) or '    ""'
    skel = pprint.pformat(comp["data"], width=100, sort_dicts=True)
    skel = skel.replace("\n", "\n    ")
    source = (
        f'"""Generated coefficient data for {data["function"]} '
        f'({data["target"]}) — compact layout '
        f'v{COMPACT_VERSION}.\n\nProduced by the RLIBM-32 pipeline '
        '(tools/generate_*.py); do not edit by hand.\nEvery double '
        'lives in the base64 pool below as little-endian 64-bit\n'
        'patterns; ``repro.libm.compact.decode`` reproduces the legacy '
        '``DATA`` dict\nbit for bit (accessing ``DATA`` on this module '
        'does exactly that).\n"""\n\n'
        f"# {comp['pool_len']} deduplicated doubles, little-endian, "
        "base64\n"
        f"_POOL = (\n{chunks}\n)\n\n"
        "COMPACT = {\n"
        f"    \"version\": {comp['version']},\n"
        f"    \"function\": {comp['function']!r},\n"
        f"    \"target\": {comp['target']!r},\n"
        f"    \"rr_kind\": {comp['rr_kind']!r},\n"
        f"    \"pool_len\": {comp['pool_len']},\n"
        "    \"pool\": _POOL,\n"
        f"    \"data\": {skel},\n"
        "}\n\n\n"
        "def __getattr__(name):\n"
        '    """PEP 562: decode the legacy DATA dict on first access."""\n'
        "    if name != \"DATA\":\n"
        "        raise AttributeError(name)\n"
        "    from repro.libm.compact import decode\n\n"
        "    data = globals()[\"DATA\"] = decode(COMPACT)\n"
        "    return data\n"
    )
    _verify_compact(source, comp, data)
    return source
