"""Freezing generated functions into importable data modules.

The generator tools (``tools/generate_float32.py`` and
``tools/generate_posit32.py``) run the full pipeline and then *freeze*
each :class:`~repro.core.generator.GeneratedFunction` — range reduction
state (tables, constants, thresholds), piecewise polynomial tables and
generation statistics — into a plain-Python data module under
``repro/libm/data_float32`` / ``data_posit32``.  The shipped runtime
library only reads those modules; importing it never touches the oracle
or the LP solver.

Shipped modules use the compact frozen-table layout
(:mod:`repro.libm.compact`): every double travels as its little-endian
64-bit pattern inside one base85 pool — the plain-Python analogue of
how RLIBM-32 emits C source files with hex-float coefficient tables —
and the legacy literal ``DATA`` dict is decoded lazily on first access.
:func:`render_module_legacy` keeps the original all-literals rendering
(float ``repr`` round-trips exactly) as the diffable reference form.
"""

from __future__ import annotations

import ast
import math
import pprint
from typing import Any

from repro.core.generator import FunctionSpec, GeneratedFunction, GenStats
from repro.core.intervals import TargetFormat
from repro.core.piecewise import ApproxFunc, PiecewiseConfig, PiecewisePolynomial
from repro.core.polynomials import Polynomial
from repro.fp.formats import FLOAT16, FLOAT32, FLOAT64, BFLOAT16, FLOAT8
from repro.posit.format import POSIT8, POSIT16, POSIT32
from repro.rangereduction.base import RangeReduction
from repro.rangereduction.exp import ExpReduction
from repro.rangereduction.log import LogReduction
from repro.rangereduction.sinhcosh import SinhCoshReduction
from repro.rangereduction.sinpicospi import CosPiReduction, SinPiReduction

__all__ = ["function_to_dict", "function_from_dict", "render_module",
           "render_module_legacy", "render_certificate", "TARGETS_BY_NAME"]

_RR_CLASSES: dict[str, type[RangeReduction]] = {
    "log": LogReduction,
    "exp": ExpReduction,
    "sinhcosh": SinhCoshReduction,
    "sinpi": SinPiReduction,
    "cospi": CosPiReduction,
}

_RR_KIND: dict[type, str] = {
    LogReduction: "log",
    ExpReduction: "exp",
    SinhCoshReduction: "sinhcosh",
    SinPiReduction: "sinpi",
    CosPiReduction: "cospi",
}

TARGETS_BY_NAME: dict[str, TargetFormat] = {
    "float64": FLOAT64, "float32": FLOAT32, "bfloat16": BFLOAT16,
    "float16": FLOAT16, "float8": FLOAT8,
    "posit32": POSIT32, "posit16": POSIT16, "posit8": POSIT8,
}


def _rr_state(rr: RangeReduction) -> dict[str, Any]:
    state = {k: v for k, v in rr.__dict__.items() if k != "target"}
    # class-level attributes that from-state must restore uniformly
    state["name"] = rr.name
    state["fn_names"] = tuple(rr.fn_names)
    state["exponents"] = tuple(tuple(e) for e in rr.exponents)
    return state


def _rr_from_state(kind: str, state: dict[str, Any],
                   target: TargetFormat) -> RangeReduction:
    cls = _RR_CLASSES[kind]
    rr = cls.__new__(cls)
    rr.__dict__.update(state)
    rr.target = target
    return rr


def _piecewise_to_dict(pp: PiecewisePolynomial | None) -> dict | None:
    if pp is None:
        return None
    return {
        "index_bits": pp.index_bits,
        "shift": pp.shift,
        "polys": [(tuple(p.exponents), tuple(p.coefficients))
                  for p in pp.polys],
    }


def _piecewise_from_dict(d: dict | None) -> PiecewisePolynomial | None:
    if d is None:
        return None
    polys = tuple(Polynomial(tuple(e), tuple(c)) for e, c in d["polys"])
    return PiecewisePolynomial(d["index_bits"], d["shift"], polys)


def function_to_dict(fn: GeneratedFunction) -> dict[str, Any]:
    """Serializable description of a generated function."""
    target_name = str(fn.spec.target)
    if target_name not in TARGETS_BY_NAME:
        raise ValueError(f"unknown target {target_name!r}")
    rr = fn.spec.rr
    return {
        "function": fn.spec.name,
        "target": target_name,
        "rr_kind": _RR_KIND[type(rr)],
        "rr_state": _rr_state(rr),
        "approx": {
            name: {"neg": _piecewise_to_dict(af.neg),
                   "pos": _piecewise_to_dict(af.pos)}
            for name, af in fn.approx.items()
        },
        "stats": {
            "gen_time_s": fn.stats.gen_time_s,
            "oracle_time_s": fn.stats.oracle_time_s,
            "input_count": fn.stats.input_count,
            "special_count": fn.stats.special_count,
            "reduced_count": fn.stats.reduced_count,
            "per_fn": fn.stats.per_fn,
            "phase_s": fn.stats.phase_s,
        },
    }


def function_from_dict(data: dict[str, Any]) -> GeneratedFunction:
    """Rebuild a runnable GeneratedFunction from frozen data."""
    target = TARGETS_BY_NAME[data["target"]]
    rr = _rr_from_state(data["rr_kind"], dict(data["rr_state"]), target)
    approx = {
        name: ApproxFunc(name, _piecewise_from_dict(d["neg"]),
                         _piecewise_from_dict(d["pos"]))
        for name, d in data["approx"].items()
    }
    st = data["stats"]
    stats = GenStats(gen_time_s=st["gen_time_s"],
                     oracle_time_s=st["oracle_time_s"],
                     input_count=st["input_count"],
                     special_count=st["special_count"],
                     reduced_count=st["reduced_count"],
                     per_fn=dict(st["per_fn"]),
                     # absent in tables frozen before the obs layer
                     phase_s=dict(st.get("phase_s", {})))
    spec = FunctionSpec(data["function"], target, rr, PiecewiseConfig())
    return GeneratedFunction(spec, approx, stats)


def _deep_equal(a: Any, b: Any) -> bool:
    """Structural equality where NaN equals NaN (frozen-data fidelity)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if type(a) is not type(b):
        return False
    if isinstance(a, dict):
        return (a.keys() == b.keys()
                and all(_deep_equal(v, b[k]) for k, v in a.items()))
    if isinstance(a, (list, tuple)):
        return (len(a) == len(b)
                and all(_deep_equal(x, y) for x, y in zip(a, b)))
    return a == b


def _verify_rendered(source: str, data: dict[str, Any]) -> None:
    """Freeze-time guard: the rendered module must re-read losslessly.

    Two checks, so :mod:`repro.analysis.tablecheck` can never fail on
    freshly generated data:

    * every non-finite double appears only through the named ``inf`` /
      ``nan`` module constants — no float *literal* in the rendered
      source may be non-finite (a ``1e999``-style overflow would parse
      equal to ``inf`` and hide a formatting bug);
    * executing the rendered source reproduces ``data`` exactly —
      i.e. every emitted float literal round-trips through ``repr`` to
      the identical double, and no structure is lost.
    """
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.Constant) and isinstance(node.value, float) \
                and not math.isfinite(node.value):
            raise ValueError(
                f"render_module: non-finite float literal at line "
                f"{node.lineno}; inf/nan must use the named constants")
    ns: dict[str, Any] = {}
    exec(compile(source, "<render_module>", "exec"), ns)
    if not _deep_equal(ns["DATA"], data):
        raise ValueError(
            "render_module: rendered source does not round-trip the "
            "frozen data (a literal failed repr round-trip or structure "
            "was lost)")


def render_module_legacy(data: dict[str, Any]) -> str:
    """Render the frozen data as a literal-``DATA`` source module.

    The pre-compact rendering: every double as a ``repr`` literal.  The
    shipped packages use :func:`render_module` (compact layout) instead;
    this form remains the reference for diffing, for the TC210
    round-trip check (:mod:`repro.analysis.tablecheck` re-renders each
    decoded compact module through *this* renderer), and for tests that
    need an import-shaped legacy module.  The result is verified before
    it is returned (see :func:`_verify_rendered`): rendering that would
    freeze a table the static verifier rejects raises instead of
    writing bad data.
    """
    body = pprint.pformat(data, width=100, sort_dicts=True)
    source = (
        f'"""Generated coefficient data for {data["function"]} '
        f'({data["target"]}).\n\nProduced by the RLIBM-32 pipeline '
        '(tools/generate_*.py); do not edit by hand.\n"""\n\n'
        "import math\n\n"
        "# float repr round-trips exactly; the two specials need names\n"
        "inf = math.inf\n"
        "nan = math.nan\n\n"
        f"DATA = {body}\n"
    )
    _verify_rendered(source, data)
    return source


def render_module(data: dict[str, Any]) -> str:
    """Render the frozen data as a compact-layout source module.

    Shipped data modules use the compact frozen-table layout of
    :mod:`repro.libm.compact`: every double lives in one base85 pool of
    little-endian bit patterns, piecewise sides are deduplicated behind
    an index indirection, and the legacy ``DATA`` dict is decoded
    lazily (PEP 562) on first attribute access — so every dict-level
    consumer (tablecheck, certify, diffing) keeps working unchanged.
    The render is verified before it is returned: the source must
    contain no float literal at all, must round-trip its ``COMPACT``
    blob through ``exec``, and the decoded blob must reproduce ``data``
    bit for bit.
    """
    from repro.libm.compact import render_compact

    return render_compact(data)


def render_certificate(data: dict[str, Any],
                       capture: dict) -> tuple[str, Any]:
    """Render the certificate accompanying a frozen data module.

    ``capture`` is the LP-pinning sample dict collected by
    ``generate(..., capture=...)``; the result is the JSON text to write
    as ``<name>.cert.json`` next to the module (same stable formatting as
    :func:`repro.analysis.certify.format.save_certificate`) plus the
    emission stats.  The emitted certificate is verified with the trusted
    checker before it is returned — freezing a certificate the verifier
    rejects raises instead of shipping bad proof material.
    """
    import json

    from repro.analysis.certify.emit import certificate_from_capture
    from repro.analysis.certify.format import schema_errors
    from repro.analysis.certify.verify import verify_certificate

    cert, stats = certificate_from_capture(data, capture)
    problems = schema_errors(cert)
    if problems:
        raise ValueError(
            f"render_certificate: emitted certificate is malformed: "
            f"{problems[0]}")
    findings = verify_certificate(cert, data, "<render_certificate>")
    if findings:
        f = findings[0]
        raise ValueError(
            f"render_certificate: emitted certificate fails verification "
            f"({f.rule}: {f.message})")
    return json.dumps(cert, indent=1, sort_keys=True) + "\n", stats
