"""Driver for generating the shipped 32-bit libraries.

This is the sampled 32-bit instantiation of the pipeline (DESIGN.md §3):
for each function it assembles the input set — representable-value-
proportional random sample, exhaustive pools around every special-case
boundary and structural point, and mined hard cases (inputs whose exact
result grazes a rounding boundary; see :mod:`repro.eval.hardcases`) —
runs :func:`repro.core.validate.generate_validated` with fresh validation
sets, performs a final independent residual check, and freezes the result
into a data module.

The per-function budgets live in :data:`GEN_SETTINGS`; ``quick=True``
divides the sample sizes for smoke tests.
"""

from __future__ import annotations

import pathlib
import random
import time
import warnings
from dataclasses import dataclass

from repro.core.generator import FunctionSpec, GeneratedFunction
from repro.core.intervals import TargetFormat
from repro.core.piecewise import PiecewiseConfig
from repro.core.sampling import boundary_values, sample_values
from repro.core.validate import generate_validated, validate
from repro.eval.hardcases import mine_hard_cases
from repro.libm.serialize import (function_to_dict, render_certificate,
                                  render_module)
from repro.obs import span
from repro.parallel import Checkpoint, resolve_workers, run_tasks
from repro.rangereduction.domains import boundary_centers, sampling_domain
from repro.rangereduction import RangeReduction, reduction_for

__all__ = ["GenSettings", "GEN_SETTINGS", "generate_one", "generate_library"]


@dataclass
class GenSettings:
    """Sampling and piecewise budgets for one function."""

    base: int = 40_000          # ordinal-uniform generation sample
    validation: int = 25_000    # fresh validation sample per round
    hard_candidates: int = 50_000
    hard_keep: int = 1_500
    boundary_radius: int = 192
    max_index_bits: int = 10
    max_degree: int | None = None   # None = range reduction default
    #: outer-loop budget: rounds of fresh validation, and how many
    #: consecutive clean fresh rounds acceptance requires
    rounds: int = 12
    clean_rounds: int = 2
    final_check: int = 20_000


GEN_SETTINGS: dict[str, GenSettings] = {
    "ln": GenSettings(),
    "log2": GenSettings(),
    "log10": GenSettings(),
    "exp": GenSettings(),
    "exp2": GenSettings(),
    "exp10": GenSettings(),
    "sinh": GenSettings(max_index_bits=8),
    "cosh": GenSettings(max_index_bits=8),
    "sinpi": GenSettings(max_index_bits=8),
    "cospi": GenSettings(max_index_bits=8),
}


def generate_one(
    name: str,
    fmt: TargetFormat,
    *,
    seed: int = 2021,
    quick: bool = False,
    settings: GenSettings | None = None,
    scale: int = 1,
    log=print,
    workers: int | str | None = None,
    capture: dict | None = None,
    extra_inputs: list[float] | None = None,
) -> tuple[GeneratedFunction, dict]:
    """Run the sampled pipeline for one function; returns (fn, extra
    stats).  ``scale`` divides every sample budget (time/quality knob);
    ``quick`` is the x8 smoke-test shortcut; ``workers`` parallelizes
    the oracle-comparison phases (validation rounds and the final
    residual check) without changing any result.  ``capture`` collects
    the accepted function's LP-pinning samples for certificate emission
    (see :func:`repro.core.generator.generate`).  ``extra_inputs`` are
    additional representable inputs forced into the generation
    constraint set — the adversarial-corpus feedback loop: inputs a
    frozen corpus proved wrong join the LP constraints of the next
    generation, which therefore cannot ship the same wrong rounding."""
    cfg = settings or GEN_SETTINGS[name]
    div = 8 if quick else max(1, scale)
    rng = random.Random(seed)
    t0 = time.perf_counter()

    kwargs = {}
    if cfg.max_degree is not None:
        kwargs["max_degree"] = cfg.max_degree
    rr = reduction_for(name, fmt, **kwargs)
    lo, hi = sampling_domain(name, fmt, rr)
    log(f"[{name}] domain [{lo!r}, {hi!r}]")

    with span("genlib.inputs", fn=name):
        inputs = sample_values(fmt, cfg.base // div, rng, lo, hi)
        inputs += boundary_values(fmt, boundary_centers(name, rr, lo, hi),
                                  cfg.boundary_radius)
        hard_pool = sample_values(fmt, cfg.hard_candidates // div,
                                  random.Random(seed + 1), lo, hi)
        hard_pool = [x for x in hard_pool if rr.special(x) is None]
        inputs += mine_hard_cases(name, fmt, hard_pool, cfg.hard_keep // div)
        inputs += [x for x in rr.hard_input_candidates() if lo <= x <= hi]
        if extra_inputs:
            inputs += [x for x in extra_inputs if lo <= x <= hi]
    log(f"[{name}] {len(inputs)} generation inputs "
        f"({time.perf_counter() - t0:.0f}s incl. hard-case mining)")

    def fresh_validation(round_no: int) -> list[float]:
        s = seed + 1000 + 17 * round_no
        val = sample_values(fmt, cfg.validation // div, random.Random(s),
                            lo, hi)
        pool = sample_values(fmt, cfg.hard_candidates // (2 * div),
                             random.Random(s + 1), lo, hi)
        pool = [x for x in pool if rr.special(x) is None]
        val += mine_hard_cases(name, fmt, pool, cfg.hard_keep // (2 * div))
        return val

    spec = FunctionSpec(name, fmt, rr,
                        PiecewiseConfig(max_index_bits=cfg.max_index_bits))
    with span("genlib.validated", fn=name):
        fn, folded = generate_validated(spec, inputs, fresh_validation,
                                        max_rounds=cfg.rounds,
                                        clean_rounds=cfg.clean_rounds,
                                        workers=workers, capture=capture)
    log(f"[{name}] generated: {fn.stats.per_fn} "
        f"reduced={fn.stats.reduced_count} folded-back={folded} "
        f"({time.perf_counter() - t0:.0f}s)")

    check = sample_values(fmt, cfg.final_check // div,
                          random.Random(seed + 4), lo, hi)
    with span("genlib.final_check", fn=name, n=len(check)):
        misses = validate(fn, check, workers=workers)
    extra = {
        "final_check": {"n": len(check), "misses": len(misses)},
        "counterexamples_folded": folded,
        "total_time_s": time.perf_counter() - t0,
    }
    log(f"[{name}] final residual check: {len(misses)}/{len(check)} misses "
        f"({time.perf_counter() - t0:.0f}s total)")
    return fn, extra


def _render_one(name: str, fmt: TargetFormat, seed: int, quick: bool,
                scale: int, settings: GenSettings | None,
                workers: int | str | None, log,
                extra_inputs: list[float] | None = None) -> tuple[str, str]:
    """Generate one function; returns (module source, certificate JSON).

    The certificate is built from the run's captured LP-pinning samples
    and self-verified with the trusted checker before freeze
    (:func:`repro.libm.serialize.render_certificate`).
    """
    capture: dict = {}
    fn, extra = generate_one(name, fmt, seed=seed, quick=quick,
                             settings=settings, scale=scale, log=log,
                             workers=workers, capture=capture,
                             extra_inputs=extra_inputs)
    data = function_to_dict(fn)
    data["stats"].update(extra)
    cert_text, cstats = render_certificate(data, capture)
    log(f"[{name}] certificate: {cstats.certified}/{cstats.slots} slots "
        f"certified, {cstats.points} points")
    return render_module(data), cert_text


def _generate_one_task(payload: tuple) -> tuple[str, str, str]:
    """Worker task for the per-function fan-out: (name, module source,
    certificate JSON).

    Runs in its own process; the inner validation stays serial (the
    pool is already one process per function) and logging goes to the
    worker's stdout with a function prefix.
    """
    name, fmt, seed, quick, scale, settings, extra_inputs = payload
    source, cert = _render_one(name, fmt, seed, quick, scale, settings,
                               workers=None, log=print,
                               extra_inputs=extra_inputs)
    return name, source, cert


def generate_library(
    names: list[str],
    fmt: TargetFormat,
    out_dir: pathlib.Path,
    *,
    quick: bool = False,
    seed: int = 2021,
    scale: int = 1,
    log=print,
    workers: int | str | None = None,
    checkpoint: pathlib.Path | str | None = None,
    settings: GenSettings | None = None,
    checkpoint_dir: pathlib.Path | str | None = None,
    extra_inputs: dict[str, list[float]] | None = None,
) -> None:
    """Generate and freeze a set of functions into ``out_dir``.

    ``workers`` fans the functions out across a process pool (each
    function's pipeline is seeded independently, so any schedule
    produces byte-identical modules; with a single pending function the
    parallelism moves inside it, onto the validation chunks instead).
    ``checkpoint`` makes the run resumable: every finished function
    is saved as an atomic JSON shard, a restarted run regenerates only
    the missing ones, and a manifest pins target/seed/budgets so stale
    checkpoints cannot leak into a differently configured run
    (``checkpoint_dir`` is the deprecated spelling of the same
    parameter).  ``settings`` overrides :data:`GEN_SETTINGS` for every
    function (small budgets for tests and sweeps).  ``extra_inputs``
    maps function names to additional generation inputs (see
    :func:`generate_one`) — typically the inputs of the shipped
    adversarial corpora (``tools/generate_float32.py --adversarial``).
    """
    if checkpoint_dir is not None:
        warnings.warn("checkpoint_dir= is deprecated; use checkpoint=",
                      DeprecationWarning, stacklevel=2)
        if checkpoint is None:
            checkpoint = checkpoint_dir
    out_dir.mkdir(parents=True, exist_ok=True)
    init = out_dir / "__init__.py"
    if not init.exists():
        init.write_text('"""Frozen coefficient tables (generated)."""\n')

    extra_inputs = extra_inputs or {}
    ckpt = None
    if checkpoint is not None:
        ckpt = Checkpoint(checkpoint, manifest={
            "target": str(fmt), "seed": seed, "quick": bool(quick),
            "scale": scale,
            # fingerprint, so a checkpoint taken without (or with other)
            # corpus feedback cannot leak into this run
            "extra_inputs": {n: len(v) for n, v in sorted(
                extra_inputs.items()) if v},
        })

    sources: dict[str, str] = {}
    certs: dict[str, str | None] = {}
    pending: list[str] = []
    for name in names:
        saved = ckpt.load(name) if ckpt is not None else None
        if saved is not None:
            sources[name] = saved["source"]
            certs[name] = saved.get("cert")
            log(f"[{name}] resumed from checkpoint")
        else:
            pending.append(name)

    n_workers = resolve_workers(workers)
    if n_workers > 1 and len(pending) > 1:
        payloads = [(name, fmt, seed, quick, scale, settings,
                     extra_inputs.get(name))
                    for name in pending]

        def _save(index: int, result: tuple[str, str, str]) -> None:
            name, source, cert = result
            sources[name] = source
            certs[name] = cert
            if ckpt is not None:
                ckpt.save(name, {"source": source, "cert": cert})

        run_tasks(_generate_one_task, payloads, workers=n_workers,
                  label="genlib", on_result=_save)
    else:
        for name in pending:
            source, cert = _render_one(name, fmt, seed, quick, scale,
                                       settings, workers=workers, log=log,
                                       extra_inputs=extra_inputs.get(name))
            sources[name] = source
            certs[name] = cert
            if ckpt is not None:
                ckpt.save(name, {"source": source, "cert": cert})

    for name in names:
        path = out_dir / f"{name}.py"
        path.write_text(sources[name])
        if certs.get(name) is not None:
            (out_dir / f"{name}.cert.json").write_text(certs[name])
        log(f"[{name}] wrote {path} ({path.stat().st_size // 1024} KB)")
