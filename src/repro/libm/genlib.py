"""Driver for generating the shipped 32-bit libraries.

This is the sampled 32-bit instantiation of the pipeline (DESIGN.md §3):
for each function it assembles the input set — representable-value-
proportional random sample, exhaustive pools around every special-case
boundary and structural point, and mined hard cases (inputs whose exact
result grazes a rounding boundary; see :mod:`repro.eval.hardcases`) —
runs :func:`repro.core.validate.generate_validated` with fresh validation
sets, performs a final independent residual check, and freezes the result
into a data module.

The per-function budgets live in :data:`GEN_SETTINGS`; ``quick=True``
divides the sample sizes for smoke tests.
"""

from __future__ import annotations

import pathlib
import random
import time
from dataclasses import dataclass

from repro.core.generator import FunctionSpec, GeneratedFunction
from repro.core.intervals import TargetFormat
from repro.core.piecewise import PiecewiseConfig
from repro.core.sampling import boundary_values, sample_values
from repro.core.validate import generate_validated, validate
from repro.eval.hardcases import mine_hard_cases
from repro.libm.serialize import function_to_dict, render_module
from repro.obs import span
from repro.rangereduction.domains import boundary_centers, sampling_domain
from repro.rangereduction import RangeReduction, reduction_for

__all__ = ["GenSettings", "GEN_SETTINGS", "generate_one", "generate_library"]


@dataclass
class GenSettings:
    """Sampling and piecewise budgets for one function."""

    base: int = 40_000          # ordinal-uniform generation sample
    validation: int = 25_000    # fresh validation sample per round
    hard_candidates: int = 50_000
    hard_keep: int = 1_500
    boundary_radius: int = 192
    max_index_bits: int = 10
    max_degree: int | None = None   # None = range reduction default
    #: outer-loop budget: rounds of fresh validation, and how many
    #: consecutive clean fresh rounds acceptance requires
    rounds: int = 12
    clean_rounds: int = 2
    final_check: int = 20_000


GEN_SETTINGS: dict[str, GenSettings] = {
    "ln": GenSettings(),
    "log2": GenSettings(),
    "log10": GenSettings(),
    "exp": GenSettings(),
    "exp2": GenSettings(),
    "exp10": GenSettings(),
    "sinh": GenSettings(max_index_bits=8),
    "cosh": GenSettings(max_index_bits=8),
    "sinpi": GenSettings(max_index_bits=8),
    "cospi": GenSettings(max_index_bits=8),
}


def generate_one(
    name: str,
    fmt: TargetFormat,
    seed: int = 2021,
    quick: bool = False,
    settings: GenSettings | None = None,
    scale: int = 1,
    log=print,
) -> tuple[GeneratedFunction, dict]:
    """Run the sampled pipeline for one function; returns (fn, extra
    stats).  ``scale`` divides every sample budget (time/quality knob);
    ``quick`` is the x8 smoke-test shortcut."""
    cfg = settings or GEN_SETTINGS[name]
    div = 8 if quick else max(1, scale)
    rng = random.Random(seed)
    t0 = time.perf_counter()

    kwargs = {}
    if cfg.max_degree is not None:
        kwargs["max_degree"] = cfg.max_degree
    rr = reduction_for(name, fmt, **kwargs)
    lo, hi = sampling_domain(name, fmt, rr)
    log(f"[{name}] domain [{lo!r}, {hi!r}]")

    with span("genlib.inputs", fn=name):
        inputs = sample_values(fmt, cfg.base // div, rng, lo, hi)
        inputs += boundary_values(fmt, boundary_centers(name, rr, lo, hi),
                                  cfg.boundary_radius)
        hard_pool = sample_values(fmt, cfg.hard_candidates // div,
                                  random.Random(seed + 1), lo, hi)
        hard_pool = [x for x in hard_pool if rr.special(x) is None]
        inputs += mine_hard_cases(name, fmt, hard_pool, cfg.hard_keep // div)
    log(f"[{name}] {len(inputs)} generation inputs "
        f"({time.perf_counter() - t0:.0f}s incl. hard-case mining)")

    def fresh_validation(round_no: int) -> list[float]:
        s = seed + 1000 + 17 * round_no
        val = sample_values(fmt, cfg.validation // div, random.Random(s),
                            lo, hi)
        pool = sample_values(fmt, cfg.hard_candidates // (2 * div),
                             random.Random(s + 1), lo, hi)
        pool = [x for x in pool if rr.special(x) is None]
        val += mine_hard_cases(name, fmt, pool, cfg.hard_keep // (2 * div))
        return val

    spec = FunctionSpec(name, fmt, rr,
                        PiecewiseConfig(max_index_bits=cfg.max_index_bits))
    with span("genlib.validated", fn=name):
        fn, folded = generate_validated(spec, inputs, fresh_validation,
                                        max_rounds=cfg.rounds,
                                        clean_rounds=cfg.clean_rounds)
    log(f"[{name}] generated: {fn.stats.per_fn} "
        f"reduced={fn.stats.reduced_count} folded-back={folded} "
        f"({time.perf_counter() - t0:.0f}s)")

    check = sample_values(fmt, cfg.final_check // div,
                          random.Random(seed + 4), lo, hi)
    with span("genlib.final_check", fn=name, n=len(check)):
        misses = validate(fn, check)
    extra = {
        "final_check": {"n": len(check), "misses": len(misses)},
        "counterexamples_folded": folded,
        "total_time_s": time.perf_counter() - t0,
    }
    log(f"[{name}] final residual check: {len(misses)}/{len(check)} misses "
        f"({time.perf_counter() - t0:.0f}s total)")
    return fn, extra


def generate_library(
    names: list[str],
    fmt: TargetFormat,
    out_dir: pathlib.Path,
    quick: bool = False,
    seed: int = 2021,
    scale: int = 1,
    log=print,
) -> None:
    """Generate and freeze a set of functions into ``out_dir``."""
    out_dir.mkdir(parents=True, exist_ok=True)
    init = out_dir / "__init__.py"
    if not init.exists():
        init.write_text('"""Frozen coefficient tables (generated)."""\n')
    for name in names:
        fn, extra = generate_one(name, fmt, seed=seed, quick=quick, scale=scale, log=log)
        data = function_to_dict(fn)
        data["stats"].update(extra)
        path = out_dir / f"{name}.py"
        path.write_text(render_module(data))
        log(f"[{name}] wrote {path} ({path.stat().st_size // 1024} KB)")
