"""Generated coefficient data for exp2 (float32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 111 deduplicated doubles, little-endian, base64
_POOL = (
    "AAAABAAA8D/9///////vPwAAAAAAAAAAMSX//kIu5j8AAAAAAAAAAEhPCCK/v84/AAAAAAAAAAC8fLNCA36sPwAAAAAAAAAA"
    "AMibvWq5sz8AAAAAAAAAAKBQzu3Aky5AAAAAAAAAAADgJqdAMd+ZQAAAAAAAAAAAuMJ0GPu68EAOg1MDAADwPwAAAAQAAPA/"
    "CAAAAAAA8D8+AAAAAADwPwAAAAAAAAAAAAAAAAAAAADQMZsAQy7mP++E9P5CLuY/AAAAAAAAAAAAAAAAAAAAAIwFEAqLu84/"
    "+4NzJ76/zj8AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAC1TCKZwmqsPwAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAJgbMZBWzYM/"
    "AAAAAAAAkD8AAAAAAABQQAAAAAAAAPB/AAAAAAAAYEAAAAAAAAAAAAAAAAAAwGLAAAAAAAAA8D9hgHc+mizwP3SFFdOwWfA/"
    "yJt1GEWH8D8PiflsWLXwP6LR0zLs4/A/UVsS0AET8T/gLamumkLxP3tRfTy4cvE/dctv61uj8T+quWgxh9TxP9aMYog7BvI/"
    "OGJ1bno48j/dfOJlRWvyP+HeH/WdnvI/CwPkpoXS8j8VtzEK/gbzP/8WZLIIPPM/y6k6N6dx8z/3n+U026fzPyI0Ekym3vM/"
    "Ki73IQoW9D8tiWFgCE70P9A8wbWihvQ/Jyo21dq/9D+nLJ12svn0P4JPnVYrNPU/2ie1Nkdv9T8pVEjdB6v1P0ghrRVv5/U/"
    "hVU6sH4k9j8lIlWCOGL2P807f2aeoPY/LxplPLLf9j90X+zodR/3P8lnQlbrX/c/hwHrcxSh9z9iTs828+L3PxPOTJmJJfg/"
    "7ZJEm9lo+D/boCpC5az4PzZ3FZmu8fg/5cXNsDc3+T9QTt6fgn35P5Dwo4KRxPk/ZeVde2YM+j9dJT6yA1X6P7/9eVVrnvo/"
    "rdNamZ/o+j/7FU+4ojP7P0de+/J2f/s/0sFLkB7M+z+cUoXdmxn8P0vRVy7xZ/w/aZDv3CC3/D98iQdKLQf9P4ek+9wYWP0/"
    "hTLbA+ap/T9fm3szl/z9P/Y/i+cuUP4/2pCkoq+k/j8nWmHuG/r+P0BFblt2UP8/2JCegcGn/z8ALISLS2s2QADw2KxTZxNA"
    "AIAB+4qDA0AAUGjOBEIuQACSaV04CktA"
)

COMPACT = {
    "version": 1,
    "function": 'exp2',
    "target": 'float32',
    "rr_kind": 'exp',
    "pool_len": 111,
    "pool": _POOL,
    "data": {'approx': {'exp2': {'neg': {'@pp': {'cols': [0, 8, 2],
                                         'exps': [0, 1, 2, 3, 4, 5, 6, 7],
                                         'index_bits': 1,
                                         'lens': [1, 8],
                                         'mode': 'packed',
                                         'shift': 59,
                                         'start': 0,
                                         'stride': 1}},
                         'pos': {'@pp': {'cols': [16, 5, 4],
                                         'exps': [0, 1, 2, 3, 4],
                                         'index': [0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 2, 3],
                                         'index_bits': 4,
                                         'lens': [1, 1, 3, 5],
                                         'mode': 'packed',
                                         'shift': 56,
                                         'start': 0,
                                         'stride': 1}}}},
     'function': 'exp2',
     'rr_kind': 'exp',
     'rr_state': {'_c': {'@f': 36},
                  '_c_inv': {'@f': 37},
                  '_hi_result': {'@f': 38},
                  '_hi_thr': {'@f': 39},
                  '_lo_result': {'@f': 40},
                  '_lo_thr': {'@f': 41},
                  '_saturating': False,
                  '_tab': {'@fv': [42, 64]},
                  'exponents': {'@t': [{'@t': [0, 1, 2, 3, 4, 5, 6, 7]}]},
                  'fn_names': {'@t': ['exp2']},
                  'name': 'exp2'},
     'stats': {'counterexamples_folded': 0,
               'final_check': {'misses': 0, 'n': 20000},
               'gen_time_s': {'@f': 106},
               'input_count': 64635,
               'oracle_time_s': {'@f': 107},
               'per_fn': {'exp2': {'degree': 7, 'npolys': 18, 'terms': 8}},
               'phase_s': {'oracle': {'@f': 107}, 'piecewise': {'@f': 108}, 'reduced': {'@f': 109}},
               'reduced_count': 63077,
               'special_count': 386,
               'total_time_s': {'@f': 110}},
     'target': 'float32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
