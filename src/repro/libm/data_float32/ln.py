"""Generated coefficient data for ln (float32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 138 deduplicated doubles, little-endian, base64
_POOL = (
    "u17/////7z+QtCrp5P/fv/Rnx+KA6NQ/yxNfwXk3AUCMRzlGw852wF14h6v1SNNA7zn6/kIu5j8AAAAAAAAAAIlnEGsq4H8/"
    "5AP8sKjAjz8bsdUHG7mXPwAzeA6bgp8/YL3+uYeeoz/83DL2WHSnP79xGXHdQqs/pmIRwDAKrz/heqPuNmWxP9HRG5bXQbM/"
    "PxgGPwcbtT9Ma+WK0vC2PyGbMdZFw7g/Y9VKOm2Suj9Dx1uPVF68P+byKm4HJ74/u+rbMZHsvz9ZjtB8ftfAP6BnL9Uqt8E/"
    "I/Uf+FKVwj90jx4g/HHDPx59y2wrTcQ/OLSh4+UmxT/Uk6dwMP/FPx3SGecP1sY/CdkQAomrxz8RySBloH/IP7RW9JxaUsk/"
    "Y7XiH7wjyj/zv4BOyfPKP9aMLXSGwss/Ipqax/ePzD+Ru09rIVzNP+byKm4HJ84/Nlncy63wzj8rPl5tGLnPP0HQtJQlQNA/"
    "45Bz4iSj0D/VSq75iwXRPw6mq6tcZ9E/+5lpwZjI0T9mec/7QSnSP6OG3hNaidI/MR3huuLo0j9VfZia3UfTP+pFaVVMptM/"
    "5KeGhjAE1D/CXhzCi2HUP6F4d5VfvtQ/Lfgth60a1T9sWkUXd3bVP8oJWL+90dU/lce58oIs1j+vFJseyIbWP+ShK6qO4NY/"
    "B9C79tc51z+iR91fpZLXP8Ovgjv46tc/F4se2tFC2D9bQsGGM5rYP8diNoce8dg/+xYhHJRH2T+L4BeBlZ3ZP0yYv+wj89k/"
    "CrvlkEBI2j9KCJqa7JzaP2t4RzIp8do/Y4/Me/dE2z/7EJOWWJjbP3wbp51N69s/Ta3Np9c93D8imprH94/cP+vzhQuv4dw/"
    "1esAfv4y3T8+L4ol54PdP6HEwQRq1N0/Jmx8Gogk3j+Ih9ZhQnTeP8CMRtKZw94/7QavX48S3z+sKHD6I2HfPx/zeI9Yr98/"
    "mPRXCC793z//0KWlUiXgP9ImqZ3fS+A/QN8cXD5y4D8hNVdPb5jgP4MqJeRyvuA/jMzRhUnk4D+XTC2e8wnhP7zvk5VxL+E/"
    "6tX00sNU4T+hmdi76nnhP2/JZ7TmnuE/JTxxH7jD4T/QQHBeX+jhP26rktHcDOI/Q7++1zAx4j/L95jOW1XiPxuxiRJeeeI/"
    "i7DC/jed4j+MjkTt6cDiP2gC5DZ05OI/vhBPM9cH4z9xHRI5EyvjP9PhnJ0oTuM/tkdHtRdx4z8aKlbT4JPjPyP8/0mEtuM/"
    "+1ZxagLZ4z9Cb9GEW/vjP65yRuiPHeQ/Z8754p8/5D/CXhzCi2HkP9+I6tFTg+Q/uz6wXfik5D867syvecbkP7FbtxHY5+Q/"
    "a2gBzBMJ5T+rxVsmLSrlP5iUmWckS+U/mfOz1flr5T+Jec21rYzlPy2fNUxAreU/ZRds3LHN5T91FiSpAu7lP9mIR/QyDuY/"
    "AKIhz23OKEAAQBM/a6P7P0DPkS/dPGVA"
)

COMPACT = {
    "version": 1,
    "function": 'ln',
    "target": 'float32',
    "rr_kind": 'log',
    "pool_len": 138,
    "pool": _POOL,
    "data": {'approx': {'log1p': {'neg': None,
                          'pos': {'@pp': {'index_bits': 0,
                                          'mode': 'raw',
                                          'polys': [[[1, 2, 3, 4, 5, 6], 0, 6]],
                                          'shift': 57}}}},
     'function': 'ln',
     'rr_kind': 'log',
     'rr_state': {'_entries': 128,
                  '_pure_exponent': False,
                  '_scale': {'@f': 6},
                  '_tab': {'@fv': [7, 128]},
                  'exponents': {'@t': [{'@t': [1, 2, 3, 4, 5, 6]}]},
                  'fn_names': {'@t': ['log1p']},
                  'name': 'ln',
                  'table_bits': 7},
     'stats': {'counterexamples_folded': 11,
               'final_check': {'misses': 0, 'n': 20000},
               'gen_time_s': {'@f': 135},
               'input_count': 43243,
               'oracle_time_s': {'@f': 136},
               'per_fn': {'log1p': {'degree': 6, 'npolys': 1, 'terms': 6}},
               'reduced_count': 41600,
               'special_count': 192,
               'total_time_s': {'@f': 137}},
     'target': 'float32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
