"""Generated coefficient data for log2 (float32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 142 deduplicated doubles, little-endian, base64
_POOL = (
    "OIMzXkcV9z9n9gZmRxX3P5EJJ6eHmea/OoECVVIV57/4i5N1yfmiwJSDxhzD5d4/qRsPwn6QoUELYw0obKbhv6wD19zOtIXC"
    "AAAAAAAAAAAAAAAAAADwPwAAAAAAAAAAUQjvtlD+hj8q0sKFlueWPxM0E9XRHKE/h/2OddO6pj9fqwq5+k2sP5ufop8467A/"
    "w/En3S+qsz8WE8n69mO2P1szRm6hGLk/uqutQELIuz+ypX8R7HK+P+R52oxYjMA/eytVl9HcwT8arnji6SrDP033g/mpdsQ/"
    "iNb7ORrAxT9/Au/UQgfHP7MDL9ArTMg/33B+B92OyT+U7LQtXs/KP+5N2c22Dcw/cFkyTO5JzT9Nak7nC4TOPwpoArkWvM8/"
    "CTCw2wp50D92C9PaBxPRP3DwkbIFrNE/OgcOqwdE0j+vmk38ENvSP+3NpM4kcdM/SQQbO0YG1D+LG81LeJrUP7OWTPy9LdU/"
    "iNb7ORrA1T+ne2fkj1HWP94Mnc0h4tY/PPt+utJx1z9UHBZjpQDYPyay4HKcjtg/CRcfibob2T8vIx45AqjZP1Fgfwp2M9o/"
    "SR9/eRi+2j+hgjj360fbPzGQ5+ny0Ns/VlsprS9Z3D99WDqSpODcPw/qMuBTZ90/TDZC1D/t3T/SVOehanLePyDiKHPW9t4/"
    "zwbLaIV63z+b/4Oaef3fP3+Zl4vaP+A/PXB/8pyA4D+mOtYABcHgP+rIU7ETAeE/ROWh+slA4T9ql3LPKIDhPw7QlR4xv+E/"
    "JoEO0+P94T/IJyfUQTziP/jLhQVMeuI/0Xo/RwO44j8mP+t1aPXiP6ectGp8MuM/YpFt+z9v4z9nIaD6s6vjPxZwnzfZ5+M/"
    "qWqYfrAj5D85B6KYOl/kP4sbzUt4muQ/xM4zW2rV5D/5qAiHERDlP45DpYxuSuU/NJ2YJoKE5T81FLUMTb7lP68JHvTP9+U/"
    "SDBVjwsx5j/MiEeOAGrmPwoPWp6vouY/Shl2ahnb5j98bBWbPhPnP1QHTtYfS+c/V6bdv72C5z/kAjX5GLrnPxbPgiEy8ec/"
    "c3C+1Qko6D8me7KwoF7oP4vvBkv3lOg/vjtLOw7L6D/NAgAW5gDpPy+roG1/Nuk/9rWs0tpr6T9Q4LDT+KDpP7MQUP3Z1ek/"
    "LRFM2n4K6j8fGI7z5z7qP8ggL9AVc+o/0xSA9Qin6j8zyBHnwdrqP2zIvCZBDus/jACpNIdB6z/aMlWPlHTrP2RJnrNpp+s/"
    "bn7GHAfa6z/TXXxEbQzsP1Wg4aKcPuw/x+GRrpVw7D8WM6ncWKLsPweJyqDm0+w/lggmbT8F7T/VMX+yYzbtPw/qMuBTZ+0/"
    "FWY9ZBCY7T9s9T+rmcjtPyyvhiDw+O0/QAEOLhQp7j/OIog8BlnuP3NqYrPGiO4/+4jK+FW47j9QqbNxtOfuPzB224HiFu8/"
    "VQbPi+BF7z+ur+/wrnTvPzPCdxFOo+8/+Sp/TL7R7z8AVlBsk3cnQABQYNLJ3vs/gC6b08G9U0A="
)

COMPACT = {
    "version": 1,
    "function": 'log2',
    "target": 'float32',
    "rr_kind": 'log',
    "pool_len": 142,
    "pool": _POOL,
    "data": {'approx': {'log2_1p': {'neg': None,
                            'pos': {'@pp': {'cols': [0, 5, 2],
                                            'exps': [1, 2, 3, 4, 5],
                                            'index_bits': 1,
                                            'lens': [5, 4],
                                            'mode': 'packed',
                                            'shift': 56,
                                            'start': 1,
                                            'stride': 1}}}},
     'function': 'log2',
     'rr_kind': 'log',
     'rr_state': {'_entries': 128,
                  '_pure_exponent': True,
                  '_scale': {'@f': 10},
                  '_tab': {'@fv': [11, 128]},
                  'exponents': {'@t': [{'@t': [1, 2, 3, 4, 5, 6]}]},
                  'fn_names': {'@t': ['log2_1p']},
                  'name': 'log2',
                  'table_bits': 7},
     'stats': {'counterexamples_folded': 9,
               'final_check': {'misses': 0, 'n': 20000},
               'gen_time_s': {'@f': 139},
               'input_count': 43241,
               'oracle_time_s': {'@f': 140},
               'per_fn': {'log2_1p': {'degree': 5, 'npolys': 2, 'terms': 5}},
               'reduced_count': 41584,
               'special_count': 192,
               'total_time_s': {'@f': 141}},
     'target': 'float32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
