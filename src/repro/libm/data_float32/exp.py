"""Generated coefficient data for exp (float32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 101 deduplicated doubles, little-endian, base64
_POOL = (
    "AAAABAAA8D8GAAAAAADwPwAAAAAAAAAA/2QBAAAA8D8AAAAAAAAAAIiOaQwAAOA/AAAAAAAAAACMqgKgnlXFPwAAAAAAAAAA"
    "Y1Lf67HWpT8AAAAEAADwPwQAAAAAAPA/AAAAAAAAAACRav7////vPwAAAAAAAAAAg1F0AAAA4D8AAAAAAAAAAJl0LaKPWcU/"
    "AAAAAAAAAACAicEtXnXCvwAAAAAAAAAAAI0lw+S+VkAAAAAAAAAAAABiMnkw99HAAAAAAAAAAADQKN7CECQ0Qe85+v5CLoY/"
    "/oIrZUcVV0AAAAAAAADwfwAAAABDLlZAAAAAAAAAAAAAAACgNv5ZwAAAAAAAAPA/YYB3Ppos8D90hRXTsFnwP8ibdRhFh/A/"
    "D4n5bFi18D+i0dMy7OPwP1FbEtABE/E/4C2prppC8T97UX08uHLxP3XLb+tbo/E/qrloMYfU8T/WjGKIOwbyPzhidW56OPI/"
    "3XziZUVr8j/h3h/1nZ7yPwsD5KaF0vI/FbcxCv4G8z//FmSyCDzzP8upOjencfM/95/lNNun8z8iNBJMpt7zPyou9yEKFvQ/"
    "LYlhYAhO9D/QPMG1oob0PycqNtXav/Q/pyyddrL59D+CT51WKzT1P9ontTZHb/U/KVRI3Qer9T9IIa0Vb+f1P4VVOrB+JPY/"
    "JSJVgjhi9j/NO39mnqD2Py8aZTyy3/Y/dF/s6HUf9z/JZ0JW61/3P4cB63MUofc/Yk7PNvPi9z8TzkyZiSX4P+2SRJvZaPg/"
    "26AqQuWs+D82dxWZrvH4P+XFzbA3N/k/UE7en4J9+T+Q8KOCkcT5P2XlXXtmDPo/XSU+sgNV+j+//XlVa576P63TWpmf6Po/"
    "+xVPuKIz+z9HXvvydn/7P9LBS5AezPs/nFKF3ZsZ/D9L0Vcu8Wf8P2mQ79wgt/w/fIkHSi0H/T+HpPvcGFj9P4Uy2wPmqf0/"
    "X5t7M5f8/T/2P4vnLlD+P9qQpKKvpP4/J1ph7hv6/j9ARW5bdlD/P9iQnoHBp/8/AJDFXnE5KEAAYKRTzigDQACgoikD0/A/"
    "ALhPf9dUIUAAlJYvh2M+QA=="
)

COMPACT = {
    "version": 1,
    "function": 'exp',
    "target": 'float32',
    "rr_kind": 'exp',
    "pool_len": 101,
    "pool": _POOL,
    "data": {'approx': {'exp': {'neg': {'@pp': {'cols': [0, 5, 2],
                                        'exps': [0, 1, 2, 3, 4],
                                        'index_bits': 1,
                                        'lens': [1, 5],
                                        'mode': 'packed',
                                        'shift': 59,
                                        'start': 0,
                                        'stride': 1}},
                        'pos': {'@pp': {'cols': [10, 8, 2],
                                        'exps': [0, 1, 2, 3, 4, 5, 6, 7],
                                        'index': [0, 0, 0, 1],
                                        'index_bits': 2,
                                        'lens': [1, 8],
                                        'mode': 'packed',
                                        'shift': 58,
                                        'start': 0,
                                        'stride': 1}}}},
     'function': 'exp',
     'rr_kind': 'exp',
     'rr_state': {'_c': {'@f': 26},
                  '_c_inv': {'@f': 27},
                  '_hi_result': {'@f': 28},
                  '_hi_thr': {'@f': 29},
                  '_lo_result': {'@f': 30},
                  '_lo_thr': {'@f': 31},
                  '_saturating': False,
                  '_tab': {'@fv': [32, 64]},
                  'exponents': {'@t': [{'@t': [0, 1, 2, 3, 4, 5, 6, 7]}]},
                  'fn_names': {'@t': ['exp']},
                  'name': 'exp'},
     'stats': {'counterexamples_folded': 0,
               'final_check': {'misses': 0, 'n': 20000},
               'gen_time_s': {'@f': 96},
               'input_count': 64407,
               'oracle_time_s': {'@f': 97},
               'per_fn': {'exp': {'degree': 7, 'npolys': 6, 'terms': 8}},
               'phase_s': {'oracle': {'@f': 97}, 'piecewise': {'@f': 98}, 'reduced': {'@f': 99}},
               'reduced_count': 63958,
               'special_count': 386,
               'total_time_s': {'@f': 100}},
     'target': 'float32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
