"""Generated coefficient data for log10 (float32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 136 deduplicated doubles, little-endian, base64
_POOL = (
    "oUj+FHvL2z/sesqIhsvLv8F/US1in8I/r92BeZrQyb//eZ9QE0TTPwAAAAAAAAAAJu0hctSvaz8P0fykdpR7P4Q2RFEIm4Q/"
    "kDexjpBeiz94bESogwqRP+CLy1pPX5Q/+B8738Otlz8Q5gAr+fWaP48FvawGOJ4/AAAXqAG6oD9MMfzAAlWiPyXkpZkR7aM/"
    "2lOz7jiCpT+ZKn1CgxSnP/RHuN76o6g/6u8J1qkwqj+E/Y0FmrqrP7SsTxbVQa0/CIi1fmTGrj8WgPDBKCSwP14WgZ3S47A/"
    "FhhQRTSisT9KWesVUl+yPxhxxFUwG7M/eTHFNdPVsz/7SN/RPo+0P4U+lzF3R7U//fSKSID+tT/J4vP2XbS2P/0mJQoUabc/"
    "SqQFPaYcuD8NSIY4GM+4PwmiFJRtgLk/6u8J1qkwuj8HvhZ00N+6P5g9q9Pkjbs//25cSuo6vD+lPUYe5Oa8P5ypaobVkb0/"
    "/hkOq8E7vj8E8hCmq+S+P5GBRoOWjL8/hrRkoMIZwD+2w6ZnvWzAPxzENwk9v8A/VxOB8EIRwT8QnayC0GLBP3tPyR7ns8E/"
    "d4fuHYgEwj88fV7TtFTCPyq6p4xupMI/AaDFkbbzwj9tCUAljkLDP4MLSoT2kMM/hd/f5vDewz8C/ON/fizEPxFkO32gecQ/"
    "ODPpB1jGxD89bClEphLFP/gQi1GMXsU/+ogJSwuqxT+SXCVHJPXFP7tJ/FfYP8Y//LdgiyiKxj9rkPDqFdTGP4B+K3yhHcc/"
    "hZ6IQMxmxz8Enos1l6/HP6BS2VQD+Mc/dctLlBFAyD8Z4QXmwofIPw1IhjgYz8g/eCm6dhIWyT+6RQ+IslzJP1ykhVD5osk/"
    "vtTAsOfoyT/SwhiGfi7KP/Qiqqq+c8o//Hdm9ai4yj+AtiM6Pv3KPweIq0l/Qcs/BTHK8WyFyz9AHF39B8nLPyYOYTRRDMw/"
    "ogIAXElPzD/Kt5428ZHMP73n6YNJ1Mw/9zPjAFMWzT89xO1nDljNP0eb2nB8mc0/KaP00J3azT+Bcww7cxvOP0LTg1/9W84/"
    "B/hY7Dyczj+vhDGNMtzOPwFJZeveG88/B8QIrkJbzz/Favd5XprPP9a03fEy2c8/RHghW+AL0D/wb8kyBCvQPwSQE04FStA/"
    "PS4o+uNo0D+spy+DoIfQPxnIVjQ7ptA/PRnTV7TE0D9/Guc2DOPQP71h5hlDAdE/vaU5SFkf0T/hsmIITz3RP5JKAKAkW9E/"
    "Ae7RU9p40T+4lLtncJbRP3tPyR7ns9E/+dcyuz7R0T/DDV9+d+7RPwVh56iRC9I/ZCubeo0o0j+G94Iya0XSP5234w4rYtI/"
    "Z+tBTc1+0j8JtmQqUpvSPyLkWOK5t9I/fuJzsATU0j++pVbPMvDSP1+D8HhEDNM/YvyB5jko0z8AGhzZIOksQACgphMslQBA"
    "gGiDxQEZSkA="
)

COMPACT = {
    "version": 1,
    "function": 'log10',
    "target": 'float32',
    "rr_kind": 'log',
    "pool_len": 136,
    "pool": _POOL,
    "data": {'approx': {'log10_1p': {'neg': None,
                             'pos': {'@pp': {'index_bits': 0,
                                             'mode': 'raw',
                                             'polys': [[[1, 2, 3, 4], 0, 4]],
                                             'shift': 57}}}},
     'function': 'log10',
     'rr_kind': 'log',
     'rr_state': {'_entries': 128,
                  '_pure_exponent': False,
                  '_scale': {'@f': 4},
                  '_tab': {'@fv': [5, 128]},
                  'exponents': {'@t': [{'@t': [1, 2, 3, 4, 5, 6]}]},
                  'fn_names': {'@t': ['log10_1p']},
                  'name': 'log10',
                  'table_bits': 7},
     'stats': {'counterexamples_folded': 1,
               'final_check': {'misses': 0, 'n': 20000},
               'gen_time_s': {'@f': 133},
               'input_count': 43233,
               'oracle_time_s': {'@f': 134},
               'per_fn': {'log10_1p': {'degree': 4, 'npolys': 1, 'terms': 4}},
               'reduced_count': 41577,
               'special_count': 192,
               'total_time_s': {'@f': 135}},
     'target': 'float32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
