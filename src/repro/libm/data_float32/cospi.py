"""Generated coefficient data for cospi (float32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 530 deduplicated doubles, little-endian, base64
_POOL = (
    "BgAAAAAA8D/38ZzJPL0TwL1tzDIKOxBAFi1EVPshCUAjLURU+yEJQAAAAAAAAAAAQF2q17yrFMAAAAAAAAAAAKsAkR49nQJA"
    "AAAAAAAAAABYPfP51lTnQAAAAAAAAPA/koqOhdj/7z/bkpsWYv/vP6FRS7Sc/u8/Dc2EYIj97z/40/EdJfzvP133/u9y+u8/"
    "34Hb2nH47z9+bXnjIfbvP1xXjQ+D8+8/rXGOZZXw7z/Ec7bsWO3vPzqIAa3N6e8/QDkur/Pl7z8JW738yuHvP1b08Z9T3e8/"
    "JiXRo43Y7z+ECyIUedPvP3umbf0Vzu8/Ibf+bGTI7z/Tn+FwZMLvP4ZB5BcWvO8/QdeVcXm17z+7z0aOjq7vPxelCH9Vp+8/"
    "yLKtVc6f7z+bCckk+ZfvP9tBrv/Vj+8/qUtx+mSH7z9uPeYppn7vP3cgoaOZde8/t7v1fT9s7z+wXPfPl2LvP4SeeLGiWO8/"
    "LS8LO2BO7z/dkv+F0EPvP4nlZKzzOO8/nZoIyckt7z/aOnb3UiLvP10g91OPFu8/1zCS+34K7z/slQsMIv7uP8Jz5KN48e4/"
    "vJ1a4oLk7j9jSWjnQNfuP4S/w9Oyye4/dAvfyNi77j+OqOfosq3uP9otxlZBn+4/8vcdNoSQ7j8N0Uyre4HuP0SXatsncu4/"
    "EuFI7Ihi7j/8n3IEn1LuP37BK0tqQu4/Jc5w6Oox7j/lhvYEISHuP6yAKcoMEO4/K74tYq7+7T/aR973Be3tPzzCzLYT2+0/"
    "YAJBy9fI7T+boDhiUrbtP4iJZqmDo+0/Ro0yz2uQ7T/57LgCC33tP4vmyXNhae0/sT7pUm9V7T86yU3RNEHtP5/v4CCyLO0/"
    "3DU+dOcX7T+SvbL+1ALtP3PHPPR67ew/9jKLidnX7D9c/Pzz8MHsPwC5oGnBq+w/9RE0IUuV7D/zPCNSjn7sP5tziDSLZ+w/"
    "B2krAUJQ7D+xvYDxsjjsP7BxqT/eIOw/SVVyJsQI7D/dd1PhZPDrPyqVb6zA1+s/6oCTxNe+6z/SkDVnqqXrP+kEddI4jOs/"
    "Pm4ZRYNy6z8FFJL+iVjrPxJX9T5NPus/tBMAR80j6z8AAhVYCgnrP3QUPLQE7uo/EdUhnrzS6j/UwBZZMrfqP6OhDilmm+o/"
    "neafUlh/6j/i+gIbCWPqP8iaEch4Ruo/gidGoKcp6j83+brqlQzqP5SvKe9D7+k/1YDq9bHR6T9Bh/NH4LPpPyIN2C7Plek/"
    "QtfH9H536T/XbY7k71jpP/tjkkkiOuk/op3UbxYb6T8NlO+jzPvoP8yYFjNF3Og/QRcVa4C86D+q1E2afpzoP78uug9AfOg/"
    "zFjpGsVb6D9ul/8LDjvoP8x6tTMbGug/cRdX4+z45z+yPcNsg9fnP6+vaiLftec/5VVPVwCU5z9hcgNf53HnP43SqI2UT+c/"
    "lv/vNwgt5z96bRezQgrnP6+o6lRE5+Y/dYLBcw3E5j/NO39mnqDmPxCvkYT3fOY/PXjwJRlZ5j/pGxyjAzXmP98sHVW3EOY/"
    "dHCDlTTs5T+MAWW+e8flP1ByXSqNouU/oOyMNGl95T83UZc4EFjlP5ZVo5KCMuU/m6BZn8AM5T/p5eO7yubkPwQA7EWhwOQ/"
    "OQmbm0Sa5D9Hc5gbtXPkP9YdCSXzTOQ/sWuOF/8l5D/UVkVT2f7jP0SDxTiC1+M/uVAgKfqv4z8i69+FQYjjP/NZBrFYYOM/"
    "V44MDUA44z81cOH89w/jPxfq6OOA5+I/6vP6Jdu+4j+onGInB5biP98S3UwFbeI/H6yY+9VD4j9Z6zOZeRriPxuGvIvw8OE/"
    "yGiuOTvH4T+4ufIJWp3hP0nb3mNNc+E/62wzrxVJ4T8jSxtUsx7hP36OKrsm9OA/j4ldTXDJ4D/hxRd0kJ7gP+7/IpmHc+A/"
    "GiKuJlZI4D+3PkyH/BzgPxAS50v24t8/upr426SL3z9n0D+WBTTfP9Z471IZ3N4/FFH46uCD3j879gY4XSveP1jMgRSP0t0/"
    "ieOGW3d53T9b2+noFiDdP17EMZluxtw/CwCXSX9s3D/nHgHYSRLcPwG9BCPPt9s/wFzhCRBd2z8JQH9sDQLbP8o/bSvIpto/"
    "5aHeJ0FL2j+K7ahDee/ZP/+9QWFxk9k/15O8Yyo32T+wpMgupdrYP2Oprqbifdg/xKpOsOMg2D/nzB0xqcPXP/YYJA80Ztc/"
    "n0X6MIUI1z8Xfsd9narWP8YnP919TNY/k6aeNyfu1T/dH6t1mo/VPyQ8r4DYMNU/aud4QuLR1D9UEFeluHLUPwFmF5RcE9Q/"
    "txQE+s6z0z9SgeHCEFTTP4cD7Noi9NI/Bp/VLgaU0j9xu8OruzPSPz7bTD9E09E/d1F216By0T939rFi0hHRP5Db28/ZsNA/"
    "rv03DrhP0D/57d8a3NzPPxtfIXv5Gc8/GxoQHspWzj8RQ0XlT5PNP4ayErOMz8w/Y09+aoILzD8iZz3vMkfLP1EEsCWggso/"
    "ZkPc8su9yT8Lpmk8uPjIP8ZknOhmM8g/Mb9Q3tltxz+ySvYEE6jGP8Y/i0QU4sU/8sWXhd8bxT9aPimxdlXEPxSNzbDbjsM/"
    "OmGObhDIwj/Pe+zUFgHCP3f12s7wOcE/HYO6R6BywD8Oc6lWTla/P8mfrssOx70/1cKex4U3vD8DXEkkt6e6Pyy0KbymF7k/"
    "IVtdaliHtz8ZpJoK0Pa1P5YgJ3kRZrQ/9hnOkiDVsj+zCdc0AUSxP+Ag+HluZa8/49fAEo1CrD8U2A3xZR+pP0PNkNIA/KU/"
    "zVWUdWXYoj8Bz9ExN2mfP35mo/dVIZk//Q7juzbZkj+Ex9780SGJP3EAZ/7wIXk/AAAAAAAAAAAAAAAAAAAAAHEAZ/7wIXk/"
    "hMfe/NEhiT/9DuO7NtmSP35mo/dVIZk/Ac/RMTdpnz/NVZR1ZdiiP0PNkNIA/KU/FNgN8WUfqT/j18ASjUKsP+Ag+HluZa8/"
    "swnXNAFEsT/2Gc6SINWyP5YgJ3kRZrQ/GaSaCtD2tT8hW11qWIe3Pyy0KbymF7k/A1xJJLenuj/Vwp7HhTe8P8mfrssOx70/"
    "DnOpVk5Wvz8dg7pHoHLAP3f12s7wOcE/z3vs1BYBwj86YY5uEMjCPxSNzbDbjsM/Wj4psXZVxD/yxZeF3xvFP8Y/i0QU4sU/"
    "skr2BBOoxj8xv1De2W3HP8ZknOhmM8g/C6ZpPLj4yD9mQ9zyy73JP1EEsCWggso/Imc97zJHyz9jT35qggvMP4ayErOMz8w/"
    "EUNF5U+TzT8bGhAeylbOPxtfIXv5Gc8/+e3fGtzczz+u/TcOuE/QP5Db28/ZsNA/d/axYtIR0T93UXbXoHLRPz7bTD9E09E/"
    "cbvDq7sz0j8Gn9UuBpTSP4cD7Noi9NI/UoHhwhBU0z+3FAT6zrPTPwFmF5RcE9Q/VBBXpbhy1D9q53hC4tHUPyQ8r4DYMNU/"
    "3R+rdZqP1T+Tpp43J+7VP8YnP919TNY/F37HfZ2q1j+fRfowhQjXP/YYJA80Ztc/58wdManD1z/Eqk6w4yDYP2Oprqbifdg/"
    "sKTILqXa2D/Xk7xjKjfZP/+9QWFxk9k/iu2oQ3nv2T/lod4nQUvaP8o/bSvIpto/CUB/bA0C2z/AXOEJEF3bPwG9BCPPt9s/"
    "5x4B2EkS3D8LAJdJf2zcP17EMZluxtw/W9vp6BYg3T+J44Zbd3ndP1jMgRSP0t0/O/YGOF0r3j8UUfjq4IPeP9Z471IZ3N4/"
    "Z9A/lgU03z+6mvjbpIvfPxAS50v24t8/tz5Mh/wc4D8aIq4mVkjgP+7/IpmHc+A/4cUXdJCe4D+PiV1NcMngP36OKrsm9OA/"
    "I0sbVLMe4T/rbDOvFUnhP0nb3mNNc+E/uLnyCVqd4T/IaK45O8fhPxuGvIvw8OE/WeszmXka4j8frJj71UPiP98S3UwFbeI/"
    "qJxiJweW4j/q8/ol277iPxfq6OOA5+I/NXDh/PcP4z9XjgwNQDjjP/NZBrFYYOM/IuvfhUGI4z+5UCAp+q/jP0SDxTiC1+M/"
    "1FZFU9n+4z+xa44X/yXkP9YdCSXzTOQ/R3OYG7Vz5D85CZubRJrkPwQA7EWhwOQ/6eXju8rm5D+boFmfwAzlP5ZVo5KCMuU/"
    "N1GXOBBY5T+g7Iw0aX3lP1ByXSqNouU/jAFlvnvH5T90cIOVNOzlP98sHVW3EOY/6RscowM15j89ePAlGVnmPxCvkYT3fOY/"
    "zTt/Zp6g5j91gsFzDcTmP6+o6lRE5+Y/em0Xs0IK5z+W/+83CC3nP43SqI2UT+c/YXIDX+dx5z/lVU9XAJTnP6+vaiLftec/"
    "sj3DbIPX5z9xF1fj7PjnP8x6tTMbGug/bpf/Cw476D/MWOkaxVvoP78uug9AfOg/qtRNmn6c6D9BFxVrgLzoP8yYFjNF3Og/"
    "DZTvo8z76D+indRvFhvpP/tjkkkiOuk/122O5O9Y6T9C18f0fnfpPyIN2C7Plek/QYfzR+Cz6T/VgOr1sdHpP5SvKe9D7+k/"
    "N/m66pUM6j+CJ0agpynqP8iaEch4Ruo/4voCGwlj6j+d5p9SWH/qP6OhDilmm+o/1MAWWTK36j8R1SGevNLqP3QUPLQE7uo/"
    "AAIVWAoJ6z+0EwBHzSPrPxJX9T5NPus/BRSS/olY6z8+bhlFg3LrP+kEddI4jOs/0pA1Z6ql6z/qgJPE177rPyqVb6zA1+s/"
    "3XdT4WTw6z9JVXImxAjsP7BxqT/eIOw/sb2A8bI47D8HaSsBQlDsP5tziDSLZ+w/8zwjUo5+7D/1ETQhS5XsPwC5oGnBq+w/"
    "XPz88/DB7D/2MouJ2dfsP3PHPPR67ew/kr2y/tQC7T/cNT505xftP5/v4CCyLO0/OslN0TRB7T+xPulSb1XtP4vmyXNhae0/"
    "+ey4Agt97T9GjTLPa5DtP4iJZqmDo+0/m6A4YlK27T9gAkHL18jtPzzCzLYT2+0/2kfe9wXt7T8rvi1irv7tP6yAKcoMEO4/"
    "5Yb2BCEh7j8lznDo6jHuP37BK0tqQu4//J9yBJ9S7j8S4UjsiGLuP0SXatsncu4/DdFMq3uB7j/y9x02hJDuP9otxlZBn+4/"
    "jqjn6LKt7j90C9/I2LvuP4S/w9Oyye4/Y0lo50DX7j+8nVriguTuP8Jz5KN48e4/7JULDCL+7j/XMJL7fgrvP10g91OPFu8/"
    "2jp291Ii7z+dmgjJyS3vP4nlZKzzOO8/3ZL/hdBD7z8tLws7YE7vP4SeeLGiWO8/sFz3z5di7z+3u/V9P2zvP3cgoaOZde8/"
    "bj3mKaZ+7z+pS3H6ZIfvP9tBrv/Vj+8/mwnJJPmX7z/Isq1Vzp/vPxelCH9Vp+8/u89Gjo6u7z9B15VxebXvP4ZB5BcWvO8/"
    "05/hcGTC7z8ht/5sZMjvP3umbf0Vzu8/hAsiFHnT7z8mJdGjjdjvP1b08Z9T3e8/CVu9/Mrh7z9AOS6v8+XvPzqIAa3N6e8/"
    "xHO27Fjt7z+tcY5llfDvP1xXjQ+D8+8/fm154yH27z/fgdvacfjvP133/u9y+u8/+NPxHSX87z8NzYRgiP3vP6FRS7Sc/u8/"
    "25KbFmL/7z+Sio6F2P/vPwAAAAAAAPA/APakxfmHOUAAWNt0AdAUQABg6LfG7/A/AMJEP/dEM0AAg9mfrIJLQA=="
)

COMPACT = {
    "version": 1,
    "function": 'cospi',
    "target": 'float32',
    "rr_kind": 'cospi',
    "pool_len": 530,
    "pool": _POOL,
    "data": {'approx': {'cospi': {'neg': None,
                          'pos': {'@pp': {'index_bits': 0,
                                          'mode': 'raw',
                                          'polys': [[[0, 2, 4], 0, 3]],
                                          'shift': 60}}},
                'sinpi': {'neg': None,
                          'pos': {'@pp': {'cols': [3, 4, 2],
                                          'exps': [1, 3, 5, 7],
                                          'index_bits': 1,
                                          'lens': [1, 4],
                                          'mode': 'packed',
                                          'shift': 59,
                                          'start': 1,
                                          'stride': 2}}}},
     'function': 'cospi',
     'rr_kind': 'cospi',
     'rr_state': {'_cos_t': {'@fv': [11, 257]},
                  '_sin_t': {'@fv': [268, 257]},
                  'exponents': {'@t': [{'@t': [1, 3, 5, 7]}, {'@t': [0, 2, 4, 6]}]},
                  'fn_names': {'@t': ['sinpi', 'cospi']},
                  'name': 'cospi'},
     'stats': {'counterexamples_folded': 0,
               'final_check': {'misses': 0, 'n': 20000},
               'gen_time_s': {'@f': 525},
               'input_count': 53185,
               'oracle_time_s': {'@f': 526},
               'per_fn': {'cospi': {'degree': 4, 'npolys': 1, 'terms': 3},
                          'sinpi': {'degree': 7, 'npolys': 2, 'terms': 4}},
               'phase_s': {'oracle': {'@f': 526}, 'piecewise': {'@f': 527}, 'reduced': {'@f': 528}},
               'reduced_count': 40105,
               'special_count': 387,
               'total_time_s': {'@f': 529}},
     'target': 'float32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
