"""Generated coefficient data for sinpi (float32) — compact layout v1.

Produced by the RLIBM-32 pipeline (tools/generate_*.py); do not edit by hand.
Every double lives in the base64 pool below as little-endian 64-bit
patterns; ``repro.libm.compact.decode`` reproduces the legacy ``DATA`` dict
bit for bit (accessing ``DATA`` on this module does exactly that).
"""

# 526 deduplicated doubles, little-endian, base64
_POOL = (
    "mAIAAAAA8D+apjbWO70TwG86K9cOJARAeWw/VPshCUBDK0RU+yEJQAAAAAAAAAAAyvhcfbyrFMAAAAAAAADwP5KKjoXY/+8/"
    "25KbFmL/7z+hUUu0nP7vPw3NhGCI/e8/+NPxHSX87z9d9/7vcvrvP9+B29px+O8/fm154yH27z9cV40Pg/PvP61xjmWV8O8/"
    "xHO27Fjt7z86iAGtzenvP0A5Lq/z5e8/CVu9/Mrh7z9W9PGfU93vPyYl0aON2O8/hAsiFHnT7z97pm39Fc7vPyG3/mxkyO8/"
    "05/hcGTC7z+GQeQXFrzvP0HXlXF5te8/u89Gjo6u7z8XpQh/VafvP8iyrVXOn+8/mwnJJPmX7z/bQa7/1Y/vP6lLcfpkh+8/"
    "bj3mKaZ+7z93IKGjmXXvP7e79X0/bO8/sFz3z5di7z+EnnixoljvPy0vCztgTu8/3ZL/hdBD7z+J5WSs8zjvP52aCMnJLe8/"
    "2jp291Ii7z9dIPdTjxbvP9cwkvt+Cu8/7JULDCL+7j/Cc+SjePHuP7ydWuKC5O4/Y0lo50DX7j+Ev8PTssnuP3QL38jYu+4/"
    "jqjn6LKt7j/aLcZWQZ/uP/L3HTaEkO4/DdFMq3uB7j9El2rbJ3LuPxLhSOyIYu4//J9yBJ9S7j9+wStLakLuPyXOcOjqMe4/"
    "5Yb2BCEh7j+sgCnKDBDuPyu+LWKu/u0/2kfe9wXt7T88wsy2E9vtP2ACQcvXyO0/m6A4YlK27T+IiWapg6PtP0aNMs9rkO0/"
    "+ey4Agt97T+L5slzYWntP7E+6VJvVe0/OslN0TRB7T+f7+AgsiztP9w1PnTnF+0/kr2y/tQC7T9zxzz0eu3sP/Yyi4nZ1+w/"
    "XPz88/DB7D8AuaBpwavsP/URNCFLlew/8zwjUo5+7D+bc4g0i2fsPwdpKwFCUOw/sb2A8bI47D+wcak/3iDsP0lVcibECOw/"
    "3XdT4WTw6z8qlW+swNfrP+qAk8TXvus/0pA1Z6ql6z/pBHXSOIzrPz5uGUWDcus/BRSS/olY6z8SV/U+TT7rP7QTAEfNI+s/"
    "AAIVWAoJ6z90FDy0BO7qPxHVIZ680uo/1MAWWTK36j+joQ4pZpvqP53mn1JYf+o/4voCGwlj6j/ImhHIeEbqP4InRqCnKeo/"
    "N/m66pUM6j+UrynvQ+/pP9WA6vWx0ek/QYfzR+Cz6T8iDdguz5XpP0LXx/R+d+k/122O5O9Y6T/7Y5JJIjrpP6Kd1G8WG+k/"
    "DZTvo8z76D/MmBYzRdzoP0EXFWuAvOg/qtRNmn6c6D+/LroPQHzoP8xY6RrFW+g/bpf/Cw476D/MerUzGxroP3EXV+Ps+Oc/"
    "sj3DbIPX5z+vr2oi37XnP+VVT1cAlOc/YXIDX+dx5z+N0qiNlE/nP5b/7zcILec/em0Xs0IK5z+vqOpUROfmP3WCwXMNxOY/"
    "zTt/Zp6g5j8Qr5GE93zmPz148CUZWeY/6RscowM15j/fLB1VtxDmP3Rwg5U07OU/jAFlvnvH5T9Qcl0qjaLlP6DsjDRpfeU/"
    "N1GXOBBY5T+WVaOSgjLlP5ugWZ/ADOU/6eXju8rm5D8EAOxFocDkPzkJm5tEmuQ/R3OYG7Vz5D/WHQkl80zkP7Frjhf/JeQ/"
    "1FZFU9n+4z9Eg8U4gtfjP7lQICn6r+M/IuvfhUGI4z/zWQaxWGDjP1eODA1AOOM/NXDh/PcP4z8X6ujjgOfiP+rz+iXbvuI/"
    "qJxiJweW4j/fEt1MBW3iPx+smPvVQ+I/WeszmXka4j8bhryL8PDhP8horjk7x+E/uLnyCVqd4T9J295jTXPhP+tsM68VSeE/"
    "I0sbVLMe4T9+jiq7JvTgP4+JXU1wyeA/4cUXdJCe4D/u/yKZh3PgPxoiriZWSOA/tz5Mh/wc4D8QEudL9uLfP7qa+Nuki98/"
    "Z9A/lgU03z/WeO9SGdzePxRR+Orgg94/O/YGOF0r3j9YzIEUj9LdP4njhlt3ed0/W9vp6BYg3T9exDGZbsbcPwsAl0l/bNw/"
    "5x4B2EkS3D8BvQQjz7fbP8Bc4QkQXds/CUB/bA0C2z/KP20ryKbaP+Wh3idBS9o/iu2oQ3nv2T//vUFhcZPZP9eTvGMqN9k/"
    "sKTILqXa2D9jqa6m4n3YP8SqTrDjINg/58wdManD1z/2GCQPNGbXP59F+jCFCNc/F37HfZ2q1j/GJz/dfUzWP5Omnjcn7tU/"
    "3R+rdZqP1T8kPK+A2DDVP2rneELi0dQ/VBBXpbhy1D8BZheUXBPUP7cUBPrOs9M/UoHhwhBU0z+HA+zaIvTSPwaf1S4GlNI/"
    "cbvDq7sz0j8+20w/RNPRP3dRdtegctE/d/axYtIR0T+Q29vP2bDQP679Nw64T9A/+e3fGtzczz8bXyF7+RnPPxsaEB7KVs4/"
    "EUNF5U+TzT+GshKzjM/MP2NPfmqCC8w/Imc97zJHyz9RBLAloILKP2ZD3PLLvck/C6ZpPLj4yD/GZJzoZjPIPzG/UN7Zbcc/"
    "skr2BBOoxj/GP4tEFOLFP/LFl4XfG8U/Wj4psXZVxD8Ujc2w247DPzphjm4QyMI/z3vs1BYBwj939drO8DnBPx2DukegcsA/"
    "DnOpVk5Wvz/Jn67LDse9P9XCnseFN7w/A1xJJLenuj8stCm8phe5PyFbXWpYh7c/GaSaCtD2tT+WICd5EWa0P/YZzpIg1bI/"
    "swnXNAFEsT/gIPh5bmWvP+PXwBKNQqw/FNgN8WUfqT9DzZDSAPylP81VlHVl2KI/Ac/RMTdpnz9+ZqP3VSGZP/0O47s22ZI/"
    "hMfe/NEhiT9xAGf+8CF5PwAAAAAAAAAAAAAAAAAAAABxAGf+8CF5P4TH3vzRIYk//Q7juzbZkj9+ZqP3VSGZPwHP0TE3aZ8/"
    "zVWUdWXYoj9DzZDSAPylPxTYDfFlH6k/49fAEo1CrD/gIPh5bmWvP7MJ1zQBRLE/9hnOkiDVsj+WICd5EWa0PxmkmgrQ9rU/"
    "IVtdaliHtz8stCm8phe5PwNcSSS3p7o/1cKex4U3vD/Jn67LDse9Pw5zqVZOVr8/HYO6R6BywD939drO8DnBP8977NQWAcI/"
    "OmGObhDIwj8Ujc2w247DP1o+KbF2VcQ/8sWXhd8bxT/GP4tEFOLFP7JK9gQTqMY/Mb9Q3tltxz/GZJzoZjPIPwumaTy4+Mg/"
    "ZkPc8su9yT9RBLAloILKPyJnPe8yR8s/Y09+aoILzD+GshKzjM/MPxFDReVPk80/GxoQHspWzj8bXyF7+RnPP/nt3xrc3M8/"
    "rv03DrhP0D+Q29vP2bDQP3f2sWLSEdE/d1F216By0T8+20w/RNPRP3G7w6u7M9I/Bp/VLgaU0j+HA+zaIvTSP1KB4cIQVNM/"
    "txQE+s6z0z8BZheUXBPUP1QQV6W4ctQ/aud4QuLR1D8kPK+A2DDVP90fq3Waj9U/k6aeNyfu1T/GJz/dfUzWPxd+x32dqtY/"
    "n0X6MIUI1z/2GCQPNGbXP+fMHTGpw9c/xKpOsOMg2D9jqa6m4n3YP7CkyC6l2tg/15O8Yyo32T//vUFhcZPZP4rtqEN579k/"
    "5aHeJ0FL2j/KP20ryKbaPwlAf2wNAts/wFzhCRBd2z8BvQQjz7fbP+ceAdhJEtw/CwCXSX9s3D9exDGZbsbcP1vb6egWIN0/"
    "ieOGW3d53T9YzIEUj9LdPzv2BjhdK94/FFH46uCD3j/WeO9SGdzeP2fQP5YFNN8/upr426SL3z8QEudL9uLfP7c+TIf8HOA/"
    "GiKuJlZI4D/u/yKZh3PgP+HFF3SQnuA/j4ldTXDJ4D9+jiq7JvTgPyNLG1SzHuE/62wzrxVJ4T9J295jTXPhP7i58glaneE/"
    "yGiuOTvH4T8bhryL8PDhP1nrM5l5GuI/H6yY+9VD4j/fEt1MBW3iP6icYicHluI/6vP6Jdu+4j8X6ujjgOfiPzVw4fz3D+M/"
    "V44MDUA44z/zWQaxWGDjPyLr34VBiOM/uVAgKfqv4z9Eg8U4gtfjP9RWRVPZ/uM/sWuOF/8l5D/WHQkl80zkP0dzmBu1c+Q/"
    "OQmbm0Sa5D8EAOxFocDkP+nl47vK5uQ/m6BZn8AM5T+WVaOSgjLlPzdRlzgQWOU/oOyMNGl95T9Qcl0qjaLlP4wBZb57x+U/"
    "dHCDlTTs5T/fLB1VtxDmP+kbHKMDNeY/PXjwJRlZ5j8Qr5GE93zmP807f2aeoOY/dYLBcw3E5j+vqOpUROfmP3ptF7NCCuc/"
    "lv/vNwgt5z+N0qiNlE/nP2FyA1/ncec/5VVPVwCU5z+vr2oi37XnP7I9w2yD1+c/cRdX4+z45z/MerUzGxroP26X/wsOO+g/"
    "zFjpGsVb6D+/LroPQHzoP6rUTZp+nOg/QRcVa4C86D/MmBYzRdzoPw2U76PM++g/op3UbxYb6T/7Y5JJIjrpP9dtjuTvWOk/"
    "QtfH9H536T8iDdguz5XpP0GH80fgs+k/1YDq9bHR6T+UrynvQ+/pPzf5uuqVDOo/gidGoKcp6j/ImhHIeEbqP+L6AhsJY+o/"
    "neafUlh/6j+joQ4pZpvqP9TAFlkyt+o/EdUhnrzS6j90FDy0BO7qPwACFVgKCes/tBMAR80j6z8SV/U+TT7rPwUUkv6JWOs/"
    "Pm4ZRYNy6z/pBHXSOIzrP9KQNWeqpes/6oCTxNe+6z8qlW+swNfrP913U+Fk8Os/SVVyJsQI7D+wcak/3iDsP7G9gPGyOOw/"
    "B2krAUJQ7D+bc4g0i2fsP/M8I1KOfuw/9RE0IUuV7D8AuaBpwavsP1z8/PPwwew/9jKLidnX7D9zxzz0eu3sP5K9sv7UAu0/"
    "3DU+dOcX7T+f7+AgsiztPzrJTdE0Qe0/sT7pUm9V7T+L5slzYWntP/nsuAILfe0/Ro0yz2uQ7T+IiWapg6PtP5ugOGJStu0/"
    "YAJBy9fI7T88wsy2E9vtP9pH3vcF7e0/K74tYq7+7T+sgCnKDBDuP+WG9gQhIe4/Jc5w6Oox7j9+wStLakLuP/yfcgSfUu4/"
    "EuFI7Ihi7j9El2rbJ3LuPw3RTKt7ge4/8vcdNoSQ7j/aLcZWQZ/uP46o5+iyre4/dAvfyNi77j+Ev8PTssnuP2NJaOdA1+4/"
    "vJ1a4oLk7j/Cc+SjePHuP+yVCwwi/u4/1zCS+34K7z9dIPdTjxbvP9o6dvdSIu8/nZoIyckt7z+J5WSs8zjvP92S/4XQQ+8/"
    "LS8LO2BO7z+EnnixoljvP7Bc98+XYu8/t7v1fT9s7z93IKGjmXXvP2495immfu8/qUtx+mSH7z/bQa7/1Y/vP5sJyST5l+8/"
    "yLKtVc6f7z8XpQh/VafvP7vPRo6Oru8/QdeVcXm17z+GQeQXFrzvP9Of4XBkwu8/Ibf+bGTI7z97pm39Fc7vP4QLIhR50+8/"
    "JiXRo43Y7z9W9PGfU93vPwlbvfzK4e8/QDkur/Pl7z86iAGtzenvP8RztuxY7e8/rXGOZZXw7z9cV40Pg/PvP35teeMh9u8/"
    "34Hb2nH47z9d9/7vcvrvP/jT8R0l/O8/Dc2EYIj97z+hUUu0nP7vP9uSmxZi/+8/koqOhdj/7z8AAAAAAADwPwCeCWnnvTBA"
    "AGAmkJPD9j8AwPbnUcrlPwDE+vixRi1AgA1zA5cXXEA="
)

COMPACT = {
    "version": 1,
    "function": 'sinpi',
    "target": 'float32',
    "rr_kind": 'sinpi',
    "pool_len": 526,
    "pool": _POOL,
    "data": {'approx': {'cospi': {'neg': None,
                          'pos': {'@pp': {'index_bits': 0,
                                          'mode': 'raw',
                                          'polys': [[[0, 2, 4], 0, 3]],
                                          'shift': 60}}},
                'sinpi': {'neg': None,
                          'pos': {'@pp': {'cols': [3, 2, 2],
                                          'exps': [1, 3],
                                          'index_bits': 1,
                                          'lens': [1, 2],
                                          'mode': 'packed',
                                          'shift': 59,
                                          'start': 1,
                                          'stride': 2}}}},
     'function': 'sinpi',
     'rr_kind': 'sinpi',
     'rr_state': {'_cos_t': {'@fv': [7, 257]},
                  '_sin_t': {'@fv': [264, 257]},
                  'exponents': {'@t': [{'@t': [1, 3, 5, 7]}, {'@t': [0, 2, 4, 6]}]},
                  'fn_names': {'@t': ['sinpi', 'cospi']},
                  'name': 'sinpi'},
     'stats': {'counterexamples_folded': 4,
               'final_check': {'misses': 0, 'n': 20000},
               'gen_time_s': {'@f': 521},
               'input_count': 50211,
               'oracle_time_s': {'@f': 522},
               'per_fn': {'cospi': {'degree': 4, 'npolys': 1, 'terms': 3},
                          'sinpi': {'degree': 3, 'npolys': 2, 'terms': 2}},
               'phase_s': {'oracle': {'@f': 522}, 'piecewise': {'@f': 523}, 'reduced': {'@f': 524}},
               'reduced_count': 38200,
               'special_count': 389,
               'total_time_s': {'@f': 525}},
     'target': 'float32'},
}


def __getattr__(name):
    """PEP 562: decode the legacy DATA dict on first access."""
    if name != "DATA":
        raise AttributeError(name)
    from repro.libm.compact import decode

    data = globals()["DATA"] = decode(COMPACT)
    return data
