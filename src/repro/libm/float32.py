"""The RLIBM-32 float32 math library (public API).

Ten correctly rounded elementary functions for IEEE binary32.  Inputs and
outputs are Python floats (binary64) that hold exact binary32 values —
the idiomatic way to carry float32 through CPython.  Each function rounds
its input to binary32 first, so any double can be passed.

    >>> from repro.libm import float32 as rl
    >>> rl.log2(8.0)
    3.0
    >>> rl.sinpi(0.5)
    1.0

``*_bits`` variants return the raw binary32 bit pattern.
"""

from __future__ import annotations

from repro.fp.float32 import f32_round
from repro.libm.runtime import FLOAT32_FUNCTIONS, load_function

__all__ = list(FLOAT32_FUNCTIONS) + [f"{n}_bits" for n in FLOAT32_FUNCTIONS]


def _make(fn_name: str):
    def value(x: float) -> float:
        return load_function(fn_name, "float32").evaluate(f32_round(x))

    def bits(x: float) -> int:
        return load_function(fn_name, "float32").evaluate_bits(f32_round(x))

    value.__name__ = fn_name
    value.__qualname__ = fn_name
    value.__doc__ = (f"Correctly rounded binary32 {fn_name}(x); "
                     "returns the float32 result as a double.")
    bits.__name__ = f"{fn_name}_bits"
    bits.__qualname__ = f"{fn_name}_bits"
    bits.__doc__ = (f"Correctly rounded binary32 {fn_name}(x) "
                    "as a 32-bit pattern.")
    return value, bits


for _name in FLOAT32_FUNCTIONS:
    _v, _b = _make(_name)
    globals()[_name] = _v
    globals()[f"{_name}_bits"] = _b
del _name, _v, _b
