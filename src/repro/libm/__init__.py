"""The generated correctly rounded math libraries and their tooling."""

from __future__ import annotations

from repro.libm.runtime import (FLOAT32_FUNCTIONS, POSIT32_FUNCTIONS,
                                available, load, load_function)

__all__ = ["FLOAT32_FUNCTIONS", "POSIT32_FUNCTIONS", "available", "load",
           "load_function"]
