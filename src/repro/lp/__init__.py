"""Linear programming substrate: exact rational simplex + HiGHS front end."""

from __future__ import annotations

from repro.lp.rational_simplex import LPResult, LPStatus, solve_lp_exact
from repro.lp.solver import (FitResult, LinearConstraint, LPWitness,
                             certificate_witness, fit_coefficients)

__all__ = [
    "LPResult", "LPStatus", "solve_lp_exact",
    "FitResult", "LinearConstraint", "fit_coefficients",
    "LPWitness", "certificate_witness",
]
