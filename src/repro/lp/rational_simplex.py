"""Exact linear programming over rationals (SoPlex substitute).

RLIBM-32 generates polynomial coefficients with SoPlex, an *exact rational*
LP solver, because the constraints (rounding intervals) are only a few
ulps wide and floating point LP tolerances can both accept infeasible and
reject feasible systems.  This module is our from-scratch equivalent: a
dense two-phase primal simplex over :class:`fractions.Fraction` with
Bland's anti-cycling rule.

It solves

    maximize    c . x
    subject to  A x <= b,   x free

by splitting free variables into differences of non-negatives and adding
slack/artificial variables.  Exact arithmetic makes it immune to
conditioning, at the cost of speed: it is intended for the moderate
problem sizes of the counterexample-guided sampling loop (tens of
variables, up to a few hundred constraints) and as the certification
fallback behind the fast floating point front end in
:mod:`repro.lp.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.obs import metrics

__all__ = ["LPResult", "solve_lp_exact", "LPStatus"]

_C_PIVOTS = metrics.counter("lp.pivots")


class LPStatus:
    """Status constants for :func:`solve_lp_exact`."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    #: pivot budget exhausted (exact arithmetic got too expensive)
    LIMIT = "limit"


@dataclass
class LPResult:
    """Outcome of an exact LP solve."""

    status: str
    #: Optimal variable assignment (original free variables), or None.
    x: list[Fraction] | None = None
    #: Optimal objective value, or None.
    objective: Fraction | None = None

    @property
    def ok(self) -> bool:
        return self.status == LPStatus.OPTIMAL


def _pivot(tab: list[list[Fraction]], basis: list[int], row: int, col: int) -> None:
    """Pivot the dense tableau on (row, col)."""
    piv = tab[row][col]
    inv = 1 / piv
    prow = tab[row]
    for j in range(len(prow)):
        prow[j] *= inv
    for i, r in enumerate(tab):
        if i == row:
            continue
        factor = r[col]
        if factor == 0:
            continue
        for j in range(len(r)):
            r[j] -= factor * prow[j]
    basis[row] = col


def _simplex(tab: list[list[Fraction]], basis: list[int], ncols: int,
             max_pivots: int = 400) -> str:
    """Run primal simplex to optimality on a feasible tableau.

    The last row is the objective (to be maximized; stored negated in the
    standard reduced-cost convention), the last column is the RHS.
    Bland's rule guarantees termination; ``max_pivots`` bounds the cost
    when exact pivots grow expensive (callers treat LIMIT as "give up").
    """
    m = len(tab) - 1
    obj = tab[m]
    pivots = 0
    while True:
        pivots += 1
        if pivots > max_pivots:
            return LPStatus.LIMIT
        # Bland: entering variable = smallest index with positive reduced
        # profit (we store the objective row as z-row: entries are
        # -reduced_cost, so "improving" means negative entry).
        col = -1
        for j in range(ncols):
            if obj[j] < 0:
                col = j
                break
        if col < 0:
            return LPStatus.OPTIMAL
        # Ratio test; Bland tie-break on smallest basis variable index.
        best_ratio: Fraction | None = None
        row = -1
        for i in range(m):
            a = tab[i][col]
            if a > 0:
                ratio = tab[i][-1] / a
                if best_ratio is None or ratio < best_ratio or (
                        ratio == best_ratio and basis[i] < basis[row]):
                    best_ratio = ratio
                    row = i
        if row < 0:
            return LPStatus.UNBOUNDED
        _C_PIVOTS.inc()
        _pivot(tab, basis, row, col)


def solve_lp_exact(
    a_ub: Sequence[Sequence[Fraction]],
    b_ub: Sequence[Fraction],
    c: Sequence[Fraction],
    max_pivots: int = 400,
) -> LPResult:
    """Solve max c.x s.t. a_ub x <= b_ub with free x, exactly.

    All inputs may be any rational-convertible numbers; computation is
    exact throughout.  ``max_pivots`` bounds each simplex phase; the
    certificate-witness path raises it because a LIMIT there means no
    certificate can be emitted.
    """
    m = len(a_ub)
    n = len(c)
    a = [[Fraction(v) for v in row] for row in a_ub]
    b = [Fraction(v) for v in b_ub]
    cc = [Fraction(v) for v in c]
    if any(len(row) != n for row in a):
        raise ValueError("inconsistent constraint matrix width")

    # Split x = u - v (u, v >= 0); columns: u(0..n-1), v(n..2n-1),
    # slacks (2n..2n+m-1), artificials appended as needed.
    nsplit = 2 * n
    nslack = m
    base_cols = nsplit + nslack

    rows: list[list[Fraction]] = []
    basis: list[int] = []
    art_cols: list[int] = []
    next_art = base_cols
    for i in range(m):
        row = [Fraction(0)] * base_cols
        for j in range(n):
            row[j] = a[i][j]
            row[n + j] = -a[i][j]
        row[nsplit + i] = Fraction(1)
        rhs = b[i]
        if rhs < 0:
            # negate so RHS >= 0; slack coefficient becomes -1, needs an
            # artificial basic variable
            row = [-v for v in row]
            rhs = -rhs
            row.append(Fraction(1))
            art_cols.append(next_art)
            basis.append(next_art)
            next_art += 1
        else:
            basis.append(nsplit + i)
        rows.append(row + [rhs])

    total_cols = next_art
    # pad rows that predate later artificial columns
    for row in rows:
        while len(row) - 1 < total_cols:
            row.insert(-1, Fraction(0))

    if art_cols:
        # Phase 1: minimize sum of artificials == maximize -sum.
        obj = [Fraction(0)] * (total_cols + 1)
        for j in art_cols:
            obj[j] = Fraction(1)
        tab = [list(r) for r in rows] + [obj]
        # price out basic artificials
        for i, bcol in enumerate(basis):
            if bcol in art_cols:
                for j in range(total_cols + 1):
                    tab[-1][j] -= tab[i][j]
        status = _simplex(tab, basis, total_cols, max_pivots)
        if status == LPStatus.LIMIT:
            return LPResult(LPStatus.LIMIT)
        if status != LPStatus.OPTIMAL or tab[-1][-1] != 0:
            return LPResult(LPStatus.INFEASIBLE)
        # Drive any artificial still in the basis out (degenerate rows).
        for i, bcol in enumerate(basis):
            if bcol in art_cols:
                for j in range(base_cols):
                    if tab[i][j] != 0:
                        _pivot(tab, basis, i, j)
                        break
        rows = [r[: base_cols] + [r[-1]] for r in tab[:-1]]
        total_cols = base_cols

    # Phase 2: maximize c.(u - v); z-row holds -c entries.
    obj = [Fraction(0)] * (total_cols + 1)
    for j in range(n):
        obj[j] = -cc[j]
        obj[n + j] = cc[j]
    tab = [list(r) for r in rows] + [obj]
    for i, bcol in enumerate(basis):
        if bcol < total_cols and tab[-1][bcol] != 0:
            factor = tab[-1][bcol]
            for j in range(total_cols + 1):
                tab[-1][j] -= factor * tab[i][j]
    status = _simplex(tab, basis, total_cols, max_pivots)
    if status != LPStatus.OPTIMAL:
        return LPResult(status)

    values = [Fraction(0)] * total_cols
    for i, bcol in enumerate(basis):
        if bcol < total_cols:
            values[bcol] = tab[i][-1]
    x = [values[j] - values[n + j] for j in range(n)]
    objective = sum(ci * xi for ci, xi in zip(cc, x))
    return LPResult(LPStatus.OPTIMAL, x=x, objective=objective)
