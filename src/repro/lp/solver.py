"""LP front end for polynomial coefficient synthesis.

Each reduced constraint ``(r, [l, h])`` demands

    l  <=  c_0 * r**e_0 + ... + c_k * r**e_k  <=  h

(the exponent list supports the odd/even polynomial structures the paper
uses for sinpi/cospi/sinh).  This module builds the LP and solves it —
fast path through scipy's HiGHS with column scaling and tight tolerances,
certification path through the exact rational simplex of
:mod:`repro.lp.rational_simplex`.

Instead of a pure feasibility problem we maximize the *normalized margin*
``delta``: every constraint must be satisfied with slack at least
``delta`` times its interval half-width.  Centred solutions survive the
coefficient-rounding step (LP solvers return real coefficients that must
be rounded to H; the paper handles the fallout with a search-and-refine
loop, which we also implement in :mod:`repro.core.cegpoly` — a positive
margin simply makes that loop converge faster).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.fp.bits import double_to_bits
from repro.lp.rational_simplex import LPStatus, solve_lp_exact
from repro.obs import enabled, event, metrics

__all__ = ["LinearConstraint", "FitResult", "fit_coefficients",
           "LPWitness", "certificate_witness",
           "use_solution_cache", "clear_solution_cache"]

_C_SOLVES = metrics.counter("lp.solves")
_C_INFEASIBLE = metrics.counter("lp.infeasible")
_C_EXACT_FALLBACKS = metrics.counter("lp.exact_fallbacks")
_C_EXACT_SOLVES = metrics.counter("lp.exact_solves")
_C_REFINE_ROUNDS = metrics.counter("lp.refine_rounds")
_C_MEMO_HITS = metrics.counter("lp.memo_hits")
_C_WITNESS = metrics.counter("lp.witness_solves")
_C_DEDUP = metrics.counter("lp.dedup_dropped")
_H_ROWS = metrics.histogram("lp.rows")

#: HiGHS tolerances; the default 1e-7 would drown ulp-wide intervals
#: (1e-10 is the tightest value HiGHS accepts).
_HIGHS_OPTIONS = {
    "primal_feasibility_tolerance": 1e-10,
    "dual_feasibility_tolerance": 1e-10,
    "presolve": True,
}


@dataclass(frozen=True)
class LinearConstraint:
    """One reduced constraint: the polynomial at ``r`` must land in [lo, hi]."""

    r: float
    lo: float
    hi: float


@dataclass
class FitResult:
    """Outcome of a coefficient fit."""

    feasible: bool
    #: Coefficients aligned with the requested exponents (doubles).
    coefficients: list[float] | None = None
    #: Normalized margin achieved in [0, 1]; None when infeasible.
    margin: float | None = None
    #: Which backend produced the result ("highs" or "exact").
    backend: str = "highs"


#: Solution memo: both backends are deterministic functions of the exact
#: constraint system (HiGHS with a fixed option set included), so a
#: content-addressed lookup returns the bit-identical coefficients a
#: fresh solve would.  This is the LP half of the CEG warm start — across
#: validation rounds the early CEG iterations re-pose systems that were
#: already solved.  Keys use bit patterns, not float equality, so -0.0
#: and 0.0 endpoints stay distinct.
_MEMO_MAX = 512
_memo: OrderedDict[tuple, FitResult] = OrderedDict()
_memo_enabled = True


def use_solution_cache(on: bool) -> None:
    """Enable/disable the in-process LP solution memo (for benchmarks)."""
    global _memo_enabled
    _memo_enabled = on
    if not on:
        _memo.clear()


def clear_solution_cache() -> None:
    """Drop all memoized LP solutions."""
    _memo.clear()


def _copy_result(res: FitResult) -> FitResult:
    coeffs = None if res.coefficients is None else list(res.coefficients)
    return FitResult(res.feasible, coeffs, margin=res.margin,
                     backend=res.backend)


def fit_coefficients(
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
    exact: bool = False,
) -> FitResult:
    """Find polynomial coefficients satisfying every constraint.

    Parameters
    ----------
    constraints:
        The reduced inputs and reduced rounding intervals.
    exponents:
        Monomial exponents of the polynomial (e.g. ``(1, 3, 5)`` for the
        odd degree-5 sinpi polynomial of section 5).
    exact:
        Solve with the exact rational simplex instead of HiGHS.  Slower;
        used for certification and for small/ill-conditioned systems.
    """
    # Duplicate rows add nothing to the feasible region; drop exact
    # (r, lo, hi) repeats before solving/keying.  The pipeline's samples
    # hold one constraint per reduced input, so this is a safety net for
    # external callers rather than a hot path.
    sig = [(double_to_bits(c.r), double_to_bits(c.lo), double_to_bits(c.hi))
           for c in constraints]
    if len(set(sig)) != len(sig):
        seen: set[tuple[int, int, int]] = set()
        deduped = []
        kept_sig = []
        for c, k in zip(constraints, sig):
            if k in seen:
                continue
            seen.add(k)
            deduped.append(c)
            kept_sig.append(k)
        _C_DEDUP.inc(len(sig) - len(kept_sig))
        constraints, sig = deduped, kept_sig

    m = len(constraints)
    key = None
    if _memo_enabled:
        key = (bool(exact), tuple(exponents), tuple(sig))
        hit = _memo.get(key)
        if hit is not None:
            _memo.move_to_end(key)
            _C_MEMO_HITS.inc()
            _C_SOLVES.inc()
            _H_ROWS.observe(2 * m)
            if not hit.feasible:
                _C_INFEASIBLE.inc()
            if enabled():
                event("lp.solve", rows=2 * m, cols=len(exponents) + 1,
                      feasible=hit.feasible, backend=hit.backend,
                      margin=hit.margin)
            return _copy_result(hit)

    res = _fit(constraints, exponents, exact)
    _C_SOLVES.inc()
    _H_ROWS.observe(2 * m)
    if not res.feasible:
        _C_INFEASIBLE.inc()
    if enabled():
        event("lp.solve", rows=2 * m, cols=len(exponents) + 1,
              feasible=res.feasible, backend=res.backend, margin=res.margin)
    if key is not None:
        _memo[key] = _copy_result(res)
        if len(_memo) > _MEMO_MAX:
            _memo.popitem(last=False)
    return res


def _fit(
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
    exact: bool = False,
) -> FitResult:
    if not constraints:
        return FitResult(True, [0.0] * len(exponents), margin=1.0)
    if not exponents:
        raise ValueError("need at least one monomial exponent")

    if exact:
        return _fit_exact(constraints, exponents)

    rs = [c.r for c in constraints]
    m = len(constraints)
    s = max((abs(r) for r in rs), default=1.0) or 1.0

    # Drop monomials whose column scale s**e underflows: their
    # contribution over this (tiny-r) domain is below any interval width,
    # so their coefficient is pinned to 0 to keep the unscaling finite.
    keep = [j for j, e in enumerate(exponents) if s ** e > 1e-290]
    if not keep:
        keep = [min(range(len(exponents)), key=lambda j: exponents[j])]
    kept_exps = [exponents[j] for j in keep]
    n = len(keep)
    scales = [s ** e for e in kept_exps]

    lo = np.array([c.lo for c in constraints])
    hi = np.array([c.hi for c in constraints])
    # Row equilibration: the interval magnitudes span the whole double
    # range (sinpi values reach 1e-38 for bfloat16 and beyond for
    # float32); dividing each row by its value magnitude keeps residuals
    # commensurate with HiGHS's absolute tolerances.
    vscale = np.maximum(np.maximum(np.abs(lo), np.abs(hi)), 1e-300)

    # Global value scale on the coefficient variables: without it, row
    # equilibration of tiny-magnitude systems (values ~1e-38) blows the
    # matrix entries up to ~1e38 and HiGHS returns confident nonsense.
    # Rows whose values are astronomically below the group maximum (e.g.
    # the sinh(0) ~ 0 constraint next to sinh values of 2**120) are
    # floored so vmax/vscale stays finite.
    vmax = float(np.max(vscale))
    vscale = np.maximum(vscale, vmax * 1e-250)
    lo_s = lo / vscale
    hi_s = hi / vscale
    w = (hi_s - lo_s) / 2.0

    mat = np.empty((m, n))
    t = np.array(rs) / s
    for j, e in enumerate(kept_exps):
        mat[:, j] = t ** e * (vmax / vscale)

    # Variables: scaled coefficients (free) then delta in [0, 1].
    # P(r_i) - delta*w_i >= lo_i   ->  -row . c + delta*w_i <= -lo_i
    # P(r_i) + delta*w_i <= hi_i   ->   row . c + delta*w_i <=  hi_i
    a_ub = np.zeros((2 * m, n + 1))
    a_ub[:m, :n] = -mat
    a_ub[m:, :n] = mat
    a_ub[:m, n] = w
    a_ub[m:, n] = w
    b_ub = np.concatenate([-lo_s, hi_s])

    cost = np.zeros(n + 1)
    cost[n] = -1.0  # maximize delta
    bounds = [(None, None)] * n + [(0.0, 1.0)]

    res = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds,
                  method="highs", options=dict(_HIGHS_OPTIONS))
    if not res.success:
        # HiGHS can misjudge ulp-thin or near-collinear systems; certify
        # with the (pivot-capped) exact simplex when small enough.  A
        # confident "infeasible" verdict (status 2) is almost always
        # right, so only tiny systems buy the expensive insurance there;
        # any other failure (numerical trouble) always gets certified.
        limit = 24 if res.status == 2 else 64
        if m <= limit:
            _C_EXACT_FALLBACKS.inc()
            return _fit_exact(constraints, exponents)
        return FitResult(False)

    coeffs = [0.0] * len(exponents)
    for idx, j in enumerate(keep):
        coeffs[j] = float(res.x[idx]) * vmax / scales[idx]

    coeffs, margin = _iterative_refinement(
        coeffs, constraints, exponents, keep, s, float(res.x[n]))
    if coeffs is None:
        if m <= 64:
            _C_EXACT_FALLBACKS.inc()
            return _fit_exact(constraints, exponents)
        return FitResult(False)
    return FitResult(True, coeffs, margin=margin, backend="highs")


def _exact_residuals(
    coeffs: Sequence[float],
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
) -> tuple[np.ndarray, np.ndarray]:
    """(lo - P(r), hi - P(r)) per constraint, computed exactly.

    The correction polynomial must land in these residual intervals; a
    feasible original system gives ``lo_res <= hi_res`` always.
    """
    lo_res = np.empty(len(constraints))
    hi_res = np.empty(len(constraints))
    cfr = [Fraction(c) for c in coeffs]
    for i, c in enumerate(constraints):
        rf = Fraction(c.r)
        p = sum(cj * rf ** e for cj, e in zip(cfr, exponents))
        lo_res[i] = float(Fraction(c.lo) - p)
        hi_res[i] = float(Fraction(c.hi) - p)
    return lo_res, hi_res


def _iterative_refinement(
    coeffs: list[float],
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
    keep: Sequence[int],
    s: float,
    margin: float,
    rounds: int = 3,
) -> tuple[list[float] | None, float]:
    """Drive exact violations below the interval widths (SoPlex-style
    iterative refinement, the paper's reference [17]).

    Rounding intervals can be as narrow as ~1e-11 relative after merging
    hard cases, which is *below* HiGHS's feasibility tolerance: a "HiGHS
    feasible" solution can exactly violate them.  Re-solving for a
    *correction* polynomial against the exact residuals, with each row
    scaled by its interval width, regains the lost precision because the
    correction problem's numbers are all O(1).
    """
    m = len(constraints)
    rs = np.array([c.r for c in constraints])
    widths = np.array([max(c.hi - c.lo, 5e-324) for c in constraints])
    wmax = float(np.max(widths))
    widths = np.maximum(widths, wmax * 1e-250)
    n = len(keep)
    kept_exps = [exponents[j] for j in keep]
    t = rs / s

    for _ in range(rounds):
        _C_REFINE_ROUNDS.inc()
        lo_res, hi_res = _exact_residuals(coeffs, constraints, exponents)
        # exactly (weakly) feasible: done — refinement only repairs
        # genuine violations, it must not reject tight-margin optima
        if np.all(lo_res <= 0.0) and np.all(hi_res >= 0.0):
            return coeffs, margin
        mat = np.empty((m, n))
        for j, e in enumerate(kept_exps):
            mat[:, j] = t ** e * (wmax / widths)
        a_ub = np.zeros((2 * m, n + 1))
        a_ub[:m, :n] = -mat
        a_ub[m:, :n] = mat
        a_ub[:m, n] = 0.5
        a_ub[m:, n] = 0.5
        b_ub = np.concatenate([-lo_res / widths, hi_res / widths])
        cost = np.zeros(n + 1)
        cost[n] = -1.0
        bounds = [(None, None)] * n + [(0.0, 1.0)]
        res = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds,
                      method="highs", options=dict(_HIGHS_OPTIONS))
        if not res.success:
            return None, 0.0
        margin = float(res.x[n])
        for idx, j in enumerate(keep):
            coeffs[j] = coeffs[j] + float(res.x[idx]) * wmax / (s ** exponents[j])

    lo_res, hi_res = _exact_residuals(coeffs, constraints, exponents)
    if np.all(lo_res <= 0) and np.all(hi_res >= 0):
        return coeffs, margin
    return None, 0.0


def _fit_exact(
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
) -> FitResult:
    """Exact-rational version of :func:`fit_coefficients` (feasibility +
    margin maximization with exact arithmetic)."""
    _C_EXACT_SOLVES.inc()
    sf = max((abs(float(c.r)) for c in constraints), default=1.0) or 1.0
    # Same underflow rule as the fast path: a monomial whose unscaled
    # coefficient would exceed the double range cannot be evaluated in H.
    orig_exponents = tuple(exponents)
    exponents = [e for e in orig_exponents if sf ** e > 1e-290]
    if not exponents:
        exponents = [min(orig_exponents)]
    n = len(exponents)
    m = len(constraints)
    s = max((abs(Fraction(c.r)) for c in constraints), default=Fraction(1)) or Fraction(1)
    scales = [s ** e for e in exponents]

    a_ub: list[list[Fraction]] = []
    b_ub: list[Fraction] = []
    for c in constraints:
        t = Fraction(c.r) / s
        row = [t ** e for e in exponents]
        lo, hi = Fraction(c.lo), Fraction(c.hi)
        w = (hi - lo) / 2
        a_ub.append([-v for v in row] + [w])
        b_ub.append(-lo)
        a_ub.append(list(row) + [w])
        b_ub.append(hi)
    # delta <= 1, -delta <= 0
    a_ub.append([Fraction(0)] * n + [Fraction(1)])
    b_ub.append(Fraction(1))
    a_ub.append([Fraction(0)] * n + [Fraction(-1)])
    b_ub.append(Fraction(0))

    cost = [Fraction(0)] * n + [Fraction(1)]
    res = solve_lp_exact(a_ub, b_ub, cost)
    if res.status != LPStatus.OPTIMAL:
        return FitResult(False, backend="exact")
    assert res.x is not None
    coeffs = [0.0] * len(orig_exponents)
    for j, e in enumerate(exponents):
        coeffs[orig_exponents.index(e)] = float(res.x[j] / scales[j])
    return FitResult(True, coeffs, margin=float(res.x[n]), backend="exact")


@dataclass
class LPWitness:
    """Exact LP vertex witness for one certified sub-domain.

    The primal half says: the exact-rational polynomial with
    ``coefficients`` attains normalized margin ``delta`` on every
    certificate constraint.  The dual half (``duals_lo``/``duals_hi``
    per constraint plus ``dual_cap`` for the ``delta <= 1`` row) is a
    feasible dual solution whose objective equals ``delta`` — strong
    duality, checkable by direct substitution, proving no larger margin
    exists.  An independent verifier needs only Fraction arithmetic to
    confirm all of it (see ``repro.analysis.certify.verify``).
    """

    exponents: tuple[int, ...]
    coefficients: list[Fraction]
    delta: Fraction
    duals_lo: list[Fraction]
    duals_hi: list[Fraction]
    dual_cap: Fraction
    #: Primal rows active at the vertex ("lo:i", "hi:i", "cap").
    tight_rows: list[str]


def _witness_checks(
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
    coeffs: Sequence[Fraction],
    delta: Fraction,
    y_lo: Sequence[Fraction],
    y_hi: Sequence[Fraction],
    y_cap: Fraction,
) -> list[str] | None:
    """Re-derive the certificate identities by direct substitution.

    Returns the list of tight primal rows on success, None on any
    failure.  This is the same arithmetic the independent verifier
    performs; running it at emission time guarantees we never ship a
    witness the checker would reject.
    """
    rfs = [Fraction(c.r) for c in constraints]
    los = [Fraction(c.lo) for c in constraints]
    his = [Fraction(c.hi) for c in constraints]
    ws = [(h - l) / 2 for l, h in zip(los, his)]
    if delta < 0 or delta > 1:
        return None
    tight: list[str] = []
    for i, (rf, lo, hi, w) in enumerate(zip(rfs, los, his, ws)):
        p = sum(cj * rf ** e for cj, e in zip(coeffs, exponents))
        lo_bound = lo + delta * w
        hi_bound = hi - delta * w
        if p < lo_bound or p > hi_bound:
            return None
        if p == lo_bound:
            tight.append(f"lo:{i}")
        if p == hi_bound:
            tight.append(f"hi:{i}")
    if delta == 1:
        tight.append("cap")
    # dual feasibility: nonnegativity ...
    if y_cap < 0 or any(y < 0 for y in y_lo) or any(y < 0 for y in y_hi):
        return None
    # ... equality for every free coefficient column ...
    for e in exponents:
        if sum((yu - yl) * rf ** e
               for yl, yu, rf in zip(y_lo, y_hi, rfs)) != 0:
            return None
    # ... and for the free delta column
    if sum((yl + yu) * w for yl, yu, w in zip(y_lo, y_hi, ws)) + y_cap != 1:
        return None
    # strong duality: dual objective meets the primal margin exactly
    dual_obj = sum(hi * yu - lo * yl
                   for lo, hi, yl, yu in zip(los, his, y_lo, y_hi)) + y_cap
    if dual_obj != delta:
        return None
    return tight


def certificate_witness(
    constraints: Sequence[LinearConstraint],
    exponents: Sequence[int],
    max_pivots: int = 4000,
) -> LPWitness | None:
    """Solve the margin LP exactly and package a checkable vertex witness.

    Solves the primal (maximize the normalized margin ``delta``) with the
    exact rational simplex, then solves the *dual* LP exactly to obtain
    multipliers, and finally re-verifies primal feasibility, dual
    feasibility and strong duality by direct Fraction substitution.
    Returns None when no nonnegative-margin vertex exists or the pivot
    budget runs out — the caller must then drop the offending sample or
    ship the table uncertified, never a bogus witness.

    Column scaling (``t = r/s`` as in the solve path) leaves the dual
    solution unchanged because the coefficient columns carry zero
    objective cost, so the returned multipliers satisfy the *unscaled*
    identities the verifier checks.
    """
    m = len(constraints)
    n = len(exponents)
    if m == 0 or n == 0:
        return None
    _C_WITNESS.inc()
    s = max((abs(Fraction(c.r)) for c in constraints),
            default=Fraction(1)) or Fraction(1)
    scales = [s ** e for e in exponents]

    # Primal rows (scaled): lo-row then hi-row per constraint, then the
    # delta cap.  Unlike _fit_exact there is no  -delta <= 0  row: a
    # negative optimum then cleanly signals "margin 0 is unreachable".
    a_ub: list[list[Fraction]] = []
    b_ub: list[Fraction] = []
    for c in constraints:
        t = Fraction(c.r) / s
        row = [t ** e for e in exponents]
        lo, hi = Fraction(c.lo), Fraction(c.hi)
        w = (hi - lo) / 2
        a_ub.append([-v for v in row] + [w])
        b_ub.append(-lo)
        a_ub.append(list(row) + [w])
        b_ub.append(hi)
    a_ub.append([Fraction(0)] * n + [Fraction(1)])
    b_ub.append(Fraction(1))
    cost = [Fraction(0)] * n + [Fraction(1)]

    res = solve_lp_exact(a_ub, b_ub, cost, max_pivots)
    if res.status != LPStatus.OPTIMAL or res.x is None:
        return None
    delta = res.x[n]
    if delta < 0:
        return None
    coeffs = [res.x[j] / scales[j] for j in range(n)]

    # Dual LP: min b.y  s.t.  A^T y = cost, y >= 0 — posed for the
    # max-form solver as  max -b.y  with equality pairs and -y <= 0.
    nrows = len(a_ub)
    da_ub: list[list[Fraction]] = []
    db_ub: list[Fraction] = []
    for j in range(n + 1):
        col = [a_ub[k][j] for k in range(nrows)]
        da_ub.append(col)
        db_ub.append(cost[j])
        da_ub.append([-v for v in col])
        db_ub.append(-cost[j])
    for k in range(nrows):
        row = [Fraction(0)] * nrows
        row[k] = Fraction(-1)
        da_ub.append(row)
        db_ub.append(Fraction(0))
    dcost = [-v for v in b_ub]
    dres = solve_lp_exact(da_ub, db_ub, dcost, max_pivots)
    if dres.status != LPStatus.OPTIMAL or dres.x is None:
        return None
    y = dres.x
    y_lo = [y[2 * i] for i in range(m)]
    y_hi = [y[2 * i + 1] for i in range(m)]
    y_cap = y[2 * m]

    tight = _witness_checks(constraints, exponents, coeffs, delta,
                            y_lo, y_hi, y_cap)
    if tight is None:
        return None
    return LPWitness(tuple(exponents), coeffs, delta,
                     y_lo, y_hi, y_cap, tight)
